package connectit

// Tests for the canonical spec-string language: every registry algorithm's
// Name must parse back to an equivalent Algorithm (crossed with all four
// sampling modes via Config.Name), short-form specs must normalize, and
// malformed or paper-excluded specs must be rejected with the right
// sentinel errors.

import (
	"errors"
	"testing"

	"connectit/internal/core"
)

func allSamplingModes() []core.SamplingMode {
	return []core.SamplingMode{NoSampling, KOutSampling, BFSSampling, LDDSampling}
}

func TestSpecRoundTripAllAlgorithms(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 55 {
		t.Fatalf("algorithms = %d, want 55 (36 UF + SV + 16 LT + Stergiou + LP)", len(algos))
	}
	for _, a := range algos {
		got, err := ParseAlgorithm(a.Name())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.Name(), err)
		}
		if got != a {
			t.Fatalf("ParseAlgorithm(%q) = %+v, want %+v", a.Name(), got, a)
		}
		for _, mode := range allSamplingModes() {
			cfg := Config{Sampling: mode, Algorithm: a}
			parsed, err := ParseConfig(cfg.Name())
			if err != nil {
				t.Fatalf("ParseConfig(%q): %v", cfg.Name(), err)
			}
			if parsed.Sampling != mode || parsed.Algorithm != a {
				t.Fatalf("ParseConfig(%q) = {%v %+v}, want {%v %+v}",
					cfg.Name(), parsed.Sampling, parsed.Algorithm, mode, a)
			}
		}
	}
}

func TestSpecShortFormsNormalize(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"uf;rem-cas;naive;split-one", "Union-Rem-CAS;SplitOne;FindNaive"},
		{"UF; Rem-CAS; Naive; Split-One", "Union-Rem-CAS;SplitOne;FindNaive"},
		{"union-find;rem-lock;halve;halve-one", "Union-Rem-Lock;HalveOne;FindHalve"},
		{"uf;async;compress", "Union-Async;FindCompress"},
		{"uf;jtb;two-try", "Union-JTB;FindTwoTrySplit"},
		{"lt;crfa", "Liu-Tarjan;CRFA"},
		{"liu-tarjan;prf", "Liu-Tarjan;PRF"},
		{"sv", "shiloach-vishkin"},
		{"stergiou", "stergiou"},
		{"lp", "label-propagation"},
		{"label-propagation", "label-propagation"},
	}
	for _, c := range cases {
		a, err := ParseAlgorithm(c.spec)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", c.spec, err)
			continue
		}
		if a.Name() != c.want {
			t.Errorf("ParseAlgorithm(%q).Name() = %q, want %q", c.spec, a.Name(), c.want)
		}
	}
}

func TestSpecRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"",
		"zzz",
		"uf",
		"uf;bogus",
		"uf;rem-cas;bogus",
		"uf;rem-cas;naive;split-one;naive", // duplicate find rule
		"lt",
		"lt;CRFA;extra",
		"sv;extra",
		"stergiou;extra",
	} {
		_, err := ParseAlgorithm(spec)
		if err == nil {
			t.Errorf("ParseAlgorithm(%q) should fail", spec)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseAlgorithm(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	if _, err := ParseConfig("warp;sv"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParseConfig with bad sampling = %v, want ErrBadSpec", err)
	}
	if _, err := ParseConfig("kout"); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ParseConfig without algorithm = %v, want ErrBadSpec", err)
	}
}

func TestSpecRejectsExcludedCombinations(t *testing.T) {
	// Rem + SpliceAtomic + FindCompress is proven incorrect (§B.2.3).
	for _, spec := range []string{
		"uf;rem-cas;compress;splice",
		"uf;rem-lock;compress;splice",
		"uf;async;two-try", // FindTwoTrySplit requires Union-JTB
		"uf;jtb;halve",     // JTB supports FindNaive/FindTwoTrySplit only
		"lt;XYZ",           // not one of the paper's sixteen variants
	} {
		_, err := ParseAlgorithm(spec)
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("ParseAlgorithm(%q) = %v, want ErrUnsupported", spec, err)
		}
	}
}

func TestCompileRejectsExcludedCombinations(t *testing.T) {
	g := NewGrid2D(4, 4)

	// Invalid union-find combinations fail at Compile, not mid-run.
	if _, err := Compile(Config{Algorithm: UnionFindAlgorithm(UnionRemCAS, FindCompress, SpliceAtomic)}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Compile(Rem+Splice+Compress) = %v, want ErrUnsupported", err)
	}
	// A Liu-Tarjan variant outside the paper's sixteen fails at Compile
	// (the zero variant is "CUS": Connect without Alter is incorrect).
	if _, err := Compile(Config{Algorithm: Algorithm{Kind: core.FinishLiuTarjan}}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Compile(LT zero variant) = %v, want ErrUnsupported", err)
	}

	// Rem+SpliceAtomic compiles for connectivity but its spanning-forest
	// exclusion is captured at compile time and reported via capabilities.
	s := MustCompile(Config{Algorithm: MustParseAlgorithm("uf;rem-cas;naive;splice")})
	caps := s.Capabilities()
	if caps.SpanningForest {
		t.Fatal("Rem+SpliceAtomic must not support spanning forest")
	}
	if !caps.Streaming || caps.StreamType != TypePhased {
		t.Fatalf("Rem+SpliceAtomic capabilities = %+v, want phased streaming", caps)
	}
	if _, err := s.SpanningForest(g); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("SpanningForest = %v, want ErrUnsupported", err)
	}

	// Non-RootUp Liu-Tarjan variants neither stream nor build forests.
	s = MustCompile(Config{Algorithm: MustParseAlgorithm("lt;PUS")})
	caps = s.Capabilities()
	if caps.Streaming || caps.SpanningForest {
		t.Fatalf("lt;PUS capabilities = %+v, want neither forest nor streaming", caps)
	}
	if _, err := s.NewIncremental(8); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("NewIncremental(lt;PUS) = %v, want ErrUnsupported", err)
	}

	// RootUp Liu-Tarjan supports both, streaming synchronously.
	s = MustCompile(Config{Algorithm: MustParseAlgorithm("lt;CRFA")})
	caps = s.Capabilities()
	if !caps.SpanningForest || !caps.Streaming || caps.StreamType != TypeSynchronous {
		t.Fatalf("lt;CRFA capabilities = %+v, want forest + synchronous streaming", caps)
	}
}
