package connectit

// Benchmarks for the forest-backed query engine (DESIGN.md §12). The
// engine retains BFS scratch and the histogram cache across calls, so the
// steady-state numbers here are the serving-path cost of GET /v1/path and
// the histogram mode of /v1/components. The bench-smoke CI job runs these
// at -benchtime=1x alongside the stream benches.

import (
	"math/rand"
	"testing"
)

// benchQueryEngine builds a quiesced stream-backed engine over a power-law
// graph: one giant component plus fringe, the serving-path shape.
func benchQueryEngine(b *testing.B, n int) *Query {
	b.Helper()
	st, err := NewStream(n, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	if err := st.UpdateBatch(BarabasiAlbertEdges(n, 8, 17)); err != nil {
		b.Fatal(err)
	}
	st.Sync()
	q, err := st.Query()
	if err != nil {
		b.Fatal(err)
	}
	// Absorb the full forest up front so the loop measures queries, not the
	// first pull.
	if _, err := q.NumComponents(); err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkQueryPathBetween measures forest path reconstruction between
// random vertex pairs (mostly inside the giant component, so the BFS does
// real traversal work).
func BenchmarkQueryPathBetween(b *testing.B) {
	n := 1 << 15
	q := benchQueryEngine(b, n)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		path, _, err := q.PathBetween(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		if err != nil {
			b.Fatal(err)
		}
		hops += len(path)
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
}

// BenchmarkQueryConnected measures the point lookup the path endpoint
// degenerates to when only the verdict is needed: two find walks over the
// compressed index.
func BenchmarkQueryConnected(b *testing.B) {
	n := 1 << 15
	q := benchQueryEngine(b, n)
	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Connected(uint32(rng.Intn(n)), uint32(rng.Intn(n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryHistogram measures the component-size histogram: the first
// call per forest length scans and sorts the roots, subsequent calls hit
// the cache and only pay the copy — the loop measures the cached path, the
// serving steady state.
func BenchmarkQueryHistogram(b *testing.B) {
	n := 1 << 15
	q := benchQueryEngine(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.ComponentHistogram(); err != nil {
			b.Fatal(err)
		}
	}
}
