package connectit

// Tests for the composable query surface (DESIGN.md §12): live-forest
// queries on a concurrently driven Stream across all stream types that
// support capture, the capability gating at construction, the post-Close
// error contract, and the static/label-backed Solver.Query paths.

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// queryTestEdges builds the shared edge stream and its normalized
// membership set.
func queryTestEdges(n int) ([]Edge, map[[2]uint32]bool) {
	edges := BarabasiAlbertEdges(n, 4, 7)
	inSet := make(map[[2]uint32]bool, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if v < u {
			u, v = v, u
		}
		inSet[[2]uint32{u, v}] = true
	}
	return edges, inSet
}

// checkPath validates one PathBetween answer against the final labeling
// and the inserted-edge set: the connected verdict matches the labels, and
// a returned path chains u to v through real inserted edges.
func checkPath(t *testing.T, labels []uint32, inSet map[[2]uint32]bool, u, v uint32, path []Edge, connected bool) {
	t.Helper()
	want := labels[u] == labels[v]
	if connected != want {
		t.Fatalf("PathBetween(%d,%d) connected = %v, labels say %v", u, v, connected, want)
	}
	if !connected {
		if path != nil {
			t.Fatalf("PathBetween(%d,%d): disconnected pair returned a path", u, v)
		}
		return
	}
	if u == v {
		if len(path) != 0 {
			t.Fatalf("PathBetween(%d,%d): self pair returned %d edges", u, v, len(path))
		}
		return
	}
	at := u
	for i, e := range path {
		if e.U != at {
			t.Fatalf("PathBetween(%d,%d): edge %d starts at %d, want %d", u, v, i, e.U, at)
		}
		a, b := e.U, e.V
		if b < a {
			a, b = b, a
		}
		if !inSet[[2]uint32{a, b}] {
			t.Fatalf("PathBetween(%d,%d): edge {%d,%d} was never inserted", u, v, e.U, e.V)
		}
		at = e.V
	}
	if at != v {
		t.Fatalf("PathBetween(%d,%d): path ends at %d", u, v, at)
	}
}

// TestStreamQueryLiveForest drives concurrent producers and concurrent
// queriers against one Stream per capture-capable stream type, then checks
// the quiesced engine against the stream's own labeling: component count
// and size parity, |forest| = n − #components with nothing dropped,
// histogram mass, and path validity over the inserted-edge set.
func TestStreamQueryLiveForest(t *testing.T) {
	const n = 1 << 11
	edges, inSet := queryTestEdges(n)

	for _, spec := range []string{
		"none;uf;rem-cas;naive;split-one", // Type (i): async witness log
		"none;sv",                         // Type (ii): round-barrier merge
		"none;lt;CRFA",                    // Type (ii): LT RootUp runner
	} {
		t.Run(spec, func(t *testing.T) {
			cfg, err := ParseConfig(spec)
			if err != nil {
				t.Fatal(err)
			}
			st, err := NewStream(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			q, err := st.Query()
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent phase: sharded producers race point and aggregate
			// queries on the live engine. Mid-churn answers are unchecked
			// (they reflect some applied prefix); errors are not tolerated.
			const producers = 4
			var producing atomic.Int32
			producing.Store(producers)
			var wg sync.WaitGroup
			var qerr atomic.Value
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer producing.Add(-1)
					const chunk = 256
					for lo := p * chunk; lo < len(edges); lo += producers * chunk {
						hi := min(lo+chunk, len(edges))
						if err := st.UpdateBatch(edges[lo:hi]); err != nil {
							qerr.Store(err)
							return
						}
					}
				}(p)
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 31))
					for producing.Load() > 0 {
						u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
						if _, _, err := q.PathBetween(u, v); err != nil {
							qerr.Store(err)
							return
						}
						if _, err := q.ComponentSize(u); err != nil {
							qerr.Store(err)
							return
						}
						if _, err := q.ComponentHistogram(); err != nil {
							qerr.Store(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err, _ := qerr.Load().(error); err != nil {
				t.Fatal(err)
			}

			// Quiesced checks against the stream's own labeling.
			st.Sync()
			labels := st.Labels()
			comps := 0
			sizes := make(map[uint32]int)
			for v, l := range labels {
				if l == uint32(v) {
					comps++
				}
				sizes[l]++
			}

			nc, err := q.NumComponents()
			if err != nil {
				t.Fatal(err)
			}
			if nc != comps {
				t.Fatalf("NumComponents = %d, stream labels say %d", nc, comps)
			}
			stats := q.Stats()
			if stats.Dropped != 0 {
				t.Fatalf("engine dropped %d forest edges, want 0", stats.Dropped)
			}
			if stats.ForestEdges != n-comps {
				t.Fatalf("index holds %d forest edges, want n - #components = %d", stats.ForestEdges, n-comps)
			}

			hist, err := q.ComponentHistogram()
			if err != nil {
				t.Fatal(err)
			}
			mass, bins := 0, 0
			for _, b := range hist {
				mass += b.Size * b.Count
				bins += b.Count
			}
			if mass != n || bins != comps {
				t.Fatalf("histogram covers %d vertices in %d components, want %d in %d", mass, bins, n, comps)
			}

			rng := rand.New(rand.NewSource(97))
			for i := 0; i < 64; i++ {
				v := uint32(rng.Intn(n))
				sz, err := q.ComponentSize(v)
				if err != nil {
					t.Fatal(err)
				}
				if sz != sizes[labels[v]] {
					t.Fatalf("ComponentSize(%d) = %d, labels say %d", v, sz, sizes[labels[v]])
				}
			}

			// Paths: random pairs plus inserted edges (guaranteed connected).
			for i := 0; i < 128; i++ {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				path, connected, err := q.PathBetween(u, v)
				if err != nil {
					t.Fatal(err)
				}
				checkPath(t, labels, inSet, u, v, path, connected)
			}
			for i := 0; i < 128; i++ {
				e := edges[rng.Intn(len(edges))]
				path, connected, err := q.PathBetween(e.U, e.V)
				if err != nil {
					t.Fatal(err)
				}
				if !connected {
					t.Fatalf("inserted edge (%d,%d) reported disconnected", e.U, e.V)
				}
				checkPath(t, labels, inSet, e.U, e.V, path, connected)
			}

			// Post-Close contract: every engine query returns ErrStreamClosed.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := q.PathBetween(0, 1); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("PathBetween after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.ComponentSize(0); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("ComponentSize after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.ComponentHistogram(); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("ComponentHistogram after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.NumComponents(); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("NumComponents after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, _, err := q.LargestComponent(); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("LargestComponent after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.Labels(); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("Labels after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.Connected(0, 1); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("Connected after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.Component(0); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("Component after Close: err = %v, want ErrStreamClosed", err)
			}
			if _, err := q.SpanningForest(); !errors.Is(err, ErrStreamClosed) {
				t.Fatalf("SpanningForest after Close: err = %v, want ErrStreamClosed", err)
			}
		})
	}
}

// TestStreamQueryCapabilityGating: forest-incapable algorithms and streams
// with capture switched off fail at Query construction with ErrUnsupported
// — never mid-query.
func TestStreamQueryCapabilityGating(t *testing.T) {
	// Rem + SpliceAtomic (the Type (iii) phased algorithm) cannot carry
	// witnesses: cross-tree re-parenting breaks the forest property.
	cfg, err := ParseConfig("none;uf;rem-cas;naive;splice")
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Query(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Query on splice stream: err = %v, want ErrUnsupported", err)
	}

	// A capable algorithm with capture explicitly disabled fails the same way.
	off, err := NewStream(16, DefaultConfig(), StreamOptions{DisableForestCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Query(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Query with capture disabled: err = %v, want ErrUnsupported", err)
	}
}

// TestSolverQueryStatic covers Solver.Query over a CSR graph: the engine is
// backed by Algorithm 2's spanning forest and answers paths.
func TestSolverQueryStatic(t *testing.T) {
	// Two components: a 4-cycle {0..3} and a path {4,5}.
	g := BuildGraph(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 4, V: 5}})
	solver := MustCompile(DefaultConfig())
	q, err := solver.Query(g)
	if err != nil {
		t.Fatal(err)
	}
	if nc, _ := q.NumComponents(); nc != 2 {
		t.Fatalf("NumComponents = %d, want 2", nc)
	}
	if sz, _ := q.ComponentSize(1); sz != 4 {
		t.Fatalf("ComponentSize(1) = %d, want 4", sz)
	}
	if forest, _ := q.SpanningForest(); len(forest) != 4 {
		t.Fatalf("|forest| = %d, want 4", len(forest))
	}
	path, connected, err := q.PathBetween(0, 2)
	if err != nil || !connected {
		t.Fatalf("PathBetween(0,2) = (%v, %v), want a path", err, connected)
	}
	if len(path) == 0 || path[0].U != 0 || path[len(path)-1].V != 2 {
		t.Fatalf("PathBetween(0,2) path = %v, want 0 ... 2", path)
	}
	if _, connected, _ := q.PathBetween(0, 5); connected {
		t.Fatal("PathBetween(0,5) reported cross-component connection")
	}

	// A forest-incapable solver is rejected at construction.
	noForest := MustCompile(mustParseConfig(t, "none;uf;rem-cas;naive;splice"))
	if _, err := noForest.Query(g); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Query on splice solver: err = %v, want ErrUnsupported", err)
	}
}

func mustParseConfig(t *testing.T, spec string) Config {
	t.Helper()
	cfg, err := ParseConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSolverQueryCompressed: querying a compressed graph yields a
// label-backed engine — counting queries work, walk queries return
// ErrNoForest.
func TestSolverQueryCompressed(t *testing.T) {
	g := NewGrid2D(8, 8)
	c := Compress(g)
	solver := MustCompile(DefaultConfig())
	q, err := solver.Query(c)
	if err != nil {
		t.Fatal(err)
	}
	if nc, _ := q.NumComponents(); nc != 1 {
		t.Fatalf("NumComponents = %d, want 1", nc)
	}
	if sz, _ := q.ComponentSize(0); sz != 64 {
		t.Fatalf("ComponentSize(0) = %d, want 64", sz)
	}
	if _, _, err := q.PathBetween(0, 63); !errors.Is(err, ErrNoForest) {
		t.Fatalf("PathBetween on label-backed engine: err = %v, want ErrNoForest", err)
	}
	if _, err := q.SpanningForest(); !errors.Is(err, ErrNoForest) {
		t.Fatalf("SpanningForest on label-backed engine: err = %v, want ErrNoForest", err)
	}
}

// TestQueryLabelsParity: QueryLabels subsumes the deprecated counting
// helpers — identical answers on the same labeling.
func TestQueryLabelsParity(t *testing.T) {
	g := NewWebLike(10, 3*(1<<10), 0.1, 11)
	solver := MustCompile(DefaultConfig())
	labels, err := solver.ComponentsOn(g)
	if err != nil {
		t.Fatal(err)
	}
	q := QueryLabels(labels)
	nc, err := q.NumComponents()
	if err != nil {
		t.Fatal(err)
	}
	if want := NumComponents(labels); nc != want {
		t.Fatalf("QueryLabels NumComponents = %d, helper says %d", nc, want)
	}
	lbl, size, err := q.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	wantLbl, wantSize := LargestComponent(labels)
	if lbl != wantLbl || size != wantSize {
		t.Fatalf("QueryLabels LargestComponent = (%d, %d), helper says (%d, %d)", lbl, size, wantLbl, wantSize)
	}
	got, err := q.Labels()
	if err != nil {
		t.Fatal(err)
	}
	for v := range labels {
		if got[v] != labels[v] {
			t.Fatalf("QueryLabels round-trip label[%d] = %d, want %d", v, got[v], labels[v])
		}
	}
}
