package connectit_test

import (
	"fmt"

	"connectit"
)

// The compiled workflow: validate a spec-selected configuration once, then
// run it repeatedly; the solver reuses its internal scratch across runs.
func ExampleCompile() {
	cfg, err := connectit.ParseConfig("kout;uf;rem-cas;naive;split-one")
	if err != nil {
		panic(err)
	}
	solver, err := connectit.Compile(cfg)
	if err != nil {
		panic(err)
	}
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	q, err := solver.Query(g)
	if err != nil {
		panic(err)
	}
	comps, _ := q.NumComponents()
	fmt.Println(solver.Name())
	fmt.Println(comps)
	fmt.Println(solver.Capabilities().SpanningForest)
	// Output:
	// kout;Union-Rem-CAS;SplitOne;FindNaive
	// 2
	// true
}

// The minimal workflow: build a graph, compute components with the paper's
// recommended default algorithm (k-out sampling + Union-Rem-CAS).
func ExampleConnectivity() {
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	labels, err := connectit.Connectivity(g, connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	comps, _ := connectit.QueryLabels(labels).NumComponents()
	fmt.Println(comps)
	fmt.Println(labels[0] == labels[2])
	fmt.Println(labels[0] == labels[3])
	// Output:
	// 2
	// true
	// false
}

// Selecting a specific algorithm combination: LDD sampling finished by the
// Liu-Tarjan CRFA variant.
func ExampleLiuTarjanAlgorithm() {
	g := connectit.BuildGraph(4, []connectit.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	crfa, err := connectit.LiuTarjanAlgorithm("CRFA")
	if err != nil {
		panic(err)
	}
	labels, err := connectit.Connectivity(g, connectit.Config{
		Sampling:  connectit.LDDSampling,
		Algorithm: crfa,
	})
	if err != nil {
		panic(err)
	}
	comps, _ := connectit.QueryLabels(labels).NumComponents()
	fmt.Println(comps)
	// Output:
	// 2
}

// The representation layer: the same compiled solver runs directly on the
// byte-compressed backend (or on a representation picked at load time via
// ComponentsOn) — no flat CSR is materialized.
func ExampleSolver_ComponentsOn() {
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	compressed := connectit.Compress(g)
	solver, err := connectit.Compile(connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	labels, err := solver.ComponentsOn(compressed)
	if err != nil {
		panic(err)
	}
	comps, _ := connectit.QueryLabels(labels).NumComponents()
	fmt.Println(comps)
	fmt.Println(compressed.SizeBytes() > 0)
	// Output:
	// 2
	// true
}

// Spanning forest via a root-based algorithm: |F| = n - #components.
func ExampleSpanningForest() {
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, // a triangle (one redundant edge)
		{U: 3, V: 4},
	})
	forest, err := connectit.SpanningForest(g, connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(forest))
	// Output:
	// 3
}

// The composable query surface over a static run: one handle answers
// counting, size, histogram, and forest-path queries.
func ExampleSolver_Query() {
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	solver, err := connectit.Compile(connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	q, err := solver.Query(g)
	if err != nil {
		panic(err)
	}
	comps, _ := q.NumComponents()
	size, _ := q.ComponentSize(0)
	path, ok, _ := q.PathBetween(0, 2)
	fmt.Println(comps)
	fmt.Println(size)
	fmt.Println(ok, len(path))
	// Output:
	// 2
	// 3
	// true 2
}

// Querying a live stream: the engine pulls the spanning forest the stream
// grows as updates arrive, so answers always reflect every applied update.
func ExampleStream_Query() {
	st, err := connectit.NewStream(4, connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	q, err := st.Query()
	if err != nil {
		panic(err)
	}
	if err := st.UpdateBatch([]connectit.Edge{{U: 0, V: 1}, {U: 1, V: 2}}); err != nil {
		panic(err)
	}
	st.Sync() // barrier: make the batch visible before asking
	path, ok, _ := q.PathBetween(0, 2)
	comps, _ := q.NumComponents()
	fmt.Println(ok, len(path))
	fmt.Println(comps)
	st.Close()
	_, _, err = q.PathBetween(0, 2)
	fmt.Println(err == connectit.ErrStreamClosed)
	// Output:
	// true 2
	// 2
	// true
}

// Batch-incremental connectivity: insertions and queries in one batch.
func ExampleNewIncremental() {
	inc, err := connectit.NewIncremental(4, connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	answers := inc.ProcessBatch(
		[]connectit.Edge{{U: 0, V: 1}},
		[][2]uint32{{2, 3}},
	)
	fmt.Println(answers[0])
	fmt.Println(inc.Connected(0, 1))
	// Output:
	// false
	// true
}
