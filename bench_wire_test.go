package connectit

// Head-to-head ingest transport benchmarks for the binary fast path
// (DESIGN.md §13): the same pre-generated edge batches pushed through the
// JSON HTTP surface, the binary HTTP surface, and the pipelined binary TCP
// protocol against a live server, plus microbenchmarks of the wire codec
// itself. BENCH_* metrics are edges/s; allocs/op is the zero-copy claim —
// the binary paths must beat JSON on both. The bench-smoke CI job runs
// these at -benchtime=1x (the ^Benchmark(Stream|Query|IngestWire) grep).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"testing"
	"time"

	"connectit/internal/wire"
)

const (
	benchWireVerts  = 1 << 16
	benchWireBatch  = 4096
	benchWireBursts = 16
)

// benchWireBatches generates deterministic sorted batches — the locality
// shape produced by any scan-ordered or pre-sorted producer, which is
// where delta coding pays.
func benchWireBatches() [][]Edge {
	rng := rand.New(rand.NewSource(42))
	out := make([][]Edge, benchWireBursts)
	for i := range out {
		batch := make([]Edge, benchWireBatch)
		for j := range batch {
			batch[j] = Edge{U: uint32(rng.Intn(benchWireVerts)), V: uint32(rng.Intn(benchWireVerts))}
		}
		sort.Slice(batch, func(a, b int) bool {
			if batch[a].U != batch[b].U {
				return batch[a].U < batch[b].U
			}
			return batch[a].V < batch[b].V
		})
		out[i] = batch
	}
	return out
}

func benchWireServer(b *testing.B) *Server {
	b.Helper()
	srv, err := NewServer(ServerOptions{
		Addr:             "127.0.0.1:0",
		IngestAddr:       "127.0.0.1:0",
		NumVertices:      benchWireVerts,
		FlushInterval:    time.Millisecond,
		SnapshotInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv
}

func benchWirePost(b *testing.B, url, contentType string, body []byte) {
	b.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST: %s", resp.Status)
	}
}

// BenchmarkIngestWire races the three ingest transports against a live
// server with identical batches. Metric: end-to-end accepted edges/s.
func BenchmarkIngestWire(b *testing.B) {
	batches := benchWireBatches()
	perIter := float64(benchWireBursts * benchWireBatch)

	b.Run("json-http", func(b *testing.B) {
		srv := benchWireServer(b)
		url := "http://" + srv.Addr() + "/v1/update"
		bodies := make([][]byte, len(batches))
		for i, batch := range batches {
			pairs := make([][2]uint32, len(batch))
			for j, e := range batch {
				pairs[j] = [2]uint32{e.U, e.V}
			}
			bodies[i], _ = json.Marshal(map[string]any{"edges": pairs})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				benchWirePost(b, url, "application/json", body)
			}
		}
		b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})

	b.Run("binary-http", func(b *testing.B) {
		srv := benchWireServer(b)
		url := "http://" + srv.Addr() + "/v1/update"
		bodies := make([][]byte, len(batches))
		for i, batch := range batches {
			bodies[i] = wire.AppendBlock(nil, batch)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				benchWirePost(b, url, wire.ContentTypeEdges, body)
			}
		}
		b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})

	b.Run("binary-tcp", func(b *testing.B) {
		srv := benchWireServer(b)
		c, err := DialIngest(srv.IngestAddr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, batch := range batches {
				if err := c.Send(batch); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := c.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perIter*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})
}

// BenchmarkIngestWireCodec isolates the codec itself: delta encode and
// decode of one sorted batch (bytes/edge reported), plus the raw-fallback
// encode of an unsorted batch.
func BenchmarkIngestWireCodec(b *testing.B) {
	batches := benchWireBatches()
	sorted := batches[0]
	unsorted := make([]Edge, len(sorted))
	rng := rand.New(rand.NewSource(7))
	for i := range unsorted {
		unsorted[i] = Edge{U: uint32(rng.Uint32()) >> 4, V: uint32(rng.Uint32()) >> 4}
	}

	b.Run("encode-sorted", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendBlock(buf[:0], sorted)
		}
		b.ReportMetric(float64(len(buf))/float64(len(sorted)), "bytes/edge")
		b.ReportMetric(float64(len(sorted))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})

	b.Run("decode-sorted", func(b *testing.B) {
		block := wire.AppendBlock(nil, sorted)
		var buf []Edge
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, _, err = wire.DecodeBlock(block, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(sorted))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})

	b.Run("encode-random-fallback", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendBlock(buf[:0], unsorted)
		}
		b.ReportMetric(float64(len(buf))/float64(len(unsorted)), "bytes/edge")
	})
}
