package connectit

// Shared fixtures for the benchmark harness (bench_*.go). Each benchmark
// regenerates one table or figure of the paper's evaluation; DESIGN.md §6
// maps experiment IDs to bench targets, and EXPERIMENTS.md records the
// paper-shape vs measured-shape comparison.

import (
	"sync"
	"testing"

	"connectit/internal/core"
	"connectit/internal/liutarjan"
	"connectit/internal/unionfind"
)

// benchGraphs lazily builds and caches the benchmark graph panel: class
// analogs of the paper's inputs at container scale (DESIGN.md §8).
var benchGraphs struct {
	once sync.Once
	m    map[string]*Graph
}

func benchPanel(b *testing.B) map[string]*Graph {
	b.Helper()
	benchGraphs.once.Do(func() {
		benchGraphs.m = map[string]*Graph{
			// road_usa analog: high diameter, degree <= 4.
			"road": NewGrid2D(200, 200),
			// LiveJournal/Orkut analog: skewed social graph.
			"social": NewRMAT(15, 16*(1<<15), 42),
			// Friendster analog: preferential attachment.
			"ba": NewBarabasiAlbert(1<<15, 10, 43),
			// ClueWeb/Hyperlink analog: many components, skewed.
			"web": NewWebLike(15, 8*(1<<15), 0.05, 44),
		}
	})
	return benchGraphs.m
}

// benchGraphNames fixes the report ordering.
var benchGraphNames = []string{"road", "social", "ba", "web"}

// familyAlgorithms returns the per-family representative algorithms whose
// rows Table 3 reports (the paper lists the fastest option combination per
// family; we use the combinations §4.1 identifies as fastest), selected by
// canonical spec strings.
func familyAlgorithms() []Algorithm {
	var out []Algorithm
	for _, spec := range []string{
		"uf;early;naive;split-one",
		"uf;hooks;naive;split-one",
		"uf;async;naive;split-one",
		"uf;rem-cas;naive;split-one",
		"uf;rem-lock;naive;split-one",
		"uf;jtb;two-try",
		"lt;PRF", // among the fastest LT variants (§C.1.1)
		"sv",
		"lp",
	} {
		out = append(out, MustParseAlgorithm(spec))
	}
	return out
}

func samplingModesForBench() []core.SamplingMode {
	return []core.SamplingMode{core.NoSampling, core.KOutSampling, core.BFSSampling, core.LDDSampling}
}

// runConnectivity is the timed inner loop shared by static benches: the
// configuration is compiled once and the solver reused, matching how a
// production caller would run repeated queries.
func runConnectivity(b *testing.B, g *Graph, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	solver, err := Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := solver.ComponentsOn(g); err != nil {
			b.Fatal(err)
		}
	}
}

// ufName shortens a union-find variant for sub-benchmark names.
func ufName(v unionfind.Variant) string { return v.Name() }

// ltName shortens a Liu-Tarjan variant for sub-benchmark names.
func ltName(v liutarjan.Variant) string { return v.Code() }
