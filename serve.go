package connectit

import (
	"context"
	"time"

	"connectit/internal/ingest"
	"connectit/internal/server"
)

// Server is the connectivity-as-a-service surface: an HTTP+JSON API over a
// Stream with group-committed write-ahead durability, snapshot compaction,
// replay-on-boot recovery, and a /metrics endpoint in the Prometheus text
// format (DESIGN.md §11). Build one with NewServer or run one to completion
// with Serve.
type Server = server.Server

// ServerOptions configures NewServer/Serve. The zero value (plus a vertex
// count) serves the default configuration on :8080 without durability.
type ServerOptions struct {
	// Addr is the HTTP listen address. Default ":8080".
	Addr string
	// IngestAddr, when non-empty, additionally serves the persistent
	// binary TCP ingest protocol there (DESIGN.md §13); connect with
	// DialIngest.
	IngestAddr string
	// NumVertices is the vertex universe size. Required.
	NumVertices int
	// Spec selects the algorithm ("<sampling>;<algorithm>" as accepted by
	// ParseConfig); empty selects DefaultConfig.
	Spec string
	// Stream tunes the ingest engine (sharding, epoch size, coalescing).
	Stream StreamOptions
	// WALDir enables write-ahead durability and recovery; empty runs the
	// service purely in memory.
	WALDir string
	// SnapshotInterval is the WAL compaction period (default 5m; negative
	// disables periodic snapshots).
	SnapshotInterval time.Duration
	// FlushInterval is the group-commit flush deadline (default 2ms).
	FlushInterval time.Duration
	// MaxBatch is the group size that triggers an immediate flush
	// (default 8192 edges).
	MaxBatch int
	// MaxPendingEpochs is the backpressure bound: updates receive 429
	// while more sealed epochs than this await apply (default 64).
	MaxPendingEpochs int
	// SegmentBytes is the WAL segment rotation threshold.
	SegmentBytes int
	// NoSync skips the per-group fsync, trading the durability of the last
	// flush interval for throughput on slow disks.
	NoSync bool
	// AuthToken, when non-empty, gates every mutating HTTP endpoint behind
	// `Authorization: Bearer <token>`; reads, health, and metrics stay
	// open. Mismatches are answered 401 and counted in
	// connectit_http_unauthorized_total.
	AuthToken string
	// DegradedPolicy selects what a wedged WAL does to the service:
	// DegradeFailWrites (default) keeps reads serving while writes 503 and
	// a background probe retries recovery; DegradeCrash exits the process
	// for supervisor-managed restarts.
	DegradedPolicy DegradedPolicy
	// ProbeInterval is the degraded-mode recovery probe period (default
	// 1s); it also sets the Retry-After hint on refused writes.
	ProbeInterval time.Duration
	// FaultSpec arms the deterministic fault-injection harness
	// (internal/fault), e.g. "wal.sync:at=3:err=EIO;conn.write:after=10:p=0.1:reset".
	// Empty (the default, and the only sane production setting) injects
	// nothing.
	FaultSpec string
	// ReadHeaderTimeout, ReadTimeout, and IdleTimeout harden the HTTP
	// listener (defaults 10s, 2m, 2m; negative disables one).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// MaxHeaderBytes caps a request's header section (default 1 MiB).
	MaxHeaderBytes int
}

// DegradedPolicy selects the service's response to a wedged WAL; see
// ServerOptions.DegradedPolicy.
type DegradedPolicy = server.DegradedPolicy

const (
	// DegradeFailWrites keeps the process alive on a WAL wedge: writes
	// 503 with Retry-After, wait-free reads keep serving, and a
	// background probe retries recovery.
	DegradeFailWrites = server.DegradeFailWrites
	// DegradeCrash exits the process on the first wedge, for deployments
	// where a supervisor restart onto healthy storage is the recovery
	// path.
	DegradeCrash = server.DegradeCrash
)

// NewServer compiles the configuration, opens a Stream over
// opts.NumVertices vertices, recovers durable state from opts.WALDir when
// set, and returns the service ready for Start. The caller owns shutdown
// via Server.Close.
func NewServer(opts ServerOptions) (*Server, error) {
	cfg := DefaultConfig()
	if opts.Spec != "" {
		var err error
		cfg, err = ParseConfig(opts.Spec)
		if err != nil {
			return nil, err
		}
	}
	st, err := NewStream(opts.NumVertices, cfg, opts.Stream)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(st, server.Options{
		Addr:              opts.Addr,
		IngestAddr:        opts.IngestAddr,
		WALDir:            opts.WALDir,
		FlushInterval:     opts.FlushInterval,
		MaxBatch:          opts.MaxBatch,
		MaxPendingEpochs:  opts.MaxPendingEpochs,
		SnapshotInterval:  opts.SnapshotInterval,
		SegmentBytes:      opts.SegmentBytes,
		NoSync:            opts.NoSync,
		AuthToken:         opts.AuthToken,
		DegradedPolicy:    opts.DegradedPolicy,
		ProbeInterval:     opts.ProbeInterval,
		FaultSpec:         opts.FaultSpec,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		IdleTimeout:       opts.IdleTimeout,
		MaxHeaderBytes:    opts.MaxHeaderBytes,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	return srv, nil
}

// Serve builds a server from opts, listens, and blocks until ctx is
// cancelled, then shuts down gracefully — draining in-flight group commits,
// writing a final snapshot, and sealing the log. This is the one-call
// entry point behind `connectit -serve`.
func Serve(ctx context.Context, opts ServerOptions) error {
	srv, err := NewServer(opts)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(shutdownCtx)
		return err
	}
	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Close(shutdownCtx)
}

// Guard against the aliases drifting: the ingest engine must keep exposing
// the server-grade lifecycle surface the service depends on.
var _ = []any{(*ingest.Stream).Close, (*ingest.Stream).UpdateBatch, (*ingest.Stream).PendingEpochs}
