package connectit

import (
	"context"
	"time"

	"connectit/internal/ingest"
	"connectit/internal/server"
)

// Server is the connectivity-as-a-service surface: an HTTP+JSON API over a
// Stream with group-committed write-ahead durability, snapshot compaction,
// replay-on-boot recovery, and a /metrics endpoint in the Prometheus text
// format (DESIGN.md §11). Build one with NewServer or run one to completion
// with Serve.
type Server = server.Server

// ServerOptions configures NewServer/Serve. The zero value (plus a vertex
// count) serves the default configuration on :8080 without durability.
type ServerOptions struct {
	// Addr is the HTTP listen address. Default ":8080".
	Addr string
	// IngestAddr, when non-empty, additionally serves the persistent
	// binary TCP ingest protocol there (DESIGN.md §13); connect with
	// DialIngest.
	IngestAddr string
	// NumVertices is the vertex universe size. Required.
	NumVertices int
	// Spec selects the algorithm ("<sampling>;<algorithm>" as accepted by
	// ParseConfig); empty selects DefaultConfig.
	Spec string
	// Stream tunes the ingest engine (sharding, epoch size, coalescing).
	Stream StreamOptions
	// WALDir enables write-ahead durability and recovery; empty runs the
	// service purely in memory.
	WALDir string
	// SnapshotInterval is the WAL compaction period (default 5m; negative
	// disables periodic snapshots).
	SnapshotInterval time.Duration
	// FlushInterval is the group-commit flush deadline (default 2ms).
	FlushInterval time.Duration
	// MaxBatch is the group size that triggers an immediate flush
	// (default 8192 edges).
	MaxBatch int
	// MaxPendingEpochs is the backpressure bound: updates receive 429
	// while more sealed epochs than this await apply (default 64).
	MaxPendingEpochs int
	// SegmentBytes is the WAL segment rotation threshold.
	SegmentBytes int
	// NoSync skips the per-group fsync, trading the durability of the last
	// flush interval for throughput on slow disks.
	NoSync bool
}

// NewServer compiles the configuration, opens a Stream over
// opts.NumVertices vertices, recovers durable state from opts.WALDir when
// set, and returns the service ready for Start. The caller owns shutdown
// via Server.Close.
func NewServer(opts ServerOptions) (*Server, error) {
	cfg := DefaultConfig()
	if opts.Spec != "" {
		var err error
		cfg, err = ParseConfig(opts.Spec)
		if err != nil {
			return nil, err
		}
	}
	st, err := NewStream(opts.NumVertices, cfg, opts.Stream)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(st, server.Options{
		Addr:             opts.Addr,
		IngestAddr:       opts.IngestAddr,
		WALDir:           opts.WALDir,
		FlushInterval:    opts.FlushInterval,
		MaxBatch:         opts.MaxBatch,
		MaxPendingEpochs: opts.MaxPendingEpochs,
		SnapshotInterval: opts.SnapshotInterval,
		SegmentBytes:     opts.SegmentBytes,
		NoSync:           opts.NoSync,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	return srv, nil
}

// Serve builds a server from opts, listens, and blocks until ctx is
// cancelled, then shuts down gracefully — draining in-flight group commits,
// writing a final snapshot, and sealing the log. This is the one-call
// entry point behind `connectit -serve`.
func Serve(ctx context.Context, opts ServerOptions) error {
	srv, err := NewServer(opts)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(shutdownCtx)
		return err
	}
	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Close(shutdownCtx)
}

// Guard against the aliases drifting: the ingest engine must keep exposing
// the server-grade lifecycle surface the service depends on.
var _ = []any{(*ingest.Stream).Close, (*ingest.Stream).UpdateBatch, (*ingest.Stream).PendingEpochs}
