package connectit

import (
	"connectit/internal/core"
	"connectit/internal/ingest"
)

// Stream is the concurrent streaming ingest engine: it accepts interleaved
// Update(u, v) and Connected(u, v) calls from arbitrarily many goroutines,
// internally sharding updates into epochs that flow through a coalescing
// apply pipeline (seal → queue → coalesce → round) scheduled per the
// compiled algorithm's StreamType (§3.5; DESIGN.md §9), with a
// sampling-based pre-filter that drops intra-component edges before they
// reach the atomic union hot path. Build one with NewStream or
// Solver.Stream.
//
// Unlike Incremental's synchronous call-per-batch ProcessBatch, a Stream is
// the serving-path surface: producers and queriers drive it concurrently
// and the engine enforces each stream type's concurrency discipline
// internally. Beyond point Connected lookups, Stream.Query opens a Query
// engine over the live spanning forest the stream grows as updates arrive
// (DESIGN.md §12).
type Stream = ingest.Stream

// StreamOptions tunes a Stream's sharding, epoch size, coalesce bound, and
// pre-filter; the zero value selects the defaults.
type StreamOptions = ingest.Options

// ErrStreamClosed is the closed-stream error. This is the canonical
// contract for what survives Stream.Close:
//
//   - Update, UpdateBatch, and Connected return ErrStreamClosed, and so
//     does every query issued through a Query engine obtained from
//     Stream.Query — PathBetween, ComponentSize, ComponentHistogram, and
//     the rest all surface the same error once the stream is closed.
//   - The read-only survivors are exactly Labels, NumComponents, Stats,
//     ForestLen, and Sync: they keep working after Close so callers can
//     inspect the final connectivity state.
var ErrStreamClosed = ingest.ErrClosed

// StreamStats is a snapshot of a Stream's operation counters, including
// the apply pipeline's Epochs/Rounds/Coalesced trio (epochs-per-round is
// the coalescing win) and the Algorithm 3 dedup decisions
// (DedupSorted/DedupSkipped).
type StreamStats = ingest.Stats

// DedupHint selects the Algorithm 3 batch-preprocessing policy of a Stream
// (StreamOptions.DedupHint): DedupAuto samples each large batch and sorts
// only when the estimated duplicate rate justifies it; DedupAlways and
// DedupNever override the estimator for streams whose producers know their
// duplication profile.
type DedupHint = core.DedupHint

// The batch-preprocessing policies.
const (
	DedupAuto   = core.DedupAuto
	DedupAlways = core.DedupAlways
	DedupNever  = core.DedupNever
)

// NewStream compiles cfg and opens a concurrent ingest stream over n
// initially isolated vertices. Algorithms that cannot stream return the
// ErrUnsupported error Compile captures. It is a thin wrapper over
// Compile + Solver.Stream.
func NewStream(n int, cfg Config, opt ...StreamOptions) (*Stream, error) {
	s, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return s.Stream(n, opt...)
}

// Stream opens a concurrent ingest stream over n initially isolated
// vertices running the compiled finish algorithm. At most one StreamOptions
// may be supplied; omitting it selects the defaults. Unlike the Solver
// itself, the returned Stream is safe for unrestricted concurrent use: the
// engine schedules updates and queries per the algorithm's StreamType.
func (s *Solver) Stream(n int, opt ...StreamOptions) (*Stream, error) {
	inc, err := s.NewIncremental(n)
	if err != nil {
		return nil, err
	}
	var o ingest.Options
	if len(opt) > 0 {
		o = opt[0]
	}
	return ingest.New(inc, o), nil
}

// StreamingAlgorithms enumerates every finish algorithm that supports
// batch-incremental execution, paired with its StreamType, in registry
// order.
func StreamingAlgorithms() []core.StreamingAlgorithm { return core.StreamingAlgorithms() }
