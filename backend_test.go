package connectit

import (
	"testing"

	"connectit/internal/testutil"
)

// TestBackendEquivalenceAllAlgorithms runs every registered finish
// algorithm on both backends over the standard graph panel and checks that
// CSR and compressed produce the same partition (and the true one). With
// sampling disabled every algorithm traverses the whole edge set, so the
// compressed decode path is exercised end to end.
func TestBackendEquivalenceAllAlgorithms(t *testing.T) {
	panel := testutil.Panel()
	for name, g := range panel {
		truth := testutil.Components(g)
		c := Compress(g)
		for _, a := range Algorithms() {
			solver, err := Compile(Config{Algorithm: a, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			// NoSampling labelings are solver-owned scratch: copy the CSR
			// result before the compressed run overwrites it.
			csrLabels := append([]uint32(nil), solver.Components(g)...)
			compLabels, err := solver.ComponentsOn(c)
			if err != nil {
				t.Fatal(err)
			}
			testutil.CheckPartition(t, name+"/"+a.Name()+"/csr", csrLabels, truth)
			testutil.CheckPartition(t, name+"/"+a.Name()+"/compressed", compLabels, truth)
		}
	}
}

// TestBackendEquivalenceSampled crosses the four sampling modes with one
// representative algorithm per family on both backends: the sampling phase
// (k-out selection, BFS frontiers, LDD cluster growth) must also agree with
// the truth when run over the compressed encoding.
func TestBackendEquivalenceSampled(t *testing.T) {
	panel := testutil.Panel()
	specs := []string{
		"none;uf;rem-cas;naive;split-one",
		"kout;uf;rem-cas;naive;split-one",
		"bfs;uf;hooks;naive;split-one",
		"ldd;sv",
		"kout;lt;CRFA",
		"bfs;lt;PUF",
		"ldd;stergiou",
		"kout;lp",
	}
	for name, g := range panel {
		truth := testutil.Components(g)
		c := Compress(g)
		for _, spec := range specs {
			cfg, err := ParseConfig(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = 42
			solver := MustCompile(cfg)
			csrLabels := append([]uint32(nil), solver.Components(g)...)
			compLabels := solver.ComponentsCompressed(c)
			testutil.CheckPartition(t, name+"/"+spec+"/csr", csrLabels, truth)
			testutil.CheckPartition(t, name+"/"+spec+"/compressed", compLabels, truth)
		}
	}
}

// TestComponentsOnUnknownRep checks the dispatch error for representations
// outside the registered backends.
func TestComponentsOnUnknownRep(t *testing.T) {
	solver := MustCompile(DefaultConfig())
	if _, err := solver.ComponentsOn(fakeRep{}); err == nil {
		t.Fatal("expected ErrUnsupported for unknown representation")
	}
}

type fakeRep struct{}

func (fakeRep) NumVertices() int                                  { return 0 }
func (fakeRep) NumEdges() int                                     { return 0 }
func (fakeRep) NumDirectedEdges() int                             { return 0 }
func (fakeRep) Degree(Vertex) int                                 { return 0 }
func (fakeRep) NeighborsInto(Vertex, []Vertex) []Vertex           { return nil }
func (fakeRep) NeighborsIntoLimit(Vertex, []Vertex, int) []Vertex { return nil }
func (fakeRep) SizeBytes() int                                    { return 0 }
