package connectit

import (
	"testing"

	"connectit/internal/testutil"
)

// TestBackendEquivalenceAllAlgorithms runs every registered finish
// algorithm on all three backends over the standard graph panel and checks
// that CSR, compressed, and segmented produce the same partition (and the
// true one). With sampling disabled every algorithm traverses the whole
// edge set, so the compressed decode path — including the multi-segment
// resolution path — is exercised end to end.
func TestBackendEquivalenceAllAlgorithms(t *testing.T) {
	panel := testutil.Panel()
	for name, g := range panel {
		truth := testutil.Components(g)
		c := Compress(g)
		// 512-byte segments split every non-trivial panel graph; the rmat
		// entry must land well past the 3-segment mark so the segmented rows
		// genuinely cross segment boundaries.
		seg, err := TrySegment(g, 512)
		if err != nil {
			t.Fatal(err)
		}
		if name == "rmat" && seg.NumSegments() < 3 {
			t.Fatalf("rmat panel graph split into %d segments, want >= 3", seg.NumSegments())
		}
		for _, a := range Algorithms() {
			solver, err := Compile(Config{Algorithm: a, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			// NoSampling labelings are solver-owned scratch: copy the CSR
			// result before the compressed runs overwrite it.
			csrLabels := append([]uint32(nil), solver.Components(g)...)
			compLabels, err := solver.ComponentsOn(c)
			if err != nil {
				t.Fatal(err)
			}
			compLabels = append([]uint32(nil), compLabels...)
			segLabels, err := solver.ComponentsOn(seg)
			if err != nil {
				t.Fatal(err)
			}
			testutil.CheckPartition(t, name+"/"+a.Name()+"/csr", csrLabels, truth)
			testutil.CheckPartition(t, name+"/"+a.Name()+"/compressed", compLabels, truth)
			testutil.CheckPartition(t, name+"/"+a.Name()+"/segmented", segLabels, truth)
		}
	}
}

// TestBackendEquivalenceSampled crosses the four sampling modes with one
// representative algorithm per family on both backends: the sampling phase
// (k-out selection, BFS frontiers, LDD cluster growth) must also agree with
// the truth when run over the compressed encoding.
func TestBackendEquivalenceSampled(t *testing.T) {
	panel := testutil.Panel()
	specs := []string{
		"none;uf;rem-cas;naive;split-one",
		"kout;uf;rem-cas;naive;split-one",
		"bfs;uf;hooks;naive;split-one",
		"ldd;sv",
		"kout;lt;CRFA",
		"bfs;lt;PUF",
		"ldd;stergiou",
		"kout;lp",
	}
	for name, g := range panel {
		truth := testutil.Components(g)
		c := Compress(g)
		seg, err := TrySegment(g, 512)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			cfg, err := ParseConfig(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = 42
			solver := MustCompile(cfg)
			csrLabels := append([]uint32(nil), solver.Components(g)...)
			compLabels := append([]uint32(nil), solver.ComponentsCompressed(c)...)
			segLabels, err := solver.ComponentsOn(seg)
			if err != nil {
				t.Fatal(err)
			}
			testutil.CheckPartition(t, name+"/"+spec+"/csr", csrLabels, truth)
			testutil.CheckPartition(t, name+"/"+spec+"/compressed", compLabels, truth)
			testutil.CheckPartition(t, name+"/"+spec+"/segmented", segLabels, truth)
		}
	}
}

// TestBackendEquivalenceMappedSegmented is the acceptance chain for the
// out-of-core path end to end: a graph forced past the single-segment cap
// splits into many segments, round-trips through a .cbin v2 file, loads
// back memory-mapped, and produces labels identical to the CSR backend for
// every registered algorithm.
func TestBackendEquivalenceMappedSegmented(t *testing.T) {
	g := NewRMAT(11, 12000, 4)
	truth := testutil.Components(g)
	seg, err := TrySegment(g, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumSegments() < 3 {
		t.Fatalf("split into %d segments, want >= 3", seg.NumSegments())
	}
	path := t.TempDir() + "/seg.cbin"
	if err := SaveCBIN(path, seg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCBIN(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, ok := loaded.(*SegmentedGraph)
	if !ok {
		t.Fatalf("loaded as %T, want *SegmentedGraph", loaded)
	}
	defer func() {
		if err := mapped.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if got, want := mapped.NumSegments(), seg.NumSegments(); got != want {
		t.Fatalf("loaded %d segments, want %d", got, want)
	}
	for _, a := range Algorithms() {
		solver, err := Compile(Config{Algorithm: a, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		labels, err := solver.ComponentsOn(mapped)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckPartition(t, a.Name()+"/mapped-segmented", labels, truth)
	}
}

// TestComponentsOnUnknownRep checks the dispatch error for representations
// outside the registered backends.
func TestComponentsOnUnknownRep(t *testing.T) {
	solver := MustCompile(DefaultConfig())
	if _, err := solver.ComponentsOn(fakeRep{}); err == nil {
		t.Fatal("expected ErrUnsupported for unknown representation")
	}
}

type fakeRep struct{}

func (fakeRep) NumVertices() int                                  { return 0 }
func (fakeRep) NumEdges() int                                     { return 0 }
func (fakeRep) NumDirectedEdges() int                             { return 0 }
func (fakeRep) Degree(Vertex) int                                 { return 0 }
func (fakeRep) NeighborsInto(Vertex, []Vertex) []Vertex           { return nil }
func (fakeRep) NeighborsIntoLimit(Vertex, []Vertex, int) []Vertex { return nil }
func (fakeRep) SizeBytes() int                                    { return 0 }
