// Social-network analysis: the workload the paper's introduction motivates.
// Generates an RMAT social graph, compares the three sampling schemes
// against the unsampled baseline for the same finish algorithm, and reports
// the component structure — the two-phase speedup story of §4.2.
package main

import (
	"fmt"
	"time"

	"connectit"
)

func main() {
	const scale = 18
	g := connectit.NewRMAT(scale, 16*(1<<scale), 7)
	fmt.Printf("social network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	finish := connectit.UnionFindAlgorithm(
		connectit.UnionRemCAS, connectit.FindNaive, connectit.SplitAtomicOne)

	configs := []struct {
		name string
		cfg  connectit.Config
	}{
		{"no sampling", connectit.Config{Sampling: connectit.NoSampling, Algorithm: finish}},
		{"k-out sampling", connectit.Config{Sampling: connectit.KOutSampling, Algorithm: finish}},
		{"BFS sampling", connectit.Config{Sampling: connectit.BFSSampling, Algorithm: finish}},
		{"LDD sampling", connectit.Config{Sampling: connectit.LDDSampling, Algorithm: finish}},
	}

	var baselineTime time.Duration
	for _, c := range configs {
		// Best of three runs.
		best := time.Duration(1 << 62)
		var labels []uint32
		for t := 0; t < 3; t++ {
			start := time.Now()
			var err error
			labels, err = connectit.Connectivity(g, c.cfg)
			if err != nil {
				panic(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if c.name == "no sampling" {
			baselineTime = best
		}
		_, largest := connectit.LargestComponent(labels)
		fmt.Printf("%-16s %10v  (%.2fx vs unsampled)  components=%d largest=%.1f%%\n",
			c.name, best, float64(baselineTime)/float64(best),
			connectit.NumComponents(labels), 100*float64(largest)/float64(g.NumVertices()))
	}
}
