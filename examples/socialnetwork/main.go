// Social-network analysis: the workload the paper's introduction motivates.
// Generates an RMAT social graph, compares the three sampling schemes
// against the unsampled baseline for the same finish algorithm, and reports
// the component structure — the two-phase speedup story of §4.2.
package main

import (
	"fmt"
	"time"

	"connectit"
)

func main() {
	const scale = 18
	g := connectit.NewRMAT(scale, 16*(1<<scale), 7)
	fmt.Printf("social network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The same finish algorithm under each sampling scheme, selected by
	// spec string and compiled once per configuration — repeated runs on
	// the same solver reuse its internal buffers.
	configs := []struct {
		name string
		spec string
	}{
		{"no sampling", "none;uf;rem-cas;naive;split-one"},
		{"k-out sampling", "kout;uf;rem-cas;naive;split-one"},
		{"BFS sampling", "bfs;uf;rem-cas;naive;split-one"},
		{"LDD sampling", "ldd;uf;rem-cas;naive;split-one"},
	}

	var baselineTime time.Duration
	for _, c := range configs {
		cfg, err := connectit.ParseConfig(c.spec)
		if err != nil {
			panic(err)
		}
		solver, err := connectit.Compile(cfg)
		if err != nil {
			panic(err)
		}
		// Best of three runs; ComponentsOn is the raw-labels path for
		// timing the kernel itself.
		best := time.Duration(1 << 62)
		var labels []uint32
		for t := 0; t < 3; t++ {
			start := time.Now()
			labels, err = solver.ComponentsOn(g)
			if err != nil {
				panic(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if c.name == "no sampling" {
			baselineTime = best
		}
		// The component structure comes from the Query surface over the
		// labeling the timed run already produced.
		q := connectit.QueryLabels(labels)
		comps, _ := q.NumComponents()
		_, largest, _ := q.LargestComponent()
		fmt.Printf("%-16s %10v  (%.2fx vs unsampled)  components=%d largest=%.1f%%\n",
			c.name, best, float64(baselineTime)/float64(best),
			comps, 100*float64(largest)/float64(g.NumVertices()))
	}
}
