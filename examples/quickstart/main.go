// Quickstart: build a small graph, compile a solver, compute connected
// components, and answer connectivity questions — the minimal ConnectIt
// workflow.
package main

import (
	"fmt"

	"connectit"
)

func main() {
	// A graph with two components: {0,1,2} and {3,4}.
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1},
		{U: 1, V: 2},
		{U: 3, V: 4},
	})

	// DefaultConfig is the paper's recommended robust combination: k-out
	// sampling finished by Union-Rem-CAS with SplitAtomicOne. Compile
	// validates it once and returns a reusable solver.
	solver, err := connectit.Compile(connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", solver.Name())

	// Query wraps a run in the composable query surface: counting, size,
	// histogram, and path queries from one handle.
	q, err := solver.Query(g)
	if err != nil {
		panic(err)
	}
	labels, _ := q.Labels()
	fmt.Println("labels:", labels)
	comps, _ := q.NumComponents()
	fmt.Println("components:", comps)
	c02, _ := q.Connected(0, 2)
	c04, _ := q.Connected(0, 4)
	fmt.Println("0 and 2 connected:", c02)
	fmt.Println("0 and 4 connected:", c04)
	path, _, _ := q.PathBetween(0, 2)
	fmt.Println("path 0 -> 2 through the spanning forest:", path)

	// Any of the framework's several hundred algorithm combinations is one
	// spec string away; for example Liu-Tarjan CRFA with LDD sampling:
	cfg, err := connectit.ParseConfig("ldd;lt;CRFA")
	if err != nil {
		panic(err)
	}
	crfa, err := connectit.Compile(cfg)
	if err != nil {
		panic(err)
	}
	qCRFA, err := crfa.Query(g)
	if err != nil {
		panic(err)
	}
	crfaComps, _ := qCRFA.NumComponents()
	fmt.Println("CRFA agrees:", crfaComps == 2)

	// Every algorithm also runs directly on the byte-compressed backend —
	// about half the resident bytes on power-law graphs, no flat CSR ever
	// materialized. (Compress one in memory, or LoadCBIN a .cbin file to
	// memory-map a huge graph in O(1).)
	// Solver.Query over the compressed backend yields a label-backed handle:
	// counting and histogram queries work; path queries report ErrNoForest.
	compressed := connectit.Compress(g)
	qc, err := solver.Query(compressed)
	if err != nil {
		panic(err)
	}
	ccomps, _ := qc.NumComponents()
	fmt.Println("compressed agrees:", ccomps == 2)
}
