// Quickstart: build a small graph, compile a solver, compute connected
// components, and answer connectivity questions — the minimal ConnectIt
// workflow.
package main

import (
	"fmt"

	"connectit"
)

func main() {
	// A graph with two components: {0,1,2} and {3,4}.
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1},
		{U: 1, V: 2},
		{U: 3, V: 4},
	})

	// DefaultConfig is the paper's recommended robust combination: k-out
	// sampling finished by Union-Rem-CAS with SplitAtomicOne. Compile
	// validates it once and returns a reusable solver.
	solver, err := connectit.Compile(connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", solver.Name())

	labels := solver.Components(g)
	fmt.Println("labels:", labels)
	fmt.Println("components:", connectit.NumComponents(labels))
	fmt.Println("0 and 2 connected:", labels[0] == labels[2])
	fmt.Println("0 and 4 connected:", labels[0] == labels[4])

	// Any of the framework's several hundred algorithm combinations is one
	// spec string away; for example Liu-Tarjan CRFA with LDD sampling:
	cfg, err := connectit.ParseConfig("ldd;lt;CRFA")
	if err != nil {
		panic(err)
	}
	crfa, err := connectit.Compile(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("CRFA agrees:", connectit.NumComponents(crfa.Components(g)) == 2)

	// Every algorithm also runs directly on the byte-compressed backend —
	// about half the resident bytes on power-law graphs, no flat CSR ever
	// materialized. (Compress one in memory, or LoadCBIN a .cbin file to
	// memory-map a huge graph in O(1).)
	compressed := connectit.Compress(g)
	clabels, err := solver.ComponentsOn(compressed)
	if err != nil {
		panic(err)
	}
	fmt.Println("compressed agrees:", connectit.NumComponents(clabels) == 2)
}
