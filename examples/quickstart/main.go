// Quickstart: build a small graph, compute its connected components, and
// answer connectivity questions — the minimal ConnectIt workflow.
package main

import (
	"fmt"

	"connectit"
)

func main() {
	// A graph with two components: {0,1,2} and {3,4}.
	g := connectit.BuildGraph(5, []connectit.Edge{
		{U: 0, V: 1},
		{U: 1, V: 2},
		{U: 3, V: 4},
	})

	// DefaultConfig is the paper's recommended robust combination:
	// k-out sampling finished by Union-Rem-CAS with SplitAtomicOne.
	labels, err := connectit.Connectivity(g, connectit.DefaultConfig())
	if err != nil {
		panic(err)
	}

	fmt.Println("labels:", labels)
	fmt.Println("components:", connectit.NumComponents(labels))
	fmt.Println("0 and 2 connected:", labels[0] == labels[2])
	fmt.Println("0 and 4 connected:", labels[0] == labels[4])

	// Any of the framework's several hundred algorithm combinations is one
	// Config away; for example Liu-Tarjan CRFA with LDD sampling:
	crfa, _ := connectit.LiuTarjanAlgorithm("CRFA")
	labels2, err := connectit.Connectivity(g, connectit.Config{
		Sampling:  connectit.LDDSampling,
		Algorithm: crfa,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("CRFA agrees:", connectit.NumComponents(labels2) == 2)
}
