// Spanning forest of a road network: the high-diameter regime where the
// paper recommends k-out sampling with a union-find finish. Computes a
// spanning forest of a grid road network (the road_usa analog) and verifies
// the forest invariant |F| = n - #components.
package main

import (
	"fmt"
	"time"

	"connectit"
)

func main() {
	const side = 1000
	g := connectit.NewGrid2D(side, side)
	fmt.Printf("road network: %d intersections, %d road segments\n",
		g.NumVertices(), g.NumEdges())

	// k-out sampling is the paper's pick for high diameter; the compiled
	// solver serves both the forest and the connectivity run.
	solver, err := connectit.Compile(connectit.Config{
		Sampling:  connectit.KOutSampling,
		Algorithm: connectit.MustParseAlgorithm("uf;rem-cas;naive;split-one"),
	})
	if err != nil {
		panic(err)
	}
	if !solver.Capabilities().SpanningForest {
		panic("algorithm does not support spanning forest")
	}

	// Query runs Algorithm 2 and wraps the forest in the query surface:
	// the handle serves the forest itself, component counts, and paths.
	start := time.Now()
	q, err := solver.Query(g)
	elapsed := time.Since(start)
	if err != nil {
		panic(err)
	}
	forest, err := q.SpanningForest()
	if err != nil {
		panic(err)
	}

	comps, _ := q.NumComponents()
	fmt.Printf("spanning forest: %d edges in %v\n", len(forest), elapsed)
	fmt.Printf("invariant |F| = n - #components: %d = %d - %d: %v\n",
		len(forest), g.NumVertices(), comps, len(forest) == g.NumVertices()-comps)

	// The forest is a minimal road backbone: every intersection reachable,
	// no redundant segment.
	fmt.Printf("backbone keeps %.1f%% of road segments\n",
		100*float64(len(forest))/float64(g.NumEdges()))

	// The backbone is navigable: PathBetween walks forest edges between any
	// two connected intersections.
	path, ok, err := q.PathBetween(0, uint32(g.NumVertices()-1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("route corner-to-corner: connected=%v, %d segments\n", ok, len(path))
}
