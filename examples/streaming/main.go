// Streaming connectivity: many producer goroutines push a live edge stream
// into the concurrent ingest engine while queriers interleave wait-free
// connectivity reads — the paper's batch-incremental setting (§3.5, §4.4)
// served the way a production ingest tier would drive it. Mirrors an
// insertion-heavy social feed: follower edges arrive concurrently, and the
// product asks "are these two users connected?" while the stream is live.
package main

import (
	"fmt"
	"sync"
	"time"

	"connectit"
)

func main() {
	const scale = 20
	const producers = 8
	n := 1 << scale
	stream := connectit.RMATEdges(scale, 10*n, 3)
	fmt.Printf("stream: %d vertices, %d edge insertions, %d producers\n", n, len(stream), producers)

	// Compile the finish algorithm once; the solver's capabilities say up
	// front whether (and how) it streams.
	solver, err := connectit.Compile(connectit.Config{
		Algorithm: connectit.MustParseAlgorithm("uf;rem-cas;naive;split-one"),
	})
	if err != nil {
		panic(err)
	}
	if caps := solver.Capabilities(); !caps.Streaming {
		panic("algorithm does not stream")
	}
	st, err := solver.Stream(n)
	if err != nil {
		panic(err)
	}
	fmt.Println("streaming type:", st.Type())

	// Producers split the stream; a querier polls the engine concurrently
	// for the moment the two "users" become connected.
	target := [2]uint32{0, uint32(n - 1)}
	start := time.Now()
	var connectedAt time.Duration
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if same, _ := st.Connected(target[0], target[1]); same {
				connectedAt = time.Since(start)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += producers {
				st.Update(stream[i].U, stream[i].V)
			}
		}(w)
	}
	wg.Wait()
	st.Sync()
	elapsed := time.Since(start)
	close(stop)
	<-done
	same, _ := st.Connected(target[0], target[1])
	if connectedAt == 0 && same {
		// Connected only by the final leftover batch, after the querier quit.
		connectedAt = elapsed
	}

	stats := st.Stats()
	fmt.Printf("ingested %d updates in %v (%.1fM updates/sec across %d producers)\n",
		stats.Updates, elapsed, float64(stats.Updates)/elapsed.Seconds()/1e6, producers)
	fmt.Printf("pre-filter dropped %d intra-component updates (%.1f%%)\n",
		stats.Filtered, 100*float64(stats.Filtered)/float64(stats.Updates))
	if connectedAt > 0 {
		fmt.Printf("vertices %d and %d connected after %v of stream time\n", target[0], target[1], connectedAt)
	}
	fmt.Println("final components:", st.NumComponents())
}
