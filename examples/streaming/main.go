// Streaming connectivity: ingest a live edge stream in batches while
// answering connectivity queries — the paper's batch-incremental setting
// (§3.5, §4.4). Mirrors an insertion-heavy social feed: edges arrive in
// batches, and each batch carries a mix of updates and queries.
package main

import (
	"fmt"
	"time"

	"connectit"
)

func main() {
	const scale = 20
	n := 1 << scale
	stream := connectit.RMATEdges(scale, 10*n, 3)
	fmt.Printf("stream: %d vertices, %d edge insertions\n", n, len(stream))

	// Compile the finish algorithm once; the solver's capabilities say up
	// front whether (and how) it streams.
	solver, err := connectit.Compile(connectit.Config{
		Algorithm: connectit.MustParseAlgorithm("uf;rem-cas;naive;split-one"),
	})
	if err != nil {
		panic(err)
	}
	if caps := solver.Capabilities(); !caps.Streaming {
		panic("algorithm does not stream")
	}
	inc, err := solver.NewIncremental(n)
	if err != nil {
		panic(err)
	}
	fmt.Println("streaming type:", inc.Type())

	const batch = 100_000
	queries := [][2]uint32{{0, uint32(n - 1)}, {1, 2}}
	start := time.Now()
	var connectedAt int
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		res := inc.ProcessBatch(stream[lo:hi], queries)
		if res[0] && connectedAt == 0 {
			connectedAt = hi
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("ingested %d updates in %v (%.1fM updates/sec)\n",
		len(stream), elapsed, float64(len(stream))/elapsed.Seconds()/1e6)
	if connectedAt > 0 {
		fmt.Printf("vertices 0 and %d first connected after ~%d insertions\n", n-1, connectedAt)
	}
	fmt.Println("final components:", inc.NumComponents())
}
