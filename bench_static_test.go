package connectit

// Static connectivity benchmarks: Table 3 (the central running-time matrix),
// Figure 3 and Figures 13-15 (union-find variant heatmaps per sampling
// scheme), Figure 11 (Liu-Tarjan variant heatmap), Table 1 (largest-graph
// shootout vs the baseline systems), Table 8 (MapEdges/GatherEdges lower
// bounds), and the §4 spanning-forest overhead measurement.

import (
	"fmt"
	"testing"

	"connectit/internal/baseline"
	"connectit/internal/core"
	"connectit/internal/liutarjan"
	"connectit/internal/unionfind"
)

// BenchmarkTable3Static regenerates Table 3: the per-family fastest
// algorithms crossed with the four sampling schemes on every panel graph,
// plus the baseline systems' rows.
func BenchmarkTable3Static(b *testing.B) {
	panel := benchPanel(b)
	for _, mode := range samplingModesForBench() {
		for _, alg := range familyAlgorithms() {
			for _, gname := range benchGraphNames {
				g := panel[gname]
				// Unsampled Label-Propagation on the road graph is the
				// paper's 355x pathology; keep it but only on the smallest
				// graph (it is the point of the row).
				cfg := Config{Sampling: mode, Algorithm: alg, Seed: 1}
				b.Run(fmt.Sprintf("%s/%s/%s", mode, alg.Name(), gname), func(b *testing.B) {
					runConnectivity(b, g, cfg)
				})
			}
		}
	}
}

// BenchmarkTable3OtherSystems regenerates the "Other Systems" rows of
// Table 3 (BFSCC, WorkefficientCC, MultiStep, GAPBS-SV, Afforest,
// PatwaryRM; Galois' reported-fastest algorithm is label propagation, which
// appears in BenchmarkTable3Static).
func BenchmarkTable3OtherSystems(b *testing.B) {
	panel := benchPanel(b)
	systems := []struct {
		name string
		run  func(*Graph) []uint32
	}{
		{"BFSCC", baseline.BFSCC},
		{"WorkefficientCC", func(g *Graph) []uint32 { return baseline.WorkEfficientCC(g, 0.2, 3) }},
		{"MultiStep", baseline.MultiStep},
		{"GAPBS-SV", baseline.GAPBSShiloachVishkin},
		{"GAPBS-Afforest", func(g *Graph) []uint32 { return baseline.Afforest(g, 2, 3) }},
		{"PatwaryRM", baseline.PatwaryRM},
	}
	for _, sys := range systems {
		for _, gname := range benchGraphNames {
			g := panel[gname]
			b.Run(fmt.Sprintf("%s/%s", sys.name, gname), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys.run(g)
				}
			})
		}
	}
}

// BenchmarkFigure3UnionFindMatrix regenerates Figure 3: all 36 union-find
// variants in the no-sampling setting (relative slowdowns are computed from
// the reported ns/op by cmd/experiments).
func BenchmarkFigure3UnionFindMatrix(b *testing.B) {
	g := benchPanel(b)["social"]
	for _, v := range unionfind.Variants() {
		cfg := Config{Algorithm: Algorithm{Kind: core.FinishUnionFind, UF: v}}
		b.Run(ufName(v), func(b *testing.B) { runConnectivity(b, g, cfg) })
	}
}

// BenchmarkFigure13To15SampledUF regenerates Figures 13-15: the union-find
// variant matrix under each sampling scheme.
func BenchmarkFigure13To15SampledUF(b *testing.B) {
	g := benchPanel(b)["social"]
	for _, mode := range []core.SamplingMode{core.KOutSampling, core.BFSSampling, core.LDDSampling} {
		for _, v := range unionfind.Variants() {
			cfg := Config{Sampling: mode, Algorithm: Algorithm{Kind: core.FinishUnionFind, UF: v}, Seed: 2}
			b.Run(fmt.Sprintf("%s/%s", mode, ufName(v)), func(b *testing.B) { runConnectivity(b, g, cfg) })
		}
	}
}

// BenchmarkFigure11LiuTarjanMatrix regenerates Figure 11: all sixteen
// Liu-Tarjan variants in the no-sampling setting.
func BenchmarkFigure11LiuTarjanMatrix(b *testing.B) {
	g := benchPanel(b)["social"]
	for _, v := range liutarjan.Variants() {
		cfg := Config{Algorithm: Algorithm{Kind: core.FinishLiuTarjan, LT: v}}
		b.Run(ltName(v), func(b *testing.B) { runConnectivity(b, g, cfg) })
	}
}

// BenchmarkTable1LargeGraph regenerates Table 1's shape at container scale:
// the fastest ConnectIt algorithm against each baseline system on the
// largest graph in the harness (the Hyperlink stand-in).
func BenchmarkTable1LargeGraph(b *testing.B) {
	scale := 18
	if testing.Short() {
		scale = 15
	}
	g := NewWebLike(scale, 8*(1<<scale), 0.05, 7)
	b.Logf("large graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	b.Run("ConnectIt-kout-RemCAS", func(b *testing.B) {
		runConnectivity(b, g, DefaultConfig())
	})
	b.Run("GBBS-WorkefficientCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.WorkEfficientCC(g, 0.2, 3)
		}
	})
	b.Run("BFSCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.BFSCC(g)
		}
	})
	b.Run("GAPBS-Afforest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.Afforest(g, 2, 3)
		}
	})
}

// BenchmarkTable8MapGather regenerates Table 8: the MapEdges read-everything
// baseline, the GatherEdges indirect-read lower bound, and ConnectIt with
// and without sampling on the same graphs.
func BenchmarkTable8MapGather(b *testing.B) {
	panel := benchPanel(b)
	for _, gname := range benchGraphNames {
		g := panel[gname]
		data := make([]uint32, g.NumVertices())
		b.Run("MapEdges/"+gname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MapEdges(g)
			}
		})
		b.Run("GatherEdges/"+gname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GatherEdges(g, data)
			}
		})
		b.Run("ConnectIt-NoSample/"+gname, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Sampling = core.NoSampling
			runConnectivity(b, g, cfg)
		})
		b.Run("ConnectIt-Sample/"+gname, func(b *testing.B) {
			runConnectivity(b, g, DefaultConfig())
		})
	}
}

// BenchmarkSpanningForestOverhead measures the §4 claim that spanning
// forest costs on average ~24% more than connectivity for the same
// algorithm.
func BenchmarkSpanningForestOverhead(b *testing.B) {
	panel := benchPanel(b)
	cfg := DefaultConfig()
	for _, gname := range benchGraphNames {
		g := panel[gname]
		b.Run("Connectivity/"+gname, func(b *testing.B) { runConnectivity(b, g, cfg) })
		b.Run("SpanningForest/"+gname, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SpanningForest(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
