package connectit

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"connectit/internal/wire"
)

// errClientClosed reports use of an IngestClient after Close.
var errClientClosed = errors.New("connectit: ingest client closed")

// RetryPolicy shapes the IngestClient's reconnect behavior: capped
// exponential backoff with jitter, bounded by a consecutive-attempt budget
// that resets whenever the server acks progress. The zero value means
// defaults; MaxAttempts < 0 disables reconnection entirely (the first
// transport failure is terminal, the pre-self-healing behavior).
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive connection attempts —
	// dial failures, transport breaks, busy rejections — tolerated
	// without any ack progress before the client gives up with a
	// terminal error. 0 means the default (8); < 0 disables retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first reconnect (default
	// 50ms); each subsequent attempt multiplies it by Multiplier
	// (default 2) up to MaxDelay (default 5s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each delay uniformly within ±Jitter fraction
	// (default 0.2) so a fleet of clients doesn't reconnect in
	// lockstep.
	Jitter float64
	// Seed fixes the jitter RNG so chaos runs are reproducible. 0 means
	// the deterministic default seed (1) — reproducibility is the point
	// of the fault harness, so randomness is opt-in via a nonzero seed.
	Seed int64
}

// DialIngestOptions configures DialIngestWith. The zero value is
// DialIngest's default: a 64-frame pipeline window, 5s dials, 30s ack
// waits, 10s writes, and the default RetryPolicy.
type DialIngestOptions struct {
	// Window is the pipeline depth: frames sent but not yet acked before
	// Send blocks (default 64). The unacked window is retained in memory
	// for retransmission after a reconnect; 1 gives lock-step
	// frame-per-ack operation with deterministic LSN assignment.
	Window int
	// DialTimeout bounds each connection attempt including the hello
	// exchange (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds how long an ack for an outstanding frame may
	// take before the connection is declared dead (default 30s —
	// generous against group-commit latency, tight against a hung
	// server).
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	Retry        RetryPolicy
}

func (o DialIngestOptions) withDefaults() DialIngestOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry.MaxAttempts = 8
	}
	if o.Retry.BaseDelay <= 0 {
		o.Retry.BaseDelay = 50 * time.Millisecond
	}
	if o.Retry.MaxDelay <= 0 {
		o.Retry.MaxDelay = 5 * time.Second
	}
	if o.Retry.Multiplier < 1 {
		o.Retry.Multiplier = 2
	}
	if o.Retry.Jitter < 0 || o.Retry.Jitter > 1 {
		o.Retry.Jitter = 0.2
	}
	if o.Retry.Seed == 0 {
		o.Retry.Seed = 1
	}
	return o
}

// IngestClientStats is a snapshot of the client's lifetime counters.
type IngestClientStats struct {
	Sends        uint64 // frames handed to Send
	AckedFrames  uint64 // frames the server has acknowledged
	Retransmits  uint64 // frames rewritten after a reconnect
	Reconnects   uint64 // successful re-establishments after the first connect
	DialFailures uint64 // failed connection attempts
	LastLSN      uint64 // highest acked LSN
	Outstanding  int    // frames currently in the unacked window
}

// pendingFrame is one unacked frame retained for retransmission: the
// encoded wire bytes (length prefix included) verbatim.
type pendingFrame struct {
	buf   []byte
	edges int
}

// IngestClient is the producer side of the binary TCP ingest protocol
// (DESIGN.md §13): edge batches are delta-varint coded into length-prefixed
// frames and pipelined over one persistent connection, with a background
// reader absorbing the server's batched LSN acks. Send blocks only when the
// pipeline window is full, so a single client saturates the server's group
// commit without per-batch round trips.
//
// The client is self-healing: a dropped connection, a reset, or a
// retryable busy rejection (the server degraded or shutting down) triggers
// reconnection with capped exponential backoff, after which every unacked
// frame in the pipeline window is retransmitted on the new connection.
// Union operations are idempotent, so a frame the server committed but
// whose ack was lost is harmless to replay; acked LSNs stay monotone.
// Only a protocol-level rejection (AckErr) or an exhausted retry budget is
// terminal. Not safe for concurrent use; run one client per producer
// goroutine.
type IngestClient struct {
	addr string
	opt  DialIngestOptions

	mu   sync.Mutex
	cond *sync.Cond
	rng  *rand.Rand

	conn net.Conn
	bw   *bufio.Writer
	gen  uint64 // connection generation; stale readers detect themselves
	n    uint64 // vertex universe advertised by the server hello

	pending []pendingFrame // FIFO of sent-but-unacked frames
	lastLSN uint64         // highest LSN acked
	err     error          // terminal: AckErr, retry budget exhausted, or retries disabled

	connUp       bool
	reconnecting bool  // one goroutine at a time drives the redial
	attempts     int   // consecutive attempts since last ack progress
	cause        error // most recent transport/busy failure, for terminal wrapping
	closed       bool

	stats IngestClientStats
}

// DialIngest connects to a server's binary ingest listener (Options
// IngestAddr / the -ingest-addr flag) with default DialIngestOptions and
// returns a client ready to Send.
func DialIngest(addr string) (*IngestClient, error) {
	return DialIngestWith(addr, DialIngestOptions{})
}

// DialIngestWith is DialIngest with explicit options. The initial connect
// runs through the same retry loop as reconnection, so a server still
// coming up is tolerated within the retry budget.
func DialIngestWith(addr string, opt DialIngestOptions) (*IngestClient, error) {
	opt = opt.withDefaults()
	c := &IngestClient{addr: addr, opt: opt}
	c.cond = sync.NewCond(&c.mu)
	c.rng = rand.New(rand.NewSource(opt.Retry.Seed))
	c.mu.Lock()
	err := c.ensureConnLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NumVertices returns the vertex universe size the server advertised.
func (c *IngestClient) NumVertices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.n)
}

// LastLSN returns the highest LSN the server has acked so far.
func (c *IngestClient) LastLSN() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastLSN
}

// Stats returns a snapshot of the client's counters.
func (c *IngestClient) Stats() IngestClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.LastLSN = c.lastLSN
	s.Outstanding = len(c.pending)
	return s
}

// Send frames one edge batch into the pipeline. It returns once the frame
// is queued in the unacked window and written (or buffered); durability is
// confirmed asynchronously by the ack stream — call Flush for a barrier.
// Send blocks when the window is full, which is what paces a fast producer
// to the server's group-commit throughput. A connection failure during
// Send is not an error: the frame stays in the window and is retransmitted
// after reconnect. Send fails only once the client is terminally dead.
func (c *IngestClient) Send(edges []Edge) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.err != nil {
			return c.err
		}
		if c.closed {
			return errClientClosed
		}
		if !c.connUp {
			if err := c.ensureConnLocked(); err != nil {
				return err
			}
			continue
		}
		if len(c.pending) < c.opt.Window {
			break
		}
		// Window full: push buffered frames out so acks can make progress,
		// then wait for the reader (or a break) to wake us.
		c.flushWriterLocked()
		if !c.connUp {
			continue
		}
		c.cond.Wait()
	}
	frame := pendingFrame{buf: wire.AppendFrame(nil, edges), edges: len(edges)}
	c.pending = append(c.pending, frame)
	c.stats.Sends++
	// A write failure marks the connection broken; the frame is already in
	// the window, so the next Send/Flush reconnects and retransmits it.
	c.writeLocked(frame.buf)
	return nil
}

// Flush pushes every buffered frame to the server and blocks until the
// whole unacked window drains, reconnecting and retransmitting through
// failures, and returns the highest committed LSN. A zero LSN with a nil
// error means nothing has been sent on a non-durable server.
func (c *IngestClient) Flush() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.err != nil {
			return c.lastLSN, c.err
		}
		if len(c.pending) == 0 {
			return c.lastLSN, nil
		}
		if c.closed {
			return c.lastLSN, errClientClosed
		}
		if !c.connUp {
			if err := c.ensureConnLocked(); err != nil {
				return c.lastLSN, err
			}
			continue
		}
		c.flushWriterLocked()
		if !c.connUp {
			continue
		}
		c.cond.Wait()
	}
}

// Close flushes and waits for outstanding acks, then tears the connection
// down. The first terminal error is returned; a clean drain returns nil.
func (c *IngestClient) Close() error {
	_, err := c.Flush()
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		if c.conn != nil {
			c.conn.Close()
		}
		c.connUp = false
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	if errors.Is(err, errClientClosed) {
		return nil
	}
	return err
}

// ensureConnLocked establishes a connection if none is up, driving the
// backoff/redial/retransmit loop. Called with c.mu held; releases it
// around sleeps and dials. Returns nil once a connection is up, or the
// terminal error once the retry budget is spent.
func (c *IngestClient) ensureConnLocked() error {
	for !c.connUp {
		if c.err != nil {
			return c.err
		}
		if c.closed {
			return errClientClosed
		}
		if c.reconnecting {
			// Another goroutine owns the redial; wait for its outcome.
			c.cond.Wait()
			continue
		}
		if c.opt.Retry.MaxAttempts < 0 {
			// Retry disabled: one shot at the initial dial, and any break
			// after a connection was up is terminal.
			if c.gen > 0 || c.attempts >= 1 {
				c.failLocked(fmt.Errorf("connectit: ingest connection failed (retry disabled): %w", c.cause))
				return c.err
			}
		} else if c.attempts >= c.opt.Retry.MaxAttempts {
			c.failLocked(fmt.Errorf("connectit: ingest giving up after %d attempts: %w", c.attempts, c.cause))
			return c.err
		}
		delay := c.backoffLocked()
		c.attempts++
		c.reconnecting = true
		c.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		conn, n, err := dialHello(c.addr, c.opt.DialTimeout)
		c.mu.Lock()
		c.reconnecting = false
		c.cond.Broadcast()
		if c.closed {
			if err == nil {
				conn.Close()
			}
			return errClientClosed
		}
		if err != nil {
			c.stats.DialFailures++
			c.cause = err
			continue
		}
		if c.gen > 0 && n != c.n {
			conn.Close()
			c.failLocked(fmt.Errorf("connectit: ingest reconnect: server universe changed from %d to %d vertices", c.n, n))
			return c.err
		}
		c.n = n
		c.gen++
		c.conn = conn
		c.bw = bufio.NewWriterSize(conn, 64<<10)
		c.connUp = true
		if c.gen > 1 {
			c.stats.Reconnects++
			c.stats.Retransmits += uint64(len(c.pending))
		}
		// Retransmit the unacked window in order on the fresh connection.
		// Idempotent unions make replaying a committed-but-unacked frame
		// harmless; a write failure here just re-enters the loop.
		for _, p := range c.pending {
			if err := c.writeLocked(p.buf); err != nil {
				break
			}
		}
		if c.connUp {
			c.flushWriterLocked()
		}
		if c.connUp {
			go c.readAcks(c.gen, conn)
		}
	}
	return nil
}

// backoffLocked computes the jittered delay before the next attempt:
// nothing before the very first try of a fresh episode, then BaseDelay
// growing by Multiplier per attempt, capped at MaxDelay.
func (c *IngestClient) backoffLocked() time.Duration {
	if c.attempts == 0 {
		return 0
	}
	d := float64(c.opt.Retry.BaseDelay)
	for i := 1; i < c.attempts; i++ {
		d *= c.opt.Retry.Multiplier
		if d >= float64(c.opt.Retry.MaxDelay) {
			break
		}
	}
	if d > float64(c.opt.Retry.MaxDelay) {
		d = float64(c.opt.Retry.MaxDelay)
	}
	if j := c.opt.Retry.Jitter; j > 0 {
		d *= 1 + j*(2*c.rng.Float64()-1)
	}
	return time.Duration(d)
}

// dialHello dials the ingest listener and runs the CEW1 hello exchange,
// returning the connection and the advertised universe size. The timeout
// covers the dial and both hello legs.
func dialHello(addr string, timeout time.Duration) (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, 0, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(wire.Magic)); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("connectit: ingest hello: %w", err)
	}
	var hello [12]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("connectit: ingest hello: %w", err)
	}
	if string(hello[:4]) != wire.Magic {
		conn.Close()
		return nil, 0, fmt.Errorf("connectit: ingest hello: bad magic %q", hello[:4])
	}
	conn.SetDeadline(time.Time{})
	return conn, binary.LittleEndian.Uint64(hello[4:]), nil
}

// writeLocked writes one frame to the live connection's buffered writer
// under the write deadline, marking the connection broken on failure.
func (c *IngestClient) writeLocked(buf []byte) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
	if _, err := c.bw.Write(buf); err != nil {
		c.breakConnLocked(c.gen, err)
		return err
	}
	return nil
}

// flushWriterLocked pushes the buffered writer to the socket, marking the
// connection broken on failure. No-op when the connection is down.
func (c *IngestClient) flushWriterLocked() {
	if !c.connUp {
		return
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.opt.WriteTimeout))
	if err := c.bw.Flush(); err != nil {
		c.breakConnLocked(c.gen, err)
	}
}

// breakConnLocked records a retryable connection failure for generation
// gen: the conn closes, waiters wake, and the next Send/Flush drives the
// reconnect. Stale generations (an old reader outliving its conn) are
// ignored.
func (c *IngestClient) breakConnLocked(gen uint64, err error) {
	if c.closed || gen != c.gen || !c.connUp {
		return
	}
	c.cause = err
	c.connUp = false
	c.conn.Close()
	c.cond.Broadcast()
}

// failLocked fixes the terminal error; every later call fails with it.
func (c *IngestClient) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
}

// readAcks drains server acks for one connection generation, advancing the
// pipeline window. AckBusy and transport errors are retryable (the
// connection breaks and the window retransmits after reconnect); AckErr
// and protocol violations are terminal.
func (c *IngestClient) readAcks(gen uint64, conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		c.mu.Lock()
		if c.closed || c.err != nil || gen != c.gen || !c.connUp {
			c.mu.Unlock()
			return
		}
		waiting := len(c.pending) > 0
		c.mu.Unlock()
		// An idle connection owes us nothing — poll with a short deadline
		// and re-check, so an idle client doesn't declare a healthy server
		// dead. With frames outstanding the full ReadTimeout applies.
		if waiting {
			conn.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout))
		} else {
			conn.SetReadDeadline(time.Now().Add(time.Second))
		}
		status, err := br.ReadByte()
		if err != nil {
			if !waiting && isTimeout(err) {
				continue
			}
			c.mu.Lock()
			c.breakConnLocked(gen, fmt.Errorf("connectit: ingest ack stream: %w", err))
			c.mu.Unlock()
			return
		}
		conn.SetReadDeadline(time.Now().Add(c.opt.ReadTimeout))
		switch status {
		case wire.AckOK:
			var body [wire.AckSize - 1]byte
			if _, err := io.ReadFull(br, body[:]); err != nil {
				c.mu.Lock()
				c.breakConnLocked(gen, fmt.Errorf("connectit: ingest ack stream: %w", err))
				c.mu.Unlock()
				return
			}
			lsn, frames := wire.ParseAckOK(body[:])
			c.mu.Lock()
			if c.closed || gen != c.gen {
				c.mu.Unlock()
				return
			}
			if int(frames) > len(c.pending) {
				c.failLocked(fmt.Errorf("connectit: ingest ack stream: server acked %d frames with %d outstanding", frames, len(c.pending)))
				c.mu.Unlock()
				return
			}
			if lsn < c.lastLSN {
				c.failLocked(fmt.Errorf("connectit: ingest ack stream: LSN went backwards (%d after %d)", lsn, c.lastLSN))
				c.mu.Unlock()
				return
			}
			c.pending = c.pending[frames:]
			c.lastLSN = lsn
			c.stats.AckedFrames += uint64(frames)
			c.attempts = 0 // progress: the retry budget renews
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.AckBusy, wire.AckErr:
			var msgLen [4]byte
			if _, err := io.ReadFull(br, msgLen[:]); err != nil {
				c.mu.Lock()
				c.breakConnLocked(gen, fmt.Errorf("connectit: ingest ack stream: %w", err))
				c.mu.Unlock()
				return
			}
			msg := make([]byte, binary.LittleEndian.Uint32(msgLen[:]))
			io.ReadFull(br, msg)
			c.mu.Lock()
			if status == wire.AckBusy {
				// Retryable: the server is degraded or closing and will drop
				// the connection. Back off, reconnect, retransmit.
				c.breakConnLocked(gen, fmt.Errorf("connectit: server busy: %s", msg))
			} else {
				c.failLocked(fmt.Errorf("connectit: server rejected ingest: %s", msg))
			}
			c.mu.Unlock()
			return
		default:
			c.mu.Lock()
			c.failLocked(fmt.Errorf("connectit: ingest ack stream: unknown status 0x%02x", status))
			c.mu.Unlock()
			return
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
