package connectit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"connectit/internal/wire"
)

// IngestClient is the producer side of the binary TCP ingest protocol
// (DESIGN.md §13): edge batches are delta-varint coded into length-prefixed
// frames and pipelined over one persistent connection, with a background
// reader absorbing the server's batched LSN acks. Send blocks only when the
// pipeline window is full, so a single client saturates the server's group
// commit without per-batch round trips. Not safe for concurrent use; run
// one client per producer goroutine.
type IngestClient struct {
	conn net.Conn
	bw   *bufio.Writer
	n    uint64 // vertex universe advertised by the server hello

	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int    // frames sent but not yet acked
	lastLSN     uint64 // highest LSN acked
	err         error  // terminal: AckErr message or transport failure

	window  int
	scratch []byte
	done    chan struct{}
}

// DialIngest connects to a server's binary ingest listener (Options
// IngestAddr / the -ingest-addr flag), performs the hello exchange, and
// returns a client ready to Send.
func DialIngest(addr string) (*IngestClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(wire.Magic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("connectit: ingest hello: %w", err)
	}
	var hello [12]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("connectit: ingest hello: %w", err)
	}
	if string(hello[:4]) != wire.Magic {
		conn.Close()
		return nil, fmt.Errorf("connectit: ingest hello: bad magic %q", hello[:4])
	}
	c := &IngestClient{
		conn:   conn,
		bw:     bufio.NewWriterSize(conn, 64<<10),
		n:      binary.LittleEndian.Uint64(hello[4:]),
		window: 64,
		done:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readAcks()
	return c, nil
}

// NumVertices returns the vertex universe size the server advertised.
func (c *IngestClient) NumVertices() int { return int(c.n) }

// readAcks drains server acks, advancing the pipeline window. An AckErr or
// transport error is terminal: it is surfaced by every later Send/Flush.
func (c *IngestClient) readAcks() {
	defer close(c.done)
	br := bufio.NewReader(c.conn)
	for {
		status, err := br.ReadByte()
		if err != nil {
			c.fail(fmt.Errorf("connectit: ingest ack stream: %w", err))
			return
		}
		switch status {
		case wire.AckOK:
			var body [wire.AckSize - 1]byte
			if _, err := io.ReadFull(br, body[:]); err != nil {
				c.fail(fmt.Errorf("connectit: ingest ack stream: %w", err))
				return
			}
			lsn, frames := wire.ParseAckOK(body[:])
			c.mu.Lock()
			c.lastLSN = lsn
			c.outstanding -= int(frames)
			c.cond.Broadcast()
			c.mu.Unlock()
		case wire.AckErr:
			var msgLen [4]byte
			if _, err := io.ReadFull(br, msgLen[:]); err != nil {
				c.fail(fmt.Errorf("connectit: ingest ack stream: %w", err))
				return
			}
			msg := make([]byte, binary.LittleEndian.Uint32(msgLen[:]))
			io.ReadFull(br, msg)
			c.fail(fmt.Errorf("connectit: server rejected ingest: %s", msg))
			return
		default:
			c.fail(fmt.Errorf("connectit: ingest ack stream: unknown status 0x%02x", status))
			return
		}
	}
}

func (c *IngestClient) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Send frames one edge batch into the pipeline. It returns once the frame
// is written (or buffered); durability is confirmed asynchronously by the
// ack stream — call Flush for a barrier. Send blocks when the number of
// unacked frames reaches the pipeline window, which is what paces a fast
// producer to the server's group-commit throughput.
func (c *IngestClient) Send(edges []Edge) error {
	c.mu.Lock()
	for c.err == nil && c.outstanding >= c.window {
		c.mu.Unlock()
		if err := c.bw.Flush(); err != nil {
			c.fail(err)
		}
		c.mu.Lock()
		for c.err == nil && c.outstanding >= c.window {
			c.cond.Wait()
		}
	}
	if c.err != nil {
		defer c.mu.Unlock()
		return c.err
	}
	c.outstanding++
	c.mu.Unlock()
	c.scratch = wire.AppendFrame(c.scratch[:0], edges)
	_, err := c.bw.Write(c.scratch)
	if err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// Flush pushes every buffered frame to the server and blocks until all of
// them are acked, returning the highest committed LSN. A zero LSN with a
// nil error means nothing has been sent on a non-durable server.
func (c *IngestClient) Flush() (uint64, error) {
	if err := c.bw.Flush(); err != nil {
		c.fail(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && c.outstanding > 0 {
		c.cond.Wait()
	}
	if c.err != nil {
		return c.lastLSN, c.err
	}
	return c.lastLSN, nil
}

// LastLSN returns the highest LSN the server has acked so far.
func (c *IngestClient) LastLSN() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastLSN
}

// Close flushes and waits for outstanding acks, then tears the connection
// down. The first error — a rejected frame, a transport failure, or the
// flush itself — is returned.
func (c *IngestClient) Close() error {
	_, err := c.Flush()
	c.conn.Close()
	<-c.done
	return err
}
