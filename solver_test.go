package connectit

// Tests for the compiled Solver: repeated runs must stay correct while
// scratch buffers are reused (including across graphs of different sizes),
// capabilities must agree with what the methods actually do for every
// registry algorithm, and the registry-derived capability counts must match
// the paper's inventory.

import (
	"testing"

	"connectit/internal/testutil"
)

func TestSolverRepeatedRunsReuseScratch(t *testing.T) {
	g1 := NewRMAT(10, 5000, 3)
	g2 := NewGrid2D(30, 30) // different vertex count: exercises buffer resize
	truth1 := testutil.Components(g1)
	truth2 := testutil.Components(g2)
	for _, spec := range []string{
		"none;uf;rem-cas;naive;split-one",
		"none;uf;hooks;compress",
		"kout;uf;jtb;two-try",
		"bfs;sv",
		"ldd;lt;CRFA",
		"none;lp",
		"none;stergiou",
	} {
		cfg, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		cfg.Seed = 7
		s := MustCompile(cfg)
		for i := 0; i < 3; i++ {
			testutil.CheckPartition(t, spec+"/g1", s.Components(g1), truth1)
			testutil.CheckPartition(t, spec+"/g2", s.Components(g2), truth2)
		}
	}
}

func TestSolverForestAndComponentsInterleave(t *testing.T) {
	s := MustCompile(DefaultConfig())
	g := NewGrid2D(20, 20)
	for i := 0; i < 3; i++ {
		forest, err := s.SpanningForest(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(forest) != g.NumVertices()-1 {
			t.Fatalf("run %d: forest edges = %d, want %d", i, len(forest), g.NumVertices()-1)
		}
		raw := make([][2]uint32, len(forest))
		for j, e := range forest {
			raw[j] = [2]uint32{e.U, e.V}
		}
		testutil.CheckSpanningForest(t, "grid", g, raw)
		if got := NumComponents(s.Components(g)); got != 1 {
			t.Fatalf("run %d: components = %d, want 1", i, got)
		}
	}
}

// TestSolverCapabilitiesMatchBehavior verifies the registry-derived
// capability flags against the methods' actual behavior for every
// algorithm in the framework.
func TestSolverCapabilitiesMatchBehavior(t *testing.T) {
	g := NewGrid2D(8, 8)
	nForest, nStream := 0, 0
	for _, a := range Algorithms() {
		s := MustCompile(Config{Algorithm: a})
		caps := s.Capabilities()
		if _, err := s.SpanningForest(g); (err == nil) != caps.SpanningForest {
			t.Errorf("%s: SpanningForest err=%v but capability=%v", a.Name(), err, caps.SpanningForest)
		}
		if inc, err := s.NewIncremental(16); (err == nil) != caps.Streaming {
			t.Errorf("%s: NewIncremental err=%v but capability=%v", a.Name(), err, caps.Streaming)
		} else if err == nil && inc.Type() != caps.StreamType {
			t.Errorf("%s: stream type %v != capability %v", a.Name(), inc.Type(), caps.StreamType)
		}
		if caps.SpanningForest {
			nForest++
		}
		if caps.Streaming {
			nStream++
		}
	}
	// 30 union-find (36 minus the six Rem+SpliceAtomic combinations) + SV +
	// the 6 RootUp Liu-Tarjan variants support forest; all 36 union-find +
	// SV + the 6 RootUp LT variants support streaming.
	if nForest != 37 {
		t.Errorf("forest-capable algorithms = %d, want 37", nForest)
	}
	if nStream != 43 {
		t.Errorf("stream-capable algorithms = %d, want 43", nStream)
	}
}

func TestSolverNameRoundTrips(t *testing.T) {
	s := MustCompile(DefaultConfig())
	cfg, err := ParseConfig(s.Name())
	if err != nil {
		t.Fatalf("ParseConfig(%q): %v", s.Name(), err)
	}
	if cfg.Sampling != s.Config().Sampling || cfg.Algorithm != s.Config().Algorithm {
		t.Fatalf("round-trip of %q = %+v", s.Name(), cfg)
	}
}

func TestSolverEmptyGraph(t *testing.T) {
	s := MustCompile(DefaultConfig())
	g := BuildGraph(0, nil)
	if labels := s.Components(g); labels != nil {
		t.Fatalf("empty graph labels = %v", labels)
	}
	forest, err := s.SpanningForest(g)
	if err != nil || len(forest) != 0 {
		t.Fatalf("empty graph forest = %v, %v", forest, err)
	}
}
