package connectit

import (
	"io"

	"connectit/internal/graph"
)

// This file re-exports the graph-representation surface of the library:
// builders, the compressed backend, file IO (edge lists and the .cbin
// binary format), and the synthetic generators used by the paper's
// evaluation.

// GraphRep is the pluggable graph-representation interface: both the flat
// CSR Graph and the byte-compressed CompressedGraph satisfy it, and
// Solver.ComponentsOn runs on whichever representation was built or
// loaded. See internal/graph.Rep for the iteration contract.
type GraphRep = graph.Rep

// CompressedGraph is the byte-compressed CSR backend (Ligra+-style
// difference coding): every algorithm runs directly on the encoding via
// the representation layer, at roughly half the resident bytes of the flat
// CSR on power-law graphs. Build one with Compress, or open a .cbin file
// with LoadCBIN.
type CompressedGraph = graph.CompressedGraph

// BuildGraph constructs a symmetric CSR graph with n vertices from an
// undirected edge list, dropping self loops and duplicate edges. It panics
// if an endpoint is >= n; TryBuildGraph reports that as an error instead.
func BuildGraph(n int, edges []Edge) *Graph { return graph.Build(n, edges) }

// TryBuildGraph is BuildGraph with endpoint validation reported as an
// error, for edge lists from untrusted sources.
func TryBuildGraph(n int, edges []Edge) (*Graph, error) { return graph.TryBuild(n, edges) }

// Compress byte-encodes g into the compressed backend. It panics if the
// encoded adjacency would exceed the backend's 4 GiB offset-index cap;
// TryCompress reports that as an error instead.
func Compress(g *Graph) *CompressedGraph { return graph.Compress(g) }

// TryCompress is Compress with the offset-index cap reported as an error,
// for graphs whose encoded size is not known in advance (file conversions
// and other untrusted inputs), mirroring BuildGraph/TryBuildGraph.
func TryCompress(g *Graph) (*CompressedGraph, error) { return graph.TryCompress(g) }

// LoadEdgeListFile reads a whitespace-separated edge-list file ("u v" per
// line, '#'/'%' comments) and builds a symmetric graph. Malformed input is
// reported as an error carrying the offending line number.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveCBIN writes a compressed graph to path in the versioned .cbin binary
// format, the companion of LoadCBIN.
func SaveCBIN(path string, c *CompressedGraph) error { return graph.SaveCBIN(path, c) }

// LoadCBIN memory-maps a .cbin file written by SaveCBIN: the encoded
// adjacency is never copied and pages in on demand as it is traversed
// (only the much smaller offset index is scanned for validity). Call Close
// on the result to release the mapping.
func LoadCBIN(path string) (*CompressedGraph, error) { return graph.LoadCBIN(path) }

// ReadEdgeList parses an edge list from r and returns the edges plus the
// implied vertex count.
func ReadEdgeList(r io.Reader) ([]Edge, int, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g's undirected edge list to w.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewRMAT generates an RMAT power-law graph with 2^scale vertices and about
// m undirected edges — the analog of the paper's social/web inputs.
func NewRMAT(scale, m int, seed uint64) *Graph {
	return graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
}

// RMATEdges generates a raw RMAT edge stream with the paper's streaming
// parameters (a, b, c) = (0.5, 0.1, 0.1) for batch-incremental experiments.
func RMATEdges(scale, m int, seed uint64) []Edge {
	return graph.RMATEdges(scale, m, 0.5, 0.1, 0.1, seed)
}

// NewBarabasiAlbert generates a preferential-attachment graph with n
// vertices and about k·n edges.
func NewBarabasiAlbert(n, k int, seed uint64) *Graph {
	return graph.BarabasiAlbert(n, k, seed)
}

// BarabasiAlbertEdges generates a raw Barabási–Albert edge stream.
func BarabasiAlbertEdges(n, k int, seed uint64) []Edge {
	return graph.BarabasiAlbertEdges(n, k, seed)
}

// NewErdosRenyi generates a uniform random graph with n vertices and m
// edges.
func NewErdosRenyi(n, m int, seed uint64) *Graph { return graph.ErdosRenyi(n, m, seed) }

// NewGrid2D generates a rows×cols mesh: the high-diameter road-network
// analog (road_usa in the paper).
func NewGrid2D(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// NewWebLike generates an RMAT-style graph with a fraction of isolated
// vertices, mimicking the component structure of the Hyperlink web crawls.
func NewWebLike(scale, m int, isolatedFrac float64, seed uint64) *Graph {
	return graph.WebLike(scale, m, isolatedFrac, seed)
}
