package connectit

import (
	"io"

	"connectit/internal/graph"
)

// This file re-exports the graph construction surface of the library:
// builders, file IO, and the synthetic generators used by the paper's
// evaluation.

// BuildGraph constructs a symmetric CSR graph with n vertices from an
// undirected edge list, dropping self loops and duplicate edges.
func BuildGraph(n int, edges []Edge) *Graph { return graph.Build(n, edges) }

// LoadEdgeListFile reads a whitespace-separated edge-list file ("u v" per
// line, '#'/'%' comments) and builds a symmetric graph.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// ReadEdgeList parses an edge list from r and returns the edges plus the
// implied vertex count.
func ReadEdgeList(r io.Reader) ([]Edge, int, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g's undirected edge list to w.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewRMAT generates an RMAT power-law graph with 2^scale vertices and about
// m undirected edges — the analog of the paper's social/web inputs.
func NewRMAT(scale, m int, seed uint64) *Graph {
	return graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
}

// RMATEdges generates a raw RMAT edge stream with the paper's streaming
// parameters (a, b, c) = (0.5, 0.1, 0.1) for batch-incremental experiments.
func RMATEdges(scale, m int, seed uint64) []Edge {
	return graph.RMATEdges(scale, m, 0.5, 0.1, 0.1, seed)
}

// NewBarabasiAlbert generates a preferential-attachment graph with n
// vertices and about k·n edges.
func NewBarabasiAlbert(n, k int, seed uint64) *Graph {
	return graph.BarabasiAlbert(n, k, seed)
}

// BarabasiAlbertEdges generates a raw Barabási–Albert edge stream.
func BarabasiAlbertEdges(n, k int, seed uint64) []Edge {
	return graph.BarabasiAlbertEdges(n, k, seed)
}

// NewErdosRenyi generates a uniform random graph with n vertices and m
// edges.
func NewErdosRenyi(n, m int, seed uint64) *Graph { return graph.ErdosRenyi(n, m, seed) }

// NewGrid2D generates a rows×cols mesh: the high-diameter road-network
// analog (road_usa in the paper).
func NewGrid2D(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// NewWebLike generates an RMAT-style graph with a fraction of isolated
// vertices, mimicking the component structure of the Hyperlink web crawls.
func NewWebLike(scale, m int, isolatedFrac float64, seed uint64) *Graph {
	return graph.WebLike(scale, m, isolatedFrac, seed)
}
