package connectit

import (
	"io"

	"connectit/internal/graph"
)

// This file re-exports the graph-representation surface of the library:
// builders, the compressed backend, file IO (edge lists and the .cbin
// binary format), and the synthetic generators used by the paper's
// evaluation.

// GraphRep is the pluggable graph-representation interface: the flat CSR
// Graph, the byte-compressed CompressedGraph, and the multi-segment
// SegmentedGraph all satisfy it, and Solver.ComponentsOn runs on whichever
// representation was built or loaded. See internal/graph.Rep for the
// iteration contract.
type GraphRep = graph.Rep

// CompressedGraph is the byte-compressed CSR backend (Ligra+-style
// difference coding): every algorithm runs directly on the encoding via
// the representation layer, at roughly half the resident bytes of the flat
// CSR on power-law graphs. Build one with Compress, or open a .cbin file
// with LoadCBIN.
type CompressedGraph = graph.CompressedGraph

// SegmentedGraph is the multi-segment byte-compressed backend: k
// independently encoded segments, each under its own 4 GiB offset-index
// cap, so graphs whose encoding exceeds a single segment still compress —
// and, loaded from a .cbin v2 file, each segment memory-maps independently,
// letting a graph larger than RAM execute out of core. TryCompress returns
// one automatically past the cap; TrySegment forces the representation.
type SegmentedGraph = graph.SegmentedGraph

// BuildGraph constructs a symmetric CSR graph with n vertices from an
// undirected edge list, dropping self loops and duplicate edges. It panics
// if an endpoint is >= n; TryBuildGraph reports that as an error instead.
func BuildGraph(n int, edges []Edge) *Graph { return graph.Build(n, edges) }

// TryBuildGraph is BuildGraph with endpoint validation reported as an
// error, for edge lists from untrusted sources.
func TryBuildGraph(n int, edges []Edge) (*Graph, error) { return graph.TryBuild(n, edges) }

// Compress byte-encodes g into the compressed backend. It panics if the
// encoded adjacency would exceed the backend's 4 GiB single-segment
// offset-index cap; TryCompress auto-segments instead.
func Compress(g *Graph) *CompressedGraph { return graph.Compress(g) }

// TryCompress byte-encodes g into whichever compressed representation
// fits: a *CompressedGraph while the encoding stays within the 4 GiB
// single-segment offset-index cap, a *SegmentedGraph beyond it. Both
// satisfy GraphRep and run every registered algorithm, so callers with
// inputs of unknown size (file conversions, snapshots) need no cap logic.
func TryCompress(g *Graph) (GraphRep, error) { return graph.TryCompress(g) }

// TrySegment byte-encodes g as a SegmentedGraph with at most segmentBytes
// of encoded adjacency per segment (0 selects the 4 GiB cap), always
// returning the segmented representation even when one segment would do —
// the forced path behind the CLI's -format segmented and benchmarks.
func TrySegment(g *Graph, segmentBytes uint64) (*SegmentedGraph, error) {
	return graph.TrySegment(g, segmentBytes)
}

// Materialize returns the flat CSR form of any representation: CSR graphs
// pass through, compressed and segmented graphs decompress. It backs format
// conversions that need to re-encode a loaded graph (the CLI's -convert
// between .cbin versions and segment granularities).
func Materialize(r GraphRep) (*Graph, error) { return graph.Materialize(r) }

// LoadEdgeListFile reads a whitespace-separated edge-list file ("u v" per
// line, '#'/'%' comments) and builds a symmetric graph. Malformed input is
// reported as an error carrying the offending line number.
func LoadEdgeListFile(path string) (*Graph, error) { return graph.LoadEdgeListFile(path) }

// SaveCBIN writes a compressed representation (*CompressedGraph or
// *SegmentedGraph) to path in the versioned .cbin binary format (v2), the
// companion of LoadCBIN.
func SaveCBIN(path string, r GraphRep) error { return graph.SaveCBIN(path, r) }

// LoadCBIN memory-maps a .cbin file written by SaveCBIN: the encoded
// adjacency is never copied and pages in on demand as it is traversed
// (only the much smaller offset index is scanned for validity), so a v2
// file larger than RAM opens in O(segment table) and executes out of core.
// Single-segment files (including every v1 file) return a
// *CompressedGraph; multi-segment v2 files return a *SegmentedGraph. Call
// Close on the result to release the mapping(s).
func LoadCBIN(path string) (GraphRep, error) { return graph.LoadCBIN(path) }

// ReadEdgeList parses an edge list from r and returns the edges plus the
// implied vertex count.
func ReadEdgeList(r io.Reader) ([]Edge, int, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g's undirected edge list to w.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewRMAT generates an RMAT power-law graph with 2^scale vertices and about
// m undirected edges — the analog of the paper's social/web inputs.
func NewRMAT(scale, m int, seed uint64) *Graph {
	return graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
}

// RMATEdges generates a raw RMAT edge stream with the paper's streaming
// parameters (a, b, c) = (0.5, 0.1, 0.1) for batch-incremental experiments.
func RMATEdges(scale, m int, seed uint64) []Edge {
	return graph.RMATEdges(scale, m, 0.5, 0.1, 0.1, seed)
}

// NewBarabasiAlbert generates a preferential-attachment graph with n
// vertices and about k·n edges.
func NewBarabasiAlbert(n, k int, seed uint64) *Graph {
	return graph.BarabasiAlbert(n, k, seed)
}

// BarabasiAlbertEdges generates a raw Barabási–Albert edge stream.
func BarabasiAlbertEdges(n, k int, seed uint64) []Edge {
	return graph.BarabasiAlbertEdges(n, k, seed)
}

// NewErdosRenyi generates a uniform random graph with n vertices and m
// edges.
func NewErdosRenyi(n, m int, seed uint64) *Graph { return graph.ErdosRenyi(n, m, seed) }

// NewGrid2D generates a rows×cols mesh: the high-diameter road-network
// analog (road_usa in the paper).
func NewGrid2D(rows, cols int) *Graph { return graph.Grid2D(rows, cols) }

// NewWebLike generates an RMAT-style graph with a fraction of isolated
// vertices, mimicking the component structure of the Hyperlink web crawls.
func NewWebLike(scale, m int, isolatedFrac float64, seed uint64) *Graph {
	return graph.WebLike(scale, m, isolatedFrac, seed)
}
