package connectit

// Streaming benchmarks: Table 4 (maximum ingestion throughput per
// algorithm), Figures 4/16 (throughput vs batch size), Figure 17 (mixed
// insert/query ratios), Figure 18 (per-batch latency), and Table 5 (the
// STINGER comparison).

import (
	"fmt"
	"testing"

	"connectit/internal/graph"
	"connectit/internal/stinger"
)

// streamFamilies are Table 4's rows, selected by canonical spec strings.
func streamFamilies() []Algorithm {
	var out []Algorithm
	for _, spec := range []string{
		"uf;early;naive;split-one",
		"uf;hooks;naive;split-one",
		"uf;async;naive;split-one",
		"uf;rem-cas;naive;split-one",
		"uf;rem-lock;naive;split-one",
		"uf;jtb;two-try",
		"lt;CRFA", // the paper's fastest streaming LT
		"sv",
	} {
		out = append(out, MustParseAlgorithm(spec))
	}
	return out
}

var benchStreams = map[string]func() ([]Edge, int){
	"social": func() ([]Edge, int) {
		g := NewRMAT(15, 16*(1<<15), 42)
		return g.Edges(), g.NumVertices()
	},
	"rmat-stream": func() ([]Edge, int) {
		n := 1 << 17
		return RMATEdges(17, 10*n, 5), n
	},
	"ba-stream": func() ([]Edge, int) {
		n := 1 << 16
		return BarabasiAlbertEdges(n, 10, 6), n
	},
}

// BenchmarkTable4StreamingThroughput regenerates Table 4: the whole edge
// stream ingested as one batch; throughput = edges/sec (reported as the
// edges/op metric divided by ns/op by cmd/experiments).
func BenchmarkTable4StreamingThroughput(b *testing.B) {
	for sname, mk := range benchStreams {
		edges, n := mk()
		for _, alg := range streamFamilies() {
			b.Run(fmt.Sprintf("%s/%s", sname, alg.Name()), func(b *testing.B) {
				b.SetBytes(int64(len(edges))) // bytes/op metric = edges/op
				solver := MustCompile(Config{Algorithm: alg})
				for i := 0; i < b.N; i++ {
					inc, err := solver.NewIncremental(n)
					if err != nil {
						b.Fatal(err)
					}
					inc.ProcessBatch(edges, nil)
				}
			})
		}
	}
}

// BenchmarkFigure4ThroughputVsBatch regenerates Figures 4/16: ingestion
// throughput as a function of batch size.
func BenchmarkFigure4ThroughputVsBatch(b *testing.B) {
	edges, n := benchStreams["ba-stream"]()
	algos := []Algorithm{
		MustParseAlgorithm("uf;rem-cas;naive;split-one"),
		MustParseAlgorithm("uf;async;naive;split-one"),
		MustParseAlgorithm("sv"),
	}
	for _, batch := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, alg := range algos {
			b.Run(fmt.Sprintf("batch=%d/%s", batch, alg.Name()), func(b *testing.B) {
				b.SetBytes(int64(len(edges)))
				solver := MustCompile(Config{Algorithm: alg})
				for i := 0; i < b.N; i++ {
					inc, err := solver.NewIncremental(n)
					if err != nil {
						b.Fatal(err)
					}
					for lo := 0; lo < len(edges); lo += batch {
						hi := lo + batch
						if hi > len(edges) {
							hi = len(edges)
						}
						inc.ProcessBatch(edges[lo:hi], nil)
					}
				}
			})
		}
	}
}

// BenchmarkFigure17MixedBatch regenerates Figure 17: Union-Rem-CAS variants
// under varying insert-to-query ratios (1/ratio random queries per update,
// shuffled into the batch).
func BenchmarkFigure17MixedBatch(b *testing.B) {
	edges, n := benchStreams["ba-stream"]()
	variants := []Algorithm{
		MustParseAlgorithm("uf;rem-cas;naive;split-one"),
		MustParseAlgorithm("uf;rem-cas;split;split-one"),
		MustParseAlgorithm("uf;rem-cas;halve;halve-one"),
	}
	for _, ratio := range []float64{0.1, 0.5, 1.0} {
		nq := int(float64(len(edges)) * (1/ratio - 1))
		if ratio == 1.0 {
			nq = 0
		}
		queries := make([][2]uint32, nq)
		for i := range queries {
			h := graph.Hash64(uint64(i) + 77)
			queries[i] = [2]uint32{uint32(h % uint64(n)), uint32(graph.Hash64(h) % uint64(n))}
		}
		for _, alg := range variants {
			b.Run(fmt.Sprintf("ratio=%.1f/%s", ratio, alg.Name()), func(b *testing.B) {
				b.SetBytes(int64(len(edges) + nq))
				solver := MustCompile(Config{Algorithm: alg})
				for i := 0; i < b.N; i++ {
					inc, err := solver.NewIncremental(n)
					if err != nil {
						b.Fatal(err)
					}
					inc.ProcessBatch(edges, queries)
				}
			})
		}
	}
}

// BenchmarkFigure18Latency regenerates Figure 18's per-batch latency curve:
// the reported ns/op at each batch size is the batch latency.
func BenchmarkFigure18Latency(b *testing.B) {
	edges, n := benchStreams["rmat-stream"]()
	solver := MustCompile(Config{Algorithm: MustParseAlgorithm("uf;rem-cas;naive;split-one")})
	for _, batch := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			inc, err := solver.NewIncremental(n)
			if err != nil {
				b.Fatal(err)
			}
			pos := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pos+batch > len(edges) {
					pos = 0
				}
				inc.ProcessBatch(edges[pos:pos+batch], nil)
				pos += batch
			}
		})
	}
}

// BenchmarkTable5Stinger regenerates Table 5: STINGER's streaming CC vs
// ConnectIt's Union-Rem-CAS(SplitAtomicOne) ingesting RMAT batches of
// varying sizes into an initially empty graph. ns/op is the per-batch time
// the table reports.
func BenchmarkTable5Stinger(b *testing.B) {
	const scale = 14 // 2^14 vertices; the paper uses 2^20 with hours-long STINGER init
	n := 1 << scale
	stream := RMATEdges(scale, 1<<21, 9)
	for _, batch := range []int{10, 100, 1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("STINGER/batch=%d", batch), func(b *testing.B) {
			s := stinger.New(n)
			pos := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pos+batch > len(stream) {
					pos = 0
				}
				s.InsertBatch(stream[pos : pos+batch])
				pos += batch
			}
		})
		b.Run(fmt.Sprintf("ConnectIt/batch=%d", batch), func(b *testing.B) {
			inc, err := NewIncremental(n, Config{Algorithm: MustParseAlgorithm("uf;rem-cas;naive;split-one")})
			if err != nil {
				b.Fatal(err)
			}
			pos := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pos+batch > len(stream) {
					pos = 0
				}
				inc.ProcessBatch(stream[pos:pos+batch], nil)
				pos += batch
			}
		})
	}
}

// BenchmarkStreamTypeDispatch measures the three streaming types' overhead
// on the same workload (an ablation beyond the paper's tables: Type i vs
// Type iii costs the barrier, Type ii costs the synchronous rounds).
func BenchmarkStreamTypeDispatch(b *testing.B) {
	edges, n := benchStreams["ba-stream"]()
	cases := []struct {
		name string
		alg  Algorithm
	}{
		{"type-i-async", MustParseAlgorithm("uf;rem-cas;naive;split-one")},
		{"type-iii-phased", MustParseAlgorithm("uf;rem-cas;naive;splice")},
		{"type-ii-synchronous", MustParseAlgorithm("sv")},
	}
	queries := make([][2]uint32, len(edges)/10)
	for i := range queries {
		h := graph.Hash64(uint64(i))
		queries[i] = [2]uint32{uint32(h % uint64(n)), uint32(graph.Hash64(h) % uint64(n))}
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(edges) + len(queries)))
			solver := MustCompile(Config{Algorithm: c.alg})
			for i := 0; i < b.N; i++ {
				inc, err := solver.NewIncremental(n)
				if err != nil {
					b.Fatal(err)
				}
				inc.ProcessBatch(edges, queries)
			}
		})
	}
}
