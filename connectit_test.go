package connectit

import (
	"errors"
	"strings"
	"testing"

	"connectit/internal/testutil"
)

func TestQuickStartFlow(t *testing.T) {
	g := BuildGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	labels, err := Connectivity(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] {
		t.Fatalf("labels = %v", labels)
	}
	if NumComponents(labels) != 2 {
		t.Fatalf("components = %d, want 2", NumComponents(labels))
	}
	l, c := LargestComponent(labels)
	if c != 3 || l != labels[0] {
		t.Fatalf("largest = (%d,%d)", l, c)
	}
}

func TestPublicAlgorithmEnumeration(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 55 {
		t.Fatalf("algorithms = %d, want 55 (36 UF + SV + 16 LT + Stergiou + LP)", len(algos))
	}
	names := map[string]bool{}
	for _, a := range algos {
		if names[a.Name()] {
			t.Fatalf("duplicate algorithm name %s", a.Name())
		}
		names[a.Name()] = true
	}
}

func TestPublicAPIAllAlgorithmsOnRMAT(t *testing.T) {
	g := NewRMAT(10, 6000, 3)
	want := testutil.Components(g)
	for _, a := range Algorithms() {
		cfg := Config{Sampling: BFSSampling, Algorithm: a, Seed: 1}
		labels, err := Connectivity(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		testutil.CheckPartition(t, a.Name(), labels, want)
	}
}

func TestLiuTarjanLookup(t *testing.T) {
	if _, err := LiuTarjanAlgorithm("CRFA"); err != nil {
		t.Fatalf("CRFA should exist: %v", err)
	}
	_, err := LiuTarjanAlgorithm("XYZ")
	if err == nil {
		t.Fatal("XYZ should not exist")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unknown code error = %v, want ErrUnsupported", err)
	}
	if !strings.Contains(err.Error(), "XYZ") {
		t.Fatalf("error %q does not name the bad code", err)
	}
	// Degenerate codes must keep the documented ErrUnsupported contract.
	for _, code := range []string{"", "   ", "CRFA;PRF"} {
		if _, err := LiuTarjanAlgorithm(code); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("LiuTarjanAlgorithm(%q) = %v, want ErrUnsupported", code, err)
		}
	}
}

func TestSpanningForestPublic(t *testing.T) {
	g := NewGrid2D(20, 20)
	forest, err := SpanningForest(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != g.NumVertices()-1 {
		t.Fatalf("forest edges = %d, want %d", len(forest), g.NumVertices()-1)
	}
	raw := make([][2]uint32, len(forest))
	for i, e := range forest {
		raw[i] = [2]uint32{e.U, e.V}
	}
	testutil.CheckSpanningForest(t, "grid", g, raw)
}

func TestSpanningForestUnsupportedSurfaces(t *testing.T) {
	g := NewGrid2D(4, 4)
	cfg := Config{Algorithm: LabelPropagationAlgorithm()}
	if _, err := SpanningForest(g, cfg); err == nil {
		t.Fatal("expected error for label propagation spanning forest")
	}
}

func TestIncrementalPublic(t *testing.T) {
	inc, err := NewIncremental(6, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := inc.ProcessBatch(
		[]Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		[][2]uint32{{4, 5}},
	)
	if res[0] {
		t.Fatal("4 and 5 should not be connected")
	}
	if !inc.Connected(0, 1) || inc.Connected(0, 2) {
		t.Fatal("post-batch connectivity wrong")
	}
	inc.ProcessBatch([]Edge{{U: 1, V: 2}}, nil)
	if !inc.Connected(0, 3) {
		t.Fatal("0 and 3 should be connected after second batch")
	}
	if inc.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3 ({0..3}, {4}, {5})", inc.NumComponents())
	}
}

func TestGeneratorsExported(t *testing.T) {
	if g := NewBarabasiAlbert(500, 3, 1); g.NumVertices() != 500 {
		t.Fatal("BA generator")
	}
	if g := NewErdosRenyi(100, 200, 1); g.NumVertices() != 100 {
		t.Fatal("ER generator")
	}
	if g := NewWebLike(8, 500, 0.1, 1); g.NumVertices() != 256 {
		t.Fatal("WebLike generator")
	}
	if len(RMATEdges(8, 100, 1)) != 100 {
		t.Fatal("RMAT edges")
	}
	if len(BarabasiAlbertEdges(100, 2, 1)) == 0 {
		t.Fatal("BA edges")
	}
}
