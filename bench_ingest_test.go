package connectit

// Concurrent ingest-engine benchmarks (beyond the paper's synchronous
// batch tables): mixed update/query scheduling under real goroutine
// concurrency, per stream type, against a coarse-locked STINGER baseline.
// The bench-smoke CI job runs these at -benchtime=1x to seed the perf
// trajectory; BENCH_* metrics are updates/s and queries/s.

import (
	"fmt"
	"os"
	"testing"

	"connectit/internal/ingest"
	"connectit/internal/stinger"
)

const benchIngestProducers = 8

// driveMixed runs the shared concurrent mixed-workload driver with the
// benchmark's producer count and returns the number of queries issued.
func driveMixed(update func(u, v uint32), connected func(u, v uint32) bool,
	edges []Edge, n int, mix float64) uint64 {
	return ingest.Drive(update, connected, edges, n, benchIngestProducers, mix)
}

// driveStream is driveMixed against a Stream's error-returning lifecycle
// surface.
func driveStream(st *Stream, edges []Edge, n int, mix float64) uint64 {
	return ingest.DriveStream(st, edges, n, benchIngestProducers, mix)
}

// BenchmarkStreamMixedRatio measures the concurrent ingest engine at
// 90/10, 50/50, and 10/90 update:query mixes, one algorithm per stream
// type plus the coarse-locked STINGER baseline. Metrics: updates/s and
// queries/s (wall-clock, 8 producers).
//
// Setting CONNECTIT_NO_WITNESS=1 runs every stream with spanning-forest
// capture disabled; CI diffs the two runs with benchstat to bound the
// witness-capture overhead on the ingest hot path (acceptance: ≤5% on the
// 90/10 mix).
func BenchmarkStreamMixedRatio(b *testing.B) {
	n := 1 << 15
	edges := BarabasiAlbertEdges(n, 8, 17)
	var opts []StreamOptions
	if os.Getenv("CONNECTIT_NO_WITNESS") != "" {
		opts = append(opts, StreamOptions{DisableForestCapture: true})
	}
	mixes := []struct {
		name string
		q    float64
	}{
		{"90-10", 0.1},
		{"50-50", 0.5},
		{"10-90", 0.9},
	}
	algos := []struct {
		name string
		alg  Algorithm
	}{
		{"type-i/rem-cas", MustParseAlgorithm("uf;rem-cas;naive;split-one")},
		{"type-ii/sv", MustParseAlgorithm("sv")},
		{"type-ii/lt-CRFA", MustParseAlgorithm("lt;CRFA")},
		{"type-iii/rem-splice", MustParseAlgorithm("uf;rem-cas;naive;splice")},
	}
	for _, mix := range mixes {
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", mix.name, a.name), func(b *testing.B) {
				solver := MustCompile(Config{Algorithm: a.alg})
				var updates, queries, epochs, rounds uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := solver.Stream(n, opts...)
					if err != nil {
						b.Fatal(err)
					}
					q := driveStream(st, edges, n, mix.q)
					st.Sync()
					updates += uint64(len(edges))
					queries += q
					stats := st.Stats()
					epochs += stats.Epochs
					rounds += stats.Rounds
				}
				secs := b.Elapsed().Seconds()
				b.ReportMetric(float64(updates)/secs, "updates/s")
				b.ReportMetric(float64(queries)/secs, "queries/s")
				if rounds > 0 {
					b.ReportMetric(float64(epochs)/float64(rounds), "epochs/round")
				}
			})
		}
		b.Run(fmt.Sprintf("%s/stinger-coarse", mix.name), func(b *testing.B) {
			var updates, queries uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := stinger.NewCoarse(n)
				q := driveMixed(s.Update, s.Connected, edges, n, mix.q)
				updates += uint64(len(edges))
				queries += q
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(updates)/secs, "updates/s")
			b.ReportMetric(float64(queries)/secs, "queries/s")
		})
	}
}

// BenchmarkStreamPrefilter isolates the pre-filter's effect on the Type i
// hot path: the same concurrent 90/10 workload with and without the
// root-probe filter.
func BenchmarkStreamPrefilter(b *testing.B) {
	n := 1 << 15
	edges := BarabasiAlbertEdges(n, 8, 19)
	solver := MustCompile(Config{Algorithm: MustParseAlgorithm("uf;rem-cas;naive;split-one")})
	for _, tc := range []struct {
		name string
		opt  StreamOptions
	}{
		{"prefilter-on", StreamOptions{}},
		{"prefilter-off", StreamOptions{DisablePrefilter: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := solver.Stream(n, tc.opt)
				if err != nil {
					b.Fatal(err)
				}
				driveStream(st, edges, n, 0.1)
				st.Sync()
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(b.N)*float64(len(edges))/secs, "updates/s")
		})
	}
}

// BenchmarkStreamEpochSize sweeps the epoch size of a buffered (Type ii)
// stream: small epochs pay per-round overhead (softened by coalescing),
// large epochs batch better but delay visibility.
func BenchmarkStreamEpochSize(b *testing.B) {
	n := 1 << 15
	edges := BarabasiAlbertEdges(n, 8, 23)
	solver := MustCompile(Config{Algorithm: MustParseAlgorithm("sv")})
	for _, size := range []int{64, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("epoch=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := solver.Stream(n, StreamOptions{EpochSize: size})
				if err != nil {
					b.Fatal(err)
				}
				driveStream(st, edges, n, 0.1)
				st.Sync()
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(b.N)*float64(len(edges))/secs, "updates/s")
		})
	}
}

// BenchmarkStreamCoalesce isolates the coalescing pipeline's Type ii win:
// the same concurrent 90/10 workload at small epoch sizes with the
// coalesce bound at its default (queued epochs fold into shared O(n)
// synchronous rounds) versus 1 (every epoch pays its own round, the
// pre-pipeline behavior).
func BenchmarkStreamCoalesce(b *testing.B) {
	n := 1 << 15
	edges := BarabasiAlbertEdges(n, 8, 29)
	solver := MustCompile(Config{Algorithm: MustParseAlgorithm("sv")})
	for _, size := range []int{64, 512} {
		for _, tc := range []struct {
			name  string
			bound int
		}{
			{"coalesce-on", 0},
			{"coalesce-off", 1},
		} {
			b.Run(fmt.Sprintf("epoch=%d/%s", size, tc.name), func(b *testing.B) {
				var epochs, rounds uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := solver.Stream(n, StreamOptions{EpochSize: size, CoalesceBound: tc.bound})
					if err != nil {
						b.Fatal(err)
					}
					driveStream(st, edges, n, 0.1)
					st.Sync()
					stats := st.Stats()
					epochs += stats.Epochs
					rounds += stats.Rounds
				}
				secs := b.Elapsed().Seconds()
				b.ReportMetric(float64(b.N)*float64(len(edges))/secs, "updates/s")
				if rounds > 0 {
					b.ReportMetric(float64(epochs)/float64(rounds), "epochs/round")
				}
			})
		}
	}
}
