package connectit

import (
	"fmt"

	"connectit/internal/query"
)

// Query is the composable connectivity query surface (DESIGN.md §12): one
// engine type answering path, component, histogram, and forest queries over
// whatever produced the connectivity — a live Stream's spanning forest
// (Stream.Query), a static forest computed by Algorithm 2 (Solver.Query over
// a *Graph), or a bare labeling (Solver.Query over a compressed or
// segmented graph, or QueryLabels).
//
// Capability gating happens at construction, mirroring Compile's
// fail-at-compile contract: a handle you hold answers every query its
// backing supports, and the queries a label-backed handle cannot answer
// (PathBetween, SpanningForest) return ErrNoForest — a verdict fixed when
// the handle was built, never discovered mid-query.
//
// A Query is safe for concurrent use.
type Query = query.Engine

// QueryStats is a snapshot of a Query engine's index counters.
type QueryStats = query.Stats

// Bin is one component-size histogram bucket: Count components of exactly
// Size vertices.
type Bin = query.Bin

// Histogram is a component-size histogram in increasing Size order, as
// returned by Query.ComponentHistogram.
type Histogram = query.Histogram

// ErrNoForest is returned by Query.PathBetween and Query.SpanningForest on
// label-backed engines (no spanning forest behind them). Forest-backed
// engines never return it.
var ErrNoForest = query.ErrNoForest

// QueryLabels builds a label-backed Query over a connectivity labeling, as
// returned by Solver.Components or Connectivity: labels[v] is v's component
// label in canonical star form (labels[labels[v]] == labels[v]).
// Component, size, counting, and histogram queries work; PathBetween and
// SpanningForest return ErrNoForest. The labels slice is copied.
//
// It subsumes the label-level helpers: NumComponents(labels) is
// QueryLabels(labels).NumComponents(), LargestComponent(labels) is
// QueryLabels(labels).LargestComponent().
func QueryLabels(labels []uint32) *Query {
	return query.NewLabelled(labels)
}

// Query computes connectivity of g with the compiled combination and wraps
// the result in a Query handle — the one-stop surface replacing the
// Components / NumComponents / LargestComponent call chains.
//
// The handle's power is fixed at construction by what the combination and
// representation support, mirroring Compile's capability gating:
//
//   - Combinations without spanning-forest support (Rem+SpliceAtomic
//     union-find, non-RootUp Liu-Tarjan, Stergiou, Label-Propagation)
//     return the ErrUnsupported error captured at compile time — use
//     ComponentsOn + QueryLabels for a label-only view of those.
//   - A *Graph yields a forest-backed handle: every query works, including
//     PathBetween and SpanningForest (Algorithm 2).
//   - A *CompressedGraph or *SegmentedGraph yields a label-backed handle
//     (the compressed kernels compute labelings, not forests): counting and
//     histogram queries work; PathBetween and SpanningForest return
//     ErrNoForest.
//
// The handle owns a snapshot of the result and stays valid after further
// Solver runs.
func (s *Solver) Query(g GraphRep) (*Query, error) {
	if err := s.c.ForestErr(); err != nil {
		return nil, err
	}
	switch g := g.(type) {
	case *Graph:
		forest, err := s.SpanningForest(g)
		if err != nil {
			return nil, err
		}
		return query.NewStatic(g.NumVertices(), forest), nil
	case *CompressedGraph, *SegmentedGraph:
		labels, err := s.ComponentsOn(g)
		if err != nil {
			return nil, err
		}
		return QueryLabels(labels), nil
	}
	return nil, fmt.Errorf("%w: graph representation %T", ErrUnsupported, g)
}
