package connectit

// Benchmarks for the compiled Solver path: the point of Compile is that
// repeated runs skip per-call validation and reuse scratch (labels, skip
// flags, union-find auxiliary arrays), so allocs/op on the finish hot path
// drop versus the one-shot free functions, which compile per call.

import (
	"testing"
)

// BenchmarkSolverReuse compares the free-function path (compile + allocate
// every call) against a reused Solver on the same configuration. The
// NoSampling configurations isolate the finish hot path; with the identity
// labeling and DSU auxiliary arrays retained, the Solver side runs
// allocation-free. The sampled configuration shows the smaller win when the
// sampling phase still allocates its own result.
func BenchmarkSolverReuse(b *testing.B) {
	g := benchPanel(b)["social"]
	for _, c := range []struct{ name, spec string }{
		{"RemCAS-NoSample", "none;uf;rem-cas;naive;split-one"},
		{"Hooks-NoSample", "none;uf;hooks;naive;split-one"},
		{"JTB-NoSample", "none;uf;jtb;two-try"},
		{"RemCAS-KOut", "kout;uf;rem-cas;naive;split-one"},
	} {
		cfg, err := ParseConfig(c.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/FreeFunction", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Connectivity(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/Solver", func(b *testing.B) {
			b.ReportAllocs()
			solver := MustCompile(cfg)
			for i := 0; i < b.N; i++ {
				if _, err := solver.ComponentsOn(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverBackends compares the three graph representations on the
// paper's compressed-graph axis (RMAT at scale 20): resident graph bytes
// and solve throughput — CSR, running directly on the byte-compressed
// encoding, and the multi-segment encoding (split well below the 4 GiB
// cap so segment resolution genuinely fires on the finish hot path). The
// graph-bytes and bytes/directed-edge metrics make the space/throughput
// tradeoff diffable across PRs — compressed should hold ≥2x smaller
// resident bytes at no more than ~2x slowdown, and segmented should track
// compressed closely (the hint makes resolution a predictable branch).
func BenchmarkSolverBackends(b *testing.B) {
	scale := 20
	if testing.Short() {
		scale = 16
	}
	g := NewRMAT(scale, 16*(1<<scale), 3)
	c := Compress(g)
	// Split into ~16 segments so cross-segment traffic is real at either
	// scale.
	seg, err := TrySegment(g, uint64(c.SizeBytes()/16))
	if err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, rep GraphRep) {
		b.ReportAllocs()
		b.ReportMetric(float64(rep.SizeBytes()), "graph-bytes")
		b.ReportMetric(float64(rep.SizeBytes())/float64(rep.NumDirectedEdges()), "bytes/edge")
	}
	for _, spec := range []string{
		"none;uf;rem-cas;naive;split-one",
		"kout;uf;rem-cas;naive;split-one",
		"bfs;uf;rem-cas;naive;split-one",
		"kout;lt;PRF",
	} {
		cfg, err := ParseConfig(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec+"/CSR", func(b *testing.B) {
			solver := MustCompile(cfg)
			report(b, g)
			for i := 0; i < b.N; i++ {
				if _, err := solver.ComponentsOn(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(spec+"/Compressed", func(b *testing.B) {
			solver := MustCompile(cfg)
			report(b, c)
			for i := 0; i < b.N; i++ {
				if _, err := solver.ComponentsOn(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(spec+"/Segmented", func(b *testing.B) {
			solver := MustCompile(cfg)
			report(b, seg)
			b.ReportMetric(float64(seg.NumSegments()), "segments")
			for i := 0; i < b.N; i++ {
				if _, err := solver.ComponentsOn(seg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures compilation itself: validation plus closure
// construction, no graph work.
func BenchmarkCompile(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
