package connectit

// Benchmarks for the compiled Solver path: the point of Compile is that
// repeated runs skip per-call validation and reuse scratch (labels, skip
// flags, union-find auxiliary arrays), so allocs/op on the finish hot path
// drop versus the one-shot free functions, which compile per call.

import (
	"testing"
)

// BenchmarkSolverReuse compares the free-function path (compile + allocate
// every call) against a reused Solver on the same configuration. The
// NoSampling configurations isolate the finish hot path; with the identity
// labeling and DSU auxiliary arrays retained, the Solver side runs
// allocation-free. The sampled configuration shows the smaller win when the
// sampling phase still allocates its own result.
func BenchmarkSolverReuse(b *testing.B) {
	g := benchPanel(b)["social"]
	for _, c := range []struct{ name, spec string }{
		{"RemCAS-NoSample", "none;uf;rem-cas;naive;split-one"},
		{"Hooks-NoSample", "none;uf;hooks;naive;split-one"},
		{"JTB-NoSample", "none;uf;jtb;two-try"},
		{"RemCAS-KOut", "kout;uf;rem-cas;naive;split-one"},
	} {
		cfg, err := ParseConfig(c.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/FreeFunction", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Connectivity(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/Solver", func(b *testing.B) {
			b.ReportAllocs()
			solver := MustCompile(cfg)
			for i := 0; i < b.N; i++ {
				solver.Components(g)
			}
		})
	}
}

// BenchmarkCompile measures compilation itself: validation plus closure
// construction, no graph work.
func BenchmarkCompile(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
