package bfs

import (
	"testing"

	"connectit/internal/graph"
)

// seqBFS computes reference distances with a sequential BFS.
func seqBFS(g *graph.Graph, src graph.Vertex) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func checkBFS(t *testing.T, g *graph.Graph, src graph.Vertex) {
	t.Helper()
	res := Run(g, src)
	dist := seqBFS(g, src)
	reachable := 0
	maxDist := 0
	for v, d := range dist {
		if d >= 0 {
			reachable++
			if d > maxDist {
				maxDist = d
			}
			if res.Parent[v] == graph.None {
				t.Fatalf("vertex %d reachable (dist %d) but unvisited", v, d)
			}
		} else if res.Parent[v] != graph.None {
			t.Fatalf("vertex %d unreachable but has parent %d", v, res.Parent[v])
		}
	}
	if res.Visited != reachable {
		t.Fatalf("visited = %d, want %d", res.Visited, reachable)
	}
	if res.Rounds < maxDist {
		t.Fatalf("rounds = %d < eccentricity %d", res.Rounds, maxDist)
	}
	// Parent tree validity: following parents must reach src, and each tree
	// edge must be a real graph edge with dist(parent) = dist(child) - 1.
	for v := range res.Parent {
		p := res.Parent[v]
		if p == graph.None || graph.Vertex(v) == src {
			continue
		}
		if dist[p] != dist[v]-1 {
			t.Fatalf("tree edge %d->%d: dist %d vs %d", v, p, dist[v], dist[p])
		}
		found := false
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tree edge %d->%d is not a graph edge", v, p)
		}
	}
}

func TestBFSOnFixtures(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		src  graph.Vertex
	}{
		{"path", graph.Path(100), 0},
		{"path-mid", graph.Path(101), 50},
		{"star", graph.Star(500), 0},
		{"star-leaf", graph.Star(500), 17},
		{"cycle", graph.Cycle(64), 5},
		{"grid", graph.Grid2D(30, 40), 0},
		{"cliques-disconnected", graph.Cliques(4, 25), 3},
		{"rmat", graph.RMAT(12, 40000, 0.57, 0.19, 0.19, 1), 0},
		{"single", graph.Build(1, nil), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkBFS(t, tc.g, tc.src) })
	}
}

func TestBFSTriggersBottomUp(t *testing.T) {
	// A star from the center floods the whole graph in one round, forcing
	// the dense bottom-up path (frontier edges = n-1 > m/20).
	g := graph.Star(10000)
	res := Run(g, 0)
	if res.Visited != 10000 {
		t.Fatalf("visited = %d, want all", res.Visited)
	}
	// One productive expansion plus the final empty one.
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
}

func TestBFSIsolatedSource(t *testing.T) {
	g := graph.Build(5, []graph.Edge{{U: 1, V: 2}})
	res := Run(g, 0)
	if res.Visited != 1 {
		t.Fatalf("visited = %d, want 1", res.Visited)
	}
	if res.Parent[0] != 0 || res.Parent[1] != graph.None {
		t.Fatal("parent array wrong for isolated source")
	}
}
