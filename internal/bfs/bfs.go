// Package bfs implements the direction-optimizing parallel breadth-first
// search of Beamer et al. used by ConnectIt's BFS sampling (§3.2) and the
// BFSCC baseline. The search switches from sparse top-down frontier
// expansion to dense bottom-up scanning when the frontier's incident edge
// count exceeds a fraction of the remaining edges, which is what makes BFS
// sampling competitive on low-diameter graphs with a massive component.
package bfs

import (
	"sync"
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// denom is the denominator of the direction-switch threshold: go bottom-up
// when the frontier's out-edges exceed m/denom (Beamer's alpha heuristic).
const denom = 20

// Result holds the output of a BFS.
type Result struct {
	// Parent[v] is v's parent in the BFS tree, Parent[src] == src, and
	// graph.None for unreached vertices.
	Parent []graph.Vertex
	// Rounds is the number of frontier expansions performed.
	Rounds int
	// Visited is the number of vertices reached, including src.
	Visited int
}

// Run performs a parallel direction-optimizing BFS from src. It is generic
// over the graph representation (graph.Rep), so the frontier expansions run
// directly on compressed encodings without materializing a flat CSR.
func Run[G graph.Rep](g G, src graph.Vertex) *Result {
	n := g.NumVertices()
	parent := make([]graph.Vertex, n)
	parallel.For(n, func(i int) { parent[i] = graph.None })
	parent[src] = src

	// epoch[v] == round marks membership in the round's frontier; reused
	// across rounds without clearing.
	epoch := make([]uint32, n)
	frontier := []graph.Vertex{src}
	visited := 1
	rounds := 0
	totalEdges := uint64(g.NumDirectedEdges())

	for len(frontier) > 0 {
		rounds++
		round := uint32(rounds)
		frontierEdges := parallel.ReduceAdd(len(frontier), func(i int) uint64 {
			return uint64(g.Degree(frontier[i]))
		})
		if frontierEdges+uint64(len(frontier)) > totalEdges/denom {
			frontier = bottomUp(g, parent, frontier, epoch, round)
		} else {
			frontier = topDown(g, parent, frontier)
		}
		visited += len(frontier)
	}
	return &Result{Parent: parent, Rounds: rounds, Visited: visited}
}

// topDown expands the sparse frontier: each frontier vertex claims its
// unvisited neighbors with a CAS on the parent entry.
func topDown[G graph.Rep](g G, parent []graph.Vertex, frontier []graph.Vertex) []graph.Vertex {
	var mu sync.Mutex
	var next []graph.Vertex
	parallel.ForGrained(len(frontier), 128, func(lo, hi int) {
		local := make([]graph.Vertex, 0, 4*(hi-lo))
		var buf []graph.Vertex
		for i := lo; i < hi; i++ {
			v := frontier[i]
			buf = g.NeighborsInto(v, buf)
			for _, u := range buf {
				if atomic.LoadUint32(&parent[u]) == graph.None &&
					atomic.CompareAndSwapUint32(&parent[u], graph.None, v) {
					local = append(local, u)
				}
			}
		}
		if len(local) > 0 {
			mu.Lock()
			next = append(next, local...)
			mu.Unlock()
		}
	})
	return next
}

// bottomUp scans all unvisited vertices for a neighbor in the current
// frontier (membership tested via the epoch array). Each unvisited vertex
// writes only its own parent entry; the next frontier is gathered from the
// epoch marks.
func bottomUp[G graph.Rep](g G, parent []graph.Vertex, frontier []graph.Vertex, epoch []uint32, round uint32) []graph.Vertex {
	n := g.NumVertices()
	cur := round*2 - 1 // odd mark: current frontier; even mark: claimed
	parallel.For(len(frontier), func(i int) { atomic.StoreUint32(&epoch[frontier[i]], cur) })
	parallel.ForGrained(n, 1024, func(lo, hi int) {
		var buf []graph.Vertex
		for v := lo; v < hi; v++ {
			if atomic.LoadUint32(&parent[v]) != graph.None {
				continue
			}
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for _, u := range buf {
				if atomic.LoadUint32(&epoch[u]) == cur {
					atomic.StoreUint32(&parent[v], u)
					atomic.StoreUint32(&epoch[v], cur+1)
					break
				}
			}
		}
	})
	return parallel.FilterIndices(n, func(i int) bool { return epoch[i] == cur+1 })
}
