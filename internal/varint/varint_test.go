package varint

import (
	"math"
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 21, 1 << 28,
		1 << 35, 1 << 42, 1 << 49, 1 << 56, 1<<63 - 1, 1 << 63, math.MaxUint64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		cases = append(cases, rng.Uint64()>>uint(rng.Intn(64)))
	}
	var buf [MaxLen]byte
	for _, v := range cases {
		k := Put(buf[:], v)
		got, n := Get(buf[:k])
		if got != v || n != k {
			t.Fatalf("Put/Get(%d): got (%d, %d), wrote %d bytes", v, got, n, k)
		}
		app := Append(nil, v)
		if len(app) != k {
			t.Fatalf("Append(%d): %d bytes, Put wrote %d", v, len(app), k)
		}
		for i := range app {
			if app[i] != buf[i] {
				t.Fatalf("Append(%d) byte %d: %02x != %02x", v, i, app[i], buf[i])
			}
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -63, 64, -64, math.MaxInt64, math.MinInt64}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		cases = append(cases, int64(rng.Uint64()))
	}
	for _, d := range cases {
		if got := Unzigzag(Zigzag(d)); got != d {
			t.Fatalf("Unzigzag(Zigzag(%d)) = %d", d, got)
		}
	}
	// Small magnitudes must encode small regardless of sign.
	var buf [MaxLen]byte
	for d := int64(-63); d <= 63; d++ {
		if k := Put(buf[:], Zigzag(d)); k != 1 {
			t.Fatalf("Zigzag(%d) took %d bytes, want 1", d, k)
		}
	}
}

// TestGetTruncated pins the untrusted-input contract: a varint cut mid-
// encoding decodes to n == 0, never to a fabricated value or a panic.
func TestGetTruncated(t *testing.T) {
	var buf [MaxLen]byte
	for _, v := range []uint64{128, 1 << 20, 1 << 40, math.MaxUint64} {
		k := Put(buf[:], v)
		for cut := 0; cut < k; cut++ {
			if _, n := Get(buf[:cut]); n != 0 {
				t.Fatalf("Get of %d truncated at %d bytes: n = %d, want 0", v, cut, n)
			}
		}
	}
}

// TestGetOverflow rejects an 11-byte continuation run and a 10th byte that
// would overflow uint64.
func TestGetOverflow(t *testing.T) {
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := Get(over); n != 0 {
		t.Fatalf("11-byte varint: n = %d, want 0", n)
	}
	big := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}
	if _, n := Get(big); n != 0 {
		t.Fatalf("overflowing 10th byte: n = %d, want 0", n)
	}
	max := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if v, n := Get(max); n != MaxLen || v != math.MaxUint64 {
		t.Fatalf("MaxUint64: got (%d, %d)", v, n)
	}
}

// TestGetNonMinimal pins the one-encoding-per-value contract: a trailing
// zero continuation group (an overlong encoding of a smaller value) is
// rejected, so "checksum-valid but unparseable" stays a reliable writer-
// damage signal for the strict wire/WAL decoders.
func TestGetNonMinimal(t *testing.T) {
	for _, buf := range [][]byte{
		{0x80, 0x00},
		{0xff, 0x00},
		{0x80, 0x80, 0x00},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x00},
	} {
		if v, n := Get(buf); n != 0 {
			t.Fatalf("Get(%x) = (%d, %d), want n == 0 for non-minimal encoding", buf, v, n)
		}
	}
	// The single zero byte is the minimal encoding of 0 and must survive.
	if v, n := Get([]byte{0x00}); n != 1 || v != 0 {
		t.Fatalf("Get(00) = (%d, %d), want (0, 1)", v, n)
	}
}
