// Package varint is the shared home of the byte-code primitives behind
// every difference-coded surface in the repo: the Ligra+-style compressed
// adjacency (§3.6 / DESIGN.md §10), the binary edge wire protocol
// (internal/wire), and the WAL's group-compressed record payloads. One
// implementation keeps the encodings bit-compatible — a delta stream
// written by any of them decodes under the same rules everywhere.
//
// The encoding is the standard LEB128 base-128 varint (7 value bits per
// byte, high bit = continuation), with zig-zag mapping for signed deltas so
// small negative differences stay small on the wire.
package varint

// MaxLen is the worst-case encoded size of a uint64 (ten 7-bit groups).
const MaxLen = 10

// Zigzag maps a signed delta onto the unsigned varint domain: 0, -1, 1,
// -2, ... become 0, 1, 2, 3, ... so magnitude, not sign, sets the width.
func Zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Put writes x into buf (which must have room for its encoding; MaxLen
// bytes always suffice) and returns the number of bytes written.
func Put(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

// Append appends x's encoding to buf and returns the extended slice — the
// allocation-friendly form for encoders that build records in a reused
// scratch buffer.
func Append(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// Get decodes one varint from buf, returning the value and the number of
// bytes consumed. A truncated, overlong (non-minimal — a trailing 0x00
// continuation group, e.g. 0x80 0x00 for 0), or uint64-overflowing
// encoding returns n == 0, so every value has exactly one accepted
// encoding; callers on untrusted input (wire frames, WAL payloads) must
// treat n == 0 as corruption.
func Get(buf []byte) (x uint64, n int) {
	var shift uint
	for i, b := range buf {
		if i == MaxLen-1 && b > 1 {
			return 0, 0 // overflows uint64
		}
		if b < 0x80 {
			if b == 0 && i > 0 {
				return 0, 0 // non-minimal: final group contributes nothing
			}
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
