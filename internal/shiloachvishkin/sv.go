// Package shiloachvishkin implements the Shiloach-Vishkin connectivity
// algorithm (Algorithm 15) in ConnectIt's writeMin formulation: each round
// maps over all edges hooking larger roots onto smaller incident roots with
// a priority update, then fully compresses every tree by pointer jumping.
// Only roots are hooked, so the algorithm is root-based and monotone, and it
// supports spanning forest via a packed writeMin that carries the witness
// edge with the winning hook.
package shiloachvishkin

import (
	"sort"
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// Run finishes connectivity over g starting from the labeling in parent
// (identity for a full run, or a sampled labeling satisfying Definition
// 3.1). Vertices with skip[v] true do not have their out-edges processed
// (the sampled most-frequent component). skip may be nil. It is generic
// over the graph representation (graph.Rep) and returns the number of
// rounds executed.
func Run[G graph.Rep](g G, parent []uint32, skip []bool) int {
	n := g.NumVertices()
	rounds := 0
	// The hook and compress bodies are built once, outside the round loop:
	// a closure constructed per round would cost one heap allocation per
	// sweep on the pool dispatch path.
	var changed atomic.Bool
	hookBody := func(lo, hi int) {
		local := false
		var buf []graph.Vertex
		for v := lo; v < hi; v++ {
			if skip != nil && skip[v] {
				continue
			}
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for _, u := range buf {
				pv := atomic.LoadUint32(&parent[v])
				pu := atomic.LoadUint32(&parent[u])
				if pv == pu {
					continue
				}
				hi32, lo32 := pv, pu
				if hi32 < lo32 {
					hi32, lo32 = lo32, hi32
				}
				// Hook the larger root below the smaller label.
				if atomic.LoadUint32(&parent[hi32]) == hi32 &&
					concurrent.WriteMin(&parent[hi32], lo32) {
					local = true
				}
			}
		}
		if local {
			changed.Store(true)
		}
	}
	compressBody := compressBodyFor(parent)
	for {
		rounds++
		changed.Store(false)
		parallel.ForGrained(n, 256, hookBody)
		if !changed.Load() {
			return rounds
		}
		parallel.ForGrained(n, compressGrain, compressBody)
	}
}

// RunForest is Run with spanning-forest witness recording: it returns the
// rounds executed and appends to forest one witness edge per hook, which
// together with the input labeling's forest spans the graph (Theorem 6).
// Hooks go through a packed writeMin so the edge that wins the final hook of
// each root in a round is the edge recorded.
func RunForest(g *graph.Graph, parent []uint32, skip []bool, forest [][2]uint32) (int, [][2]uint32) {
	n := g.NumVertices()
	hooks := make([]uint64, n)
	parallel.For(n, func(i int) { hooks[i] = concurrent.Pack(^uint32(0), 0) })
	rounds := 0
	for {
		rounds++
		var changed atomic.Bool
		parallel.ForGrained(n, 256, func(lo, hi int) {
			local := false
			for v := lo; v < hi; v++ {
				if skip != nil && skip[v] {
					continue
				}
				off := g.Offsets[v]
				for i, u := range g.Neighbors(graph.Vertex(v)) {
					pv := atomic.LoadUint32(&parent[v])
					pu := atomic.LoadUint32(&parent[u])
					if pv == pu {
						continue
					}
					hi32, lo32 := pv, pu
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					if atomic.LoadUint32(&parent[hi32]) == hi32 &&
						concurrent.WriteMinPacked(&hooks[hi32], lo32, uint32(off)+uint32(i)) {
						local = true
					}
				}
			}
			if local {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			return rounds, forest
		}
		// Apply phase: install the winning hook of each root and record the
		// witness edge the first (and only) time the root is hooked.
		applied := make([]bool, n)
		parallel.For(n, func(i int) {
			pri, ref := concurrent.Unpack(hooks[i])
			if pri < atomic.LoadUint32(&parent[i]) {
				atomic.StoreUint32(&parent[i], pri)
				applied[i] = true
				_ = ref
			}
		})
		for v := 0; v < n; v++ {
			if applied[v] {
				_, ref := concurrent.Unpack(hooks[v])
				src := edgeSource(g, uint64(ref))
				forest = append(forest, [2]uint32{src, g.Adj[ref]})
			}
		}
		compress(parent)
	}
}

// RunEdges executes Shiloach-Vishkin over an explicit COO edge list (the
// batch-incremental Type (ii) path, §3.5): rounds of root hooking via
// writeMin over the batch edges followed by full compression. It returns
// the number of rounds. Closures are hoisted out of the round loop (see
// Run).
func RunEdges(edges []graph.Edge, parent []uint32) int {
	rounds := 0
	var changed atomic.Bool
	hookBody := func(lo, hi int) {
		local := false
		for i := lo; i < hi; i++ {
			e := edges[i]
			pv := atomic.LoadUint32(&parent[e.U])
			pu := atomic.LoadUint32(&parent[e.V])
			if pv == pu {
				continue
			}
			hi32, lo32 := pv, pu
			if hi32 < lo32 {
				hi32, lo32 = lo32, hi32
			}
			if atomic.LoadUint32(&parent[hi32]) == hi32 &&
				concurrent.WriteMin(&parent[hi32], lo32) {
				local = true
			}
		}
		if local {
			changed.Store(true)
		}
	}
	compressBody := compressBodyFor(parent)
	for {
		rounds++
		changed.Store(false)
		parallel.ForGrained(len(edges), 512, hookBody)
		if !changed.Load() {
			return rounds
		}
		parallel.ForGrained(len(parent), compressGrain, compressBody)
	}
}

// compressGrain is the chunk size of the compression sweep.
const compressGrain = 1024

// compressBodyFor returns the pointer-jumping sweep body over parent. Each
// vertex stores only its own entry, so per-slot stores are safe; loads are
// atomic.
func compressBodyFor(parent []uint32) func(lo, hi int) {
	return func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := atomic.LoadUint32(&parent[i])
			for {
				pr := atomic.LoadUint32(&parent[r])
				if pr == r {
					break
				}
				r = pr
			}
			atomic.StoreUint32(&parent[i], r)
		}
	}
}

// compress pointer-jumps every vertex to its root (one-shot form of
// compressBodyFor for callers outside a round loop).
func compress(parent []uint32) {
	parallel.ForGrained(len(parent), compressGrain, compressBodyFor(parent))
}

// edgeSource recovers the source vertex of the directed edge stored at
// adjacency index idx by binary search over the offsets array.
func edgeSource(g *graph.Graph, idx uint64) uint32 {
	v := sort.Search(g.NumVertices(), func(v int) bool { return g.Offsets[v+1] > idx })
	return uint32(v)
}
