package shiloachvishkin

import (
	"runtime"
	"testing"

	"connectit/internal/graph"
)

// seqDSU is the sequential oracle for forest invariant checks.
type seqDSU struct{ p []uint32 }

func newSeqDSU(n int) *seqDSU {
	d := &seqDSU{p: make([]uint32, n)}
	for i := range d.p {
		d.p[i] = uint32(i)
	}
	return d
}

func (d *seqDSU) find(x uint32) uint32 {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

// union returns true when the edge merged two components.
func (d *seqDSU) union(u, v uint32) bool {
	ru, rv := d.find(u), d.find(v)
	if ru == rv {
		return false
	}
	d.p[ru] = rv
	return true
}

func randEdges(n, m int, seed uint64) []graph.Edge {
	rng := seed
	edges := make([]graph.Edge, m)
	for i := range edges {
		rng = graph.Hash64(rng)
		u := uint32(rng % uint64(n))
		rng = graph.Hash64(rng)
		v := uint32(rng % uint64(n))
		if u == v {
			v = (v + 1) % uint32(n)
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	return edges
}

// TestEdgeForestRunnerInvariants drives a sequence of batches through one
// runner and checks the streaming forest contract after every batch: the
// partition matches a sequential oracle, the cumulative forest holds
// exactly n - #components edges drawn from the input, and the forest edges
// themselves form a forest (every one merges two oracle components).
func TestEdgeForestRunnerInvariants(t *testing.T) {
	const n = 1 << 10
	r := NewEdgeForestRunner(n)
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	oracle := newSeqDSU(n)
	inSet := make(map[[2]uint32]bool)
	var forest []graph.Edge

	for batch := 0; batch < 6; batch++ {
		edges := randEdges(n, 600, uint64(batch)*977+13)
		for _, e := range edges {
			u, v := e.U, e.V
			if v < u {
				u, v = v, u
			}
			inSet[[2]uint32{u, v}] = true
			oracle.union(e.U, e.V)
		}
		_, forest = r.Run(edges, parent, forest)

		// Partition agreement: chase parent to its root and compare the
		// equivalence against the oracle over every input edge endpoint pair.
		chase := func(x uint32) uint32 {
			for parent[x] != x {
				x = parent[x]
			}
			return x
		}
		for v := uint32(1); v < n; v++ {
			got := chase(v) == chase(v-1)
			want := oracle.find(v) == oracle.find(v-1)
			if got != want {
				t.Fatalf("batch %d: connectivity(%d,%d) = %v, oracle %v", batch, v-1, v, got, want)
			}
		}

		comps := 0
		for v := uint32(0); v < n; v++ {
			if oracle.find(v) == v {
				comps++
			}
		}
		if len(forest) != n-comps {
			t.Fatalf("batch %d: |forest| = %d, want n - #components = %d", batch, len(forest), n-comps)
		}
		check := newSeqDSU(n)
		for _, e := range forest {
			u, v := e.U, e.V
			if v < u {
				u, v = v, u
			}
			if !inSet[[2]uint32{u, v}] {
				t.Fatalf("batch %d: forest edge {%d,%d} was never inserted", batch, e.U, e.V)
			}
			if !check.union(e.U, e.V) {
				t.Fatalf("batch %d: forest edge {%d,%d} closes a cycle", batch, e.U, e.V)
			}
		}
	}
}

// TestEdgeForestRunnerSteadyStateAllocs: once warmed (hook array, candidate
// buffers, forest capacity), re-running already-connected batches performs
// zero heap allocations — the property the Type (ii) apply path relies on.
func TestEdgeForestRunnerSteadyStateAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 1 << 12
	edges := randEdges(n, 4*n, 42)
	r := NewEdgeForestRunner(n)
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var forest []graph.Edge
	_, forest = r.Run(edges, parent, forest) // warm up: scratch + forest capacity

	res := testing.Benchmark(func(b *testing.B) {
		runtime.GOMAXPROCS(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Steady state: the batch is already absorbed, so no hooks fire
			// and the forest append stays within retained capacity.
			_, forest = r.Run(edges, parent, forest)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state EdgeForestRunner.Run allocates %d allocs/op, want 0", a)
	}
}
