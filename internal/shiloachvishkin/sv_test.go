package shiloachvishkin

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

func identity(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

func TestRunMatchesOracleOnPanel(t *testing.T) {
	for name, g := range testutil.Panel() {
		parent := identity(g.NumVertices())
		Run(g, parent, nil)
		testutil.CheckPartition(t, name, parent, testutil.Components(g))
	}
}

func TestRunWithSampledStarsAndSkip(t *testing.T) {
	// Simulate a sampling phase: a star labeling of the big clique with a
	// non-minimal root, and skip over its members.
	g := testutil.Panel()["bridged"] // two 20-cliques joined at (5,25)
	n := g.NumVertices()
	parent := identity(n)
	// Pretend sampling found clique 0 rooted at vertex 7 (root > members!).
	for v := 0; v < 20; v++ {
		parent[v] = 7
	}
	skip := make([]bool, n)
	for v := 0; v < 20; v++ {
		skip[v] = true
	}
	Run(g, parent, skip)
	testutil.CheckPartition(t, "bridged-sampled", parent, testutil.Components(g))
}

func TestRunForestProducesSpanningForest(t *testing.T) {
	for name, g := range testutil.Panel() {
		parent := identity(g.NumVertices())
		_, forest := RunForest(g, parent, nil, nil)
		testutil.CheckSpanningForest(t, name, g, forest)
		testutil.CheckPartition(t, name, parent, testutil.Components(g))
	}
}

func TestRoundsBoundedLogarithmically(t *testing.T) {
	g := graph.Path(1 << 12)
	parent := identity(g.NumVertices())
	rounds := Run(g, parent, nil)
	// SV needs O(log n) rounds; allow slack but reject linear behaviour.
	if rounds > 40 {
		t.Fatalf("rounds = %d on a path of 4096, want O(log n)", rounds)
	}
}

func TestEdgeSourceBinarySearch(t *testing.T) {
	g := graph.Star(5) // vertex 0 has degree 4; leaves degree 1
	for idx := uint64(0); idx < uint64(g.NumDirectedEdges()); idx++ {
		src := edgeSource(g, idx)
		if idx < g.Offsets[src] || idx >= g.Offsets[src+1] {
			t.Fatalf("edgeSource(%d) = %d, offsets [%d,%d)", idx, src, g.Offsets[src], g.Offsets[src+1])
		}
	}
}
