package shiloachvishkin

import (
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// hookSentinel is the empty hook slot: its priority (^uint32(0)) loses to
// every real label, so any packed writeMin claims the slot.
const hookSentinel = uint64(^uint32(0)) << 32

// EdgeForestRunner is RunEdges with witness capture: the streaming Type (ii)
// apply path for Shiloach-Vishkin when the ingest engine maintains a live
// spanning forest (DESIGN.md §12). Hooks go through a packed writeMin into a
// retained per-root slot; the workers that win a hook record the root in a
// per-worker candidate buffer, and a serial apply phase at the round barrier
// installs each winning hook, appends its witness edge to the forest, and
// resets the slot — so the hooks array is all-sentinel again by the next
// round and the runner never pays an O(n) sweep per batch. Every buffer is
// retained across Run calls and the round bodies are hoisted closures, so a
// steady-state Run performs zero allocations (the forest append amortizes
// into caller-retained capacity).
//
// A runner is not safe for concurrent use; the streaming layer serializes
// Type (ii) rounds by construction. Parent stores are atomic because
// wait-free queries chase parent concurrently (§3.5).
type EdgeForestRunner struct {
	hooks []uint64   // per-root packed (priority, edge index); sentinel when empty
	bufs  [][]uint32 // per-worker hooked-root candidates

	// Per-Run state referenced by the hoisted bodies.
	edges  []graph.Edge
	parent []uint32

	hookBody     func(w *parallel.Worker, lo, hi int)
	compressBody func(lo, hi int)
}

// forestGrain is the edge-chunk size of the hook sweep.
const forestGrain = 512

// NewEdgeForestRunner builds a reusable witness-capturing runner over an
// n-vertex universe.
func NewEdgeForestRunner(n int) *EdgeForestRunner {
	r := &EdgeForestRunner{hooks: make([]uint64, n)}
	for i := range r.hooks {
		r.hooks[i] = hookSentinel
	}
	r.hookBody = r.runHooks
	r.compressBody = r.runCompress
	return r
}

func (r *EdgeForestRunner) runHooks(w *parallel.Worker, lo, hi int) {
	edges, parent, hooks := r.edges, r.parent, r.hooks
	buf := r.bufs[w.ID()]
	for i := lo; i < hi; i++ {
		e := edges[i]
		pv := atomic.LoadUint32(&parent[e.U])
		pu := atomic.LoadUint32(&parent[e.V])
		if pv == pu {
			continue
		}
		hi32, lo32 := pv, pu
		if hi32 < lo32 {
			hi32, lo32 = lo32, hi32
		}
		// Hook the larger root below the smaller label, carrying the edge
		// index as the witness reference. parent is only written at the
		// round barrier, so the root check stays valid for the whole sweep.
		if atomic.LoadUint32(&parent[hi32]) == hi32 &&
			concurrent.WriteMinPacked(&hooks[hi32], lo32, uint32(i)) {
			buf = append(buf, hi32)
		}
	}
	r.bufs[w.ID()] = buf
}

func (r *EdgeForestRunner) runCompress(lo, hi int) {
	parent := r.parent
	for i := lo; i < hi; i++ {
		p := atomic.LoadUint32(&parent[i])
		for {
			pp := atomic.LoadUint32(&parent[p])
			if pp == p {
				break
			}
			p = pp
		}
		atomic.StoreUint32(&parent[i], p)
	}
}

// Run executes Shiloach-Vishkin over the batch edges, refining parent until
// convergence exactly as RunEdges does, and appends one witness edge per
// hook to forest. It returns the rounds executed and the grown forest.
// parent must be flat (every entry a root) on entry, which the identity
// start and the trailing compression of every previous Run guarantee — so
// each vertex is hooked at most once over the stream's lifetime and the
// appended edges extend a spanning forest of everything ingested so far.
func (r *EdgeForestRunner) Run(edges []graph.Edge, parent []uint32, forest []graph.Edge) (int, []graph.Edge) {
	n := len(parent)
	if len(r.hooks) != n {
		r.hooks = make([]uint64, n)
		for i := range r.hooks {
			r.hooks[i] = hookSentinel
		}
	}
	for len(r.bufs) < parallel.Width(len(edges), forestGrain) {
		r.bufs = append(r.bufs, nil)
	}
	r.edges, r.parent = edges, parent
	rounds := 0
	for {
		rounds++
		for i := range r.bufs {
			r.bufs[i] = r.bufs[i][:0]
		}
		parallel.ForWorkerSized(len(edges), forestGrain, len(r.bufs), r.hookBody)
		applied := false
		for _, buf := range r.bufs {
			for _, t := range buf {
				h := r.hooks[t]
				if h == hookSentinel {
					continue // duplicate candidate: already applied below
				}
				r.hooks[t] = hookSentinel
				pri, ref := concurrent.Unpack(h)
				if pri < atomic.LoadUint32(&parent[t]) {
					atomic.StoreUint32(&parent[t], pri)
					forest = append(forest, edges[ref])
					applied = true
				}
			}
		}
		if !applied {
			r.edges, r.parent = nil, nil
			return rounds, forest
		}
		parallel.ForGrained(n, compressGrain, r.compressBody)
	}
}
