// Package sample implements ConnectIt's three sampling schemes (§3.2):
// k-out sampling (with the four edge-selection variants studied in Appendix
// C.4), breadth-first-search sampling, and low-diameter-decomposition
// sampling. Each scheme produces a partial connectivity labeling satisfying
// Definition 3.1 — a forest of depth-one stars — and, when requested, the
// subset of spanning-forest edges that induces exactly that labeling
// (Definition B.2).
package sample

import (
	"sync/atomic"

	"connectit/internal/bfs"
	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/ldd"
	"connectit/internal/parallel"
	"connectit/internal/unionfind"
)

// Result is the output of a sampling phase.
type Result struct {
	// Labels is a partial connectivity labeling in star form: for every v,
	// either Labels[v] == v, or Labels[v] == r with Labels[r] == r.
	Labels []uint32
	// Forest holds the spanning-forest edges discovered during sampling
	// (nil unless requested). Contracting them induces exactly Labels.
	Forest [][2]uint32
	// Canonical reports that every star is already rooted at its minimum
	// member, so the framework can skip Canonicalize. k-out sampling's
	// ID-linking union-find guarantees this; BFS/LDD stars are rooted at
	// arbitrary sources/centers and need the rewrite.
	Canonical bool
}

// KOutVariant selects how k-out sampling picks each vertex's edges.
type KOutVariant int

// The k-out edge-selection strategies of Appendix C.4.
const (
	// KOutHybrid takes the first incident edge plus k-1 uniformly random
	// ones: the paper's default, robust to adversarial vertex orders.
	KOutHybrid KOutVariant = iota
	// KOutAfforest takes the first k incident edges (Sutton et al.).
	KOutAfforest
	// KOutPure takes k uniformly random incident edges (Holm et al.).
	KOutPure
	// KOutMaxDeg takes the edge to the highest-degree neighbor plus k-1
	// random ones.
	KOutMaxDeg
)

func (v KOutVariant) String() string {
	switch v {
	case KOutHybrid:
		return "kout-hybrid"
	case KOutAfforest:
		return "kout-afforest"
	case KOutPure:
		return "kout-pure"
	case KOutMaxDeg:
		return "kout-maxdeg"
	}
	return "kout-unknown"
}

// KOut runs k-out sampling: it selects up to k edges out of each vertex per
// the variant, computes their connected components with a union-find
// (Union-Rem-CAS with SplitAtomicOne, the paper's fastest), and fully
// compresses the result into stars. It is generic over the graph
// representation (graph.Rep).
func KOut[G graph.Rep](g G, k int, variant KOutVariant, seed uint64, forest bool) *Result {
	n := g.NumVertices()
	if k < 1 {
		k = 2
	}
	d := unionfind.MustNew(n, unionfind.Options{
		Union:         unionfind.UnionRemCAS,
		Splice:        unionfind.SplitAtomicOne,
		Find:          unionfind.FindNaive,
		RecordWitness: forest,
	})
	// Each vertex inspects at most k adjacency positions (except MaxDeg,
	// which scans for the highest-degree neighbor), so the random indices
	// are drawn first and only the prefix up to the largest one is decoded
	// — on the compressed backend this cuts the sampling decode from the
	// whole graph to an expected fraction of it.
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf []graph.Vertex
		idxs := make([]uint64, k)
		for v := lo; v < hi; v++ {
			deg := uint64(g.Degree(graph.Vertex(v)))
			if deg == 0 {
				continue
			}
			unite := func(u graph.Vertex) {
				if forest {
					d.UnionWitness(uint32(v), u, uint32(v), u)
				} else {
					d.Union(uint32(v), u)
				}
			}
			// Gather the adjacency indices this vertex will touch.
			var picks []uint64
			switch variant {
			case KOutAfforest:
				picks = idxs[:0]
				for i := 0; uint64(i) < deg && i < k; i++ {
					picks = append(picks, uint64(i))
				}
			case KOutPure:
				picks = idxs[:0]
				for i := 0; i < k; i++ {
					picks = append(picks, graph.Hash64(uint64(v)<<20^uint64(i)^seed)%deg)
				}
			case KOutHybrid, KOutMaxDeg:
				picks = append(idxs[:0], 0)
				for i := 1; i < k; i++ {
					picks = append(picks, graph.Hash64(uint64(v)<<20^uint64(i)^seed)%deg)
				}
			}
			limit := uint64(0)
			for _, i := range picks {
				if i+1 > limit {
					limit = i + 1
				}
			}
			var nbrs []graph.Vertex
			if variant == KOutMaxDeg {
				// MaxDeg inspects the whole list for the best neighbor.
				nbrs = g.NeighborsInto(graph.Vertex(v), buf)
				best := nbrs[0]
				for _, u := range nbrs {
					if g.Degree(u) > g.Degree(best) {
						best = u
					}
				}
				unite(best)
				picks = picks[1:]
			} else {
				nbrs = g.NeighborsIntoLimit(graph.Vertex(v), buf, int(limit))
			}
			buf = nbrs
			for _, i := range picks {
				unite(nbrs[i])
			}
		}
	})
	// The ID-linking union-find can never hook the minimum vertex of a
	// component (a hook always points to a smaller value), so after Flatten
	// every star is rooted at its minimum member.
	res := &Result{Labels: d.Labels(), Canonical: true}
	if forest {
		res.Forest = d.WitnessEdges(nil)
	}
	return res
}

// BFS runs BFS sampling: up to c direction-optimizing BFS attempts from
// random sources, stopping as soon as an attempt covers more than 10% of the
// vertices (Algorithm 5). If no attempt does, the identity labeling is
// returned, exactly as the paper specifies. It is generic over the graph
// representation (graph.Rep).
func BFS[G graph.Rep](g G, c int, seed uint64, forest bool) *Result {
	n := g.NumVertices()
	identity := func() *Result {
		labels := make([]uint32, n)
		parallel.For(n, func(i int) { labels[i] = uint32(i) })
		return &Result{Labels: labels}
	}
	if n == 0 {
		return identity()
	}
	if c < 1 {
		c = 3
	}
	for try := 0; try < c; try++ {
		src := graph.Vertex(graph.Hash64(uint64(try)^seed) % uint64(n))
		r := bfs.Run(g, src)
		if r.Visited*10 <= n {
			continue
		}
		// Root the star at the minimum visited vertex so the labeling is
		// already canonical (one star: a single reduction suffices).
		root := ^uint32(0)
		for v := 0; v < n; v++ {
			if r.Parent[v] != graph.None {
				root = uint32(v)
				break
			}
		}
		labels := make([]uint32, n)
		parallel.For(n, func(i int) {
			if r.Parent[i] != graph.None {
				labels[i] = root
			} else {
				labels[i] = uint32(i)
			}
		})
		res := &Result{Labels: labels, Canonical: true}
		if forest {
			res.Forest = treeEdges(r.Parent)
		}
		return res
	}
	return identity()
}

// LDD runs low-diameter-decomposition sampling: one application of
// Miller-Peng-Xu with parameter beta; the cluster labeling is the partial
// connectivity labeling (Algorithm 6). The decomposition's round budget is
// capped at O(log n / beta): late-waking vertices are left as singletons,
// which keeps the labeling valid (Definition 3.1) while bounding the
// sampling cost. It is generic over the graph representation (graph.Rep).
func LDD[G graph.Rep](g G, beta float64, permute bool, seed uint64, forest bool) *Result {
	if beta <= 0 || beta > 1 {
		beta = 0.2
	}
	maxRounds := int(6.0/beta) + 10
	r := ldd.Decompose(g, ldd.Options{Beta: beta, Permute: permute, Seed: seed, MaxRounds: maxRounds})
	res := &Result{Labels: r.Cluster}
	if forest {
		res.Forest = treeEdges(r.Parent)
	}
	return res
}

// treeEdges converts a parent forest (parent[v] == v at roots, graph.None
// unreached) into witness edges assigned to the child endpoint, satisfying
// Definition B.2(3).
func treeEdges(parent []graph.Vertex) [][2]uint32 {
	var out [][2]uint32
	for v, p := range parent {
		if p != graph.None && p != graph.Vertex(v) {
			out = append(out, [2]uint32{uint32(v), p})
		}
	}
	return out
}

// MostFrequent identifies the most frequently occurring label
// (IdentifyFrequent, Algorithm 1 line 6). For large inputs it samples a
// fixed number of vertices, as the paper's implementation does; small inputs
// are counted exactly.
func MostFrequent(labels []uint32, seed uint64) uint32 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	const sampleThreshold = 1 << 16
	counts := make(map[uint32]int)
	if n <= sampleThreshold {
		for _, l := range labels {
			counts[l]++
		}
	} else {
		const samples = 4096
		for i := 0; i < samples; i++ {
			counts[labels[graph.Hash64(uint64(i)^seed)%uint64(n)]]++
		}
	}
	best, bestCount := labels[0], 0
	for l, c := range counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	return best
}

// Canonicalize rewrites the star labeling in place so that every star is
// rooted at its minimum member. Rem's algorithms compare parent values as
// priorities and require the decreasing-parent invariant, which BFS/LDD
// stars rooted at arbitrary centers would violate (DESIGN.md §4). It
// returns the new label of the component formerly labeled old.
func Canonicalize(labels []uint32, old uint32) uint32 {
	n := len(labels)
	minOf := make([]uint32, n)
	parallel.For(n, func(i int) { minOf[i] = ^uint32(0) })
	parallel.For(n, func(i int) {
		concurrent.WriteMin(&minOf[labels[i]], uint32(i))
	})
	parallel.For(n, func(i int) {
		labels[i] = minOf[labels[i]]
	})
	if old == ^uint32(0) || int(old) >= n {
		return old
	}
	return atomic.LoadUint32(&minOf[old])
}

// Coverage returns the fraction of vertices carrying the given label.
func Coverage(labels []uint32, label uint32) float64 {
	if len(labels) == 0 {
		return 0
	}
	c := parallel.Count(len(labels), func(i int) bool { return labels[i] == label })
	return float64(c) / float64(len(labels))
}

// InterComponentEdges counts the directed edges of g whose endpoints carry
// different labels — the work remaining for the finish phase (the paper's
// inter-component edge statistic, Tables 6-7 and Figures 20/23).
func InterComponentEdges[G graph.Rep](g G, labels []uint32) uint64 {
	n := g.NumVertices()
	var total atomic.Uint64
	parallel.ForGrained(n, 1024, func(lo, hi int) {
		var local uint64
		var buf []graph.Vertex
		for i := lo; i < hi; i++ {
			li := labels[i]
			buf = g.NeighborsInto(graph.Vertex(i), buf)
			for _, u := range buf {
				if labels[u] != li {
					local++
				}
			}
		}
		total.Add(local)
	})
	return total.Load()
}
