package sample

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

// checkDefinition31 verifies the star property of Definition 3.1 and that
// the labeling is a valid partial labeling (same label ⇒ same true
// component).
func checkDefinition31(t *testing.T, name string, g *graph.Graph, labels []uint32) {
	t.Helper()
	truth := testutil.Components(g)
	for v, l := range labels {
		if l != uint32(v) && labels[l] != l {
			t.Fatalf("%s: labels[%d]=%d but labels[%d]=%d: not a star", name, v, l, l, labels[l])
		}
		if truth[v] != truth[l] {
			t.Fatalf("%s: vertex %d labeled %d across true components", name, v, l)
		}
	}
}

// checkForestInducesLabels verifies Definition B.2: contracting the forest
// edges yields exactly the sampled labeling.
func checkForestInducesLabels(t *testing.T, name string, labels []uint32, forest [][2]uint32) {
	t.Helper()
	n := len(labels)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Assignment uniqueness (Definition B.2(3)) is structural: witness
	// slots are indexed by the hooked root and each root is hooked at most
	// once, so here we verify the induced partition and acyclicity.
	for _, e := range forest {
		if find(int(e[0])) == find(int(e[1])) {
			t.Fatalf("%s: forest edge (%d,%d) forms a cycle", name, e[0], e[1])
		}
		parent[find(int(e[0]))] = find(int(e[1]))
	}
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if (labels[v] == labels[u]) != (find(v) == find(u)) {
				t.Fatalf("%s: forest partition disagrees with labels at (%d,%d)", name, v, u)
			}
		}
	}
}

func smallPanel() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     graph.Path(120),
		"star":     graph.Star(100),
		"grid":     graph.Grid2D(12, 12),
		"cliques":  graph.Cliques(4, 10),
		"rmat":     graph.RMAT(9, 3000, 0.57, 0.19, 0.19, 3),
		"isolated": graph.Build(30, nil),
	}
}

func TestKOutAllVariantsSatisfyDefinition(t *testing.T) {
	for name, g := range smallPanel() {
		for _, variant := range []KOutVariant{KOutHybrid, KOutAfforest, KOutPure, KOutMaxDeg} {
			r := KOut(g, 2, variant, 42, true)
			checkDefinition31(t, name+"/"+variant.String(), g, r.Labels)
			checkForestInducesLabels(t, name+"/"+variant.String(), r.Labels, r.Forest)
		}
	}
}

func TestKOutFullCoverageOnClique(t *testing.T) {
	// On a clique, 2-out sampling must discover the whole component.
	g := graph.Cliques(1, 50)
	r := KOut(g, 2, KOutHybrid, 1, false)
	freq := MostFrequent(r.Labels, 0)
	if Coverage(r.Labels, freq) != 1.0 {
		t.Fatalf("coverage = %f, want 1.0", Coverage(r.Labels, freq))
	}
	if InterComponentEdges(g, r.Labels) != 0 {
		t.Fatal("clique should have no inter-component edges after sampling")
	}
}

func TestBFSSamplingFindsMassiveComponent(t *testing.T) {
	g := graph.RMAT(10, 8000, 0.57, 0.19, 0.19, 7)
	r := BFS(g, 3, 11, true)
	checkDefinition31(t, "rmat", g, r.Labels)
	freq := MostFrequent(r.Labels, 0)
	if Coverage(r.Labels, freq) < 0.1 {
		t.Fatalf("BFS sampling covered only %f", Coverage(r.Labels, freq))
	}
	checkForestInducesLabels(t, "rmat", r.Labels, r.Forest)
}

func TestBFSSamplingIdentityWhenNoMassiveComponent(t *testing.T) {
	// Many small cliques: no component reaches 10%, so identity labeling.
	g := graph.Cliques(40, 5)
	r := BFS(g, 3, 5, false)
	for v, l := range r.Labels {
		if l != uint32(v) {
			t.Fatalf("expected identity labeling, got labels[%d]=%d", v, l)
		}
	}
}

func TestBFSSamplingEmptyGraph(t *testing.T) {
	g := graph.Build(0, nil)
	r := BFS(g, 3, 1, false)
	if len(r.Labels) != 0 {
		t.Fatal("empty graph should give empty labels")
	}
}

func TestLDDSamplingSatisfiesDefinition(t *testing.T) {
	for name, g := range smallPanel() {
		r := LDD(g, 0.2, true, 9, true)
		checkDefinition31(t, name, g, r.Labels)
		checkForestInducesLabels(t, name, r.Labels, r.Forest)
	}
}

func TestMostFrequentExact(t *testing.T) {
	labels := []uint32{5, 5, 5, 2, 2, 9}
	if MostFrequent(labels, 0) != 5 {
		t.Fatalf("MostFrequent = %d, want 5", MostFrequent(labels, 0))
	}
}

func TestMostFrequentSampledLargeInput(t *testing.T) {
	n := 1 << 17
	labels := make([]uint32, n)
	for i := range labels {
		if i%4 == 0 {
			labels[i] = 7 // 25%
		} else {
			labels[i] = 3 // 75%
		}
	}
	if MostFrequent(labels, 123) != 3 {
		t.Fatal("sampled MostFrequent missed a 75% majority")
	}
}

func TestCanonicalizeProducesMinRootedStars(t *testing.T) {
	// Star rooted at 9 (non-minimal), members {2,4,9}; singleton 0,1,3...
	labels := []uint32{0, 1, 9, 3, 9, 5, 6, 7, 8, 9}
	newFreq := Canonicalize(labels, 9)
	if newFreq != 2 {
		t.Fatalf("new frequent label = %d, want 2 (min member)", newFreq)
	}
	want := []uint32{0, 1, 2, 3, 2, 5, 6, 7, 8, 2}
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("labels[%d] = %d, want %d", i, labels[i], want[i])
		}
	}
	// Idempotent.
	if Canonicalize(labels, 2) != 2 {
		t.Fatal("canonicalize not idempotent")
	}
}

func TestCoverageAndInterComponentEdges(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	labels := []uint32{0, 0, 2, 2}
	if Coverage(labels, 0) != 0.5 {
		t.Fatalf("coverage = %f", Coverage(labels, 0))
	}
	// Only edge 1-2 crosses: 2 directed edges.
	if got := InterComponentEdges(g, labels); got != 2 {
		t.Fatalf("inter-component = %d, want 2", got)
	}
}

func TestKOutVariantQualityOrderingOnAdversarialOrder(t *testing.T) {
	// Adversarial ordering mirroring the paper's ClueWeb pathology
	// (Figure 24): every real vertex's first two (lowest-ID) neighbors are
	// "trap" vertices shared by almost nobody else, so kout-afforest's
	// first-k selection fragments the graph into tiny groups, while
	// kout-hybrid's random picks reach the well-connected real edges.
	const traps = 2048 // vertices 0..traps-1, pair (2h, 2h+1) per real vertex
	const reals = 4096 // vertices traps..traps+reals-1, an expander ring
	n := traps + reals
	var edges []graph.Edge
	for i := 0; i < reals; i++ {
		v := graph.Vertex(traps + i)
		h := graph.Hash64(uint64(i)) % (traps / 2)
		edges = append(edges,
			graph.Edge{U: v, V: graph.Vertex(2 * h)},
			graph.Edge{U: v, V: graph.Vertex(2*h + 1)},
			graph.Edge{U: v, V: graph.Vertex(traps + (i+1)%reals)},
			graph.Edge{U: v, V: graph.Vertex(traps + (i+7)%reals)},
		)
	}
	g := graph.Build(n, edges)
	afforest := KOut(g, 2, KOutAfforest, 3, false)
	hybrid := KOut(g, 2, KOutHybrid, 3, false)
	covA := Coverage(afforest.Labels, MostFrequent(afforest.Labels, 1))
	covH := Coverage(hybrid.Labels, MostFrequent(hybrid.Labels, 1))
	if covH < 2*covA {
		t.Fatalf("hybrid coverage %f not clearly above afforest coverage %f on adversarial order", covH, covA)
	}
}
