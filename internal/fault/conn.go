package fault

import (
	"net"
	"os"
	"time"
)

// Conn operation keys. The wrapper consults the schedule once per Read
// and once per Write call — for the ingest protocol's length-prefixed
// frames that is close to once per frame on the write side.
const (
	OpConnRead  = "conn.read"
	OpConnWrite = "conn.write"
)

// sleep is a seam for tests; production code always sleeps for real.
var sleep = time.Sleep

// WrapConn wraps c so reads and writes consult sched. A nil schedule, or
// one with no conn.* rules armed, returns c unchanged so the hot path
// pays nothing. Injected resets hard-close the underlying connection
// (SetLinger(0) when it is a *net.TCPConn), surfacing ECONNRESET to the
// peer exactly like a crashed process would.
func WrapConn(c net.Conn, sched *Schedule) net.Conn {
	if sched == nil || !sched.HasOp("conn.") {
		return c
	}
	return &faultConn{Conn: c, s: sched}
}

type faultConn struct {
	net.Conn
	s *Schedule
}

// reset aborts the connection. For TCP, linger 0 turns Close into RST so
// the peer observes ECONNRESET rather than a clean EOF.
func (c *faultConn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

func (c *faultConn) apply(op string, p []byte, io func([]byte) (int, error)) (int, error) {
	act := c.s.Next(op)
	if act == nil {
		return io(p)
	}
	if act.Delay > 0 {
		sleep(act.Delay)
	}
	n := 0
	if act.Err == nil && !act.Reset {
		return io(p)
	}
	if act.Short > 0 && len(p) > 0 {
		short := act.Short
		if short > len(p) {
			short = len(p)
		}
		var err error
		n, err = io(p[:short])
		if err != nil {
			return n, err
		}
	}
	if act.Reset {
		c.reset()
		return n, &net.OpError{Op: op, Net: "tcp", Err: errClosed}
	}
	return n, &net.OpError{Op: op, Net: "tcp", Err: act.Err}
}

func (c *faultConn) Read(p []byte) (int, error) {
	return c.apply(OpConnRead, p, c.Conn.Read)
}

func (c *faultConn) Write(p []byte) (int, error) {
	return c.apply(OpConnWrite, p, c.Conn.Write)
}

var errClosed = os.ErrClosed
