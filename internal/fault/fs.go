package fault

import (
	"io/fs"
	"os"
)

// File is the slice of *os.File the WAL needs: sequential writes, fsync,
// and tail truncation. Injected faults surface through these methods.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam the write-ahead log routes every file
// operation through. The default implementation (OS) forwards straight to
// package os; NewFS wraps it with a fault schedule.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (fs.FileInfo, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
}

// OS is the passthrough filesystem: every call forwards to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Operation keys the FS wrapper consults on the schedule. Write, sync,
// and rename are the durability-critical ones; the read-side keys exist
// so recovery paths can be faulted too.
const (
	OpWALOpen     = "wal.open"
	OpWALWrite    = "wal.write"
	OpWALSync     = "wal.sync"
	OpWALRename   = "wal.rename"
	OpWALRemove   = "wal.remove"
	OpWALTruncate = "wal.truncate"
	OpWALMkdir    = "wal.mkdir"
	OpWALReadFile = "wal.readfile"
	OpWALReadDir  = "wal.readdir"
	OpWALStat     = "wal.stat"
)

// NewFS wraps base so every operation first consults sched. A nil
// schedule (or nil base, which defaults to OS) yields passthrough
// behavior.
func NewFS(base FS, sched *Schedule) FS {
	if base == nil {
		base = OS
	}
	if sched == nil {
		return base
	}
	return &faultFS{base: base, s: sched}
}

type faultFS struct {
	base FS
	s    *Schedule
}

// check runs the schedule for op and returns the injected error, if any,
// after applying any delay.
func (f *faultFS) check(op string) error {
	act := f.s.Next(op)
	if act == nil {
		return nil
	}
	if act.Delay > 0 {
		sleep(act.Delay)
	}
	return act.Err
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpWALMkdir); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.base.MkdirAll(path, perm)
}

func (f *faultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check(OpWALReadDir); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.base.ReadDir(name)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpWALReadFile); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *faultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.check(OpWALStat); err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.base.Stat(name)
}

func (f *faultFS) Remove(name string) error {
	if err := f.check(OpWALRemove); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.base.Remove(name)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.check(OpWALRename); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Truncate(name string, size int64) error {
	if err := f.check(OpWALTruncate); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.base.Truncate(name, size)
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.check(OpWALOpen); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, s: f.s}, nil
}

// faultFile injects write and sync faults on an open file. Short writes
// land act.Short bytes before surfacing the error, which is how the tests
// produce torn records at exact byte offsets.
type faultFile struct {
	File
	s *Schedule
}

func (f *faultFile) Write(p []byte) (int, error) {
	act := f.s.Next(OpWALWrite)
	if act == nil {
		return f.File.Write(p)
	}
	if act.Delay > 0 {
		sleep(act.Delay)
	}
	if act.Err == nil {
		return f.File.Write(p)
	}
	n := 0
	if act.Short > 0 {
		short := act.Short
		if short > len(p) {
			short = len(p)
		}
		var werr error
		n, werr = f.File.Write(p[:short])
		if werr != nil {
			return n, werr
		}
	}
	return n, &os.PathError{Op: "write", Path: f.Name(), Err: act.Err}
}

func (f *faultFile) Sync() error {
	act := f.s.Next(OpWALSync)
	if act == nil {
		return f.File.Sync()
	}
	if act.Delay > 0 {
		sleep(act.Delay)
	}
	if act.Err != nil {
		return &os.PathError{Op: "sync", Path: f.Name(), Err: act.Err}
	}
	return f.File.Sync()
}
