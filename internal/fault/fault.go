// Package fault is the deterministic fault-injection layer behind the
// serving stack's robustness tests and chaos runs (DESIGN.md §15). It has
// three parts: a seeded Schedule that decides, per named operation, when a
// fault fires and what it looks like; an FS seam the write-ahead log's
// file operations route through so disk faults (write errors, short
// writes, ENOSPC, failed fsyncs and renames) can be injected at exact
// operation counts; and a net.Conn wrapper that injects resets, latency,
// and partial frames into the TCP ingest path.
//
// Schedules are reproducible by construction: every trigger is either a
// pure function of the per-operation counter (`at=N`, `every=N`) or drawn
// from the schedule's own seeded generator (`after=K:p=P`), so two
// processes running the same spec against the same operation sequence
// inject the same faults. That is what makes chaos runs assertable — the
// acked-LSN set after a seeded crash schedule is a deterministic quantity,
// not a flake.
//
// A schedule is usually built from a spec string (ParseSchedule), which is
// how the CLI and CI thread fault plans into a running server:
//
//	wal.sync:at=25:err=EIO;conn.write:at=40:reset
//
// fires EIO on the 25th WAL fsync and resets the ingest connection on its
// 40th write. See ParseSchedule for the grammar.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Action describes one injected fault. The zero value (no error, no
// delay) is "no fault"; rules always carry at least an error or a delay.
type Action struct {
	// Err is the error the faulted operation returns. For file writes a
	// non-nil Err with Short >= 0 produces a short write: Short bytes
	// reach the file, then Err surfaces — the exact shape of a mid-write
	// ENOSPC or a torn write at a crash boundary.
	Err error
	// Short, when >= 0 and the op is a write, bounds how many bytes are
	// written before Err fires. -1 writes nothing.
	Short int
	// Delay is slept before the operation proceeds (or fails).
	Delay time.Duration
	// Reset, on a conn operation, hard-closes the connection after the
	// (possibly partial) operation, surfacing ECONNRESET to the peer.
	Reset bool
}

// rule is one armed fault: a trigger over an operation counter plus the
// action to inject. at/every/after are mutually exclusive triggers.
type rule struct {
	op    string
	at    uint64  // fire exactly on the Nth op (1-based); 0 = unset
	every uint64  // fire on every Nth op; 0 = unset
	after uint64  // ops > after fire with probability p
	p     float64 // probability for the after trigger
	limit uint64  // max fires (0 = at: once, otherwise unlimited)
	fired uint64
	act   Action
}

// Schedule is a set of armed fault rules over named operations. All
// methods are safe for concurrent use; the per-operation counters and the
// probability stream are serialized under one mutex so a given operation
// interleaving always sees the same injections.
type Schedule struct {
	mu    sync.Mutex
	rng   *rand.Rand
	count map[string]uint64
	rules []rule
}

// NewSchedule returns an empty schedule whose probabilistic triggers draw
// from a generator seeded with seed.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{
		rng:   rand.New(rand.NewSource(int64(seed))),
		count: make(map[string]uint64),
	}
}

// FailAt arms act to fire exactly on the nth (1-based) occurrence of op.
func (s *Schedule) FailAt(op string, n uint64, act Action) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, rule{op: op, at: n, limit: 1, act: act})
	return s
}

// FailEvery arms act to fire on every nth occurrence of op.
func (s *Schedule) FailEvery(op string, n uint64, act Action) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, rule{op: op, every: n, act: act})
	return s
}

// FailAfterProb arms act to fire with probability p on each occurrence of
// op after the kth.
func (s *Schedule) FailAfterProb(op string, k uint64, p float64, act Action) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, rule{op: op, after: k, p: p, act: act})
	return s
}

// Next advances op's counter and returns the action to inject for this
// occurrence, or nil when no rule fires. The first matching rule wins.
func (s *Schedule) Next(op string) *Action {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count[op]++
	n := s.count[op]
	for i := range s.rules {
		r := &s.rules[i]
		if r.op != op {
			continue
		}
		if r.limit > 0 && r.fired >= r.limit {
			continue
		}
		hit := false
		switch {
		case r.at > 0:
			hit = n == r.at
		case r.every > 0:
			hit = n%r.every == 0
		case r.p > 0:
			hit = n > r.after && s.rng.Float64() < r.p
		}
		if hit {
			r.fired++
			act := r.act
			return &act
		}
	}
	return nil
}

// Count returns how many times op has occurred so far.
func (s *Schedule) Count(op string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count[op]
}

// HasOp reports whether any rule is armed for an operation with the given
// prefix — the conn-wrapping path uses it to skip wrapping entirely when a
// schedule only carries WAL rules.
func (s *Schedule) HasOp(prefix string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if strings.HasPrefix(r.op, prefix) {
			return true
		}
	}
	return false
}

// errByName maps the spec grammar's error names onto real errno values, so
// injected faults are indistinguishable from the OS's own.
var errByName = map[string]error{
	"EIO":        syscall.EIO,
	"ENOSPC":     syscall.ENOSPC,
	"EACCES":     syscall.EACCES,
	"EPIPE":      syscall.EPIPE,
	"ECONNRESET": syscall.ECONNRESET,
	"ETIMEDOUT":  syscall.ETIMEDOUT,
}

// ParseSchedule builds a schedule from a spec string: semicolon-separated
// rules, each a colon-separated operation name followed by trigger and
// action fields:
//
//	rule    := op (":" field)*
//	field   := "at=" N | "every=" N | "after=" K | "p=" F | "limit=" N
//	         | "err=" NAME | "short=" N | "delay=" DUR | "reset"
//	special := "seed=" N            (standalone rule; seeds the generator)
//
// Operation names are dotted: the WAL's file seam uses wal.open, wal.write,
// wal.sync, wal.rename, wal.remove, wal.truncate, wal.readfile, wal.readdir,
// wal.mkdir, wal.stat; the conn wrapper uses conn.read and conn.write.
// Error names are EIO, ENOSPC, EACCES, EPIPE, ECONNRESET, ETIMEDOUT.
// A rule with no explicit action defaults to err=EIO (reset for conn ops).
//
//	wal.sync:at=25:err=EIO
//	wal.write:after=100:p=0.01:err=ENOSPC
//	wal.write:at=5:short=3:err=ENOSPC
//	conn.write:at=40:reset
//	conn.read:every=50:delay=20ms
//	seed=42;wal.sync:after=10:p=0.25
func ParseSchedule(spec string) (*Schedule, error) {
	seed := uint64(1)
	var rules []rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, ":")
		if v, ok := strings.CutPrefix(fields[0], "seed="); ok && len(fields) == 1 {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		r := rule{op: fields[0], act: Action{Short: -1}}
		hasShort := false
		for _, f := range fields[1:] {
			key, val, hasVal := strings.Cut(f, "=")
			switch key {
			case "at", "every", "after", "limit":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || (key != "after" && n == 0) {
					return nil, fmt.Errorf("fault: rule %q: bad %s=%q", raw, key, val)
				}
				switch key {
				case "at":
					r.at, r.limit = n, 1
				case "every":
					r.every = n
				case "after":
					r.after = n
				case "limit":
					r.limit = n
				}
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad p=%q (want (0, 1])", raw, val)
				}
				r.p = p
			case "err":
				e, ok := errByName[val]
				if !ok {
					return nil, fmt.Errorf("fault: rule %q: unknown error %q", raw, val)
				}
				r.act.Err = e
			case "short":
				n, err := strconv.ParseUint(val, 10, 31)
				if err != nil {
					return nil, fmt.Errorf("fault: rule %q: bad short=%q", raw, val)
				}
				r.act.Short = int(n)
				hasShort = true
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad delay=%q", raw, val)
				}
				r.act.Delay = d
			case "reset":
				if hasVal {
					return nil, fmt.Errorf("fault: rule %q: reset takes no value", raw)
				}
				r.act.Reset = true
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown field %q", raw, f)
			}
		}
		if r.at == 0 && r.every == 0 && r.p == 0 {
			return nil, fmt.Errorf("fault: rule %q needs a trigger (at=, every=, or after=/p=)", raw)
		}
		if r.p > 0 && r.at+r.every > 0 {
			return nil, fmt.Errorf("fault: rule %q mixes count and probability triggers", raw)
		}
		if r.act.Err == nil && r.act.Delay == 0 && !r.act.Reset {
			// Default action: an error for file ops, a reset for conn ops —
			// a bare trigger should fault, not silently no-op.
			if strings.HasPrefix(r.op, "conn.") {
				r.act.Reset = true
			} else {
				r.act.Err = syscall.EIO
			}
		}
		if hasShort && r.act.Err == nil {
			r.act.Err = syscall.ENOSPC
		}
		rules = append(rules, r)
	}
	s := NewSchedule(seed)
	s.rules = rules
	return s, nil
}
