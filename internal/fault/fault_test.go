package fault

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestScheduleFailAt(t *testing.T) {
	s := NewSchedule(1).FailAt("wal.sync", 3, Action{Err: syscall.EIO})
	for i := 1; i <= 5; i++ {
		act := s.Next("wal.sync")
		if i == 3 {
			if act == nil || act.Err != syscall.EIO {
				t.Fatalf("op %d: want EIO, got %v", i, act)
			}
		} else if act != nil {
			t.Fatalf("op %d: unexpected action %v", i, act)
		}
	}
	if got := s.Count("wal.sync"); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestScheduleFailEvery(t *testing.T) {
	s := NewSchedule(1).FailEvery("conn.write", 2, Action{Reset: true})
	fires := 0
	for i := 0; i < 10; i++ {
		if s.Next("conn.write") != nil {
			fires++
		}
	}
	if fires != 5 {
		t.Fatalf("every=2 over 10 ops fired %d times, want 5", fires)
	}
}

func TestScheduleProbDeterministic(t *testing.T) {
	run := func() []uint64 {
		s := NewSchedule(42).FailAfterProb("wal.write", 10, 0.3, Action{Err: syscall.ENOSPC})
		var hits []uint64
		for i := uint64(1); i <= 200; i++ {
			if s.Next("wal.write") != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.3 over 190 eligible ops never fired")
	}
	for _, n := range a {
		if n <= 10 {
			t.Fatalf("fired at op %d, before after=10", n)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fire sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestScheduleOpIsolation(t *testing.T) {
	s := NewSchedule(1).FailAt("wal.sync", 1, Action{Err: syscall.EIO})
	if act := s.Next("wal.write"); act != nil {
		t.Fatalf("wal.write triggered wal.sync rule: %v", act)
	}
	if act := s.Next("wal.sync"); act == nil {
		t.Fatal("wal.sync rule did not fire on its own eligible op")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("wal.sync:at=2:err=EIO;conn.write:at=3:reset;wal.write:at=1:short=4:err=ENOSPC")
	if err != nil {
		t.Fatal(err)
	}
	if act := s.Next("wal.write"); act == nil || act.Short != 4 || act.Err != syscall.ENOSPC {
		t.Fatalf("wal.write at=1: got %+v", act)
	}
	s.Next("wal.sync")
	if act := s.Next("wal.sync"); act == nil || act.Err != syscall.EIO {
		t.Fatalf("wal.sync at=2: got %+v", act)
	}
	s.Next("conn.write")
	s.Next("conn.write")
	if act := s.Next("conn.write"); act == nil || !act.Reset {
		t.Fatalf("conn.write at=3: got %+v", act)
	}
}

func TestParseScheduleDefaults(t *testing.T) {
	s, err := ParseSchedule("wal.sync:at=1;conn.read:at=1")
	if err != nil {
		t.Fatal(err)
	}
	if act := s.Next("wal.sync"); act == nil || act.Err != syscall.EIO {
		t.Fatalf("bare wal rule should default to EIO, got %+v", act)
	}
	if act := s.Next("conn.read"); act == nil || !act.Reset {
		t.Fatalf("bare conn rule should default to reset, got %+v", act)
	}
}

func TestParseScheduleSeedAndDelay(t *testing.T) {
	s, err := ParseSchedule("seed=7;conn.read:at=1:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	act := s.Next("conn.read")
	if act == nil || act.Delay != time.Millisecond {
		t.Fatalf("got %+v", act)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	for _, spec := range []string{
		"wal.sync",                   // no trigger
		"wal.sync:err=EIO",           // action without trigger
		"wal.sync:at=0",              // zero at
		"wal.sync:at=1:err=EWHAT",    // unknown errno
		"wal.sync:at=1:p=0.5",        // mixed triggers
		"wal.sync:p=2:after=1",       // p out of range
		"wal.sync:at=1:bogus=3",      // unknown field
		"wal.sync:at=1:delay=-1s",    // negative delay
		"seed=x",                     // bad seed
		"conn.write:at=1:reset=true", // reset takes no value
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", spec)
		}
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	s := NewSchedule(1).FailAt("wal.write", 2, Action{Err: syscall.ENOSPC, Short: 3})
	fsys := NewFS(nil, s)
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("world!"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: n=%d err=%v, want 3/ENOSPC", n, err)
	}
	f.Close()
	b, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hellowor" {
		t.Fatalf("file contents %q, want %q", b, "hellowor")
	}
}

func TestFaultFSSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	s := NewSchedule(1).
		FailAt("wal.sync", 1, Action{Err: syscall.EIO}).
		FailAt("wal.rename", 1, Action{Err: syscall.EACCES})
	fsys := NewFS(nil, s)
	f, err := fsys.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 (past rule): %v", err)
	}
	f.Close()
	err = fsys.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("rename: %v, want EACCES", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("failed rename must leave source intact: %v", err)
	}
}

func TestFaultFSNilPassthrough(t *testing.T) {
	if fs := NewFS(nil, nil); fs != OS {
		t.Fatal("NewFS(nil, nil) should return the passthrough OS")
	}
}

func TestWrapConnPassthroughWithoutConnRules(t *testing.T) {
	s := NewSchedule(1).FailAt("wal.sync", 1, Action{Err: syscall.EIO})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := WrapConn(c1, s); got != c1 {
		t.Fatal("schedule without conn.* rules must not wrap")
	}
	if got := WrapConn(c1, nil); got != c1 {
		t.Fatal("nil schedule must not wrap")
	}
}

func TestWrapConnReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		for {
			if _, err := c.Read(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(1).FailAt("conn.write", 2, Action{Reset: true})
	c := WrapConn(raw, s)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := c.Write([]byte("boom")); err == nil {
		t.Fatal("write 2 should fail with injected reset")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server read should error after reset")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never observed the reset")
	}
	// The wrapped conn is dead; further writes fail too.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after reset should fail")
	}
}

func TestWrapConnErrAndPartial(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	s := NewSchedule(1).FailAt("conn.write", 1, Action{Err: syscall.EPIPE, Short: 2})
	c := WrapConn(c1, s)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := c2.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, syscall.EPIPE) {
		t.Fatalf("write: n=%d err=%v, want 2/EPIPE", n, err)
	}
	select {
	case b := <-got:
		if string(b) != "ab" {
			t.Fatalf("peer saw %q, want partial %q", b, "ab")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the partial frame")
	}
	c1.Close()
}
