package labelprop

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

func identity(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

func TestRunMatchesOracleOnPanel(t *testing.T) {
	for name, g := range testutil.Panel() {
		parent := identity(g.NumVertices())
		Run(g, parent, nil)
		testutil.CheckPartition(t, name, parent, testutil.Components(g))
	}
}

func TestRoundsScaleWithDiameter(t *testing.T) {
	// The paper's road_usa pathology: rounds grow with graph diameter. A
	// plain path collapses in one sweep because ascending iteration order
	// matches the chain, so permute the vertex IDs to break that alignment;
	// the minimum label then needs many rounds to cross the permuted path.
	const n = 4096
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	// Fisher-Yates with a deterministic hash source.
	state := uint64(12345)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: perm[i], V: perm[i+1]})
	}
	long := graph.Build(n, edges)
	short := graph.Star(n)
	ps, pl := identity(n), identity(n)
	rs := Run(short, ps, nil)
	rl := Run(long, pl, nil)
	testutil.CheckPartition(t, "permuted-path", pl, testutil.Components(long))
	if rs > 4 {
		t.Fatalf("star rounds = %d, want O(1)", rs)
	}
	if rl <= 4*rs {
		t.Fatalf("permuted path rounds %d vs star rounds %d; want diameter-driven growth", rl, rs)
	}
}

func TestFavoredComponentNeverRelabeled(t *testing.T) {
	g := testutilBridged()
	n := g.NumVertices()
	parent := identity(n)
	skip := make([]bool, n)
	for v := 0; v < 20; v++ {
		parent[v] = 19 // favored root with a deliberately large ID
		skip[v] = true
	}
	Run(g, parent, skip)
	want := testutil.Components(g)
	testutil.CheckPartition(t, "bridged", parent, want)
	if parent[0] != 19 || parent[25] != 19 {
		t.Fatalf("favored label should cover the whole connected graph, got %d/%d", parent[0], parent[25])
	}
}

func testutilBridged() *graph.Graph {
	g := graph.Cliques(2, 20)
	edges := g.Edges()
	edges = append(edges, graph.Edge{U: 5, V: 25})
	return graph.Build(40, edges)
}

func TestIsolatedVerticesKeepOwnLabels(t *testing.T) {
	g := graph.Build(10, []graph.Edge{{U: 0, V: 1}})
	parent := identity(10)
	Run(g, parent, nil)
	for v := 2; v < 10; v++ {
		if parent[v] != uint32(v) {
			t.Fatalf("isolated vertex %d relabeled to %d", v, parent[v])
		}
	}
	if parent[1] != 0 {
		t.Fatalf("parent[1] = %d, want 0", parent[1])
	}
}
