// Package labelprop implements the folklore Label-Propagation connectivity
// algorithm (§B.2.6): a frontier-based min-label flood, equivalent to
// iterated sparse matrix-vector multiplication over the (min, min) semiring.
// Each round, every frontier vertex exchanges labels with its neighbors via
// writeMin; vertices whose label changed form the next frontier. The
// algorithm terminates within D rounds for diameter D, which is what makes
// it catastrophically slow on high-diameter graphs (the paper's road_usa
// result) — a behaviour reproduced by the benchmarks.
package labelprop

import (
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/minlabel"
	"connectit/internal/parallel"
)

// Run refines the labeling in parent to connected components. favored,
// when non-nil, marks the vertices of the sampled most-frequent component:
// their out-edges are not traversed and their IDs compare smaller than every
// other label, so their labels can only spread inward via their neighbors'
// own edge scans (Theorem 4). It is generic over the graph representation
// (graph.Rep) and returns the number of rounds.
func Run[G graph.Rep](g G, parent []uint32, favored []bool) int {
	n := g.NumVertices()
	skip := favored
	ord := minlabel.Order{Favored: favored}

	// epoch[v] == round marks membership in the next frontier.
	epoch := make([]uint32, n)

	// The frontier filter and the exchange body are built once outside the
	// round loop: the filter reuses its count/output scratch across rounds
	// (D rounds on a diameter-D graph would otherwise allocate two arrays
	// each), and a per-round closure would cost a heap allocation per sweep.
	var filter parallel.Filter
	round := uint32(0)
	var frontier []uint32
	exchange := func(lo, hi int) {
		var buf []graph.Vertex
		for i := lo; i < hi; i++ {
			v := frontier[i]
			buf = g.NeighborsInto(v, buf)
			for _, u := range buf {
				pv := atomic.LoadUint32(&parent[v])
				// Push v's label to u.
				if ord.WriteMin(&parent[u], pv) {
					if skip == nil || !skip[u] {
						atomic.StoreUint32(&epoch[u], round)
					}
				} else if pu := atomic.LoadUint32(&parent[u]); ord.Less(pu, pv) {
					// Pull u's label into v.
					if ord.WriteMin(&parent[v], pu) {
						atomic.StoreUint32(&epoch[v], round)
					}
				}
			}
		}
	}
	nextFrontier := func(i int) bool { return epoch[i] == round }

	frontier = filter.Indices(n, func(i int) bool {
		return (skip == nil || !skip[i]) && g.Degree(graph.Vertex(i)) > 0
	})
	for len(frontier) > 0 {
		round++
		parallel.ForGrained(len(frontier), 128, exchange)
		frontier = filter.Indices(n, nextFrontier)
	}
	return int(round)
}
