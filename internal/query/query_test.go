package query

import (
	"errors"
	"testing"

	"connectit/internal/graph"
)

// buildForest deterministically grows a forest over n vertices with one
// tree per residue class mod comps, returning the edges.
func buildForest(n, comps int) []graph.Edge {
	var edges []graph.Edge
	for v := comps; v < n; v++ {
		// Attach v to an earlier vertex of the same class, hashed for shape.
		stride := comps * (1 + int(graph.Hash64(uint64(v))%4))
		p := v - stride
		for p < 0 {
			p += comps
		}
		edges = append(edges, graph.Edge{U: uint32(p), V: uint32(v)})
	}
	return edges
}

// bfsOracle answers connectivity and distance over an adjacency list.
type bfsOracle struct {
	adj  [][]uint32
	seen []int
	mark int
}

func newBFSOracle(n int, edges []graph.Edge) *bfsOracle {
	o := &bfsOracle{adj: make([][]uint32, n), seen: make([]int, n)}
	for _, e := range edges {
		o.adj[e.U] = append(o.adj[e.U], e.V)
		o.adj[e.V] = append(o.adj[e.V], e.U)
	}
	return o
}

// reach returns whether v is reachable from u and the hop distance.
func (o *bfsOracle) reach(u, v uint32) (bool, int) {
	o.mark++
	type qe struct {
		v uint32
		d int
	}
	queue := []qe{{u, 0}}
	o.seen[u] = o.mark
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		if x.v == v {
			return true, x.d
		}
		for _, w := range o.adj[x.v] {
			if o.seen[w] != o.mark {
				o.seen[w] = o.mark
				queue = append(queue, qe{w, x.d + 1})
			}
		}
	}
	return false, 0
}

// TestStaticAgainstBFSOracle checks every pair-query answer on a static
// forest against an independent BFS: connectivity, path existence, path
// length (forest paths are unique, so length must equal BFS distance), and
// path chaining.
func TestStaticAgainstBFSOracle(t *testing.T) {
	const n, comps = 256, 3
	forest := buildForest(n, comps)
	e := NewStatic(n, forest)
	oracle := newBFSOracle(n, forest)

	if nc, err := e.NumComponents(); err != nil || nc != comps {
		t.Fatalf("NumComponents = (%d, %v), want (%d, nil)", nc, err, comps)
	}
	if s := e.Stats(); s.ForestEdges != n-comps || s.Dropped != 0 {
		t.Fatalf("Stats = %+v, want %d forest edges, 0 dropped", s, n-comps)
	}
	for u := uint32(0); u < n; u += 3 {
		for v := uint32(1); v < n; v += 7 {
			wantConn, wantDist := oracle.reach(u, v)
			path, conn, err := e.PathBetween(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if conn != wantConn {
				t.Fatalf("PathBetween(%d,%d) connected = %v, oracle %v", u, v, conn, wantConn)
			}
			if !conn {
				continue
			}
			if len(path) != wantDist {
				t.Fatalf("PathBetween(%d,%d) length = %d, oracle distance %d", u, v, len(path), wantDist)
			}
			at := u
			for _, ed := range path {
				if ed.U != at {
					t.Fatalf("PathBetween(%d,%d): broken chain at %d", u, v, ed.U)
				}
				at = ed.V
			}
			if at != v {
				t.Fatalf("PathBetween(%d,%d): path ends at %d", u, v, at)
			}
		}
	}
}

// TestStaticDroppedEdges: NewStatic tolerates redundant input edges —
// they are counted, not indexed.
func TestStaticDroppedEdges(t *testing.T) {
	e := NewStatic(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 0}})
	s := e.Stats()
	if s.ForestEdges != 2 || s.Dropped != 2 {
		t.Fatalf("Stats = %+v, want 2 indexed, 2 dropped", s)
	}
	if nc, _ := e.NumComponents(); nc != 2 {
		t.Fatalf("NumComponents = %d, want 2 ({0,1,2} and {3})", nc)
	}
}

// TestSelfPairAndRange: u == v yields an empty non-nil path;
// out-of-range vertices error on every pair/point query.
func TestSelfPairAndRange(t *testing.T) {
	e := NewStatic(4, []graph.Edge{{U: 0, V: 1}})
	path, conn, err := e.PathBetween(1, 1)
	if err != nil || !conn || path == nil || len(path) != 0 {
		t.Fatalf("PathBetween(1,1) = (%v, %v, %v), want empty path", path, conn, err)
	}
	if _, _, err := e.PathBetween(0, 4); err == nil {
		t.Fatal("PathBetween(0,4) accepted an out-of-range vertex")
	}
	if _, err := e.Component(9); err == nil {
		t.Fatal("Component(9) accepted an out-of-range vertex")
	}
	if _, err := e.ComponentSize(4); err == nil {
		t.Fatal("ComponentSize(4) accepted an out-of-range vertex")
	}
	if _, err := e.Connected(4, 0); err == nil {
		t.Fatal("Connected(4,0) accepted an out-of-range vertex")
	}
}

// TestLabelled: label-backed engines answer counting queries and refuse
// walks with ErrNoForest, decided at construction.
func TestLabelled(t *testing.T) {
	// Components {0,1,2}, {3,4}, {5}: canonical star labeling.
	e := NewLabelled([]uint32{0, 0, 0, 3, 3, 5})
	if nc, _ := e.NumComponents(); nc != 3 {
		t.Fatalf("NumComponents = %d, want 3", nc)
	}
	if lbl, size, _ := e.LargestComponent(); lbl != 0 || size != 3 {
		t.Fatalf("LargestComponent = (%d, %d), want (0, 3)", lbl, size)
	}
	if sz, _ := e.ComponentSize(4); sz != 2 {
		t.Fatalf("ComponentSize(4) = %d, want 2", sz)
	}
	if c, _ := e.Connected(1, 2); !c {
		t.Fatal("Connected(1,2) = false, want true")
	}
	hist, err := e.ComponentHistogram()
	if err != nil {
		t.Fatal(err)
	}
	want := Histogram{{Size: 1, Count: 1}, {Size: 2, Count: 1}, {Size: 3, Count: 1}}
	if len(hist) != len(want) {
		t.Fatalf("histogram = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", hist, want)
		}
	}
	if _, _, err := e.PathBetween(0, 1); !errors.Is(err, ErrNoForest) {
		t.Fatalf("PathBetween on labels: err = %v, want ErrNoForest", err)
	}
	if _, err := e.SpanningForest(); !errors.Is(err, ErrNoForest) {
		t.Fatalf("SpanningForest on labels: err = %v, want ErrNoForest", err)
	}
}

// fakeSource is a scripted Source for refresh tests.
type fakeSource struct {
	n      int
	edges  []graph.Edge
	failed error
}

func (f *fakeSource) NumVertices() int { return f.n }
func (f *fakeSource) Err() error       { return f.failed }
func (f *fakeSource) ForestPull(cursor int, dst []graph.Edge) (int, []graph.Edge) {
	dst = append(dst, f.edges[cursor:]...)
	return len(f.edges), dst
}

// TestLiveRefresh: a live engine absorbs source edges incrementally and
// starts failing the moment the source reports closure.
func TestLiveRefresh(t *testing.T) {
	src := &fakeSource{n: 4}
	e := New(src)
	if c, _ := e.Connected(0, 1); c {
		t.Fatal("Connected(0,1) before any edges, want false")
	}
	src.edges = append(src.edges, graph.Edge{U: 0, V: 1})
	if c, _ := e.Connected(0, 1); !c {
		t.Fatal("Connected(0,1) after publishing {0,1}, want true")
	}
	src.edges = append(src.edges, graph.Edge{U: 1, V: 2})
	if path, _, _ := e.PathBetween(0, 2); len(path) != 2 {
		t.Fatalf("PathBetween(0,2) length = %d, want 2", len(path))
	}
	src.failed = errors.New("closed")
	if _, err := e.NumComponents(); !errors.Is(err, src.failed) {
		t.Fatalf("query on failed source: err = %v, want %v", err, src.failed)
	}
}
