// Package query implements the composable connectivity query engine behind
// connectit.Query (DESIGN.md §12). It separates "what to compute" — path,
// component-size, histogram, and forest queries — from "how the labeling is
// produced": the same Engine answers over a live streaming spanning forest
// (pulled incrementally from a Source), a static forest computed offline
// (Algorithm 2), or a bare connectivity labeling when no forest exists.
//
// The engine maintains a union-by-min disjoint-set over the forest edges it
// has absorbed, so component labels are canonical minima — identical to the
// labels the solvers and streams report — plus a half-edge adjacency over
// the forest for breadth-first path reconstruction. All scratch (BFS
// stamps, queues, histogram bins) is retained across calls, and every
// public method is safe for concurrent use behind one mutex: queries are
// reads over an incrementally grown index, serialized cheaply relative to
// the traversals they perform.
package query

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"connectit/internal/graph"
)

// ErrNoForest is returned by path and forest queries on engines built from
// a bare labeling (no spanning forest behind them). The verdict is fixed at
// construction, mirroring the compile-time capability gating of the solver
// surface.
var ErrNoForest = errors.New("query: engine has no spanning forest (label-backed)")

// Source feeds a live forest into an Engine. The ingest engine's Stream is
// the canonical implementation.
type Source interface {
	// NumVertices is the vertex universe size.
	NumVertices() int
	// ForestPull appends forest edges captured since cursor to dst,
	// returning the advanced cursor and grown slice. Must be safe to call
	// concurrently with updates; published edges must never move.
	ForestPull(cursor int, dst []graph.Edge) (int, []graph.Edge)
	// Err reports the source's liveness: queries fail with this error once
	// it is non-nil (e.g. a closed stream).
	Err() error
}

// Bin is one histogram bucket: Count components of exactly Size vertices.
type Bin struct {
	Size  int `json:"size"`
	Count int `json:"count"`
}

// Histogram is a component-size histogram in increasing Size order.
type Histogram []Bin

// Stats is a snapshot of the engine's index.
type Stats struct {
	// ForestEdges is the number of forest edges absorbed into the index.
	ForestEdges int
	// Dropped counts pulled edges rejected because their endpoints were
	// already connected (always 0 when capture upholds the forest
	// invariant; surfaced for observability).
	Dropped int
	// Components is the current number of connected components.
	Components int
}

// noHalf is the empty half-edge list sentinel.
const noHalf = int32(-1)

// Engine answers connectivity queries over an incrementally maintained
// spanning forest (see the package comment). Construct with New (live
// source), NewStatic (offline forest), or NewLabelled (labeling only).
type Engine struct {
	mu  sync.Mutex
	src Source

	n       int
	cursor  int
	pathErr error // ErrNoForest for label-backed engines

	forest  []graph.Edge // accepted forest edges, index-stable
	pull    []graph.Edge // ForestPull scratch
	dropped int

	// Union-by-min over forest edges: parents strictly decrease, so every
	// root is its component's minimum and Find yields canonical labels.
	parent     []uint32
	size       []uint32
	components int
	maxRoot    uint32
	maxSize    uint32

	// Half-edge adjacency: forest edge i contributes half-edge 2i at U
	// (toward V) and 2i+1 at V (toward U).
	head   []int32
	nextHE []int32

	// BFS scratch: stamp[v] == epoch marks v visited in the current
	// traversal; via[v] is the half-edge that discovered v.
	stamp []uint32
	epoch uint32
	via   []int32
	queue []uint32

	// Histogram cache, valid while the forest length is unchanged.
	histAt int
	hist   Histogram
	sizes  []uint32 // histogram sort scratch
}

// New builds a live engine over src. Queries pull newly captured forest
// edges from the source before answering, so answers always reflect every
// update the source had published at call time.
func New(src Source) *Engine {
	e := newEngine(src.NumVertices())
	e.src = src
	return e
}

// NewStatic builds an engine over a fixed forest (the output of
// Solver.SpanningForest). The forest is absorbed at construction; edges
// whose endpoints repeat a component merge are dropped (Stats.Dropped).
func NewStatic(n int, forest []graph.Edge) *Engine {
	e := newEngine(n)
	for _, ed := range forest {
		e.addEdge(ed)
	}
	return e
}

// NewLabelled builds an engine from a connectivity labeling: labels[v] is
// v's component label, with labels[labels[v]] == labels[v] (the canonical
// star form every solver returns). Component, size, and histogram queries
// work; PathBetween and SpanningForest return ErrNoForest — there is no
// forest to walk. The labels slice is copied.
func NewLabelled(labels []uint32) *Engine {
	e := newEngine(len(labels))
	e.pathErr = ErrNoForest
	copy(e.parent, labels)
	e.components = 0
	for i := range e.size {
		e.size[i] = 0
	}
	for i, l := range labels {
		e.size[l]++ // flat star form: l is i's root
		if l == uint32(i) {
			e.components++
		}
	}
	e.maxSize = 0
	for i := range e.size {
		if e.parent[i] == uint32(i) && e.size[i] > e.maxSize {
			e.maxSize, e.maxRoot = e.size[i], uint32(i)
		}
	}
	return e
}

func newEngine(n int) *Engine {
	e := &Engine{
		n:          n,
		components: n,
		parent:     make([]uint32, n),
		size:       make([]uint32, n),
		head:       make([]int32, n),
		stamp:      make([]uint32, n),
		via:        make([]int32, n),
		histAt:     -1,
	}
	for i := 0; i < n; i++ {
		e.parent[i] = uint32(i)
		e.size[i] = 1
		e.head[i] = noHalf
	}
	if n > 0 {
		e.maxRoot, e.maxSize = 0, 1
	}
	return e
}

// find chases parent pointers with full path compression. Parents strictly
// decrease toward the component minimum, so the walk terminates and the
// root is the canonical label.
func (e *Engine) find(x uint32) uint32 {
	r := x
	for e.parent[r] != r {
		r = e.parent[r]
	}
	for e.parent[x] != x {
		e.parent[x], x = r, e.parent[x]
	}
	return r
}

// addEdge absorbs one captured forest edge into the index.
func (e *Engine) addEdge(ed graph.Edge) {
	ru, rv := e.find(ed.U), e.find(ed.V)
	if ru == rv {
		e.dropped++
		return
	}
	if rv < ru {
		ru, rv = rv, ru
	}
	e.parent[rv] = ru
	e.size[ru] += e.size[rv]
	e.components--
	if e.size[ru] > e.maxSize {
		e.maxSize, e.maxRoot = e.size[ru], ru
	}
	i := int32(len(e.forest))
	e.forest = append(e.forest, ed)
	h0, h1 := 2*i, 2*i+1
	e.nextHE = append(e.nextHE, e.head[ed.U], e.head[ed.V])
	e.head[ed.U], e.head[ed.V] = h0, h1
}

// refresh pulls and absorbs newly captured forest edges. Caller holds mu.
func (e *Engine) refresh() error {
	if e.src == nil {
		return nil
	}
	if err := e.src.Err(); err != nil {
		return err
	}
	e.pull = e.pull[:0]
	e.cursor, e.pull = e.src.ForestPull(e.cursor, e.pull)
	for _, ed := range e.pull {
		e.addEdge(ed)
	}
	return nil
}

func (e *Engine) checkVertex(v uint32) error {
	if int(v) >= e.n {
		return fmt.Errorf("query: vertex %d out of range [0, %d)", v, e.n)
	}
	return nil
}

// NumVertices returns the vertex universe size.
func (e *Engine) NumVertices() int { return e.n }

// Refresh absorbs every forest edge the source has published, without
// answering a query. Useful before reading Stats.
func (e *Engine) Refresh() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refresh()
}

// Stats snapshots the engine's index counters (no source pull).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{ForestEdges: len(e.forest), Dropped: e.dropped, Components: e.components}
}

// Connected reports whether u and v are in the same component.
func (e *Engine) Connected(u, v uint32) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkVertex(u); err != nil {
		return false, err
	}
	if err := e.checkVertex(v); err != nil {
		return false, err
	}
	if err := e.refresh(); err != nil {
		return false, err
	}
	return e.find(u) == e.find(v), nil
}

// Component returns the canonical component label of v — the smallest
// vertex ID in v's component, matching the labels solvers and streams
// report.
func (e *Engine) Component(v uint32) (uint32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkVertex(v); err != nil {
		return 0, err
	}
	if err := e.refresh(); err != nil {
		return 0, err
	}
	return e.find(v), nil
}

// ComponentSize returns the number of vertices in v's component.
func (e *Engine) ComponentSize(v uint32) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkVertex(v); err != nil {
		return 0, err
	}
	if err := e.refresh(); err != nil {
		return 0, err
	}
	return int(e.size[e.find(v)]), nil
}

// NumComponents returns the current number of connected components.
func (e *Engine) NumComponents() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refresh(); err != nil {
		return 0, err
	}
	return e.components, nil
}

// LargestComponent returns the canonical label and size of the largest
// component (ties broken by earliest to reach the size).
func (e *Engine) LargestComponent() (uint32, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refresh(); err != nil {
		return 0, 0, err
	}
	if e.n == 0 {
		return 0, 0, nil
	}
	// maxRoot may have been absorbed into a smaller root of equal size;
	// normalize to the canonical label.
	return e.find(e.maxRoot), int(e.maxSize), nil
}

// Labels returns a fresh canonical connectivity labeling: labels[v] is the
// smallest vertex in v's component.
func (e *Engine) Labels() ([]uint32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refresh(); err != nil {
		return nil, err
	}
	out := make([]uint32, e.n)
	for i := range out {
		out[i] = e.find(uint32(i))
	}
	return out, nil
}

// ComponentHistogram returns the component-size histogram in increasing
// size order. The result is cached until the forest grows.
func (e *Engine) ComponentHistogram() (Histogram, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.refresh(); err != nil {
		return nil, err
	}
	if e.histAt != len(e.forest) {
		e.sizes = e.sizes[:0]
		for i := 0; i < e.n; i++ {
			if e.parent[i] == uint32(i) {
				e.sizes = append(e.sizes, e.size[i])
			}
		}
		slices.Sort(e.sizes)
		e.hist = e.hist[:0]
		for i := 0; i < len(e.sizes); {
			j := i
			for j < len(e.sizes) && e.sizes[j] == e.sizes[i] {
				j++
			}
			e.hist = append(e.hist, Bin{Size: int(e.sizes[i]), Count: j - i})
			i = j
		}
		e.histAt = len(e.forest)
	}
	out := make(Histogram, len(e.hist))
	copy(out, e.hist)
	return out, nil
}

// SpanningForest returns a copy of the forest edges absorbed so far:
// exactly n − NumComponents() real graph edges spanning every component.
func (e *Engine) SpanningForest() ([]graph.Edge, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pathErr != nil {
		return nil, e.pathErr
	}
	if err := e.refresh(); err != nil {
		return nil, err
	}
	out := make([]graph.Edge, len(e.forest))
	copy(out, e.forest)
	return out, nil
}

// PathBetween returns a path of forest edges from u to v, oriented
// u-to-v, and whether the endpoints are connected. The path is simple and
// has at most ComponentSize(u) − 1 edges; it is a fresh slice. A
// connected pair always yields a path (u == v yields an empty one).
func (e *Engine) PathBetween(u, v uint32) ([]graph.Edge, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkVertex(u); err != nil {
		return nil, false, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, false, err
	}
	if e.pathErr != nil {
		return nil, false, e.pathErr
	}
	if err := e.refresh(); err != nil {
		return nil, false, err
	}
	if e.find(u) != e.find(v) {
		return nil, false, nil
	}
	if u == v {
		return []graph.Edge{}, true, nil
	}

	// Breadth-first search over the forest component (its size bounds the
	// work); via half-edges reconstruct the walk.
	e.epoch++
	if e.epoch == 0 { // stamp wraparound: invalidate everything once
		clear(e.stamp)
		e.epoch = 1
	}
	e.queue = e.queue[:0]
	e.stamp[u] = e.epoch
	e.via[u] = noHalf
	e.queue = append(e.queue, u)
	found := false
	for qi := 0; qi < len(e.queue) && !found; qi++ {
		x := e.queue[qi]
		for h := e.head[x]; h != noHalf; h = e.nextHE[h] {
			ed := e.forest[h/2]
			to := ed.V
			if h&1 == 1 {
				to = ed.U
			}
			if e.stamp[to] == e.epoch {
				continue
			}
			e.stamp[to] = e.epoch
			e.via[to] = h
			if to == v {
				found = true
				break
			}
			e.queue = append(e.queue, to)
		}
	}
	if !found {
		// Unreachable when the forest invariant holds (find said
		// connected); fail loudly rather than return a wrong answer.
		return nil, false, fmt.Errorf("query: forest is missing a path between %d and %d", u, v)
	}
	var path []graph.Edge
	for x := v; x != u; {
		h := e.via[x]
		ed := e.forest[h/2]
		from := ed.U
		if h&1 == 1 {
			from = ed.V
		}
		path = append(path, graph.Edge{U: from, V: x})
		x = from
	}
	slices.Reverse(path)
	return path, true, nil
}
