// Package stinger is a faithful simplified re-implementation of the STINGER
// streaming-graph system's architecture [34, 35] and its streaming connected
// components algorithm by McColl et al. [71], used as the comparison
// baseline for Table 5.
//
// STINGER stores adjacency as chained fixed-size edge blocks updated under
// fine-grained locking, and its streaming CC maintains an explicit
// vertex-labeled component mapping: an inserted edge joining two components
// triggers a relabel of the smaller component by traversing the dynamic
// adjacency structure. The simulation preserves exactly the costs the
// paper's comparison hinges on (DESIGN.md §2):
//
//   - per-vertex initialization work proportional to n (the "unusually long
//     initialization period" the paper observes),
//   - per-insertion block-list traversal under per-vertex locks (STINGER
//     must maintain adjacency for deletions even though this workload never
//     deletes),
//   - component merges that re-traverse the dynamic structure rather than
//     following O(alpha) union-find pointers.
package stinger

import (
	"sync"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// blockSize is STINGER's edges-per-block constant (14 in the C
// implementation).
const blockSize = 14

// block is one fixed-size edge block in a vertex's chained adjacency.
type block struct {
	edges [blockSize]uint32
	count int
	next  *block
}

// Stinger is the dynamic graph structure plus the streaming CC labeling.
type Stinger struct {
	heads  []*block
	locks  []concurrent.Spinlock
	labels []uint32
	sizes  []int // component sizes, indexed by label
}

// New initializes a STINGER instance for n vertices. Initialization
// allocates per-vertex state eagerly, mirroring the per-vertex setup cost
// the paper observes in STINGER's streaming CC.
func New(n int) *Stinger {
	s := &Stinger{
		heads:  make([]*block, n),
		locks:  make([]concurrent.Spinlock, n),
		labels: make([]uint32, n),
		sizes:  make([]int, n),
	}
	for v := 0; v < n; v++ {
		// Eager first block per vertex: STINGER pre-allocates edge block
		// headers during its streaming-CC initialization.
		s.heads[v] = &block{}
		s.labels[v] = uint32(v)
		s.sizes[v] = 1
	}
	return s
}

// NumVertices returns the number of vertices.
func (s *Stinger) NumVertices() int { return len(s.labels) }

// insertHalf appends v to u's block chain under u's lock, skipping
// duplicates (a full chain traversal, as STINGER performs).
func (s *Stinger) insertHalf(u, v uint32) {
	s.locks[u].Lock()
	b := s.heads[u]
	for {
		for i := 0; i < b.count; i++ {
			if b.edges[i] == v {
				s.locks[u].Unlock()
				return
			}
		}
		if b.next == nil {
			break
		}
		b = b.next
	}
	if b.count == blockSize {
		b.next = &block{}
		b = b.next
	}
	b.edges[b.count] = v
	b.count++
	s.locks[u].Unlock()
}

// neighbors traverses v's block chain, invoking visit per edge.
func (s *Stinger) neighbors(v uint32, visit func(u uint32)) {
	for b := s.heads[v]; b != nil; b = b.next {
		for i := 0; i < b.count; i++ {
			visit(b.edges[i])
		}
	}
}

// InsertBatch ingests a batch of undirected edge insertions: adjacency
// updates in parallel under per-vertex locks, then the streaming CC repair
// pass, which relabels the smaller component of every merging edge by
// traversing the dynamic structure (McColl et al.'s insertion path).
func (s *Stinger) InsertBatch(edges []graph.Edge) {
	parallel.ForGrained(len(edges), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			s.insertHalf(e.U, e.V)
			s.insertHalf(e.V, e.U)
		}
	})
	// Sequential merge repair: STINGER's component tracking serializes
	// structural merges.
	var stack []uint32
	for _, e := range edges {
		lu, lv := s.labels[e.U], s.labels[e.V]
		if lu == lv {
			continue
		}
		// Relabel the smaller component to the larger's label by BFS over
		// the dynamic adjacency structure.
		small, large := lu, lv
		if s.sizes[small] > s.sizes[large] {
			small, large = large, small
		}
		start := e.U
		if s.labels[e.V] == small {
			start = e.V
		}
		stack = append(stack[:0], start)
		s.labels[start] = large
		s.sizes[large]++
		s.sizes[small]--
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.neighbors(x, func(u uint32) {
				if s.labels[u] == small {
					s.labels[u] = large
					s.sizes[large]++
					s.sizes[small]--
					stack = append(stack, u)
				}
			})
		}
	}
}

// Connected reports whether u and v are currently in the same component.
func (s *Stinger) Connected(u, v uint32) bool { return s.labels[u] == s.labels[v] }

// Labels returns the current component labeling.
func (s *Stinger) Labels() []uint32 { return s.labels }

// NumComponents counts the current components.
func (s *Stinger) NumComponents() int {
	seen := make(map[uint32]struct{})
	for _, l := range s.labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Coarse wraps a Stinger behind one mutex, modeling a coarse-locked
// streaming service: concurrent producers and queriers fully serialize.
// It is the baseline the concurrent ingest engine's mixed-workload
// experiments and benchmarks compare against.
type Coarse struct {
	mu  sync.Mutex
	s   *Stinger
	buf [1]graph.Edge // reused single-edge batch, amortized inside the lock
}

// NewCoarse initializes a coarse-locked STINGER over n vertices.
func NewCoarse(n int) *Coarse { return &Coarse{s: New(n)} }

// Update inserts one edge under the global lock.
func (c *Coarse) Update(u, v uint32) {
	c.mu.Lock()
	c.buf[0] = graph.Edge{U: u, V: v}
	c.s.InsertBatch(c.buf[:])
	c.mu.Unlock()
}

// Connected answers a connectivity query under the global lock.
func (c *Coarse) Connected(u, v uint32) bool {
	c.mu.Lock()
	same := c.s.Connected(u, v)
	c.mu.Unlock()
	return same
}
