package stinger

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

func TestStreamingComponentsMatchOracle(t *testing.T) {
	g := graph.RMAT(9, 2000, 0.57, 0.19, 0.19, 21)
	edges := g.Edges()
	s := New(g.NumVertices())
	const batch = 100
	for i := 0; i < len(edges); i += batch {
		hi := i + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		s.InsertBatch(edges[i:hi])
	}
	testutil.CheckPartition(t, "rmat", s.Labels(), testutil.Components(g))
}

func TestConnectedQueries(t *testing.T) {
	s := New(5)
	if s.Connected(0, 1) {
		t.Fatal("no edges yet")
	}
	s.InsertBatch([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if !s.Connected(0, 1) || s.Connected(0, 2) {
		t.Fatal("connectivity after first batch wrong")
	}
	s.InsertBatch([]graph.Edge{{U: 1, V: 2}})
	if !s.Connected(0, 3) {
		t.Fatal("merge across batches failed")
	}
	if s.NumComponents() != 2 { // {0,1,2,3} and {4}
		t.Fatalf("components = %d, want 2", s.NumComponents())
	}
}

func TestDuplicateAndSelfEdges(t *testing.T) {
	s := New(3)
	s.InsertBatch([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 2}})
	count := 0
	s.neighbors(0, func(u uint32) { count++ })
	if count != 1 {
		t.Fatalf("vertex 0 has %d adjacency entries, want 1 (deduplicated)", count)
	}
	if s.Connected(0, 2) {
		t.Fatal("self loop must not connect")
	}
}

func TestBlockChainGrowth(t *testing.T) {
	// A vertex with more neighbors than one block holds must chain blocks.
	const n = 50
	s := New(n)
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(v)})
	}
	s.InsertBatch(edges)
	count := 0
	s.neighbors(0, func(u uint32) { count++ })
	if count != n-1 {
		t.Fatalf("vertex 0 has %d neighbors, want %d", count, n-1)
	}
	if s.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", s.NumComponents())
	}
}

func TestMergeRelabelsSmallerComponent(t *testing.T) {
	s := New(10)
	// Component A: {0..4}; component B: {5,6}.
	s.InsertBatch([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	s.InsertBatch([]graph.Edge{{U: 5, V: 6}})
	labelA := s.Labels()[0]
	s.InsertBatch([]graph.Edge{{U: 4, V: 5}})
	// The smaller component (B) must have been relabeled to A's label.
	if s.Labels()[5] != labelA || s.Labels()[6] != labelA {
		t.Fatalf("labels after merge: %v", s.Labels()[:7])
	}
}
