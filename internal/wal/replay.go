package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"connectit/internal/fault"
	"connectit/internal/graph"
	"connectit/internal/wire"
)

// errTornHeader reports a final segment whose 16-byte header is short or
// unrecognizable — the signature of a crash between rotate's file creation
// and its header write. Open repairs it by discarding the file; no record
// in a headerless segment was ever acknowledged.
var errTornHeader = errors.New("wal: torn segment header")

// Replay invokes fn, in LSN order, for every record with lsn >= from. The
// edges slice is scratch reused across calls; fn must not retain it. Replay
// re-reads the segment files Open validated, decoding each segment in its
// own format (v1 raw pairs, v2 wire blocks), so mixed pre-/post-upgrade
// chains replay transparently. It is normally called once, at boot, with
// from = the snapshot's covering LSN. Union idempotence makes over-replay
// harmless, so a caller unsure of its floor may replay low.
func (l *Log) Replay(from uint64, fn func(lsn uint64, edges []graph.Edge) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	var edges []graph.Edge
	for i, s := range segs {
		if s.first+s.count <= from {
			continue
		}
		last := i == len(segs)-1
		_, _, _, _, err := scanSegment(l.fs, s.path, last, func(lsn uint64, version uint32, payload []byte) error {
			if lsn < from {
				return nil
			}
			var err error
			if edges, err = decodePayload(version, payload, edges); err != nil {
				return err
			}
			return fn(lsn, edges)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// decodePayload parses one record payload in the segment version's format
// into buf (reused across records).
func decodePayload(version uint32, payload []byte, buf []graph.Edge) ([]graph.Edge, error) {
	if version == segVersionRaw {
		return decodeRawEdges(payload, buf[:0]), nil
	}
	edges, n, err := wire.DecodeBlock(payload, buf)
	if err == nil && n != len(payload) {
		err = fmt.Errorf("%w: %d trailing payload bytes", wire.ErrMalformed, len(payload)-n)
	}
	if err != nil {
		return buf, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return edges, nil
}

// decodeRawEdges parses a v1 record payload (validated to be a multiple of
// 8 bytes) into buf.
func decodeRawEdges(payload []byte, buf []graph.Edge) []graph.Edge {
	for len(payload) >= 8 {
		buf = append(buf, graph.Edge{
			U: binary.LittleEndian.Uint32(payload[0:4]),
			V: binary.LittleEndian.Uint32(payload[4:8]),
		})
		payload = payload[8:]
	}
	return buf
}

// scanSegment reads one segment file, validating the header and every
// record, and calls fn (when non-nil) per valid record. It returns the
// segment's first LSN, the number of valid records, the byte offset where
// the valid prefix ends, and the header's format version.
//
// repairTail selects the torn-write contract for the segment: when true
// (final segment) the first invalid record simply ends the scan — a crash
// mid-append legitimately leaves one partial record — and the caller
// truncates the file there; a short or unrecognizable header likewise
// returns errTornHeader (a crash mid-rotation leaves exactly that) for the
// caller to repair. When false (any earlier segment) an invalid record or
// header is unexplainable damage and returns ErrCorrupt. One exception cuts
// across both modes: a record whose CRC verifies but whose v2 payload is
// not a parseable wire block is ErrCorrupt even in the final segment — a
// torn write cannot checksum garbage correctly, so that damage has no
// crash explanation.
func scanSegment(fsys fault.FS, path string, repairTail bool, fn func(lsn uint64, version uint32, payload []byte) error) (first, count uint64, validEnd int64, version uint32, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < segHeader || string(data[0:4]) != segMagic {
		if repairTail {
			return 0, 0, 0, 0, errTornHeader
		}
		return 0, 0, 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
	}
	version = binary.LittleEndian.Uint32(data[4:8])
	if version != segVersionRaw && version != segVersion {
		return 0, 0, 0, 0, fmt.Errorf("%w: %s: unsupported segment version %d", ErrCorrupt, path, version)
	}
	first = binary.LittleEndian.Uint64(data[8:16])
	off := int64(segHeader)
	lsn := first
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return first, count, off, version, nil
		}
		ok := false
		var payload []byte
		if len(rest) >= recHeader {
			n := binary.LittleEndian.Uint32(rest[0:4])
			lenOK := n > 0 && n <= maxRecordBytes && int(n) <= len(rest)-recHeader
			if lenOK && version == segVersionRaw {
				lenOK = n%8 == 0
			}
			if lenOK {
				payload = rest[recHeader : recHeader+int(n)]
				ok = binary.LittleEndian.Uint32(rest[4:8]) == crc32.Checksum(payload, castagnoli)
			}
		}
		if !ok {
			if repairTail {
				return first, count, off, version, nil
			}
			return 0, 0, 0, 0, fmt.Errorf("%w: %s: invalid record at offset %d (LSN %d) in a non-final segment", ErrCorrupt, path, off, lsn)
		}
		if version == segVersion {
			// Structural validation behind the CRC: a checksum-valid block
			// that does not parse is damage no torn write explains.
			if _, n, err := wire.CountBlock(payload); err != nil || n != len(payload) {
				if err == nil {
					err = fmt.Errorf("%w: %d trailing payload bytes", wire.ErrMalformed, len(payload)-n)
				}
				return 0, 0, 0, 0, fmt.Errorf("%w: %s: record at offset %d (LSN %d): %v", ErrCorrupt, path, off, lsn, err)
			}
		}
		if fn != nil {
			if err := fn(lsn, version, payload); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		off += int64(recHeader + len(payload))
		lsn++
		count++
	}
}
