// Package wal implements the write-ahead edge log behind the serving
// layer's durability contract (DESIGN.md §11): every update batch the
// server acknowledges is appended — length-prefixed and CRC-checked — to a
// segmented log before it enters the ingest pipeline, so a crash loses
// nothing that was acknowledged. Compaction is snapshot-based: the server
// periodically persists its connectivity state as a .cbin star forest
// (reusing the graph package's versioned on-disk format) tagged with the
// log sequence number it covers, after which every fully-covered segment is
// deleted. Boot is LatestSnapshot + Replay of the tail.
//
// Record format, within a segment file:
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// where the payload depends on the segment version. Version 1 segments
// (pre-upgrade logs) hold a batch of edges, 8 bytes each (two little-endian
// uint32 endpoints). Version 2 segments — what this code writes — hold one
// wire edge block (internal/wire): a tag byte, the uncompressed edge count
// as a varint, and the zigzag-delta varint coded edges (or the raw fallback
// when a batch has no locality to exploit), typically well under 8
// bytes/edge on sorted or locality-heavy batches. The CRC always covers the
// stored (compressed) payload bytes. Readers replay both versions
// interchangeably, including mixed v1→v2 chains; writers never append
// records into a v1 segment — the first post-upgrade Append rotates to a
// fresh v2 segment, keeping every segment's format uniform. Segments open
// with a 16-byte header (magic, version, and the LSN of the segment's first
// record) and rotate at SegmentBytes. LSNs number records (not bytes)
// contiguously across segments.
//
// Torn-write handling follows the usual WAL contract: an invalid record in
// the *final* segment marks the end of the log — the tail beyond it is
// discarded and physically truncated at Open, since a crash mid-append can
// leave exactly one partial record — and a final segment with a short or
// unrecognizable header (a crash mid-rotation, before any record in it was
// acknowledged) is discarded whole. An invalid record or header anywhere
// else (or a gap in the LSN chain between segments) cannot be explained by
// a torn write and surfaces as ErrCorrupt. A record whose CRC verifies but
// whose v2 payload does not parse as a wire block is ErrCorrupt in every
// position: a torn write cannot produce a valid checksum over garbage, so
// that state is writer damage, not a crash artifact. In the other direction, a failed
// append wedges the log fail-stop: appending past a partial write would put
// later acknowledged records beyond garbage that the next Open truncates.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"connectit/internal/fault"
	"connectit/internal/graph"
	"connectit/internal/wire"
)

// ErrCorrupt reports a log whose damage cannot be explained by a torn tail
// write: a bad CRC or truncated record in a non-final segment, a malformed
// segment header, or a gap in the LSN chain.
var ErrCorrupt = errors.New("wal: corrupt log")

const (
	segMagic = "CWAL"
	// segVersionRaw segments hold raw 8-byte-per-edge payloads (the
	// pre-upgrade format, still replayable); segVersion segments hold wire
	// edge blocks and are what rotate creates.
	segVersionRaw = 1
	segVersion    = 2
	segHeader     = 16 // magic[4] version[4] firstLSN[8]
	recHeader     = 8  // payload length[4] crc[4]

	// maxRecordBytes bounds one record's payload (16M edges): a corrupted
	// length field must never drive a multi-GiB allocation.
	maxRecordBytes = 1 << 27

	defaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold. Default 64 MiB.
	SegmentBytes int
	// NoSync skips the fsync after each append. Acknowledged batches then
	// survive process crashes but not host crashes; tests and bulk loads
	// use it.
	NoSync bool
	// FS is the filesystem seam every file operation routes through. Nil
	// selects the real filesystem (fault.OS); tests and chaos runs install
	// a fault-injecting wrapper (fault.NewFS) to fail exact operations.
	FS fault.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
	return o
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	// LSN is the next record's log sequence number (= records ever
	// appended, including compacted ones).
	LSN uint64
	// SnapshotLSN is the LSN the latest committed snapshot covers (records
	// below it are reconstructible from the snapshot alone); zero when no
	// snapshot exists.
	SnapshotLSN uint64
	// Appends counts appended records; AppendedEdges the edges in them.
	Appends, AppendedEdges uint64
	// Bytes counts bytes written (headers included); Syncs counts fsyncs.
	Bytes, Syncs uint64
	// RawBytes counts the payload bytes appended records would have cost in
	// the raw 8-bytes-per-edge format; WrittenBytes counts the payload
	// bytes actually stored after wire-block compression. RawBytes over
	// WrittenBytes is the observable WAL compression ratio.
	RawBytes, WrittenBytes uint64
	// Segments is the number of live segment files.
	Segments int
	// Snapshots counts snapshots committed by this process.
	Snapshots uint64
	// Wedges counts append failures that wedged the log; Recoveries counts
	// successful TryRecover calls that un-wedged it.
	Wedges, Recoveries uint64
}

// segment is one on-disk log file: records [first, first+count), payloads
// in the format its header version selects.
type segment struct {
	first   uint64
	count   uint64
	version uint32
	path    string
}

// Log is a segmented write-ahead edge log. Append/Sync/Close serialize on
// an internal mutex; one Log owns its directory.
type Log struct {
	dir string
	opt Options
	fs  fault.FS

	mu       sync.Mutex
	f        fault.File // current append segment; nil until first Append
	segOff   int64      // valid bytes in the current segment
	lsn      uint64     // next record LSN
	segs     []segment
	snapLSN  uint64
	snapPath string
	hasSnap  bool
	buf      []byte // append scratch
	stats    Stats
	closed   bool
	wedged   error // set by a failed append; fails every later Append
}

// Open scans dir (creating it if needed), validates every live segment,
// repairs a torn tail in the final segment by truncating it, and positions
// the log to append after the last valid record. Damage a torn write cannot
// explain returns ErrCorrupt.
func Open(dir string, opt Options) (*Log, error) {
	l := &Log{dir: dir, opt: opt.withDefaults()}
	l.fs = l.opt.FS
	if err := l.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A snapshot that crashed before its rename; never referenced.
			l.fs.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".wal"):
			var first uint64
			if _, err := fmt.Sscanf(name, "%016x.wal", &first); err != nil {
				return nil, fmt.Errorf("%w: unparseable segment name %q", ErrCorrupt, name)
			}
			l.segs = append(l.segs, segment{first: first, path: filepath.Join(dir, name)})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".cbin"):
			var at uint64
			if _, err := fmt.Sscanf(name, "snap-%016x.cbin", &at); err != nil {
				return nil, fmt.Errorf("%w: unparseable snapshot name %q", ErrCorrupt, name)
			}
			if !l.hasSnap || at > l.snapLSN {
				l.hasSnap, l.snapLSN, l.snapPath = true, at, filepath.Join(dir, name)
			}
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	// Validate the chain. Only the last segment may end in a torn record —
	// or lack its header entirely (a crash between rotate's file creation
	// and the 16-byte header write).
	for i := range l.segs {
		s := &l.segs[i]
		last := i == len(l.segs)-1
		first, count, validEnd, version, err := scanSegment(l.fs, s.path, last, nil)
		if last && errors.Is(err, errTornHeader) {
			// Torn rotation: nothing in a headerless segment was ever
			// acknowledged. Discard it; the previous segment (validated
			// above, so valid end to end) carries the tail.
			if rerr := l.fs.Remove(s.path); rerr != nil {
				return nil, fmt.Errorf("wal: removing torn segment %s: %w", s.path, rerr)
			}
			l.segs = l.segs[:i]
			if i > 0 {
				st, serr := l.fs.Stat(l.segs[i-1].path)
				if serr != nil {
					return nil, fmt.Errorf("wal: %w", serr)
				}
				l.segOff = st.Size()
			}
			break
		}
		if err != nil {
			return nil, err
		}
		if first != s.first {
			return nil, fmt.Errorf("%w: segment %s header LSN %d does not match its name", ErrCorrupt, s.path, first)
		}
		if i > 0 && l.segs[i-1].first+l.segs[i-1].count != s.first {
			return nil, fmt.Errorf("%w: LSN gap between %s and %s", ErrCorrupt, l.segs[i-1].path, s.path)
		}
		s.count = count
		s.version = version
		if last {
			if st, err := l.fs.Stat(s.path); err == nil && st.Size() > validEnd {
				if err := l.fs.Truncate(s.path, validEnd); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", s.path, err)
				}
			}
			l.segOff = validEnd
		}
	}
	if n := len(l.segs); n > 0 {
		l.lsn = l.segs[n-1].first + l.segs[n-1].count
		// Coverage: everything from the snapshot LSN forward must be
		// replayable. (Without a snapshot the chain must start at 0.)
		floor := uint64(0)
		if l.hasSnap {
			floor = l.snapLSN
		}
		if l.segs[0].first > floor {
			return nil, fmt.Errorf("%w: records [%d, %d) missing below first segment", ErrCorrupt, floor, l.segs[0].first)
		}
		// Reopen the last segment for appends unless it is already full or
		// in the pre-upgrade format — appending into a v1 segment would mix
		// record formats within one file, so the first post-upgrade Append
		// rotates to a fresh v2 segment instead.
		if l.segOff < int64(l.opt.SegmentBytes) && l.segs[n-1].version == segVersion {
			f, err := l.fs.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f = f
		}
	} else if l.hasSnap {
		// Snapshot present, tail fully compacted: appends resume at the
		// snapshot's LSN.
		l.lsn = l.snapLSN
	}
	return l, nil
}

// LSN returns the next record's log sequence number.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.LSN = l.lsn
	st.SnapshotLSN = l.snapLSN
	st.Segments = len(l.segs)
	return st
}

// Append durably appends one record holding edges and returns its LSN. The
// record is fsynced before Append returns unless Options.NoSync is set.
// Empty batches append nothing and return the current LSN.
func (l *Log) Append(edges []graph.Edge) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log closed")
	}
	if l.wedged != nil {
		return 0, l.wedged
	}
	if len(edges) == 0 {
		return l.lsn, nil
	}
	if 8*len(edges)+recHeader > maxRecordBytes {
		return 0, fmt.Errorf("wal: batch of %d edges exceeds the %d-byte record bound", len(edges), maxRecordBytes)
	}
	// Encode the record into the retained scratch: the 8-byte header is
	// reserved up front, the wire block appends in place behind it, and the
	// length and CRC (over the compressed payload) are backfilled — one
	// buffer, no per-append allocation once it has grown to the workload.
	b := l.buf[:0]
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = wire.AppendBlock(b, edges)
	payload := b[recHeader:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	l.buf = b
	if l.f == nil || (l.segOff+int64(len(b)) > int64(l.opt.SegmentBytes) && l.segOff > segHeader) {
		// A failed rotation wedges just like a failed write: the disk is
		// refusing the operations the durability contract depends on, and
		// retrying blind on the next Append would only mask it from the
		// degraded-mode machinery watching Wedged().
		if err := l.rotate(); err != nil {
			return 0, l.wedge(err)
		}
	}
	if _, err := l.f.Write(b); err != nil {
		return 0, l.wedge(err)
	}
	if !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			return 0, l.wedge(err)
		}
		l.stats.Syncs++
	}
	l.segOff += int64(len(b))
	lsn := l.lsn
	l.lsn++
	l.segs[len(l.segs)-1].count++
	l.stats.Appends++
	l.stats.AppendedEdges += uint64(len(edges))
	l.stats.Bytes += uint64(len(b))
	l.stats.RawBytes += uint64(8 * len(edges))
	l.stats.WrittenBytes += uint64(len(b) - recHeader)
	return lsn, nil
}

// wedge fails the log permanently after a write or sync error. A partial
// write leaves garbage at segOff; appending past it would put later
// acknowledged records beyond an invalid record, exactly where the next
// Open's torn-tail repair truncates — silent loss of acked data. Refusing
// every subsequent Append (fail-stop) keeps the invariant that everything
// acknowledged sits in the valid prefix; the partial bytes are trimmed
// best-effort so a clean process exit leaves no torn tail at all. Called
// with l.mu held; returns the wedged error for the failing Append.
func (l *Log) wedge(cause error) error {
	l.wedged = fmt.Errorf("wal: log wedged by append failure: %w", cause)
	l.stats.Wedges++
	if l.f != nil {
		l.f.Truncate(l.segOff)
	}
	return l.wedged
}

// Wedged reports the append failure that wedged the log, or nil when the
// log is healthy. The serving layer polls it to drive degraded mode.
func (l *Log) Wedged() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged
}

// TryRecover attempts to clear a wedged log so appends can resume: the
// wedged segment is trimmed to its valid prefix and the log rotates to a
// fresh segment, proving the filesystem accepts writes again. On success
// the wedge clears and the next Append continues the LSN sequence —
// nothing acknowledged was lost, because a wedged log never acknowledged
// anything past the valid prefix. On failure the log stays wedged and
// TryRecover can be called again. A healthy log returns nil immediately.
func (l *Log) TryRecover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.wedged == nil {
		return nil
	}
	// Re-trim by path before anything else: wedge's own trim ran on the
	// descriptor that had just failed, so it cannot be trusted to have
	// stuck. If partial bytes survived here, rotating would strand them in
	// a soon-to-be non-final segment, which the next Open would have to
	// call corruption rather than a repairable torn tail.
	if l.f != nil {
		path := l.segs[len(l.segs)-1].path
		if err := l.fs.Truncate(path, l.segOff); err != nil {
			return fmt.Errorf("wal: recovery truncate: %w", err)
		}
		if err := syncFile(l.fs, path); err != nil {
			return fmt.Errorf("wal: recovery: %w", err)
		}
		l.f.Close() // the fd that failed; its error no longer matters
		l.f = nil
	}
	if err := l.rotate(); err != nil {
		return err
	}
	l.wedged = nil
	l.stats.Recoveries++
	return nil
}

// rotate seals the current segment (if any) and opens a fresh one whose
// first record will be the current LSN. Called with l.mu held.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%016x.wal", l.lsn))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, segHeader)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, l.lsn)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if !l.opt.NoSync {
		// Persist the directory entry before any record in this segment is
		// acknowledged: a record's own fsync makes its bytes durable, but on
		// power loss the file itself can vanish if the directory was never
		// synced, losing the whole acked segment.
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f = f
	l.segOff = segHeader
	l.stats.Bytes += segHeader
	// Reuse a same-named segment slot if the previous boot left an empty
	// tail segment at this LSN (O_TRUNC above already emptied the file; the
	// fresh header upgrades a reused pre-upgrade slot to v2).
	if n := len(l.segs); n > 0 && l.segs[n-1].first == l.lsn && l.segs[n-1].count == 0 {
		l.segs[n-1].path = path
		l.segs[n-1].version = segVersion
		return nil
	}
	l.segs = append(l.segs, segment{first: l.lsn, version: segVersion, path: path})
	return nil
}

// Sync forces the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.stats.Syncs++
	return l.f.Sync()
}

// Close seals the log: the current segment is synced and closed. Close is
// idempotent; Append after Close fails.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// LatestSnapshot returns the newest committed snapshot's covering LSN and
// path, if one exists.
func (l *Log) LatestSnapshot() (lsn uint64, path string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN, l.snapPath, l.hasSnap
}

// CommitSnapshot atomically installs a snapshot covering every record below
// lsn and compacts the log: write is handed a temporary path to fill (the
// server saves a .cbin star forest there), the file is fsynced and renamed
// into place, and then every snapshot and fully-covered segment it
// supersedes is deleted. A crash at any point leaves either the old or the
// new snapshot installed, never neither.
func (l *Log) CommitSnapshot(lsn uint64, write func(path string) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed")
	}
	if lsn > l.lsn {
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot LSN %d beyond log end %d", lsn, l.lsn)
	}
	dir := l.dir
	l.mu.Unlock()

	// Write and persist the snapshot outside the lock: appends continue
	// while the O(n) state dump runs.
	final := filepath.Join(dir, fmt.Sprintf("snap-%016x.cbin", lsn))
	tmp := final + ".tmp"
	if err := write(tmp); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if err := syncFile(l.fs, tmp); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	oldSnap := ""
	if l.hasSnap && l.snapPath != final {
		oldSnap = l.snapPath
	}
	l.hasSnap, l.snapLSN, l.snapPath = true, lsn, final
	l.stats.Snapshots++
	if oldSnap != "" {
		l.fs.Remove(oldSnap)
	}
	// Drop segments every record of which the snapshot covers, keeping the
	// open append segment alive regardless.
	live := l.segs[:0]
	for i, s := range l.segs {
		isCurrent := l.f != nil && i == len(l.segs)-1
		if !isCurrent && s.first+s.count <= lsn {
			l.fs.Remove(s.path)
			continue
		}
		live = append(live, s)
	}
	l.segs = live
	return nil
}

func syncFile(fsys fault.FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Some platforms cannot fsync directories; rename durability is best
	// effort there.
	d.Sync()
	return d.Close()
}
