package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"connectit/internal/graph"
	"connectit/internal/wire"
)

// recEdges generates the deterministic payload for record i, so replay
// results can be checked without keeping an oracle on the side.
func recEdges(i int) []graph.Edge {
	k := 1 + i%5
	edges := make([]graph.Edge, k)
	for j := range edges {
		edges[j] = graph.Edge{U: uint32(i*16 + j), V: uint32(i*16 + j + 1)}
	}
	return edges
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		lsn, err := l.Append(recEdges(i))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append(%d) returned LSN %d", i, lsn)
		}
	}
}

// collect replays everything from `from` and checks LSN contiguity.
func collect(t *testing.T, l *Log, from uint64) map[uint64][]graph.Edge {
	t.Helper()
	got := map[uint64][]graph.Edge{}
	next := from
	err := l.Replay(from, func(lsn uint64, edges []graph.Edge) error {
		if lsn < next {
			t.Fatalf("Replay out of order: got LSN %d after %d", lsn, next)
		}
		next = lsn + 1
		got[lsn] = append([]graph.Edge(nil), edges...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func checkRecords(t *testing.T, got map[uint64][]graph.Edge, from, to int) {
	t.Helper()
	if len(got) != to-from {
		t.Fatalf("replayed %d records, want %d", len(got), to-from)
	}
	for i := from; i < to; i++ {
		want := recEdges(i)
		have := got[uint64(i)]
		if len(have) != len(want) {
			t.Fatalf("record %d: %d edges, want %d", i, len(have), len(want))
		}
		for j := range want {
			if have[j] != want[j] {
				t.Fatalf("record %d edge %d: got %v want %v", i, j, have[j], want[j])
			}
		}
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.LSN(); got != 40 {
		t.Fatalf("LSN after reopen = %d, want 40", got)
	}
	checkRecords(t, collect(t, l2, 0), 0, 40)

	// The reopened log must keep appending on the same chain.
	appendN(t, l2, 40, 5)
	checkRecords(t, collect(t, l2, 0), 0, 45)
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	l.Close()

	// Chop bytes off the final (only) segment, mid-record: a torn write.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	st, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer l2.Close()
	// Record 9 was torn; 0..8 survive and the next append takes LSN 9.
	if got := l2.LSN(); got != 9 {
		t.Fatalf("LSN after torn tail = %d, want 9", got)
	}
	checkRecords(t, collect(t, l2, 0), 0, 9)
	appendN(t, l2, 9, 3)
	checkRecords(t, collect(t, l2, 0), 0, 12)
}

func TestCorruptCRCMidSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40) // several segments at 256B rotation
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// Flip a payload byte in a non-final segment (glob returns the sorted,
	// zero-padded-hex names, so segs[0] is the oldest).
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[segHeader+recHeader] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{SegmentBytes: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotWithEmptyTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	// Snapshot covering everything: all sealed segments become garbage.
	if err := l.CommitSnapshot(20, func(path string) error {
		return os.WriteFile(path, []byte("snapshot-payload"), 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("reopen with snapshot + empty tail: %v", err)
	}
	defer l2.Close()
	lsn, path, ok := l2.LatestSnapshot()
	if !ok || lsn != 20 {
		t.Fatalf("LatestSnapshot = (%d, %q, %v), want LSN 20", lsn, path, ok)
	}
	if got := l2.LSN(); got != 20 {
		t.Fatalf("LSN after compacted reopen = %d, want 20", got)
	}
	// Replay from the snapshot floor finds nothing; appends resume at 20.
	if got := collect(t, l2, lsn); len(got) != 0 {
		t.Fatalf("replay from snapshot found %d records, want 0", len(got))
	}
	appendN(t, l2, 20, 4)
	checkRecords(t, collect(t, l2, lsn), 20, 24)
}

func TestCompactionPrunesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 30)
	before := l.Stats().Segments
	if before < 3 {
		t.Fatalf("expected several segments before compaction, got %d", before)
	}
	if err := l.CommitSnapshot(25, func(path string) error {
		return os.WriteFile(path, []byte("s"), 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	after := l.Stats().Segments
	if after >= before {
		t.Fatalf("compaction kept %d segments (was %d)", after, before)
	}
	// Records >= the covered LSN must still replay.
	checkRecords(t, collect(t, l, 25), 25, 30)

	// A second snapshot replaces the first.
	if err := l.CommitSnapshot(30, func(path string) error {
		return os.WriteFile(path, []byte("s2"), 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.cbin"))
	if len(snaps) != 1 {
		t.Fatalf("expected exactly 1 installed snapshot, got %v", snaps)
	}
}

// TestRandomCrashPoints byte-truncates the final segment at random offsets
// — every possible torn-write crash — and checks the prefix property: the
// recovered log replays exactly the records whose bytes fully survived, in
// order, with no gaps and nothing fabricated.
func TestRandomCrashPoints(t *testing.T) {
	const records = 12
	build := func(dir string) {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, records)
		l.Close()
	}
	master := t.TempDir()
	build(master)
	segs, _ := filepath.Glob(filepath.Join(master, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// Cuts inside the 16-byte header model a crash mid-rotation: Open
		// discards the headerless file and recovers an empty log.
		cut := rng.Intn(len(data) + 1)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got := collect(t, l, 0)
		// The survivor count is determined by the cut: records are laid out
		// sequentially, so count full records fitting in data[:cut]. Record
		// size is the header plus the wire block's encoded length — cuts
		// landing inside a varint run are just interior truncations, caught
		// by the length/CRC checks like any other torn byte.
		want := 0
		off := segHeader
		for i := 0; i < records; i++ {
			off += recHeader + len(wire.AppendBlock(nil, recEdges(i)))
			if off <= cut {
				want = i + 1
			} else {
				break
			}
		}
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), want)
		}
		checkRecords(t, got, 0, want)
		// Recovery must leave the log appendable at the right LSN.
		appendN(t, l, want, 1)
		l.Close()
	}
}

// TestTornRotationHeaderRepairedOnOpen models a crash between rotate's
// file creation and its 16-byte header write: the final segment is empty or
// holds a short header. Open must discard it and recover the chain — no
// record in it was ever acknowledged — instead of refusing with ErrCorrupt.
func TestTornRotationHeaderRepairedOnOpen(t *testing.T) {
	for _, hdrBytes := range []int{0, 7, segHeader - 1} {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 256}) // force rotations
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 20)
		l.Close()

		segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		if len(segs) < 2 {
			t.Fatalf("expected several segments, got %d", len(segs))
		}
		// Truncating the final segment below its header reproduces the
		// torn-rotation on-disk state: earlier segments valid end to end, a
		// tail file whose header never made it down. Survivors are exactly
		// the records the earlier segments hold.
		if err := os.Truncate(segs[len(segs)-1], int64(hdrBytes)); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir, Options{SegmentBytes: 256})
		if err != nil {
			t.Fatalf("hdrBytes=%d: Open after torn rotation: %v", hdrBytes, err)
		}
		got := collect(t, l2, 0)
		surviving := len(got)
		if surviving == 0 || surviving >= 20 {
			t.Fatalf("hdrBytes=%d: %d survivors, want a proper non-empty prefix", hdrBytes, surviving)
		}
		checkRecords(t, got, 0, surviving)
		if lsn := l2.LSN(); lsn != uint64(surviving) {
			t.Fatalf("hdrBytes=%d: LSN %d after repair, want %d", hdrBytes, lsn, surviving)
		}
		// The repaired log must accept appends on the same chain.
		appendN(t, l2, surviving, 3)
		checkRecords(t, collect(t, l2, 0), 0, surviving+3)
		l2.Close()
	}
}

// TestTornRotationOnlySegment covers the first-ever rotate crashing before
// the header write: the lone .wal file is headerless and the log must come
// back empty, not corrupt.
func TestTornRotationOnlySegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "0000000000000000.wal"), []byte("CW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with lone headerless segment: %v", err)
	}
	defer l.Close()
	if lsn := l.LSN(); lsn != 0 {
		t.Fatalf("LSN = %d, want 0", lsn)
	}
	appendN(t, l, 0, 3)
	checkRecords(t, collect(t, l, 0), 0, 3)
}

// TestHeaderlessNonFinalSegmentStaysCorrupt pins the contract boundary: the
// torn-rotation repair applies to the final segment only — a headerless
// segment in the middle of the chain cannot be explained by a crash and
// must still refuse to boot.
func TestHeaderlessNonFinalSegmentStaysCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	if err := os.Truncate(segs[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with headerless non-final segment: err = %v, want ErrCorrupt", err)
	}
}

// TestAppendFailureWedgesLog forces a write error (closed fd) and checks
// the fail-stop contract: the failing Append errors, and every subsequent
// Append refuses rather than appending past the possible partial garbage.
func TestAppendFailureWedgesLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)

	// Sabotage the segment fd so the next write fails like EIO would.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()

	if _, err := l.Append(recEdges(5)); err == nil {
		t.Fatal("Append on a dead fd succeeded")
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(recEdges(5)); err == nil {
			t.Fatal("Append accepted after a failed append (log not wedged)")
		}
	}
	l.Close()

	// Recovery sees exactly the acknowledged prefix.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after wedge: %v", err)
	}
	defer l2.Close()
	if lsn := l2.LSN(); lsn != 5 {
		t.Fatalf("LSN after wedge+reopen = %d, want 5", lsn)
	}
	checkRecords(t, collect(t, l2, 0), 0, 5)
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(recEdges(0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// appendRecord writes one raw record (header + payload + CRC) to the end
// of a segment file, bypassing the Log — the corruption matrix uses it to
// craft states no writer produces.
func appendRecord(t *testing.T, path string, payload []byte) {
	t.Helper()
	rec := make([]byte, 0, recHeader+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// copyDir clones the committed fixture so tests never mutate testdata.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestV1FixtureReplaysUnderNewReader is the upgrade acceptance check: a log
// written byte-for-byte by the pre-upgrade (v1, raw 8-byte-per-edge) code —
// committed under testdata, 25 records across 4 segments — must open and
// replay identically under the v2 reader, and keep accepting appends, which
// land in fresh v2 segments (mixed-version chain).
func TestV1FixtureReplaysUnderNewReader(t *testing.T) {
	const fixtureRecords = 25
	dir := t.TempDir()
	copyDir(t, filepath.Join("testdata", "v1log"), dir)

	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open v1 fixture: %v", err)
	}
	if got := l.LSN(); got != fixtureRecords {
		t.Fatalf("LSN = %d, want %d", got, fixtureRecords)
	}
	checkRecords(t, collect(t, l, 0), 0, fixtureRecords)

	// Appends must not extend a v1 segment: the first one rotates to v2.
	segsBefore := l.Stats().Segments
	appendN(t, l, fixtureRecords, 5)
	checkRecords(t, collect(t, l, 0), 0, fixtureRecords+5)
	if got := l.Stats().Segments; got <= segsBefore {
		t.Fatalf("append reused a v1 segment: %d segments, had %d", got, segsBefore)
	}
	for _, s := range l.segs[:segsBefore] {
		if s.version != segVersionRaw {
			t.Fatalf("fixture segment %s scanned as version %d", s.path, s.version)
		}
	}
	if v := l.segs[len(l.segs)-1].version; v != segVersion {
		t.Fatalf("new tail segment has version %d, want %d", v, segVersion)
	}
	l.Close()

	// The mixed v1→v2 chain must survive a reopen end to end.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen mixed-version chain: %v", err)
	}
	defer l2.Close()
	checkRecords(t, collect(t, l2, 0), 0, fixtureRecords+5)
	appendN(t, l2, fixtureRecords+5, 3)
	checkRecords(t, collect(t, l2, 0), 0, fixtureRecords+8)
}

// TestCompressionRatioObservable pins the tentpole's WAL claim: sorted and
// locality-heavy batches must cost measurably fewer than 8 payload bytes
// per edge, with the ratio visible in Stats.
func TestCompressionRatioObservable(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	edges := make([]graph.Edge, 4096)
	for i := range edges {
		u := uint32(i * 3)
		edges[i] = graph.Edge{U: u, V: u + 1 + uint32(i%16)}
	}
	if _, err := l.Append(edges); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.RawBytes != uint64(8*len(edges)) {
		t.Fatalf("RawBytes = %d, want %d", st.RawBytes, 8*len(edges))
	}
	if st.WrittenBytes >= st.RawBytes {
		t.Fatalf("no compression: wrote %d payload bytes for %d raw", st.WrittenBytes, st.RawBytes)
	}
	if perEdge := float64(st.WrittenBytes) / float64(len(edges)); perEdge >= 4 {
		t.Fatalf("sorted batch cost %.2f bytes/edge in the WAL, want < 4", perEdge)
	}
	checkEq := collect(t, l, 0)
	if len(checkEq[0]) != len(edges) {
		t.Fatalf("replayed %d edges, want %d", len(checkEq[0]), len(edges))
	}
	for i := range edges {
		if checkEq[0][i] != edges[i] {
			t.Fatalf("edge %d: %v != %v", i, checkEq[0][i], edges[i])
		}
	}
}

// TestV2CorruptionMatrix extends the CRC-corruption contract to compressed
// records: payload damage in a non-final segment refuses to boot, the same
// damage in the final segment is torn-tail repaired to the exact prefix,
// and a CRC-valid but unparseable block is ErrCorrupt even in the final
// segment (no torn write checksums garbage correctly).
func TestV2CorruptionMatrix(t *testing.T) {
	build := func(t *testing.T, segBytes int) (string, []string) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: segBytes})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 30)
		l.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
		return dir, segs
	}

	t.Run("payload-flip-non-final", func(t *testing.T) {
		dir, segs := build(t, 128)
		if len(segs) < 3 {
			t.Fatalf("expected several segments, got %d", len(segs))
		}
		data, _ := os.ReadFile(segs[0])
		data[segHeader+recHeader+1] ^= 0xff
		os.WriteFile(segs[0], data, 0o644)
		if _, err := Open(dir, Options{SegmentBytes: 128}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("truncation-inside-varint-run-final", func(t *testing.T) {
		dir, segs := build(t, 1<<20) // one segment
		if len(segs) != 1 {
			t.Fatalf("expected 1 segment, got %d", len(segs))
		}
		// Chop mid-payload: the cut lands inside the last record's varint
		// run. The record dies (short length), every earlier one survives.
		st, _ := os.Stat(segs[0])
		if err := os.Truncate(segs[0], st.Size()-2); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("Open after varint-run truncation: %v", err)
		}
		defer l.Close()
		if got := l.LSN(); got != 29 {
			t.Fatalf("LSN = %d, want 29 (exact prefix)", got)
		}
		checkRecords(t, collect(t, l, 0), 0, 29)
		appendN(t, l, 29, 2)
		checkRecords(t, collect(t, l, 0), 0, 31)
	})

	t.Run("crc-valid-malformed-block-final", func(t *testing.T) {
		dir, segs := build(t, 1<<20)
		// A record whose CRC verifies over a payload that is not a block:
		// damage with no crash explanation, so even the final segment
		// refuses with ErrCorrupt rather than silently truncating.
		appendRecord(t, segs[len(segs)-1], []byte{0x7f, 0x03, 0x01, 0x02})
		if _, err := Open(dir, Options{SegmentBytes: 1 << 20}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("crc-flip-final-is-torn-tail", func(t *testing.T) {
		dir, segs := build(t, 1<<20)
		data, _ := os.ReadFile(segs[0])
		data[len(data)-1] ^= 0xff // last payload byte of the last record
		os.WriteFile(segs[0], data, 0o644)
		l, err := Open(dir, Options{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("Open after final-record flip: %v", err)
		}
		defer l.Close()
		checkRecords(t, collect(t, l, 0), 0, 29)
	})
}

// TestEmptyBlockRecord covers the zero-edge record corner: the writer never
// emits one (Append skips empty batches), but a reader must treat a
// hand-crafted empty block as a valid record occupying one LSN, not as
// corruption.
func TestEmptyBlockRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	empty := wire.AppendBlock(nil, nil)
	appendRecord(t, segs[0], empty)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with empty-block record: %v", err)
	}
	defer l2.Close()
	if got := l2.LSN(); got != 4 {
		t.Fatalf("LSN = %d, want 4 (empty record holds LSN 3)", got)
	}
	got := collect(t, l2, 0)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	for i := 0; i < 3; i++ {
		want := recEdges(i)
		if have := got[uint64(i)]; len(have) != len(want) {
			t.Fatalf("record %d: %d edges, want %d", i, len(have), len(want))
		}
	}
	if edges, ok := got[3]; !ok || len(edges) != 0 {
		t.Fatalf("record 3 = %v (present=%v), want an empty record", edges, ok)
	}
	appendN(t, l2, 4, 2)
	checkRecords(t, collect(t, l2, 4), 4, 6)
}

// TestRandomCrashPointsV2Rotations reruns the byte-truncation sweep over a
// multi-segment v2 log: every cut must recover the exact prefix of fully
// durable records, wherever it lands — header, record header, or inside a
// compressed varint run.
func TestRandomCrashPointsV2Rotations(t *testing.T) {
	const records = 18
	master := t.TempDir()
	l, err := Open(master, Options{SegmentBytes: 192})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, records)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(master, "*.wal"))
	if len(segs) < 2 {
		t.Fatalf("expected rotations, got %d segments", len(segs))
	}
	lastData, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		cut := rng.Intn(len(lastData) + 1)
		dir := t.TempDir()
		copyDir(t, master, dir)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(segs[len(segs)-1])), int64(cut)); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{SegmentBytes: 192})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got := collect(t, l, 0)
		want := len(got) // prefix property: recovered set must be a prefix
		checkRecords(t, got, 0, want)
		if lsn := l.LSN(); lsn != uint64(want) {
			t.Fatalf("cut=%d: LSN %d after %d survivors", cut, lsn, want)
		}
		appendN(t, l, want, 1)
		l.Close()
	}
}
