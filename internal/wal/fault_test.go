package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"connectit/internal/fault"
	"connectit/internal/graph"
)

// edge batches used across the fault tests.
func batch(base uint32) []graph.Edge {
	return []graph.Edge{{U: base, V: base + 1}, {U: base + 2, V: base + 3}}
}

// replayAll reopens dir with a clean filesystem and returns the LSNs that
// replay, failing the test on any corruption.
func replayAll(t *testing.T, dir string) []uint64 {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var lsns []uint64
	err = l.Replay(0, func(lsn uint64, edges []graph.Edge) error {
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return lsns
}

func wantLSNs(t *testing.T, got []uint64, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed LSNs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed LSNs %v, want %v", got, want)
		}
	}
}

// A failed fsync must wedge the log fail-stop, keep every previously acked
// record, and clear via TryRecover so appends resume on a fresh segment.
func TestWedgeOnSyncFailureAndRecover(t *testing.T) {
	dir := t.TempDir()
	sched := fault.NewSchedule(1).FailAt("wal.sync", 2, fault.Action{Err: syscall.EIO})
	l, err := Open(dir, Options{FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := l.Append(batch(10)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append 2: %v, want wedge by EIO", err)
	}
	if l.Wedged() == nil {
		t.Fatal("log should be wedged")
	}
	// Fail-stop: later appends refuse without touching the disk.
	if _, err := l.Append(batch(20)); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("append while wedged: %v, want wedged error", err)
	}
	st := l.Stats()
	if st.Wedges != 1 || st.Appends != 1 {
		t.Fatalf("stats after wedge: %+v", st)
	}

	if err := l.TryRecover(); err != nil {
		t.Fatalf("TryRecover: %v", err)
	}
	if l.Wedged() != nil {
		t.Fatal("log should be healthy after recovery")
	}
	lsn, err := l.Append(batch(10))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("post-recovery LSN = %d, want 1 (failed append must not consume an LSN)", lsn)
	}
	if st := l.Stats(); st.Recoveries != 1 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, replayAll(t, dir), 0, 1)
}

// ENOSPC while rotating to a new segment (the open of the segment file
// fails) wedges; recovery rotates successfully once space returns.
func TestENOSPCMidRotate(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes below one record forces a rotation per append; the
	// second append's rotate performs the second wal.open.
	sched := fault.NewSchedule(1).FailAt("wal.open", 2, fault.Action{Err: syscall.ENOSPC})
	l, err := Open(dir, Options{SegmentBytes: 1, FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := l.Append(batch(10)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append 2: %v, want ENOSPC wedge", err)
	}
	if l.Wedged() == nil {
		t.Fatal("rotate failure must wedge")
	}
	// The acked record survives a reopen even while wedged.
	wantLSNs(t, replayAll(t, dir), 0)

	if err := l.TryRecover(); err != nil {
		t.Fatalf("TryRecover: %v", err)
	}
	if lsn, err := l.Append(batch(10)); err != nil || lsn != 1 {
		t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, replayAll(t, dir), 0, 1)
}

// A short write that tears a v2 record mid-payload must leave exactly the
// acked prefix after reopen — the torn record is trimmed, not replayed and
// not corruption.
func TestShortWriteInV2Payload(t *testing.T) {
	dir := t.TempDir()
	// Writes: #1 segment header, #2 record 0, #3 record 1, #4 record 2
	// (torn: header plus three payload bytes land, then ENOSPC).
	sched := fault.NewSchedule(1).FailAt("wal.write", 4, fault.Action{Err: syscall.ENOSPC, Short: recHeader + 3})
	l, err := Open(dir, Options{NoSync: true, FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2; i++ {
		if _, err := l.Append(batch(10 * i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := l.Append(batch(100)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn append: %v, want ENOSPC", err)
	}
	// Simulate a crash before any cleanup: reopen from the files as the
	// wedge left them. (wedge already trimmed best-effort, but the reopen
	// contract must hold regardless.)
	wantLSNs(t, replayAll(t, dir), 0, 1)

	// And the wedged instance itself recovers in place.
	if err := l.TryRecover(); err != nil {
		t.Fatalf("TryRecover: %v", err)
	}
	if lsn, err := l.Append(batch(100)); err != nil || lsn != 2 {
		t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
	}
	l.Close()
	wantLSNs(t, replayAll(t, dir), 0, 1, 2)
}

// A wedge must trim the torn bytes off the segment immediately, so even a
// kill -9 between the wedge and any recovery leaves no torn tail on disk:
// the segment ends at exactly the acked prefix. A same-content healthy log
// provides the expected byte size.
func TestShortWriteTrimsToAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	sched := fault.NewSchedule(1).
		FailAt("wal.write", 3, fault.Action{Err: syscall.ENOSPC, Short: recHeader + 5})
	l, err := Open(dir, Options{NoSync: true, FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(10)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want torn append, got %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	probeDir := filepath.Join(dir, "probe")
	l2, err := Open(probeDir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(batch(0)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	probe, err := filepath.Glob(filepath.Join(probeDir, "*.wal"))
	if err != nil || len(probe) != 1 {
		t.Fatalf("probe segments: %v %v", probe, err)
	}
	pst, err := os.Stat(probe[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != pst.Size() {
		t.Fatalf("wedged segment is %d bytes, want the one-record size %d (partial bytes not trimmed)", st.Size(), pst.Size())
	}
	l.Close()
	wantLSNs(t, replayAll(t, dir), 0)
}

// A failed fsync while installing a snapshot must abort the install: no
// snapshot becomes visible, no segment is pruned, and the log keeps
// appending — snapshot failure is retryable, never wedging.
func TestSnapshotInstallFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	// NoSync appends never fsync, so the first wal.sync op is the
	// snapshot tmp file's install sync.
	sched := fault.NewSchedule(1).FailAt("wal.sync", 1, fault.Action{Err: syscall.EIO})
	l, err := Open(dir, Options{NoSync: true, FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		if _, err := l.Append(batch(10 * i)); err != nil {
			t.Fatal(err)
		}
	}
	err = l.CommitSnapshot(3, func(path string) error {
		return os.WriteFile(path, []byte("snapshot-bytes"), 0o644)
	})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("CommitSnapshot: %v, want EIO", err)
	}
	if _, _, ok := l.LatestSnapshot(); ok {
		t.Fatal("failed snapshot must not be installed")
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "snap-*")); len(names) != 0 {
		t.Fatalf("failed snapshot left files: %v", names)
	}
	if st := l.Stats(); st.Snapshots != 0 || st.Segments != 1 {
		t.Fatalf("stats after failed snapshot: %+v", st)
	}
	// The log is unharmed: appends continue, and a retry installs.
	if _, err := l.Append(batch(50)); err != nil {
		t.Fatalf("append after failed snapshot: %v", err)
	}
	err = l.CommitSnapshot(4, func(path string) error {
		return os.WriteFile(path, []byte("snapshot-bytes"), 0o644)
	})
	if err != nil {
		t.Fatalf("snapshot retry: %v", err)
	}
	if lsn, _, ok := l.LatestSnapshot(); !ok || lsn != 4 {
		t.Fatalf("retry snapshot: lsn=%d ok=%v", lsn, ok)
	}
	l.Close()
}

// A rename failure during snapshot install likewise aborts cleanly.
func TestSnapshotInstallRenameFailure(t *testing.T) {
	dir := t.TempDir()
	sched := fault.NewSchedule(1).FailAt("wal.rename", 1, fault.Action{Err: syscall.EACCES})
	l, err := Open(dir, Options{NoSync: true, FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(0)); err != nil {
		t.Fatal(err)
	}
	err = l.CommitSnapshot(1, func(path string) error {
		return os.WriteFile(path, []byte("x"), 0o644)
	})
	if !errors.Is(err, syscall.EACCES) {
		t.Fatalf("CommitSnapshot: %v, want EACCES", err)
	}
	if _, _, ok := l.LatestSnapshot(); ok {
		t.Fatal("failed snapshot must not be installed")
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "snap-*")); len(names) != 0 {
		t.Fatalf("failed snapshot left files: %v", names)
	}
	l.Close()
}

// TryRecover that itself fails (the recovery truncate hits the same bad
// disk) leaves the log wedged; a later attempt succeeds.
func TestRecoveryFailureStaysWedged(t *testing.T) {
	dir := t.TempDir()
	sched := fault.NewSchedule(1).
		FailAt("wal.sync", 1, fault.Action{Err: syscall.EIO}).
		FailAt("wal.truncate", 1, fault.Action{Err: syscall.EIO})
	l, err := Open(dir, Options{FS: fault.NewFS(nil, sched)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(0)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append: %v, want EIO wedge", err)
	}
	if err := l.TryRecover(); err == nil {
		t.Fatal("TryRecover should fail while the truncate fault is armed")
	}
	if l.Wedged() == nil {
		t.Fatal("log must stay wedged after failed recovery")
	}
	if err := l.TryRecover(); err != nil {
		t.Fatalf("second TryRecover: %v", err)
	}
	if lsn, err := l.Append(batch(0)); err != nil || lsn != 0 {
		t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
	}
	l.Close()
	wantLSNs(t, replayAll(t, dir), 0)
}
