// Package testutil provides the shared ground-truth oracle and graph panel
// used by the test suites of every algorithm package.
package testutil

import (
	"testing"

	"connectit/internal/graph"
)

// Components computes the reference connectivity labeling with a sequential
// BFS; the label of each component is its minimum vertex ID.
func Components(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = graph.None
	}
	queue := make([]graph.Vertex, 0, 64)
	for v := 0; v < n; v++ {
		if labels[v] != graph.None {
			continue
		}
		labels[v] = uint32(v)
		queue = append(queue[:0], graph.Vertex(v))
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(x) {
				if labels[u] == graph.None {
					labels[u] = uint32(v)
					queue = append(queue, u)
				}
			}
		}
	}
	return labels
}

// NumComponents counts components in a reference labeling.
func NumComponents(labels []uint32) int {
	c := 0
	for v, l := range labels {
		if uint32(v) == l {
			c++
		}
	}
	return c
}

// CheckPartition fails the test unless got and want induce the same
// partition of the vertices.
func CheckPartition(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: labeling length %d, want %d", name, len(got), len(want))
	}
	fwd := make(map[uint32]uint32)
	rev := make(map[uint32]uint32)
	for v := range got {
		if l, ok := fwd[want[v]]; ok {
			if l != got[v] {
				t.Fatalf("%s: vertex %d: same true component, labels %d vs %d", name, v, l, got[v])
			}
		} else {
			fwd[want[v]] = got[v]
		}
		if w, ok := rev[got[v]]; ok {
			if w != want[v] {
				t.Fatalf("%s: label %d spans two true components", name, got[v])
			}
		} else {
			rev[got[v]] = want[v]
		}
	}
}

// CheckSpanningForest fails the test unless forest is a spanning forest of
// g: acyclic, using only real edges, with exactly n - #components edges,
// inducing the reference partition.
func CheckSpanningForest(t *testing.T, name string, g *graph.Graph, forest [][2]uint32) {
	t.Helper()
	want := Components(g)
	comps := NumComponents(want)
	n := g.NumVertices()
	if len(forest) != n-comps {
		t.Fatalf("%s: forest has %d edges, want n-#comps = %d", name, len(forest), n-comps)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range forest {
		u, v := int(e[0]), int(e[1])
		if u < 0 || u >= n || v < 0 || v >= n {
			t.Fatalf("%s: forest edge (%d,%d) out of range", name, u, v)
		}
		isEdge := false
		for _, x := range g.Neighbors(graph.Vertex(u)) {
			if x == graph.Vertex(v) {
				isEdge = true
				break
			}
		}
		if !isEdge {
			t.Fatalf("%s: forest edge (%d,%d) is not a graph edge", name, u, v)
		}
		if find(u) == find(v) {
			t.Fatalf("%s: forest edge (%d,%d) creates a cycle", name, u, v)
		}
		parent[find(u)] = find(v)
	}
	gotLabels := make([]uint32, n)
	for v := range gotLabels {
		gotLabels[v] = uint32(find(v))
	}
	CheckPartition(t, name+"/forest-partition", gotLabels, want)
}

// Panel returns the standard test graph panel: the adversarial fixtures plus
// class analogs of the paper's inputs (DESIGN.md §8) at test scale.
func Panel() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":     graph.Build(0, nil),
		"single":    graph.Build(1, nil),
		"isolated":  graph.Build(50, nil),
		"one-edge":  graph.Build(4, []graph.Edge{{U: 1, V: 3}}),
		"path":      graph.Path(300),
		"cycle":     graph.Cycle(128),
		"star":      graph.Star(200),
		"grid":      graph.Grid2D(20, 25),
		"cliques":   graph.Cliques(6, 12),
		"bridged":   bridgedCliques(),
		"rmat":      graph.RMAT(11, 12000, 0.57, 0.19, 0.19, 4),
		"ba":        graph.BarabasiAlbert(1500, 4, 8),
		"er-sparse": graph.ErdosRenyi(2048, 1500, 6),
		"weblike":   graph.WebLike(11, 6000, 0.2, 12),
	}
}

// bridgedCliques returns two cliques joined by a single bridge edge.
func bridgedCliques() *graph.Graph {
	g := graph.Cliques(2, 20)
	edges := g.Edges()
	edges = append(edges, graph.Edge{U: 5, V: 25})
	return graph.Build(40, edges)
}
