package baseline

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

func TestBaselinesMatchOracleOnPanel(t *testing.T) {
	type system struct {
		name string
		run  func(*graph.Graph) []uint32
	}
	systems := []system{
		{"BFSCC", BFSCC},
		{"WorkEfficientCC", func(g *graph.Graph) []uint32 { return WorkEfficientCC(g, 0.2, 11) }},
		{"MultiStep", MultiStep},
		{"GAPBS-SV", GAPBSShiloachVishkin},
		{"Afforest", func(g *graph.Graph) []uint32 { return Afforest(g, 2, 5) }},
		{"PatwaryRM", PatwaryRM},
	}
	for name, g := range testutil.Panel() {
		want := testutil.Components(g)
		for _, sys := range systems {
			got := sys.run(g)
			testutil.CheckPartition(t, sys.name+"/"+name, got, want)
		}
	}
}

func TestWorkEfficientCCHighBeta(t *testing.T) {
	// beta = 1 stresses the degenerate-decomposition fallback.
	g := graph.Grid2D(15, 15)
	got := WorkEfficientCC(g, 1.0, 3)
	testutil.CheckPartition(t, "grid-beta1", got, testutil.Components(g))
}

func TestWorkEfficientCCDeepRecursion(t *testing.T) {
	// A long path forces many contraction levels at small beta.
	g := graph.Path(5000)
	got := WorkEfficientCC(g, 0.05, 7)
	testutil.CheckPartition(t, "path", got, testutil.Components(g))
}

func TestMultiStepPicksGiantComponent(t *testing.T) {
	// One big clique plus stragglers: the BFS seed must land in the clique.
	edges := graph.Cliques(1, 100).Edges()
	edges = append(edges, graph.Edge{U: 100, V: 101}, graph.Edge{U: 102, V: 103})
	g := graph.Build(104, edges)
	got := MultiStep(g)
	testutil.CheckPartition(t, "clique+stragglers", got, testutil.Components(g))
}
