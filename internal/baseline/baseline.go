// Package baseline re-implements the state-of-the-art connectivity systems
// the paper compares against in §4.3 / Table 3:
//
//   - BFSCC — Ligra's BFS-based connectivity [92]: one parallel
//     direction-optimizing BFS per component.
//   - WorkEfficientCC — the provably work-efficient algorithm of Shun et
//     al. [94]: recursive low-diameter decomposition and contraction.
//   - MultiStep — Slota et al.'s hybrid [98]: BFS from a high-degree seed
//     for the giant component, label propagation for the rest.
//   - GAPBSShiloachVishkin — the GAP Benchmark Suite's Shiloach-Vishkin
//     [11], with its plain (non-priority) hooking writes.
//   - Afforest — Sutton et al.'s algorithm [104]: first-k-edges sampling
//     followed by a union-find finish that skips the largest component.
//   - PatwaryRM — Patwary et al.'s lock-based Rem's algorithm [84].
//
// The Galois comparison point is label propagation (the paper reports their
// label-propagation implementation as consistently fastest), which is the
// framework's own Label-Propagation algorithm.
package baseline

import (
	"sync"
	"sync/atomic"

	"connectit/internal/bfs"
	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/labelprop"
	"connectit/internal/ldd"
	"connectit/internal/parallel"
	"connectit/internal/sample"
	"connectit/internal/unionfind"
)

// BFSCC computes components by running one parallel BFS per uncovered
// vertex (Ligra's BFSCC), claiming vertices directly in a shared label
// array so per-component cost is proportional to component size. Fast on
// low-diameter graphs with few components; pathological on high-diameter
// graphs (one frontier round per distance level).
func BFSCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	parallel.For(n, func(i int) { labels[i] = graph.None })
	var frontier, next []graph.Vertex
	var mu sync.Mutex
	for v := 0; v < n; v++ {
		if atomic.LoadUint32(&labels[v]) != graph.None {
			continue
		}
		label := uint32(v)
		labels[v] = label
		frontier = append(frontier[:0], graph.Vertex(v))
		for len(frontier) > 0 {
			next = next[:0]
			parallel.ForGrained(len(frontier), 128, func(lo, hi int) {
				var local []graph.Vertex
				for i := lo; i < hi; i++ {
					for _, u := range g.Neighbors(frontier[i]) {
						if atomic.LoadUint32(&labels[u]) == graph.None &&
							atomic.CompareAndSwapUint32(&labels[u], graph.None, label) {
							local = append(local, u)
						}
					}
				}
				if len(local) > 0 {
					mu.Lock()
					next = append(next, local...)
					mu.Unlock()
				}
			})
			frontier, next = next, frontier
		}
	}
	return labels
}

// WorkEfficientCC is the linear-work connectivity algorithm of Shun et al.:
// decompose with LDD, contract clusters, recurse on the contracted graph,
// and propagate labels back down.
func WorkEfficientCC(g *graph.Graph, beta float64, seed uint64) []uint32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	clusters := ldd.Decompose(g, ldd.Options{Beta: beta, Permute: true, Seed: seed}).Cluster

	// Renumber cluster centers densely.
	centers := parallel.FilterIndices(n, func(i int) bool { return clusters[i] == graph.Vertex(i) })
	if len(centers) == n && g.NumEdges() > 0 {
		// Degenerate decomposition (every vertex woke in round zero, so no
		// contraction happened). Recursing would not shrink the problem;
		// fall back to a direct union-find finish at this level.
		d := unionfind.MustNew(n, unionfind.Options{Union: unionfind.UnionRemCAS, Splice: unionfind.SplitAtomicOne})
		parallel.ForGrained(n, 256, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				for _, u := range g.Neighbors(graph.Vertex(v)) {
					d.Union(uint32(v), u)
				}
			}
		})
		return d.Labels()
	}
	newID := make([]uint32, n)
	for i, c := range centers {
		newID[c] = uint32(i)
	}

	// Collect deduplicated inter-cluster edges.
	edgeSet := make(map[uint64]struct{})
	for v := 0; v < n; v++ {
		cv := clusters[v]
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			cu := clusters[u]
			if cu == cv {
				continue
			}
			a, b := newID[cv], newID[cu]
			if a > b {
				a, b = b, a
			}
			edgeSet[uint64(a)<<32|uint64(b)] = struct{}{}
		}
	}
	if len(edgeSet) == 0 {
		return clusters
	}
	edges := make([]graph.Edge, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, graph.Edge{U: uint32(e >> 32), V: uint32(e)})
	}
	contracted := graph.Build(len(centers), edges)
	sub := WorkEfficientCC(contracted, beta, seed+0x9e37)

	// Pull labels back: label of v = center of the contracted component.
	labels := make([]uint32, n)
	parallel.For(n, func(i int) {
		labels[i] = centers[sub[newID[clusters[i]]]]
	})
	return labels
}

// MultiStep is Slota et al.'s hybrid: a BFS from the highest-degree vertex
// captures the (presumed) massive component, and label propagation finishes
// the remainder.
func MultiStep(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	labels := core.Identity(n)
	if n == 0 {
		return labels
	}
	seed := graph.Vertex(0)
	for v := 1; v < n; v++ {
		if g.Degree(graph.Vertex(v)) > g.Degree(seed) {
			seed = graph.Vertex(v)
		}
	}
	if g.Degree(seed) == 0 {
		return labels
	}
	r := bfs.Run(g, seed)
	visited := make([]bool, n)
	parallel.For(n, func(i int) {
		if r.Parent[i] != graph.None {
			labels[i] = uint32(seed)
			visited[i] = true
		}
	})
	labelprop.Run(g, labels, visited)
	return labels
}

// GAPBSShiloachVishkin is the GAP Benchmark Suite's Shiloach-Vishkin: plain
// guarded hooking (last writer wins, not a priority update) plus pointer
// jumping. The lost-update races cost extra rounds — the implementation
// issue the paper notes can inflate its work — but each hook still strictly
// decreases a root's label, so it converges.
func GAPBSShiloachVishkin(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	comp := core.Identity(n)
	for {
		var changed atomic.Bool
		parallel.ForGrained(n, 256, func(lo, hi int) {
			local := false
			for v := lo; v < hi; v++ {
				for _, u := range g.Neighbors(graph.Vertex(v)) {
					cv := atomic.LoadUint32(&comp[v])
					cu := atomic.LoadUint32(&comp[u])
					if cv == cu {
						continue
					}
					hi32, lo32 := cv, cu
					if hi32 < lo32 {
						hi32, lo32 = lo32, hi32
					}
					// Plain guarded store: no min priority, races lose
					// updates (GAPBS behaviour).
					if atomic.LoadUint32(&comp[hi32]) == hi32 {
						atomic.StoreUint32(&comp[hi32], lo32)
						local = true
					}
				}
			}
			if local {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			return comp
		}
		parallel.For(n, func(i int) {
			r := atomic.LoadUint32(&comp[i])
			for {
				pr := atomic.LoadUint32(&comp[r])
				if pr == r {
					break
				}
				r = pr
			}
			atomic.StoreUint32(&comp[i], r)
		})
	}
}

// Afforest is Sutton et al.'s algorithm: first-k-edges sampling (no
// randomization) with a union-find finish that skips the most frequent
// component — expressed in ConnectIt as kout-afforest + Union-Rem-CAS.
func Afforest(g *graph.Graph, k int, seed uint64) []uint32 {
	labels, err := core.Connectivity(g, core.Config{
		Sampling:     core.KOutSampling,
		K:            k,
		KOutStrategy: sample.KOutAfforest,
		Algorithm: core.Algorithm{Kind: core.FinishUnionFind, UF: unionfind.Variant{
			Union: unionfind.UnionRemCAS, Splice: unionfind.SplitAtomicOne,
		}},
		Seed: seed,
	})
	if err != nil {
		panic(err) // static valid configuration
	}
	return labels
}

// PatwaryRM is Patwary et al.'s lock-based Rem's algorithm with splicing,
// run over all edges without sampling.
func PatwaryRM(g *graph.Graph) []uint32 {
	labels, err := core.Connectivity(g, core.Config{
		Algorithm: core.Algorithm{Kind: core.FinishUnionFind, UF: unionfind.Variant{
			Union: unionfind.UnionRemLock, Splice: unionfind.SpliceAtomic,
		}},
	})
	if err != nil {
		panic(err) // static valid configuration
	}
	return labels
}
