package minlabel

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNaturalOrderIsUint32Order(t *testing.T) {
	var o Order
	f := func(a, b uint32) bool {
		return o.Less(a, b) == (a < b) && o.Min(a, b) == min(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFavoredSetIsTotalOrder(t *testing.T) {
	const n = 32
	fav := make([]bool, n)
	for _, v := range []int{3, 7, 20, 31} {
		fav[v] = true
	}
	o := Order{Favored: fav}

	// Irreflexive and antisymmetric.
	for a := uint32(0); a < n; a++ {
		if o.Less(a, a) {
			t.Fatalf("Less(%d,%d) reflexive", a, a)
		}
		for b := uint32(0); b < n; b++ {
			if a != b && o.Less(a, b) == o.Less(b, a) {
				t.Fatalf("not antisymmetric at (%d,%d)", a, b)
			}
		}
	}
	// Sorting with the order puts the favored set first, each part by ID.
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(n - 1 - i)
	}
	sort.Slice(ids, func(i, j int) bool { return o.Less(ids[i], ids[j]) })
	want := []uint32{3, 7, 20, 31}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("sorted[%d] = %d, want favored %d first", i, ids[i], w)
		}
	}
	for i := len(want) + 1; i < n; i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("non-favored tail out of ID order at %d", i)
		}
	}
}

func TestWriteMinRespectsFavoredOrder(t *testing.T) {
	fav := make([]bool, 10)
	fav[9] = true
	o := Order{Favored: fav}
	x := uint32(2)
	if !o.WriteMin(&x, 9) {
		t.Fatal("favored 9 should beat 2")
	}
	if o.WriteMin(&x, 0) {
		t.Fatal("non-favored 0 must not beat favored 9")
	}
	if x != 9 {
		t.Fatalf("x = %d", x)
	}
}

func TestWriteMinConcurrentConvergesToOrderMinimum(t *testing.T) {
	const n = 64
	fav := make([]bool, n)
	fav[40] = true
	fav[50] = true
	o := Order{Favored: fav}
	x := uint32(0) // non-favored start
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.WriteMin(&x, uint32((w*7+i)%n))
			}
		}(w)
	}
	wg.Wait()
	if x != 40 {
		t.Fatalf("converged to %d, want 40 (smallest favored ID)", x)
	}
}

func TestWriteMinPackedFavored(t *testing.T) {
	fav := make([]bool, 8)
	fav[5] = true
	o := Order{Favored: fav}
	x := uint64(3)<<32 | 111
	if !o.WriteMinPacked(&x, 5, 222) {
		t.Fatal("favored priority should win")
	}
	if o.WriteMinPacked(&x, 0, 333) {
		t.Fatal("non-favored must not beat favored")
	}
	if x>>32 != 5 || uint32(x) != 222 {
		t.Fatalf("packed = (%d,%d)", x>>32, uint32(x))
	}
}
