// Package minlabel defines the label total order used by the "other
// min-based" finish algorithms (Liu-Tarjan, Stergiou, Label-Propagation).
//
// When these algorithms are composed with sampling, the paper relabels the
// vertices of the largest sampled component to the smallest possible IDs so
// that they never change labels and their out-edges can be skipped
// (Theorem 4). We realize that relabeling with a custom total order in
// which every member of the favored set compares smaller than every
// non-member (ties by numeric ID) — order-isomorphic to the paper's
// renumbering without physically permuting vertex IDs (DESIGN.md §4).
//
// Favoring the whole set rather than just the component label matters for
// the Connect rule, whose candidates are raw vertex IDs: a neighbor of the
// frequent component receives some member's ID, which must already compare
// below every outside label for the component's minimality argument to go
// through.
package minlabel

import "sync/atomic"

// None is the conventional "no favored label" sentinel retained for
// call-site readability.
const None = ^uint32(0)

// Order is a total order on vertex labels with an optionally favored set.
// The zero Order is the natural uint32 order.
type Order struct {
	// Favored, when non-nil, marks the vertex IDs that compare smaller
	// than every unmarked ID (the sampled most-frequent component).
	Favored []bool
}

// Less reports whether a precedes b in the order.
func (o Order) Less(a, b uint32) bool {
	if a == b {
		return false
	}
	if o.Favored != nil {
		fa, fb := o.Favored[a], o.Favored[b]
		if fa != fb {
			return fa
		}
	}
	return a < b
}

// Min returns the smaller of a and b in the order.
func (o Order) Min(a, b uint32) uint32 {
	if o.Less(b, a) {
		return b
	}
	return a
}

// WriteMin atomically updates *addr to val if val precedes the stored value
// in the order, reporting whether it did.
func (o Order) WriteMin(addr *uint32, val uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if !o.Less(val, old) {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// WriteMinPacked atomically updates the packed (priority, payload) value at
// *addr if pri precedes the stored priority in the order, carrying payload
// along with the winning priority (the witness-edge mechanism of the
// spanning-forest algorithms).
func (o Order) WriteMinPacked(addr *uint64, pri, payload uint32) bool {
	packed := uint64(pri)<<32 | uint64(payload)
	for {
		old := atomic.LoadUint64(addr)
		if !o.Less(pri, uint32(old>>32)) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, packed) {
			return true
		}
	}
}
