package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// The Sched* benchmarks measure the substrate itself, not kernel work:
// small bodies over modest ranges, so the per-call dispatch/wake/claim
// overhead dominates. CI runs them with -cpu 1,2,4 (bench-smoke), which is
// where the pool-vs-spawn gap and the stealing behavior show; on one proc
// both substrates run the body inline.

const (
	schedN     = 1 << 16
	schedGrain = 512
)

// BenchmarkSchedForPool is one persistent-pool dispatch per op.
func BenchmarkSchedForPool(b *testing.B) {
	data := make([]uint32, schedN)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForGrained(schedN, schedGrain, body)
	}
}

// BenchmarkSchedForSpawn is the pre-pool substrate: spawn-per-call
// goroutines claiming off one shared counter.
func BenchmarkSchedForSpawn(b *testing.B) {
	data := make([]uint32, schedN)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForGrainedSpawn(schedN, schedGrain, body)
	}
}

// BenchmarkSchedGrain sweeps the grain size on both substrates: fine
// grains are where the old shared claim counter serialized workers on one
// cache line and the pool's per-worker ranges pay off.
func BenchmarkSchedGrain(b *testing.B) {
	data := make([]uint32, schedN)
	for _, grain := range []int{64, 256, 1024, 4096} {
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i]++
			}
		}
		b.Run(benchName("pool", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForGrained(schedN, grain, body)
			}
		})
		b.Run(benchName("spawn", grain), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForGrainedSpawn(schedN, grain, body)
			}
		})
	}
}

// BenchmarkSchedRounds is the round-structured shape of the Liu-Tarjan /
// Shiloach-Vishkin hot paths: several back-to-back flat sweeps per op.
// Back-to-back calls are where the epoch barrier's spin phase (workers
// still awake from the previous sweep) beats spawn-per-call hardest.
func BenchmarkSchedRounds(b *testing.B) {
	data := make([]uint32, schedN)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 4; r++ {
			ForGrained(schedN, schedGrain, body)
		}
	}
}

// BenchmarkSchedSkewed gives one chunk 64x the work of the rest: the
// randomized-stealing load balancer's target case.
func BenchmarkSchedSkewed(b *testing.B) {
	var sink atomic.Uint64
	body := func(lo, hi int) {
		work := 1
		if lo == 0 {
			work = 64
		}
		var s uint64
		for w := 0; w < work; w++ {
			for i := lo; i < hi; i++ {
				s += uint64(i)
			}
		}
		sink.Add(s)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForGrained(schedN, schedGrain, body)
	}
}

// BenchmarkSchedReduce measures the reduction path (ReduceAdd).
func BenchmarkSchedReduce(b *testing.B) {
	f := func(i int) uint64 { return uint64(i) }
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ReduceAdd(schedN, f)
	}
	_ = sink
}

func benchName(kind string, grain int) string {
	return fmt.Sprintf("%s/grain=%d", kind, grain)
}
