package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestPoolRunForAlternation alternates Run (modeEvery) with For dispatches:
// the interleaving that once let a worker re-park before the wake sweep
// reached it, receive a stale token, and double-execute a job.
func TestPoolRunForAlternation(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rounds := 20000
	if testing.Short() {
		rounds = 4000
	}
	data := make([]uint32, 1<<12)
	body := func(i int) { data[i]++ }
	var ran atomic.Int64
	fn := func(w *Worker) { ran.Add(1) }
	for r := 0; r < rounds; r++ {
		ran.Store(0)
		Run(fn)
		if got := ran.Load(); got != 4 {
			t.Fatalf("round %d: Run executed fn %d times, want 4", r, got)
		}
		For(len(data), body)
	}
	for i := range data {
		if data[i] != uint32(rounds) {
			t.Fatalf("data[%d] = %d, want %d (lost or duplicated chunk)", i, data[i], rounds)
		}
	}
}
