package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withProcs runs f under an adjusted GOMAXPROCS: the pool sizes jobs off
// GOMAXPROCS at each call, so raising it engages the parallel machinery
// even on a single-core machine.
func withProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestPoolForCoversAllIndices(t *testing.T) {
	withProcs(t, 4, func() {
		for _, n := range []int{1, 7, 1000, 100_000} {
			seen := make([]atomic.Bool, n)
			For(n, func(i int) {
				if seen[i].Swap(true) {
					t.Errorf("n=%d: index %d visited twice", n, i)
				}
			})
			for i := range seen {
				if !seen[i].Load() {
					t.Fatalf("n=%d: index %d not visited", n, i)
				}
			}
		}
	})
}

// TestPoolConcurrentCallers hammers the pool from many goroutines at once:
// calls that lose the pool race run inline, but every call must still cover
// its whole range exactly once.
func TestPoolConcurrentCallers(t *testing.T) {
	withProcs(t, 4, func() {
		const goroutines = 8
		const rounds = 50
		const n = 10_000
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					var sum atomic.Int64
					ForGrained(n, 64, func(lo, hi int) {
						local := int64(0)
						for i := lo; i < hi; i++ {
							local += int64(i)
						}
						sum.Add(local)
					})
					if want := int64(n) * (n - 1) / 2; sum.Load() != want {
						t.Errorf("goroutine %d round %d: sum = %d, want %d", g, r, sum.Load(), want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestPoolNestedParallelism checks the deadlock-freedom contract: a body
// running on the pool may issue further parallel calls, which run inline
// (sequentially) rather than blocking on the busy pool.
func TestPoolNestedParallelism(t *testing.T) {
	withProcs(t, 4, func() {
		const outer = 4000
		const inner = 100
		var total atomic.Int64
		ForGrained(outer, 16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var local atomic.Int64
				For(inner, func(j int) { local.Add(1) })
				if local.Load() != inner {
					t.Errorf("nested For covered %d of %d", local.Load(), inner)
					return
				}
				total.Add(local.Load())
			}
		})
		if total.Load() != outer*inner {
			t.Fatalf("total = %d, want %d", total.Load(), outer*inner)
		}
		// Nested Run and ForWorker must not deadlock either.
		var viaRun atomic.Int64
		ForGrained(outer, 16, func(lo, hi int) {
			Run(func(w *Worker) { viaRun.Add(int64(hi - lo)) })
			ForWorker(4, 1, func(w *Worker, lo, hi int) {})
		})
	})
}

func TestForWorkerIdentity(t *testing.T) {
	withProcs(t, 4, func() {
		const n = 100_000
		const grain = 64
		width := Width(n, grain)
		if width < 1 || width > MaxWorkers {
			t.Fatalf("Width = %d out of range", width)
		}
		// Each worker counts its own iterations in a private padded slot;
		// the slots must sum to n and only IDs < width may appear.
		counts := make([]int64, MaxWorkers*16)
		ForWorker(n, grain, func(w *Worker, lo, hi int) {
			if w.ID() >= width {
				t.Errorf("worker ID %d >= width %d", w.ID(), width)
			}
			counts[w.ID()*16] += int64(hi - lo)
		})
		var sum int64
		for i := range counts {
			sum += counts[i]
		}
		if sum != n {
			t.Fatalf("workers covered %d iterations, want %d", sum, n)
		}

		// ForWorkerSized clamps the participant set below the caller's
		// bound even though GOMAXPROCS allows more.
		var covered atomic.Int64
		ForWorkerSized(n, grain, 2, func(w *Worker, lo, hi int) {
			if w.ID() >= 2 {
				t.Errorf("ForWorkerSized(maxID=2) ran worker %d", w.ID())
			}
			covered.Add(int64(hi - lo))
		})
		if covered.Load() != n {
			t.Fatalf("ForWorkerSized covered %d of %d", covered.Load(), n)
		}
	})
}

// TestForWorkerScratchPersists checks the Scratch reuse contract: buffers
// grown in one call are still there on the next call that runs on the same
// worker. (A worker that executes no chunk in a call — everything claimed
// or stolen by others — grows nothing, so only workers seen in the first
// call are checked.)
func TestForWorkerScratchPersists(t *testing.T) {
	withProcs(t, 4, func() {
		var grew [MaxWorkers]atomic.Bool
		ForWorker(1<<14, 256, func(w *Worker, lo, hi int) {
			buf := w.Scratch.GrowU64(128)
			buf[0] = uint64(w.ID()) + 1
			grew[w.ID()].Store(true)
		})
		ForWorker(1<<14, 256, func(w *Worker, lo, hi int) {
			if grew[w.ID()].Load() && cap(w.Scratch.U64) < 128 {
				t.Errorf("worker %d scratch not retained (cap %d)", w.ID(), cap(w.Scratch.U64))
			}
			if grew[w.ID()].Load() && w.Scratch.U64[0] != uint64(w.ID())+1 {
				t.Errorf("worker %d scratch content lost", w.ID())
			}
		})
	})
}

func TestRunVisitsDistinctWorkers(t *testing.T) {
	withProcs(t, 4, func() {
		var mu sync.Mutex
		ids := map[int]int{}
		Run(func(w *Worker) {
			mu.Lock()
			ids[w.ID()]++
			mu.Unlock()
		})
		if len(ids) != 4 {
			t.Fatalf("Run visited %d workers, want 4 (ids %v)", len(ids), ids)
		}
		for id, c := range ids {
			if c != 1 {
				t.Fatalf("worker %d ran %d times, want 1", id, c)
			}
		}
	})
}

// TestPoolProcsTransitions moves GOMAXPROCS up and down across calls: the
// pool must size each job off the current value and excess workers must
// stay parked without corrupting later jobs.
func TestPoolProcsTransitions(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4, 2, 6, 1, 3} {
		runtime.GOMAXPROCS(procs)
		for r := 0; r < 3; r++ {
			got := ReduceAdd(50_000, func(i int) uint64 { return uint64(i) })
			if want := uint64(50_000) * (50_000 - 1) / 2; got != want {
				t.Fatalf("procs=%d: ReduceAdd = %d, want %d", procs, got, want)
			}
		}
	}
}

// TestPoolStressMixed drives every primitive from concurrent goroutines
// under the race detector.
func TestPoolStressMixed(t *testing.T) {
	withProcs(t, 4, func() {
		const goroutines = 6
		rounds := 30
		if testing.Short() {
			rounds = 10
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					switch (g + r) % 4 {
					case 0:
						n := 5000 + g*100
						if got := Count(n, func(i int) bool { return i%3 == 0 }); got != uint64((n+2)/3) {
							t.Errorf("Count = %d, want %d", got, (n+2)/3)
						}
					case 1:
						data := make([]uint64, 3000)
						for i := range data {
							data[i] = 2
						}
						if got := ScanExclusive(data); got != 6000 {
							t.Errorf("ScanExclusive total = %d", got)
						}
					case 2:
						var f Filter
						got := f.Indices(4096, func(i int) bool { return i%2 == 0 })
						if len(got) != 2048 {
							t.Errorf("Filter kept %d, want 2048", len(got))
						}
					case 3:
						var sum atomic.Int64
						ForWorker(8192, 128, func(w *Worker, lo, hi int) {
							sum.Add(int64(hi - lo))
						})
						if sum.Load() != 8192 {
							t.Errorf("ForWorker covered %d", sum.Load())
						}
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestForZeroAllocsSteadyState is the allocation regression guard for the
// pool: once the body closure exists and the pool has warmed up, a
// parallel.For costs zero heap allocations per call.
func TestForZeroAllocsSteadyState(t *testing.T) {
	if testing.Short() && runtime.GOMAXPROCS(0) == 1 {
		// Still meaningful sequentially, but the interesting guard is the
		// pooled path below.
		t.Log("running with GOMAXPROCS raised to 4")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	data := make([]uint32, 1<<16)
	body := func(i int) { data[i]++ }
	For(len(data), body) // warm up: spawn workers, grow pool state
	res := testing.Benchmark(func(b *testing.B) {
		runtime.GOMAXPROCS(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			For(len(data), body)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state parallel.For allocates %d allocs/op, want 0", a)
	}
	gbody := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	res = testing.Benchmark(func(b *testing.B) {
		runtime.GOMAXPROCS(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ForGrained(len(data), 512, gbody)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state parallel.ForGrained allocates %d allocs/op, want 0", a)
	}
}

func TestPoolStatsAdvance(t *testing.T) {
	withProcs(t, 4, func() {
		before := PoolStats()
		For(1<<16, func(i int) {})
		after := PoolStats()
		if after.Calls <= before.Calls {
			t.Fatalf("Calls did not advance: %+v -> %+v", before, after)
		}
		if after.Chunks <= before.Chunks {
			t.Fatalf("Chunks did not advance: %+v -> %+v", before, after)
		}
	})
}

func TestForGrainedSpawnMatchesFor(t *testing.T) {
	withProcs(t, 4, func() {
		var a, b atomic.Int64
		ForGrained(12345, 100, func(lo, hi int) { a.Add(int64(hi - lo)) })
		ForGrainedSpawn(12345, 100, func(lo, hi int) { b.Add(int64(hi - lo)) })
		if a.Load() != b.Load() || a.Load() != 12345 {
			t.Fatalf("coverage mismatch: pool %d spawn %d", a.Load(), b.Load())
		}
	})
}
