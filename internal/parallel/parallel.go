// Package parallel implements the flat parallel primitives that ConnectIt's
// algorithms are built on: dynamically scheduled parallel for loops,
// reductions, prefix sums, filters, and histograms.
//
// The paper uses a Cilk-style work-stealing scheduler. This package runs
// every loop on a persistent fork-join pool (pool.go, DESIGN.md §2): P-1
// long-lived workers parked on an epoch barrier, woken per call with zero
// goroutine spawns and zero steady-state allocations, claiming chunks from
// per-worker ranges with randomized stealing. For the flat, irregular loops
// used by connectivity algorithms this provides the same load balance as
// work stealing while keeping per-call overhead near a function call.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default number of iterations claimed by a worker at a
// time. It is large enough to amortize the claim and small enough to balance
// skewed per-iteration work (e.g. high-degree vertices).
const DefaultGrain = 1024

// Procs returns the number of workers parallel loops will use.
func Procs() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) in parallel.
func For(n int, body func(i int)) {
	forGrained(n, DefaultGrain, 0, nil, body, nil)
}

// ForGrained runs body over disjoint chunks [lo, hi) covering [0, n),
// claiming chunks of size grain dynamically. It runs sequentially when the
// range is a single grain, only one P is available, or the pool is busy
// (nested parallel calls always run their inner loop inline).
func ForGrained(n, grain int, body func(lo, hi int)) {
	forGrained(n, grain, 0, body, nil, nil)
}

// ForWorker is ForGrained with worker identity: body receives the
// claiming Worker, whose ID is a dense index below Width(n, grain) and
// whose Scratch persists across calls. One worker executes its chunks
// sequentially, so per-worker state needs no synchronization within a
// call. Callers that size arrays by a prior Width call should use
// ForWorkerSized instead: the job width is re-derived from GOMAXPROCS at
// dispatch, so a concurrent GOMAXPROCS raise could otherwise admit IDs
// the caller never sized for.
func ForWorker(n, grain int, body func(w *Worker, lo, hi int)) {
	forGrained(n, grain, 0, nil, nil, body)
}

// ForWorkerSized is ForWorker with an explicit participant bound: the job
// uses at most maxID workers, so body only ever observes Worker.ID() <
// maxID — whatever happens to GOMAXPROCS between the caller's Width-based
// sizing and the dispatch. maxID < 1 is treated as 1 (sequential).
func ForWorkerSized(n, grain, maxID int, body func(w *Worker, lo, hi int)) {
	if maxID < 1 {
		maxID = 1
	}
	forGrained(n, grain, maxID, nil, nil, body)
}

// ReduceAdd sums f(i) over [0, n) in parallel.
func ReduceAdd(n int, f func(i int) uint64) uint64 {
	var total atomic.Uint64
	ForGrained(n, DefaultGrain, func(lo, hi int) {
		var local uint64
		for i := lo; i < hi; i++ {
			local += f(i)
		}
		total.Add(local)
	})
	return total.Load()
}

// ReduceMax returns the maximum of f(i) over [0, n), or 0 when n == 0.
func ReduceMax(n int, f func(i int) uint64) uint64 {
	if n == 0 {
		return 0
	}
	var best atomic.Uint64
	ForGrained(n, DefaultGrain, func(lo, hi int) {
		local := f(lo)
		for i := lo + 1; i < hi; i++ {
			if v := f(i); v > local {
				local = v
			}
		}
		for {
			cur := best.Load()
			if local <= cur || best.CompareAndSwap(cur, local) {
				break
			}
		}
	})
	return best.Load()
}

// Count returns the number of i in [0, n) for which pred(i) holds.
func Count(n int, pred func(i int) bool) uint64 {
	return ReduceAdd(n, func(i int) uint64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// scanScratch recycles the block-sum arrays of ScanExclusive so the
// steady-state scan (graph builds, semisorts, filters) does not allocate.
var scanScratch = sync.Pool{New: func() any { return new([]uint64) }}

// ScanExclusive replaces data with its exclusive prefix sum and returns the
// total. It uses a two-pass blocked scan.
func ScanExclusive(data []uint64) uint64 {
	n := len(data)
	if n == 0 {
		return 0
	}
	grain := DefaultGrain
	blocks := (n + grain - 1) / grain
	if blocks == 1 || Procs() == 1 {
		var sum uint64
		for i := range data {
			v := data[i]
			data[i] = sum
			sum += v
		}
		return sum
	}
	bp := scanScratch.Get().(*[]uint64)
	blockSums := *bp
	if cap(blockSums) < blocks {
		blockSums = make([]uint64, blocks)
	}
	blockSums = blockSums[:blocks]
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			var sum uint64
			for i := lo; i < hi; i++ {
				sum += data[i]
			}
			blockSums[b] = sum
		}
	})
	var total uint64
	for b := 0; b < blocks; b++ {
		v := blockSums[b]
		blockSums[b] = total
		total += v
	}
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			sum := blockSums[b]
			for i := lo; i < hi; i++ {
				v := data[i]
				data[i] = sum
				sum += v
			}
		}
	})
	*bp = blockSums
	scanScratch.Put(bp)
	return total
}

// Filter computes FilterIndices into buffers that are reused across calls:
// round-structured kernels (label propagation's frontier, the ingest apply
// path) hold one Filter and stay allocation-free in steady state.
type Filter struct {
	counts []uint64
	out    []uint32
}

// Indices returns, in ascending order, all i in [0, n) satisfying pred.
// The returned slice aliases the Filter's scratch and is valid until the
// next Indices call.
func (f *Filter) Indices(n int, pred func(i int) bool) []uint32 {
	grain := DefaultGrain
	blocks := (n + grain - 1) / grain
	if blocks == 0 {
		return nil
	}
	if cap(f.counts) < blocks {
		f.counts = make([]uint64, blocks)
	}
	counts := f.counts[:blocks]
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			var c uint64
			for i := lo; i < hi; i++ {
				if pred(i) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := ScanExclusive(counts)
	if uint64(cap(f.out)) < total {
		f.out = make([]uint32, total)
	}
	out := f.out[:total]
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			pos := counts[b]
			for i := lo; i < hi; i++ {
				if pred(i) {
					out[pos] = uint32(i)
					pos++
				}
			}
		}
	})
	return out
}

// FilterIndices returns, in ascending order, all i in [0, n) satisfying
// pred, in a freshly allocated slice. Hot paths that filter repeatedly
// should hold a Filter instead.
func FilterIndices(n int, pred func(i int) bool) []uint32 {
	grain := DefaultGrain
	blocks := (n + grain - 1) / grain
	if blocks == 0 {
		return nil
	}
	counts := make([]uint64, blocks)
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			var c uint64
			for i := lo; i < hi; i++ {
				if pred(i) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := ScanExclusive(counts)
	out := make([]uint32, total)
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			pos := counts[b]
			for i := lo; i < hi; i++ {
				if pred(i) {
					out[pos] = uint32(i)
					pos++
				}
			}
		}
	})
	return out
}

// ForGrainedSpawn is the pre-pool substrate, retained as the comparison
// baseline for the `sched` experiment and the scheduler microbenchmarks: it
// spawns up to P goroutines per call and claims grains off one shared
// atomic counter. New code should use ForGrained.
func ForGrainedSpawn(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	procs := Procs()
	if procs == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if procs > chunks {
		procs = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= int64(chunks) {
					return
				}
				lo := int(c) * grain
				hi := min(lo+grain, n)
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}
