// Package parallel implements the flat parallel primitives that ConnectIt's
// algorithms are built on: dynamically scheduled parallel for loops,
// reductions, prefix sums, filters, and histograms.
//
// The paper uses a Cilk-style work-stealing scheduler; we approximate it with
// chunked dynamic self-scheduling: the iteration space is cut into grains and
// a fixed pool of goroutines (one per P) claims grains off a shared atomic
// counter. For the flat, irregular loops used by connectivity algorithms this
// provides equivalent load balance (DESIGN.md §2).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default number of iterations claimed by a worker at a
// time. It is large enough to amortize the atomic fetch-add and small enough
// to balance skewed per-iteration work (e.g. high-degree vertices).
const DefaultGrain = 1024

// Procs returns the number of workers parallel loops will use.
func Procs() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) in parallel.
func For(n int, body func(i int)) {
	ForGrained(n, DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForGrained runs body over disjoint chunks [lo, hi) covering [0, n),
// claiming chunks of size grain dynamically. It runs sequentially when the
// range is a single grain or only one P is available.
func ForGrained(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	procs := Procs()
	if procs == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if procs > chunks {
		procs = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= int64(chunks) {
					return
				}
				lo := int(c) * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ReduceAdd sums f(i) over [0, n) in parallel.
func ReduceAdd(n int, f func(i int) uint64) uint64 {
	var total atomic.Uint64
	ForGrained(n, DefaultGrain, func(lo, hi int) {
		var local uint64
		for i := lo; i < hi; i++ {
			local += f(i)
		}
		total.Add(local)
	})
	return total.Load()
}

// ReduceMax returns the maximum of f(i) over [0, n), or 0 when n == 0.
func ReduceMax(n int, f func(i int) uint64) uint64 {
	if n == 0 {
		return 0
	}
	var mu sync.Mutex
	var best uint64
	first := true
	ForGrained(n, DefaultGrain, func(lo, hi int) {
		local := f(lo)
		for i := lo + 1; i < hi; i++ {
			if v := f(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if first || local > best {
			best = local
			first = false
		}
		mu.Unlock()
	})
	return best
}

// Count returns the number of i in [0, n) for which pred(i) holds.
func Count(n int, pred func(i int) bool) uint64 {
	return ReduceAdd(n, func(i int) uint64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// ScanExclusive replaces data with its exclusive prefix sum and returns the
// total. It uses a two-pass blocked scan.
func ScanExclusive(data []uint64) uint64 {
	n := len(data)
	if n == 0 {
		return 0
	}
	grain := DefaultGrain
	blocks := (n + grain - 1) / grain
	if blocks == 1 || Procs() == 1 {
		var sum uint64
		for i := range data {
			v := data[i]
			data[i] = sum
			sum += v
		}
		return sum
	}
	blockSums := make([]uint64, blocks)
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			var sum uint64
			for i := lo; i < hi; i++ {
				sum += data[i]
			}
			blockSums[b] = sum
		}
	})
	var total uint64
	for b := 0; b < blocks; b++ {
		v := blockSums[b]
		blockSums[b] = total
		total += v
	}
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			sum := blockSums[b]
			for i := lo; i < hi; i++ {
				v := data[i]
				data[i] = sum
				sum += v
			}
		}
	})
	return total
}

// FilterIndices returns, in ascending order, all i in [0, n) satisfying pred.
func FilterIndices(n int, pred func(i int) bool) []uint32 {
	grain := DefaultGrain
	blocks := (n + grain - 1) / grain
	if blocks == 0 {
		return nil
	}
	counts := make([]uint64, blocks)
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			var c uint64
			for i := lo; i < hi; i++ {
				if pred(i) {
					c++
				}
			}
			counts[b] = c
		}
	})
	total := ScanExclusive(counts)
	out := make([]uint32, total)
	ForGrained(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*grain, min((b+1)*grain, n)
			pos := counts[b]
			for i := lo; i < hi; i++ {
				if pred(i) {
					out[pos] = uint32(i)
					pos++
				}
			}
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
