package parallel

// The persistent fork-join pool (DESIGN.md §2).
//
// The previous substrate spawned up to P goroutines per parallel call and
// funneled every worker through one shared atomic chunk counter. Both costs
// are paid on every call, and ConnectIt's hot paths are made of *many short
// calls*: Liu-Tarjan runs several flat sweeps per round, the ingest engine
// fires an apply round per coalesced group, and the union-find finish is one
// big sweep preceded and followed by small setup loops. This file replaces
// the spawn-per-call design with:
//
//   - P-1 long-lived workers parked on an epoch barrier: an atomic
//     generation counter that workers spin on briefly between jobs (so
//     back-to-back rounds never pay a wakeup) with a per-worker
//     flag-and-channel park as the blocking fallback. The calling goroutine
//     is always participant 0, so a pool job uses exactly
//     min(GOMAXPROCS, chunks) runnable goroutines and a steady-state call
//     performs zero goroutine spawns and zero heap allocations.
//   - Per-worker chunk ranges with randomized stealing: the iteration space
//     is pre-split into one contiguous chunk range per participant, each
//     claimed off a private padded cursor; a participant that exhausts its
//     range claims chunks from random victims' cursors instead. P workers
//     therefore share no cache line until load imbalance actually occurs,
//     unlike the old single shared counter that serialized every fine-grain
//     claim.
//   - Per-worker scratch (Scratch) and worker-identity loops (ForWorker,
//     Run) so kernels can keep buffers and RNG state per worker across
//     calls instead of re-allocating per chunk or serializing on a mutex.
//
// Memory-model notes (these orderings are what make the pool race-free):
//
//   - Publication: the coordinator writes the job descriptor and every
//     participant's range, then stores each participant's jobEpoch, then
//     increments the epoch. A worker acts only when the epoch it observed
//     equals its own jobEpoch, so the jobEpoch load gives it
//     happens-before on the whole descriptor, and a worker that observes
//     the epoch bump early (while a previous participant set is still
//     retiring) skips jobs it is not part of instead of racing the setup.
//   - Completion: every executed chunk decrements the outstanding count;
//     participants retire by publishing the job epoch to their done slot
//     after their last claim. The coordinator returns only after the
//     outstanding count hits zero and every participant has retired, so no
//     worker can touch a descriptor that a later call is overwriting.
//   - Parking: a worker sets its parked flag, re-checks the epoch, and only
//     then blocks on its wake channel; the waker transfers ownership of the
//     flag with a CAS before sending, so wakeups are never lost. A token
//     can still arrive for a job the worker already ran (it caught the
//     epoch itself, retired, and re-parked before the wake sweep reached
//     it); the done-epoch guard in workerLoop rejects such spurious wakes
//     so no job is ever executed twice.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers caps the pool size (and therefore Worker IDs) regardless of
// GOMAXPROCS.
const MaxWorkers = 256

// spinIters bounds the between-jobs spin phase: long enough that the next
// sweep of a round-structured algorithm finds its workers still spinning,
// short enough that an idle pool parks within tens of microseconds. With a
// single hardware thread spinning can only steal cycles from whoever has
// the work (GOMAXPROCS > NumCPU is an oversubscribed test configuration),
// so the budget collapses to a token handful of checks.
var spinIters = func() int {
	if runtime.NumCPU() == 1 {
		return 16
	}
	return 2048
}()

// Scratch is per-worker state that survives across parallel calls: grown
// buffers and a private RNG. Kernels that need richer worker-local scratch
// (edge buffers, histograms) should keep their own arrays indexed by
// Worker.ID — see ForWorker.
type Scratch struct {
	// U64 and U32 are kernel-reusable buffers; resize with GrowU64/GrowU32,
	// which keep capacity across calls.
	U64 []uint64
	U32 []uint32

	rng uint64
}

// GrowU64 returns s.U64 resized to length n, reusing capacity.
func (s *Scratch) GrowU64(n int) []uint64 {
	if cap(s.U64) < n {
		s.U64 = make([]uint64, n)
	}
	s.U64 = s.U64[:n]
	return s.U64
}

// GrowU32 returns s.U32 resized to length n, reusing capacity.
func (s *Scratch) GrowU32(n int) []uint32 {
	if cap(s.U32) < n {
		s.U32 = make([]uint32, n)
	}
	s.U32 = s.U32[:n]
	return s.U32
}

// Rand returns the next value of the worker-private xorshift RNG. It must
// only be called from the worker that owns the Scratch.
func (s *Scratch) Rand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Worker is one participant of the persistent pool. Participant 0 is
// whichever goroutine issued the parallel call; participants 1..P-1 are the
// pool's long-lived goroutines. A Worker's fields other than Scratch are
// owned by the pool.
type Worker struct {
	id      int
	Scratch Scratch

	// cur/end delimit this participant's chunk range for the current job.
	// cur sits alone on its cache line: the owner claims from it on every
	// chunk, and thieves only touch it when imbalance occurs.
	_   [64]byte
	cur atomic.Int64
	_   [56]byte
	end int64

	// jobEpoch gates participation: the worker runs job e only if
	// jobEpoch == e, which also carries happens-before on the descriptor.
	jobEpoch atomic.Uint64
	// done is the last epoch this worker fully retired from.
	done atomic.Uint64

	parked atomic.Bool
	wake   chan struct{}
}

// ID returns the worker's participant index, in [0, MaxWorkers). During one
// parallel call all executing workers have distinct IDs below the call's
// width (see Width).
func (w *Worker) ID() int { return w.id }

type jobMode int

const (
	modeRange jobMode = iota // chunked index range (For/ForGrained/ForWorker)
	modeEvery                // every participant runs the body once (Run)
)

// Stats is a snapshot of the pool's lifetime counters, for
// `cmd/connectit -v` and the `sched` experiment.
type Stats struct {
	// Calls counts parallel calls dispatched onto the pool.
	Calls uint64
	// Sequential counts calls that ran inline instead: single-proc,
	// single-chunk, or nested/contended calls (the pool was busy).
	Sequential uint64
	// Chunks counts chunks executed by pool jobs.
	Chunks uint64
	// Steals counts chunks claimed from another participant's range.
	Steals uint64
	// Wakes counts parked workers woken by a dispatch; Parks counts
	// workers that gave up spinning between jobs and blocked.
	Wakes uint64
	// Parks counts workers that parked after the spin phase found no job.
	Parks uint64
}

type pool struct {
	mu sync.Mutex // serializes dispatches; TryLock failure → inline run

	epoch atomic.Uint64
	// outstanding counts not-yet-completed chunk executions of the current
	// job; the participant that drops it to zero wakes a parked coordinator.
	outstanding atomic.Int64
	waiting     atomic.Bool
	doneCh      chan struct{}

	// Job descriptor: written by the coordinator under mu before the epoch
	// bump, read by participants gated on jobEpoch. Exactly one of
	// body/bodyI/bodyW is non-nil per job.
	mode  jobMode
	body  func(lo, hi int)
	bodyI func(i int)
	bodyW func(w *Worker, lo, hi int)
	n     int
	grain int
	width int

	workers []*Worker

	calls      atomic.Uint64
	sequential atomic.Uint64
	chunks     atomic.Uint64
	steals     atomic.Uint64
	wakes      atomic.Uint64
	parks      atomic.Uint64
}

var (
	global   *pool
	poolOnce sync.Once
)

// seqWorkers recycles Worker stand-ins for sequential fallbacks of
// ForWorker/Run (nested or contended calls, GOMAXPROCS=1), so the fallback
// path stays allocation-free in steady state too.
var seqWorkers = sync.Pool{New: func() any {
	return &Worker{Scratch: Scratch{rng: 0x9e3779b97f4a7c15}}
}}

func getPool() *pool {
	poolOnce.Do(func() {
		global = &pool{doneCh: make(chan struct{}, 1)}
		global.workers = append(global.workers, &Worker{
			id:      0,
			Scratch: Scratch{rng: 0x2545f4914f6cdd1d},
		})
	})
	return global
}

// PoolStats returns a snapshot of the pool's lifetime counters.
func PoolStats() Stats {
	p := getPool()
	return Stats{
		Calls:      p.calls.Load(),
		Sequential: p.sequential.Load(),
		Chunks:     p.chunks.Load(),
		Steals:     p.steals.Load(),
		Wakes:      p.wakes.Load(),
		Parks:      p.parks.Load(),
	}
}

// jobWidth returns the participant count for a job of the given chunk count.
func jobWidth(chunks int) int {
	w := runtime.GOMAXPROCS(0)
	if w > MaxWorkers {
		w = MaxWorkers
	}
	if w > chunks {
		w = chunks
	}
	return w
}

// Width returns the maximum number of distinct Worker IDs a ForWorker call
// over n iterations at the given grain can use right now — the size to give
// arrays indexed by Worker.ID. It is at least 1.
func Width(n, grain int) int {
	if grain <= 0 {
		grain = DefaultGrain
	}
	chunks := (n + grain - 1) / grain
	if chunks < 1 {
		chunks = 1
	}
	w := jobWidth(chunks)
	if w < 1 {
		w = 1
	}
	return w
}

// ensureWorkers grows the pool to width participants. New workers start
// with their seen-epoch equal to the current epoch, so they cannot mistake
// an old job for a new one.
func (p *pool) ensureWorkers(width int) {
	for len(p.workers) < width {
		w := &Worker{
			id:      len(p.workers),
			wake:    make(chan struct{}, 1),
			Scratch: Scratch{rng: 0x9e3779b97f4a7c15 * uint64(len(p.workers)+1)},
		}
		p.workers = append(p.workers, w)
		go p.workerLoop(w, p.epoch.Load())
	}
}

// dispatch runs one job on the pool. The caller must hold p.mu and width
// must be ≥ 2. outstanding is the number of finish() completions the job
// produces (chunks for modeRange, width for modeEvery).
func (p *pool) dispatch(width int, chunks int64, outstanding int64) {
	p.ensureWorkers(width)
	p.width = width
	// Split [0, chunks) into one contiguous range per participant. For
	// modeEvery, chunks == 0 and every range is empty.
	for k := 0; k < width; k++ {
		w := p.workers[k]
		w.cur.Store(chunks * int64(k) / int64(width))
		w.end = chunks * int64(k+1) / int64(width)
	}
	p.outstanding.Store(outstanding)
	e := p.epoch.Load() + 1
	for k := 1; k < width; k++ {
		p.workers[k].jobEpoch.Store(e)
	}
	p.epoch.Store(e)
	// Wake parked participants; spinning ones notice the epoch themselves.
	// A participant that already retired from this job (it caught the epoch
	// during its park/recheck window, ran, and re-parked before this sweep
	// reached it) is skipped; the workerLoop done guard covers the race
	// where it retires between the check and the CAS.
	for k := 1; k < width; k++ {
		w := p.workers[k]
		if w.done.Load() != e && w.parked.CompareAndSwap(true, false) {
			p.wakes.Add(1)
			w.wake <- struct{}{}
		}
	}
	p.calls.Add(1)
	// The caller is participant 0.
	p.work(p.workers[0])
	p.await(e, width)
	// Drop body references so the pool does not retain caller memory
	// between calls. Every participant has retired (await), so nothing
	// reads the descriptor anymore.
	p.body = nil
	p.bodyI = nil
	p.bodyW = nil
}

// work claims and executes chunks: first the participant's own range, then
// random victims' ranges until no claimable chunk remains.
func (p *pool) work(w *Worker) {
	if p.mode == modeEvery {
		p.bodyW(w, 0, 0)
		p.finish(1)
		return
	}
	executed := uint64(0)
	for {
		c := w.cur.Add(1) - 1
		if c >= w.end {
			break
		}
		p.runChunk(w, c)
		executed++
	}
	// Steal phase. A failed full scan means every chunk is claimed (the
	// remaining ones are mid-execution elsewhere): nothing left to do.
	width := p.width
	if width > 1 {
		for p.outstanding.Load() > 0 {
			found := false
			off := int(w.Scratch.Rand() % uint64(width))
			for i := 0; i < width; i++ {
				v := p.workers[(off+i)%width]
				if v == w || v.cur.Load() >= v.end {
					continue
				}
				if c := v.cur.Add(1) - 1; c < v.end {
					p.steals.Add(1)
					p.runChunk(w, c)
					executed++
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
	}
	if executed > 0 {
		p.chunks.Add(executed)
	}
}

func (p *pool) runChunk(w *Worker, c int64) {
	lo := int(c) * p.grain
	hi := lo + p.grain
	if hi > p.n {
		hi = p.n
	}
	switch {
	case p.body != nil:
		p.body(lo, hi)
	case p.bodyI != nil:
		for i := lo; i < hi; i++ {
			p.bodyI(i)
		}
	default:
		p.bodyW(w, lo, hi)
	}
	p.finish(1)
}

// finish retires k chunk executions, waking a parked coordinator at zero.
func (p *pool) finish(k int64) {
	if p.outstanding.Add(-k) == 0 {
		if p.waiting.CompareAndSwap(true, false) {
			p.doneCh <- struct{}{}
		}
	}
}

// await blocks the coordinator until the job is fully complete: all chunks
// executed and every participant retired from the descriptor.
func (p *pool) await(e uint64, width int) {
	if p.outstanding.Load() != 0 {
		spun := false
		for i := 0; i < spinIters; i++ {
			if p.outstanding.Load() == 0 {
				spun = true
				break
			}
			if i&63 == 63 {
				runtime.Gosched()
			}
		}
		if !spun {
			p.waiting.Store(true)
			if p.outstanding.Load() == 0 {
				// The job finished between the check and the flag; reclaim
				// the flag or consume the token the finisher sent.
				if !p.waiting.CompareAndSwap(true, false) {
					<-p.doneCh
				}
			} else {
				<-p.doneCh
			}
		}
	}
	// Participants retire almost immediately after the last chunk; this
	// wait is what licenses the next dispatch to overwrite the descriptor.
	for k := 1; k < width; k++ {
		w := p.workers[k]
		for w.done.Load() != e {
			runtime.Gosched()
		}
	}
}

// workerLoop is the body of participants 1..P-1: wait for an epoch bump,
// run the job if this worker is in its participant set, retire, repeat.
func (p *pool) workerLoop(w *Worker, seen uint64) {
	for {
		e := p.waitEpoch(w, seen)
		seen = e
		// The done check rejects spurious wakes: a worker that catches the
		// epoch during its own park/recheck window, finishes the job, and
		// re-parks before the dispatch's wake sweep reaches it receives a
		// token for the job it already retired from. Re-running it would
		// double-execute chunks; the guard turns the stale token into a
		// harmless extra loop iteration.
		if w.jobEpoch.Load() == e && w.done.Load() != e {
			p.work(w)
			w.done.Store(e)
		}
	}
}

// waitEpoch spins until the epoch moves past seen, parking after the spin
// budget. The parked flag is handed over by CAS, so a wake token is sent
// iff the worker will consume it.
func (p *pool) waitEpoch(w *Worker, seen uint64) uint64 {
	for i := 0; i < spinIters; i++ {
		if e := p.epoch.Load(); e != seen {
			return e
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	p.parks.Add(1)
	w.parked.Store(true)
	if e := p.epoch.Load(); e != seen {
		if w.parked.CompareAndSwap(true, false) {
			return e
		}
		// A waker claimed the flag first and owes us a token.
		<-w.wake
		return p.epoch.Load()
	}
	<-w.wake
	return p.epoch.Load()
}

// forGrained is the shared dispatcher behind For/ForGrained/ForWorker.
// Exactly one of body/bodyI/bodyW is non-nil. widthCap, when positive,
// bounds the participant count (ForWorkerSized's worker-ID guarantee).
func forGrained(n, grain, widthCap int, body func(lo, hi int), bodyI func(i int), bodyW func(w *Worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	chunks := (n + grain - 1) / grain
	width := jobWidth(chunks)
	if widthCap > 0 && width > widthCap {
		width = widthCap
	}
	p := getPool()
	if width <= 1 || !p.mu.TryLock() {
		// Single-proc, single-chunk, nested (a body running on this pool
		// issued a parallel call), or contended (another goroutine's call
		// holds the pool): run inline on this goroutine. Nested calls MUST
		// take this path — blocking on mu from inside a job would deadlock
		// the pool against itself.
		p.sequential.Add(1)
		switch {
		case body != nil:
			body(0, n)
		case bodyI != nil:
			for i := 0; i < n; i++ {
				bodyI(i)
			}
		default:
			w := seqWorkers.Get().(*Worker)
			bodyW(w, 0, n)
			seqWorkers.Put(w)
		}
		return
	}
	defer p.mu.Unlock()
	p.mode = modeRange
	p.body = body
	p.bodyI = bodyI
	p.bodyW = bodyW
	p.n = n
	p.grain = grain
	p.dispatch(width, int64(chunks), int64(chunks))
}

// Run executes fn once per participant, concurrently: the calling goroutine
// runs fn(worker 0) and each pool worker k < width runs fn(worker k). It is
// the escape hatch for kernels that want explicit worker-local accumulation
// with scratch that persists across calls. When the pool is unavailable
// (GOMAXPROCS=1, nested, or contended) fn runs once, sequentially, on a
// recycled stand-in worker.
func Run(fn func(w *Worker)) {
	p := getPool()
	width := jobWidth(MaxWorkers)
	if width <= 1 || !p.mu.TryLock() {
		p.sequential.Add(1)
		w := seqWorkers.Get().(*Worker)
		fn(w)
		seqWorkers.Put(w)
		return
	}
	defer p.mu.Unlock()
	p.mode = modeEvery
	p.body = nil
	p.bodyI = nil
	p.bodyW = func(w *Worker, _, _ int) { fn(w) }
	p.n = 0
	p.grain = 1
	p.dispatch(width, 0, int64(width))
}
