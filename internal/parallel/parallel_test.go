package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 100_000} {
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
		})
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

func TestForGrainedChunksPartitionRange(t *testing.T) {
	const n = 12345
	var total atomic.Int64
	ForGrained(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != n {
		t.Fatalf("chunks cover %d iterations, want %d", total.Load(), n)
	}
}

func TestReduceAdd(t *testing.T) {
	const n = 50_000
	got := ReduceAdd(n, func(i int) uint64 { return uint64(i) })
	want := uint64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("ReduceAdd = %d, want %d", got, want)
	}
}

func TestReduceMax(t *testing.T) {
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	got := ReduceMax(len(vals), func(i int) uint64 { return vals[i] })
	if got != 9 {
		t.Fatalf("ReduceMax = %d, want 9", got)
	}
	if ReduceMax(0, nil) != 0 {
		t.Fatal("ReduceMax(0) should be 0")
	}
}

func TestCount(t *testing.T) {
	got := Count(1000, func(i int) bool { return i%3 == 0 })
	if got != 334 {
		t.Fatalf("Count = %d, want 334", got)
	}
}

func TestScanExclusiveMatchesSequential(t *testing.T) {
	f := func(vals []uint16) bool {
		data := make([]uint64, len(vals))
		seq := make([]uint64, len(vals))
		var sum uint64
		for i, v := range vals {
			data[i] = uint64(v)
			seq[i] = sum
			sum += uint64(v)
		}
		total := ScanExclusive(data)
		if total != sum {
			return false
		}
		for i := range data {
			if data[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScanExclusiveLarge(t *testing.T) {
	const n = 100_000
	data := make([]uint64, n)
	for i := range data {
		data[i] = 1
	}
	total := ScanExclusive(data)
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for i := range data {
		if data[i] != uint64(i) {
			t.Fatalf("data[%d] = %d, want %d", i, data[i], i)
		}
	}
}

func TestFilterIndices(t *testing.T) {
	got := FilterIndices(20, func(i int) bool { return i%4 == 0 })
	want := []uint32{0, 4, 8, 12, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFilterIndicesLargeOrdered(t *testing.T) {
	const n = 250_000
	got := FilterIndices(n, func(i int) bool { return i%7 == 0 })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("indices not strictly ascending at %d", i)
		}
	}
	if len(got) != (n+6)/7 {
		t.Fatalf("len = %d, want %d", len(got), (n+6)/7)
	}
}
