// Package unionfind implements every concurrent union-find variant in the
// ConnectIt framework (§3.3.1 of the paper):
//
//   - Union-Async: the classic asynchronous algorithm of Jayanti and Tarjan,
//     linking larger-ID roots under smaller-ID roots with CAS.
//   - Union-Hooks: Union-Async with the CAS performed on an auxiliary hooks
//     array followed by an uncontended write to the parents array.
//   - Union-Early: eagerly walks both paths together and hooks a vertex as
//     soon as it is discovered to be a root (GBBS unite_early).
//   - Union-Rem-CAS: a lock-free compare-and-swap version of Rem's algorithm
//     with a configurable splice rule (SplitAtomicOne, HalveAtomicOne, or
//     SpliceAtomic).
//   - Union-Rem-Lock: the lock-based Rem's algorithm of Patwary et al.
//   - Union-JTB: the randomized algorithm of Jayanti, Tarjan, and
//     Boix-Adserà with two-try splitting.
//
// Each union variant composes with a path-compression rule applied during
// finds: FindNaive (none), FindSplit (path splitting), FindHalve (path
// halving), FindCompress (full path compression), and, for Union-JTB,
// FindTwoTrySplit.
//
// All variants are min-based and linearizably monotone for concurrent unions
// and finds, except Rem's algorithms with SpliceAtomic, which are only
// phase-concurrent (unions and finds must be separated by a barrier;
// Theorem 3). The combination Rem + SpliceAtomic + FindCompress is incorrect
// (the paper's counter-example, §B.2.3) and is rejected by New.
package unionfind

import (
	"errors"
	"fmt"
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/parallel"
)

// UnionOption selects the union rule.
type UnionOption int

// The union rules from §3.3.1.
const (
	UnionAsync UnionOption = iota
	UnionHooks
	UnionEarly
	UnionRemCAS
	UnionRemLock
	UnionJTB
)

func (u UnionOption) String() string {
	switch u {
	case UnionAsync:
		return "Union-Async"
	case UnionHooks:
		return "Union-Hooks"
	case UnionEarly:
		return "Union-Early"
	case UnionRemCAS:
		return "Union-Rem-CAS"
	case UnionRemLock:
		return "Union-Rem-Lock"
	case UnionJTB:
		return "Union-JTB"
	}
	return fmt.Sprintf("UnionOption(%d)", int(u))
}

// FindOption selects the path-compression rule applied by finds.
type FindOption int

// The find rules from Algorithm 8 (and two-try splitting from [59]).
const (
	FindNaive FindOption = iota
	FindSplit
	FindHalve
	FindCompress
	FindTwoTrySplit
)

func (f FindOption) String() string {
	switch f {
	case FindNaive:
		return "FindNaive"
	case FindSplit:
		return "FindSplit"
	case FindHalve:
		return "FindHalve"
	case FindCompress:
		return "FindCompress"
	case FindTwoTrySplit:
		return "FindTwoTrySplit"
	}
	return fmt.Sprintf("FindOption(%d)", int(f))
}

// SpliceOption selects the rule Rem's algorithms apply when a union step
// operates at a non-root vertex (Algorithm 9).
type SpliceOption int

// The splice rules for Rem's algorithms.
const (
	SplitAtomicOne SpliceOption = iota
	HalveAtomicOne
	SpliceAtomic
)

func (s SpliceOption) String() string {
	switch s {
	case SplitAtomicOne:
		return "SplitAtomicOne"
	case HalveAtomicOne:
		return "HalveAtomicOne"
	case SpliceAtomic:
		return "SpliceAtomic"
	}
	return fmt.Sprintf("SpliceOption(%d)", int(s))
}

// Options configures a DSU instance.
type Options struct {
	Union  UnionOption
	Find   FindOption
	Splice SpliceOption // used by Rem's algorithms only

	// RecordWitness enables spanning-forest support: the edge supplied to
	// UnionWitness that wins the hook of root r is recorded for r.
	RecordWitness bool

	// WitnessLog additionally appends every winning witness edge to a
	// preallocated log readable incrementally with WitnessLogRead. This is
	// the streaming spanning-forest path (DESIGN.md §12): appends are a
	// fetch-add plus an atomic store, so capture stays allocation-free and
	// wait-free on the union hot path.
	WitnessLog bool

	// Stats, when non-nil, receives path-length and memory-operation
	// instrumentation (the paper's TPL/MPL analysis, §4.1.1).
	Stats *Stats

	// Seed seeds Union-JTB's random priorities.
	Seed uint64
}

// ErrInvalidCombination is returned by New for the algorithm combinations
// the paper proves incorrect or does not define.
var ErrInvalidCombination = errors.New("unionfind: invalid algorithm combination")

// NoWitness is the sentinel stored in the witness array for roots that were
// never hooked.
const NoWitness = ^uint64(0)

// noVertex is the sentinel used in the hooks array.
const noVertex = ^uint32(0)

// DSU is a concurrent disjoint-set (union-find) structure over vertices
// 0..n-1. All methods are safe for concurrent use, subject to the
// phase-concurrency restriction for Rem + SpliceAtomic documented above.
type DSU struct {
	parent  []uint32
	hooks   []uint32              // Union-Hooks auxiliary array
	locks   []concurrent.Spinlock // Union-Rem-Lock per-vertex locks
	prio    []uint32              // Union-JTB random priorities
	witness []uint64              // packed (u,v) edge that hooked each root
	wlog    []uint64              // append-only log of winning witness edges
	wcur    atomic.Int64          // wlog reservation cursor
	opt     Options
	stats   *Stats
}

// Validate reports whether opt is a combination the framework defines,
// returning ErrInvalidCombination for Rem + SpliceAtomic + FindCompress
// (incorrect, §B.2.3), FindTwoTrySplit with a non-JTB union, JTB with a find
// rule other than FindNaive or FindTwoTrySplit, and witness recording
// (spanning forest) with Rem + SpliceAtomic.
func Validate(opt Options) error {
	isRem := opt.Union == UnionRemCAS || opt.Union == UnionRemLock
	if isRem && opt.Splice == SpliceAtomic && opt.Find == FindCompress {
		return fmt.Errorf("%w: %v with SpliceAtomic and FindCompress", ErrInvalidCombination, opt.Union)
	}
	if opt.Find == FindTwoTrySplit && opt.Union != UnionJTB {
		return fmt.Errorf("%w: FindTwoTrySplit requires Union-JTB", ErrInvalidCombination)
	}
	if opt.Union == UnionJTB && opt.Find != FindNaive && opt.Find != FindTwoTrySplit {
		return fmt.Errorf("%w: Union-JTB supports FindNaive or FindTwoTrySplit", ErrInvalidCombination)
	}
	if isRem && opt.Splice == SpliceAtomic && (opt.RecordWitness || opt.WitnessLog) {
		// SpliceAtomic re-parents vertices across trees mid-union, so the
		// hooked root need not be the root of the witness edge's endpoint
		// and the recorded edges can form cycles. Spanning forest therefore
		// excludes this combination (see DESIGN.md §4).
		return fmt.Errorf("%w: spanning forest (RecordWitness) with %v and SpliceAtomic", ErrInvalidCombination, opt.Union)
	}
	return nil
}

// New creates a DSU with n singleton sets. It returns
// ErrInvalidCombination for the combinations Validate rejects.
func New(n int, opt Options) (*DSU, error) {
	if err := Validate(opt); err != nil {
		return nil, err
	}
	d := &DSU{
		parent: make([]uint32, n),
		opt:    opt,
		stats:  opt.Stats,
	}
	parallel.For(n, func(i int) { d.parent[i] = uint32(i) })
	d.initAux(n)
	return d, nil
}

// initAux (re)initializes the auxiliary arrays for n elements, reusing
// prior allocations when the size already matches.
func (d *DSU) initAux(n int) {
	switch d.opt.Union {
	case UnionHooks:
		if len(d.hooks) != n {
			d.hooks = make([]uint32, n)
		}
		parallel.For(n, func(i int) { d.hooks[i] = noVertex })
	case UnionRemLock:
		// Spinlocks are all released at quiescence, so an existing array is
		// reusable as-is.
		if len(d.locks) != n {
			d.locks = make([]concurrent.Spinlock, n)
		}
	case UnionJTB:
		// Priorities depend only on (index, seed); recompute only on resize.
		if len(d.prio) != n {
			d.prio = make([]uint32, n)
			seed := d.opt.Seed
			parallel.For(n, func(i int) {
				d.prio[i] = uint32(hash64(uint64(i) ^ seed))
			})
		}
	}
	if d.opt.RecordWitness {
		if len(d.witness) != n {
			d.witness = make([]uint64, n)
		}
		parallel.For(n, func(i int) { d.witness[i] = NoWitness })
	}
	if d.opt.WitnessLog {
		// n slots always suffice: every log append corresponds to a root
		// being hooked, and each of the n vertices stops being a root at
		// most once over the whole execution.
		if len(d.wlog) != n {
			d.wlog = make([]uint64, n)
		}
		parallel.For(n, func(i int) { d.wlog[i] = NoWitness })
		d.wcur.Store(0)
	}
}

// Reset re-adopts labels as the parent array (with NewFromLabels' canonical
// star-form precondition) and clears all per-run auxiliary state, reusing
// prior allocations when sizes match. It is the reuse path behind
// core.Compile: a compiled Solver calls Reset instead of paying New's
// validation and allocations on every run. The DSU shares the labels slice.
// It must be called quiescently (no concurrent operations).
func (d *DSU) Reset(labels []uint32) {
	d.parent = labels
	d.initAux(len(labels))
}

// MustNew is New for known-valid combinations; it panics on error.
func MustNew(n int, opt Options) *DSU {
	d, err := New(n, opt)
	if err != nil {
		panic(err)
	}
	return d
}

// NewFromLabels creates a DSU that adopts an existing partial connectivity
// labeling (the output of a sampling phase). labels must be in canonical
// star form — labels[v] == v, or labels[v] == r with labels[r] == r and
// r == min of the star — which sample.Canonicalize guarantees; the
// decreasing-parent invariant that Rem's algorithms and FindCompress rely
// on then holds from the start (DESIGN.md §4). The DSU shares the labels
// slice.
func NewFromLabels(labels []uint32, opt Options) (*DSU, error) {
	d, err := New(len(labels), opt)
	if err != nil {
		return nil, err
	}
	d.parent = labels
	return d, nil
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Options returns the configuration the DSU was created with.
func (d *DSU) Options() Options { return d.opt }

// Parents exposes the underlying parent array. Callers must use atomic
// operations if the DSU is in concurrent use.
func (d *DSU) Parents() []uint32 { return d.parent }

// Union merges the sets containing u and v.
func (d *DSU) Union(u, v uint32) { d.unite(u, v, NoWitness) }

// UnionWitness merges the sets containing u and v, attributing the winning
// hook to edge (eu, ev) when witness recording is enabled.
func (d *DSU) UnionWitness(u, v, eu, ev uint32) {
	d.unite(u, v, concurrent.Pack(eu, ev))
}

// Find returns the current label (root) of u, applying the configured
// path-compression rule.
func (d *DSU) Find(u uint32) uint32 {
	switch d.opt.Find {
	case FindNaive:
		return d.findNaive(u)
	case FindSplit:
		return d.findSplit(u)
	case FindHalve:
		return d.findHalve(u)
	case FindCompress:
		return d.findCompress(u)
	case FindTwoTrySplit:
		return d.findTwoTrySplit(u)
	}
	return d.findNaive(u)
}

// SameSet reports whether u and v currently belong to the same set. It is
// wait-free for all variants except Rem + SpliceAtomic (phase-concurrent).
func (d *DSU) SameSet(u, v uint32) bool {
	ru, rv := d.Find(u), d.Find(v)
	for ru != rv {
		// Roots may have moved concurrently; re-check until stable.
		pru := atomic.LoadUint32(&d.parent[ru])
		prv := atomic.LoadUint32(&d.parent[rv])
		if pru == ru && prv == rv {
			return false
		}
		ru, rv = d.Find(pru), d.Find(prv)
	}
	return true
}

// Flatten fully compresses every path so that parent[v] is the root of v's
// tree. It must be called quiescently (no concurrent unions).
func (d *DSU) Flatten() {
	n := len(d.parent)
	parallel.For(n, func(i int) {
		r := uint32(i)
		for {
			p := atomic.LoadUint32(&d.parent[r])
			if p == r {
				break
			}
			r = p
		}
		atomic.StoreUint32(&d.parent[i], r)
	})
}

// Labels flattens the structure and returns the parent array as a
// connectivity labeling.
func (d *DSU) Labels() []uint32 {
	d.Flatten()
	return d.parent
}

// NumComponents flattens and counts the distinct sets.
func (d *DSU) NumComponents() int {
	d.Flatten()
	return int(parallel.Count(len(d.parent), func(i int) bool {
		return d.parent[i] == uint32(i)
	}))
}

// Witness returns the packed edge recorded as hooking root v, and whether
// one was recorded. Unpack with concurrent.Unpack.
func (d *DSU) Witness(v uint32) (uint64, bool) {
	if d.witness == nil {
		return NoWitness, false
	}
	w := atomic.LoadUint64(&d.witness[v])
	return w, w != NoWitness
}

// WitnessEdges appends every recorded witness edge to dst and returns it.
// Used by the spanning-forest framework (Algorithm 2).
func (d *DSU) WitnessEdges(dst [][2]uint32) [][2]uint32 {
	if d.witness == nil {
		return dst
	}
	for v := range d.witness {
		if w := d.witness[v]; w != NoWitness {
			u, x := concurrent.Unpack(w)
			dst = append(dst, [2]uint32{u, x})
		}
	}
	return dst
}

// recordWitness stores the hooking edge for root r. Each root is hooked at
// most once across the entire execution, so a plain atomic store suffices
// for the per-root slot; log appends reserve a slot with a fetch-add and
// publish it with an atomic store (readers treat a still-sentinel slot as
// the current end of the log and resume there later).
func (d *DSU) recordWitness(r uint32, w uint64) {
	if w == NoWitness {
		return
	}
	if d.witness != nil {
		atomic.StoreUint64(&d.witness[r], w)
	}
	if d.wlog != nil {
		i := d.wcur.Add(1) - 1
		atomic.StoreUint64(&d.wlog[i], w)
	}
}

// EnableWitnessLog switches on witness-log capture for a DSU constructed
// without Options.WitnessLog. It must be called quiescently before any
// unions, and never for Rem + SpliceAtomic (the combination Validate
// rejects for witness recording).
func (d *DSU) EnableWitnessLog() {
	d.opt.WitnessLog = true
	n := len(d.parent)
	if len(d.wlog) != n {
		d.wlog = make([]uint64, n)
	}
	parallel.For(n, func(i int) { d.wlog[i] = NoWitness })
	d.wcur.Store(0)
}

// DisableWitnessLog releases the witness log. Must be called quiescently.
func (d *DSU) DisableWitnessLog() {
	d.opt.WitnessLog = false
	d.wlog = nil
	d.wcur.Store(0)
}

// WitnessLogLen returns the number of log slots reserved so far. Some of
// the most recent slots may still be unpublished; the value is exact at
// quiescence and a (momentary) upper bound under concurrent unions.
func (d *DSU) WitnessLogLen() int { return int(d.wcur.Load()) }

// WitnessLogRead copies packed witness edges (unpack with concurrent.Unpack)
// from the append-only log starting at cursor into dst, returning the new
// cursor and the number of edges copied. It is wait-free and safe to call
// concurrently with unions: a slot that has been reserved but not yet
// published reads as the sentinel, and the scan stops there — the caller
// resumes from the returned cursor on a later call. Edges never move once
// published, so successive reads observe a strictly growing prefix.
func (d *DSU) WitnessLogRead(cursor int, dst []uint64) (int, int) {
	if d.wlog == nil {
		return cursor, 0
	}
	limit := int(d.wcur.Load())
	if len(d.wlog) < limit {
		limit = len(d.wlog)
	}
	if m := cursor + len(dst); m < limit {
		limit = m
	}
	n := 0
	for i := cursor; i < limit; i++ {
		w := atomic.LoadUint64(&d.wlog[i])
		if w == NoWitness {
			break
		}
		dst[n] = w
		n++
	}
	return cursor + n, n
}

// jtbLess orders roots by (priority, id) for Union-JTB's randomized linking.
func (d *DSU) jtbLess(a, b uint32) bool {
	pa, pb := d.prio[a], d.prio[b]
	if pa != pb {
		return pa < pb
	}
	return a < b
}

func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
