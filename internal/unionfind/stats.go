package unionfind

import (
	"sync/atomic"
	"unsafe"
)

// Stats collects the path-length instrumentation the paper uses to analyze
// union-find variants (§4.1.1): the Total Path Length (TPL) summed over all
// operations, the Max Path Length (MPL) observed by any single operation,
// and operation counts. Memory operations (parent-array loads/CASes) are
// proportional to path steps, so TPL doubles as the paper's memory-traffic
// proxy (DESIGN.md §2).
//
// Counters are sharded across padded cache lines to keep the
// instrumentation overhead in the paper's reported 10-20% range rather than
// serializing all workers on one contended line. All methods are safe for
// concurrent use and safe on a nil receiver, so instrumentation can be
// compiled in unconditionally and enabled per run.
type Stats struct {
	shards [statsShards]statsShard
	mpl    atomic.Uint64
}

// statsShards is a power of two covering typical core counts.
const statsShards = 64

// statsShard occupies its own cache line.
type statsShard struct {
	tpl    atomic.Uint64
	unions atomic.Uint64
	finds  atomic.Uint64
	_      [40]byte
}

// shardHint mixes a per-call value with the caller's stack address so
// concurrent workers spread across lines even when the per-call values are
// skewed (power-law graphs funnel most operations through hub vertex IDs).
func shardHint(x int) int {
	var probe byte
	h := uintptr(unsafe.Pointer(&probe))
	return (x*0x9e3779b1 ^ int(h>>10)) & (statsShards - 1)
}

// observe records a completed path traversal of the given length. hint
// (typically the operand vertex) selects the counter shard.
func (s *Stats) observe(hint, steps int) {
	if s == nil || steps == 0 {
		return
	}
	s.shards[shardHint(hint)].tpl.Add(uint64(steps))
	for {
		cur := s.mpl.Load()
		if uint64(steps) <= cur {
			return
		}
		if s.mpl.CompareAndSwap(cur, uint64(steps)) {
			return
		}
	}
}

func (s *Stats) addUnion(hint int) {
	if s != nil {
		s.shards[shardHint(hint)].unions.Add(1)
	}
}

// AddFind records a find operation (used by the streaming query path).
func (s *Stats) AddFind() {
	if s != nil {
		s.shards[0].finds.Add(1)
	}
}

// TotalPathLength returns the TPL.
func (s *Stats) TotalPathLength() uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for i := range s.shards {
		sum += s.shards[i].tpl.Load()
	}
	return sum
}

// MaxPathLength returns the MPL.
func (s *Stats) MaxPathLength() uint64 {
	if s == nil {
		return 0
	}
	return s.mpl.Load()
}

// Unions returns the number of union operations issued.
func (s *Stats) Unions() uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for i := range s.shards {
		sum += s.shards[i].unions.Load()
	}
	return sum
}

// Finds returns the number of find operations recorded via AddFind.
func (s *Stats) Finds() uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for i := range s.shards {
		sum += s.shards[i].finds.Load()
	}
	return sum
}

// Reset clears all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for i := range s.shards {
		s.shards[i].tpl.Store(0)
		s.shards[i].unions.Store(0)
		s.shards[i].finds.Store(0)
	}
	s.mpl.Store(0)
}
