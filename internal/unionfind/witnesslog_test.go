package unionfind

import (
	"errors"
	"sync"
	"testing"

	"connectit/internal/concurrent"
)

// TestWitnessLogSpanningForest drives concurrent UnionWitness traffic
// through every witness-capable variant with the log enabled and checks the
// streaming forest contract at quiescence: the log holds exactly
// n - #components edges, every one was inserted, and they form a forest
// spanning the same partition as the DSU.
func TestWitnessLogSpanningForest(t *testing.T) {
	const n = 1 << 10
	edges := make([][2]uint32, 0, 4*n)
	rng := uint64(99)
	for i := 0; i < 4*n; i++ {
		rng = hash64(rng)
		u := uint32(rng % n)
		rng = hash64(rng + 1)
		v := uint32(rng % n)
		if u == v {
			v = (v + 1) % n
		}
		edges = append(edges, [2]uint32{u, v})
	}
	inSet := make(map[[2]uint32]bool)
	for _, e := range edges {
		u, v := e[0], e[1]
		if v < u {
			u, v = v, u
		}
		inSet[[2]uint32{u, v}] = true
	}

	for _, v := range ForestVariants() {
		t.Run(v.Name(), func(t *testing.T) {
			d := MustNew(n, Options{Union: v.Union, Find: v.Find, Splice: v.Splice, WitnessLog: true})
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(edges); i += workers {
						d.UnionWitness(edges[i][0], edges[i][1], edges[i][0], edges[i][1])
					}
				}(w)
			}
			wg.Wait()

			comps := d.NumComponents()
			if got := d.WitnessLogLen(); got != n-comps {
				t.Fatalf("log length = %d, want n - #components = %d", got, n-comps)
			}
			buf := make([]uint64, n)
			cursor, k := d.WitnessLogRead(0, buf)
			if cursor != n-comps || k != n-comps {
				t.Fatalf("WitnessLogRead(0) = (%d, %d), want (%d, %d)", cursor, k, n-comps, n-comps)
			}
			check := MustNew(n, Options{Union: UnionAsync, Find: FindCompress})
			for _, w := range buf[:k] {
				eu, ev := concurrent.Unpack(w)
				a, b := eu, ev
				if b < a {
					a, b = b, a
				}
				if !inSet[[2]uint32{a, b}] {
					t.Fatalf("log edge {%d,%d} was never inserted", eu, ev)
				}
				if check.SameSet(eu, ev) {
					t.Fatalf("log edge {%d,%d} closes a cycle", eu, ev)
				}
				check.Union(eu, ev)
			}
			for u := uint32(1); u < n; u++ {
				if check.SameSet(u-1, u) != d.SameSet(u-1, u) {
					t.Fatalf("forest partition disagrees with DSU at (%d,%d)", u-1, u)
				}
			}
		})
	}
}

// TestWitnessLogRejectsSplice: SpliceAtomic re-parents across trees
// mid-union, so witness capture (either flavor) is an invalid combination.
func TestWitnessLogRejectsSplice(t *testing.T) {
	for _, u := range []UnionOption{UnionRemCAS, UnionRemLock} {
		if _, err := New(8, Options{Union: u, Find: FindNaive, Splice: SpliceAtomic, WitnessLog: true}); !errors.Is(err, ErrInvalidCombination) {
			t.Fatalf("%v + SpliceAtomic + WitnessLog: err = %v, want ErrInvalidCombination", u, err)
		}
	}
}

// TestWitnessLogIncrementalRead reads the log in small chunks interleaved
// with more unions: the cursor protocol must observe a strictly growing
// prefix and deliver every edge exactly once.
func TestWitnessLogIncrementalRead(t *testing.T) {
	const n = 512
	d := MustNew(n, Options{Union: UnionRemCAS, Find: FindNaive, Splice: SplitAtomicOne, WitnessLog: true})
	seen := 0
	cursor := 0
	var buf [7]uint64
	for v := uint32(1); v < n; v++ {
		d.UnionWitness(v-1, v, v-1, v)
		for {
			next, k := d.WitnessLogRead(cursor, buf[:])
			cursor = next
			seen += k
			if k < len(buf) {
				break
			}
		}
	}
	if seen != n-1 {
		t.Fatalf("incremental reads delivered %d edges, want %d", seen, n-1)
	}
	if cursor != n-1 {
		t.Fatalf("cursor = %d, want %d", cursor, n-1)
	}
}

// TestWitnessLogAppendAllocs: the log is preallocated (n slots always
// suffice), so the capture path performs zero heap allocations.
func TestWitnessLogAppendAllocs(t *testing.T) {
	const n = 1 << 16
	d := MustNew(n, Options{Union: UnionRemCAS, Find: FindNaive, Splice: SplitAtomicOne, WitnessLog: true})
	v := uint32(1)
	allocs := testing.AllocsPerRun(n/2, func() {
		d.UnionWitness(v-1, v, v-1, v)
		v++
	})
	if allocs != 0 {
		t.Fatalf("UnionWitness with log enabled allocates %.1f allocs/op, want 0", allocs)
	}
}
