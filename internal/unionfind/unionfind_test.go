package unionfind

import (
	"testing"
	"testing/quick"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// seqDSU is a trivial sequential union-find used as the test oracle.
type seqDSU struct{ p []int }

func newSeqDSU(n int) *seqDSU {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &seqDSU{p}
}

func (s *seqDSU) find(x int) int {
	for s.p[x] != x {
		s.p[x] = s.p[s.p[x]]
		x = s.p[x]
	}
	return x
}

func (s *seqDSU) union(a, b int) { s.p[s.find(a)] = s.find(b) }

// roots snapshots the oracle's root for every element; the result is
// read-only and safe to share across parallel subtests.
func (s *seqDSU) roots() []int {
	out := make([]int, len(s.p))
	for i := range out {
		out[i] = s.find(i)
	}
	return out
}

// sameSets checks that labels and the oracle roots induce identical
// partitions.
func sameSets(t *testing.T, name string, labels []uint32, oracleRoots []int) {
	t.Helper()
	// map oracle root -> label, must be a bijection on occupied roots.
	fwd := make(map[int]uint32)
	rev := make(map[uint32]int)
	for v := range labels {
		r := oracleRoots[v]
		if l, ok := fwd[r]; ok {
			if l != labels[v] {
				t.Fatalf("%s: vertices in same oracle set have labels %d and %d", name, l, labels[v])
			}
		} else {
			fwd[r] = labels[v]
		}
		if rr, ok := rev[labels[v]]; ok {
			if rr != r {
				t.Fatalf("%s: label %d spans two oracle sets", name, labels[v])
			}
		} else {
			rev[labels[v]] = r
		}
	}
}

func testEdges(n, m int, seed uint64) [][2]uint32 {
	edges := make([][2]uint32, m)
	for i := range edges {
		h := graph.Hash64(uint64(i)*2 + seed)
		edges[i] = [2]uint32{uint32(h % uint64(n)), uint32(graph.Hash64(h) % uint64(n))}
	}
	return edges
}

func TestAllVariantsMatchOracleParallel(t *testing.T) {
	const n = 2000
	const m = 6000
	edges := testEdges(n, m, 99)
	oracle := newSeqDSU(n)
	for _, e := range edges {
		oracle.union(int(e[0]), int(e[1]))
	}
	oracleRoots := oracle.roots()
	for _, v := range Variants() {
		v := v
		t.Run(v.Name(), func(t *testing.T) {
			t.Parallel()
			d := MustNew(n, v.Options())
			if v.Union == UnionRemCAS || v.Union == UnionRemLock {
				// Phase-concurrent: unions only, then flatten.
				parallel.For(m, func(i int) { d.Union(edges[i][0], edges[i][1]) })
			} else {
				// Fully concurrent unions and finds mixed.
				parallel.For(m, func(i int) {
					d.Union(edges[i][0], edges[i][1])
					d.Find(edges[i][0])
				})
			}
			sameSets(t, v.Name(), d.Labels(), oracleRoots)
		})
	}
}

func TestSingleUnionAllVariants(t *testing.T) {
	for _, v := range Variants() {
		d := MustNew(4, v.Options())
		d.Union(0, 1)
		d.Union(2, 3)
		if !d.SameSet(0, 1) || !d.SameSet(2, 3) {
			t.Fatalf("%s: unions not applied", v.Name())
		}
		if d.SameSet(0, 2) {
			t.Fatalf("%s: spurious connectivity", v.Name())
		}
		if d.NumComponents() != 2 {
			t.Fatalf("%s: components = %d, want 2", v.Name(), d.NumComponents())
		}
	}
}

func TestSelfUnionIsNoop(t *testing.T) {
	for _, v := range Variants() {
		d := MustNew(3, v.Options())
		d.Union(1, 1)
		if d.NumComponents() != 3 {
			t.Fatalf("%s: self union changed components", v.Name())
		}
	}
}

func TestInvalidCombinationsRejected(t *testing.T) {
	cases := []Options{
		{Union: UnionRemCAS, Splice: SpliceAtomic, Find: FindCompress},
		{Union: UnionRemLock, Splice: SpliceAtomic, Find: FindCompress},
		{Union: UnionAsync, Find: FindTwoTrySplit},
		{Union: UnionJTB, Find: FindHalve},
		{Union: UnionJTB, Find: FindSplit},
		{Union: UnionJTB, Find: FindCompress},
		{Union: UnionRemCAS, Splice: SpliceAtomic, RecordWitness: true},
		{Union: UnionRemLock, Splice: SpliceAtomic, RecordWitness: true},
	}
	for _, opt := range cases {
		if _, err := New(10, opt); err == nil {
			t.Fatalf("expected rejection for %+v", opt)
		}
	}
}

func TestVariantCountIs36(t *testing.T) {
	vs := Variants()
	if len(vs) != 36 {
		t.Fatalf("variant count = %d, want 36 (paper: 144 = 36 finish × 4 sampling)", len(vs))
	}
	names := make(map[string]bool)
	for _, v := range vs {
		if names[v.Name()] {
			t.Fatalf("duplicate variant name %s", v.Name())
		}
		names[v.Name()] = true
		if _, err := New(4, v.Options()); err != nil {
			t.Fatalf("enumerated variant %s invalid: %v", v.Name(), err)
		}
	}
}

func TestFlattenMakesParentsRoots(t *testing.T) {
	d := MustNew(100, Options{Union: UnionAsync, Find: FindNaive})
	for i := uint32(0); i < 99; i++ {
		d.Union(i, i+1)
	}
	d.Flatten()
	p := d.Parents()
	for i := range p {
		if p[p[i]] != p[i] {
			t.Fatalf("parent of %d is not a root after Flatten", i)
		}
	}
	if d.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", d.NumComponents())
	}
}

func TestWitnessEdgesFormSpanningStructure(t *testing.T) {
	const n = 500
	edges := testEdges(n, 2000, 7)
	for _, v := range ForestVariants() {
		opt := v.Options()
		opt.RecordWitness = true
		d := MustNew(n, opt)
		parallel.For(len(edges), func(i int) {
			e := edges[i]
			d.UnionWitness(e[0], e[1], e[0], e[1])
		})
		comps := d.NumComponents()
		// A spanning forest has exactly n - #components edges.
		ws := d.WitnessEdges(nil)
		if len(ws) != n-comps {
			t.Fatalf("%s: witness edges = %d, want n-comps = %d", v.Name(), len(ws), n-comps)
		}
		// Witness edges must connect exactly the same partition.
		oracle := newSeqDSU(n)
		for _, w := range ws {
			if oracle.find(int(w[0])) == oracle.find(int(w[1])) {
				t.Fatalf("%s: witness edges contain a cycle", v.Name())
			}
			oracle.union(int(w[0]), int(w[1]))
		}
		sameSets(t, v.Name(), d.Labels(), oracle.roots())
	}
}

// buildDeepChain creates a DSU whose tree is a single path of length n-1
// (descending unions always link a fresh root, so no compression occurs
// during construction for any find rule).
func buildDeepChain(n int, f FindOption, s *Stats) *DSU {
	d := MustNew(n, Options{Union: UnionAsync, Find: f, Stats: s})
	for i := n - 2; i >= 0; i-- {
		d.Union(uint32(i), uint32(i+1))
	}
	return d
}

func TestStatsInstrumentation(t *testing.T) {
	const n = 1000
	var s Stats
	d := buildDeepChain(n, FindNaive, &s)
	if s.Unions() != n-1 {
		t.Fatalf("unions = %d, want %d", s.Unions(), n-1)
	}
	s.Reset()
	if s.TotalPathLength() != 0 || s.Unions() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// Two full sweeps of finds over the deep chain: naive pays the full
	// depth every time, compress pays it once.
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < n; v++ {
			d.Find(uint32(v))
		}
	}
	naiveTPL := s.TotalPathLength()
	if naiveTPL == 0 {
		t.Fatal("TPL should be nonzero for a deep chain")
	}
	if s.MaxPathLength() == 0 || s.MaxPathLength() > naiveTPL {
		t.Fatalf("MPL %d inconsistent with TPL %d", s.MaxPathLength(), naiveTPL)
	}
	var s2 Stats
	d2 := buildDeepChain(n, FindCompress, &s2)
	s2.Reset()
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < n; v++ {
			d2.Find(uint32(v))
		}
	}
	if s2.TotalPathLength() >= naiveTPL {
		t.Fatalf("FindCompress TPL %d >= FindNaive TPL %d", s2.TotalPathLength(), naiveTPL)
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.observe(1, 3)
	s.addUnion(1)
	s.AddFind()
	s.Reset()
	if s.TotalPathLength() != 0 || s.MaxPathLength() != 0 || s.Unions() != 0 || s.Finds() != 0 {
		t.Fatal("nil Stats should read as zero")
	}
}

func TestQuickPartitionEquivalence(t *testing.T) {
	// Property: for random edge sets, every variant's partition equals the
	// oracle partition.
	f := func(raw []uint16, seed uint16) bool {
		const n = 64
		edges := make([][2]uint32, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, [2]uint32{uint32(r) % n, uint32(r>>8) % n})
		}
		oracle := newSeqDSU(n)
		for _, e := range edges {
			oracle.union(int(e[0]), int(e[1]))
		}
		variants := Variants()
		v := variants[int(seed)%len(variants)]
		d := MustNew(n, v.Options())
		for _, e := range edges {
			d.Union(e[0], e[1])
		}
		labels := d.Labels()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if (oracle.find(a) == oracle.find(b)) != (labels[a] == labels[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSameSetUnderConcurrentUnions(t *testing.T) {
	// SameSet must never report false for pairs united before the call.
	const n = 1 << 12
	d := MustNew(n, Options{Union: UnionAsync, Find: FindSplit})
	parallel.For(n-1, func(i int) {
		d.Union(uint32(i), uint32(i+1))
		if !d.SameSet(uint32(i), uint32(i+1)) {
			t.Errorf("SameSet(%d,%d) = false after union", i, i+1)
		}
	})
	if d.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", d.NumComponents())
	}
}

func TestWitnessPacking(t *testing.T) {
	opt := Options{Union: UnionRemCAS, Splice: SplitAtomicOne, RecordWitness: true}
	d := MustNew(4, opt)
	d.UnionWitness(2, 3, 2, 3)
	found := false
	for v := uint32(0); v < 4; v++ {
		if w, ok := d.Witness(v); ok {
			u, x := concurrent.Unpack(w)
			if u != 2 || x != 3 {
				t.Fatalf("witness = (%d,%d), want (2,3)", u, x)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no witness recorded")
	}
}

func TestLargeChainAllFinds(t *testing.T) {
	// Exercises deep paths through every find rule.
	const n = 50_000
	for _, f := range []FindOption{FindNaive, FindSplit, FindHalve, FindCompress} {
		d := MustNew(n, Options{Union: UnionAsync, Find: f})
		for i := uint32(0); i+1 < n; i++ {
			d.Union(i, i+1)
		}
		if r := d.Find(n - 1); r != d.Find(0) {
			t.Fatalf("find %v: roots differ", f)
		}
		if d.NumComponents() != 1 {
			t.Fatalf("find %v: not one component", f)
		}
	}
}
