package unionfind

import "sync/atomic"

// This file implements the find rules of Algorithm 8 plus the two-try
// splitting find of Jayanti, Tarjan, and Boix-Adserà. All loads and stores
// of parent entries are atomic; every compression write is guarded by a CAS
// so a stale compression can never clobber a concurrent improvement.

// findNaive follows parent pointers to the root without compressing.
func (d *DSU) findNaive(u uint32) uint32 {
	hint := int(u)
	steps := 0
	p := atomic.LoadUint32(&d.parent[u])
	for u != p {
		u = p
		p = atomic.LoadUint32(&d.parent[u])
		steps++
	}
	d.stats.observe(hint, steps)
	return u
}

// findCompress locates the root, then fully compresses the traversed path.
// The early break (p <= r) relies on the decreasing-parent invariant
// maintained by the ID-linking unions; Union-JTB (priority linking) is
// restricted to FindNaive/FindTwoTrySplit by New, so the invariant holds
// whenever this runs.
func (d *DSU) findCompress(u uint32) uint32 {
	hint := int(u)
	steps := 0
	r := u
	for {
		p := atomic.LoadUint32(&d.parent[r])
		if p == r {
			break
		}
		r = p
		steps++
	}
	for u != r {
		p := atomic.LoadUint32(&d.parent[u])
		if p <= r {
			break
		}
		atomic.CompareAndSwapUint32(&d.parent[u], p, r)
		u = p
		steps++
	}
	d.stats.observe(hint, steps)
	return r
}

// findSplit performs atomic path splitting: every vertex on the find path is
// re-pointed at its grandparent.
func (d *DSU) findSplit(u uint32) uint32 {
	hint := int(u)
	steps := 0
	for {
		v := atomic.LoadUint32(&d.parent[u])
		w := atomic.LoadUint32(&d.parent[v])
		if v == w {
			d.stats.observe(hint, steps)
			return v
		}
		atomic.CompareAndSwapUint32(&d.parent[u], v, w)
		u = v
		steps++
	}
}

// findHalve performs atomic path halving: every other vertex on the find
// path is re-pointed at its grandparent and the traversal skips to it.
func (d *DSU) findHalve(u uint32) uint32 {
	hint := int(u)
	steps := 0
	for {
		v := atomic.LoadUint32(&d.parent[u])
		w := atomic.LoadUint32(&d.parent[v])
		if v == w {
			d.stats.observe(hint, steps)
			return v
		}
		atomic.CompareAndSwapUint32(&d.parent[u], v, w)
		u = atomic.LoadUint32(&d.parent[u])
		steps++
	}
}

// ProbeSame is a read-only bounded connectivity probe over any parent
// array whose pointers never leave a component (every union-find variant
// here, plus the min-label parent arrays of Shiloach-Vishkin and RootUp
// Liu-Tarjan): it chases both chains in lockstep for at most budget steps,
// performs no compression writes, and takes no locks. A true result means
// u and v are definitely connected (the chains met, and connectivity is
// monotone under insertions); false means "distinct roots or budget
// exhausted" and carries no negative guarantee. It is safe to run
// concurrently with unions and finds of every variant — including Rem +
// SpliceAtomic, whose phase-concurrency restriction applies to finds that
// compress, not to read-only chases — and is the pre-filter probe of the
// streaming ingest engine (internal/ingest).
func ProbeSame(parent []uint32, u, v uint32, budget int) bool {
	if u == v {
		return true
	}
	for i := 0; i < budget; i++ {
		pu := atomic.LoadUint32(&parent[u])
		pv := atomic.LoadUint32(&parent[v])
		if pu == pv {
			// The chains met: a common vertex witnesses connectivity.
			return true
		}
		if pu == u && pv == v {
			// Both are (currently) distinct roots: not connected right now.
			return false
		}
		u, v = pu, pv
	}
	return false
}

// ProbeSame is the bounded read-only probe over this DSU's parent array.
func (d *DSU) ProbeSame(u, v uint32, budget int) bool {
	return ProbeSame(d.parent, u, v, budget)
}

// findTwoTrySplit is the find of Union-JTB [59]: at each step it attempts
// the splitting CAS up to twice before advancing, which bounds the expected
// work per operation.
func (d *DSU) findTwoTrySplit(u uint32) uint32 {
	hint := int(u)
	steps := 0
	for {
		v := atomic.LoadUint32(&d.parent[u])
		w := atomic.LoadUint32(&d.parent[v])
		if v == w {
			d.stats.observe(hint, steps)
			return v
		}
		if !atomic.CompareAndSwapUint32(&d.parent[u], v, w) {
			// Second try with refreshed values.
			v2 := atomic.LoadUint32(&d.parent[u])
			w2 := atomic.LoadUint32(&d.parent[v2])
			if v2 == w2 {
				d.stats.observe(hint, steps)
				return v2
			}
			atomic.CompareAndSwapUint32(&d.parent[u], v2, w2)
			u = v2
			steps++
			continue
		}
		u = v
		steps++
	}
}
