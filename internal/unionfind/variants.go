package unionfind

import "fmt"

// Variant names one valid union-find configuration. The paper's 144
// union-find implementations are the 36 finish variants enumerated here
// crossed with the four sampling modes (none, k-out, BFS, LDD).
type Variant struct {
	Union  UnionOption
	Find   FindOption
	Splice SpliceOption
}

// Name renders the paper's naming convention, e.g.
// "Union-Rem-CAS;SplitOne;FindNaive".
func (v Variant) Name() string {
	switch v.Union {
	case UnionRemCAS, UnionRemLock:
		return fmt.Sprintf("%v;%v;%v", v.Union, shortSplice(v.Splice), v.Find)
	default:
		return fmt.Sprintf("%v;%v", v.Union, v.Find)
	}
}

func shortSplice(s SpliceOption) string {
	switch s {
	case SplitAtomicOne:
		return "SplitOne"
	case HalveAtomicOne:
		return "HalveOne"
	case SpliceAtomic:
		return "Splice"
	}
	return s.String()
}

// Options converts the variant into DSU options.
func (v Variant) Options() Options {
	return Options{Union: v.Union, Find: v.Find, Splice: v.Splice}
}

// Variants enumerates every valid union-find configuration in the
// framework: 36 in total (4 finds × {Async, Hooks, Early} = 12; 3 splices ×
// 4 finds − 1 invalid = 11 each for Rem-CAS and Rem-Lock; 2 finds for JTB).
func Variants() []Variant {
	finds := []FindOption{FindNaive, FindSplit, FindHalve, FindCompress}
	splices := []SpliceOption{SplitAtomicOne, HalveAtomicOne, SpliceAtomic}
	var out []Variant
	for _, u := range []UnionOption{UnionAsync, UnionHooks, UnionEarly} {
		for _, f := range finds {
			out = append(out, Variant{Union: u, Find: f})
		}
	}
	for _, u := range []UnionOption{UnionRemCAS, UnionRemLock} {
		for _, s := range splices {
			for _, f := range finds {
				if s == SpliceAtomic && f == FindCompress {
					continue // proven incorrect (§B.2.3)
				}
				out = append(out, Variant{Union: u, Find: f, Splice: s})
			}
		}
	}
	out = append(out,
		Variant{Union: UnionJTB, Find: FindNaive},
		Variant{Union: UnionJTB, Find: FindTwoTrySplit},
	)
	return out
}

// ForestVariants enumerates the union-find configurations that support
// spanning forest: all of Variants except Rem's algorithms with
// SpliceAtomic, whose cross-tree re-parenting breaks the witness-edge forest
// property (DESIGN.md §4).
func ForestVariants() []Variant {
	var out []Variant
	for _, v := range Variants() {
		isRem := v.Union == UnionRemCAS || v.Union == UnionRemLock
		if isRem && v.Splice == SpliceAtomic {
			continue
		}
		out = append(out, v)
	}
	return out
}
