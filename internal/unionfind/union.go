package unionfind

import "sync/atomic"

// This file implements the union rules of §3.3.1 / Appendix D.2. Every rule
// is root-based: a link is only installed at a vertex verified (by CAS or
// under lock) to be a root at the instant of linking, and links always point
// to a smaller value (smaller ID, or higher JTB priority), so the forest
// stays acyclic and label changes are exactly unions of trees — the
// linearizable-monotonicity property of Definition 3.3.

func (d *DSU) unite(u, v uint32, w uint64) {
	d.stats.addUnion(int(u))
	switch d.opt.Union {
	case UnionAsync:
		d.uniteAsync(u, v, w)
	case UnionHooks:
		d.uniteHooks(u, v, w)
	case UnionEarly:
		d.uniteEarly(u, v, w)
	case UnionRemCAS:
		d.uniteRemCAS(u, v, w)
	case UnionRemLock:
		d.uniteRemLock(u, v, w)
	case UnionJTB:
		d.uniteJTB(u, v, w)
	}
}

// uniteAsync repeatedly finds both roots and CASes the larger-ID root to
// point at the smaller, retrying on contention (Jayanti-Tarjan linking by
// ID, adapted to the asynchronous shared-memory setting).
func (d *DSU) uniteAsync(u, v uint32, w uint64) {
	for {
		ru := d.Find(u)
		rv := d.Find(v)
		if ru == rv {
			return
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		if atomic.CompareAndSwapUint32(&d.parent[ru], ru, rv) {
			d.recordWitness(ru, w)
			return
		}
	}
}

// uniteHooks is uniteAsync with the contended CAS moved to the auxiliary
// hooks array; the parents write is then uncontended because each vertex is
// hooked at most once over the whole execution.
func (d *DSU) uniteHooks(u, v uint32, w uint64) {
	for {
		ru := d.Find(u)
		rv := d.Find(v)
		if ru == rv {
			return
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		if atomic.LoadUint32(&d.hooks[ru]) == noVertex &&
			atomic.CompareAndSwapUint32(&d.hooks[ru], noVertex, rv) {
			atomic.StoreUint32(&d.parent[ru], rv)
			d.recordWitness(ru, w)
			return
		}
	}
}

// uniteEarly walks both paths together and eagerly hooks a vertex the moment
// it is observed to be a root with a larger ID (GBBS unite_early). When a
// non-naive find rule is configured, the endpoints are compressed after the
// union completes, as the paper describes.
func (d *DSU) uniteEarly(u, v uint32, w uint64) {
	ou, ov := u, v
	steps := 0
	for u != v {
		if u > v {
			u, v = v, u
		}
		// u < v: try to hook v (if it is a root) below u.
		if atomic.LoadUint32(&d.parent[v]) == v &&
			atomic.CompareAndSwapUint32(&d.parent[v], v, u) {
			d.recordWitness(v, w)
			break
		}
		v = atomic.LoadUint32(&d.parent[v])
		steps++
	}
	d.stats.observe(int(u), steps)
	if d.opt.Find != FindNaive {
		d.Find(ou)
		d.Find(ov)
	}
}

// uniteRemCAS is the lock-free Rem's algorithm (Algorithm 14): it ascends
// both paths keeping the invariant parent(rx) > parent(ry), links when rx is
// a root, and otherwise applies the configured splice rule at rx.
func (d *DSU) uniteRemCAS(u, v uint32, w uint64) {
	rx, ry := u, v
	steps := 0
	px := atomic.LoadUint32(&d.parent[rx])
	py := atomic.LoadUint32(&d.parent[ry])
	for px != py {
		if px < py {
			rx, ry = ry, rx
			px, py = py, px
		}
		// parent(rx) > parent(ry)
		if rx == px {
			// rx is a root: link it below ry's parent.
			if atomic.CompareAndSwapUint32(&d.parent[rx], rx, py) {
				d.recordWitness(rx, w)
				d.stats.observe(int(u), steps)
				if d.opt.Find != FindNaive {
					d.Find(u)
					d.Find(v)
				}
				return
			}
		} else {
			rx = d.splice(rx, px, py)
		}
		px = atomic.LoadUint32(&d.parent[rx])
		py = atomic.LoadUint32(&d.parent[ry])
		steps++
	}
	d.stats.observe(int(u), steps)
}

// splice applies the configured splice rule (Algorithm 9) at a non-root
// vertex rx whose loaded parent is px, with py the smaller opposing parent.
// It returns the vertex at which the union loop continues.
func (d *DSU) splice(rx, px, py uint32) uint32 {
	switch d.opt.Splice {
	case SplitAtomicOne:
		// One step of path splitting.
		wv := atomic.LoadUint32(&d.parent[px])
		if px != wv {
			atomic.CompareAndSwapUint32(&d.parent[rx], px, wv)
		}
		return px
	case HalveAtomicOne:
		// One step of path halving.
		wv := atomic.LoadUint32(&d.parent[px])
		if px != wv {
			atomic.CompareAndSwapUint32(&d.parent[rx], px, wv)
		}
		return wv
	case SpliceAtomic:
		// Rem's splice: point rx at the smaller parent py and continue
		// from rx's old parent. py < px keeps parents decreasing.
		atomic.CompareAndSwapUint32(&d.parent[rx], px, py)
		return px
	}
	return px
}

// uniteRemLock is the lock-based Rem's algorithm of Patwary et al.: the same
// ascent as uniteRemCAS, but the root link (and splice, for SpliceAtomic) is
// installed under the vertex's spinlock after re-validating rootness.
func (d *DSU) uniteRemLock(u, v uint32, w uint64) {
	rx, ry := u, v
	steps := 0
	px := atomic.LoadUint32(&d.parent[rx])
	py := atomic.LoadUint32(&d.parent[ry])
	for px != py {
		if px < py {
			rx, ry = ry, rx
			px, py = py, px
		}
		if rx == px {
			d.locks[rx].Lock()
			if atomic.LoadUint32(&d.parent[rx]) == rx {
				// Still a root: py < rx, so the link keeps parents
				// decreasing and cannot create a cycle.
				atomic.StoreUint32(&d.parent[rx], py)
				d.locks[rx].Unlock()
				d.recordWitness(rx, w)
				d.stats.observe(int(u), steps)
				if d.opt.Find != FindNaive {
					d.Find(u)
					d.Find(v)
				}
				return
			}
			d.locks[rx].Unlock()
		} else {
			rx = d.splice(rx, px, py)
		}
		px = atomic.LoadUint32(&d.parent[rx])
		py = atomic.LoadUint32(&d.parent[ry])
		steps++
	}
	d.stats.observe(int(u), steps)
}

// uniteJTB links roots ordered by random priority (Jayanti, Tarjan,
// Boix-Adserà): the lower-priority root is hooked below the higher-priority
// one, giving the randomized work bounds of Corollary 1.
func (d *DSU) uniteJTB(u, v uint32, w uint64) {
	for {
		ru := d.Find(u)
		rv := d.Find(v)
		if ru == rv {
			return
		}
		if d.jtbLess(rv, ru) {
			ru, rv = rv, ru
		}
		// ru has lower (priority, id): hook it below rv.
		if atomic.CompareAndSwapUint32(&d.parent[ru], ru, rv) {
			d.recordWitness(ru, w)
			return
		}
	}
}
