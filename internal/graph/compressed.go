package graph

import (
	"fmt"

	"connectit/internal/parallel"
	"connectit/internal/varint"
)

// CompressedGraph is a byte-compressed CSR graph mirroring the Ligra+
// difference coding used by the paper (§3.6): each vertex's sorted neighbor
// list is stored as variable-length-encoded differences, with the first
// neighbor difference-encoded against the source vertex (zig-zag coded,
// since it can be negative). Decoding sums the differences back into
// neighbor IDs while traversing.
//
// CompressedGraph is a first-class backend of the representation layer
// (Rep): every finish algorithm and sampling scheme runs directly on the
// encoded form via NeighborsInto's decode-into-scratch path, the same
// design that lets the paper process 200B+-edge graphs without
// re-materializing a flat CSR. The per-vertex byte-offset index makes
// decoding random-access, and the uint32 offsets keep the index half the
// size of the flat CSR's (the encoded adjacency is capped at 4 GiB per
// segment — about 2 billion directed edges at typical byte-code rates;
// TryCompress splits larger inputs into a SegmentedGraph automatically).
type CompressedGraph struct {
	Offsets []uint32 // byte offset of each vertex's encoded list; len n+1
	Degrees []uint32 // degree of each vertex; len n
	Data    []byte   // varint-encoded neighbor differences

	m      uint64 // directed edge count (sum of Degrees)
	mapped []byte // whole mmap'd region when loaded via LoadCBIN; nil otherwise
}

// maxCompressedBytes is the per-segment encoded-adjacency cap implied by
// the uint32 byte-offset index.
const maxCompressedBytes = 1<<32 - 1

// Compress byte-encodes g in parallel: a first pass sizes every vertex's
// encoded list, an exclusive scan places them, and a second pass encodes
// into the placed slots. Adjacency lists must be sorted ascending, which
// Build guarantees. It panics if the encoded adjacency would exceed the
// 4 GiB single-segment offset-index cap; TryCompress auto-segments past the
// cap instead and is what file-facing paths should call.
func Compress(g *Graph) *CompressedGraph {
	c, err := tryCompress(g, maxCompressedBytes)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// TryCompress byte-encodes g into whichever compressed representation fits:
// a single-segment CompressedGraph while the encoded adjacency stays within
// the 4 GiB offset-index cap, and a multi-segment SegmentedGraph beyond it,
// so inputs whose size is not known in advance (files, conversions) always
// compress — the old "shard the input" error is gone. Both returns satisfy
// Rep and run every registered algorithm.
func TryCompress(g *Graph) (Rep, error) {
	return tryCompressAuto(g, maxCompressedBytes, maxCompressedBytes)
}

// tryCompressAuto compresses against an injectable single-segment cap and
// per-segment byte target (tests exercise multi-segment splits and the
// overflow path without multi-GiB inputs): one segment when the whole
// encoding fits in capBytes, a segmented split at segBytes otherwise.
func tryCompressAuto(g *Graph, capBytes, segBytes uint64) (Rep, error) {
	sizes := encodedSizes(g)
	total := parallel.ScanExclusive(sizes)
	if total <= capBytes {
		offsets, degrees, data := encodeRange(g, sizes, 0, g.NumVertices())
		return &CompressedGraph{Offsets: offsets, Degrees: degrees, Data: data, m: uint64(len(g.Adj))}, nil
	}
	return segmentBySizes(g, sizes, segBytes, capBytes)
}

// tryCompress implements single-segment compression against an explicit
// adjacency-size cap — the injectable hook behind Compress and the
// overflow-path tests. Unlike TryCompress it never segments: inputs beyond
// the cap report the single-segment limit as an error.
func tryCompress(g *Graph, capBytes uint64) (*CompressedGraph, error) {
	sizes := encodedSizes(g)
	total := parallel.ScanExclusive(sizes)
	if total > capBytes {
		return nil, fmt.Errorf("graph: compressed adjacency needs %d bytes, beyond the %d-byte single-segment offset-index cap", total, capBytes)
	}
	offsets, degrees, data := encodeRange(g, sizes, 0, g.NumVertices())
	return &CompressedGraph{Offsets: offsets, Degrees: degrees, Data: data, m: uint64(len(g.Adj))}, nil
}

// encodedSizes runs the sizing pass: sizes[v] is the encoded byte length of
// v's adjacency list, in a slice of length n+1 ready for ScanExclusive.
func encodedSizes(g *Graph) []uint64 {
	n := g.NumVertices()
	sizes := make([]uint64, n+1)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf [10]byte
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(Vertex(v))
			var sz uint64
			prev := int64(v)
			for i, u := range nbrs {
				d := int64(u) - prev
				if i == 0 {
					sz += uint64(putVarint(buf[:], zigzag(d)))
				} else {
					sz += uint64(putVarint(buf[:], uint64(d)))
				}
				prev = int64(u)
			}
			sizes[v] = sz
		}
	})
	return sizes
}

// encodeRange runs the placement pass for the vertex range [lo, hi) given
// the global exclusive scan of encoded sizes: offsets are relative to the
// range's first byte (so they fit uint32 for any range within the cap),
// degrees cover the range, and data holds its encoded adjacency. The whole
// graph is the range [0, n) — single-segment compression and the segmented
// builder share this pass.
func encodeRange(g *Graph, prefix []uint64, lo, hi int) (offsets []uint32, degrees []uint32, data []byte) {
	base := prefix[lo]
	offsets = make([]uint32, hi-lo+1)
	parallel.ForGrained(hi-lo+1, 4096, func(a, b int) {
		for i := a; i < b; i++ {
			offsets[i] = uint32(prefix[lo+i] - base)
		}
	})
	data = make([]byte, prefix[hi]-base)
	degrees = make([]uint32, hi-lo)
	parallel.ForGrained(hi-lo, 256, func(a, b int) {
		for i := a; i < b; i++ {
			v := lo + i
			nbrs := g.Neighbors(Vertex(v))
			degrees[i] = uint32(len(nbrs))
			pos := prefix[v] - base
			prev := int64(v)
			for j, u := range nbrs {
				d := int64(u) - prev
				if j == 0 {
					pos += uint64(putVarint(data[pos:], zigzag(d)))
				} else {
					pos += uint64(putVarint(data[pos:], uint64(d)))
				}
				prev = int64(u)
			}
		}
	})
	return offsets, degrees, data
}

// NumVertices returns the number of vertices.
func (c *CompressedGraph) NumVertices() int { return len(c.Degrees) }

// NumDirectedEdges returns the number of directed edges stored.
func (c *CompressedGraph) NumDirectedEdges() int { return int(c.m) }

// NumEdges returns the number of undirected edges m.
func (c *CompressedGraph) NumEdges() int { return int(c.m) / 2 }

// Degree returns the degree of v.
func (c *CompressedGraph) Degree(v Vertex) int { return int(c.Degrees[v]) }

// SizeBytes returns the resident size of the compressed structure in bytes:
// the offset index, the degree array, and the encoded adjacency.
func (c *CompressedGraph) SizeBytes() int {
	return 4*len(c.Offsets) + 4*len(c.Degrees) + len(c.Data)
}

// String summarizes the graph.
func (c *CompressedGraph) String() string {
	return fmt.Sprintf("compressed{n=%d m=%d bytes=%d}", c.NumVertices(), c.NumEdges(), c.SizeBytes())
}

// Decode calls visit for each neighbor of v in ascending order.
func (c *CompressedGraph) Decode(v Vertex, visit func(u Vertex)) {
	deg := c.Degrees[v]
	if deg == 0 {
		return
	}
	pos := uint64(c.Offsets[v])
	raw, k := getVarint(c.Data[pos:])
	pos += uint64(k)
	cur := int64(v) + unzigzag(raw)
	visit(Vertex(cur))
	for i := uint32(1); i < deg; i++ {
		d, k := getVarint(c.Data[pos:])
		pos += uint64(k)
		cur += int64(d)
		visit(Vertex(cur))
	}
}

// NeighborsInto decodes v's neighbors into buf (growing it when its capacity
// is insufficient) and returns the decoded slice. The result is valid until
// the next call reusing the same buf.
func (c *CompressedGraph) NeighborsInto(v Vertex, buf []Vertex) []Vertex {
	return c.decodeInto(v, buf, int(c.Degrees[v]))
}

// NeighborsIntoLimit decodes only the first min(limit, Degree(v)) neighbors
// of v — the bounded-work path for kernels that inspect an adjacency prefix.
func (c *CompressedGraph) NeighborsIntoLimit(v Vertex, buf []Vertex, limit int) []Vertex {
	count := int(c.Degrees[v])
	if limit < count {
		count = limit
	}
	return c.decodeInto(v, buf, count)
}

// decodeInto decodes the first count neighbors of v into buf.
func (c *CompressedGraph) decodeInto(v Vertex, buf []Vertex, count int) []Vertex {
	return decodeList(c.Data, int(c.Offsets[v]), v, count, buf)
}

// decodeList decodes the first count neighbors of v from its encoded list
// starting at data[pos] into buf — the decode hot path shared by the
// single-segment and segmented backends (the encoding is identical: only
// where the bytes live differs). The loop is written against the hoisted
// data slice with a single-byte fast path (the bulk of power-law
// adjacencies) so no per-neighbor function call or re-slice survives.
func decodeList(data []byte, pos int, v Vertex, count int, buf []Vertex) []Vertex {
	if count <= 0 {
		return buf[:0]
	}
	if cap(buf) < count {
		buf = make([]Vertex, count)
	} else {
		buf = buf[:count]
	}
	var raw uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		if b < 0x80 {
			raw |= uint64(b) << shift
			break
		}
		raw |= uint64(b&0x7f) << shift
		shift += 7
	}
	cur := int64(v) + unzigzag(raw)
	buf[0] = Vertex(cur)
	for i := 1; i < count; i++ {
		b := data[pos]
		pos++
		if b < 0x80 {
			cur += int64(b)
		} else {
			d := uint64(b & 0x7f)
			shift := uint(7)
			for {
				b = data[pos]
				pos++
				if b < 0x80 {
					d |= uint64(b) << shift
					break
				}
				d |= uint64(b&0x7f) << shift
				shift += 7
			}
			cur += int64(d)
		}
		buf[i] = Vertex(cur)
	}
	return buf
}

// Decompress reconstructs the plain CSR graph (used by tests and the CLI's
// format conversion).
func (c *CompressedGraph) Decompress() *Graph {
	n := c.NumVertices()
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v] = uint64(c.Degrees[v])
	}
	total := parallel.ScanExclusive(offsets)
	adj := make([]Vertex, total)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			pos := offsets[v]
			c.Decode(Vertex(v), func(u Vertex) {
				adj[pos] = u
				pos++
			})
		}
	})
	return &Graph{Offsets: offsets, Adj: adj}
}

// Close releases the memory mapping backing a graph opened with LoadCBIN.
// It is a no-op for graphs built in memory or loaded without mmap. The
// graph must not be used after Close.
func (c *CompressedGraph) Close() error {
	if c.mapped == nil {
		return nil
	}
	m := c.mapped
	c.mapped, c.Offsets, c.Degrees, c.Data = nil, nil, nil, nil
	return munmap(m)
}

// The byte-code primitives live in internal/varint (shared with the wire
// protocol and the WAL's compressed record payloads); these aliases keep
// the decode hot paths above reading naturally.
func zigzag(x int64) uint64              { return varint.Zigzag(x) }
func unzigzag(u uint64) int64            { return varint.Unzigzag(u) }
func putVarint(buf []byte, x uint64) int { return varint.Put(buf, x) }
func getVarint(buf []byte) (uint64, int) { return varint.Get(buf) }
