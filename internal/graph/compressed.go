package graph

import "connectit/internal/parallel"

// CompressedGraph is a byte-compressed CSR graph mirroring the Ligra+
// difference coding used by the paper (§3.6): each vertex's sorted neighbor
// list is stored as variable-length-encoded differences, with the first
// neighbor difference-encoded against the source vertex (zig-zag coded,
// since it can be negative). Decoding sums the differences back into
// neighbor IDs while traversing.
//
// Compression in the paper exists to fit 128-billion-edge graphs in memory;
// here it exercises the same decode-while-traversing code path and lets
// Table 8's MapEdges/GatherEdges baselines run over compressed input.
type CompressedGraph struct {
	Offsets []uint64 // byte offset of each vertex's encoded list; len n+1
	Degrees []uint32 // degree of each vertex; len n
	Data    []byte   // varint-encoded neighbor differences
}

// Compress byte-encodes g. Adjacency lists must be sorted ascending, which
// Build guarantees.
func Compress(g *Graph) *CompressedGraph {
	n := g.NumVertices()
	sizes := make([]uint64, n+1)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf [10]byte
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(Vertex(v))
			var sz uint64
			prev := int64(v)
			for i, u := range nbrs {
				d := int64(u) - prev
				if i == 0 {
					sz += uint64(putVarint(buf[:], zigzag(d)))
				} else {
					sz += uint64(putVarint(buf[:], uint64(d)))
				}
				prev = int64(u)
			}
			sizes[v] = sz
		}
	})
	total := parallel.ScanExclusive(sizes)
	data := make([]byte, total)
	degrees := make([]uint32, n)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(Vertex(v))
			degrees[v] = uint32(len(nbrs))
			pos := sizes[v]
			prev := int64(v)
			for i, u := range nbrs {
				d := int64(u) - prev
				if i == 0 {
					pos += uint64(putVarint(data[pos:], zigzag(d)))
				} else {
					pos += uint64(putVarint(data[pos:], uint64(d)))
				}
				prev = int64(u)
			}
		}
	})
	return &CompressedGraph{Offsets: sizes, Degrees: degrees, Data: data}
}

// NumVertices returns the number of vertices.
func (c *CompressedGraph) NumVertices() int { return len(c.Degrees) }

// SizeBytes returns the encoded adjacency size in bytes.
func (c *CompressedGraph) SizeBytes() int { return len(c.Data) }

// Decode calls visit for each neighbor of v in ascending order.
func (c *CompressedGraph) Decode(v Vertex, visit func(u Vertex)) {
	deg := c.Degrees[v]
	if deg == 0 {
		return
	}
	pos := c.Offsets[v]
	raw, k := getVarint(c.Data[pos:])
	pos += uint64(k)
	cur := int64(v) + unzigzag(raw)
	visit(Vertex(cur))
	for i := uint32(1); i < deg; i++ {
		d, k := getVarint(c.Data[pos:])
		pos += uint64(k)
		cur += int64(d)
		visit(Vertex(cur))
	}
}

// Decompress reconstructs the plain CSR graph (used by tests to verify the
// round trip).
func (c *CompressedGraph) Decompress() *Graph {
	n := c.NumVertices()
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v] = uint64(c.Degrees[v])
	}
	total := parallel.ScanExclusive(offsets)
	adj := make([]Vertex, total)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			pos := offsets[v]
			c.Decode(Vertex(v), func(u Vertex) {
				adj[pos] = u
				pos++
			})
		}
	})
	return &Graph{Offsets: offsets, Adj: adj}
}

func zigzag(x int64) uint64   { return uint64((x << 1) ^ (x >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putVarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

func getVarint(buf []byte) (uint64, int) {
	var x uint64
	var shift uint
	for i, b := range buf {
		if b < 0x80 {
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
