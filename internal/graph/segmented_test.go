package graph

import (
	"strings"
	"sync"
	"testing"
)

// TestTrySegmentMatchesCSR sweeps the compression panel through forced
// segmentation at several byte targets and checks the segmented view decodes
// to exactly the CSR graph, including the prefix-decode path.
func TestTrySegmentMatchesCSR(t *testing.T) {
	for name, g := range compressPanel() {
		for _, segBytes := range []uint64{1, 64, 1 << 20} {
			s, err := TrySegment(g, segBytes)
			if err != nil {
				t.Fatalf("%s/%d: segment: %v", name, segBytes, err)
			}
			checkSameGraph(t, name, g, s)
			if s.NumSegments() < 1 {
				t.Fatalf("%s/%d: %d segments", name, segBytes, s.NumSegments())
			}
			var buf []Vertex
			for v := 0; v < g.NumVertices(); v++ {
				want := g.Neighbors(Vertex(v))
				limit := 2
				buf = s.NeighborsIntoLimit(Vertex(v), buf, limit)
				if wantLen := min(limit, len(want)); len(buf) != wantLen {
					t.Fatalf("%s/%d: vertex %d limit decode %d, want %d", name, segBytes, v, len(buf), wantLen)
				}
				for i := range buf {
					if buf[i] != want[i] {
						t.Fatalf("%s/%d: vertex %d limited neighbor %d = %d, want %d", name, segBytes, v, i, buf[i], want[i])
					}
				}
			}

			back := s.Decompress()
			if back.NumVertices() != g.NumVertices() || back.NumDirectedEdges() != g.NumDirectedEdges() {
				t.Fatalf("%s/%d: decompress size mismatch", name, segBytes)
			}
		}
	}
}

// TestTrySegmentSplits pins the splitting behavior: a 1-byte target isolates
// every nonempty adjacency in its own segment, and a large target yields a
// single segment.
func TestTrySegmentSplits(t *testing.T) {
	g := Path(100) // every vertex has a tiny nonempty adjacency
	s, err := TrySegment(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSegments() < 50 {
		t.Fatalf("1-byte target produced only %d segments for a 100-path", s.NumSegments())
	}
	one, err := TrySegment(g, 0) // 0 selects the real cap
	if err != nil {
		t.Fatal(err)
	}
	if one.NumSegments() != 1 {
		t.Fatalf("uncapped segmentation produced %d segments, want 1", one.NumSegments())
	}
	if !strings.Contains(s.String(), "segments=") {
		t.Fatalf("String() = %q, want segment count", s.String())
	}
}

// TestTryCompressAutoSegments exercises the auto-segmentation seam behind
// TryCompress with the injectable cap: a graph whose encoding exceeds the
// single-segment cap silently becomes a SegmentedGraph instead of erroring,
// and one oversized adjacency list that can never fit a segment is the only
// remaining error.
func TestTryCompressAutoSegments(t *testing.T) {
	g := RMAT(10, 6000, 0.57, 0.19, 0.19, 3)

	r, err := tryCompressAuto(g, maxCompressedBytes, maxCompressedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*CompressedGraph); !ok {
		t.Fatalf("roomy cap compressed to %T, want *CompressedGraph", r)
	}

	r, err = tryCompressAuto(g, 1024, 1024)
	if err != nil {
		t.Fatalf("beyond-cap graph should auto-segment, got %v", err)
	}
	s, ok := r.(*SegmentedGraph)
	if !ok {
		t.Fatalf("beyond-cap graph compressed to %T, want *SegmentedGraph", r)
	}
	if s.NumSegments() < 3 {
		t.Fatalf("1 KiB segments over a %d-byte encoding gave %d segments, want >= 3", s.SizeBytes(), s.NumSegments())
	}
	checkSameGraph(t, "auto-segmented", g, s)

	// Star(4096)'s center adjacency alone exceeds a 1 KiB cap: no split at
	// vertex granularity can help, so this must surface the cap error.
	if _, err := tryCompressAuto(Star(4096), 1024, 1024); err == nil ||
		!strings.Contains(err.Error(), "single-segment offset-index cap") {
		t.Fatalf("oversized vertex err = %v, want single-segment cap error", err)
	}
}

// TestSegmentedConcurrentReads hammers NeighborsInto and Degree from many
// goroutines: the shared last-segment hint is the only mutable state, and
// the race detector verifies its atomics while the assertions verify reads
// stay correct whatever the hint holds.
func TestSegmentedConcurrentReads(t *testing.T) {
	g := RMAT(10, 8000, 0.57, 0.19, 0.19, 4)
	s, err := TrySegment(g, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSegments() < 3 {
		t.Fatalf("need >= 3 segments, got %d", s.NumSegments())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var buf []Vertex
			n := g.NumVertices()
			for i := 0; i < 20000; i++ {
				v := Vertex((i*2654435761 + seed*97) % n)
				want := g.Neighbors(v)
				if s.Degree(v) != len(want) {
					t.Errorf("degree mismatch at %d", v)
					return
				}
				buf = s.NeighborsInto(v, buf)
				if len(buf) != len(want) {
					t.Errorf("decode length mismatch at %d", v)
					return
				}
				for j := range want {
					if buf[j] != want[j] {
						t.Errorf("neighbor mismatch at %d[%d]", v, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
