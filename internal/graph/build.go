package graph

import (
	"fmt"
	"slices"
	"sync/atomic"

	"connectit/internal/parallel"
)

// Build constructs a symmetric CSR graph with n vertices from an undirected
// edge list. Self loops are dropped and parallel edges are deduplicated;
// adjacency lists are sorted ascending. Build panics if an endpoint is >= n;
// TryBuild is the error-returning variant for untrusted input.
func Build(n int, edges []Edge) *Graph {
	g, err := TryBuild(n, edges)
	if err != nil {
		panic(err.Error())
	}
	return g
}

// TryBuild is Build with endpoint validation reported as an error instead
// of a panic — the file-loading path uses it so malformed inputs surface as
// one-line errors. The construction is a parallel pipeline: endpoint
// validation, a parallel atomic degree histogram, an exclusive scan placing
// each adjacency list, a parallel scatter of both edge directions, and a
// parallel per-vertex sort/dedupe compaction.
func TryBuild(n int, edges []Edge) (*Graph, error) {
	var bad atomic.Int64
	bad.Store(-1)
	parallel.ForGrained(len(edges), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if int(e.U) >= n || int(e.V) >= n {
				bad.Store(int64(i))
				return
			}
		}
	})
	if i := bad.Load(); i >= 0 {
		e := edges[i]
		return nil, fmt.Errorf("graph: edge {%d, %d} endpoint out of range [0, %d)", e.U, e.V, n)
	}
	// Parallel degree histogram (both directions), skipping self loops.
	deg := make([]uint64, n+1)
	parallel.ForGrained(len(edges), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			atomic.AddUint64(&deg[e.U], 1)
			atomic.AddUint64(&deg[e.V], 1)
		}
	})
	total := parallel.ScanExclusive(deg[: n+1 : n+1])
	adj := make([]Vertex, total)
	fill := make([]uint64, n)
	parallel.ForGrained(n, 4096, func(lo, hi int) {
		copy(fill[lo:hi], deg[lo:hi])
	})
	// Parallel scatter: each edge claims its two slots with fetch-adds, so
	// lists fill unordered; the sort below canonicalizes them.
	parallel.ForGrained(len(edges), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			adj[atomic.AddUint64(&fill[e.U], 1)-1] = e.V
			adj[atomic.AddUint64(&fill[e.V], 1)-1] = e.U
		}
	})
	g := &Graph{Offsets: deg, Adj: adj}
	dedupe(g)
	return g, nil
}

// dedupe sorts each adjacency list and removes duplicate neighbors,
// rebuilding the CSR arrays compactly.
func dedupe(g *Graph) {
	n := g.NumVertices()
	newDeg := make([]uint64, n+1)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			// slices.Sort specializes for the element type: no per-vertex
			// comparator closure, ~2x faster than sort.Slice on short
			// uint32 lists.
			slices.Sort(nbrs)
			k := 0
			for i := range nbrs {
				if i == 0 || nbrs[i] != nbrs[i-1] {
					nbrs[k] = nbrs[i]
					k++
				}
			}
			newDeg[v] = uint64(k)
		}
	})
	total := parallel.ScanExclusive(newDeg)
	adj := make([]Vertex, total)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			cnt := int(newDeg[v+1] - newDeg[v])
			copy(adj[newDeg[v]:newDeg[v+1]], g.Adj[g.Offsets[v]:g.Offsets[v]+uint64(cnt)])
		}
	})
	g.Offsets = newDeg
	g.Adj = adj
}
