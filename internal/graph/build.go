package graph

import (
	"sort"

	"connectit/internal/parallel"
)

// Build constructs a symmetric CSR graph with n vertices from an undirected
// edge list. Self loops are dropped and parallel edges are deduplicated;
// adjacency lists are sorted ascending. Build panics if an endpoint is >= n.
func Build(n int, edges []Edge) *Graph {
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			panic("graph: edge endpoint out of range")
		}
	}
	// Count directed degrees (both directions), skipping self loops.
	deg := make([]uint64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	total := parallel.ScanExclusive(deg[: n+1 : n+1])
	adj := make([]Vertex, total)
	fill := make([]uint64, n)
	copy(fill, deg[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[fill[e.U]] = e.V
		fill[e.U]++
		adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &Graph{Offsets: deg, Adj: adj}
	dedupe(g)
	return g
}

// dedupe sorts each adjacency list and removes duplicate neighbors,
// rebuilding the CSR arrays compactly.
func dedupe(g *Graph) {
	n := g.NumVertices()
	newDeg := make([]uint64, n+1)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			k := 0
			for i := range nbrs {
				if i == 0 || nbrs[i] != nbrs[i-1] {
					nbrs[k] = nbrs[i]
					k++
				}
			}
			newDeg[v] = uint64(k)
		}
	})
	total := parallel.ScanExclusive(newDeg)
	adj := make([]Vertex, total)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			cnt := int(newDeg[v+1] - newDeg[v])
			copy(adj[newDeg[v]:newDeg[v+1]], g.Adj[g.Offsets[v]:g.Offsets[v]+uint64(cnt)])
		}
	})
	g.Offsets = newDeg
	g.Adj = adj
}
