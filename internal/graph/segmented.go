package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"connectit/internal/parallel"
)

// SegmentedGraph is the multi-segment byte-compressed backend: k
// independently encoded segments, each covering a contiguous vertex range
// with its own uint32 byte-offset index over its own encoded adjacency, so
// the whole graph is no longer bound by the 4 GiB single-segment cap — each
// segment is, and segments are as numerous as the input needs.
//
// The encoding inside a segment is exactly the CompressedGraph encoding
// (difference-coded varints against global vertex ids), so the two backends
// share the decode hot path; only where a vertex's bytes live differs.
// SegmentedGraph is a first-class Rep backend: every kernel monomorphizes
// over it, resolving the segment per source vertex with a cached-last-
// segment fast path (kernels sweep vertices in order, so consecutive
// lookups land in the same segment almost always) and a binary search over
// the k+1 range boundaries on a miss.
//
// Loaded from a .cbin v2 file on unix, each segment is its own independent
// read-only memory mapping: opening is O(index bytes) — the adjacency
// payload is never read at load time — and pages of it enter memory only as
// traversal touches them, so a graph larger than RAM executes out of core
// with the OS paging segments in and out on demand. Close releases the
// per-segment mappings.
type SegmentedGraph struct {
	segs   []segmentRef
	starts []uint32 // first vertex of each segment; len k+1, starts[k] = n
	n      int
	m      uint64 // directed edge count
	hint   atomic.Uint32
	maps   [][]byte // per-segment mmap regions to release on Close; nil entries are heap-backed
}

// segmentRef is one segment's arrays: byte offsets (relative to the
// segment's data, len count+1), per-vertex degrees (len count), and the
// encoded adjacency. m is the segment's directed edge count.
type segmentRef struct {
	offsets []uint32
	degrees []uint32
	data    []byte
	m       uint64
}

// TrySegment byte-encodes g as a SegmentedGraph with at most segmentBytes
// of encoded adjacency per segment (0 or anything beyond the 4 GiB
// offset-index cap selects the cap). Unlike TryCompress it always returns
// the segmented representation, even when one segment would do — the forced
// path behind -format segmented, benchmarks, and tests. A vertex whose own
// encoded list exceeds segmentBytes gets a segment to itself rather than
// failing; only a list beyond the hard uint32 cap is an error, and no
// realizable input reaches it.
func TrySegment(g *Graph, segmentBytes uint64) (*SegmentedGraph, error) {
	if segmentBytes == 0 || segmentBytes > maxCompressedBytes {
		segmentBytes = maxCompressedBytes
	}
	sizes := encodedSizes(g)
	parallel.ScanExclusive(sizes)
	return segmentBySizes(g, sizes, segmentBytes, maxCompressedBytes)
}

// segmentBySizes builds the segmented representation from the global
// exclusive scan of per-vertex encoded sizes, cutting segments at vertex
// boundaries so each holds at most segBytes of encoded adjacency (a single
// vertex larger than segBytes becomes its own oversized segment). capBytes
// is the injectable hard per-segment limit — the real uint32 cap in
// production, small in tests exercising the overflow error.
func segmentBySizes(g *Graph, prefix []uint64, segBytes, capBytes uint64) (*SegmentedGraph, error) {
	n := g.NumVertices()
	bounds := []int{0}
	segStart := uint64(0)
	for v := 0; v < n; v++ {
		if vb := prefix[v+1] - prefix[v]; vb > capBytes {
			return nil, fmt.Errorf("graph: vertex %d's encoded adjacency needs %d bytes, beyond the %d-byte single-segment offset-index cap", v, vb, capBytes)
		}
		if prefix[v+1]-segStart > segBytes && prefix[v] > segStart {
			bounds = append(bounds, v)
			segStart = prefix[v]
		}
	}
	bounds = append(bounds, n)

	s := &SegmentedGraph{
		segs:   make([]segmentRef, len(bounds)-1),
		starts: make([]uint32, len(bounds)),
		n:      n,
		m:      uint64(len(g.Adj)),
	}
	for i := range s.segs {
		lo, hi := bounds[i], bounds[i+1]
		offsets, degrees, data := encodeRange(g, prefix, lo, hi)
		s.segs[i] = segmentRef{
			offsets: offsets,
			degrees: degrees,
			data:    data,
			m:       g.Offsets[hi] - g.Offsets[lo],
		}
		s.starts[i] = uint32(lo)
	}
	s.starts[len(bounds)-1] = uint32(n)
	return s, nil
}

// NumVertices returns the number of vertices.
func (s *SegmentedGraph) NumVertices() int { return s.n }

// NumDirectedEdges returns the number of directed edges stored.
func (s *SegmentedGraph) NumDirectedEdges() int { return int(s.m) }

// NumEdges returns the number of undirected edges m.
func (s *SegmentedGraph) NumEdges() int { return int(s.m) / 2 }

// NumSegments returns the number of segments.
func (s *SegmentedGraph) NumSegments() int { return len(s.segs) }

// Degree returns the degree of v. It checks the cached-last-segment hint
// but never updates it on a miss: finish kernels probe the degree of random
// neighbors while sweeping sources in order, and letting those probes steal
// the hint would thrash the cache line the source sweep depends on.
func (s *SegmentedGraph) Degree(v Vertex) int {
	h := s.hint.Load()
	if uint32(v) < s.starts[h] || uint32(v) >= s.starts[h+1] {
		h = uint32(sort.Search(len(s.segs)-1, func(i int) bool { return s.starts[i+1] > uint32(v) }))
	}
	return int(s.segs[h].degrees[uint32(v)-s.starts[h]])
}

// NeighborsInto decodes v's neighbors into buf (growing it when its
// capacity is insufficient) and returns the decoded slice, resolving v's
// segment through the cached-last-segment fast path.
func (s *SegmentedGraph) NeighborsInto(v Vertex, buf []Vertex) []Vertex {
	i, seg := s.resolve(v)
	local := uint32(v) - s.starts[i]
	return decodeList(seg.data, int(seg.offsets[local]), v, int(seg.degrees[local]), buf)
}

// NeighborsIntoLimit decodes only the first min(limit, Degree(v)) neighbors
// of v — the bounded-work path for kernels that inspect an adjacency prefix.
func (s *SegmentedGraph) NeighborsIntoLimit(v Vertex, buf []Vertex, limit int) []Vertex {
	i, seg := s.resolve(v)
	local := uint32(v) - s.starts[i]
	count := int(seg.degrees[local])
	if limit < count {
		count = limit
	}
	return decodeList(seg.data, int(seg.offsets[local]), v, count, buf)
}

// resolve returns v's segment index and segment, updating the hint on a
// miss.
func (s *SegmentedGraph) resolve(v Vertex) (uint32, *segmentRef) {
	h := s.hint.Load()
	if uint32(v) >= s.starts[h] && uint32(v) < s.starts[h+1] {
		return h, &s.segs[h]
	}
	i := uint32(sort.Search(len(s.segs)-1, func(i int) bool { return s.starts[i+1] > uint32(v) }))
	s.hint.Store(i)
	return i, &s.segs[i]
}

// SizeBytes returns the resident size of the segmented structure in bytes:
// every segment's offset index, degree array, and encoded adjacency, plus
// the range-boundary table.
func (s *SegmentedGraph) SizeBytes() int {
	total := 4 * len(s.starts)
	for i := range s.segs {
		total += 4*len(s.segs[i].offsets) + 4*len(s.segs[i].degrees) + len(s.segs[i].data)
	}
	return total
}

// String summarizes the graph.
func (s *SegmentedGraph) String() string {
	return fmt.Sprintf("segmented{n=%d m=%d segments=%d bytes=%d}", s.NumVertices(), s.NumEdges(), s.NumSegments(), s.SizeBytes())
}

// Decompress reconstructs the plain CSR graph (used by tests and the CLI's
// format conversion).
func (s *SegmentedGraph) Decompress() *Graph {
	n := s.NumVertices()
	offsets := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		offsets[v] = uint64(s.Degree(Vertex(v)))
	}
	total := parallel.ScanExclusive(offsets)
	adj := make([]Vertex, total)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf []Vertex
		for v := lo; v < hi; v++ {
			buf = s.NeighborsInto(Vertex(v), buf)
			copy(adj[offsets[v]:offsets[v+1]], buf)
		}
	})
	return &Graph{Offsets: offsets, Adj: adj}
}

// Close releases the per-segment memory mappings backing a graph opened
// with LoadCBIN. It is a no-op for graphs built in memory or loaded without
// mmap. The graph must not be used after Close.
func (s *SegmentedGraph) Close() error {
	var first error
	for i, m := range s.maps {
		if m == nil {
			continue
		}
		s.maps[i] = nil
		if err := munmap(m); err != nil && first == nil {
			first = err
		}
	}
	s.maps, s.segs, s.starts = nil, nil, nil
	return first
}

// Materialize returns the flat CSR form of any registered representation:
// CSR graphs pass through, compressed and segmented graphs decompress. It
// backs format conversions (the CLI's -convert) that need to re-encode a
// loaded graph.
func Materialize(r Rep) (*Graph, error) {
	switch g := r.(type) {
	case *Graph:
		return g, nil
	case *CompressedGraph:
		return g.Decompress(), nil
	case *SegmentedGraph:
		return g.Decompress(), nil
	}
	return nil, fmt.Errorf("graph: cannot materialize representation %T", r)
}
