package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildSymmetrizesAndDedupes(t *testing.T) {
	g := Build(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (self loop and duplicates dropped)", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees = %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", nbrs)
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	g := Build(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph should have no vertices/edges")
	}
	g = Build(1, nil)
	if g.NumVertices() != 1 || g.Degree(0) != 0 {
		t.Fatal("single vertex graph")
	}
}

func TestBuildPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range endpoint")
		}
	}()
	Build(2, []Edge{{0, 5}})
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}}
	g := Build(5, orig)
	back := g.Edges()
	if len(back) != len(orig) {
		t.Fatalf("round trip %d edges, want %d", len(back), len(orig))
	}
	g2 := Build(5, back)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("rebuilt graph differs")
	}
}

func TestBuildAdjacencySortedProperty(t *testing.T) {
	f := func(raw []struct{ U, V uint16 }) bool {
		edges := make([]Edge, len(raw))
		n := 1
		for i, e := range raw {
			u, v := Vertex(e.U%512), Vertex(e.V%512)
			edges[i] = Edge{u, v}
			if int(u)+1 > n {
				n = int(u) + 1
			}
			if int(v)+1 > n {
				n = int(v) + 1
			}
		}
		g := Build(n, edges)
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(Vertex(v))
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i] <= nbrs[i-1] {
					return false
				}
			}
			for _, u := range nbrs {
				if u == Vertex(v) {
					return false // self loop survived
				}
				// symmetry: v must appear in u's list
				found := false
				for _, w := range g.Neighbors(u) {
					if w == Vertex(v) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// m = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
	if g.NumEdges() != 17 {
		t.Fatalf("m = %d, want 17", g.NumEdges())
	}
	if g.Degree(0) != 2 { // corner
		t.Fatalf("corner degree = %d, want 2", g.Degree(0))
	}
	if g.Degree(5) != 4 { // interior (row 1, col 1)
		t.Fatalf("interior degree = %d, want 4", g.Degree(5))
	}
}

func TestFixtureGenerators(t *testing.T) {
	if g := Path(10); g.NumEdges() != 9 || g.Degree(0) != 1 || g.Degree(5) != 2 {
		t.Fatal("Path(10) malformed")
	}
	if g := Cycle(10); g.NumEdges() != 10 || g.Degree(3) != 2 {
		t.Fatal("Cycle(10) malformed")
	}
	if g := Star(10); g.NumEdges() != 9 || g.Degree(0) != 9 || g.Degree(1) != 1 {
		t.Fatal("Star(10) malformed")
	}
	if g := Cliques(3, 4); g.NumVertices() != 12 || g.NumEdges() != 18 {
		t.Fatal("Cliques(3,4) malformed")
	}
}

func TestRMATDeterministicAndInRange(t *testing.T) {
	g1 := RMAT(10, 5000, 0.57, 0.19, 0.19, 42)
	g2 := RMAT(10, 5000, 0.57, 0.19, 0.19, 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT not deterministic for fixed seed")
	}
	if g1.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g1.NumVertices())
	}
	g3 := RMAT(10, 5000, 0.57, 0.19, 0.19, 43)
	if g1.NumEdges() == g3.NumEdges() && g1.NumDirectedEdges() == g3.NumDirectedEdges() {
		// Different seeds should (almost surely) differ somewhere.
		same := true
		for v := 0; v < g1.NumVertices() && same; v++ {
			if g1.Degree(Vertex(v)) != g3.Degree(Vertex(v)) {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 7)
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("m = %d, want >= 5000ish", g.NumEdges())
	}
	// Preferential attachment: max degree should greatly exceed the mean.
	var maxDeg int
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2 * g.NumEdges() / g.NumVertices()
	if maxDeg < 4*mean {
		t.Fatalf("maxDeg = %d vs mean = %d: degree distribution not skewed", maxDeg, mean)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 3000, 11)
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 2800 || g.NumEdges() > 3000 {
		t.Fatalf("m = %d, want close to 3000", g.NumEdges())
	}
}

func TestWebLikeHasIsolatedVertices(t *testing.T) {
	g := WebLike(12, 20000, 0.25, 5)
	isolated := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(Vertex(v)) == 0 {
			isolated++
		}
	}
	if isolated < g.NumVertices()/5 {
		t.Fatalf("isolated = %d of %d, want >= 20%%", isolated, g.NumVertices())
	}
}

func TestCompressRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Build(0, nil),
		Build(3, nil),
		Path(50),
		Star(64),
		RMAT(10, 8000, 0.57, 0.19, 0.19, 3),
		Grid2D(20, 20),
	}
	for _, g := range graphs {
		c := Compress(g)
		back := c.Decompress()
		if back.NumVertices() != g.NumVertices() || back.NumDirectedEdges() != g.NumDirectedEdges() {
			t.Fatalf("%v: round trip size mismatch", g)
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(Vertex(v)), back.Neighbors(Vertex(v))
			if len(a) != len(b) {
				t.Fatalf("%v: vertex %d degree mismatch", g, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: vertex %d neighbor %d mismatch", g, v, i)
				}
			}
		}
	}
}

func TestCompressSavesSpace(t *testing.T) {
	g := RMAT(14, 1<<17, 0.57, 0.19, 0.19, 9)
	c := Compress(g)
	if c.SizeBytes() >= g.SizeBytes() {
		t.Fatalf("compressed %d bytes >= CSR %d bytes", c.SizeBytes(), g.SizeBytes())
	}
}

func TestEdgeListIO(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n% another\n3 0\n"
	edges, n, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 3 {
		t.Fatalf("n=%d len=%d", n, len(edges))
	}
	g := Build(n, edges)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	edges2, n2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := Build(n2, edges2)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("IO round trip lost edges")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("expected error for short line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("expected error for non-numeric endpoint")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 trivially colliding")
	}
}
