package graph

import (
	"fmt"
	"strings"
	"testing"
)

// generatorPanel instantiates every synthetic generator in gen.go at test
// scale, alongside raw-edge-stream builds that stress the parallel scatter
// with duplicates and self loops.
func generatorPanel() map[string]*Graph {
	return map[string]*Graph{
		"rmat":       RMAT(11, 12000, 0.57, 0.19, 0.19, 3),
		"rmat-skew":  RMAT(10, 20000, 0.5, 0.1, 0.1, 9),
		"ba":         BarabasiAlbert(1200, 5, 4),
		"er":         ErdosRenyi(2000, 6000, 5),
		"grid":       Grid2D(37, 23),
		"path":       Path(513),
		"cycle":      Cycle(100),
		"star":       Star(300),
		"cliques":    Cliques(7, 9),
		"weblike":    WebLike(10, 5000, 0.3, 6),
		"empty":      Build(0, nil),
		"single":     Build(1, nil),
		"isolated":   Build(64, nil),
		"self-loops": Build(5, []Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 3}}),
		"dups":       Build(4, []Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}, {U: 2, V: 3}}),
	}
}

// TestBuildInvariants property-checks every generator's output: the CSR is
// symmetric, each adjacency list is strictly ascending (sorted, deduped),
// self-loop-free, and the offsets are consistent with the degree sum.
func TestBuildInvariants(t *testing.T) {
	for name, g := range generatorPanel() {
		n := g.NumVertices()
		if int(g.Offsets[n]) != len(g.Adj) {
			t.Fatalf("%s: Offsets[n]=%d, len(Adj)=%d", name, g.Offsets[n], len(g.Adj))
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(Vertex(v))
		}
		if degSum != g.NumDirectedEdges() || degSum != 2*g.NumEdges() {
			t.Fatalf("%s: degree sum %d, directed %d, 2m %d", name, degSum, g.NumDirectedEdges(), 2*g.NumEdges())
		}
		seen := make(map[[2]Vertex]bool)
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(Vertex(v))
			for i, u := range nbrs {
				if u == Vertex(v) {
					t.Fatalf("%s: self loop at %d", name, v)
				}
				if int(u) >= n {
					t.Fatalf("%s: neighbor %d out of range", name, u)
				}
				if i > 0 && nbrs[i-1] >= u {
					t.Fatalf("%s: adjacency of %d not strictly ascending at %d", name, v, i)
				}
				seen[[2]Vertex{Vertex(v), u}] = true
			}
		}
		for e := range seen {
			if !seen[[2]Vertex{e[1], e[0]}] {
				t.Fatalf("%s: edge (%d,%d) has no reverse", name, e[0], e[1])
			}
		}
	}
}

// TestBuildMatchesSequential cross-checks the parallel pipeline against a
// trivially correct sequential construction.
func TestBuildMatchesSequential(t *testing.T) {
	edges := RMATEdges(10, 9000, 0.57, 0.19, 0.19, 11)
	n := 1 << 10
	g := Build(n, edges)
	adj := make(map[Vertex]map[Vertex]bool)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		for _, p := range [][2]Vertex{{e.U, e.V}, {e.V, e.U}} {
			if adj[p[0]] == nil {
				adj[p[0]] = make(map[Vertex]bool)
			}
			adj[p[0]][p[1]] = true
		}
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(Vertex(v))
		if len(nbrs) != len(adj[Vertex(v)]) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(nbrs), len(adj[Vertex(v)]))
		}
		for _, u := range nbrs {
			if !adj[Vertex(v)][u] {
				t.Fatalf("vertex %d: spurious neighbor %d", v, u)
			}
		}
	}
}

func TestTryBuildRange(t *testing.T) {
	if _, err := TryBuild(3, []Edge{{U: 0, V: 3}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := TryBuild(0, []Edge{{U: 0, V: 0}}); err == nil {
		t.Fatal("expected out-of-range error for n=0")
	}
	if g, err := TryBuild(3, []Edge{{U: 0, V: 2}}); err != nil || g.NumEdges() != 1 {
		t.Fatalf("valid input rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on out-of-range endpoint")
		}
	}()
	Build(2, []Edge{{U: 0, V: 2}})
}

// TestReadEdgeListParallelChunks drives the chunked parallel parser across
// an input large enough to split into several chunks and checks the result
// against the naive line-by-line interpretation.
func TestReadEdgeListParallelChunks(t *testing.T) {
	var sb strings.Builder
	var want []Edge
	maxV := 0
	for i := 0; i < 40000; i++ {
		switch i % 7 {
		case 3:
			fmt.Fprintf(&sb, "# comment %d\n", i)
		case 5:
			sb.WriteString("   \n")
		default:
			u, v := i%311, (i*17)%997
			fmt.Fprintf(&sb, "%d\t%d  extra-%d\n", u, v, i)
			want = append(want, Edge{Vertex(u), Vertex(v)})
			if u+1 > maxV {
				maxV = u + 1
			}
			if v+1 > maxV {
				maxV = v + 1
			}
		}
	}
	if sb.Len() < 128<<10 {
		t.Fatalf("input too small to exercise chunking: %d bytes", sb.Len())
	}
	edges, n, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != maxV || len(edges) != len(want) {
		t.Fatalf("n=%d len=%d, want n=%d len=%d", n, len(edges), maxV, len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

// TestReadEdgeListErrorLines checks that malformed lines report their exact
// 1-based line number, including when the bad line lands beyond the first
// parallel chunk.
func TestReadEdgeListErrorLines(t *testing.T) {
	cases := []struct {
		in   string
		line int
	}{
		{"0 1\nbogus\n2 3\n", 2},
		{"0\n", 1},
		{"# c\n\n0 1\n1 x\n", 4},
		{"5000000000 1\n", 1}, // endpoint beyond uint32
		{"0 1\n1 -2\n", 2},
	}
	// A bad line far past the 64 KiB minimum chunk size: the second chunk
	// must still report the global line number.
	var sb strings.Builder
	lines := 0
	for sb.Len() < 200<<10 {
		fmt.Fprintf(&sb, "%d %d\n", lines%100, (lines+1)%100)
		lines++
	}
	sb.WriteString("broken line\n")
	cases = append(cases, struct {
		in   string
		line int
	}{sb.String(), lines + 1})

	for _, c := range cases {
		_, _, err := ReadEdgeList(strings.NewReader(c.in))
		if err == nil {
			t.Fatalf("no error for %.30q", c.in)
		}
		want := fmt.Sprintf("line %d:", c.line)
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not carry %q", err, want)
		}
	}
}

func BenchmarkReadEdgeList(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i%4096, (i*31)%4096)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	edges := RMATEdges(16, 16*(1<<16), 0.57, 0.19, 0.19, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(1<<16, edges)
	}
}
