//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapFile always fails on platforms without a unix mmap; LoadCBIN falls
// back to reading the file into memory.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

func munmap(m []byte) error { return os.ErrInvalid }
