//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapFile always fails on platforms without a unix mmap; LoadCBIN falls
// back to reading the file into memory.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

// mmapRegion likewise routes per-segment loads to the heap-read fallback.
func mmapRegion(f *os.File, off int64, length int) (view, region []byte, err error) {
	return nil, nil, errors.New("graph: mmap unsupported on this platform")
}

// munmap releases nothing on this platform: graphs loaded through the read
// fallback are ordinary heap memory, so Close must be a no-op rather than
// report a spurious error.
func munmap(m []byte) error { return nil }
