package graph

// Rep is the pluggable graph-representation abstraction: the contract every
// backend (flat CSR, byte-compressed CSR, and any future representation)
// satisfies, and the constraint the algorithm kernels are generic over.
//
// Kernels take a type parameter `[G Rep]` rather than an interface value, so
// Go instantiates the hot loops per backend: the per-vertex NeighborsInto
// call resolves through the generic dictionary once per vertex, and the
// per-neighbor inner loop is a plain slice range with no dynamic dispatch.
// Rep doubles as a runtime interface for code that holds "whichever
// representation was loaded" (the CLI, the Solver's ComponentsOn dispatch).
//
// The iteration contract is a neighbor-slice/decoder pair: NeighborsInto
// returns v's sorted adjacency list, reusing buf as decode scratch when the
// representation is not stored flat. The canonical hot-loop shape is
//
//	var buf []graph.Vertex
//	for v := lo; v < hi; v++ {
//		buf = g.NeighborsInto(graph.Vertex(v), buf)
//		for _, u := range buf { ... }
//	}
//
// which is allocation-free in steady state for both backends: CSR ignores
// buf and returns its internal slice; compressed representations decode into
// buf and return it (possibly grown), so reassigning keeps the scratch
// alive across iterations.
type Rep interface {
	// NumVertices returns the number of vertices n.
	NumVertices() int
	// NumEdges returns the number of undirected edges m.
	NumEdges() int
	// NumDirectedEdges returns the number of stored directed edges (2m for
	// a symmetrized graph).
	NumDirectedEdges() int
	// Degree returns the degree of v.
	Degree(v Vertex) int
	// NeighborsInto returns v's neighbors in ascending order, valid until
	// the next call that reuses buf. Implementations either return an
	// internal slice (ignoring buf) or decode into buf, growing it as
	// needed.
	NeighborsInto(v Vertex, buf []Vertex) []Vertex
	// NeighborsIntoLimit returns at least the first min(limit, Degree(v))
	// neighbors of v — the full list when the representation stores it
	// flat anyway. Kernels that inspect only an adjacency prefix (k-out
	// sampling) use it to bound decode work on compressed encodings.
	NeighborsIntoLimit(v Vertex, buf []Vertex, limit int) []Vertex
	// SizeBytes returns the resident size of the adjacency structure in
	// bytes (offsets, degree/index arrays, and edge storage), the
	// space-vs-throughput statistic the CLI and benchmarks report.
	SizeBytes() int
}

// Compile-time checks that every first-class backend satisfies Rep.
var (
	_ Rep = (*Graph)(nil)
	_ Rep = (*CompressedGraph)(nil)
	_ Rep = (*SegmentedGraph)(nil)
)

// NeighborsInto returns the adjacency list of v. The CSR representation
// stores adjacency flat, so buf is ignored and the internal slice is
// returned; it must not be modified.
func (g *Graph) NeighborsInto(v Vertex, buf []Vertex) []Vertex {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborsIntoLimit returns the full adjacency list of v: the flat CSR
// pays nothing for the extra entries.
func (g *Graph) NeighborsIntoLimit(v Vertex, buf []Vertex, limit int) []Vertex {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// SizeBytes returns the resident size of the CSR arrays in bytes.
func (g *Graph) SizeBytes() int {
	return 8*len(g.Offsets) + 4*len(g.Adj)
}
