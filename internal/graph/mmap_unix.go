//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. Zero-length files cannot be
// mapped portably; an error routes the caller to the read fallback.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("graph: cannot mmap %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// mmapRegion maps length bytes of f starting at byte offset off, read-only.
// mmap offsets must be page-aligned, so the actual mapping begins at the
// containing page: region is the full mapping (what munmap takes) and view
// is the requested [off, off+length) window into it. The .cbin v2 layout
// keeps off 8-aligned and pages are too, so view stays 8-aligned for the
// uint32 casts.
func mmapRegion(f *os.File, off int64, length int) (view, region []byte, err error) {
	if off < 0 || length <= 0 {
		return nil, nil, fmt.Errorf("graph: cannot mmap %d bytes at offset %d", length, off)
	}
	pg := int64(os.Getpagesize())
	aligned := off - off%pg
	delta := int(off - aligned)
	region, err = syscall.Mmap(int(f.Fd()), aligned, delta+length, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return region[delta : delta+length : delta+length], region, nil
}

func munmap(m []byte) error { return syscall.Munmap(m) }
