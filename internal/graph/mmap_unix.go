//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. Zero-length files cannot be
// mapped portably; an error routes the caller to the read fallback.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("graph: cannot mmap %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(m []byte) error { return syscall.Munmap(m) }
