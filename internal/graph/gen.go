package graph

// This file contains the synthetic graph generators used by the evaluation.
// Each paper input graph is mapped to a generator of the same class
// (DESIGN.md §8): RMAT and Barabási–Albert for social/web networks, a 2-D
// grid for the road_usa high-diameter network, Erdős–Rényi for uniform
// random graphs, and small fixture graphs for tests.

// RMAT generates an RMAT (recursive matrix) power-law graph with n = 2^scale
// vertices and approximately m undirected edges, using partition
// probabilities (a, b, c) as in the paper's streaming experiments
// ((0.5, 0.1, 0.1) in §4.4). Self loops and duplicates are removed by Build,
// so the realized edge count can be slightly below m.
func RMAT(scale int, m int, a, b, c float64, seed uint64) *Graph {
	return Build(1<<scale, RMATEdges(scale, m, a, b, c, seed))
}

// RMATEdges generates the raw RMAT edge stream without building a graph.
// It is used directly by the streaming experiments, which ingest COO batches.
func RMATEdges(scale int, m int, a, b, c float64, seed uint64) []Edge {
	n := uint64(1) << scale
	r := newRNG(seed)
	edges := make([]Edge, m)
	for i := range edges {
		var u, v uint64
		for bit := n >> 1; bit > 0; bit >>= 1 {
			p := r.float()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+b:
				v |= bit
			case p < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		edges[i] = Edge{Vertex(u), Vertex(v)}
	}
	return edges
}

// BarabasiAlbert generates a preferential-attachment graph with n vertices
// where each new vertex attaches k edges to existing vertices (so m ≈ k·n,
// matching the paper's BA stream with m = 10n for k = 10).
func BarabasiAlbert(n, k int, seed uint64) *Graph {
	return Build(n, BarabasiAlbertEdges(n, k, seed))
}

// BarabasiAlbertEdges generates the raw Barabási–Albert edge stream using
// the standard repeated-endpoint trick: sampling a uniform position in the
// edge list so far selects a vertex with probability proportional to degree.
func BarabasiAlbertEdges(n, k int, seed uint64) []Edge {
	if n < 2 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	r := newRNG(seed)
	// endpoints records every edge endpoint; picking a uniform element
	// samples proportionally to degree.
	endpoints := make([]Vertex, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	endpoints = append(endpoints, 0, 1)
	edges = append(edges, Edge{0, 1})
	for v := 2; v < n; v++ {
		for e := 0; e < k; e++ {
			var t Vertex
			if r.float() < 0.1 || len(endpoints) == 0 {
				t = Vertex(r.intn(uint64(v)))
			} else {
				t = endpoints[r.intn(uint64(len(endpoints)))]
			}
			edges = append(edges, Edge{Vertex(v), t})
			endpoints = append(endpoints, Vertex(v), t)
		}
	}
	return edges
}

// ErdosRenyi generates a uniform random graph with n vertices and m edges.
func ErdosRenyi(n, m int, seed uint64) *Graph {
	r := newRNG(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Vertex(r.intn(uint64(n))), Vertex(r.intn(uint64(n)))}
	}
	return Build(n, edges)
}

// Grid2D generates a rows×cols 2-D mesh: the high-diameter, low-degree
// analog of the road_usa network (diameter rows+cols-2, degrees 2–4).
func Grid2D(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := Vertex(i*cols + j)
			if j+1 < cols {
				edges = append(edges, Edge{v, v + 1})
			}
			if i+1 < rows {
				edges = append(edges, Edge{v, v + Vertex(cols)})
			}
		}
	}
	return Build(n, edges)
}

// Path generates a path graph on n vertices.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{Vertex(i), Vertex(i + 1)})
	}
	return Build(n, edges)
}

// Cycle generates a cycle on n vertices.
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{Vertex(i), Vertex((i + 1) % n)})
	}
	return Build(n, edges)
}

// Star generates a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, Vertex(i)})
	}
	return Build(n, edges)
}

// Cliques generates k disjoint cliques of size s each (k components).
// It is the adversarial many-components fixture used by the tests.
func Cliques(k, s int) *Graph {
	edges := make([]Edge, 0, k*s*(s-1)/2)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				edges = append(edges, Edge{Vertex(base + i), Vertex(base + j)})
			}
		}
	}
	return Build(k*s, edges)
}

// WebLike generates an RMAT-style graph where a fraction of the vertices are
// isolated, mimicking the many-components structure of the Hyperlink web
// crawls (Table 2: Hyperlink2012 has 144M components but one massive one).
// isolatedFrac of the n vertices receive no edges.
func WebLike(scale int, m int, isolatedFrac float64, seed uint64) *Graph {
	n := 1 << scale
	live := n - int(float64(n)*isolatedFrac)
	if live < 2 {
		live = 2
	}
	edges := RMATEdges(scale, m, 0.57, 0.19, 0.19, seed)
	// Remap endpoints into the live prefix so the suffix stays isolated.
	for i := range edges {
		edges[i].U %= Vertex(live)
		edges[i].V %= Vertex(live)
	}
	return Build(n, edges)
}
