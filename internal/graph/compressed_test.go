package graph

import (
	"testing"
)

// compressPanel is the graph set the round-trip tests sweep: it covers
// empty graphs, isolated vertices, first-neighbor negative differences
// (zig-zag coding), multi-byte varint gaps, and power-law degree skew.
func compressPanel() map[string]*Graph {
	// A sparse graph over a huge ID space: consecutive-neighbor differences
	// need up to 4 varint bytes, and vertex 1<<22-1's first neighbor (0)
	// encodes as a large negative zig-zag difference.
	wide := Build(1<<22, []Edge{
		{U: 0, V: 1<<22 - 1},
		{U: 5, V: 1 << 21},
		{U: 5, V: 1<<21 + 1},
		{U: 1 << 10, V: 1 << 20},
	})
	return map[string]*Graph{
		"empty":       Build(0, nil),
		"isolated":    Build(17, nil),
		"single-edge": Build(2, []Edge{{U: 0, V: 1}}),
		"self-loops":  Build(5, []Edge{{U: 2, V: 2}, {U: 1, V: 3}}),
		"path":        Path(257),
		"cycle":       Cycle(64),
		"star":        Star(128),
		"cliques":     Cliques(9, 7),
		"grid":        Grid2D(31, 17),
		"rmat":        RMAT(11, 12000, 0.57, 0.19, 0.19, 5),
		"er":          ErdosRenyi(500, 2000, 7),
		"ba":          BarabasiAlbert(400, 6, 8),
		"web":         WebLike(10, 4000, 0.2, 9),
		"wide-ids":    wide,
	}
}

// TestDecodeMatchesNeighbors checks Decode against the plain CSR adjacency
// for every vertex: same neighbors, same ascending order.
func TestDecodeMatchesNeighbors(t *testing.T) {
	for name, g := range compressPanel() {
		c := Compress(g)
		if c.NumVertices() != g.NumVertices() {
			t.Fatalf("%s: NumVertices %d != %d", name, c.NumVertices(), g.NumVertices())
		}
		for v := 0; v < g.NumVertices(); v++ {
			want := g.Neighbors(Vertex(v))
			var got []Vertex
			c.Decode(Vertex(v), func(u Vertex) { got = append(got, u) })
			if len(got) != len(want) || int(c.Degrees[v]) != len(want) {
				t.Fatalf("%s: vertex %d decoded %d neighbors, want %d", name, v, len(got), len(want))
			}
			prev := int64(-1)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: vertex %d neighbor %d = %d, want %d", name, v, i, got[i], want[i])
				}
				if int64(got[i]) <= prev {
					t.Fatalf("%s: vertex %d neighbors not strictly ascending at %d", name, v, i)
				}
				prev = int64(got[i])
			}
		}
	}
}

// TestCompressDecompressRoundTrip checks the full CSR round trip on the
// panel, including offsets consistency of the reconstructed graph.
func TestCompressDecompressRoundTrip(t *testing.T) {
	for name, g := range compressPanel() {
		c := Compress(g)
		back := c.Decompress()
		if back.NumVertices() != g.NumVertices() || back.NumDirectedEdges() != g.NumDirectedEdges() {
			t.Fatalf("%s: round-trip size mismatch: n %d->%d, m %d->%d", name,
				g.NumVertices(), back.NumVertices(), g.NumDirectedEdges(), back.NumDirectedEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(Vertex(v)), back.Neighbors(Vertex(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree %d -> %d", name, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d neighbor %d: %d -> %d", name, v, i, a[i], b[i])
				}
			}
		}
		// A second compression of the reconstruction must be byte-identical:
		// the encoding is canonical for a sorted CSR.
		c2 := Compress(back)
		if len(c2.Data) != len(c.Data) {
			t.Fatalf("%s: re-compression size %d != %d", name, len(c2.Data), len(c.Data))
		}
		for i := range c.Data {
			if c.Data[i] != c2.Data[i] {
				t.Fatalf("%s: re-compression differs at byte %d", name, i)
			}
		}
	}
}

// TestVarintZigzagRoundTrip exercises the codec primitives across the
// boundary values of each varint length class.
func TestVarintZigzagRoundTrip(t *testing.T) {
	var buf [10]byte
	values := []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1<<21 - 1, 1 << 21, 1<<28 - 1, 1 << 28, 1<<63 - 1}
	for _, v := range values {
		k := putVarint(buf[:], v)
		got, n := getVarint(buf[:k])
		if got != v || n != k {
			t.Fatalf("varint %d: decoded %d (len %d, wrote %d)", v, got, n, k)
		}
	}
	signed := []int64{0, 1, -1, 63, -64, 64, -65, 1 << 30, -(1 << 30), 1<<62 - 1, -(1 << 62)}
	for _, d := range signed {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag %d: round-tripped %d", d, got)
		}
	}
}

// TestTryCompressCapExceeded exercises the offset-index overflow path
// through the injectable cap: encoding must fail with an error (and
// Compress must panic) instead of silently truncating uint32 offsets.
func TestTryCompressCapExceeded(t *testing.T) {
	g := Path(4096) // a few KiB encoded

	if _, err := TryCompress(g); err != nil {
		t.Fatalf("TryCompress under the real cap: %v", err)
	}

	if _, err := tryCompress(g, 16); err == nil {
		t.Fatal("tryCompress with a 16-byte cap succeeded; want error")
	}

	// The error must be an error return, not a panic, all the way up
	// through TryCompress-shaped callers; Compress keeps the panic
	// contract for trusted in-memory graphs.
	c, err := tryCompress(g, 1<<20)
	if err != nil || c == nil {
		t.Fatalf("tryCompress with a roomy cap: %v", err)
	}
	if got := c.Decompress(); got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip after cap check lost edges: %d != %d", got.NumEdges(), g.NumEdges())
	}
}
