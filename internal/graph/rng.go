package graph

// rng is a small, fast, deterministic pseudo-random generator (splitmix64).
// The generators use it instead of math/rand so that graph instances are
// reproducible across runs and machines for a given seed, which keeps the
// experiment harness deterministic.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be > 0.
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Hash64 deterministically hashes x (splitmix64 finalizer). It is used for
// per-element randomness in parallel loops where a shared rng would race.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
