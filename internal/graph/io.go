package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// lines starting with '#' or '%' are comments) and returns the edges and the
// implied vertex count (max endpoint + 1).
func ReadEdgeList(r io.Reader) (edges []Edge, n int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: expected two endpoints, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{Vertex(u), Vertex(v)})
		if int(u)+1 > n {
			n = int(u) + 1
		}
		if int(v)+1 > n {
			n = int(v) + 1
		}
	}
	return edges, n, sc.Err()
}

// LoadEdgeListFile reads an edge-list file and builds a symmetric graph.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges, n, err := ReadEdgeList(f)
	if err != nil {
		return nil, err
	}
	return Build(n, edges), nil
}

// WriteEdgeList writes the undirected edge list of g ("u v" per line).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			if Vertex(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
