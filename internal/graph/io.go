package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"

	"connectit/internal/parallel"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line;
// extra fields are ignored; lines starting with '#' or '%' are comments)
// and returns the edges and the implied vertex count (max endpoint + 1).
//
// The input is read once and cut into newline-aligned chunks that parse in
// parallel with manual field splitting — no per-line string, Fields, or
// TrimSpace allocations — while errors still report the exact 1-based line
// number of the offending input line.
func ReadEdgeList(r io.Reader) (edges []Edge, n int, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	return ParseEdgeList(data)
}

// edgeChunk is the parse state of one newline-aligned span of the input.
type edgeChunk struct {
	lo, hi  int // byte range
	edges   []Edge
	maxV    uint64 // max endpoint + 1 seen
	lines   int    // lines fully scanned (complete on success)
	errLine int    // chunk-local 1-based line of the first error, 0 if none
	err     error  // error without the line prefix
}

// ParseEdgeList is ReadEdgeList over bytes already in memory.
func ParseEdgeList(data []byte) ([]Edge, int, error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	chunks := splitChunks(data)
	parallel.ForGrained(len(chunks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parseEdgeChunk(data, &chunks[i])
		}
	})
	line := 0
	total := 0
	var maxV uint64
	for i := range chunks {
		c := &chunks[i]
		if c.err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %w", line+c.errLine, c.err)
		}
		line += c.lines
		total += len(c.edges)
		if c.maxV > maxV {
			maxV = c.maxV
		}
	}
	out := make([]Edge, total)
	pos := 0
	starts := make([]int, len(chunks))
	for i := range chunks {
		starts[i] = pos
		pos += len(chunks[i].edges)
	}
	parallel.ForGrained(len(chunks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out[starts[i]:], chunks[i].edges)
		}
	})
	return out, int(maxV), nil
}

// splitChunks cuts data into newline-aligned spans, one unit of parallel
// parsing each.
func splitChunks(data []byte) []edgeChunk {
	target := len(data)/(4*parallel.Procs()) + 1
	if target < 64<<10 {
		target = 64 << 10
	}
	var chunks []edgeChunk
	for lo := 0; lo < len(data); {
		hi := lo + target
		if hi >= len(data) {
			hi = len(data)
		} else if nl := bytes.IndexByte(data[hi:], '\n'); nl >= 0 {
			hi += nl + 1
		} else {
			hi = len(data)
		}
		chunks = append(chunks, edgeChunk{lo: lo, hi: hi})
		lo = hi
	}
	return chunks
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f' }

// parseEdgeChunk scans c's byte range line by line with manual field
// splitting, recording edges, the running max endpoint, and the chunk-local
// line of the first malformed line.
func parseEdgeChunk(data []byte, c *edgeChunk) {
	i := c.lo
	for i < c.hi {
		end := c.hi
		if nl := bytes.IndexByte(data[i:c.hi], '\n'); nl >= 0 {
			end = i + nl
		}
		c.lines++
		lineStart, lineEnd := i, end
		i = end + 1

		// Skip leading whitespace; blank lines and comments fall through.
		j := lineStart
		for j < lineEnd && isSpace(data[j]) {
			j++
		}
		if j == lineEnd || data[j] == '#' || data[j] == '%' {
			continue
		}
		u, j, ok := parseEndpoint(data, j, lineEnd)
		if !ok {
			c.errLine = c.lines
			c.err = fmt.Errorf("expected two endpoints, got %q", data[lineStart:lineEnd])
			return
		}
		for j < lineEnd && isSpace(data[j]) {
			j++
		}
		v, _, ok := parseEndpoint(data, j, lineEnd)
		if !ok {
			c.errLine = c.lines
			c.err = fmt.Errorf("expected two endpoints, got %q", data[lineStart:lineEnd])
			return
		}
		c.edges = append(c.edges, Edge{Vertex(u), Vertex(v)})
		if u+1 > c.maxV {
			c.maxV = u + 1
		}
		if v+1 > c.maxV {
			c.maxV = v + 1
		}
	}
}

// parseEndpoint parses one decimal uint32 field of data[j:end], returning
// the value, the index just past the field, and whether the field was a
// well-formed in-range number followed by whitespace or end of line.
func parseEndpoint(data []byte, j, end int) (uint64, int, bool) {
	start := j
	var v uint64
	for j < end && data[j] >= '0' && data[j] <= '9' {
		v = v*10 + uint64(data[j]-'0')
		if v > math.MaxUint32 {
			return 0, j, false
		}
		j++
	}
	if j == start || (j < end && !isSpace(data[j])) {
		return 0, j, false
	}
	return v, j, true
}

// LoadEdgeListFile reads an edge-list file and builds a symmetric graph.
// Malformed lines and out-of-range endpoints are reported as errors, never
// panics.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges, n, err := ReadEdgeList(f)
	if err != nil {
		return nil, err
	}
	return TryBuild(n, edges)
}

// WriteEdgeList writes the undirected edge list of g ("u v" per line).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			if Vertex(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
