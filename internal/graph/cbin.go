package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"unsafe"

	"connectit/internal/parallel"
)

// This file implements the versioned .cbin on-disk format for compressed
// graphs. The layout is a header followed by the three CompressedGraph
// arrays verbatim (little-endian), so a memory-mapped file IS the in-memory
// representation — huge graphs open in O(1) without materializing anything:
//
//	offset  0: magic   "CBIN" (4 bytes)
//	offset  4: version uint32 (currently 1)
//	offset  8: n       uint64 (vertex count)
//	offset 16: m       uint64 (directed edge count)
//	offset 24: dataLen uint64 (encoded adjacency bytes)
//	offset 32: offsets (n+1)×uint32, degrees n×uint32, data dataLen bytes
//
// The 32-byte header keeps the offsets array 4-aligned for the mmap cast.

const (
	cbinMagic   = "CBIN"
	cbinVersion = 1
	cbinHeader  = 32
)

// ErrBadCBIN reports a malformed, truncated, or wrong-version .cbin input.
var ErrBadCBIN = fmt.Errorf("graph: invalid cbin file")

// WriteCBIN writes c in the .cbin format.
func WriteCBIN(w io.Writer, c *CompressedGraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [cbinHeader]byte
	copy(hdr[0:4], cbinMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], cbinVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(c.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:24], c.m)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c.Data)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeU32s(bw, c.Offsets); err != nil {
		return err
	}
	if err := writeU32s(bw, c.Degrees); err != nil {
		return err
	}
	if _, err := bw.Write(c.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// writeU32s encodes vals little-endian through a batch buffer — one Write
// per 64 KiB rather than per word, so saving a scale-20+ graph is bound by
// I/O, not call overhead.
func writeU32s(w io.Writer, vals []uint32) error {
	var batch [1 << 16]byte
	pos := 0
	for _, v := range vals {
		binary.LittleEndian.PutUint32(batch[pos:], v)
		pos += 4
		if pos == len(batch) {
			if _, err := w.Write(batch[:]); err != nil {
				return err
			}
			pos = 0
		}
	}
	if pos > 0 {
		if _, err := w.Write(batch[:pos]); err != nil {
			return err
		}
	}
	return nil
}

// SaveCBIN writes c to path in the .cbin format.
func SaveCBIN(path string, c *CompressedGraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCBIN(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cbinDims validates a .cbin header and returns (n, m, dataLen). size is the
// total input length in bytes when known (mmap/stat), or -1 for streams.
func cbinDims(hdr []byte, size int64) (n, m, dataLen uint64, err error) {
	if len(hdr) < cbinHeader {
		return 0, 0, 0, fmt.Errorf("%w: %d-byte input shorter than the %d-byte header", ErrBadCBIN, len(hdr), cbinHeader)
	}
	if string(hdr[0:4]) != cbinMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadCBIN, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != cbinVersion {
		return 0, 0, 0, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadCBIN, v, cbinVersion)
	}
	n = binary.LittleEndian.Uint64(hdr[8:16])
	m = binary.LittleEndian.Uint64(hdr[16:24])
	dataLen = binary.LittleEndian.Uint64(hdr[24:32])
	if dataLen > maxCompressedBytes {
		return 0, 0, 0, fmt.Errorf("%w: data length %d beyond the 4 GiB offset cap", ErrBadCBIN, dataLen)
	}
	// Every neighbor encodes as at least one byte, so m can never exceed
	// dataLen; catching it here rejects garbage headers cheaply.
	if m > dataLen {
		return 0, 0, 0, fmt.Errorf("%w: %d directed edges cannot fit in %d data bytes", ErrBadCBIN, m, dataLen)
	}
	want := uint64(cbinHeader) + 4*(n+1) + 4*n + dataLen
	if n > (1<<56)/8 || (size >= 0 && want != uint64(size)) {
		return 0, 0, 0, fmt.Errorf("%w: header implies %d bytes, file has %d", ErrBadCBIN, want, size)
	}
	return n, m, dataLen, nil
}

// checkCBINIndex validates the offset/degree index shared by the mmap and
// streaming loaders: the offsets must span the data monotonically, every
// vertex's degree must fit in its byte span (each neighbor encodes as at
// least one byte), and the degrees must sum to the header's edge count.
// The scan is parallel and touches only the index arrays, never the edge
// payload — a graph still opens without reading its adjacency. Corruption
// inside the varint payload itself is not detectable without decoding and
// surfaces as garbage neighbors at traversal time.
func checkCBINIndex(c *CompressedGraph, dataLen uint64) error {
	n := len(c.Degrees)
	if c.Offsets[0] != 0 || uint64(c.Offsets[n]) != dataLen {
		return fmt.Errorf("%w: offset index does not span the %d data bytes", ErrBadCBIN, dataLen)
	}
	var bad atomic.Bool
	var degSum atomic.Uint64
	parallel.ForGrained(n, 1<<14, func(lo, hi int) {
		var local uint64
		for v := lo; v < hi; v++ {
			if c.Offsets[v+1] < c.Offsets[v] || uint64(c.Degrees[v]) > uint64(c.Offsets[v+1]-c.Offsets[v]) {
				bad.Store(true)
				return
			}
			local += uint64(c.Degrees[v])
		}
		degSum.Add(local)
	})
	if bad.Load() {
		return fmt.Errorf("%w: offset/degree index is inconsistent", ErrBadCBIN)
	}
	if degSum.Load() != c.m {
		return fmt.Errorf("%w: degree sum %d != header edge count %d", ErrBadCBIN, degSum.Load(), c.m)
	}
	return nil
}

// ReadCBIN reads a .cbin graph from a stream into freshly allocated arrays.
// LoadCBIN is preferred for files: it memory-maps instead of copying.
//
// Array storage grows incrementally as bytes actually arrive, so a
// corrupted header's vertex count cannot force a giant up-front
// allocation: a short stream fails with ErrBadCBIN after allocating at
// most proportionally to its real length.
func ReadCBIN(r io.Reader) (*CompressedGraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [cbinHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCBIN, err)
	}
	n, m, dataLen, err := cbinDims(hdr[:], -1)
	if err != nil {
		return nil, err
	}
	offsets, err := readU32s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated offsets: %v", ErrBadCBIN, err)
	}
	degrees, err := readU32s(br, n)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated degrees: %v", ErrBadCBIN, err)
	}
	data, err := readBytes(br, dataLen)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated data: %v", ErrBadCBIN, err)
	}
	c := &CompressedGraph{Offsets: offsets, Degrees: degrees, Data: data, m: m}
	if err := checkCBINIndex(c, dataLen); err != nil {
		return nil, err
	}
	return c, nil
}

// readU32s decodes count little-endian uint32 values in bounded chunks.
func readU32s(r io.Reader, count uint64) ([]uint32, error) {
	const chunk = 1 << 16
	out := make([]uint32, 0, min(count, chunk))
	buf := make([]byte, 4*min(count, chunk))
	for remaining := count; remaining > 0; {
		c := min(remaining, chunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		remaining -= c
	}
	return out, nil
}

// readBytes reads count bytes in bounded chunks.
func readBytes(r io.Reader, count uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, min(count, chunk))
	for remaining := count; remaining > 0; {
		c := min(remaining, chunk)
		start := len(out)
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return out, nil
}

// LoadCBIN opens a .cbin file by memory-mapping it: the returned graph's
// arrays alias the mapping, so the encoded adjacency — the dominant term —
// is never read at load time and pages in on demand as it is traversed;
// only the offset/degree index is scanned (in parallel) to validate the
// file. Call Close to release the mapping. On platforms without mmap it
// falls back to reading the file into memory.
func LoadCBIN(path string) (*CompressedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	mapped, err := mmapFile(f, st.Size())
	if err != nil {
		// No mmap on this platform (or an exotic file): fall back to a copy.
		c, rerr := ReadCBIN(f)
		if rerr != nil {
			return nil, rerr
		}
		return c, nil
	}
	c, err := cbinFromMapping(mapped, st.Size())
	if err != nil {
		munmap(mapped)
		return nil, err
	}
	return c, nil
}

// cbinFromMapping casts a mapped .cbin image into a CompressedGraph whose
// arrays alias the mapping.
func cbinFromMapping(mapped []byte, size int64) (*CompressedGraph, error) {
	n, m, dataLen, err := cbinDims(mapped, size)
	if err != nil {
		return nil, err
	}
	offEnd := cbinHeader + 4*int(n+1)
	degEnd := offEnd + 4*int(n)
	c := &CompressedGraph{
		Offsets: u32slice(mapped, cbinHeader, int(n+1)),
		Degrees: u32slice(mapped, offEnd, int(n)),
		Data:    mapped[degEnd : degEnd+int(dataLen) : degEnd+int(dataLen)],
		m:       m,
		mapped:  mapped,
	}
	if err := checkCBINIndex(c, dataLen); err != nil {
		return nil, err
	}
	return c, nil
}

// u32slice reinterprets count little-endian uint32 values at m[off:] without
// copying. The .cbin header is 32 bytes and mmap regions are page-aligned,
// so the cast is always 4-aligned. Like the rest of the mmap fast path it
// assumes a little-endian host (every supported target); the ReadCBIN
// fallback is byte-order independent.
func u32slice(m []byte, off, count int) []uint32 {
	if count == 0 {
		return []uint32{}
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&m[off])), count)
}
