package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"unsafe"

	"connectit/internal/parallel"
)

// This file implements the versioned .cbin on-disk format for compressed
// graphs. Both versions share the idea that a memory-mapped file IS the
// in-memory representation — the arrays are stored verbatim (little-endian)
// so huge graphs open without materializing anything.
//
// Version 1 is a single segment: a header followed by the three
// CompressedGraph arrays:
//
//	offset  0: magic   "CBIN" (4 bytes)
//	offset  4: version uint32 (1)
//	offset  8: n       uint64 (vertex count)
//	offset 16: m       uint64 (directed edge count)
//	offset 24: dataLen uint64 (encoded adjacency bytes)
//	offset 32: offsets (n+1)×uint32, degrees n×uint32, data dataLen bytes
//
// Version 2 is the multi-segment layout that lifts the 4 GiB cap: the same
// 32-byte header (dataLen replaced by the segment count k), a k-entry
// segment table, then each segment's arrays back to back:
//
//	offset  0: magic   "CBIN" (4 bytes)
//	offset  4: version uint32 (2)
//	offset  8: n       uint64 (vertex count)
//	offset 16: m       uint64 (directed edge count, all segments)
//	offset 24: k       uint64 (segment count)
//	offset 32: k × 32-byte table entries:
//	             firstVertex uint64, numVertices uint64,
//	             dataLen uint64, m uint64 (segment's directed edges)
//	then     : k segment blobs, each padded to an 8-byte boundary:
//	             offsets (numVertices+1)×uint32 (segment-relative),
//	             degrees numVertices×uint32, data dataLen bytes, pad
//
// Segment table entries must tile [0, n) contiguously in order. The header
// and table are 32- and 8-byte multiples and every blob is padded to 8, so
// each blob's offsets array stays 4-aligned for the mmap cast — and each
// segment memory-maps independently, which is how a v2 file larger than RAM
// opens in O(table) and pages in on demand.
//
// WriteCBIN always writes version 2 (a single-segment graph is a v2 file
// with k=1); version 1 files remain fully loadable.

const (
	cbinMagic    = "CBIN"
	cbinVersion1 = 1
	cbinVersion2 = 2
	cbinHeader   = 32
	cbinSegEntry = 32
)

// ErrBadCBIN reports a malformed, truncated, or wrong-version .cbin input.
var ErrBadCBIN = fmt.Errorf("graph: invalid cbin file")

// WriteCBIN writes r in the .cbin v2 format. r must already be compressed
// (*CompressedGraph or *SegmentedGraph); compress CSR graphs first.
func WriteCBIN(w io.Writer, r Rep) error {
	segs, starts, m, err := cbinSegments(r)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [cbinHeader]byte
	copy(hdr[0:4], cbinMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], cbinVersion2)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:24], m)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(segs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var ent [cbinSegEntry]byte
	for i := range segs {
		binary.LittleEndian.PutUint64(ent[0:8], uint64(starts[i]))
		binary.LittleEndian.PutUint64(ent[8:16], uint64(starts[i+1])-uint64(starts[i]))
		binary.LittleEndian.PutUint64(ent[16:24], uint64(len(segs[i].data)))
		binary.LittleEndian.PutUint64(ent[24:32], segs[i].m)
		if _, err := bw.Write(ent[:]); err != nil {
			return err
		}
	}
	var pad [8]byte
	for i := range segs {
		s := &segs[i]
		if err := writeU32s(bw, s.offsets); err != nil {
			return err
		}
		if err := writeU32s(bw, s.degrees); err != nil {
			return err
		}
		if _, err := bw.Write(s.data); err != nil {
			return err
		}
		if p := -(4*len(s.offsets) + 4*len(s.degrees) + len(s.data)) & 7; p > 0 {
			if _, err := bw.Write(pad[:p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// cbinSegments views a compressed representation as its segment list: a
// CompressedGraph is one segment covering [0, n).
func cbinSegments(r Rep) (segs []segmentRef, starts []uint32, m uint64, err error) {
	switch g := r.(type) {
	case *CompressedGraph:
		return []segmentRef{{offsets: g.Offsets, degrees: g.Degrees, data: g.Data, m: g.m}},
			[]uint32{0, uint32(g.NumVertices())}, g.m, nil
	case *SegmentedGraph:
		return g.segs, g.starts, g.m, nil
	}
	return nil, nil, 0, fmt.Errorf("graph: cannot write %T as .cbin; compress it first", r)
}

// writeCBINv1 writes the legacy single-segment v1 layout. Production code
// always writes v2; this exists so tests can fabricate old-format files and
// prove the compatibility path.
func writeCBINv1(w io.Writer, c *CompressedGraph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [cbinHeader]byte
	copy(hdr[0:4], cbinMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], cbinVersion1)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(c.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:24], c.m)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c.Data)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeU32s(bw, c.Offsets); err != nil {
		return err
	}
	if err := writeU32s(bw, c.Degrees); err != nil {
		return err
	}
	if _, err := bw.Write(c.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// writeU32s encodes vals little-endian through a batch buffer — one Write
// per 64 KiB rather than per word, so saving a scale-20+ graph is bound by
// I/O, not call overhead.
func writeU32s(w io.Writer, vals []uint32) error {
	var batch [1 << 16]byte
	pos := 0
	for _, v := range vals {
		binary.LittleEndian.PutUint32(batch[pos:], v)
		pos += 4
		if pos == len(batch) {
			if _, err := w.Write(batch[:]); err != nil {
				return err
			}
			pos = 0
		}
	}
	if pos > 0 {
		if _, err := w.Write(batch[:pos]); err != nil {
			return err
		}
	}
	return nil
}

// SaveCBIN writes r to path in the .cbin v2 format.
func SaveCBIN(path string, r Rep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCBIN(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cbinDims validates a v1 .cbin header and returns (n, m, dataLen). size is
// the total input length in bytes when known (mmap/stat), or -1 for streams.
func cbinDims(hdr []byte, size int64) (n, m, dataLen uint64, err error) {
	if len(hdr) < cbinHeader {
		return 0, 0, 0, fmt.Errorf("%w: %d-byte input shorter than the %d-byte header", ErrBadCBIN, len(hdr), cbinHeader)
	}
	if string(hdr[0:4]) != cbinMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadCBIN, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != cbinVersion1 {
		return 0, 0, 0, fmt.Errorf("%w: unsupported version %d (want %d or %d)", ErrBadCBIN, v, cbinVersion1, cbinVersion2)
	}
	n = binary.LittleEndian.Uint64(hdr[8:16])
	m = binary.LittleEndian.Uint64(hdr[16:24])
	dataLen = binary.LittleEndian.Uint64(hdr[24:32])
	if dataLen > maxCompressedBytes {
		return 0, 0, 0, fmt.Errorf("%w: data length %d beyond the 4 GiB offset cap", ErrBadCBIN, dataLen)
	}
	// Every neighbor encodes as at least one byte, so m can never exceed
	// dataLen; catching it here rejects garbage headers cheaply.
	if m > dataLen {
		return 0, 0, 0, fmt.Errorf("%w: %d directed edges cannot fit in %d data bytes", ErrBadCBIN, m, dataLen)
	}
	want := uint64(cbinHeader) + 4*(n+1) + 4*n + dataLen
	if n > (1<<56)/8 || (size >= 0 && want != uint64(size)) {
		return 0, 0, 0, fmt.Errorf("%w: header implies %d bytes, file has %d", ErrBadCBIN, want, size)
	}
	return n, m, dataLen, nil
}

// cbinSegMeta is one parsed-and-validated v2 segment table entry, with the
// absolute file offset of the segment's blob.
type cbinSegMeta struct {
	first, count  uint64
	dataLen, m    uint64
	blobOff       uint64
	blobLen       uint64 // unpadded: offsets + degrees + data bytes
	blobLenPadded uint64
}

// parseCBINTable validates a v2 segment table against the header's (n, m, k)
// and returns per-segment metadata. The entries must tile [0, n)
// contiguously in file order — any overlap, gap, or reordering is rejected —
// and empty segments are allowed only as the single segment of an empty
// graph, which bounds k by n. size is the total file length when known, or
// -1 for streams.
func parseCBINTable(n, m, k uint64, table []byte, size int64) ([]cbinSegMeta, error) {
	segs := make([]cbinSegMeta, 0, k)
	next := uint64(0)
	off := uint64(cbinHeader) + k*cbinSegEntry
	var msum uint64
	for i := uint64(0); i < k; i++ {
		e := table[i*cbinSegEntry:]
		sm := cbinSegMeta{
			first:   binary.LittleEndian.Uint64(e[0:8]),
			count:   binary.LittleEndian.Uint64(e[8:16]),
			dataLen: binary.LittleEndian.Uint64(e[16:24]),
			m:       binary.LittleEndian.Uint64(e[24:32]),
		}
		if sm.first != next {
			return nil, fmt.Errorf("%w: segment %d starts at vertex %d, expected %d (segments must tile [0,n) in order)", ErrBadCBIN, i, sm.first, next)
		}
		if sm.count > n-next {
			return nil, fmt.Errorf("%w: segment %d covers %d vertices past the graph's %d", ErrBadCBIN, i, sm.count, n)
		}
		if sm.count == 0 && n != 0 {
			return nil, fmt.Errorf("%w: segment %d is empty", ErrBadCBIN, i)
		}
		if sm.dataLen > maxCompressedBytes {
			return nil, fmt.Errorf("%w: segment %d data length %d beyond the 4 GiB offset cap", ErrBadCBIN, i, sm.dataLen)
		}
		if sm.m > sm.dataLen {
			return nil, fmt.Errorf("%w: segment %d: %d directed edges cannot fit in %d data bytes", ErrBadCBIN, i, sm.m, sm.dataLen)
		}
		next = sm.first + sm.count
		msum += sm.m
		sm.blobOff = off
		sm.blobLen = 4*(sm.count+1) + 4*sm.count + sm.dataLen
		sm.blobLenPadded = (sm.blobLen + 7) &^ 7
		off += sm.blobLenPadded
		if size >= 0 && off > uint64(size) {
			return nil, fmt.Errorf("%w: segment %d extends past the file's %d bytes", ErrBadCBIN, i, size)
		}
		segs = append(segs, sm)
	}
	if next != n {
		return nil, fmt.Errorf("%w: segments cover vertices [0,%d), graph has %d", ErrBadCBIN, next, n)
	}
	if msum != m {
		return nil, fmt.Errorf("%w: segment edge counts sum to %d, header says %d", ErrBadCBIN, msum, m)
	}
	if size >= 0 && off != uint64(size) {
		return nil, fmt.Errorf("%w: header implies %d bytes, file has %d", ErrBadCBIN, off, size)
	}
	return segs, nil
}

// checkIndex validates an offset/degree index shared by the mmap and
// streaming loaders: the offsets must span the data monotonically, every
// vertex's degree must fit in its byte span (each neighbor encodes as at
// least one byte), and the degrees must sum to the declared edge count.
// The scan is parallel and touches only the index arrays, never the edge
// payload — a graph still opens without reading its adjacency. Corruption
// inside the varint payload itself is not detectable without decoding and
// surfaces as garbage neighbors at traversal time.
func checkIndex(offsets, degrees []uint32, dataLen, m uint64) error {
	n := len(degrees)
	if offsets[0] != 0 || uint64(offsets[n]) != dataLen {
		return fmt.Errorf("%w: offset index does not span the %d data bytes", ErrBadCBIN, dataLen)
	}
	var bad atomic.Bool
	var degSum atomic.Uint64
	parallel.ForGrained(n, 1<<14, func(lo, hi int) {
		var local uint64
		for v := lo; v < hi; v++ {
			if offsets[v+1] < offsets[v] || uint64(degrees[v]) > uint64(offsets[v+1]-offsets[v]) {
				bad.Store(true)
				return
			}
			local += uint64(degrees[v])
		}
		degSum.Add(local)
	})
	if bad.Load() {
		return fmt.Errorf("%w: offset/degree index is inconsistent", ErrBadCBIN)
	}
	if degSum.Load() != m {
		return fmt.Errorf("%w: degree sum %d != declared edge count %d", ErrBadCBIN, degSum.Load(), m)
	}
	return nil
}

// ReadCBIN reads a .cbin graph (either version) from a stream into freshly
// allocated arrays. LoadCBIN is preferred for files: it memory-maps instead
// of copying. Single-segment inputs (all v1 files, v2 with k=1) return a
// *CompressedGraph; multi-segment v2 returns a *SegmentedGraph.
//
// Array storage grows incrementally as bytes actually arrive, so a
// corrupted header's vertex or segment count cannot force a giant up-front
// allocation: a short stream fails with ErrBadCBIN after allocating at
// most proportionally to its real length.
func ReadCBIN(r io.Reader) (Rep, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [cbinHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCBIN, err)
	}
	if string(hdr[0:4]) == cbinMagic && binary.LittleEndian.Uint32(hdr[4:8]) == cbinVersion2 {
		return readCBINv2(br, hdr[:])
	}
	n, m, dataLen, err := cbinDims(hdr[:], -1)
	if err != nil {
		return nil, err
	}
	offsets, err := readU32s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated offsets: %v", ErrBadCBIN, err)
	}
	degrees, err := readU32s(br, n)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated degrees: %v", ErrBadCBIN, err)
	}
	data, err := readBytes(br, dataLen)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated data: %v", ErrBadCBIN, err)
	}
	if err := checkIndex(offsets, degrees, dataLen, m); err != nil {
		return nil, err
	}
	return &CompressedGraph{Offsets: offsets, Degrees: degrees, Data: data, m: m}, nil
}

// readCBINv2 reads the segment table and blobs of a v2 stream whose header
// has been consumed and validated for magic/version.
func readCBINv2(br *bufio.Reader, hdr []byte) (Rep, error) {
	n := binary.LittleEndian.Uint64(hdr[8:16])
	m := binary.LittleEndian.Uint64(hdr[16:24])
	k := binary.LittleEndian.Uint64(hdr[24:32])
	if n > 1<<32-1 {
		return nil, fmt.Errorf("%w: vertex count %d beyond the 32-bit vertex space", ErrBadCBIN, n)
	}
	if k == 0 || k > n+1 {
		return nil, fmt.Errorf("%w: segment count %d for %d vertices", ErrBadCBIN, k, n)
	}
	table, err := readBytes(br, k*cbinSegEntry)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated segment table: %v", ErrBadCBIN, err)
	}
	metas, err := parseCBINTable(n, m, k, table, -1)
	if err != nil {
		return nil, err
	}
	s := &SegmentedGraph{
		segs:   make([]segmentRef, k),
		starts: make([]uint32, k+1),
		n:      int(n),
		m:      m,
	}
	for i, sm := range metas {
		s.starts[i] = uint32(sm.first)
		offsets, err := readU32s(br, sm.count+1)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated offsets: %v", ErrBadCBIN, i, err)
		}
		degrees, err := readU32s(br, sm.count)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated degrees: %v", ErrBadCBIN, i, err)
		}
		data, err := readBytes(br, sm.dataLen)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated data: %v", ErrBadCBIN, i, err)
		}
		if pad := int(sm.blobLenPadded - sm.blobLen); pad > 0 {
			if _, err := br.Discard(pad); err != nil {
				return nil, fmt.Errorf("%w: segment %d: truncated padding: %v", ErrBadCBIN, i, err)
			}
		}
		if err := checkIndex(offsets, degrees, sm.dataLen, sm.m); err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
		s.segs[i] = segmentRef{offsets: offsets, degrees: degrees, data: data, m: sm.m}
	}
	s.starts[k] = uint32(n)
	if k == 1 {
		return &CompressedGraph{Offsets: s.segs[0].offsets, Degrees: s.segs[0].degrees, Data: s.segs[0].data, m: m}, nil
	}
	return s, nil
}

// readU32s decodes count little-endian uint32 values in bounded chunks.
func readU32s(r io.Reader, count uint64) ([]uint32, error) {
	const chunk = 1 << 16
	out := make([]uint32, 0, min(count, chunk))
	buf := make([]byte, 4*min(count, chunk))
	for remaining := count; remaining > 0; {
		c := min(remaining, chunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		remaining -= c
	}
	return out, nil
}

// readBytes reads count bytes in bounded chunks.
func readBytes(r io.Reader, count uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, min(count, chunk))
	for remaining := count; remaining > 0; {
		c := min(remaining, chunk)
		start := len(out)
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return out, nil
}

// LoadCBIN opens a .cbin file by memory-mapping it: the returned graph's
// arrays alias the mapping(s), so the encoded adjacency — the dominant term
// — is never read at load time and pages in on demand as it is traversed;
// only the offset/degree index is scanned (in parallel) to validate the
// file. v2 files map each segment independently, so a graph larger than RAM
// opens in O(segment table) and executes out of core. Call Close on the
// returned graph to release the mapping(s). On platforms without mmap it
// falls back to reading the file into memory.
//
// Single-segment inputs (all v1 files, v2 with k=1) return a
// *CompressedGraph; multi-segment v2 files return a *SegmentedGraph.
func LoadCBIN(path string) (Rep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [cbinHeader]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCBIN, err)
	}
	if string(hdr[0:4]) == cbinMagic && binary.LittleEndian.Uint32(hdr[4:8]) == cbinVersion2 {
		return loadCBINv2(f, hdr[:], st.Size())
	}
	mapped, err := mmapFile(f, st.Size())
	if err != nil {
		// No mmap on this platform (or an exotic file): fall back to a copy.
		return ReadCBIN(f)
	}
	c, err := cbinFromMapping(mapped, st.Size())
	if err != nil {
		munmap(mapped)
		return nil, err
	}
	return c, nil
}

// loadCBINv2 opens a v2 file, mapping each segment's blob independently.
// A segment whose mapping fails (no mmap on this platform) is read into
// memory instead, so mapped and heap-backed segments can coexist.
func loadCBINv2(f *os.File, hdr []byte, size int64) (Rep, error) {
	n := binary.LittleEndian.Uint64(hdr[8:16])
	m := binary.LittleEndian.Uint64(hdr[16:24])
	k := binary.LittleEndian.Uint64(hdr[24:32])
	if n > 1<<32-1 {
		return nil, fmt.Errorf("%w: vertex count %d beyond the 32-bit vertex space", ErrBadCBIN, n)
	}
	if k == 0 || uint64(cbinHeader)+k*cbinSegEntry > uint64(size) || k > n+1 {
		return nil, fmt.Errorf("%w: segment count %d for %d vertices in a %d-byte file", ErrBadCBIN, k, n, size)
	}
	table := make([]byte, k*cbinSegEntry)
	if _, err := f.ReadAt(table, cbinHeader); err != nil {
		return nil, fmt.Errorf("%w: truncated segment table: %v", ErrBadCBIN, err)
	}
	metas, err := parseCBINTable(n, m, k, table, size)
	if err != nil {
		return nil, err
	}
	s := &SegmentedGraph{
		segs:   make([]segmentRef, k),
		starts: make([]uint32, k+1),
		n:      int(n),
		m:      m,
		maps:   make([][]byte, k),
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	for i, sm := range metas {
		s.starts[i] = uint32(sm.first)
		c := int(sm.count)
		offEnd := 4 * (c + 1)
		degEnd := offEnd + 4*c
		if view, region, err := mmapRegion(f, int64(sm.blobOff), int(sm.blobLen)); err == nil {
			s.segs[i] = segmentRef{
				offsets: u32slice(view, 0, c+1),
				degrees: u32slice(view, offEnd, c),
				data:    view[degEnd : degEnd+int(sm.dataLen) : degEnd+int(sm.dataLen)],
				m:       sm.m,
			}
			s.maps[i] = region
			continue
		}
		sr := bufio.NewReaderSize(io.NewSectionReader(f, int64(sm.blobOff), int64(sm.blobLen)), 1<<20)
		offsets, err := readU32s(sr, sm.count+1)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated offsets: %v", ErrBadCBIN, i, err)
		}
		degrees, err := readU32s(sr, sm.count)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated degrees: %v", ErrBadCBIN, i, err)
		}
		data, err := readBytes(sr, sm.dataLen)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d: truncated data: %v", ErrBadCBIN, i, err)
		}
		s.segs[i] = segmentRef{offsets: offsets, degrees: degrees, data: data, m: sm.m}
	}
	s.starts[k] = uint32(n)
	for i := range s.segs {
		if err := checkIndex(s.segs[i].offsets, s.segs[i].degrees, metas[i].dataLen, metas[i].m); err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
	}
	ok = true
	if k == 1 {
		return &CompressedGraph{Offsets: s.segs[0].offsets, Degrees: s.segs[0].degrees, Data: s.segs[0].data, m: m, mapped: s.maps[0]}, nil
	}
	return s, nil
}

// cbinFromMapping casts a mapped v1 .cbin image into a CompressedGraph whose
// arrays alias the mapping.
func cbinFromMapping(mapped []byte, size int64) (*CompressedGraph, error) {
	n, m, dataLen, err := cbinDims(mapped, size)
	if err != nil {
		return nil, err
	}
	offEnd := cbinHeader + 4*int(n+1)
	degEnd := offEnd + 4*int(n)
	c := &CompressedGraph{
		Offsets: u32slice(mapped, cbinHeader, int(n+1)),
		Degrees: u32slice(mapped, offEnd, int(n)),
		Data:    mapped[degEnd : degEnd+int(dataLen) : degEnd+int(dataLen)],
		m:       m,
		mapped:  mapped,
	}
	if err := checkIndex(c.Offsets, c.Degrees, dataLen, c.m); err != nil {
		return nil, err
	}
	return c, nil
}

// u32slice reinterprets count little-endian uint32 values at m[off:] without
// copying. The .cbin header, segment table, and blob padding keep every
// array 4-aligned within its (page-aligned) mapping, so the cast is always
// aligned. Like the rest of the mmap fast path it assumes a little-endian
// host (every supported target); the ReadCBIN fallback is byte-order
// independent.
func u32slice(m []byte, off, count int) []uint32 {
	if count == 0 {
		return []uint32{}
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&m[off])), count)
}
