// Package graph provides the graph substrate for ConnectIt: the compressed
// sparse row (CSR) and coordinate (COO) formats from §2 of the paper, a
// parallel builder that symmetrizes, sorts, and deduplicates edge lists, a
// byte-compressed CSR variant mirroring Ligra+ difference coding (§3.6), and
// the synthetic generators used by the evaluation (RMAT, Barabási–Albert,
// Erdős–Rényi, grids, and fixture graphs).
package graph

import "fmt"

// Vertex identifies a vertex. Vertices are indexed from 0 to n-1.
type Vertex = uint32

// None is the sentinel "no vertex" value.
const None Vertex = ^Vertex(0)

// Edge is an undirected edge in COO (coordinate / edge list) format.
type Edge struct {
	U, V Vertex
}

// Graph is an undirected graph in CSR format. The incident edges of vertex v
// are Adj[Offsets[v]:Offsets[v+1]]. Graphs built with Build are symmetric:
// each undirected edge {u,v} appears both as (u,v) and (v,u).
type Graph struct {
	Offsets []uint64 // len n+1
	Adj     []Vertex // len 2m for a symmetrized graph
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumDirectedEdges returns the number of directed edges stored (2m for a
// symmetrized graph).
func (g *Graph) NumDirectedEdges() int { return len(g.Adj) }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency list of v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

// Edges materializes the undirected edge list (u < v once per edge) in COO
// format. It is used by the streaming experiments, which ingest graphs as
// COO batches (§4.4).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(Vertex(u)) {
			if Vertex(u) < v {
				out = append(out, Edge{Vertex(u), v})
			}
		}
	}
	return out
}
