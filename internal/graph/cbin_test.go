package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// checkSameGraph fails unless c describes exactly g.
func checkSameGraph(t *testing.T, name string, g *Graph, c *CompressedGraph) {
	t.Helper()
	if c.NumVertices() != g.NumVertices() || c.NumDirectedEdges() != g.NumDirectedEdges() ||
		c.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: size mismatch: n %d/%d, 2m %d/%d", name,
			c.NumVertices(), g.NumVertices(), c.NumDirectedEdges(), g.NumDirectedEdges())
	}
	var buf []Vertex
	for v := 0; v < g.NumVertices(); v++ {
		want := g.Neighbors(Vertex(v))
		buf = c.NeighborsInto(Vertex(v), buf)
		if c.Degree(Vertex(v)) != len(want) || len(buf) != len(want) {
			t.Fatalf("%s: vertex %d decoded %d neighbors, want %d", name, v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("%s: vertex %d neighbor %d = %d, want %d", name, v, i, buf[i], want[i])
			}
		}
	}
}

// TestCBINRoundTrip writes every compression-panel graph to .cbin and loads
// it back through both paths: the mmap loader (LoadCBIN) and the streaming
// reader (ReadCBIN).
func TestCBINRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range compressPanel() {
		c := Compress(g)
		path := filepath.Join(dir, name+".cbin")
		if err := SaveCBIN(path, c); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}

		mapped, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		checkSameGraph(t, name+"/mmap", g, mapped)
		if err := mapped.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("%s: double close: %v", name, err)
		}

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ReadCBIN(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		checkSameGraph(t, name+"/stream", g, streamed)
		if err := streamed.Close(); err != nil { // no-op for non-mapped graphs
			t.Fatalf("%s: stream close: %v", name, err)
		}
	}
}

// TestCBINCornerGraphs covers the explicit corner cases of the issue:
// empty graphs, isolated vertices, and single-vertex stars.
func TestCBINCornerGraphs(t *testing.T) {
	dir := t.TempDir()
	for name, g := range map[string]*Graph{
		"empty":          Build(0, nil),
		"one-isolated":   Build(1, nil),
		"all-isolated":   Build(100, nil),
		"single-star":    Star(2), // one center, one leaf
		"tiny-star":      Star(1), // a star reduced to a single vertex
		"center-only":    Build(6, []Edge{{U: 0, V: 5}}),
		"self-loop-only": Build(3, []Edge{{U: 1, V: 1}}),
	} {
		c := Compress(g)
		checkSameGraph(t, name+"/compress", g, c)
		path := filepath.Join(dir, name+".cbin")
		if err := SaveCBIN(path, c); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		checkSameGraph(t, name+"/load", g, back)
		back.Close()
	}
}

// TestCBINRejectsCorruption corrupts a valid .cbin image in every header
// field and checks that both loaders reject it with ErrBadCBIN.
func TestCBINRejectsCorruption(t *testing.T) {
	g := RMAT(9, 3000, 0.57, 0.19, 0.19, 8)
	var buf bytes.Buffer
	if err := WriteCBIN(&buf, Compress(g)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), valid...))
		if _, err := ReadCBIN(bytes.NewReader(b)); !errors.Is(err, ErrBadCBIN) {
			t.Fatalf("%s: ReadCBIN err = %v, want ErrBadCBIN", name, err)
		}
		path := filepath.Join(t.TempDir(), name+".cbin")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCBIN(path); !errors.Is(err, ErrBadCBIN) {
			t.Fatalf("%s: LoadCBIN err = %v, want ErrBadCBIN", name, err)
		}
	}

	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad-version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:8], 99)
		return b
	})
	corrupt("short-header", func(b []byte) []byte { return b[:16] })
	corrupt("truncated-body", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("huge-n", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:16], 1<<60)
		return b
	})
	corrupt("edges-exceed-data", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:24], 1<<40)
		return b
	})
	corrupt("data-len-mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:32], binary.LittleEndian.Uint64(b[24:32])+8)
		return b
	})
	corrupt("offset-span", func(b []byte) []byte {
		// First offset must be 0; a nonzero value breaks the index span.
		binary.LittleEndian.PutUint32(b[cbinHeader:], 7)
		return b
	})
	corrupt("offset-monotonicity", func(b []byte) []byte {
		// An interior offset past its successor breaks the monotonic index.
		binary.LittleEndian.PutUint32(b[cbinHeader+4*100:], 1<<31)
		return b
	})
	corrupt("degree-exceeds-span", func(b []byte) []byte {
		// A degree larger than its vertex's byte span cannot decode (every
		// neighbor needs at least one byte); it also breaks the degree sum.
		binary.LittleEndian.PutUint32(b[cbinHeader+4*(g.NumVertices()+1):], 1<<30)
		return b
	})
}
