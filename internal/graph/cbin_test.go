package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// checkSameGraph fails unless r describes exactly g.
func checkSameGraph(t *testing.T, name string, g *Graph, r Rep) {
	t.Helper()
	if r.NumVertices() != g.NumVertices() || r.NumDirectedEdges() != g.NumDirectedEdges() ||
		r.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: size mismatch: n %d/%d, 2m %d/%d", name,
			r.NumVertices(), g.NumVertices(), r.NumDirectedEdges(), g.NumDirectedEdges())
	}
	var buf []Vertex
	for v := 0; v < g.NumVertices(); v++ {
		want := g.Neighbors(Vertex(v))
		buf = r.NeighborsInto(Vertex(v), buf)
		if r.Degree(Vertex(v)) != len(want) || len(buf) != len(want) {
			t.Fatalf("%s: vertex %d decoded %d neighbors, want %d", name, v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("%s: vertex %d neighbor %d = %d, want %d", name, v, i, buf[i], want[i])
			}
		}
	}
}

// closeTwice closes r twice — the second call must be a clean no-op on every
// backend, mapped or heap-backed.
func closeTwice(t *testing.T, name string, r Rep) {
	t.Helper()
	c, ok := r.(interface{ Close() error })
	if !ok {
		t.Fatalf("%s: %T has no Close", name, r)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("%s: close: %v", name, err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("%s: double close: %v", name, err)
	}
}

// TestCBINRoundTrip writes every compression-panel graph to .cbin and loads
// it back through both paths: the mmap loader (LoadCBIN) and the streaming
// reader (ReadCBIN).
func TestCBINRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range compressPanel() {
		c := Compress(g)
		path := filepath.Join(dir, name+".cbin")
		if err := SaveCBIN(path, c); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}

		mapped, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if _, ok := mapped.(*CompressedGraph); !ok {
			t.Fatalf("%s: single-segment file loaded as %T, want *CompressedGraph", name, mapped)
		}
		checkSameGraph(t, name+"/mmap", g, mapped)
		closeTwice(t, name, mapped)

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ReadCBIN(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		checkSameGraph(t, name+"/stream", g, streamed)
		closeTwice(t, name+"/stream", streamed) // no-op for non-mapped graphs
	}
}

// TestCBINSegmentedRoundTrip saves multi-segment graphs and loads them back
// through both paths, asserting the segmentation itself survives the file.
func TestCBINSegmentedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range compressPanel() {
		s, err := TrySegment(g, 64)
		if err != nil {
			t.Fatalf("%s: segment: %v", name, err)
		}
		path := filepath.Join(dir, name+".cbin")
		if err := SaveCBIN(path, s); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}

		mapped, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if s.NumSegments() > 1 {
			sg, ok := mapped.(*SegmentedGraph)
			if !ok {
				t.Fatalf("%s: %d-segment file loaded as %T, want *SegmentedGraph", name, s.NumSegments(), mapped)
			}
			if sg.NumSegments() != s.NumSegments() {
				t.Fatalf("%s: loaded %d segments, saved %d", name, sg.NumSegments(), s.NumSegments())
			}
		}
		checkSameGraph(t, name+"/mmap", g, mapped)
		closeTwice(t, name, mapped)

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ReadCBIN(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		checkSameGraph(t, name+"/stream", g, streamed)
		closeTwice(t, name+"/stream", streamed)
	}
}

// TestCBINCornerGraphs covers the explicit corner cases of the issue:
// empty graphs, isolated vertices, and single-vertex stars.
func TestCBINCornerGraphs(t *testing.T) {
	dir := t.TempDir()
	for name, g := range map[string]*Graph{
		"empty":          Build(0, nil),
		"one-isolated":   Build(1, nil),
		"all-isolated":   Build(100, nil),
		"single-star":    Star(2), // one center, one leaf
		"tiny-star":      Star(1), // a star reduced to a single vertex
		"center-only":    Build(6, []Edge{{U: 0, V: 5}}),
		"self-loop-only": Build(3, []Edge{{U: 1, V: 1}}),
	} {
		c := Compress(g)
		checkSameGraph(t, name+"/compress", g, c)
		path := filepath.Join(dir, name+".cbin")
		if err := SaveCBIN(path, c); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		checkSameGraph(t, name+"/load", g, back)
		closeTwice(t, name, back)

		// The same corners through the forced-segmented path: a 1-byte
		// target makes every nonempty adjacency its own segment.
		s, err := TrySegment(g, 1)
		if err != nil {
			t.Fatalf("%s: segment: %v", name, err)
		}
		checkSameGraph(t, name+"/segmented", g, s)
		if err := SaveCBIN(path, s); err != nil {
			t.Fatalf("%s: save segmented: %v", name, err)
		}
		back, err = LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load segmented: %v", name, err)
		}
		checkSameGraph(t, name+"/load-segmented", g, back)
		closeTwice(t, name+"/segmented", back)
	}
}

// fixtureV1Graph reconstructs the graph encoded in testdata/v1-fixture.cbin.
// The fixture was written by the v1 writer before the v2 format existed and
// is committed verbatim; this function must never change, or the fixture
// comparison loses its meaning.
func fixtureV1Graph() *Graph {
	var edges []Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, Edge{U: Vertex(i*37+11) % 200, V: Vertex(i*73+29) % 200})
	}
	for i := 0; i < 50; i++ {
		edges = append(edges, Edge{U: 7, V: Vertex(i*91+3) % 200})
	}
	return Build(200, edges)
}

// TestCBINV1FixtureLoads proves on-disk compatibility: a committed .cbin
// written by the v1 (pre-segmented) writer still loads through both the
// mmap and streaming paths and decodes to the original graph.
func TestCBINV1FixtureLoads(t *testing.T) {
	path := filepath.Join("testdata", "v1-fixture.cbin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != cbinVersion1 {
		t.Fatalf("fixture claims version %d, want the committed v1 file", v)
	}
	g := fixtureV1Graph()

	mapped, err := LoadCBIN(path)
	if err != nil {
		t.Fatalf("load v1 fixture: %v", err)
	}
	if _, ok := mapped.(*CompressedGraph); !ok {
		t.Fatalf("v1 fixture loaded as %T, want *CompressedGraph", mapped)
	}
	checkSameGraph(t, "v1-fixture/mmap", g, mapped)
	closeTwice(t, "v1-fixture", mapped)

	streamed, err := ReadCBIN(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("read v1 fixture: %v", err)
	}
	checkSameGraph(t, "v1-fixture/stream", g, streamed)
}

// TestCBINV1RoundTrip drives the legacy writer against the current readers
// across the whole panel — broader v1 coverage than the single committed
// fixture.
func TestCBINV1RoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range compressPanel() {
		c := Compress(g)
		var buf bytes.Buffer
		if err := writeCBINv1(&buf, c); err != nil {
			t.Fatalf("%s: write v1: %v", name, err)
		}
		streamed, err := ReadCBIN(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read v1: %v", name, err)
		}
		checkSameGraph(t, name+"/v1-stream", g, streamed)

		path := filepath.Join(dir, name+".cbin")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mapped, err := LoadCBIN(path)
		if err != nil {
			t.Fatalf("%s: load v1: %v", name, err)
		}
		checkSameGraph(t, name+"/v1-mmap", g, mapped)
		closeTwice(t, name+"/v1", mapped)
	}
}

// corruptCase runs one corruption mutation against both loaders and requires
// ErrBadCBIN from each.
func corruptCase(t *testing.T, valid []byte, name string, mutate func(b []byte) []byte) {
	t.Helper()
	b := mutate(append([]byte(nil), valid...))
	if _, err := ReadCBIN(bytes.NewReader(b)); !errors.Is(err, ErrBadCBIN) {
		t.Fatalf("%s: ReadCBIN err = %v, want ErrBadCBIN", name, err)
	}
	path := filepath.Join(t.TempDir(), name+".cbin")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCBIN(path); !errors.Is(err, ErrBadCBIN) {
		t.Fatalf("%s: LoadCBIN err = %v, want ErrBadCBIN", name, err)
	}
}

// TestCBINRejectsCorruption corrupts a valid single-segment v2 image in
// every header, table, and index field and checks that both loaders reject
// it with ErrBadCBIN.
func TestCBINRejectsCorruption(t *testing.T) {
	g := RMAT(9, 3000, 0.57, 0.19, 0.19, 8)
	var buf bytes.Buffer
	if err := WriteCBIN(&buf, Compress(g)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	corrupt := func(name string, mutate func(b []byte) []byte) {
		corruptCase(t, valid, name, mutate)
	}

	// Single-segment v2 layout: 32-byte header, one table entry at 32
	// {first, count, dataLen, m}, blob (offsets, degrees, data) at 64.
	const table = cbinHeader
	const blob = cbinHeader + cbinSegEntry

	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad-version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:8], 99)
		return b
	})
	corrupt("short-header", func(b []byte) []byte { return b[:16] })
	corrupt("truncated-body", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("huge-n", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:16], 1<<60)
		return b
	})
	corrupt("zero-segments", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:32], 0)
		return b
	})
	corrupt("absurd-segment-count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:32], 1<<40)
		return b
	})
	corrupt("edges-exceed-data", func(b []byte) []byte {
		// Header edge count no segment can account for.
		binary.LittleEndian.PutUint64(b[16:24], 1<<40)
		return b
	})
	corrupt("segment-not-at-zero", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[table:], 3)
		return b
	})
	corrupt("segment-count-short", func(b []byte) []byte {
		// The lone segment covers fewer vertices than the header's n.
		c := binary.LittleEndian.Uint64(b[table+8:])
		binary.LittleEndian.PutUint64(b[table+8:], c-1)
		return b
	})
	corrupt("segment-data-overflow", func(b []byte) []byte {
		// Per-segment data length past the uint32 offset-index cap.
		binary.LittleEndian.PutUint64(b[table+16:], 1<<33)
		return b
	})
	corrupt("data-len-mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[table+16:], binary.LittleEndian.Uint64(b[table+16:])+8)
		return b
	})
	corrupt("segment-edges-exceed-data", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[table+24:], binary.LittleEndian.Uint64(b[table+16:])+1)
		return b
	})
	corrupt("offset-span", func(b []byte) []byte {
		// First offset must be 0; a nonzero value breaks the index span.
		binary.LittleEndian.PutUint32(b[blob:], 7)
		return b
	})
	corrupt("offset-monotonicity", func(b []byte) []byte {
		// An interior offset past its successor breaks the monotonic index.
		binary.LittleEndian.PutUint32(b[blob+4*100:], 1<<31)
		return b
	})
	corrupt("degree-exceeds-span", func(b []byte) []byte {
		// A degree larger than its vertex's byte span cannot decode (every
		// neighbor needs at least one byte); it also breaks the degree sum.
		binary.LittleEndian.PutUint32(b[blob+4*(g.NumVertices()+1):], 1<<30)
		return b
	})
}

// TestCBINRejectsSegmentTableCorruption corrupts a genuinely multi-segment
// v2 image: truncated segment table, vertex-range overlap and gap between
// segments, and a degree index broken inside a non-first segment.
func TestCBINRejectsSegmentTableCorruption(t *testing.T) {
	g := RMAT(9, 3000, 0.57, 0.19, 0.19, 8)
	s, err := TrySegment(g, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSegments() < 3 {
		t.Fatalf("panel graph split into %d segments, need >= 3 for the table matrix", s.NumSegments())
	}
	var buf bytes.Buffer
	if err := WriteCBIN(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	corrupt := func(name string, mutate func(b []byte) []byte) {
		corruptCase(t, valid, name, mutate)
	}
	entry := func(b []byte, i int) []byte { return b[cbinHeader+i*cbinSegEntry:] }

	corrupt("truncated-table", func(b []byte) []byte {
		// Cut mid-way through the second table entry.
		return b[:cbinHeader+cbinSegEntry+16]
	})
	corrupt("segment-overlap", func(b []byte) []byte {
		// Segment 1 re-covers the last vertex of segment 0.
		e := entry(b, 1)
		binary.LittleEndian.PutUint64(e[0:8], binary.LittleEndian.Uint64(e[0:8])-1)
		return b
	})
	corrupt("segment-gap", func(b []byte) []byte {
		// Segment 1 starts one vertex late, leaving a hole in [0, n).
		e := entry(b, 1)
		binary.LittleEndian.PutUint64(e[0:8], binary.LittleEndian.Uint64(e[0:8])+1)
		return b
	})
	corrupt("segment-count-overlap", func(b []byte) []byte {
		// Segment 0 claims one vertex more, colliding with segment 1's start.
		e := entry(b, 0)
		binary.LittleEndian.PutUint64(e[8:16], binary.LittleEndian.Uint64(e[8:16])+1)
		return b
	})
	corrupt("mid-segment-data-overflow", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(entry(b, 1)[16:24], 1<<34)
		return b
	})
	corrupt("mid-segment-degree-sum", func(b []byte) []byte {
		// Break segment 1's degree array: its sum no longer matches the
		// table's per-segment edge count.
		e := entry(b, 1)
		count := binary.LittleEndian.Uint64(e[8:16])
		blobOff := uint64(cbinHeader) + uint64(s.NumSegments())*cbinSegEntry
		c0 := binary.LittleEndian.Uint64(entry(b, 0)[8:16])
		d0 := binary.LittleEndian.Uint64(entry(b, 0)[16:24])
		blobOff += ((4*(c0+1) + 4*c0 + d0) + 7) &^ 7
		degOff := blobOff + 4*(count+1)
		binary.LittleEndian.PutUint32(b[degOff:], binary.LittleEndian.Uint32(b[degOff:])+1)
		return b
	})
}
