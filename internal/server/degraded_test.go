package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"connectit/internal/graph"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(b))
}

// The full degraded-mode episode: a WAL wedge flips the server into
// degraded, reads and health keep serving correct answers, writes refuse
// with Retry-After, and the probe loop recovers the log and promotes back
// to serving — after which writes commit again.
func TestDegradedModeEpisode(t *testing.T) {
	s, ts := testServer(t, 64, Options{
		WALDir: t.TempDir(),
		// The 3rd record sync fails: two updates commit, the third wedges.
		// The truncate rule pins recovery down for ~400 probe ticks so the
		// degraded-phase assertions below aren't racing the probe's
		// self-heal; once it exhausts, recovery succeeds and the server
		// promotes itself.
		FaultSpec:     "wal.sync:at=3:err=EIO;wal.truncate:every=1:limit=400:err=EIO",
		ProbeInterval: 2 * time.Millisecond,
	})

	for _, body := range []string{`{"u":1,"v":2}`, `{"u":2,"v":3}`} {
		if resp, m := postJSON(t, ts.URL+"/v1/update", body); resp.StatusCode != 200 {
			t.Fatalf("healthy update: %d %v", resp.StatusCode, m)
		}
	}
	// The wedging update: its group commit fails, so it must NOT be acked.
	resp, m := postJSON(t, ts.URL+"/v1/update", `{"u":10,"v":11}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wedging update: %d %v, want 503", resp.StatusCode, m)
	}
	if s.State() != StateDegraded {
		t.Fatalf("state after wedge = %v, want degraded", s.State())
	}
	if s.degradedTotal.Value() != 1 {
		t.Fatalf("degraded transitions = %d, want 1", s.degradedTotal.Value())
	}

	// Degraded serving: health says degraded (200 — the process is alive),
	// reads answer correctly from the in-memory structure, writes refuse
	// with an honest retry hint.
	if code, body := getBody(t, ts.URL+"/healthz"); code != 200 || body != "degraded" {
		t.Fatalf("healthz while degraded: %d %q", code, body)
	}
	if _, m := getJSON(t, ts.URL+"/v1/connected?u=1&v=3"); m["connected"] != true {
		t.Fatalf("connected(1,3) while degraded = %v, want true", m["connected"])
	}
	if _, m := getJSON(t, ts.URL+"/v1/connected?u=1&v=10"); m["connected"] != false {
		// The wedged update's edge must not have leaked into the state.
		t.Fatalf("connected(1,10) while degraded = %v, want false (unacked edge visible)", m["connected"])
	}
	if code, _ := getBody(t, ts.URL+"/metrics"); code != 200 {
		t.Fatalf("metrics while degraded: %d", code)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/update", strings.NewReader(`{"u":10,"v":11}`))
	req.Header.Set("Content-Type", "application/json")
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable || wresp.Header.Get("Retry-After") == "" {
		t.Fatalf("write while degraded: %d Retry-After=%q, want 503 with hint", wresp.StatusCode, wresp.Header.Get("Retry-After"))
	}

	// Self-healing: the fault was one-shot, so the next probe recovers the
	// log and promotes.
	waitFor(t, 5*time.Second, func() bool { return s.State() == StateServing }, "promotion back to serving")
	if code, body := getBody(t, ts.URL+"/healthz"); code != 200 || body != "ok" {
		t.Fatalf("healthz after recovery: %d %q", code, body)
	}
	if resp, m := postJSON(t, ts.URL+"/v1/update", `{"u":10,"v":11}`); resp.StatusCode != 200 {
		t.Fatalf("update after recovery: %d %v", resp.StatusCode, m)
	}
	if _, m := getJSON(t, ts.URL+"/v1/connected?u=10&v=11"); m["connected"] != true {
		t.Fatalf("connected(10,11) after recovery = %v, want true", m["connected"])
	}
	st := s.log.Stats()
	if st.Wedges != 1 || st.Recoveries != 1 {
		t.Fatalf("wal stats after episode: wedges=%d recoveries=%d, want 1/1", st.Wedges, st.Recoveries)
	}
}

// The probe loop notices a wedge even when no Submit raced the failure
// (e.g. the wedge came from a background rotation) — the state machine
// converges on the log's health.
func TestProbeDetectsWedgeWithoutSubmit(t *testing.T) {
	s, _ := testServer(t, 16, Options{
		WALDir:        t.TempDir(),
		FaultSpec:     "wal.sync:at=1:err=EIO",
		ProbeInterval: 5 * time.Millisecond,
	})
	// Wedge the log directly, bypassing the batcher's onErr callback.
	if _, err := s.log.Append([]graph.Edge{{U: 1, V: 2}}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("direct append: %v, want EIO", err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.State() != StateServing }, "probe to notice the wedge")
	waitFor(t, 5*time.Second, func() bool { return s.State() == StateServing }, "probe to recover")
}

// DegradeCrash hands the wedge to the crash hook instead of degrading.
func TestDegradedPolicyCrash(t *testing.T) {
	crashed := make(chan error, 1)
	old := crashExit
	crashExit = func(cause error) { crashed <- cause }
	defer func() { crashExit = old }()

	s, ts := testServer(t, 16, Options{
		WALDir:         t.TempDir(),
		FaultSpec:      "wal.sync:at=1:err=EIO",
		DegradedPolicy: DegradeCrash,
	})
	resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wedging update: %d, want 503", resp.StatusCode)
	}
	select {
	case cause := <-crashed:
		if !errors.Is(cause, syscall.EIO) {
			t.Fatalf("crash cause %v, want EIO", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash policy never invoked the crash hook")
	}
	// The test crash hook doesn't exit, so the server is still around; it
	// must not have counted a degraded transition.
	if s.State() == StateDegraded {
		t.Fatal("crash policy must not fall through to degraded")
	}
}

// The shared-token gate: mutations need the bearer token, reads stay open,
// and mismatches count.
func TestAuthToken(t *testing.T) {
	s, ts := testServer(t, 16, Options{AuthToken: "sesame"})

	post := func(auth string) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/update", strings.NewReader(`{"u":1,"v":2}`))
		req.Header.Set("Content-Type", "application/json")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(""); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", code)
	}
	if code := post("Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", code)
	}
	if code := post("sesame"); code != http.StatusUnauthorized {
		t.Fatalf("malformed header: %d, want 401", code)
	}
	if got := s.unauthorized.Value(); got != 3 {
		t.Fatalf("unauthorized counter = %d, want 3", got)
	}
	if code := post("Bearer sesame"); code != http.StatusOK {
		t.Fatalf("right token: %d, want 200", code)
	}
	// Reads, health, and metrics stay open.
	for _, path := range []string{"/v1/connected?u=1&v=2", "/healthz", "/metrics", "/v1/stats"} {
		if code, _ := getBody(t, ts.URL+path); code != 200 {
			t.Fatalf("GET %s without token: %d, want 200", path, code)
		}
	}
}

// New must reject an unparseable fault spec instead of silently arming
// nothing.
func TestBadFaultSpecRejected(t *testing.T) {
	_, err := New(testStream(t, 8), Options{FaultSpec: "wal.sync:bogus"})
	if err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// Start applies the hardening options to the HTTP server.
func TestHTTPServerHardening(t *testing.T) {
	s, err := New(testStream(t, 8), Options{
		Addr:              "127.0.0.1:0",
		ReadHeaderTimeout: 7 * time.Second,
		ReadTimeout:       -1, // disabled
		MaxHeaderBytes:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	hs := s.httpSrv
	if hs.ReadHeaderTimeout != 7*time.Second || hs.ReadTimeout != 0 ||
		hs.IdleTimeout != 2*time.Minute || hs.MaxHeaderBytes != 4096 {
		t.Fatalf("http.Server not hardened: %+v", hs)
	}
	// A header section past MaxHeaderBytes is refused.
	url := fmt.Sprintf("http://%s/healthz", s.Addr())
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("X-Padding", strings.Repeat("x", 8192))
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestHeaderFieldsTooLarge {
			t.Fatalf("oversized header: %d, want 431", resp.StatusCode)
		}
	}
}
