package server

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"connectit/internal/graph"
)

// oracle is the sequential union-find reference for recovery checks.
type oracle struct{ p []uint32 }

func newOracle(n int) *oracle {
	o := &oracle{p: make([]uint32, n)}
	for i := range o.p {
		o.p[i] = uint32(i)
	}
	return o
}

func (o *oracle) find(x uint32) uint32 {
	for o.p[x] != x {
		o.p[x] = o.p[o.p[x]]
		x = o.p[x]
	}
	return x
}

func (o *oracle) union(u, v uint32) { o.union2(o.find(u), o.find(v)) }
func (o *oracle) union2(ru, rv uint32) {
	if ru != rv {
		o.p[ru] = rv
	}
}

// checkAgainstOracle compares the server's Connected answers with the
// oracle on every adjacent pair plus a spread of random pairs.
func checkAgainstOracle(t *testing.T, s *Server, o *oracle, n int, rng *rand.Rand) {
	t.Helper()
	ask := func(u, v uint32) {
		got, err := s.st.Connected(u, v)
		if err != nil {
			t.Fatalf("Connected(%d,%d): %v", u, v, err)
		}
		if want := o.find(u) == o.find(v); got != want {
			t.Fatalf("Connected(%d,%d) = %v after recovery, oracle says %v", u, v, got, want)
		}
	}
	for u := 1; u < n; u++ {
		ask(uint32(u-1), uint32(u))
	}
	for i := 0; i < 200; i++ {
		ask(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
}

// submitRandom pushes batches through the group-commit path (the same code
// the HTTP handler runs) and records them in the oracle once acknowledged.
func submitRandom(t *testing.T, s *Server, o *oracle, n, batches, perBatch int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < batches; i++ {
		edges := make([]graph.Edge, perBatch)
		for j := range edges {
			edges[j] = graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
		}
		if _, err := s.bat.Submit(edges); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		for _, e := range edges {
			o.union(e.U, e.V)
		}
	}
}

// crash abandons a server the way a kill -9 would: the WAL file handle is
// dropped without the graceful drain/snapshot/seal sequence. Every batch
// Submit acknowledged is already on disk (Append fsyncs before Submit
// returns), which is exactly the durability contract under test.
func crash(s *Server) {
	s.log.Close()
}

func durableOptions(dir string) Options {
	return Options{
		WALDir:           dir,
		FlushInterval:    time.Millisecond,
		SnapshotInterval: -1, // no periodic snapshots; tests trigger their own
		SegmentBytes:     1 << 12,
	}
}

// TestRecoveryAfterCrash is the acceptance check: acknowledged updates,
// hard crash mid-ingest, restart from the WAL, and the recovered server
// answers exactly like an uninterrupted oracle.
func TestRecoveryAfterCrash(t *testing.T) {
	const n = 256
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	o := newOracle(n)

	s1, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitRandom(t, s1, o, n, 40, 8, rng)
	crash(s1)

	s2, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	checkAgainstOracle(t, s2, o, n, rng)

	// The recovered server keeps accepting and stays correct.
	submitRandom(t, s2, o, n, 10, 8, rng)
	checkAgainstOracle(t, s2, o, n, rng)
}

// TestRecoveryWithSnapshotAndTail crashes after a snapshot plus more
// acknowledged updates: recovery must compose the .cbin star forest with
// the WAL tail, not either alone.
func TestRecoveryWithSnapshotAndTail(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	o := newOracle(n)

	s1, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitRandom(t, s1, o, n, 60, 8, rng)
	if err := s1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segsAfterSnap := s1.log.Stats().Segments
	submitRandom(t, s1, o, n, 30, 8, rng) // the tail beyond the snapshot
	crash(s1)

	s2, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatalf("recovery with snapshot: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	if lsn, _, ok := s2.log.LatestSnapshot(); !ok || lsn == 0 {
		t.Fatalf("recovered log lost the snapshot (lsn=%d ok=%v)", lsn, ok)
	}
	if segsAfterSnap > 3 {
		t.Fatalf("snapshot failed to compact: %d segments survived", segsAfterSnap)
	}
	checkAgainstOracle(t, s2, o, n, rng)
}

// TestRecoveryFromSegmentedSnapshot forces the snapshot writer onto the
// multi-segment path (CONNECTIT_SNAPSHOT_SEGMENT_BYTES) and checks that a
// crash after the snapshot recovers through the segmented .cbin v2 file:
// the on-disk snapshot must genuinely hold several segments, and the booted
// server must answer exactly like the oracle.
func TestRecoveryFromSegmentedSnapshot(t *testing.T) {
	const n = 300
	t.Setenv("CONNECTIT_SNAPSHOT_SEGMENT_BYTES", "64")
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	o := newOracle(n)

	s1, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitRandom(t, s1, o, n, 60, 8, rng)
	if err := s1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	_, snapPath, ok := s1.log.LatestSnapshot()
	if !ok {
		t.Fatal("no snapshot recorded")
	}
	snap, err := graph.LoadCBIN(snapPath)
	if err != nil {
		t.Fatalf("LoadCBIN(snapshot): %v", err)
	}
	seg, isSeg := snap.(*graph.SegmentedGraph)
	if !isSeg {
		t.Fatalf("snapshot loaded as %T, want *graph.SegmentedGraph", snap)
	}
	if seg.NumSegments() < 3 {
		t.Fatalf("snapshot has %d segments, want >= 3", seg.NumSegments())
	}
	if err := seg.Close(); err != nil {
		t.Fatalf("closing snapshot mapping: %v", err)
	}
	submitRandom(t, s1, o, n, 20, 8, rng) // tail beyond the snapshot
	crash(s1)

	s2, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatalf("recovery from segmented snapshot: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	checkAgainstOracle(t, s2, o, n, rng)
}

// TestGracefulClosePersistsEverything closes cleanly (final snapshot) and
// verifies a restart recovers without replaying any tail records.
func TestGracefulClosePersistsEverything(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	o := newOracle(n)

	s1, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitRandom(t, s1, o, n, 50, 8, rng)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}

	s2, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatalf("restart after graceful close: %v", err)
	}
	defer s2.Close(ctx)
	// The final snapshot covers the full log; boot should not need the tail.
	lsn, _, ok := s2.log.LatestSnapshot()
	if !ok || lsn != s2.log.LSN() {
		t.Fatalf("final snapshot covers LSN %d, log at %d (ok=%v)", lsn, s2.log.LSN(), ok)
	}
	checkAgainstOracle(t, s2, o, n, rng)
}
