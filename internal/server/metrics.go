package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a small Prometheus-text-format metrics registry: counters,
// function-backed gauges/counters (for values the system already maintains,
// like StreamStats and PoolStats), and fixed-bucket histograms. It exists
// so the serving layer observes the engine without pulling a client library
// into a stdlib-only module; the exposition format is the stable contract,
// not the implementation.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// metric is one exposition family member: a name, optional {label} set
// (preformatted), help text, a type, and a sample function.
type metric struct {
	name   string
	labels string // preformatted, e.g. `{handler="update"}`, or ""
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	write  func(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus cumulative
// bucket style, plus a _sum and _count pair.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

// atomicFloat accumulates float64 additions via CAS on bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(x float64) {
	for {
		old := a.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + x)
		if a.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(x)
}

// register appends m under the lock, keeping the slice sorted by (name,
// labels) so the exposition groups families deterministically.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
	sort.SliceStable(r.metrics, func(i, j int) bool {
		if r.metrics[i].name != r.metrics[j].name {
			return r.metrics[i].name < r.metrics[j].name
		}
		return r.metrics[i].labels < r.metrics[j].labels
	})
}

// Counter registers and returns a counter. labels is either empty or a
// preformatted label set such as `{handler="update"}`.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, labels: labels, help: help, typ: "counter",
		write: func(w io.Writer, name, labels string) {
			fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
		}})
	return c
}

// CounterFunc registers a counter whose value is sampled from f at
// exposition time — the bridge for counters the engine already maintains
// (StreamStats, PoolStats, WAL stats).
func (r *Registry) CounterFunc(name, labels, help string, f func() uint64) {
	r.register(metric{name: name, labels: labels, help: help, typ: "counter",
		write: func(w io.Writer, name, labels string) {
			fmt.Fprintf(w, "%s%s %d\n", name, labels, f())
		}})
}

// GaugeFunc registers a gauge sampled from f at exposition time.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.register(metric{name: name, labels: labels, help: help, typ: "gauge",
		write: func(w io.Writer, name, labels string) {
			fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f()))
		}})
}

// Histogram registers and returns a histogram with the given ascending
// upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds))}
	r.register(metric{name: name, labels: labels, help: help, typ: "histogram",
		write: func(w io.Writer, name, labels string) {
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+formatFloat(b)+`"`), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), h.count.Load())
			fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum.Load()))
			fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
		}})
	return h
}

// mergeLabels combines a preformatted label set with one extra pair.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

func formatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatFloat(x, 'f', -1, 64)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition format,
// emitting one HELP/TYPE block per family even when several label sets
// share the family name.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	prev := ""
	for _, m := range metrics {
		if m.name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			prev = m.name
		}
		m.write(w, m.name, m.labels)
	}
}

// ServeHTTP serves the exposition, making a Registry mountable at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}
