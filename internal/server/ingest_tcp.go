package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"connectit/internal/fault"
	"connectit/internal/graph"
	"connectit/internal/wire"
)

// ingestListener serves the persistent binary TCP ingest protocol
// (DESIGN.md §13). Each connection opens with a magic exchange — the
// client sends wire.Magic, the server answers wire.Magic plus the vertex
// universe size — and then carries length-prefixed wire frames. Frames
// pipeline: the server drains every frame already buffered on the socket
// into one group commit and answers with a single batched AckOK carrying
// the commit LSN and the number of frames it covers, so a producer that
// keeps the pipe full pays one ack (and one fsync, via the batcher) per
// burst rather than per frame. Any protocol or validation error is
// answered with a terminal AckErr and the connection closes; backpressure
// is the blocking Submit itself — TCP producers are paced by group-commit
// latency instead of 429s.
type ingestListener struct {
	s  *Server
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func newIngestListener(s *Server, addr string) (*ingestListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	il := &ingestListener{s: s, ln: ln, conns: make(map[net.Conn]struct{})}
	il.wg.Add(1)
	go il.acceptLoop()
	return il, nil
}

func (il *ingestListener) acceptLoop() {
	defer il.wg.Done()
	for {
		conn, err := il.ln.Accept()
		if err != nil {
			return // listener closed
		}
		il.mu.Lock()
		if il.closed {
			il.mu.Unlock()
			conn.Close()
			return
		}
		// Chaos runs wrap every accepted connection with the fault schedule;
		// WrapConn is the identity when no conn.* rules are armed.
		conn = fault.WrapConn(conn, il.s.faults)
		il.conns[conn] = struct{}{}
		il.mu.Unlock()
		il.wg.Add(1)
		go il.serveConn(conn)
	}
}

// Close stops accepting, severs every live connection, and waits for the
// per-connection goroutines to drain. In-flight group commits complete
// through the batcher's own shutdown path.
func (il *ingestListener) Close() {
	il.mu.Lock()
	il.closed = true
	conns := make([]net.Conn, 0, len(il.conns))
	for c := range il.conns {
		conns = append(conns, c)
	}
	il.mu.Unlock()
	il.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	il.wg.Wait()
}

func (il *ingestListener) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		il.mu.Lock()
		delete(il.conns, conn)
		il.mu.Unlock()
		il.wg.Done()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	var hello [4]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil || string(hello[:]) != wire.Magic {
		conn.Write(wire.AppendAckErr(nil, "bad client hello"))
		return
	}
	var srvHello [12]byte
	copy(srvHello[:4], wire.Magic)
	binary.LittleEndian.PutUint64(srvHello[4:], uint64(il.s.st.Len()))
	if _, err := conn.Write(srvHello[:]); err != nil {
		return
	}

	// Per-connection scratch: the frame buffer, the decoded batch, and the
	// ack buffer all reach steady-state size and never reallocate again.
	var (
		frame []byte
		batch []graph.Edge
		dec   []graph.Edge
		ack   []byte
	)
	n := uint32(il.s.st.Len())
	lastLSN := uint64(0)
	for {
		batch = batch[:0]
		frames := uint32(0)
		// Block for the first frame, then drain whatever else the client
		// already pipelined onto the socket into the same commit.
		for {
			var err error
			frame, err = readFrame(br, frame)
			if err != nil {
				if frames == 0 && errors.Is(err, io.EOF) {
					return // clean close between bursts
				}
				conn.Write(wire.AppendAckErr(ack[:0], err.Error()))
				return
			}
			var k int
			dec, k, err = wire.DecodeBlock(frame, dec[:0])
			if err == nil && k != len(frame) {
				err = fmt.Errorf("%w: %d trailing bytes in frame", wire.ErrMalformed, len(frame)-k)
			}
			if err != nil {
				conn.Write(wire.AppendAckErr(ack[:0], err.Error()))
				return
			}
			if len(dec) > maxRequestEdges {
				conn.Write(wire.AppendAckErr(ack[:0], fmt.Sprintf("frame of %d edges exceeds the %d-edge bound", len(dec), maxRequestEdges)))
				return
			}
			for _, e := range dec {
				if e.U >= n || e.V >= n {
					conn.Write(wire.AppendAckErr(ack[:0], fmt.Sprintf("edge {%d, %d} endpoint out of range [0, %d)", e.U, e.V, n)))
					return
				}
			}
			batch = append(batch, dec...)
			frames++
			if br.Buffered() < 4 || len(batch) >= maxGroupEdges/2 {
				break
			}
		}
		// Degraded or closing: answer the burst with a retryable AckBusy
		// instead of committing (the wedged log would fail the group
		// anyway). The connection closes; a self-healing client backs off,
		// reconnects, and retransmits its unacked window — idempotent
		// unions make the retransmission harmless.
		if st := il.s.State(); st != StateServing {
			conn.Write(wire.AppendAckBusy(ack[:0], "server "+st.String()+"; retry"))
			return
		}
		// An all-empty burst (zero-edge blocks are valid wire) skips the
		// group commit: Submit would have nothing to flush, and the frames
		// still need acking so the client's pipeline window advances. The
		// ack repeats the last committed LSN, keeping it monotonic.
		if len(batch) > 0 {
			lsn, err := il.s.bat.Submit(batch)
			if err != nil {
				// A commit that failed because the server left serving mid-
				// flight (WAL wedge, shutdown) is the same retryable story;
				// only a failure with the server still healthy is terminal.
				if il.s.State() != StateServing {
					conn.Write(wire.AppendAckBusy(ack[:0], err.Error()))
				} else {
					conn.Write(wire.AppendAckErr(ack[:0], err.Error()))
				}
				return
			}
			lastLSN = lsn
			il.s.accepted.Add(uint64(len(batch)))
		}
		il.s.framesTCP.Add(uint64(frames))
		ack = wire.AppendAckOK(ack[:0], lastLSN, frames)
		if _, err := conn.Write(ack); err != nil {
			return
		}
	}
}

// readFrame reads one length-prefixed frame into buf (reusing its
// capacity) and returns the block bytes. io.EOF surfaces only when the
// stream ends cleanly on a frame boundary.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: torn frame header")
		}
		return nil, err
	}
	l := binary.LittleEndian.Uint32(hdr[:])
	if l < 2 || l > wire.MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame length %d outside [2, %d]", l, wire.MaxFrameBytes)
	}
	if cap(buf) < int(l) {
		buf = make([]byte, l)
	} else {
		buf = buf[:l]
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("wire: torn frame body: %w", err)
	}
	return buf, nil
}
