package server

import (
	"errors"
	"sync"
	"time"

	"connectit/internal/graph"
	"connectit/internal/ingest"
	"connectit/internal/wal"
)

// errBatcherClosed reports a Submit against a drained batcher — only
// reachable during shutdown, and mapped to 503 by the handler.
var errBatcherClosed = errors.New("server: batcher closed")

// maxGroupEdges hard-caps a flush group. maxBatch only *triggers* a flush;
// while one is in progress (flushMu held through the fsync) Submits keep
// landing in the next group, and under sustained burst load an uncapped
// group could outgrow the WAL's 16M-edge record bound, failing the whole
// group and turning valid requests into 503s. At the cap, Submit waits for
// the group to flush and retries into its successor. 4M edges leaves room
// for one more submission on top — the JSON path is bounded by its 8 MiB
// body limit and both binary paths by maxRequestEdges — keeping the
// worst-case group (see maxRequestEdges) inside the WAL record bound.
const maxGroupEdges = 1 << 22

// maxRequestEdges caps the *decoded* edge count of one binary ingest unit
// — an HTTP body or a TCP frame. wire.MaxFrameBytes bounds only the bytes:
// a 64 MiB delta block can decode to ~33.5M edges, enough for one request
// to push a flush group past the WAL's ~16.7M-edge record bound and fail
// innocent writers sharing the group commit. With this cap the worst group
// is maxGroupEdges (admission check) plus one TCP batch — maxGroupEdges/2
// drained frames plus one final maxRequestEdges frame — ≈ 8M edges, half
// the WAL bound.
const maxRequestEdges = maxGroupEdges / 2

// group is one flush generation: every Submit between two flushes lands in
// the same group and shares one WAL record, one fsync, and one stream feed
// (group commit). done closes when the group is durable and fed; err is the
// shared outcome.
type group struct {
	edges []graph.Edge
	done  chan struct{}
	err   error
	lsn   uint64
}

// batcher coalesces accepted updates into flush groups, bounded by a size
// trigger and a flush deadline: a Submit that fills the group kicks an
// immediate flush, and the ticker guarantees no accepted edge waits longer
// than the flush interval for durability. Flushes serialize on flushMu —
// the snapshot path takes the same mutex to fence an LSN at which
// "appended to the log" and "fed to the stream" coincide.
type batcher struct {
	st       *ingest.Stream
	log      *wal.Log // nil: no durability, flush feeds the stream only
	maxBatch int
	capEdges int // admission cap per group; maxGroupEdges outside tests

	// onErr, when set, observes every failed flush (after the group's error
	// is fixed, before waiters wake). The server hooks it to flip into
	// degraded mode the moment a WAL append wedges.
	onErr func(error)

	mu     sync.Mutex
	cur    *group
	closed bool

	flushMu sync.Mutex

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

func newBatcher(st *ingest.Stream, log *wal.Log, maxBatch int, interval time.Duration) *batcher {
	b := &batcher{
		st:       st,
		log:      log,
		maxBatch: maxBatch,
		capEdges: maxGroupEdges,
		cur:      &group{done: make(chan struct{})},
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.loop(interval)
	return b
}

// Submit appends edges to the current flush group and blocks until that
// group is durable in the WAL and fed to the ingest pipeline, returning the
// WAL record's LSN. This is the serving path's group commit: concurrent
// requests amortize one fsync.
func (b *batcher) Submit(edges []graph.Edge) (uint64, error) {
	if len(edges) == 0 {
		// Backstop: appending nothing to a group would park this goroutine
		// forever — flush() completes only non-empty groups. Callers reject
		// or skip empty batches before Submit; nothing was committed, so
		// there is no LSN to report.
		return 0, nil
	}
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return 0, errBatcherClosed
		}
		g := b.cur
		if len(g.edges) >= b.capEdges {
			// Admission control: the group hit the hard cap (only possible
			// while a flush is stalling the swap). Wait out this group and
			// land in its successor.
			b.mu.Unlock()
			b.kickFlush()
			<-g.done
			continue
		}
		g.edges = append(g.edges, edges...)
		full := len(g.edges) >= b.maxBatch
		b.mu.Unlock()
		if full {
			b.kickFlush()
		}
		<-g.done
		return g.lsn, g.err
	}
}

func (b *batcher) kickFlush() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// loop drives deadline flushes. The ticker rather than an armed timer keeps
// the logic race-free; an empty flush is a mutex acquisition and nothing
// else, so idle ticks cost effectively zero.
func (b *batcher) loop(interval time.Duration) {
	defer b.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-b.kick:
		case <-t.C:
		case <-b.stop:
			b.flush()
			return
		}
		b.flush()
	}
}

// flush swaps the current group out and completes it: WAL append (durable
// unless the log runs NoSync) first, stream feed second — the write-ahead
// ordering the recovery contract depends on. Waiters see err via the shared
// group.
func (b *batcher) flush() {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	b.mu.Lock()
	g := b.cur
	if len(g.edges) == 0 {
		b.mu.Unlock()
		return
	}
	b.cur = &group{done: make(chan struct{})}
	b.mu.Unlock()

	if b.log != nil {
		g.lsn, g.err = b.log.Append(g.edges)
	}
	if g.err == nil {
		g.err = b.st.UpdateBatch(g.edges)
	}
	if g.err != nil && b.onErr != nil {
		// Before waking waiters: a Submit caller that sees the error can
		// then also see the state transition it caused.
		b.onErr(g.err)
	}
	close(g.done)
}

// fence runs fn while no flush is in progress: every WAL-appended record is
// also fed to the stream at that instant, so fn observes a consistent
// (LSN, stream) cut. The snapshot path uses it to tag its .cbin.
func (b *batcher) fence(fn func()) {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	fn()
}

// Close drains the batcher: no new Submits are admitted, the final group is
// flushed, and the loop exits. Idempotent.
func (b *batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
}
