package server

// Tests for the forest-backed query endpoints (/v1/path, /v1/component,
// /v1/components?histogram=1): answer shape and correctness, the 501
// capability verdict for forest-incapable algorithms, and query equivalence
// across a crash/recovery cycle.

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"connectit/internal/core"
	"connectit/internal/ingest"
)

func TestServeForestQueries(t *testing.T) {
	const n = 64
	_, ts := testServer(t, n, Options{})

	// A 4-vertex path component {0,1,2,3} and a pair {10,11}.
	resp, _ := postJSON(t, ts.URL+"/v1/update", `{"edges":[[0,1],[1,2],[2,3],[10,11]]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("update: %d", resp.StatusCode)
	}

	resp, m := getJSON(t, ts.URL+"/v1/path?u=0&v=3")
	if resp.StatusCode != 200 || m["connected"] != true {
		t.Fatalf("path(0,3): %d %v", resp.StatusCode, m)
	}
	pairs := m["path"].([]any)
	if len(pairs) == 0 || int(m["length"].(float64)) != len(pairs) {
		t.Fatalf("path(0,3) pairs = %v, length = %v", pairs, m["length"])
	}
	at := float64(0)
	for _, p := range pairs {
		edge := p.([]any)
		if edge[0].(float64) != at {
			t.Fatalf("path(0,3): broken chain at %v (have %v)", edge, at)
		}
		at = edge[1].(float64)
	}
	if at != 3 {
		t.Fatalf("path(0,3) ends at %v", at)
	}

	_, m = getJSON(t, ts.URL+"/v1/path?u=0&v=10")
	if m["connected"] != false || m["length"].(float64) != 0 {
		t.Fatalf("path(0,10) = %v, want disconnected", m)
	}

	resp, _ = getJSON(t, ts.URL+"/v1/path?u=abc&v=1")
	if resp.StatusCode != 400 {
		t.Fatalf("path with bad u: %d, want 400", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/v1/component?v=9999")
	if resp.StatusCode != 400 {
		t.Fatalf("component out of range: %d, want 400", resp.StatusCode)
	}

	resp, m = getJSON(t, ts.URL+"/v1/component?v=2")
	if resp.StatusCode != 200 || m["component"].(float64) != 0 || m["size"].(float64) != 4 {
		t.Fatalf("component(2) = %v, want label 0 size 4", m)
	}

	resp, m = getJSON(t, ts.URL+"/v1/components?histogram=1")
	if resp.StatusCode != 200 {
		t.Fatalf("components?histogram=1: %d", resp.StatusCode)
	}
	mass := 0
	for _, b := range m["histogram"].([]any) {
		bin := b.(map[string]any)
		mass += int(bin["size"].(float64)) * int(bin["count"].(float64))
	}
	if mass != n {
		t.Fatalf("histogram covers %d vertices, want %d", mass, n)
	}
	// n - 4 (path) - 2 (pair) + 2 merged components = n - 4 components.
	if m["components"].(float64) != float64(n-4) {
		t.Fatalf("components = %v, want %d", m["components"], n-4)
	}

	// The per-query metric families register only on forest-capable streams.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, metric := range []string{"connectit_query_forest_edges", "connectit_query_index_edges", "connectit_http_requests_total{handler=\"path\"}"} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("/metrics is missing %s", metric)
		}
	}
}

// TestServeForestQueriesUnsupported: Rem + SpliceAtomic cannot maintain a
// forest, so the query endpoints answer 501 with the capability verdict
// while the label-based endpoints keep working.
func TestServeForestQueriesUnsupported(t *testing.T) {
	cfg, err := core.ParseConfig("none;uf;rem-cas;naive;splice")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.NewIncremental(64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ingest.New(inc, ingest.Options{}), Options{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, url := range []string{"/v1/path?u=0&v=1", "/v1/component?v=0", "/v1/components?histogram=1"} {
		resp, m := getJSON(t, ts.URL+url)
		if resp.StatusCode != 501 {
			t.Fatalf("%s: %d, want 501", url, resp.StatusCode)
		}
		if !strings.Contains(m["error"].(string), "unsupported") {
			t.Fatalf("%s error = %v, want the capability verdict", url, m["error"])
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if resp.StatusCode != 200 {
		t.Fatalf("update on splice stream: %d", resp.StatusCode)
	}
	resp, m := getJSON(t, ts.URL+"/v1/components")
	if resp.StatusCode != 200 || m["components"].(float64) != 63 {
		t.Fatalf("plain components on splice stream: %d %v", resp.StatusCode, m)
	}
}

// TestRecoveryForestQueries: after a snapshot, more acknowledged updates,
// and a hard crash, the restarted server rebuilds a live forest (snapshot
// star edges + WAL tail replay) whose query answers match an uninterrupted
// oracle — connectivity verdicts, component sizes, and histogram mass.
func TestRecoveryForestQueries(t *testing.T) {
	const n = 256
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	o := newOracle(n)

	s1, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitRandom(t, s1, o, n, 30, 8, rng)
	if err := s1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	submitRandom(t, s1, o, n, 15, 8, rng)
	crash(s1)

	s2, err := New(testStream(t, n), durableOptions(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	ts := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	})

	// Oracle component sizes for the size check.
	sizes := make(map[uint32]int)
	for v := uint32(0); v < n; v++ {
		sizes[o.find(v)]++
	}
	comps := len(sizes)

	for i := 0; i < 150; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		resp, m := getJSON(t, ts.URL+"/v1/path?u="+itoa(u)+"&v="+itoa(v))
		if resp.StatusCode != 200 {
			t.Fatalf("path(%d,%d): %d", u, v, resp.StatusCode)
		}
		want := o.find(u) == o.find(v)
		if m["connected"] != want {
			t.Fatalf("path(%d,%d) connected = %v after recovery, oracle says %v", u, v, m["connected"], want)
		}
		if want && u != v && m["length"].(float64) == 0 {
			t.Fatalf("path(%d,%d): connected pair with empty path", u, v)
		}

		_, m = getJSON(t, ts.URL+"/v1/component?v="+itoa(u))
		if got := int(m["size"].(float64)); got != sizes[o.find(u)] {
			t.Fatalf("component(%d) size = %d after recovery, oracle says %d", u, got, sizes[o.find(u)])
		}
	}

	resp, m := getJSON(t, ts.URL+"/v1/components?histogram=1")
	if resp.StatusCode != 200 || int(m["components"].(float64)) != comps {
		t.Fatalf("components after recovery = %v, oracle says %d", m["components"], comps)
	}
	mass := 0
	for _, b := range m["histogram"].([]any) {
		bin := b.(map[string]any)
		mass += int(bin["size"].(float64)) * int(bin["count"].(float64))
	}
	if mass != n {
		t.Fatalf("histogram covers %d vertices after recovery, want %d", mass, n)
	}
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
