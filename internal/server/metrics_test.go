package server

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", `{handler="update"}`, "Requests.")
	r.Counter("requests_total", `{handler="query"}`, "Requests.")
	r.GaugeFunc("pending", "", "Pending work.", func() float64 { return 3 })
	c.Inc()
	c.Add(4)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP requests_total Requests.\n# TYPE requests_total counter\n",
		`requests_total{handler="query"} 0` + "\n",
		`requests_total{handler="update"} 5` + "\n",
		"# HELP pending Pending work.\n# TYPE pending gauge\npending 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE block per family, even with two label sets.
	if got := strings.Count(out, "# TYPE requests_total"); got != 1 {
		t.Fatalf("family header emitted %d times, want 1", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // beyond the last bound: only +Inf and _count see it

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "X.").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
