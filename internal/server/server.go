// Package server wraps the ingest engine as a network service: an
// HTTP+JSON surface over a Stream, a flush-deadline batcher that group-
// commits accepted updates through a write-ahead log before they enter the
// epoch pipeline, snapshot-based log compaction, replay-on-boot recovery,
// and a Prometheus-text metrics registry (DESIGN.md §11).
//
// The transactional ingest path (POST /v1/update → WAL → epoch pipeline)
// and the analytical query path (GET /v1/connected, wait-free against the
// applied state) meet only at the engine's own synchronization, so each
// side keeps its own batching and resource accounting; backpressure (429)
// triggers when the apply pipeline's in-flight epoch count exceeds a bound
// instead of letting queue depth grow unboundedly.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"connectit/internal/fault"
	"connectit/internal/graph"
	"connectit/internal/ingest"
	"connectit/internal/parallel"
	"connectit/internal/query"
	"connectit/internal/wal"
	"connectit/internal/wire"
)

// Options configures a Server. The zero value serves on :8080 without
// durability.
type Options struct {
	// Addr is the listen address. Default ":8080".
	Addr string
	// IngestAddr, when non-empty, additionally serves the persistent
	// binary TCP ingest protocol (DESIGN.md §13) on that address:
	// length-prefixed wire frames, pipelined, with batched LSN acks.
	IngestAddr string
	// WALDir enables durability: accepted update batches append to a
	// write-ahead log there before entering the pipeline, and boot replays
	// snapshot+tail. Empty disables durability (a pure in-memory service).
	WALDir string
	// FlushInterval is the batcher's flush deadline: the longest an
	// accepted update waits for its group commit. Default 2ms.
	FlushInterval time.Duration
	// MaxBatch is the group size that triggers an immediate flush.
	// Default 8192 edges.
	MaxBatch int
	// MaxPendingEpochs is the backpressure bound: update requests are
	// rejected with 429 while more sealed epochs than this await apply.
	// Default 64.
	MaxPendingEpochs int
	// SnapshotInterval is the period of the compaction loop that persists
	// the connectivity state as a .cbin snapshot and prunes covered WAL
	// segments. Default 5m; negative disables periodic snapshots.
	SnapshotInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (wal.Options).
	SegmentBytes int
	// NoSync skips per-append fsync in the WAL (wal.Options).
	NoSync bool

	// ProbeInterval is the degraded-mode recovery probe period: how often a
	// wedged WAL is re-tried (and the Retry-After hint on refused writes).
	// Default 1s.
	ProbeInterval time.Duration
	// DegradedPolicy selects the response to a WAL wedge: DegradeFailWrites
	// (default) serves reads and 503s writes while a background probe
	// retries recovery; DegradeCrash exits the process for an external
	// supervisor to restart.
	DegradedPolicy DegradedPolicy
	// AuthToken, when non-empty, locks the mutating endpoints: POST
	// /v1/update requires "Authorization: Bearer <token>". Reads, health,
	// and metrics stay open.
	AuthToken string
	// FaultSpec arms a deterministic fault-injection schedule
	// (fault.ParseSchedule grammar) over the WAL's filesystem operations
	// and the TCP ingest connections. Empty — the production value — arms
	// nothing and costs nothing. Chaos tests and CI set it to prove the
	// durability and degraded-mode contracts.
	FaultSpec string

	// ReadHeaderTimeout, ReadTimeout, and IdleTimeout bound the HTTP
	// server's exposure to slow or stalled clients (slowloris); zero
	// selects the defaults (10s, 2m, 2m), negative disables one.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// MaxHeaderBytes bounds a request's header section. Default 1 MiB.
	MaxHeaderBytes int
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8192
	}
	if o.MaxPendingEpochs <= 0 {
		o.MaxPendingEpochs = 64
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 5 * time.Minute
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.DegradedPolicy == "" {
		o.DegradedPolicy = DegradeFailWrites
	}
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.MaxHeaderBytes == 0 {
		o.MaxHeaderBytes = 1 << 20
	}
	return o
}

// Server is the connectivity service: it owns the batcher, the WAL, the
// metrics registry, and the HTTP surface over one ingest.Stream. Build one
// with New (which runs recovery), then Start/Close it, or mount Handler
// into an existing mux.
type Server struct {
	st  *ingest.Stream
	log *wal.Log // nil without durability
	bat *batcher
	opt Options
	reg *Registry
	mux *http.ServeMux

	// q answers forest-backed queries (/v1/path, /v1/component, histogram
	// mode); nil when the stream's algorithm lacks spanning-forest support,
	// with qErr holding the capability verdict for the 501 response.
	q    *query.Engine
	qErr error

	// pending reports the backpressure signal; a field so tests can force
	// the 429 path deterministically.
	pending func() int

	// state is the serving state machine (state.go): serving, degraded
	// (WAL wedged; reads only), or closing.
	state atomic.Int32
	// faults is the parsed Options.FaultSpec schedule, shared by the WAL
	// seam and the TCP conn wrapper so a spec's wal.* and conn.* rules
	// interleave deterministically; nil in production.
	faults *fault.Schedule

	accepted      *Counter
	backpressure  *Counter
	degradedTotal *Counter
	unauthorized  *Counter

	// connectit_ingest_frames_total by transport: one JSON request, one
	// binary HTTP body, or one TCP frame each count as a frame.
	framesJSON   *Counter
	framesBinary *Counter
	framesTCP    *Counter

	httpSrv *http.Server
	ln      net.Listener
	ingest  *ingestListener // nil unless Options.IngestAddr is set
	started time.Time

	stopSnap  chan struct{}
	snapDone  chan struct{}
	stopProbe chan struct{}
	probeDone chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
}

// New builds a Server over st. When opt.WALDir is set it first recovers:
// the newest .cbin snapshot is loaded and fed, the WAL tail is replayed,
// and the stream is synced, so the returned server answers from exactly the
// state every previously-acknowledged update implies.
func New(st *ingest.Stream, opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		st:        st,
		opt:       opt,
		reg:       NewRegistry(),
		mux:       http.NewServeMux(),
		started:   time.Now(),
		stopSnap:  make(chan struct{}),
		snapDone:  make(chan struct{}),
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
		closed:    make(chan struct{}),
	}
	s.pending = st.PendingEpochs
	if q, err := st.Query(); err != nil {
		s.qErr = err
	} else {
		s.q = q
	}
	if opt.FaultSpec != "" {
		sched, err := fault.ParseSchedule(opt.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.faults = sched
	}

	if opt.WALDir != "" {
		l, err := wal.Open(opt.WALDir, wal.Options{
			SegmentBytes: opt.SegmentBytes,
			NoSync:       opt.NoSync,
			FS:           fault.NewFS(nil, s.faults),
		})
		if err != nil {
			return nil, err
		}
		if err := s.recover(l); err != nil {
			l.Close()
			return nil, err
		}
		s.log = l
	}
	s.bat = newBatcher(st, s.log, opt.MaxBatch, opt.FlushInterval)
	if s.log != nil {
		// A flush whose WAL append wedged the log flips the server into
		// degraded mode right away; the probe loop owns the way back.
		s.bat.onErr = func(error) {
			if werr := s.log.Wedged(); werr != nil {
				s.enterDegraded(werr)
			}
		}
	}
	s.registerMetrics()
	s.routes()

	if s.log != nil && opt.SnapshotInterval > 0 {
		go s.snapshotLoop()
	} else {
		close(s.snapDone)
	}
	if s.log != nil {
		go s.probeLoop()
	} else {
		close(s.probeDone)
	}
	return s, nil
}

// recover rebuilds the stream's state from the newest snapshot plus the
// WAL tail. Unions are idempotent, so the snapshot/tail overlap window is
// harmless; what matters is that nothing acknowledged is missing.
func (s *Server) recover(l *wal.Log) error {
	from := uint64(0)
	if lsn, path, ok := l.LatestSnapshot(); ok {
		c, err := graph.LoadCBIN(path)
		if err != nil {
			return fmt.Errorf("server: loading snapshot %s: %w", path, err)
		}
		closer, _ := c.(interface{ Close() error })
		if c.NumVertices() != s.st.Len() {
			closer.Close()
			return fmt.Errorf("server: snapshot %s has %d vertices, stream has %d", path, c.NumVertices(), s.st.Len())
		}
		if err := s.feedSnapshot(c); err != nil {
			closer.Close()
			return err
		}
		closer.Close()
		from = lsn
	}
	err := l.Replay(from, func(_ uint64, edges []graph.Edge) error {
		return s.st.UpdateBatch(edges)
	})
	if err != nil {
		return err
	}
	s.st.Sync()
	return nil
}

// feedSnapshot replays a star-forest snapshot graph into the stream,
// batching the decode so epochs stay full. It iterates the Rep contract,
// so single-segment and segmented snapshots feed identically.
func (s *Server) feedSnapshot(c graph.Rep) error {
	batch := make([]graph.Edge, 0, 8192)
	var buf []graph.Vertex
	n := c.NumVertices()
	for v := 0; v < n; v++ {
		buf = c.NeighborsInto(graph.Vertex(v), buf)
		for _, u := range buf {
			if graph.Vertex(v) < u { // symmetric storage: feed each edge once
				batch = append(batch, graph.Edge{U: graph.Vertex(v), V: u})
				if len(batch) == cap(batch) {
					if err := s.st.UpdateBatch(batch); err != nil {
						return err
					}
					batch = batch[:0]
				}
			}
		}
	}
	return s.st.UpdateBatch(batch)
}

// Snapshot persists the current connectivity state as a .cbin star forest
// covering every WAL record appended so far and compacts the log. It is
// called periodically by the snapshot loop and once more at Close; exposed
// for operational use (tests, manual compaction).
func (s *Server) Snapshot() error {
	if s.log == nil {
		return errors.New("server: snapshots require a WAL")
	}
	// Fence a cut at which appended == fed: flushes append and feed under
	// the same critical section, so with flushes excluded the log's LSN is
	// a consistent tag for "everything the stream has been handed".
	var lsn uint64
	s.bat.fence(func() { lsn = s.log.LSN() })
	labels := s.st.Labels() // syncs: every fed update becomes applied
	return s.log.CommitSnapshot(lsn, func(path string) error {
		return writeSnapshot(path, labels)
	})
}

// writeSnapshot encodes a connectivity labeling as a compressed star-forest
// graph — an edge from each vertex to its component label reconstructs
// exactly the labeling's connectivity — in the versioned .cbin format the
// graph layer already knows how to save, mmap, and validate. TryCompress
// auto-segments past the 4 GiB single-segment cap, so a server whose
// accumulated forest outgrows one segment still snapshots and recovers.
//
// CONNECTIT_SNAPSHOT_SEGMENT_BYTES forces segmentation at a given
// per-segment byte target regardless of size — the hook integration tests
// and CI use to exercise the segmented snapshot/recovery path without
// multi-GiB state.
func writeSnapshot(path string, labels []uint32) error {
	edges := make([]graph.Edge, 0, len(labels))
	for v, l := range labels {
		if uint32(v) != l {
			edges = append(edges, graph.Edge{U: uint32(v), V: l})
		}
	}
	g, err := graph.TryBuild(len(labels), edges)
	if err != nil {
		return fmt.Errorf("server: building snapshot forest: %w", err)
	}
	var c graph.Rep
	if env := os.Getenv("CONNECTIT_SNAPSHOT_SEGMENT_BYTES"); env != "" {
		segBytes, perr := strconv.ParseUint(env, 10, 64)
		if perr != nil {
			return fmt.Errorf("server: CONNECTIT_SNAPSHOT_SEGMENT_BYTES=%q: %w", env, perr)
		}
		c, err = graph.TrySegment(g, segBytes)
	} else {
		c, err = graph.TryCompress(g)
	}
	if err != nil {
		return fmt.Errorf("server: compressing snapshot: %w", err)
	}
	return graph.SaveCBIN(path, c)
}

func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(s.opt.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best effort: a failed periodic snapshot leaves the previous
			// one installed and the log un-compacted; the next tick (or
			// Close) retries.
			_ = s.Snapshot()
		case <-s.stopSnap:
			return
		}
	}
}

// Handler returns the service's HTTP handler (for embedding into an
// existing server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on Options.Addr (and Options.IngestAddr when set) and
// serves in the background. Use Addr/IngestAddr for the bound addresses
// (useful with ":0") and Close to shut down.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opt.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	// Bounded exposure to slow clients: header and whole-request read
	// deadlines, idle keep-alive reaping, and a header-size cap. A negative
	// option disables the corresponding limit.
	clamp := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return d
	}
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: clamp(s.opt.ReadHeaderTimeout),
		ReadTimeout:       clamp(s.opt.ReadTimeout),
		IdleTimeout:       clamp(s.opt.IdleTimeout),
		MaxHeaderBytes:    s.opt.MaxHeaderBytes,
	}
	go s.httpSrv.Serve(ln)
	if s.opt.IngestAddr != "" {
		il, err := newIngestListener(s, s.opt.IngestAddr)
		if err != nil {
			s.httpSrv.Close()
			return err
		}
		s.ingest = il
	}
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.opt.Addr
	}
	return s.ln.Addr().String()
}

// IngestAddr returns the bound binary ingest address after Start, or ""
// when the TCP ingest listener is not configured.
func (s *Server) IngestAddr() string {
	if s.ingest == nil {
		return ""
	}
	return s.ingest.ln.Addr().String()
}

// Close shuts the service down gracefully: stop accepting HTTP traffic,
// drain the batcher (every acknowledged update flushed through WAL and
// pipeline), close the stream (state final), write a final snapshot, and
// seal the log. Idempotent; later calls (including concurrent ones) return
// nil once the first shutdown completes.
func (s *Server) Close(ctx context.Context) error {
	var first error
	// sync.Once rather than a select/default on s.closed: two concurrent
	// Closes could both take the default branch and double-close the channel.
	s.closeOnce.Do(func() {
		s.setClosing()
		close(s.closed)
		close(s.stopProbe)
		<-s.probeDone
		if s.httpSrv != nil {
			if err := s.httpSrv.Shutdown(ctx); err != nil && first == nil {
				first = err
			}
		}
		if s.ingest != nil {
			s.ingest.Close()
		}
		close(s.stopSnap)
		<-s.snapDone
		s.bat.Close()
		s.st.Close()
		if s.log != nil {
			if err := s.Snapshot(); err != nil && first == nil {
				first = err
			}
			if err := s.log.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}

// ---- HTTP surface ----

// latencyBuckets spans 100µs to ~10s, the range between a batched in-memory
// union and a backpressured group commit on slow disks.
var latencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}

// authorized checks the shared-token gate on mutating endpoints: with no
// token configured every request passes; otherwise the request must carry
// "Authorization: Bearer <token>". Constant-time compare — the token is a
// credential.
func (s *Server) authorized(r *http.Request) bool {
	if s.opt.AuthToken == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.opt.AuthToken)) == 1
}

func (s *Server) routes() {
	s.accepted = s.reg.Counter("connectit_updates_accepted_total", "", "Edges acknowledged by POST /v1/update (durable when the WAL is enabled).")
	s.backpressure = s.reg.Counter("connectit_backpressure_total", "", "Update requests rejected with 429 because the apply pipeline was too far behind.")
	s.degradedTotal = s.reg.Counter("connectit_degraded_total", "", "Transitions into degraded mode (WAL wedged; reads serving, writes refused).")
	s.unauthorized = s.reg.Counter("connectit_http_unauthorized_total", "", "Mutating requests rejected with 401 by the shared-token gate.")
	const framesHelp = "Accepted ingest frames by transport: one JSON request, one binary HTTP body, or one TCP wire frame each."
	s.framesJSON = s.reg.Counter("connectit_ingest_frames_total", `{proto="json"}`, framesHelp)
	s.framesBinary = s.reg.Counter("connectit_ingest_frames_total", `{proto="binary"}`, framesHelp)
	s.framesTCP = s.reg.Counter("connectit_ingest_frames_total", `{proto="tcp"}`, framesHelp)
	s.handle("/v1/update", "update", s.handleUpdate)
	s.handle("/v1/connected", "connected", s.handleConnected)
	s.handle("/v1/components", "components", s.handleComponents)
	s.handle("/v1/path", "path", s.handlePath)
	s.handle("/v1/component", "component", s.handleComponent)
	s.handle("/v1/stats", "stats", s.handleStats)
	s.handle("/healthz", "healthz", s.handleHealthz)
	s.mux.Handle("/metrics", s.reg)
}

// statusWriter records the response code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// handle mounts fn with per-handler request, error, and latency metrics.
func (s *Server) handle(path, name string, fn http.HandlerFunc) {
	labels := `{handler="` + name + `"}`
	reqs := s.reg.Counter("connectit_http_requests_total", labels, "HTTP requests by handler.")
	errs := s.reg.Counter("connectit_http_errors_total", labels, "HTTP responses with status >= 400 by handler.")
	lat := s.reg.Histogram("connectit_http_request_seconds", labels, "HTTP request latency by handler.", latencyBuckets)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(sw, r)
		lat.Observe(time.Since(start).Seconds())
		reqs.Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// updateRequest accepts either one edge ({"u":0,"v":1}) or a batch
// ({"edges":[[0,1],[2,3]]}); both forms may appear together.
type updateRequest struct {
	U     *uint32     `json:"u"`
	V     *uint32     `json:"v"`
	Edges [][2]uint32 `json:"edges"`
}

// retryAfter derives the 429 Retry-After hint from how far behind the
// apply pipeline actually is: the excess epochs drain at roughly one per
// flush interval, rounded up to the header's whole-second granularity and
// never below 1 so clients always back off a little.
func (s *Server) retryAfter(pending int) string {
	excess := pending - s.opt.MaxPendingEpochs
	if excess < 0 {
		excess = 0
	}
	d := time.Duration(excess) * s.opt.FlushInterval
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// Scratch pools for the binary ingest paths: one for request/frame bytes,
// one for decoded edge slices. Both are returned after Submit copies the
// batch into the flush group, so steady-state ingest allocates nothing per
// request beyond what the pool amortizes.
var (
	bytePool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}
	edgePool = sync.Pool{New: func() any { e := make([]graph.Edge, 0, 8192); return &e }}
)

// readAllInto reads r to EOF into buf (reusing its capacity), returning
// the filled slice.
func readAllInto(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleUpdate is the transactional ingest path: backpressure check, body
// decode (JSON, or a wire edge block when Content-Type selects the binary
// fast path), endpoint validation, then a group commit through the batcher
// — 200 means the batch is durable (WAL enabled) and in the epoch pipeline.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.authorized(r) {
		s.unauthorized.Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="connectit"`)
		httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
		return
	}
	if st := s.State(); st != StateServing {
		// Degraded (WAL wedged) or closing: refuse the write up front with
		// an honest retry hint instead of burning a group commit that the
		// wedged log would fail anyway. Reads never pass through here.
		w.Header().Set("Retry-After", s.degradedRetryAfter())
		httpError(w, http.StatusServiceUnavailable, "writes suspended: server "+st.String())
		return
	}
	if p := s.pending(); p > s.opt.MaxPendingEpochs {
		s.backpressure.Inc()
		w.Header().Set("Retry-After", s.retryAfter(p))
		httpError(w, http.StatusTooManyRequests, "apply pipeline behind; retry")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct == wire.ContentTypeEdges || strings.HasPrefix(ct, wire.ContentTypeEdges+";") {
		s.handleUpdateBinary(w, r)
		return
	}
	var req updateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	n := uint32(s.st.Len())
	edges := make([]graph.Edge, 0, len(req.Edges)+1)
	if (req.U == nil) != (req.V == nil) {
		httpError(w, http.StatusBadRequest, `"u" and "v" must be given together`)
		return
	}
	if req.U != nil {
		edges = append(edges, graph.Edge{U: *req.U, V: *req.V})
	}
	for _, e := range req.Edges {
		edges = append(edges, graph.Edge{U: e[0], V: e[1]})
	}
	if len(edges) == 0 {
		httpError(w, http.StatusBadRequest, `provide "u"/"v" or a non-empty "edges" array`)
		return
	}
	for _, e := range edges {
		if e.U >= n || e.V >= n {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("edge {%d, %d} endpoint out of range [0, %d)", e.U, e.V, n))
			return
		}
	}
	lsn, err := s.bat.Submit(edges)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(uint64(len(edges)))
	s.framesJSON.Inc()
	resp := map[string]any{"accepted": len(edges), "durable": s.log != nil}
	if s.log != nil {
		resp["lsn"] = lsn
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleUpdateBinary is the zero-copy fast path behind the binary
// content type: the body is one wire edge block, read into pooled scratch
// and delta-decoded into a pooled edge slice that goes straight into the
// group commit — no JSON, no per-request allocation in steady state.
func (s *Server) handleUpdateBinary(w http.ResponseWriter, r *http.Request) {
	bp := bytePool.Get().(*[]byte)
	defer bytePool.Put(bp)
	body, err := readAllInto(http.MaxBytesReader(w, r.Body, wire.MaxFrameBytes), (*bp)[:0])
	*bp = body[:0]
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	ep := edgePool.Get().(*[]graph.Edge)
	defer edgePool.Put(ep)
	edges, n, err := wire.DecodeBlock(body, (*ep)[:0])
	if err == nil && n != len(body) {
		err = fmt.Errorf("%w: %d trailing bytes after block", wire.ErrMalformed, len(body)-n)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	*ep = edges[:0]
	if len(edges) == 0 {
		httpError(w, http.StatusBadRequest, "empty edge block")
		return
	}
	if len(edges) > maxRequestEdges {
		// MaxBytesReader bounds the body's bytes; this bounds its decoded
		// edge count, so one request can never push a flush group past the
		// WAL record bound (see maxRequestEdges).
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("block of %d edges exceeds the %d-edge bound", len(edges), maxRequestEdges))
		return
	}
	nv := uint32(s.st.Len())
	for _, e := range edges {
		if e.U >= nv || e.V >= nv {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("edge {%d, %d} endpoint out of range [0, %d)", e.U, e.V, nv))
			return
		}
	}
	lsn, err := s.bat.Submit(edges)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(uint64(len(edges)))
	s.framesBinary.Inc()
	resp := map[string]any{"accepted": len(edges), "durable": s.log != nil}
	if s.log != nil {
		resp["lsn"] = lsn
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleConnected is the analytical fast path: wait-free against the
// applied state (Type i/ii; Type iii waits out an in-flight apply phase).
// Visibility is the stream's contract — an update is visible once its
// epoch's round completes.
func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	u, errU := parseVertex(r.URL.Query().Get("u"), s.st.Len())
	v, errV := parseVertex(r.URL.Query().Get("v"), s.st.Len())
	if errU != nil || errV != nil {
		httpError(w, http.StatusBadRequest, "u and v must be vertex ids in [0, n)")
		return
	}
	same, err := s.st.Connected(u, v)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "connected": same})
}

// handleComponents syncs the stream and counts components — the expensive
// quiescent analytical query, deliberately separate from /v1/connected.
// With ?histogram=1 it additionally returns the component-size histogram
// from the live forest index (forest-backed algorithms only).
func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"vertices":   s.st.Len(),
		"components": s.st.NumComponents(),
	}
	if h := r.URL.Query().Get("histogram"); h == "1" || h == "true" {
		q, ok := s.queryEngine(w)
		if !ok {
			return
		}
		s.st.Sync() // barrier: absorb every accepted update into the answer
		hist, err := q.ComponentHistogram()
		if err != nil {
			queryError(w, err)
			return
		}
		resp["histogram"] = hist
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryEngine returns the forest-backed query engine, or writes the 501
// capability verdict (fixed at construction: the algorithm cannot maintain
// a spanning forest) and reports false.
func (s *Server) queryEngine(w http.ResponseWriter) (*query.Engine, bool) {
	if s.q == nil {
		httpError(w, http.StatusNotImplemented, "forest queries unsupported: "+s.qErr.Error())
		return nil, false
	}
	return s.q, true
}

// queryError maps a query engine failure: a closed stream is a service
// state (503), anything else is an internal invariant violation (500).
func queryError(w http.ResponseWriter, err error) {
	if errors.Is(err, ingest.ErrClosed) {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	httpError(w, http.StatusInternalServerError, err.Error())
}

// handlePath walks the live spanning forest between two vertices: the
// response carries the connectivity verdict and, when connected, the
// witness path as [u, v] pairs oriented from u to v (Algorithm 2's
// Theorem 6 guarantees the forest spans every component, so a connected
// pair always yields a path).
func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	q, ok := s.queryEngine(w)
	if !ok {
		return
	}
	u, errU := parseVertex(r.URL.Query().Get("u"), s.st.Len())
	v, errV := parseVertex(r.URL.Query().Get("v"), s.st.Len())
	if errU != nil || errV != nil {
		httpError(w, http.StatusBadRequest, "u and v must be vertex ids in [0, n)")
		return
	}
	path, connected, err := q.PathBetween(u, v)
	if err != nil {
		queryError(w, err)
		return
	}
	pairs := make([][2]uint32, len(path))
	for i, e := range path {
		pairs[i] = [2]uint32{e.U, e.V}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v, "connected": connected,
		"path": pairs, "length": len(pairs),
	})
}

// handleComponent reports a vertex's canonical component label (the
// smallest vertex in its component) and size from the live forest index.
func (s *Server) handleComponent(w http.ResponseWriter, r *http.Request) {
	q, ok := s.queryEngine(w)
	if !ok {
		return
	}
	v, err := parseVertex(r.URL.Query().Get("v"), s.st.Len())
	if err != nil {
		httpError(w, http.StatusBadRequest, "v must be a vertex id in [0, n)")
		return
	}
	label, err := q.Component(v)
	if err != nil {
		queryError(w, err)
		return
	}
	size, err := q.ComponentSize(v)
	if err != nil {
		queryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"v": v, "component": label, "size": size,
	})
}

// statsResponse is the JSON mirror of /metrics for programmatic consumers.
type statsResponse struct {
	Stream ingest.Stats   `json:"stream"`
	Pool   parallel.Stats `json:"pool"`
	WAL    *wal.Stats     `json:"wal,omitempty"`
	Server struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		PendingEpochs int     `json:"pending_epochs"`
		Accepted      uint64  `json:"accepted"`
		Backpressure  uint64  `json:"backpressure"`
	} `json:"server"`
	Ingest struct {
		JSONFrames   uint64 `json:"json_frames"`
		BinaryFrames uint64 `json:"binary_frames"`
		TCPFrames    uint64 `json:"tcp_frames"`
	} `json:"ingest"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Stream = s.st.Stats()
	resp.Pool = parallel.PoolStats()
	if s.log != nil {
		st := s.log.Stats()
		resp.WAL = &st
	}
	resp.Server.UptimeSeconds = time.Since(s.started).Seconds()
	resp.Server.PendingEpochs = s.st.PendingEpochs()
	resp.Server.Accepted = s.accepted.Value()
	resp.Server.Backpressure = s.backpressure.Value()
	resp.Ingest.JSONFrames = s.framesJSON.Value()
	resp.Ingest.BinaryFrames = s.framesBinary.Value()
	resp.Ingest.TCPFrames = s.framesTCP.Value()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports the serving state as plain text: "ok" (200),
// "degraded" (200 — reads still serve, so a liveness-routing LB must not
// kill the process; the body and the state gauge carry the distinction),
// or "closing" (503).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.State()
	w.Header().Set("Content-Type", "text/plain")
	if st == StateClosing {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, st.String())
}

func parseVertex(s string, n int) (uint32, error) {
	x, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, err
	}
	if x >= uint64(n) {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", x, n)
	}
	return uint32(x), nil
}

// registerMetrics exposes the engine's own counters — StreamStats,
// PoolStats, and WAL stats — through the registry, so /metrics is a full
// view of the system, not just the HTTP edge.
func (s *Server) registerMetrics() {
	stream := func(f func(ingest.Stats) uint64) func() uint64 {
		return func() uint64 { return f(s.st.Stats()) }
	}
	s.reg.CounterFunc("connectit_stream_updates_total", "", "Accepted Update calls.", stream(func(st ingest.Stats) uint64 { return st.Updates }))
	s.reg.CounterFunc("connectit_stream_queries_total", "", "Connected calls.", stream(func(st ingest.Stats) uint64 { return st.Queries }))
	s.reg.CounterFunc("connectit_stream_filtered_total", "", "Updates dropped by the intra-component pre-filter.", stream(func(st ingest.Stats) uint64 { return st.Filtered }))
	s.reg.CounterFunc("connectit_stream_applied_total", "", "Updates handed to the apply path.", stream(func(st ingest.Stats) uint64 { return st.Applied }))
	s.reg.CounterFunc("connectit_stream_epochs_total", "", "Sealed epochs queued for apply.", stream(func(st ingest.Stats) uint64 { return st.Epochs }))
	s.reg.CounterFunc("connectit_stream_rounds_total", "", "Apply rounds run (epochs/rounds is the coalescing win).", stream(func(st ingest.Stats) uint64 { return st.Rounds }))
	s.reg.CounterFunc("connectit_stream_coalesced_total", "", "Epochs that shared an apply round.", stream(func(st ingest.Stats) uint64 { return st.Coalesced }))
	s.reg.CounterFunc("connectit_stream_dedup_sorted_total", "", "Batches semisort-deduplicated by Algorithm 3.", stream(func(st ingest.Stats) uint64 { return st.DedupSorted }))
	s.reg.CounterFunc("connectit_stream_dedup_skipped_total", "", "Batches applied unsorted by the dedup estimator.", stream(func(st ingest.Stats) uint64 { return st.DedupSkipped }))
	s.reg.GaugeFunc("connectit_stream_pending_epochs", "", "Sealed epochs not yet fully applied (backpressure signal).", func() float64 { return float64(s.st.PendingEpochs()) })
	s.reg.GaugeFunc("connectit_stream_vertices", "", "Vertex universe size.", func() float64 { return float64(s.st.Len()) })
	s.reg.GaugeFunc("connectit_server_state", "", "Serving state: 0 serving, 1 degraded (reads only), 2 closing.", func() float64 { return float64(s.state.Load()) })

	if s.q != nil {
		s.reg.GaugeFunc("connectit_query_forest_edges", "", "Spanning-forest edges captured by the stream (witness log length).", func() float64 { return float64(s.st.ForestLen()) })
		s.reg.GaugeFunc("connectit_query_index_edges", "", "Forest edges absorbed into the query index.", func() float64 { return float64(s.q.Stats().ForestEdges) })
		s.reg.GaugeFunc("connectit_query_index_dropped", "", "Pulled edges rejected by the query index as redundant (0 while the forest invariant holds).", func() float64 { return float64(s.q.Stats().Dropped) })
	}

	pool := func(f func(parallel.Stats) uint64) func() uint64 {
		return func() uint64 { return f(parallel.PoolStats()) }
	}
	s.reg.CounterFunc("connectit_pool_calls_total", "", "Parallel calls that rode the persistent pool.", pool(func(ps parallel.Stats) uint64 { return ps.Calls }))
	s.reg.CounterFunc("connectit_pool_sequential_total", "", "Parallel calls that ran inline.", pool(func(ps parallel.Stats) uint64 { return ps.Sequential }))
	s.reg.CounterFunc("connectit_pool_chunks_total", "", "Chunks executed by pool workers.", pool(func(ps parallel.Stats) uint64 { return ps.Chunks }))
	s.reg.CounterFunc("connectit_pool_steals_total", "", "Chunks stolen across workers (load-balance traffic).", pool(func(ps parallel.Stats) uint64 { return ps.Steals }))
	s.reg.CounterFunc("connectit_pool_wakes_total", "", "Worker wakeups from park.", pool(func(ps parallel.Stats) uint64 { return ps.Wakes }))
	s.reg.CounterFunc("connectit_pool_parks_total", "", "Worker parks after the spin budget.", pool(func(ps parallel.Stats) uint64 { return ps.Parks }))
	s.reg.GaugeFunc("connectit_pool_procs", "", "Scheduler width (GOMAXPROCS).", func() float64 { return float64(parallel.Procs()) })

	if s.opt.WALDir != "" {
		walStat := func(f func(wal.Stats) uint64) func() uint64 {
			return func() uint64 { return f(s.log.Stats()) }
		}
		s.reg.GaugeFunc("connectit_wal_lsn", "", "Next WAL record sequence number.", func() float64 { return float64(s.log.LSN()) })
		s.reg.GaugeFunc("connectit_wal_snapshot_lsn", "", "LSN covered by the latest snapshot.", func() float64 { return float64(s.log.Stats().SnapshotLSN) })
		s.reg.GaugeFunc("connectit_wal_segments", "", "Live WAL segment files.", func() float64 { return float64(s.log.Stats().Segments) })
		s.reg.CounterFunc("connectit_wal_appends_total", "", "Records appended to the WAL.", walStat(func(ws wal.Stats) uint64 { return ws.Appends }))
		s.reg.CounterFunc("connectit_wal_appended_edges_total", "", "Edges appended to the WAL.", walStat(func(ws wal.Stats) uint64 { return ws.AppendedEdges }))
		s.reg.CounterFunc("connectit_wal_bytes_total", "", "Bytes written to the WAL.", walStat(func(ws wal.Stats) uint64 { return ws.Bytes }))
		s.reg.CounterFunc("connectit_wal_raw_bytes", "", "Payload bytes appended records would cost at the raw 8 bytes per edge.", walStat(func(ws wal.Stats) uint64 { return ws.RawBytes }))
		s.reg.CounterFunc("connectit_wal_written_bytes", "", "Payload bytes actually stored after wire-block compression (raw/written is the WAL compression ratio).", walStat(func(ws wal.Stats) uint64 { return ws.WrittenBytes }))
		s.reg.CounterFunc("connectit_wal_syncs_total", "", "WAL fsyncs.", walStat(func(ws wal.Stats) uint64 { return ws.Syncs }))
		s.reg.CounterFunc("connectit_wal_snapshots_total", "", "Snapshots committed since boot.", walStat(func(ws wal.Stats) uint64 { return ws.Snapshots }))
		s.reg.CounterFunc("connectit_wal_wedges_total", "", "Append failures that wedged the log (each starts a degraded episode).", walStat(func(ws wal.Stats) uint64 { return ws.Wedges }))
		s.reg.CounterFunc("connectit_wal_recoveries_total", "", "Successful wedge recoveries (log rotated to a fresh segment and resumed).", walStat(func(ws wal.Stats) uint64 { return ws.Recoveries }))
	}
}
