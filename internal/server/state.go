package server

import (
	"fmt"
	"os"
	"time"
)

// State is the server's serving state (DESIGN.md §15). Transitions:
//
//	StateServing --(WAL append failure wedges the log)--> StateDegraded
//	StateDegraded --(probe TryRecover succeeds)---------> StateServing
//	any ----------(Close)-------------------------------> StateClosing
//
// Degraded is a write-side condition only: the in-memory structure is
// intact (the wedged batch was never fed), so wait-free reads keep
// answering correctly; mutating endpoints refuse with honest retry hints
// until the background probe re-opens the log.
type State int32

const (
	StateServing State = iota
	StateDegraded
	StateClosing
)

// String returns the /healthz body for the state.
func (s State) String() string {
	switch s {
	case StateServing:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateClosing:
		return "closing"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// DegradedPolicy selects what a WAL wedge does to the server.
type DegradedPolicy string

const (
	// DegradeFailWrites (the default) keeps the process alive: writes 503,
	// reads serve, and a background probe retries WAL recovery.
	DegradeFailWrites DegradedPolicy = "fail-writes"
	// DegradeCrash exits the process on the first wedge — the right policy
	// under an external supervisor that restarts onto healthy storage,
	// where replay-on-boot is the recovery path.
	DegradeCrash DegradedPolicy = "crash"
)

// crashExit is the DegradeCrash action; a variable so tests can observe
// the crash decision without dying.
var crashExit = func(cause error) {
	fmt.Fprintf(os.Stderr, "connectit: WAL wedged and DegradedPolicy=crash: %v\n", cause)
	os.Exit(1)
}

// State returns the server's current serving state.
func (s *Server) State() State { return State(s.state.Load()) }

// setClosing marks the server closing; terminal, never left.
func (s *Server) setClosing() { s.state.Store(int32(StateClosing)) }

// enterDegraded moves serving → degraded after a WAL wedge. Idempotent
// under concurrent append failures (CAS), and a no-op once closing.
func (s *Server) enterDegraded(cause error) {
	if s.opt.DegradedPolicy == DegradeCrash {
		crashExit(cause)
		return // only reachable with a test crashExit
	}
	if s.state.CompareAndSwap(int32(StateServing), int32(StateDegraded)) {
		s.degradedTotal.Inc()
		fmt.Fprintf(os.Stderr, "connectit: entering degraded mode (reads serve, writes 503): %v\n", cause)
	}
}

// promote moves degraded → serving once the WAL accepts writes again.
func (s *Server) promote() {
	if s.state.CompareAndSwap(int32(StateDegraded), int32(StateServing)) {
		fmt.Fprintf(os.Stderr, "connectit: WAL recovered; resuming writes\n")
	}
}

// probeLoop is the degraded-mode doctor: every ProbeInterval it checks the
// log and, when wedged, attempts TryRecover — trim the torn tail, rotate
// to a fresh segment — promoting back to serving on success. It also
// catches a wedge the batcher callback raced past (belt and braces: the
// state machine converges on the log's actual health, whichever side
// observed the failure first).
func (s *Server) probeLoop() {
	defer close(s.probeDone)
	t := time.NewTicker(s.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			switch s.State() {
			case StateDegraded:
				if err := s.log.TryRecover(); err == nil {
					s.promote()
				}
			case StateServing:
				if s.log.Wedged() != nil {
					s.enterDegraded(s.log.Wedged())
				}
			case StateClosing:
				return
			}
		case <-s.stopProbe:
			return
		}
	}
}

// degradedRetryAfter is the Retry-After hint while degraded: the next
// probe is the earliest anything can change, rounded up to the header's
// whole-second granularity.
func (s *Server) degradedRetryAfter() string {
	secs := int64((s.opt.ProbeInterval + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
