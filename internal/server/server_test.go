package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/ingest"
)

// testStream opens a plain union-find stream without going through the
// public package (which imports this one).
func testStream(t *testing.T, n int) *ingest.Stream {
	t.Helper()
	cfg, err := core.ParseConfig("none;uf;rem-cas;naive;split-one")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.NewIncremental(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ingest.New(inc, ingest.Options{})
}

// testServer boots an in-memory service with a fast flush deadline and a
// shutdown hook.
func testServer(t *testing.T, n int, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.FlushInterval == 0 {
		opt.FlushInterval = time.Millisecond
	}
	s, err := New(testStream(t, n), opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, m
}

func TestServeUpdateAndQuery(t *testing.T) {
	_, ts := testServer(t, 100, Options{})

	resp, m := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if resp.StatusCode != 200 || m["accepted"].(float64) != 1 {
		t.Fatalf("single update: %d %v", resp.StatusCode, m)
	}
	if m["durable"].(bool) {
		t.Fatal("in-memory server claimed durability")
	}
	resp, m = postJSON(t, ts.URL+"/v1/update", `{"edges":[[2,3],[10,11]]}`)
	if resp.StatusCode != 200 || m["accepted"].(float64) != 2 {
		t.Fatalf("batch update: %d %v", resp.StatusCode, m)
	}

	resp, m = getJSON(t, ts.URL+"/v1/connected?u=1&v=3")
	if resp.StatusCode != 200 || m["connected"] != true {
		t.Fatalf("connected(1,3): %d %v", resp.StatusCode, m)
	}
	_, m = getJSON(t, ts.URL+"/v1/connected?u=1&v=10")
	if m["connected"] != false {
		t.Fatalf("connected(1,10) = %v, want false", m["connected"])
	}

	_, m = getJSON(t, ts.URL+"/v1/components")
	// 100 vertices, two unions of sizes 3 and 2: 100-3 = 97 components.
	if m["components"].(float64) != 97 {
		t.Fatalf("components = %v, want 97", m["components"])
	}

	resp, m = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if m["stream"].(map[string]any)["Updates"].(float64) != 3 {
		t.Fatalf("stats.stream.Updates = %v, want 3", m["stream"])
	}
	if _, ok := m["pool"]; !ok {
		t.Fatal("stats missing pool section")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, hresp)
	}
	hresp.Body.Close()
}

func TestServeMetricsExposesEngineCounters(t *testing.T) {
	_, ts := testServer(t, 64, Options{})
	postJSON(t, ts.URL+"/v1/update", `{"u":5,"v":6}`)
	getJSON(t, ts.URL+"/v1/connected?u=5&v=6")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"connectit_stream_updates_total 1",
		"connectit_stream_queries_total 1",
		"connectit_pool_calls_total",
		"connectit_pool_procs",
		`connectit_http_requests_total{handler="update"} 1`,
		`connectit_http_request_seconds_bucket{handler="update",le="+Inf"} 1`,
		"connectit_updates_accepted_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestServeUpdateValidation(t *testing.T) {
	_, ts := testServer(t, 16, Options{})
	cases := []struct {
		body string
		code int
	}{
		{`{"u":1,"v":2}`, 200},
		{`{"u":1}`, 400},                   // v missing
		{`{"u":1,"v":99}`, 400},            // out of range
		{`{"edges":[[1,2],[3,999]]}`, 400}, // batch member out of range
		{`{}`, 400},                        // nothing to do
		{`not json`, 400},
	}
	for _, tc := range cases {
		resp, m := postJSON(t, ts.URL+"/v1/update", tc.body)
		if resp.StatusCode != tc.code {
			t.Fatalf("POST %s: status %d, want %d (%v)", tc.body, resp.StatusCode, tc.code, m)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/update: %d, want 405", resp.StatusCode)
	}
	// Bad query params.
	for _, q := range []string{"", "?u=1", "?u=1&v=abc", "?u=1&v=99"} {
		resp, err := http.Get(ts.URL + "/v1/connected" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/connected%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestServeBackpressure(t *testing.T) {
	s, ts := testServer(t, 16, Options{MaxPendingEpochs: 4})
	s.pending = func() int { return 100 } // force the pipeline-behind state

	resp, m := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressured update: %d %v, want 429", resp.StatusCode, m)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.backpressure.Value(); got != 1 {
		t.Fatalf("backpressure counter = %d, want 1", got)
	}

	s.pending = s.st.PendingEpochs
	if resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`); resp.StatusCode != 200 {
		t.Fatalf("update after backpressure cleared: %d", resp.StatusCode)
	}
}

func TestServeGracefulClose(t *testing.T) {
	s, ts := testServer(t, 16, Options{})
	if resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`); resp.StatusCode != 200 {
		t.Fatal("priming update failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The mux still answers (httptest keeps serving), but mutating and
	// querying endpoints now refuse.
	resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":3,"v":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update after Close: %d, want 503", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/v1/connected?u=1&v=2")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("connected after Close: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d, want 503", hresp.StatusCode)
	}
}

// TestServerCloseConcurrent races many Closes: the old select/default gate
// on s.closed let two callers both take the default branch and double-close
// the channel (panic). All calls must return cleanly.
func TestServerCloseConcurrent(t *testing.T) {
	s, err := New(testStream(t, 16), Options{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(ctx); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestBatcherCapsGroupDuringStalledFlush stalls the flush path (fence holds
// flushMu, exactly like a slow fsync) and floods Submits: the in-progress
// group must stop admitting at the hard cap instead of growing toward the
// WAL's record bound, and every capped-out Submit must still complete once
// flushing resumes.
func TestBatcherCapsGroupDuringStalledFlush(t *testing.T) {
	st := testStream(t, 16)
	defer st.Close()
	b := newBatcher(st, nil, 1<<30 /* size trigger off */, time.Millisecond)
	defer b.Close()
	b.capEdges = 64

	stalled, release := make(chan struct{}), make(chan struct{})
	go b.fence(func() { close(stalled); <-release })
	<-stalled

	const submits, perSubmit = 32, 8 // 256 edges total, 4x the cap
	var wg sync.WaitGroup
	errs := make(chan error, submits)
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			edges := make([]graph.Edge, perSubmit)
			for j := range edges {
				edges[j] = graph.Edge{U: 1, V: 2}
			}
			_, err := b.Submit(edges)
			errs <- err
		}()
	}

	// While the flush is stalled no group can be swapped out, so the cap is
	// the only thing bounding growth. The invariant holds at every instant;
	// sample it while the submitters hammer away.
	deadline := time.After(100 * time.Millisecond)
sample:
	for {
		b.mu.Lock()
		n := len(b.cur.edges)
		b.mu.Unlock()
		if n > b.capEdges+perSubmit-1 {
			t.Fatalf("group grew to %d edges past the %d cap", n, b.capEdges)
		}
		select {
		case <-deadline:
			break sample
		case <-time.After(100 * time.Microsecond):
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
}

func TestStartAddrAndRealListener(t *testing.T) {
	s, err := New(testStream(t, 16), Options{Addr: "127.0.0.1:0", FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	url := "http://" + s.Addr()
	if resp, _ := postJSON(t, url+"/v1/update", `{"u":1,"v":2}`); resp.StatusCode != 200 {
		t.Fatalf("update via real listener: %d", resp.StatusCode)
	}
	_, m := getJSON(t, url+"/v1/connected?u=1&v=2")
	if m["connected"] != true {
		t.Fatalf("connected via real listener = %v", m["connected"])
	}
}
