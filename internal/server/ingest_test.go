package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"connectit/internal/graph"
	"connectit/internal/wire"
)

func TestRetryAfterDerivedFromPipelineDepth(t *testing.T) {
	s, ts := testServer(t, 16, Options{MaxPendingEpochs: 4, FlushInterval: 250 * time.Millisecond})

	// 12 excess epochs at 250ms each = 3s of drain.
	s.pending = func() int { return 16 }
	resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q (12 excess epochs x 250ms)", got, "3")
	}

	// Barely over the bound: sub-second drain still hints at least 1s.
	s.pending = func() int { return 5 }
	resp, _ = postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`)
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q (floor)", got, "1")
	}
}

func postBinary(t *testing.T, url string, edges []graph.Edge) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, wire.ContentTypeEdges, bytes.NewReader(wire.AppendBlock(nil, edges)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func TestBinaryUpdateHTTP(t *testing.T) {
	s, ts := testServer(t, 64, Options{})

	edges := []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 10, V: 11}}
	resp, body := postBinary(t, ts.URL+"/v1/update", edges)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary update: %d %s", resp.StatusCode, body)
	}
	s.st.Sync()
	if same, _ := s.st.Connected(1, 3); !same {
		t.Fatal("binary-ingested edges not applied")
	}
	if got := s.framesBinary.Value(); got != 1 {
		t.Fatalf("binary frame counter = %d, want 1", got)
	}

	// Malformed block and out-of-range endpoints are both 400s.
	resp, err := http.Post(ts.URL+"/v1/update", wire.ContentTypeEdges, bytes.NewReader([]byte{0x7f, 0x01}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed block: %d, want 400", resp.StatusCode)
	}
	resp, body = postBinary(t, ts.URL+"/v1/update", []graph.Edge{{U: 1, V: 64}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: %d %s, want 400", resp.StatusCode, body)
	}
}

// dialIngest performs the client side of the hello exchange against a
// started server and returns the connection plus the advertised universe.
func dialIngest(t *testing.T, addr string) (net.Conn, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(wire.Magic)); err != nil {
		t.Fatal(err)
	}
	var hello [12]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatal(err)
	}
	if string(hello[:4]) != wire.Magic {
		t.Fatalf("server hello magic = %q", hello[:4])
	}
	return conn, binary.LittleEndian.Uint64(hello[4:])
}

func startedServer(t *testing.T, n int, opt Options) *Server {
	t.Helper()
	opt.Addr = "127.0.0.1:0"
	opt.IngestAddr = "127.0.0.1:0"
	if opt.FlushInterval == 0 {
		opt.FlushInterval = time.Millisecond
	}
	s, err := New(testStream(t, n), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

func TestTCPIngestFramesAndBatchedAcks(t *testing.T) {
	s := startedServer(t, 128, Options{})
	conn, n := dialIngest(t, s.IngestAddr())
	defer conn.Close()
	if n != 128 {
		t.Fatalf("advertised universe = %d, want 128", n)
	}

	// Pipeline three frames in one write; acks must cover all of them
	// (possibly split across several AckOKs, depending on scheduling).
	var buf []byte
	buf = wire.AppendFrame(buf, []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}})
	buf = wire.AppendFrame(buf, []graph.Edge{{U: 3, V: 4}})
	buf = wire.AppendFrame(buf, []graph.Edge{{U: 100, V: 101}})
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	acked := uint32(0)
	for acked < 3 {
		var ack [wire.AckSize]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			t.Fatalf("reading ack after %d frames: %v", acked, err)
		}
		if ack[0] != wire.AckOK {
			t.Fatalf("ack status = 0x%02x", ack[0])
		}
		_, frames := wire.ParseAckOK(ack[1:])
		acked += frames
	}
	if acked != 3 {
		t.Fatalf("acked %d frames, want 3", acked)
	}
	s.st.Sync()
	if same, _ := s.st.Connected(1, 4); !same {
		t.Fatal("TCP-ingested edges not applied")
	}
	if got := s.framesTCP.Value(); got != 3 {
		t.Fatalf("tcp frame counter = %d, want 3", got)
	}
}

func TestTCPIngestRejectsBadFrames(t *testing.T) {
	s := startedServer(t, 16, Options{})

	// Out-of-range endpoint: terminal AckErr, then close.
	conn, _ := dialIngest(t, s.IngestAddr())
	defer conn.Close()
	if _, err := conn.Write(wire.AppendFrame(nil, []graph.Edge{{U: 1, V: 16}})); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil || status[0] != wire.AckErr {
		t.Fatalf("status, err = 0x%02x, %v; want AckErr", status[0], err)
	}
	var msgLen [4]byte
	if _, err := io.ReadFull(conn, msgLen[:]); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, binary.LittleEndian.Uint32(msgLen[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "out of range") {
		t.Fatalf("AckErr message = %q", msg)
	}
	if _, err := conn.Read(status[:]); err != io.EOF {
		t.Fatalf("connection stayed open after AckErr: %v", err)
	}

	// Bad client hello: rejected without a server hello.
	conn2, err := net.Dial("tcp", s.IngestAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("NOPE"))
	if _, err := io.ReadFull(conn2, status[:]); err != nil || status[0] != wire.AckErr {
		t.Fatalf("bad hello status, err = 0x%02x, %v; want AckErr", status[0], err)
	}
}

func TestMetricsIngestAndWALFamilies(t *testing.T) {
	s, ts := testServer(t, 64, Options{WALDir: t.TempDir()})
	if resp, _ := postJSON(t, ts.URL+"/v1/update", `{"u":1,"v":2}`); resp.StatusCode != 200 {
		t.Fatal("priming JSON update failed")
	}
	if resp, _ := postBinary(t, ts.URL+"/v1/update", []graph.Edge{{U: 3, V: 4}}); resp.StatusCode != 200 {
		t.Fatal("priming binary update failed")
	}

	var buf bytes.Buffer
	s.reg.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{
		"# HELP connectit_ingest_frames_total ",
		"# TYPE connectit_ingest_frames_total counter",
		`connectit_ingest_frames_total{proto="json"} 1`,
		`connectit_ingest_frames_total{proto="binary"} 1`,
		`connectit_ingest_frames_total{proto="tcp"} 0`,
		"# HELP connectit_wal_raw_bytes ",
		"# TYPE connectit_wal_raw_bytes counter",
		"# HELP connectit_wal_written_bytes ",
		"# TYPE connectit_wal_written_bytes counter",
		"connectit_wal_raw_bytes 16",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// One HELP/TYPE block per family, even with three label sets.
	if got := strings.Count(text, "# TYPE connectit_ingest_frames_total"); got != 1 {
		t.Errorf("%d TYPE lines for the frames family, want 1", got)
	}
}

// TestTCPIngestEmptyFrames pins the empty-burst contract: zero-edge blocks
// are valid wire, and a burst of nothing but them must be acked without a
// group commit — Submit on an empty batch used to park the connection
// goroutine on a group flush() never completes, hanging the client and
// deadlocking Server.Close in the listener's wg.Wait.
func TestTCPIngestEmptyFrames(t *testing.T) {
	s := startedServer(t, 16, Options{WALDir: t.TempDir()})
	conn, _ := dialIngest(t, s.IngestAddr())
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	readAcks := func(want uint32) uint64 {
		t.Helper()
		acked, lsn := uint32(0), uint64(0)
		for acked < want {
			var ack [wire.AckSize]byte
			if _, err := io.ReadFull(conn, ack[:]); err != nil {
				t.Fatalf("reading ack after %d/%d frames: %v", acked, want, err)
			}
			if ack[0] != wire.AckOK {
				t.Fatalf("ack status = 0x%02x, want AckOK", ack[0])
			}
			l, frames := wire.ParseAckOK(ack[1:])
			lsn, acked = l, acked+frames
		}
		return lsn
	}

	// An all-empty burst before anything committed acks LSN 0.
	var buf []byte
	buf = wire.AppendFrame(buf, nil)
	buf = wire.AppendFrame(buf, nil)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	if lsn := readAcks(2); lsn != 0 {
		t.Fatalf("empty-burst ack LSN = %d, want 0 (nothing committed)", lsn)
	}

	// Two real commits (sequential, so they land in separate groups — the
	// first WAL record is LSN 0, indistinguishable from "nothing"), then an
	// empty frame: its ack repeats the last committed LSN rather than
	// regressing to 0.
	if _, err := conn.Write(wire.AppendFrame(nil, []graph.Edge{{U: 1, V: 2}})); err != nil {
		t.Fatal(err)
	}
	first := readAcks(1)
	if _, err := conn.Write(wire.AppendFrame(nil, []graph.Edge{{U: 2, V: 3}})); err != nil {
		t.Fatal(err)
	}
	committed := readAcks(1)
	if committed <= first {
		t.Fatalf("second commit LSN = %d, want > %d", committed, first)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if lsn := readAcks(1); lsn != committed {
		t.Fatalf("post-commit empty-frame ack LSN = %d, want %d", lsn, committed)
	}
	if got := s.framesTCP.Value(); got != 5 {
		t.Fatalf("tcp frame counter = %d, want 5 (empty frames count)", got)
	}
}

// oversizedEdges is one more edge than a binary ingest unit may carry; as
// all-zero self-loops it delta-codes at 2 bytes/edge, so the block stays
// far under MaxFrameBytes — the decoded count alone must trip the cap.
func oversizedEdges() []graph.Edge { return make([]graph.Edge, maxRequestEdges+1) }

func TestBinaryUpdateRejectsOversizedBlock(t *testing.T) {
	_, ts := testServer(t, 16, Options{})
	resp, body := postBinary(t, ts.URL+"/v1/update", oversizedEdges())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized block: %d %s, want 413", resp.StatusCode, body)
	}
}

func TestTCPIngestRejectsOversizedFrame(t *testing.T) {
	s := startedServer(t, 16, Options{})
	conn, _ := dialIngest(t, s.IngestAddr())
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(wire.AppendFrame(nil, oversizedEdges())); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil || status[0] != wire.AckErr {
		t.Fatalf("status, err = 0x%02x, %v; want AckErr", status[0], err)
	}
	var msgLen [4]byte
	if _, err := io.ReadFull(conn, msgLen[:]); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, binary.LittleEndian.Uint32(msgLen[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "exceeds") {
		t.Fatalf("AckErr message = %q, want the edge-bound rejection", msg)
	}
}
