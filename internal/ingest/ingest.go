// Package ingest implements the concurrent streaming ingest engine: a
// Stream accepts interleaved Update and Connected calls from arbitrarily
// many goroutines and schedules them onto a core.Incremental according to
// the compiled algorithm's stream type (§3.5 of the paper, DESIGN.md §9).
//
// Updates are spread over per-shard epoch buffers; a shard that reaches the
// epoch size seals its buffer and applies it as one batch, so producers
// self-throttle against the structure (backpressure) without a dedicated
// applier goroutine. The three stream types map onto three scheduling
// disciplines:
//
//   - Type i (async union-find): no buffering. Updates union directly and
//     queries read directly; everything runs fully concurrently and every
//     operation is linearizable at its own return.
//   - Type ii (Shiloach-Vishkin, RootUp Liu-Tarjan): updates buffer into
//     epochs and sealed epochs apply as synchronous rounds under an applier
//     mutex; queries stay wait-free against the parent array at all times.
//   - Type iii (Rem + SpliceAtomic): as Type ii, but the apply additionally
//     takes the write side of a phase lock whose read side every query
//     holds, realizing Theorem 3's update/query phase separation.
//
// Before a batch reaches the atomic union hot path, a sampling-based
// pre-filter probes both endpoints' parent chains (read-only, bounded) and
// drops edges whose endpoints are already in the same component; on
// power-law streams the bulk of late updates are intra-component, so this
// replaces contended CASes with a few cache-friendly loads.
//
// Visibility semantics: a Type i update is visible to every query that
// starts after Update returns. A buffered (Type ii/iii) update becomes
// visible when its epoch is applied — at the latest after the next Sync
// returns. Queries never report connectivity that does not follow from
// accepted updates (components only ever grow toward the union of all
// accepted updates).
package ingest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// Options tunes a Stream. The zero value selects the defaults.
type Options struct {
	// Shards is the number of update buffers concurrent producers are
	// spread over. Default: GOMAXPROCS.
	Shards int
	// EpochSize is the number of buffered updates at which a shard seals
	// its epoch and applies it as one batch. Default 4096. Type i streams
	// never buffer and ignore it.
	EpochSize int
	// ProbeBudget bounds the read-only parent-chain probe of the
	// intra-component pre-filter, in chase steps. Default 32.
	ProbeBudget int
	// DisablePrefilter turns the pre-filter off (every accepted update
	// reaches the union hot path).
	DisablePrefilter bool
}

const (
	defaultEpochSize   = 4096
	defaultProbeBudget = 32
)

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.EpochSize <= 0 {
		o.EpochSize = defaultEpochSize
	}
	if o.ProbeBudget <= 0 {
		o.ProbeBudget = defaultProbeBudget
	}
	if o.DisablePrefilter {
		o.ProbeBudget = 0
	}
	return o
}

// Stats is a point-in-time snapshot of a Stream's operation counters.
type Stats struct {
	// Updates is the number of accepted Update calls.
	Updates uint64
	// Queries is the number of Connected calls.
	Queries uint64
	// Filtered is the number of updates dropped by the pre-filter
	// (self-loops and probed intra-component edges).
	Filtered uint64
	// Applied is the number of updates that reached the structure.
	Applied uint64
	// Epochs is the number of sealed-and-applied epochs (Type ii/iii).
	Epochs uint64
}

// shard is one epoch buffer. The pad keeps neighboring shards' mutexes off
// one cache line under heavy multi-producer traffic.
type shard struct {
	mu  sync.Mutex
	buf []graph.Edge
	_   [64 - 8]byte
}

// counterStripes is the stripe count of the hot-path counters; power of two.
const counterStripes = 8

// counter is a cache-line-striped counter: the wait-free Update/Connected
// hot paths would otherwise serialize all producers on one atomic cache
// line. Add spreads by a caller-supplied hash; Load sums the stripes.
type counter struct {
	stripes [counterStripes]struct {
		v atomic.Uint64
		_ [56]byte
	}
}

func (c *counter) Add(h uint32, n uint64) { c.stripes[h%counterStripes].v.Add(n) }

func (c *counter) Load() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Stream is a concurrent streaming connectivity structure. All methods are
// safe for concurrent use by any number of goroutines.
type Stream struct {
	inc    *core.Incremental
	stype  core.StreamType
	opt    Options
	shards []shard
	rr     atomic.Uint32 // round-robin shard cursor
	spare  sync.Pool     // recycled epoch buffers

	// phase separates Type iii updates (write side) from queries (read
	// side); applyMu serializes Type ii synchronous rounds.
	phase   sync.RWMutex
	applyMu sync.Mutex

	// inflight counts epochs sealed but not yet fully applied. A seal
	// increments it under the shard's lock — before the batch leaves the
	// buffer — so Sync, which drains every shard and then waits for zero,
	// can never miss an epoch that left a buffer before Sync observed it.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflight     int

	updates  counter
	queries  counter
	filtered counter
	applied  counter
	epochs   atomic.Uint64 // apply-path only, already serialized
}

// New wraps a core.Incremental in a Stream. The Incremental must not be
// used directly while the Stream is live.
func New(inc *core.Incremental, opt Options) *Stream {
	opt = opt.withDefaults()
	s := &Stream{inc: inc, stype: inc.Type(), opt: opt}
	s.inflightCond = sync.NewCond(&s.inflightMu)
	if s.stype != core.TypeAsync {
		s.shards = make([]shard, opt.Shards)
		for i := range s.shards {
			s.shards[i].buf = make([]graph.Edge, 0, opt.EpochSize)
		}
		s.spare.New = func() any { return make([]graph.Edge, 0, opt.EpochSize) }
	}
	return s
}

// Type reports the scheduling discipline the stream runs under.
func (s *Stream) Type() core.StreamType { return s.stype }

// Len returns the number of vertices.
func (s *Stream) Len() int { return s.inc.Len() }

// Stats returns a snapshot of the operation counters. Counters are read
// individually, so a snapshot taken mid-traffic is approximate.
func (s *Stream) Stats() Stats {
	return Stats{
		Updates:  s.updates.Load(),
		Queries:  s.queries.Load(),
		Filtered: s.filtered.Load(),
		Applied:  s.applied.Load(),
		Epochs:   s.epochs.Load(),
	}
}

// Update accepts the edge insertion (u, v). Vertices must be < Len().
func (s *Stream) Update(u, v uint32) {
	s.updates.Add(u^v, 1)
	if u == v {
		s.filtered.Add(u, 1)
		return
	}
	if s.stype == core.TypeAsync {
		// Fully concurrent: probe, then union in place.
		if s.opt.ProbeBudget > 0 && s.inc.Probe(u, v, s.opt.ProbeBudget) {
			s.filtered.Add(u^v, 1)
			return
		}
		s.inc.Update(u, v)
		s.applied.Add(u^v, 1)
		return
	}
	s.enqueue(graph.Edge{U: u, V: v})
}

// Connected answers a connectivity query against every applied epoch (and,
// for Type i, every completed Update). It is wait-free for Type i and ii;
// for Type iii it waits out any in-flight apply phase.
func (s *Stream) Connected(u, v uint32) bool {
	s.queries.Add(u^v, 1)
	if s.stype == core.TypePhased {
		s.phase.RLock()
		same := s.inc.Connected(u, v)
		s.phase.RUnlock()
		return same
	}
	return s.inc.Connected(u, v)
}

// enqueue appends e to a round-robin shard and applies the epoch if this
// append sealed it. The appender pays for the apply, which backpressures
// producers against the structure.
func (s *Stream) enqueue(e graph.Edge) {
	sh := &s.shards[(s.rr.Add(1)-1)%uint32(len(s.shards))]
	var sealed []graph.Edge
	sh.mu.Lock()
	sh.buf = append(sh.buf, e)
	if len(sh.buf) >= s.opt.EpochSize {
		sealed = sh.buf
		sh.buf = s.spare.Get().([]graph.Edge)[:0]
		s.sealInflight()
	}
	sh.mu.Unlock()
	if sealed != nil {
		s.apply(sealed)
		s.doneInflight()
		s.spare.Put(sealed[:0])
	}
}

// sealInflight registers an epoch that has left its shard buffer but is not
// yet applied. Called with the sealing shard's mutex held, so the increment
// happens before any Sync can observe that shard empty.
func (s *Stream) sealInflight() {
	s.inflightMu.Lock()
	s.inflight++
	s.inflightMu.Unlock()
}

// doneInflight retires a sealed epoch after its apply completed.
func (s *Stream) doneInflight() {
	s.inflightMu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.inflightCond.Broadcast()
	}
	s.inflightMu.Unlock()
}

// apply runs one sealed epoch under the stream type's exclusion discipline.
func (s *Stream) apply(batch []graph.Edge) {
	switch s.stype {
	case core.TypePhased:
		s.phase.Lock()
		s.applyLocked(batch)
		s.phase.Unlock()
	default: // TypeSynchronous (TypeAsync never buffers)
		s.applyMu.Lock()
		s.applyLocked(batch)
		s.applyMu.Unlock()
	}
	s.epochs.Add(1)
}

// applyLocked pre-filters and applies one batch; the caller holds the
// stream type's apply exclusion.
func (s *Stream) applyLocked(batch []graph.Edge) {
	if s.opt.ProbeBudget > 0 {
		batch = s.prefilter(batch)
	}
	s.inc.ApplyBatch(batch)
	s.applied.Add(0, uint64(len(batch)))
}

// prefilter drops edges whose endpoints already share a component,
// compacting batch in place. Probes are read-only and run in parallel;
// dropped slots are marked as self-loops and squeezed out sequentially.
func (s *Stream) prefilter(batch []graph.Edge) []graph.Edge {
	budget := s.opt.ProbeBudget
	parallel.ForGrained(len(batch), 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := batch[i]
			if s.inc.Probe(e.U, e.V, budget) {
				batch[i].V = batch[i].U
			}
		}
	})
	w := 0
	for i := range batch {
		if batch[i].U != batch[i].V {
			batch[w] = batch[i]
			w++
		}
	}
	s.filtered.Add(0, uint64(len(batch)-w))
	return batch[:w]
}

// Sync applies every buffered update and waits for in-flight epochs, so
// that every Update accepted before Sync began is visible to queries after
// Sync returns. It is safe to call concurrently with traffic; epochs sealed
// by concurrent producers while Sync runs are waited for too, so under
// sustained saturation Sync reflects a slightly later point in the stream.
func (s *Stream) Sync() {
	if s.stype == core.TypeAsync {
		return
	}
	var batch []graph.Edge
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.buf) > 0 {
			batch = append(batch, sh.buf...)
			sh.buf = sh.buf[:0]
		}
		sh.mu.Unlock()
	}
	if len(batch) > 0 {
		s.apply(batch)
	}
	// Wait out epochs that were sealed (removed from their buffer) but not
	// yet fully applied by the producer that sealed them.
	s.inflightMu.Lock()
	for s.inflight > 0 {
		s.inflightCond.Wait()
	}
	s.inflightMu.Unlock()
}

// quiesce acquires the stream type's apply exclusion and returns the
// release. Holding it keeps buffered-type updates out of the structure
// (queries stay unaffected except for Type iii, whose phase lock they
// share). For Type i there is no exclusion to take.
func (s *Stream) quiesce() (release func()) {
	switch s.stype {
	case core.TypePhased:
		s.phase.Lock()
		return s.phase.Unlock
	case core.TypeSynchronous:
		s.applyMu.Lock()
		return s.applyMu.Unlock
	}
	return func() {}
}

// Labels syncs and returns a connectivity labeling snapshot. Type i updates
// arriving during the snapshot may or may not be reflected.
func (s *Stream) Labels() []uint32 {
	s.Sync()
	defer s.quiesce()()
	return s.inc.Labels()
}

// NumComponents syncs and counts the current components.
func (s *Stream) NumComponents() int {
	s.Sync()
	defer s.quiesce()()
	return s.inc.NumComponents()
}

// String describes the stream's configuration.
func (s *Stream) String() string {
	return fmt.Sprintf("ingest.Stream{n=%d %v shards=%d epoch=%d probe=%d}",
		s.inc.Len(), s.stype, s.opt.Shards, s.opt.EpochSize, s.opt.ProbeBudget)
}
