// Package ingest implements the concurrent streaming ingest engine: a
// Stream accepts interleaved Update and Connected calls from arbitrarily
// many goroutines and schedules them onto a core.Incremental according to
// the compiled algorithm's stream type (§3.5 of the paper, DESIGN.md §9).
//
// Buffered updates move through a coalescing epoch pipeline:
//
//	seal → queue → coalesce → round
//
// Updates are spread over per-shard epoch buffers by a stateless hash of
// the edge. A shard that reaches the epoch size seals its buffer — the
// epoch is registered in-flight and pushed onto the apply queue *under the
// shard's lock*, so a concurrent Sync can never observe the buffer empty
// without also observing the epoch in flight. The sealing producer then
// drains the queue: each apply round takes the round mutex once, pops
// every queued epoch up to the coalesce bound, and applies them as one
// batch under the stream type's discipline. Producers that seal while a
// round is mid-flight therefore do not pay a round of their own — their
// epochs coalesce into the next round — and producers self-throttle
// against the structure (backpressure) without a dedicated applier
// goroutine. The three stream types map onto three scheduling
// disciplines:
//
//   - Type i (async union-find): no buffering. Updates union directly and
//     queries read directly; everything runs fully concurrently and every
//     operation is linearizable at its own return.
//   - Type ii (Shiloach-Vishkin, RootUp Liu-Tarjan): updates buffer into
//     epochs and coalesced rounds apply under the round mutex; queries
//     stay wait-free against the parent array at all times. Coalescing is
//     what makes small epochs affordable: each synchronous round costs
//     O(n), so paying it once per coalesced group instead of once per
//     shard-epoch is the engine's main Type ii throughput lever.
//   - Type iii (Rem + SpliceAtomic): as Type ii, but the round additionally
//     takes the write side of a phase lock whose read side every query
//     holds, realizing Theorem 3's update/query phase separation — held
//     once per coalesced group, not once per epoch.
//
// Before a batch reaches the atomic union hot path, a sampling-based
// pre-filter probes both endpoints' parent chains (read-only, bounded) and
// drops edges whose endpoints are already in the same component; on
// power-law streams the bulk of late updates are intra-component, so this
// replaces contended CASes with a few cache-friendly loads.
//
// Visibility semantics: a Type i update is visible to every query that
// starts after Update returns. A buffered (Type ii/iii) update becomes
// visible when its epoch's round completes — at the latest after the next
// Sync returns. Queries never report connectivity that does not follow
// from accepted updates (components only ever grow toward the union of all
// accepted updates).
package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/parallel"
	"connectit/internal/query"
)

// ErrClosed is returned by Update, UpdateBatch, Connected, and every query
// issued through a Query engine after Close: a closed stream's state is
// final, so mutations are rejected and queries fail fast instead of
// answering from a structure the caller believes sealed. The canonical
// list of read-only survivors — the snapshot surface a server needs after
// Close — is documented once, on connectit.ErrStreamClosed (stream.go).
var ErrClosed = errors.New("ingest: stream closed")

// Options tunes a Stream. The zero value selects the defaults.
type Options struct {
	// Shards is the number of update buffers concurrent producers are
	// spread over. Default: GOMAXPROCS.
	Shards int
	// EpochSize is the number of buffered updates at which a shard seals
	// its epoch and queues it for apply. Default 4096. Type i streams
	// never buffer and ignore it.
	EpochSize int
	// CoalesceBound caps the number of buffered updates one apply round
	// may drain off the sealed-epoch queue. A round always takes at least
	// one epoch, so setting CoalesceBound to 1 applies every epoch as its
	// own round (coalescing off). Default 16 × EpochSize.
	CoalesceBound int
	// ProbeBudget bounds the read-only parent-chain probe of the
	// intra-component pre-filter, in chase steps. Default 32.
	ProbeBudget int
	// DisablePrefilter turns the pre-filter off (every accepted update
	// reaches the union hot path).
	DisablePrefilter bool
	// DedupHint sets the Algorithm 3 batch-preprocessing policy: the
	// default (core.DedupAuto) samples each large coalesced batch and
	// semisort-dedups only when the estimated duplicate rate clears the
	// cost-model threshold; DedupAlways/DedupNever override per stream.
	// Stats.DedupSorted/DedupSkipped record the decisions.
	DedupHint core.DedupHint
	// DisableForestCapture turns off the live spanning forest that
	// forest-capable algorithms maintain by default (DESIGN.md §12).
	// Query then fails with ErrUnsupported; Connected is unaffected.
	DisableForestCapture bool
}

const (
	defaultEpochSize = 4096
	// defaultCoalesceFactor bounds a round at 16 epochs of buffered
	// updates. Multicore runs (-cpu 2,4; see BENCH_stream.json) measure
	// 1.1–1.2 epochs/round: coalescing engages once producers and rounds
	// genuinely overlap, but the apply path drains faster than producers
	// seal, so the bound is nowhere near saturated and raising it would
	// only grow worst-case round latency without adding throughput.
	defaultCoalesceFactor = 16
	defaultProbeBudget    = 32
)

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.EpochSize <= 0 {
		o.EpochSize = defaultEpochSize
	}
	if o.CoalesceBound <= 0 {
		o.CoalesceBound = defaultCoalesceFactor * o.EpochSize
	}
	if o.ProbeBudget <= 0 {
		o.ProbeBudget = defaultProbeBudget
	}
	if o.DisablePrefilter {
		o.ProbeBudget = 0
	}
	return o
}

// Stats is a point-in-time snapshot of a Stream's operation counters.
type Stats struct {
	// Updates is the number of accepted Update calls.
	Updates uint64
	// Queries is the number of Connected calls.
	Queries uint64
	// Filtered is the number of updates dropped by the pre-filter
	// (self-loops and probed intra-component edges).
	Filtered uint64
	// Applied is the number of updates handed to the apply path after the
	// pre-filter (for Type i, unions applied in place). Batch-internal
	// duplicates that core.Incremental.ApplyBatch's Algorithm 3 dedup
	// later removes are still counted.
	Applied uint64
	// Epochs is the number of sealed epochs pushed onto the apply queue
	// (Type ii/iii), including partial epochs drained by Sync.
	Epochs uint64
	// Rounds is the number of apply rounds run. Each round acquires the
	// stream type's exclusion once and applies one coalesced group, so
	// Rounds ≤ Epochs and the gap is the coalescing win.
	Rounds uint64
	// Coalesced is the number of epochs that shared a round with at least
	// one other epoch instead of paying their own: Epochs − Rounds at
	// quiescence.
	Coalesced uint64
	// DedupSorted counts large batches the Algorithm 3 preprocessing
	// semisort-deduplicated; DedupSkipped counts large batches it decided
	// to apply unsorted (DedupAuto's estimator, or a DedupNever hint).
	DedupSorted uint64
	// DedupSkipped is DedupSorted's complement; see above.
	DedupSkipped uint64
}

// shard is one epoch buffer. The pad keeps neighboring shards' mutexes off
// one cache line under heavy multi-producer traffic.
type shard struct {
	mu  sync.Mutex
	buf []graph.Edge
	_   [64 - 8]byte
}

// counterStripes is the stripe count of the hot-path counters; power of two.
const counterStripes = 8

// counter is a cache-line-striped counter: the wait-free Update/Connected
// hot paths would otherwise serialize all producers on one atomic cache
// line. Add spreads by a caller-supplied hash; Load sums the stripes.
type counter struct {
	stripes [counterStripes]struct {
		v atomic.Uint64
		_ [56]byte
	}
}

func (c *counter) Add(h uint32, n uint64) { c.stripes[h%counterStripes].v.Add(n) }

func (c *counter) Load() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Stream is a concurrent streaming connectivity structure. All methods are
// safe for concurrent use by any number of goroutines.
type Stream struct {
	inc    *core.Incremental
	stype  core.StreamType
	opt    Options
	shards []shard
	spare  sync.Pool // recycled epoch buffers

	// roundMu serializes apply rounds (and quiescent snapshots): it is
	// what concurrently-sealing producers block on, so their epochs merge
	// into the winner's next round. phase additionally separates Type iii
	// rounds (write side) from queries (read side); it is taken inside
	// roundMu only once a round has a non-empty group in hand, so queries
	// never stall behind a writer acquisition that would find nothing to
	// apply. scratch is the coalesced-round batch buffer, owned by the
	// roundMu holder.
	roundMu sync.Mutex
	phase   sync.RWMutex
	scratch []graph.Edge

	// The sealed-epoch queue. queue holds epochs sealed but not yet popped
	// by an apply round; inflight counts epochs sealed but not yet fully
	// applied (queued + mid-round), so it can only reach zero after every
	// sealed update is visible. Sealing registers the epoch here under the
	// sealing shard's lock — before the batch leaves the buffer — so Sync,
	// which drains every shard and then waits for zero, can never miss an
	// epoch that left a buffer before Sync observed it. inflight is atomic
	// only so PendingEpochs can read it lock-free for backpressure
	// decisions; every write still happens under qmu for the quiet-cond
	// coordination.
	qmu      sync.Mutex
	queue    [][]graph.Edge
	inflight atomic.Int64
	quiet    *sync.Cond // broadcast when inflight drops to zero

	// Close gate. closed flips once; active counts Update/UpdateBatch calls
	// that passed the gate (striped like the op counters so producers don't
	// share a cache line), so Close can wait out stragglers before the
	// final Sync. closeDone is closed when Close's drain completes, making
	// later Close calls idempotent waits.
	closed    atomic.Bool
	active    counter
	closeDone chan struct{}

	updates  counter
	queries  counter
	filtered counter
	applied  counter
	// Pipeline counters; bumped off the hot path (seal/round), so plain
	// atomics suffice.
	epochs    atomic.Uint64
	rounds    atomic.Uint64
	coalesced atomic.Uint64
}

// New wraps a core.Incremental in a Stream. The Incremental must not be
// used directly while the Stream is live.
func New(inc *core.Incremental, opt Options) *Stream {
	opt = opt.withDefaults()
	inc.SetDedupHint(opt.DedupHint)
	if opt.DisableForestCapture {
		inc.DisableForestCapture()
	}
	s := &Stream{inc: inc, stype: inc.Type(), opt: opt}
	s.quiet = sync.NewCond(&s.qmu)
	s.closeDone = make(chan struct{})
	if s.stype != core.TypeAsync {
		s.shards = make([]shard, opt.Shards)
		for i := range s.shards {
			s.shards[i].buf = make([]graph.Edge, 0, opt.EpochSize)
		}
		s.spare.New = func() any { return make([]graph.Edge, 0, opt.EpochSize) }
	}
	return s
}

// Type reports the scheduling discipline the stream runs under.
func (s *Stream) Type() core.StreamType { return s.stype }

// Len returns the number of vertices.
func (s *Stream) Len() int { return s.inc.Len() }

// Stats returns a snapshot of the operation counters. Counters are read
// individually, so a snapshot taken mid-traffic is approximate.
func (s *Stream) Stats() Stats {
	sorted, skipped := s.inc.DedupStats()
	return Stats{
		Updates:      s.updates.Load(),
		Queries:      s.queries.Load(),
		Filtered:     s.filtered.Load(),
		Applied:      s.applied.Load(),
		Epochs:       s.epochs.Load(),
		Rounds:       s.rounds.Load(),
		Coalesced:    s.coalesced.Load(),
		DedupSorted:  sorted,
		DedupSkipped: skipped,
	}
}

// Update accepts the edge insertion (u, v). Vertices must be < Len(). After
// Close it returns ErrClosed instead of mutating sealed state.
func (s *Stream) Update(u, v uint32) error {
	h := u ^ v
	if s.closed.Load() {
		return ErrClosed
	}
	s.active.Add(h, 1)
	defer s.active.Add(h, ^uint64(0))
	// Re-check after registering: a Close that ran between the first check
	// and the increment observes the increment (sequentially consistent
	// atomics) and waits us out; one that ran before the increment is
	// caught here, so no update slips past a completed Close.
	if s.closed.Load() {
		return ErrClosed
	}
	s.update(u, v)
	return nil
}

// UpdateBatch accepts a batch of edge insertions under one close-gate
// entry: the serving path's amortized feed (one gate check per WAL record
// instead of per edge). Vertices must be < Len().
func (s *Stream) UpdateBatch(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	h := edges[0].U ^ edges[0].V
	if s.closed.Load() {
		return ErrClosed
	}
	s.active.Add(h, 1)
	defer s.active.Add(h, ^uint64(0))
	if s.closed.Load() {
		return ErrClosed
	}
	for _, e := range edges {
		s.update(e.U, e.V)
	}
	return nil
}

// update is the gate-free insertion hot path shared by Update and
// UpdateBatch.
func (s *Stream) update(u, v uint32) {
	s.updates.Add(u^v, 1)
	if u == v {
		s.filtered.Add(u, 1)
		return
	}
	if s.stype == core.TypeAsync {
		// Fully concurrent: probe, then union in place.
		if s.opt.ProbeBudget > 0 && s.inc.Probe(u, v, s.opt.ProbeBudget) {
			s.filtered.Add(u^v, 1)
			return
		}
		s.inc.Update(u, v)
		s.applied.Add(u^v, 1)
		return
	}
	s.enqueue(graph.Edge{U: u, V: v})
}

// Connected answers a connectivity query against every applied round (and,
// for Type i, every completed Update). It is wait-free for Type i and ii;
// for Type iii it waits out any in-flight apply phase. After Close it
// returns ErrClosed.
func (s *Stream) Connected(u, v uint32) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	s.queries.Add(u^v, 1)
	if s.stype == core.TypePhased {
		s.phase.RLock()
		same := s.inc.Connected(u, v)
		s.phase.RUnlock()
		return same, nil
	}
	return s.inc.Connected(u, v), nil
}

// Close makes the stream's state final: it rejects new updates and queries
// (ErrClosed), waits out in-flight Update calls, and applies every buffered
// epoch, so when Close returns the structure reflects exactly the updates
// that were accepted — the contract a snapshotting server relies on. Close
// is idempotent and safe to call concurrently: every call returns after the
// first one's drain completes. The read-only snapshot surface (Labels,
// NumComponents, Stats, Sync) keeps working on a closed stream.
func (s *Stream) Close() error {
	if s.closed.Swap(true) {
		<-s.closeDone
		return nil
	}
	// Wait for gate-passed updates to finish. Every such call's active
	// increment is sequentially ordered before our Swap, so a zero sum
	// means every straggler has both finished its mutation and left.
	for spins := 0; s.active.Load() != 0; spins++ {
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	s.Sync()
	close(s.closeDone)
	return nil
}

// PendingEpochs reports the number of sealed epochs not yet fully applied
// (queued plus mid-round) — the serving layer's backpressure signal. It is
// lock-free and approximate under traffic.
func (s *Stream) PendingEpochs() int { return int(s.inflight.Load()) }

// pick selects e's shard by a stateless multiplicative hash of the edge.
// The previous design bumped one global round-robin cursor on every
// buffered update, serializing all producers on a single contended cache
// line — the exact pattern the striped counters exist to avoid. Hashing
// needs no shared state at all and spreads any non-degenerate stream
// evenly; it also keeps duplicate submissions of one edge in one shard.
func (s *Stream) pick(e graph.Edge) *shard {
	h := (uint64(e.U)<<32 | uint64(e.V)) * 0x9e3779b97f4a7c15
	return &s.shards[(h>>33)%uint64(len(s.shards))]
}

// enqueue appends e to its hash shard, sealing the epoch if this append
// filled it, and then drains the apply queue. The appender pays for the
// round, which backpressures producers against the structure.
func (s *Stream) enqueue(e graph.Edge) {
	sh := s.pick(e)
	sealed := false
	sh.mu.Lock()
	sh.buf = append(sh.buf, e)
	if len(sh.buf) >= s.opt.EpochSize {
		s.seal(sh.buf)
		sh.buf = s.spare.Get().([]graph.Edge)[:0]
		sealed = true
	}
	sh.mu.Unlock()
	if sealed {
		s.drain()
	}
}

// seal registers batch as one in-flight epoch and pushes it onto the apply
// queue. It must be called with the owning shard's mutex held: the queue
// registration has to happen before the buffer can be observed empty, or a
// concurrent Sync could find nothing buffered, nothing in flight, and
// return while batch is still unapplied — the visibility race this
// pipeline exists to close.
func (s *Stream) seal(batch []graph.Edge) {
	s.qmu.Lock()
	s.queue = append(s.queue, batch)
	s.inflight.Add(1)
	s.qmu.Unlock()
	s.epochs.Add(1)
}

// pop removes the next coalesced group from the apply queue: queued epochs
// in seal order, stopping before the group would exceed the coalesce bound
// (but always taking at least one epoch).
func (s *Stream) pop() (group [][]graph.Edge, total int) {
	s.qmu.Lock()
	n := len(s.queue)
	i := 0
	for i < n {
		if i > 0 && total+len(s.queue[i]) > s.opt.CoalesceBound {
			break
		}
		total += len(s.queue[i])
		i++
	}
	group = s.queue[:i:i]
	if i == n {
		s.queue = nil
	} else {
		s.queue = append([][]graph.Edge(nil), s.queue[i:]...)
	}
	s.qmu.Unlock()
	return group, total
}

// retire marks k epochs fully applied, waking Sync waiters at zero.
func (s *Stream) retire(k int) {
	s.qmu.Lock()
	if s.inflight.Add(int64(-k)) == 0 {
		s.quiet.Broadcast()
	}
	s.qmu.Unlock()
}

// drain runs apply rounds until the sealed-epoch queue is empty. Each
// round holds roundMu, pops everything the coalesce bound allows, and
// applies it as one batch — epochs sealed by other producers while this
// goroutine ran a round ride along in the next round instead of paying
// their own (the sealers block on roundMu, find the queue already empty,
// and return). For Type iii the phase write lock — which blocks every
// query — is taken only after the pop produced work, for exactly the span
// of the apply. Epochs popped by another goroutine are that goroutine's to
// finish; Sync waits them out via the in-flight count.
func (s *Stream) drain() {
	for {
		s.roundMu.Lock()
		group, total := s.pop()
		if len(group) == 0 {
			s.roundMu.Unlock()
			return
		}
		batch := s.coalesce(group, total)
		if s.stype == core.TypePhased {
			s.phase.Lock()
			s.applyLocked(batch)
			s.phase.Unlock()
		} else { // TypeSynchronous: queries are wait-free, no barrier needed
			s.applyLocked(batch)
		}
		s.rounds.Add(1)
		if len(group) > 1 {
			s.coalesced.Add(uint64(len(group) - 1))
		}
		s.retire(len(group))
		for _, ep := range group {
			s.spare.Put(ep[:0])
		}
		s.roundMu.Unlock()
	}
}

// coalesce concatenates a popped group into one batch. A single epoch is
// applied in place; larger groups copy into the round scratch buffer,
// which the caller owns by holding roundMu.
func (s *Stream) coalesce(group [][]graph.Edge, total int) []graph.Edge {
	if len(group) == 1 {
		return group[0]
	}
	batch := s.scratch[:0]
	if cap(batch) < total {
		batch = make([]graph.Edge, 0, total)
	}
	for _, ep := range group {
		batch = append(batch, ep...)
	}
	s.scratch = batch
	return batch
}

// applyLocked pre-filters and applies one coalesced batch; the caller
// holds roundMu (and, for Type iii, the phase write lock).
func (s *Stream) applyLocked(batch []graph.Edge) {
	if s.opt.ProbeBudget > 0 {
		batch = s.prefilter(batch)
	}
	s.inc.ApplyBatch(batch)
	s.applied.Add(0, uint64(len(batch)))
}

// prefilter drops edges whose endpoints already share a component,
// compacting batch in place. Probes are read-only and run in parallel;
// dropped slots are marked as self-loops and squeezed out sequentially.
func (s *Stream) prefilter(batch []graph.Edge) []graph.Edge {
	budget := s.opt.ProbeBudget
	parallel.ForGrained(len(batch), 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := batch[i]
			if s.inc.Probe(e.U, e.V, budget) {
				batch[i].V = batch[i].U
			}
		}
	})
	w := 0
	for i := range batch {
		if batch[i].U != batch[i].V {
			batch[w] = batch[i]
			w++
		}
	}
	s.filtered.Add(0, uint64(len(batch)-w))
	return batch[:w]
}

// Sync applies every buffered update and waits for in-flight epochs, so
// that every Update accepted before Sync began is visible to queries after
// Sync returns. It is safe to call concurrently with traffic; epochs
// sealed by concurrent producers while Sync runs are waited for too, so
// under sustained saturation Sync reflects a slightly later point in the
// stream.
func (s *Stream) Sync() {
	if s.stype == core.TypeAsync {
		return
	}
	// Seal every shard's residual buffer onto the apply queue. Sealing
	// under each shard's lock registers the partial epoch in flight before
	// the buffer empties, so a concurrent Sync that observes the empty
	// buffer also observes the epoch and waits for it.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.buf) > 0 {
			s.seal(sh.buf)
			sh.buf = s.spare.Get().([]graph.Edge)[:0]
		}
		sh.mu.Unlock()
	}
	// The residual epochs (one per non-empty shard) coalesce into rounds
	// like any others.
	s.drain()
	// Wait out epochs another goroutine popped but has not finished
	// applying.
	s.qmu.Lock()
	for s.inflight.Load() > 0 {
		s.quiet.Wait()
	}
	s.qmu.Unlock()
}

// quiesce takes the round mutex and returns the release: holding it keeps
// buffered-type rounds out of the structure while a snapshot is read
// (queries keep running — snapshots chase roots read-only). For Type i
// there is no exclusion to take: updates cannot be stalled without
// blocking producers, so Type i snapshots are monotone-consistent rather
// than quiescent (see Labels).
func (s *Stream) quiesce() (release func()) {
	if s.stype == core.TypeAsync {
		return func() {}
	}
	s.roundMu.Lock()
	return s.roundMu.Unlock
}

// Labels syncs and returns a connectivity labeling snapshot.
//
// For buffered stream types the snapshot is quiescent: Sync flushes every
// accepted update and the round mutex is held while the labeling is
// read, so it reflects exactly the accepted updates. For Type i there is
// no quiescence point short of stalling every producer; instead the
// labeling is a monotone-consistent snapshot taken by read-only root
// chasing (core.Incremental.Labels): any two vertices it labels equal are
// truly connected — the snapshot never invents connectivity. It can,
// however, label two connected vertices differently while unions race the
// scan (even a union elsewhere can re-hook their shared root mid-scan),
// so label inequality carries no guarantee until the stream quiesces.
func (s *Stream) Labels() []uint32 {
	s.Sync()
	defer s.quiesce()()
	return s.inc.Labels()
}

// NumComponents syncs and counts the current components, under the same
// snapshot semantics as Labels.
func (s *Stream) NumComponents() int {
	s.Sync()
	defer s.quiesce()()
	return s.inc.NumComponents()
}

// Query returns a composable query engine over the stream's live spanning
// forest: path, component-size, histogram, label, and forest queries that
// stay current as the stream ingests (DESIGN.md §12). Capability gating
// happens here, at construction — algorithms compiled without witness
// support (and streams built with DisableForestCapture) return the
// ErrUnsupported-wrapping verdict up front, mirroring Compile's
// fail-at-compile contract — so a non-nil engine never discovers mid-query
// that the forest does not exist.
//
// Engine answers reflect every applied round, the same visibility contract
// as Connected; call Sync first for a point-in-time barrier. Engines are
// independent cursors over one shared capture, so many may coexist, and
// every engine method returns ErrClosed once the stream is closed.
func (s *Stream) Query() (*query.Engine, error) {
	if err := s.inc.ForestErr(); err != nil {
		return nil, err
	}
	return query.New(streamSource{s}), nil
}

// streamSource adapts a Stream to query.Source.
type streamSource struct{ s *Stream }

func (src streamSource) NumVertices() int { return src.s.inc.Len() }

func (src streamSource) ForestPull(cursor int, dst []graph.Edge) (int, []graph.Edge) {
	return src.s.inc.ForestPull(cursor, dst)
}

func (src streamSource) Err() error {
	if src.s.closed.Load() {
		return ErrClosed
	}
	return nil
}

// ForestLen reports the number of spanning-forest edges captured so far
// (0 when capture is off) — the serving layer's forest-size gauge.
func (s *Stream) ForestLen() int { return s.inc.ForestLen() }

// String describes the stream's configuration.
func (s *Stream) String() string {
	return fmt.Sprintf("ingest.Stream{n=%d %v shards=%d epoch=%d coalesce=%d probe=%d}",
		s.inc.Len(), s.stype, s.opt.Shards, s.opt.EpochSize, s.opt.CoalesceBound, s.opt.ProbeBudget)
}
