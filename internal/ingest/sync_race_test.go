package ingest

import (
	"sync"
	"testing"
	"time"

	"connectit/internal/graph"
)

// TestSyncVisibilityConcurrentSyncs is the regression test for the Sync
// visibility race: a Sync that drains shard buffers must register the
// drained batch in-flight before the buffers appear empty, or a concurrent
// Sync can observe empty buffers and a zero in-flight count and return
// while those updates are still unapplied.
//
// Each iteration buffers a fresh marker edge inside a large padding batch
// (the apply round takes tens of milliseconds), starts one Sync, and
// starts a second Sync a few milliseconds later — inside the first Sync's
// apply window, after its drain emptied the buffers. The second Sync began
// after the marker was accepted, so the marker must be visible when it
// returns. Buffered disciplines only — Type i never buffers.
func TestSyncVisibilityConcurrentSyncs(t *testing.T) {
	iters := 5
	pad := 1 << 19
	n := 1 << 15
	if testing.Short() {
		iters = 2
		pad = 1 << 17
	}
	// Markers live above padTop, which padding never touches, so an earlier
	// iteration's padding can never connect a later marker pair on its own.
	padTop := uint64(n - 1024)
	for _, spec := range []string{"sv", "lt;CRFA", "uf;rem-cas;naive;splice"} {
		t.Run(spec, func(t *testing.T) {
			// Epochs never self-seal (the per-shard buffer never reaches
			// EpochSize): every update sits in a shard buffer until a Sync
			// drains it.
			s := mustStream(t, n, spec, Options{EpochSize: pad, Shards: 4})
			violations := 0
			for i := 0; i < iters; i++ {
				u := uint32(padTop) + uint32(2*i)
				v := u + 1
				s.Update(u, v)
				// Padding makes the apply round long enough for the second
				// Sync to land inside it even under single-core scheduling
				// (the runtime preempts the applier within ~10ms).
				for j := 0; j < pad; j++ {
					h := graph.Hash64(uint64(i)<<20 | uint64(j))
					s.Update(uint32(h%padTop), uint32(graph.Hash64(h)%padTop))
				}
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					s.Sync()
				}()
				time.Sleep(5 * time.Millisecond)
				s.Sync()
				// (u, v) was accepted before this Sync began, so it must be
				// visible now.
				if !conn(s, u, v) {
					violations++
				}
				wg.Wait()
			}
			if violations != 0 {
				t.Errorf("%d of %d iterations: an update accepted before Sync began was invisible after Sync returned", violations, iters)
			}
		})
	}
}

// TestLabelsMonotoneUnderConcurrentUpdates hammers a Type i stream with
// concurrent producers while repeatedly taking Labels/NumComponents
// snapshots. Type i has no quiescence point, so the snapshot contract is
// monotone consistency: any two vertices a snapshot labels equal must be
// truly connected (checked against the oracle of all updates the test will
// ever issue), and the final snapshot after producers stop must agree with
// the oracle exactly — the old flatten-in-place snapshot could lose a
// racing union forever and fail that last check.
func TestLabelsMonotoneUnderConcurrentUpdates(t *testing.T) {
	const producers = 4
	n := 1 << 9
	perProducer := 8000
	snapshots := 200
	if testing.Short() {
		perProducer = 1500
		snapshots = 50
	}
	for _, spec := range []string{"uf;async;naive;split-one", "uf;rem-cas;halve;halve-one"} {
		t.Run(spec, func(t *testing.T) {
			s := mustStream(t, n, spec, Options{})
			final := newOracle(n)
			tapes := make([][]graph.Edge, producers)
			rng := uint64(31)
			for p := range tapes {
				tape := make([]graph.Edge, perProducer)
				for i := range tape {
					rng = graph.Hash64(rng)
					u := uint32(rng % uint64(n))
					rng = graph.Hash64(rng)
					v := uint32(rng % uint64(n))
					tape[i] = graph.Edge{U: u, V: v}
					final.union(u, v)
				}
				tapes[p] = tape
			}
			finalRoot := make([]uint32, n)
			for v := 0; v < n; v++ {
				finalRoot[v] = final.find(uint32(v))
			}

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(tape []graph.Edge) {
					defer wg.Done()
					for _, e := range tape {
						s.Update(e.U, e.V)
					}
				}(tapes[p])
			}
			for k := 0; k < snapshots; k++ {
				labels := s.Labels()
				for v := 1; v < n; v++ {
					if labels[v] == labels[v-1] && finalRoot[v] != finalRoot[v-1] {
						t.Fatalf("snapshot %d: vertices %d and %d share label %d but are never connected",
							k, v-1, v, labels[v])
					}
				}
				s.NumComponents() // must also be safe mid-traffic
			}
			wg.Wait()

			// Quiescent now: the snapshot must match the oracle exactly. A
			// lost union (the flatten-in-place hazard) shows up here as too
			// many components.
			labels := s.Labels()
			classes := map[uint32]uint32{}
			for v := 0; v < n; v++ {
				if prev, ok := classes[labels[v]]; ok && prev != finalRoot[v] {
					t.Fatalf("vertex %d: label %d spans oracle components", v, labels[v])
				}
				classes[labels[v]] = finalRoot[v]
			}
			roots := map[uint32]bool{}
			for v := 0; v < n; v++ {
				roots[finalRoot[v]] = true
			}
			if len(classes) != len(roots) {
				t.Fatalf("final snapshot has %d components, oracle has %d (a concurrent union was lost)",
					len(classes), len(roots))
			}
		})
	}
}

// TestStatsQuiescentInvariant checks that once all producers have stopped
// and a final Sync has run, the accounting closes: every accepted update
// was either applied or filtered (nothing remains buffered and nothing was
// dropped on the floor).
func TestStatsQuiescentInvariant(t *testing.T) {
	const producers = 8
	n := 1 << 10
	perProducer := 3000
	if testing.Short() {
		perProducer = 500
	}
	for _, tc := range typeSpecs {
		t.Run(tc.spec, func(t *testing.T) {
			t.Parallel()
			s := mustStream(t, n, tc.spec, Options{EpochSize: 128, Shards: 4})
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := uint64(p)*0x9e3779b97f4a7c15 + 7
					for i := 0; i < perProducer; i++ {
						rng = graph.Hash64(rng)
						u := uint32(rng % uint64(n))
						rng = graph.Hash64(rng)
						v := uint32(rng % uint64(n))
						s.Update(u, v)
						if i%101 == 0 {
							s.Sync() // Sync mid-traffic must not lose updates
						}
					}
				}(p)
			}
			wg.Wait()
			s.Sync()
			st := s.Stats()
			if want := uint64(producers * perProducer); st.Updates != want {
				t.Fatalf("updates = %d, want %d", st.Updates, want)
			}
			if st.Applied+st.Filtered != st.Updates {
				t.Fatalf("quiescent accounting leak: applied %d + filtered %d != updates %d (an update is stuck buffered or was lost)",
					st.Applied, st.Filtered, st.Updates)
			}
		})
	}
}
