package ingest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"connectit/internal/graph"
)

func TestCloseIdempotentAndSentinel(t *testing.T) {
	s := mustStream(t, 64, "uf;rem-cas;naive;split-one", Options{})
	if err := s.Update(1, 2); err != nil {
		t.Fatalf("Update before close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Update(3, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after Close: err = %v, want ErrClosed", err)
	}
	if err := s.UpdateBatch([]graph.Edge{{U: 3, V: 4}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("UpdateBatch after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.Connected(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Connected after Close: err = %v, want ErrClosed", err)
	}
	// The terminal state stays queryable through the read-only surface.
	labels := s.Labels()
	if labels[1] != labels[2] {
		t.Fatal("pre-close union lost after Close")
	}
	if got := s.NumComponents(); got != 63 {
		t.Fatalf("NumComponents after Close = %d, want 63", got)
	}
}

// dsu is the sequential oracle for the accepted-edge set.
type dsu struct{ p []uint32 }

func newDSU(n int) *dsu {
	d := &dsu{p: make([]uint32, n)}
	for i := range d.p {
		d.p[i] = uint32(i)
	}
	return d
}

func (d *dsu) find(x uint32) uint32 {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *dsu) union(u, v uint32) { d.p[d.find(u)] = d.find(v) }

// TestCloseUnderTraffic closes every stream type while producers and
// queriers are mid-flight. Run under -race this is the server-grade
// shutdown check: concurrent Update/Connected after Close must return
// ErrClosed, never race with the teardown, and every update acknowledged
// (nil error) before the close must be present in the final state.
func TestCloseUnderTraffic(t *testing.T) {
	const n = 512
	for _, tc := range typeSpecs {
		t.Run(tc.spec, func(t *testing.T) {
			s := mustStream(t, n, tc.spec, Options{EpochSize: 16})
			type edge struct{ u, v uint32 }
			accepted := make([][]edge, 8)
			var started, closedErrs atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := uint64(w)*0x9e3779b97f4a7c15 + 1
					for i := 0; i < 4000; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						u := uint32(rng % n)
						v := uint32((rng >> 32) % n)
						if i%5 == 4 {
							if _, err := s.Connected(u, v); err != nil {
								closedErrs.Add(1)
							}
							continue
						}
						if err := s.Update(u, v); err == nil {
							accepted[w] = append(accepted[w], edge{u, v})
						} else if !errors.Is(err, ErrClosed) {
							t.Errorf("Update: unexpected error %v", err)
							return
						} else {
							closedErrs.Add(1)
						}
						started.Add(1)
					}
				}(w)
			}
			// Let traffic build, then close in the middle of it.
			for started.Load() < 2000 {
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close under traffic: %v", err)
			}
			wg.Wait()

			// Every acknowledged union must be visible in the final labels.
			oracle := newDSU(n)
			for _, batch := range accepted {
				for _, e := range batch {
					oracle.union(e.u, e.v)
				}
			}
			labels := s.Labels()
			for u := 1; u < n; u++ {
				want := oracle.find(uint32(u)) == oracle.find(uint32(u-1))
				got := labels[u] == labels[u-1]
				// The stream may connect more (edges acknowledged after the
				// oracle recorded them cannot happen — acceptance is the
				// record) but never less.
				if want && !got {
					t.Fatalf("accepted union %d~%d missing after Close", u-1, u)
				}
				if got && !want {
					t.Fatalf("vertices %d~%d connected without an accepted edge", u-1, u)
				}
			}
			_ = closedErrs.Load()
		})
	}
}

// TestConcurrentClose hammers Close from many goroutines; all must return
// nil and observe the fully-drained stream.
func TestConcurrentClose(t *testing.T) {
	s := mustStream(t, 128, "uf;rem-cas;naive;split-one", Options{})
	for i := uint32(0); i < 127; i++ {
		if err := s.Update(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
			if got := s.NumComponents(); got != 1 {
				t.Errorf("NumComponents observed mid/post Close = %d, want 1", got)
			}
		}()
	}
	wg.Wait()
}
