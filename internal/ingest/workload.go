package ingest

import (
	"sync"

	"connectit/internal/graph"
)

// Drive replays edges as a concurrent mixed workload against any streaming
// structure: producers goroutines split the stream by stride, each calling
// update per edge and interleaving uniform-random connected queries over
// [0, n) so that a mix fraction of all operations are queries (16.16
// fixed-point accounting). It returns the number of queries issued. Drive
// is the shared driver behind cmd/connectit -stream, the ingest experiment
// of cmd/experiments, and the mixed-ratio benchmarks.
func Drive(update func(u, v uint32), connected func(u, v uint32) bool,
	edges []graph.Edge, n, producers int, mix float64) uint64 {
	qPerOp := uint64(mix / (1 - mix) * 65536)
	counts := make([]uint64, producers)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			var owed, q uint64
			for i := w; i < len(edges); i += producers {
				update(edges[i].U, edges[i].V)
				owed += qPerOp
				for ; owed >= 65536; owed -= 65536 {
					rng = rng*6364136223846793005 + 1442695040888963407
					connected(uint32(rng>>33%uint64(n)), uint32(rng%uint64(n)))
					q++
				}
			}
			counts[w] = q
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, q := range counts {
		total += q
	}
	return total
}

// DriveStream is Drive against a Stream, adapting the error-returning
// Update/Connected lifecycle surface back to Drive's plain callbacks. The
// caller owns the stream's lifecycle, so close errors cannot occur while a
// drive is running and are discarded.
func DriveStream(s *Stream, edges []graph.Edge, n, producers int, mix float64) uint64 {
	return Drive(
		func(u, v uint32) { _ = s.Update(u, v) },
		func(u, v uint32) bool { c, _ := s.Connected(u, v); return c },
		edges, n, producers, mix)
}
