package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"connectit/internal/core"
	"connectit/internal/graph"
)

// oracle is a tiny sequential union-find used as the linearizability
// reference.
type oracle struct{ parent []uint32 }

func newOracle(n int) *oracle {
	o := &oracle{parent: make([]uint32, n)}
	for i := range o.parent {
		o.parent[i] = uint32(i)
	}
	return o
}

func (o *oracle) find(x uint32) uint32 {
	for o.parent[x] != x {
		o.parent[x] = o.parent[o.parent[x]]
		x = o.parent[x]
	}
	return x
}

func (o *oracle) union(u, v uint32) { o.parent[o.find(u)] = o.find(v) }

func (o *oracle) same(u, v uint32) bool { return o.find(u) == o.find(v) }

// TestStreamStress hammers a Stream with >= 8 concurrent producers mixing
// updates and queries on all three stream types and checks it against a
// sequential oracle:
//
//  1. No false positives: a query that returned true must hold in the
//     oracle of ALL updates the test will ever issue (connectivity only
//     grows toward that set, so any true not implied by it is corruption).
//  2. Type i per-producer linearizability: after a producer's Update(u, v)
//     returns, its own later Connected(u, v) must be true (updates apply
//     in place before returning).
//  3. Quiescent agreement: after Sync, the stream's labeling induces
//     exactly the oracle's partition over all issued updates.
func TestStreamStress(t *testing.T) {
	const (
		producers   = 8
		perProducer = 4000
	)
	n := 1 << 10
	if testing.Short() {
		n = 1 << 8
	}

	specs := []string{
		"uf;async;naive;split-one",   // Type i
		"uf;rem-cas;halve;halve-one", // Type i
		"sv",                         // Type ii
		"lt;CRFA",                    // Type ii
		"uf;rem-cas;naive;splice",    // Type iii
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			// Pre-generate each producer's operation tape so the final oracle
			// is known up front.
			type op struct {
				u, v  uint32
				query bool
			}
			tapes := make([][]op, producers)
			final := newOracle(n)
			rng := graph.Hash64(uint64(len(spec)))
			for p := range tapes {
				tape := make([]op, perProducer)
				for i := range tape {
					rng = graph.Hash64(rng)
					u := uint32(rng % uint64(n))
					rng = graph.Hash64(rng)
					v := uint32(rng % uint64(n))
					rng = graph.Hash64(rng)
					q := rng%10 < 4 // 60/40 update:query mix
					tape[i] = op{u: u, v: v, query: q}
					if !q {
						final.union(u, v)
					}
				}
				tapes[p] = tape
			}

			// Flatten the final oracle to a read-only root table: producer
			// goroutines share it, and oracle.find path-compresses.
			finalRoot := make([]uint32, n)
			for v := 0; v < n; v++ {
				finalRoot[v] = final.find(uint32(v))
			}

			s := mustStream(t, n, spec, Options{EpochSize: 256, Shards: 4})
			async := s.Type() == core.TypeAsync

			var falsePos atomic.Uint64
			var ownViolation atomic.Uint64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(tape []op) {
					defer wg.Done()
					var own *oracle
					if async {
						own = newOracle(n)
					}
					for _, o := range tape {
						if o.query {
							if conn(s, o.u, o.v) && finalRoot[o.u] != finalRoot[o.v] {
								falsePos.Add(1)
							}
							continue
						}
						s.Update(o.u, o.v)
						if async {
							// Type i updates are visible at return: this
							// producer's own history must read back.
							own.union(o.u, o.v)
							if !conn(s, o.u, o.v) {
								ownViolation.Add(1)
							}
						}
					}
					if async {
						// Spot-check the producer's full local history.
						for i := 0; i < n; i += 7 {
							u, v := uint32(i), uint32((i*13+1)%n)
							if own.same(u, v) && !conn(s, u, v) {
								ownViolation.Add(1)
							}
						}
					}
				}(tapes[p])
			}
			wg.Wait()

			if got := falsePos.Load(); got != 0 {
				t.Errorf("%d queries reported connectivity the issued updates never imply", got)
			}
			if got := ownViolation.Load(); got != 0 {
				t.Errorf("%d own-history reads lost an applied update (Type i linearizability)", got)
			}

			// Quiescent agreement with the oracle, as a partition.
			s.Sync()
			labels := s.Labels()
			classes := map[uint32]uint32{} // stream label -> oracle root
			for v := 0; v < n; v++ {
				or := final.find(uint32(v))
				if prev, ok := classes[labels[v]]; ok && prev != or {
					t.Fatalf("vertex %d: stream label %d spans oracle components %d and %d", v, labels[v], prev, or)
				}
				classes[labels[v]] = or
			}
			roots := map[uint32]bool{}
			for v := 0; v < n; v++ {
				roots[final.find(uint32(v))] = true
			}
			if len(classes) != len(roots) {
				t.Fatalf("stream has %d components, oracle has %d", len(classes), len(roots))
			}
			if want := len(roots); s.NumComponents() != want {
				t.Fatalf("NumComponents = %d, oracle %d", s.NumComponents(), want)
			}
		})
	}
}

// TestStreamStressManyProducers runs a heavier sweep (16 producers, all
// disciplines plus option extremes) outside -short.
func TestStreamStressManyProducers(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy stress is skipped in -short")
	}
	const producers = 16
	n := 1 << 9
	opts := []Options{
		{},                               // defaults
		{EpochSize: 32, Shards: 1},       // tiny epochs, single shard
		{EpochSize: 1 << 14, Shards: 32}, // epochs never self-seal: Sync path
		{DisablePrefilter: true},         // raw hot path
	}
	for _, spec := range []string{"uf;async;naive;split-one", "sv", "uf;rem-cas;naive;splice"} {
		for oi, opt := range opts {
			t.Run(fmt.Sprintf("%s/opt%d", spec, oi), func(t *testing.T) {
				s := mustStream(t, n, spec, opt)
				final := newOracle(n)
				edges := graph.RMATEdges(9, 4*n, 0.57, 0.19, 0.19, uint64(oi)+1)
				for _, e := range edges {
					final.union(e.U, e.V)
				}
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						for i := p; i < len(edges); i += producers {
							s.Update(edges[i].U, edges[i].V)
							if i%3 == 0 {
								conn(s, edges[i].V, uint32((i*31)%n))
							}
							if i%257 == 0 {
								s.Sync() // Sync must be safe mid-traffic
							}
						}
					}(p)
				}
				wg.Wait()
				s.Sync()
				want := 0
				for v := 0; v < n; v++ {
					if final.find(uint32(v)) == uint32(v) {
						want++
					}
				}
				if got := s.NumComponents(); got != want {
					t.Fatalf("NumComponents = %d, oracle %d", got, want)
				}
			})
		}
	}
}
