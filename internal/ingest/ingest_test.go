package ingest

import (
	"testing"

	"connectit/internal/core"
)

// conn is Connected with the close error discarded: the tests below own
// their streams' lifecycles, so ErrClosed cannot occur unless a test
// arranges it (close_test exercises the error path explicitly).
func conn(s *Stream, u, v uint32) bool {
	same, _ := s.Connected(u, v)
	return same
}

// mustStream opens a Stream for the given algorithm spec.
func mustStream(t *testing.T, n int, spec string, opt Options) *Stream {
	t.Helper()
	cfg, err := core.ParseConfig("none;" + spec)
	if err != nil {
		t.Fatalf("ParseConfig(%q): %v", spec, err)
	}
	inc, err := core.NewIncremental(n, cfg)
	if err != nil {
		t.Fatalf("NewIncremental(%q): %v", spec, err)
	}
	return New(inc, opt)
}

// typeSpecs is one representative spec per scheduling discipline.
var typeSpecs = []struct {
	spec string
	want core.StreamType
}{
	{"uf;async;naive;split-one", core.TypeAsync},
	{"uf;rem-cas;split;split-one", core.TypeAsync},
	{"sv", core.TypeSynchronous},
	{"lt;CRFA", core.TypeSynchronous},
	{"uf;rem-cas;naive;splice", core.TypePhased},
	{"uf;rem-lock;naive;splice", core.TypePhased},
}

func TestStreamTypes(t *testing.T) {
	for _, tc := range typeSpecs {
		s := mustStream(t, 8, tc.spec, Options{})
		if s.Type() != tc.want {
			t.Errorf("%s: stream type %v, want %v", tc.spec, s.Type(), tc.want)
		}
	}
}

func TestStreamSequentialPath(t *testing.T) {
	// A path built one edge at a time, with a Sync+query after each epoch
	// boundary, on every discipline.
	const n = 1000
	for _, tc := range typeSpecs {
		t.Run(tc.spec, func(t *testing.T) {
			s := mustStream(t, n, tc.spec, Options{EpochSize: 64, Shards: 2})
			for v := uint32(0); v < n-1; v++ {
				s.Update(v, v+1)
			}
			s.Sync()
			if !conn(s, 0, n-1) {
				t.Fatalf("path endpoints not connected after Sync")
			}
			if conn(s, 0, n-1) != true || s.NumComponents() != 1 {
				t.Fatalf("want single component, got %d", s.NumComponents())
			}
			st := s.Stats()
			if st.Updates != n-1 {
				t.Fatalf("stats updates = %d, want %d", st.Updates, n-1)
			}
			if st.Applied+st.Filtered != st.Updates {
				t.Fatalf("applied %d + filtered %d != updates %d", st.Applied, st.Filtered, st.Updates)
			}
		})
	}
}

func TestStreamPrefilterDropsIntraComponent(t *testing.T) {
	// After a component is fully connected, re-sending its edges must be
	// filtered (Type i filters per call; buffered types filter at apply).
	const n = 256
	s := mustStream(t, n, "uf;async;naive;split-one", Options{})
	for v := uint32(0); v < n-1; v++ {
		s.Update(v, v+1)
	}
	before := s.Stats()
	for v := uint32(0); v < n-1; v++ {
		s.Update(v, v+1)
	}
	after := s.Stats()
	if got := after.Filtered - before.Filtered; got != n-1 {
		t.Fatalf("pre-filter dropped %d of %d redundant updates", got, n-1)
	}
	if after.Applied != before.Applied {
		t.Fatalf("redundant updates reached the hot path: applied %d -> %d", before.Applied, after.Applied)
	}

	// Buffered discipline: the whole redundant epoch is dropped at apply.
	sb := mustStream(t, n, "sv", Options{EpochSize: 32})
	for v := uint32(0); v < n-1; v++ {
		sb.Update(v, v+1)
	}
	sb.Sync()
	for v := uint32(0); v < n-1; v++ {
		sb.Update(v, v+1)
	}
	sb.Sync()
	st := sb.Stats()
	if st.Filtered < n-1 {
		t.Fatalf("buffered pre-filter dropped %d, want >= %d", st.Filtered, n-1)
	}
	if !conn(sb, 0, n-1) {
		t.Fatal("filtering broke connectivity")
	}
}

func TestStreamSelfLoopsAndDisable(t *testing.T) {
	s := mustStream(t, 16, "uf;async;naive;split-one", Options{DisablePrefilter: true})
	s.Update(3, 3)
	s.Update(0, 1)
	s.Update(0, 1) // redundant, but pre-filter disabled: must still apply
	st := s.Stats()
	if st.Filtered != 1 {
		t.Fatalf("self-loop not filtered: %+v", st)
	}
	if st.Applied != 2 {
		t.Fatalf("disabled pre-filter still dropped updates: %+v", st)
	}
	if !conn(s, 0, 1) || conn(s, 0, 3) {
		t.Fatal("connectivity wrong")
	}
}

func TestStreamQueriesSeeOnlyAcceptedUpdates(t *testing.T) {
	for _, tc := range typeSpecs {
		s := mustStream(t, 64, tc.spec, Options{EpochSize: 8})
		if conn(s, 1, 2) {
			t.Fatalf("%s: empty stream reports connectivity", tc.spec)
		}
		s.Update(1, 2)
		s.Sync()
		if !conn(s, 1, 2) || conn(s, 1, 3) {
			t.Fatalf("%s: wrong connectivity after one update", tc.spec)
		}
	}
}

// TestSyncCoalescesResidualEpochs drives the pipeline deterministically:
// with epochs too large to self-seal, Sync seals one residual epoch per
// non-empty shard, and a single drain coalesces them into one apply round.
// With the bound at 1, every epoch pays its own round.
func TestSyncCoalescesResidualEpochs(t *testing.T) {
	const n = 1 << 12
	mk := func(bound int) *Stream {
		s := mustStream(t, n, "sv", Options{EpochSize: 1 << 16, Shards: 4, CoalesceBound: bound})
		for i := 0; i < 2000; i++ {
			u := uint32(i) % (n - 1)
			s.Update(u, u+1)
		}
		s.Sync()
		return s
	}

	s := mk(0) // default bound: plenty of room to coalesce
	st := s.Stats()
	if st.Epochs < 2 {
		t.Fatalf("expected residual epochs on >= 2 shards, got %d", st.Epochs)
	}
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (all residual epochs coalesced)", st.Rounds)
	}
	if st.Coalesced != st.Epochs-st.Rounds {
		t.Fatalf("coalesced = %d, want epochs %d - rounds %d", st.Coalesced, st.Epochs, st.Rounds)
	}

	s1 := mk(1) // coalescing off: one round per epoch
	st1 := s1.Stats()
	if st1.Rounds != st1.Epochs {
		t.Fatalf("bound=1: rounds = %d, want one per epoch (%d)", st1.Rounds, st1.Epochs)
	}
	if st1.Coalesced != 0 {
		t.Fatalf("bound=1: coalesced = %d, want 0", st1.Coalesced)
	}

	// Both pipelines must agree on the result.
	if !conn(s, 0, 2000) || !conn(s1, 0, 2000) {
		t.Fatal("path endpoints not connected after Sync")
	}
}

func TestStreamingAlgorithmsEnumerates(t *testing.T) {
	seen := map[core.StreamType]int{}
	for _, sa := range core.StreamingAlgorithms() {
		seen[sa.Type]++
	}
	// 34 async UF variants + 2 Rem+SpliceAtomic phased + SV + 8 RootUp LT.
	if seen[core.TypeAsync] == 0 || seen[core.TypeSynchronous] == 0 || seen[core.TypePhased] == 0 {
		t.Fatalf("StreamingAlgorithms missing a discipline: %v", seen)
	}
}

// TestDedupHintPlumbsThroughOptions drives a Type ii stream with a
// duplicate-heavy update set large enough that Sync's coalesced batch
// clears the preprocessing size floor, and checks that the hint reaches
// the Incremental and the decision lands in Stats.
func TestDedupHintPlumbsThroughOptions(t *testing.T) {
	const n = 1 << 13
	drive := func(hint core.DedupHint) Stats {
		// One producer, epoch sized so all updates coalesce into one big
		// batch at Sync; prefilter off so duplicates survive to ApplyBatch.
		st := mustStream(t, n, "sv", Options{
			EpochSize:        1 << 20,
			DisablePrefilter: true,
			DedupHint:        hint,
		})
		for rep := 0; rep < 3; rep++ {
			for i := 0; i < n-1; i++ {
				st.Update(uint32(i), uint32(i+1))
			}
		}
		st.Sync()
		return st.Stats()
	}

	s := drive(core.DedupAlways)
	if s.DedupSorted == 0 || s.DedupSkipped != 0 {
		t.Fatalf("DedupAlways: sorted=%d skipped=%d, want >0/0", s.DedupSorted, s.DedupSkipped)
	}
	s = drive(core.DedupNever)
	if s.DedupSorted != 0 || s.DedupSkipped == 0 {
		t.Fatalf("DedupNever: sorted=%d skipped=%d, want 0/>0", s.DedupSorted, s.DedupSkipped)
	}
	// Auto on a 3x-duplicated batch: the estimator must choose to sort.
	s = drive(core.DedupAuto)
	if s.DedupSorted == 0 {
		t.Fatalf("DedupAuto on duplicate-heavy batch: sorted=%d skipped=%d, want sorted>0", s.DedupSorted, s.DedupSkipped)
	}
}
