// Package liutarjan implements the Liu-Tarjan framework of simple concurrent
// connectivity algorithms (§3.3.2) — all sixteen rule combinations the paper
// evaluates (Appendix D.4) — and Stergiou et al.'s algorithm, which is the
// two-parent-array sibling of the framework's PUS variant (§B.2.5).
//
// Each round processes the remaining edge list and performs, per edge, a
// connect rule (Connect / ParentConnect / ExtendedConnect) gathering
// candidate parents with writeMin, an optional root-only update restriction
// (RootUp), a shortcut phase (one step or to fixpoint), and an optional
// alter phase that rewrites edges to current labels and drops self loops.
// The algorithm terminates when neither connects nor shortcuts change any
// parent.
//
// When composed with sampling, labels are compared in the favored order of
// package minlabel so the largest sampled component's label is the global
// minimum and its vertices never change labels (Theorem 4).
package liutarjan

import (
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/minlabel"
	"connectit/internal/parallel"
)

// ConnectRule selects the connect phase operation.
type ConnectRule int

// Connect rules: candidates are the edge endpoints (Connect), the endpoint
// parents (ParentConnect), or the endpoint parents offered to both the
// endpoints and their parents (ExtendedConnect).
const (
	Connect ConnectRule = iota
	ParentConnect
	ExtendedConnect
)

// UpdateRule selects which vertices may have their parent updated.
type UpdateRule int

// Update rules: any vertex (SimpleUpdate) or only round-start tree roots
// (RootUpdate). RootUpdate variants are monotone and hence root-based.
const (
	SimpleUpdate UpdateRule = iota
	RootUpdate
)

// ShortcutRule selects the compression applied after the connect phase.
type ShortcutRule int

// Shortcut rules: a single pointer-jumping step or jumping to fixpoint.
const (
	OneShortcut ShortcutRule = iota
	FullShortcut
)

// AlterRule selects whether edges are rewritten to current labels.
type AlterRule int

// Alter rules. Alter is required for correctness with Connect.
const (
	NoAlter AlterRule = iota
	Alter
)

// Variant is one algorithm of the framework.
type Variant struct {
	Connect  ConnectRule
	Update   UpdateRule
	Shortcut ShortcutRule
	Alter    AlterRule
}

// Code renders the paper's four-letter naming (e.g. CRFA = Connect, RootUp,
// FullShortcut, Alter; PUS = ParentConnect, Update, Shortcut).
func (v Variant) Code() string {
	c := map[ConnectRule]string{Connect: "C", ParentConnect: "P", ExtendedConnect: "E"}[v.Connect]
	u := map[UpdateRule]string{SimpleUpdate: "U", RootUpdate: "R"}[v.Update]
	s := map[ShortcutRule]string{OneShortcut: "S", FullShortcut: "F"}[v.Shortcut]
	a := map[AlterRule]string{NoAlter: "", Alter: "A"}[v.Alter]
	return c + u + s + a
}

// RootBased reports whether the variant only relabels roots, making it
// usable for spanning forest and classifying it with the root-based
// algorithms (§3.4).
func (v Variant) RootBased() bool { return v.Update == RootUpdate }

// Variants enumerates the sixteen combinations evaluated in the paper
// (Appendix D.4). Connect variants always include Alter, which their
// correctness requires.
func Variants() []Variant {
	return []Variant{
		{Connect, SimpleUpdate, OneShortcut, Alter},            // CUSA
		{Connect, RootUpdate, OneShortcut, Alter},              // CRSA
		{ParentConnect, SimpleUpdate, OneShortcut, Alter},      // PUSA
		{ParentConnect, RootUpdate, OneShortcut, Alter},        // PRSA
		{ParentConnect, SimpleUpdate, OneShortcut, NoAlter},    // PUS
		{ParentConnect, RootUpdate, OneShortcut, NoAlter},      // PRS
		{ExtendedConnect, SimpleUpdate, OneShortcut, Alter},    // EUSA
		{ExtendedConnect, SimpleUpdate, OneShortcut, NoAlter},  // EUS
		{Connect, SimpleUpdate, FullShortcut, Alter},           // CUFA
		{Connect, RootUpdate, FullShortcut, Alter},             // CRFA
		{ParentConnect, SimpleUpdate, FullShortcut, Alter},     // PUFA
		{ParentConnect, RootUpdate, FullShortcut, Alter},       // PRFA
		{ParentConnect, SimpleUpdate, FullShortcut, NoAlter},   // PUF
		{ParentConnect, RootUpdate, FullShortcut, NoAlter},     // PRF
		{ExtendedConnect, SimpleUpdate, FullShortcut, Alter},   // EUFA
		{ExtendedConnect, SimpleUpdate, FullShortcut, NoAlter}, // EUF
	}
}

// ordNatural is the plain uint32 order (no favored set).
var ordNatural = minlabel.Order{}

// CollectEdges gathers the undirected edges that the finish phase must
// process: every edge with at least one unskipped endpoint, exactly once.
// It is generic over the graph representation (graph.Rep): the edge-list
// materialization the Liu-Tarjan framework needs decodes straight off
// compressed encodings. Accumulation is worker-local (one growing buffer
// and one decode scratch per pool worker, no mutex) with a final sized
// concatenation.
func CollectEdges[G graph.Rep](g G, skip []bool) []graph.Edge {
	n := g.NumVertices()
	const grain = 256
	nw := parallel.Width(n, grain)
	locals := make([][]graph.Edge, nw)
	bufs := make([][]graph.Vertex, nw)
	parallel.ForWorkerSized(n, grain, nw, func(w *parallel.Worker, lo, hi int) {
		id := w.ID()
		local, buf := locals[id], bufs[id]
		for v := lo; v < hi; v++ {
			if skip != nil && skip[v] {
				continue
			}
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for _, u := range buf {
				// Keep (v,u) once: from the smaller unskipped endpoint, or
				// from v when u is skipped (the only side that sees it).
				if graph.Vertex(v) < u || (skip != nil && skip[u]) {
					local = append(local, graph.Edge{U: graph.Vertex(v), V: u})
				}
			}
		}
		locals[id], bufs[id] = local, buf
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]graph.Edge, 0, total)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}

// Run executes the variant over g, refining the labeling in parent until
// convergence. favored, when non-nil, marks the vertices of the sampled
// most-frequent component: their out-edges are skipped and their IDs compare
// smaller than every other label (the paper's relabel-to-smallest-IDs
// construction, Theorem 4). It returns the number of rounds.
func Run[G graph.Rep](g G, parent []uint32, favored []bool, v Variant) int {
	edges := CollectEdges(g, favored)
	return RunEdges(edges, parent, favored, v)
}

// RunEdges is Run over an explicit edge list (batches in COO form). It
// publishes round results with plain stores; use RunEdgesAtomic when
// concurrent readers chase parent while a batch applies. Repeated callers
// (the streaming apply path) should hold a NewEdgeRunner instead: this
// wrapper constructs a fresh runner — and pays its scratch allocations —
// per call.
func RunEdges(edges []graph.Edge, parent []uint32, favored []bool, v Variant) int {
	return NewEdgeRunner(v, false).Run(edges, parent, favored)
}

// RunEdgesAtomic is RunEdges with the round-end copy-back published via
// atomic stores, for the streaming layer's §3.5 Type ii wait-free queries,
// which load parent atomically while a batch is mid-apply. The static path
// keeps RunEdges' vectorized copy — it has no concurrent readers.
func RunEdgesAtomic(edges []graph.Edge, parent []uint32, favored []bool, v Variant) int {
	return NewEdgeRunner(v, true).Run(edges, parent, favored)
}

// altGrain is the edge-block size of the alter compaction passes.
const altGrain = 2048

// EdgeRunner executes one Liu-Tarjan variant over explicit edge lists with
// every per-round resource hoisted out of the round loop: the connect,
// publish, shortcut, and alter bodies are closures over the runner built
// once at construction (a closure built inside the loop would be one heap
// allocation per sweep), the next-array and the alter double-buffers grow
// once and are reused, and alter compacts survivors with a deterministic
// count/scan/scatter instead of a mutex-ordered append. A steady-state
// Run therefore performs zero allocations — the property the ingest
// engine's per-coalesced-group apply rounds rely on, guarded by
// TestEdgeRunnerSteadyStateAllocs.
//
// A runner is not safe for concurrent use; the streaming layer serializes
// Type ii rounds by construction.
type EdgeRunner struct {
	v             Variant
	atomicPublish bool

	// Per-Run state, referenced by the hoisted bodies.
	ord    minlabel.Order
	parent []uint32
	edges  []graph.Edge

	next   []uint32
	bufA   []graph.Edge // alter double buffer: survivors land in the buffer
	bufB   []graph.Edge // the current edge list does NOT occupy
	intoA  bool
	dst    []graph.Edge
	counts []uint64

	connectChanged  atomic.Bool
	shortcutChanged atomic.Bool
	alterChanged    atomic.Bool

	connectBody  func(lo, hi int)
	publishBody  func(lo, hi int)
	copyBody     func(lo, hi int)
	shortcutBody func(lo, hi int)
	countBody    func(blo, bhi int) // over altGrain blocks
	scatterBody  func(blo, bhi int)
}

// NewEdgeRunner builds a reusable runner for one variant. atomicPublish
// selects atomic per-element stores for the round-end copy-back (required
// when wait-free queries chase parent concurrently, §3.5 Type ii).
func NewEdgeRunner(v Variant, atomicPublish bool) *EdgeRunner {
	r := &EdgeRunner{v: v, atomicPublish: atomicPublish}
	r.connectBody = r.runConnect
	if atomicPublish {
		r.publishBody = r.publishAtomic
	} else {
		r.publishBody = r.publishPlain
	}
	r.copyBody = r.copyToNext
	r.shortcutBody = r.runShortcut
	r.countBody = r.runCount
	r.scatterBody = r.runScatter
	return r
}

// Run refines parent over edges until convergence (see RunEdges) and
// returns the number of rounds. The input slice is never modified: the
// first alter pass compacts into runner-owned buffers.
func (r *EdgeRunner) Run(edges []graph.Edge, parent []uint32, favored []bool) int {
	r.ord = minlabel.Order{Favored: favored}
	r.parent = parent
	r.edges = edges
	r.intoA = true
	n := len(parent)
	if cap(r.next) < n {
		r.next = make([]uint32, n)
	}
	r.next = r.next[:n]
	rounds := 0
	for {
		rounds++
		parallel.ForGrained(n, 4096, r.copyBody)
		r.connectChanged.Store(false)
		parallel.ForGrained(len(r.edges), 512, r.connectBody)
		parallel.ForGrained(n, 4096, r.publishBody)

		shortcutChanged := false
		for {
			r.shortcutChanged.Store(false)
			parallel.ForGrained(n, 1024, r.shortcutBody)
			changed := r.shortcutChanged.Load()
			shortcutChanged = shortcutChanged || changed
			if r.v.Shortcut == OneShortcut || !changed {
				break
			}
		}

		alterChanged := false
		if r.v.Alter == Alter {
			// An alter that rewrote any endpoint can enable progress on the
			// next round even when no label changed this round (Connect's
			// raw-ID candidates only see the rewritten endpoints), so it
			// counts as a change for termination.
			alterChanged = r.alter()
		}
		if !r.connectChanged.Load() && !shortcutChanged && !alterChanged {
			r.edges = nil
			r.parent = nil
			return rounds
		}
	}
}

func (r *EdgeRunner) copyToNext(lo, hi int) {
	copy(r.next[lo:hi], r.parent[lo:hi])
}

func (r *EdgeRunner) publishPlain(lo, hi int) {
	copy(r.parent[lo:hi], r.next[lo:hi])
}

func (r *EdgeRunner) publishAtomic(lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreUint32(&r.parent[i], r.next[i])
	}
}

func (r *EdgeRunner) runConnect(lo, hi int) {
	ord, parent, next, edges := r.ord, r.parent, r.next, r.edges
	local := false
	for i := lo; i < hi; i++ {
		e := edges[i]
		u, w := e.U, e.V
		switch r.v.Connect {
		case Connect:
			local = offer(ord, parent, next, u, w, r.v.Update) || local
			local = offer(ord, parent, next, w, u, r.v.Update) || local
		case ParentConnect:
			pu := atomic.LoadUint32(&parent[u])
			pw := atomic.LoadUint32(&parent[w])
			local = offer(ord, parent, next, u, pw, r.v.Update) || local
			local = offer(ord, parent, next, w, pu, r.v.Update) || local
		case ExtendedConnect:
			pu := atomic.LoadUint32(&parent[u])
			pw := atomic.LoadUint32(&parent[w])
			local = offer(ord, parent, next, u, pw, r.v.Update) || local
			local = offer(ord, parent, next, w, pu, r.v.Update) || local
			local = offer(ord, parent, next, pu, pw, r.v.Update) || local
			local = offer(ord, parent, next, pw, pu, r.v.Update) || local
		}
	}
	if local {
		r.connectChanged.Store(true)
	}
}

func (r *EdgeRunner) runShortcut(lo, hi int) {
	ord, parent := r.ord, r.parent
	local := false
	for i := lo; i < hi; i++ {
		p := atomic.LoadUint32(&parent[i])
		pp := atomic.LoadUint32(&parent[p])
		if pp != p && ord.WriteMin(&parent[i], pp) {
			local = true
		}
	}
	if local {
		r.shortcutChanged.Store(true)
	}
}

// alter rewrites every remaining edge to the current labels of its
// endpoints and drops self loops, compacting survivors into the spare
// double buffer via blocked count/scan/scatter (deterministic order, no
// mutex, no allocation in steady state). It reports whether any edge was
// rewritten or dropped.
func (r *EdgeRunner) alter() bool {
	m := len(r.edges)
	if m == 0 {
		return false
	}
	blocks := (m + altGrain - 1) / altGrain
	if cap(r.counts) < blocks {
		r.counts = make([]uint64, blocks)
	}
	r.counts = r.counts[:blocks]
	r.alterChanged.Store(false)
	parallel.ForGrained(blocks, 1, r.countBody)
	total := parallel.ScanExclusive(r.counts)
	dst := r.bufB
	if r.intoA {
		dst = r.bufA
	}
	if uint64(cap(dst)) < total {
		dst = make([]graph.Edge, total)
	}
	dst = dst[:total]
	if r.intoA {
		r.bufA = dst
	} else {
		r.bufB = dst
	}
	r.intoA = !r.intoA
	r.dst = dst
	parallel.ForGrained(blocks, 1, r.scatterBody)
	if total != uint64(m) {
		r.alterChanged.Store(true)
	}
	r.edges = dst
	return r.alterChanged.Load()
}

func (r *EdgeRunner) runCount(blo, bhi int) {
	edges, parent, counts := r.edges, r.parent, r.counts
	for b := blo; b < bhi; b++ {
		lo, hi := b*altGrain, min((b+1)*altGrain, len(edges))
		var c uint64
		for i := lo; i < hi; i++ {
			a := atomic.LoadUint32(&parent[edges[i].U])
			z := atomic.LoadUint32(&parent[edges[i].V])
			if a != z {
				c++
			}
		}
		counts[b] = c
	}
}

func (r *EdgeRunner) runScatter(blo, bhi int) {
	edges, parent, counts, dst := r.edges, r.parent, r.counts, r.dst
	changed := false
	for b := blo; b < bhi; b++ {
		lo, hi := b*altGrain, min((b+1)*altGrain, len(edges))
		pos := counts[b]
		for i := lo; i < hi; i++ {
			a := atomic.LoadUint32(&parent[edges[i].U])
			z := atomic.LoadUint32(&parent[edges[i].V])
			if a != edges[i].U || z != edges[i].V {
				changed = true
			}
			if a != z {
				dst[pos] = graph.Edge{U: a, V: z}
				pos++
			}
		}
	}
	if changed {
		r.alterChanged.Store(true)
	}
}

// offer proposes candidate cand on behalf of endpoint x. With SimpleUpdate
// the candidate targets x itself; with RootUpdate it targets x's parent and
// only if that parent is a round-start tree root (Liu-Tarjan's R rule, which
// links roots and is therefore monotone and root-based). Candidates only win
// if they precede the current proposal in the favored order, so parents are
// monotone non-increasing.
func offer(ord minlabel.Order, parent, next []uint32, x, cand uint32, u UpdateRule) bool {
	target := x
	if u == RootUpdate {
		target = atomic.LoadUint32(&parent[x])
		if atomic.LoadUint32(&parent[target]) != target {
			return false // x's parent is not a root this round
		}
	}
	return ord.WriteMin(&next[target], cand)
}

// shortcut performs pointer jumping on parent: one step, or to fixpoint for
// FullShortcut. It reports whether anything changed.
func shortcut(ord minlabel.Order, parent []uint32, rule ShortcutRule) bool {
	changedEver := false
	for {
		var changed atomic.Bool
		parallel.ForGrained(len(parent), 1024, func(lo, hi int) {
			local := false
			for i := lo; i < hi; i++ {
				p := atomic.LoadUint32(&parent[i])
				pp := atomic.LoadUint32(&parent[p])
				if pp != p && ord.WriteMin(&parent[i], pp) {
					local = true
				}
			}
			if local {
				changed.Store(true)
			}
		})
		if changed.Load() {
			changedEver = true
		}
		if rule == OneShortcut || !changed.Load() {
			return changedEver
		}
	}
}

func copyParallel(dst, src []uint32) {
	parallel.ForGrained(len(src), 4096, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// storeParallel is copyParallel with atomic per-element stores, for arrays
// that concurrent wait-free readers load atomically.
func storeParallel(dst, src []uint32) {
	parallel.ForGrained(len(src), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreUint32(&dst[i], src[i])
		}
	})
}

// RunStergiou executes Stergiou et al.'s algorithm (§B.2.5): ParentConnect
// against a previous-round snapshot array, then a single shortcut, repeated
// to fixpoint. favored has the same semantics as in Run. It returns the
// number of rounds.
func RunStergiou[G graph.Rep](g G, parent []uint32, favored []bool) int {
	edges := CollectEdges(g, favored)
	return RunStergiouEdges(edges, parent, favored)
}

// RunStergiouEdges is RunStergiou over an explicit edge list.
func RunStergiouEdges(edges []graph.Edge, parent []uint32, favored []bool) int {
	ord := minlabel.Order{Favored: favored}
	n := len(parent)
	prev := make([]uint32, n)
	rounds := 0
	for {
		rounds++
		copyParallel(prev, parent)
		var changed atomic.Bool
		parallel.ForGrained(len(edges), 512, func(lo, hi int) {
			local := false
			for i := lo; i < hi; i++ {
				e := edges[i]
				if ord.WriteMin(&parent[e.U], prev[e.V]) {
					local = true
				}
				if ord.WriteMin(&parent[e.V], prev[e.U]) {
					local = true
				}
			}
			if local {
				changed.Store(true)
			}
		})
		if shortcut(ord, parent, OneShortcut) {
			changed.Store(true)
		}
		if !changed.Load() {
			return rounds
		}
	}
}
