package liutarjan

import (
	"runtime"
	"testing"

	"connectit/internal/graph"
)

// TestEdgeRunnerSteadyStateAllocs is the allocation regression guard for
// the Liu-Tarjan round loop: once an EdgeRunner has warmed up (next array,
// alter double-buffers, hoisted bodies), repeated Runs over same-shaped
// batches perform zero heap allocations — the property the streaming apply
// path's per-coalesced-group rounds rely on.
func TestEdgeRunnerSteadyStateAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 1 << 12
	rng := uint64(42)
	edges := make([]graph.Edge, 6*n)
	for i := range edges {
		rng = graph.Hash64(rng)
		u := uint32(rng % n)
		rng = graph.Hash64(rng)
		v := uint32(rng % n)
		if u == v {
			v = (v + 1) % n
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	ident := identity(n)
	parent := identity(n)

	for _, tc := range []struct {
		name          string
		v             Variant
		atomicPublish bool
	}{
		{"PRS/plain", Variant{ParentConnect, RootUpdate, OneShortcut, NoAlter}, false},
		{"PRSA/atomic", Variant{ParentConnect, RootUpdate, OneShortcut, Alter}, true},
		{"CRFA/atomic", Variant{Connect, RootUpdate, FullShortcut, Alter}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewEdgeRunner(tc.v, tc.atomicPublish)
			copy(parent, ident)
			r.Run(edges, parent, nil) // warm up: grow scratch, spawn pool workers
			res := testing.Benchmark(func(b *testing.B) {
				runtime.GOMAXPROCS(4)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(parent, ident)
					r.Run(edges, parent, nil)
				}
			})
			if a := res.AllocsPerOp(); a != 0 {
				t.Fatalf("steady-state EdgeRunner.Run allocates %d allocs/op, want 0", a)
			}
		})
	}
}
