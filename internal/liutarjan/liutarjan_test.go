package liutarjan

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
)

func identity(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

func TestVariantEnumeration(t *testing.T) {
	vs := Variants()
	if len(vs) != 16 {
		t.Fatalf("got %d variants, want 16", len(vs))
	}
	codes := make(map[string]bool)
	wantCodes := []string{
		"CUSA", "CRSA", "PUSA", "PRSA", "PUS", "PRS", "EUSA", "EUS",
		"CUFA", "CRFA", "PUFA", "PRFA", "PUF", "PRF", "EUFA", "EUF",
	}
	for _, v := range vs {
		if codes[v.Code()] {
			t.Fatalf("duplicate code %s", v.Code())
		}
		codes[v.Code()] = true
		if v.Connect == Connect && v.Alter != Alter {
			t.Fatalf("%s: Connect without Alter is incorrect and must not be enumerated", v.Code())
		}
	}
	for _, w := range wantCodes {
		if !codes[w] {
			t.Fatalf("missing variant %s", w)
		}
	}
}

func TestRootBasedClassification(t *testing.T) {
	for _, v := range Variants() {
		want := v.Update == RootUpdate
		if v.RootBased() != want {
			t.Fatalf("%s: RootBased() = %v", v.Code(), v.RootBased())
		}
	}
}

func TestAllVariantsMatchOracleOnPanel(t *testing.T) {
	panel := testutil.Panel()
	for _, v := range Variants() {
		v := v
		t.Run(v.Code(), func(t *testing.T) {
			t.Parallel()
			for name, g := range panel {
				parent := identity(g.NumVertices())
				Run(g, parent, nil, v)
				testutil.CheckPartition(t, name, parent, testutil.Components(g))
			}
		})
	}
}

func TestVariantsWithFavoredLabelAndSkip(t *testing.T) {
	// Sampled setting: the large clique pre-labeled with favored root 7,
	// its vertices skipped. All variants must still converge correctly.
	g := func() *graph.Graph {
		gg := graph.Cliques(2, 20)
		edges := gg.Edges()
		edges = append(edges, graph.Edge{U: 5, V: 25})
		return graph.Build(40, edges)
	}()
	want := testutil.Components(g)
	for _, v := range Variants() {
		parent := identity(g.NumVertices())
		skip := make([]bool, g.NumVertices())
		for x := 0; x < 20; x++ {
			parent[x] = 7
			skip[x] = true
		}
		Run(g, parent, skip, v)
		testutil.CheckPartition(t, v.Code(), parent, want)
		// The favored component's label must stay within the favored set
		// (labels may legally move to a smaller favored ID, since the
		// order treats the whole set as minimal).
		if parent[3] >= 20 {
			t.Fatalf("%s: favored component relabeled outside the set: %d", v.Code(), parent[3])
		}
	}
}

func TestStergiouMatchesOracleOnPanel(t *testing.T) {
	for name, g := range testutil.Panel() {
		parent := identity(g.NumVertices())
		RunStergiou(g, parent, nil)
		testutil.CheckPartition(t, name, parent, testutil.Components(g))
	}
}

func TestStergiouWithFavored(t *testing.T) {
	g := graph.Path(60)
	parent := identity(60)
	skip := make([]bool, 60)
	for x := 20; x < 40; x++ {
		parent[x] = 33
		skip[x] = true
	}
	RunStergiou(g, parent, skip)
	for v := 0; v < 60; v++ {
		if parent[v] != 33 {
			t.Fatalf("vertex %d label %d, want favored 33 everywhere on a path", v, parent[v])
		}
	}
}

func TestCollectEdgesSkipsOnlyInternalEdges(t *testing.T) {
	g := graph.Path(5) // edges 0-1,1-2,2-3,3-4
	skip := []bool{true, true, false, false, false}
	edges := CollectEdges(g, skip)
	// Edge 0-1 is internal to the skipped set and must be dropped; 1-2 must
	// survive via vertex 2; 2-3 and 3-4 survive normally.
	seen := make(map[[2]uint32]bool)
	for _, e := range edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		seen[[2]uint32{a, b}] = true
	}
	if seen[[2]uint32{0, 1}] {
		t.Fatal("edge internal to skipped set not dropped")
	}
	for _, want := range [][2]uint32{{1, 2}, {2, 3}, {3, 4}} {
		if !seen[want] {
			t.Fatalf("edge %v missing", want)
		}
	}
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3 (no duplicates)", len(edges))
	}
}

func TestCollectEdgesNoSkipGivesEachEdgeOnce(t *testing.T) {
	g := graph.Grid2D(10, 10)
	edges := CollectEdges(g, nil)
	if len(edges) != g.NumEdges() {
		t.Fatalf("collected %d, want %d", len(edges), g.NumEdges())
	}
}

func TestRunEdgesOnRawCOO(t *testing.T) {
	// The streaming layer feeds raw COO batches; verify direct edge input.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}, {U: 7, V: 8}}
	parent := identity(10)
	RunEdges(edges, parent, nil, Variants()[0])
	if parent[0] != parent[3] || parent[7] != parent[8] {
		t.Fatal("COO components wrong")
	}
	if parent[0] == parent[7] || parent[5] != 5 {
		t.Fatal("spurious merge")
	}
}
