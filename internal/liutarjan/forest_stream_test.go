package liutarjan

import (
	"errors"
	"runtime"
	"testing"

	"connectit/internal/graph"
)

// seqDSU is the sequential oracle for forest invariant checks.
type seqDSU struct{ p []uint32 }

func newSeqDSU(n int) *seqDSU {
	d := &seqDSU{p: make([]uint32, n)}
	for i := range d.p {
		d.p[i] = uint32(i)
	}
	return d
}

func (d *seqDSU) find(x uint32) uint32 {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *seqDSU) union(u, v uint32) bool {
	ru, rv := d.find(u), d.find(v)
	if ru == rv {
		return false
	}
	d.p[ru] = rv
	return true
}

func forestRandEdges(n, m int, seed uint64) []graph.Edge {
	rng := seed
	edges := make([]graph.Edge, m)
	for i := range edges {
		rng = graph.Hash64(rng)
		u := uint32(rng % uint64(n))
		rng = graph.Hash64(rng)
		v := uint32(rng % uint64(n))
		if u == v {
			v = (v + 1) % uint32(n)
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	return edges
}

// TestForestEdgeRunnerRejectsNonRootUp: only root-based variants can carry
// witnesses (§3.4), mirroring RunForest's gate.
func TestForestEdgeRunnerRejectsNonRootUp(t *testing.T) {
	if _, err := NewForestEdgeRunner(Variant{Connect, SimpleUpdate, OneShortcut, NoAlter}); !errors.Is(err, ErrNotRootBased) {
		t.Fatalf("SimpleUpdate variant: err = %v, want ErrNotRootBased", err)
	}
	if _, err := NewForestEdgeRunner(Variant{Connect, RootUpdate, FullShortcut, Alter}); err != nil {
		t.Fatalf("RootUpdate variant: err = %v, want nil", err)
	}
}

// TestForestEdgeRunnerInvariants drives batches through witness-capturing
// runners for several RootUp variants and checks the streaming forest
// contract after every batch: partition matches a sequential oracle, the
// cumulative forest holds exactly n - #components input edges, and those
// edges form a forest.
func TestForestEdgeRunnerInvariants(t *testing.T) {
	const n = 1 << 10
	for _, tc := range []struct {
		name string
		v    Variant
	}{
		// The registry's RootUp variants (Connect requires Alter, §D.4).
		{"CRSA", Variant{Connect, RootUpdate, OneShortcut, Alter}},
		{"CRFA", Variant{Connect, RootUpdate, FullShortcut, Alter}},
		{"PRS", Variant{ParentConnect, RootUpdate, OneShortcut, NoAlter}},
		{"PRF", Variant{ParentConnect, RootUpdate, FullShortcut, NoAlter}},
		{"PRFA", Variant{ParentConnect, RootUpdate, FullShortcut, Alter}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewForestEdgeRunner(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			parent := make([]uint32, n)
			for i := range parent {
				parent[i] = uint32(i)
			}
			oracle := newSeqDSU(n)
			inSet := make(map[[2]uint32]bool)
			var forest []graph.Edge

			for batch := 0; batch < 6; batch++ {
				edges := forestRandEdges(n, 600, uint64(batch)*1013+5)
				for _, e := range edges {
					u, v := e.U, e.V
					if v < u {
						u, v = v, u
					}
					inSet[[2]uint32{u, v}] = true
					oracle.union(e.U, e.V)
				}
				_, forest = r.Run(edges, parent, forest)

				chase := func(x uint32) uint32 {
					for parent[x] != x {
						x = parent[x]
					}
					return x
				}
				for v := uint32(1); v < n; v++ {
					got := chase(v) == chase(v-1)
					want := oracle.find(v) == oracle.find(v-1)
					if got != want {
						t.Fatalf("batch %d: connectivity(%d,%d) = %v, oracle %v", batch, v-1, v, got, want)
					}
				}

				comps := 0
				for v := uint32(0); v < n; v++ {
					if oracle.find(v) == v {
						comps++
					}
				}
				if len(forest) != n-comps {
					t.Fatalf("batch %d: |forest| = %d, want n - #components = %d", batch, len(forest), n-comps)
				}
				check := newSeqDSU(n)
				for _, e := range forest {
					u, v := e.U, e.V
					if v < u {
						u, v = v, u
					}
					if !inSet[[2]uint32{u, v}] {
						t.Fatalf("batch %d: forest edge {%d,%d} was never inserted", batch, e.U, e.V)
					}
					if !check.union(e.U, e.V) {
						t.Fatalf("batch %d: forest edge {%d,%d} closes a cycle", batch, e.U, e.V)
					}
				}
			}
		})
	}
}

// TestForestEdgeRunnerSteadyStateAllocs: once warmed (packed next array,
// work list, forest capacity), re-running already-connected batches
// performs zero heap allocations.
func TestForestEdgeRunnerSteadyStateAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 1 << 12
	edges := forestRandEdges(n, 4*n, 42)
	r, err := NewForestEdgeRunner(Variant{Connect, RootUpdate, FullShortcut, Alter})
	if err != nil {
		t.Fatal(err)
	}
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var forest []graph.Edge
	_, forest = r.Run(edges, parent, forest) // warm up

	res := testing.Benchmark(func(b *testing.B) {
		runtime.GOMAXPROCS(4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, forest = r.Run(edges, parent, forest)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state ForestEdgeRunner.Run allocates %d allocs/op, want 0", a)
	}
}
