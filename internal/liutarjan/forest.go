package liutarjan

import (
	"errors"
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/minlabel"
	"connectit/internal/parallel"
)

// ErrNotRootBased is returned by RunForest for variants that relabel
// non-roots; only the RootUp algorithms support spanning forest (§3.4).
var ErrNotRootBased = errors.New("liutarjan: spanning forest requires a RootUp variant")

// workEdge carries an edge's current (possibly altered) label endpoints
// together with the index of the original graph edge it descends from, so
// witness recording always emits real edges.
type workEdge struct {
	a, b uint32
	orig uint32
}

// RunForest executes a RootUp variant while recording, per hooked root, the
// original graph edge whose candidate won the hook — the black-box
// connectivity-to-spanning-forest conversion of Theorem 6. favored has the
// same semantics as in Run (the Connect rule's raw-ID candidates require the
// favored order to compose with sampling, exactly as in connectivity). It
// appends the witness edges to forest and returns the rounds executed.
func RunForest(g *graph.Graph, parent []uint32, favored []bool, v Variant, forest [][2]uint32) (int, [][2]uint32, error) {
	if !v.RootBased() {
		return 0, forest, ErrNotRootBased
	}
	ord := minlabel.Order{Favored: favored}
	origEdges := CollectEdges(g, favored)
	work := make([]workEdge, len(origEdges))
	parallel.For(len(origEdges), func(i int) {
		work[i] = workEdge{a: origEdges[i].U, b: origEdges[i].V, orig: uint32(i)}
	})
	n := len(parent)
	next := make([]uint64, n)
	witnessed := make([]bool, n)
	const noRef = ^uint32(0)
	rounds := 0
	for {
		rounds++
		parallel.For(n, func(i int) {
			next[i] = concurrent.Pack(atomic.LoadUint32(&parent[i]), noRef)
		})
		var connectChanged atomic.Bool
		parallel.ForGrained(len(work), 512, func(lo, hi int) {
			local := false
			for i := lo; i < hi; i++ {
				e := work[i]
				switch v.Connect {
				case Connect:
					local = offerRootPacked(ord, parent, next, e.a, e.b, e.orig) || local
					local = offerRootPacked(ord, parent, next, e.b, e.a, e.orig) || local
				case ParentConnect:
					pa := atomic.LoadUint32(&parent[e.a])
					pb := atomic.LoadUint32(&parent[e.b])
					local = offerRootPacked(ord, parent, next, e.a, pb, e.orig) || local
					local = offerRootPacked(ord, parent, next, e.b, pa, e.orig) || local
				}
			}
			if local {
				connectChanged.Store(true)
			}
		})
		// Apply phase: install winning candidates and record the witness
		// edge the first time each root is hooked away from itself.
		applied := make([]bool, n)
		parallel.For(n, func(i int) {
			pri, _ := concurrent.Unpack(next[i])
			if ord.Less(pri, atomic.LoadUint32(&parent[i])) {
				atomic.StoreUint32(&parent[i], pri)
				applied[i] = true
			}
		})
		for i := 0; i < n; i++ {
			if applied[i] && !witnessed[i] {
				_, ref := concurrent.Unpack(next[i])
				if ref != noRef {
					forest = append(forest, [2]uint32{origEdges[ref].U, origEdges[ref].V})
					witnessed[i] = true
				}
			}
		}
		shortcutChanged := shortcut(ord, parent, v.Shortcut)
		alterChanged := false
		if v.Alter == Alter {
			work, alterChanged = alterWork(work, parent)
		}
		if !connectChanged.Load() && !shortcutChanged && !alterChanged {
			return rounds, forest, nil
		}
	}
}

// offerRootPacked proposes cand (with witness ref) to the root parent of
// endpoint x, mirroring offer's RootUpdate path with a packed writeMin under
// the favored order.
func offerRootPacked(ord minlabel.Order, parent []uint32, next []uint64, x, cand, ref uint32) bool {
	target := atomic.LoadUint32(&parent[x])
	if atomic.LoadUint32(&parent[target]) != target {
		return false
	}
	return ord.WriteMinPacked(&next[target], cand, ref)
}

// alterWork rewrites work edges to current labels, preserving the original
// edge reference and dropping self loops. It reports whether any edge
// changed (same termination significance as alter in Run).
func alterWork(work []workEdge, parent []uint32) ([]workEdge, bool) {
	kept := work[:0]
	changed := false
	for _, e := range work {
		a := atomic.LoadUint32(&parent[e.a])
		b := atomic.LoadUint32(&parent[e.b])
		if a != e.a || b != e.b {
			changed = true
		}
		if a != b {
			kept = append(kept, workEdge{a: a, b: b, orig: e.orig})
		}
	}
	return kept, changed
}
