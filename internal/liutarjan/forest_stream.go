package liutarjan

import (
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/minlabel"
	"connectit/internal/parallel"
)

// noWitnessRef marks a packed candidate that carries no witness edge (the
// round-start self priority installed by the pack phase).
const noWitnessRef = ^uint32(0)

// ForestEdgeRunner executes a RootUp Liu-Tarjan variant over explicit edge
// lists with witness capture: the streaming Type (ii) apply path when the
// ingest engine maintains a live spanning forest (DESIGN.md §12). It is
// RunForest restructured the way EdgeRunner restructures RunEdges: the
// packed next-array, the work-edge list, and every round body are retained
// across Run calls, so a steady-state Run performs zero allocations (the
// forest append amortizes into caller-retained capacity).
//
// Offers go to round-start roots only (the RootUp rule), each carrying the
// index of the batch edge it descends from; the apply phase at the round
// barrier installs winning candidates with atomic stores (wait-free queries
// chase parent concurrently, §3.5) and appends the witness edge of every
// root hooked away from itself. Labels are monotone non-increasing and a
// hooked vertex is never a root again, so each vertex contributes at most
// one forest edge over the stream's lifetime.
//
// A runner is not safe for concurrent use; the streaming layer serializes
// Type (ii) rounds by construction.
type ForestEdgeRunner struct {
	v   Variant
	ord minlabel.Order

	next []uint64
	work []workEdge

	// Per-Run state referenced by the hoisted bodies.
	parent []uint32
	edges  []graph.Edge

	connectChanged  atomic.Bool
	shortcutChanged atomic.Bool

	packBody     func(lo, hi int)
	fillBody     func(lo, hi int)
	connectBody  func(lo, hi int)
	shortcutBody func(lo, hi int)
}

// NewForestEdgeRunner builds a reusable witness-capturing runner for a
// RootUp variant, returning ErrNotRootBased otherwise (only root-based
// variants support spanning forest, §3.4).
func NewForestEdgeRunner(v Variant) (*ForestEdgeRunner, error) {
	if !v.RootBased() {
		return nil, ErrNotRootBased
	}
	r := &ForestEdgeRunner{v: v, ord: ordNatural}
	r.packBody = r.runPack
	r.fillBody = r.runFill
	r.connectBody = r.runConnect
	r.shortcutBody = r.runShortcut
	return r, nil
}

func (r *ForestEdgeRunner) runPack(lo, hi int) {
	parent, next := r.parent, r.next
	for i := lo; i < hi; i++ {
		next[i] = concurrent.Pack(atomic.LoadUint32(&parent[i]), noWitnessRef)
	}
}

func (r *ForestEdgeRunner) runFill(lo, hi int) {
	edges, work := r.edges, r.work
	for i := lo; i < hi; i++ {
		work[i] = workEdge{a: edges[i].U, b: edges[i].V, orig: uint32(i)}
	}
}

func (r *ForestEdgeRunner) runConnect(lo, hi int) {
	ord, parent, next, work := r.ord, r.parent, r.next, r.work
	local := false
	for i := lo; i < hi; i++ {
		e := work[i]
		switch r.v.Connect {
		case Connect:
			local = offerRootPacked(ord, parent, next, e.a, e.b, e.orig) || local
			local = offerRootPacked(ord, parent, next, e.b, e.a, e.orig) || local
		case ParentConnect:
			pa := atomic.LoadUint32(&parent[e.a])
			pb := atomic.LoadUint32(&parent[e.b])
			local = offerRootPacked(ord, parent, next, e.a, pb, e.orig) || local
			local = offerRootPacked(ord, parent, next, e.b, pa, e.orig) || local
		}
	}
	if local {
		r.connectChanged.Store(true)
	}
}

func (r *ForestEdgeRunner) runShortcut(lo, hi int) {
	ord, parent := r.ord, r.parent
	local := false
	for i := lo; i < hi; i++ {
		p := atomic.LoadUint32(&parent[i])
		pp := atomic.LoadUint32(&parent[p])
		if pp != p && ord.WriteMin(&parent[i], pp) {
			local = true
		}
	}
	if local {
		r.shortcutChanged.Store(true)
	}
}

// Run refines parent over the batch edges until convergence, with the same
// round structure and termination condition as EdgeRunner.Run, and appends
// one witness edge per hooked root to forest. It returns the rounds
// executed and the grown forest. The input edge slice is never modified.
func (r *ForestEdgeRunner) Run(edges []graph.Edge, parent []uint32, forest []graph.Edge) (int, []graph.Edge) {
	n := len(parent)
	r.parent, r.edges = parent, edges
	if cap(r.next) < n {
		r.next = make([]uint64, n)
	}
	r.next = r.next[:n]
	if cap(r.work) < len(edges) {
		r.work = make([]workEdge, len(edges))
	}
	r.work = r.work[:len(edges)]
	parallel.ForGrained(len(edges), 2048, r.fillBody)
	rounds := 0
	for {
		rounds++
		parallel.ForGrained(n, 4096, r.packBody)
		r.connectChanged.Store(false)
		parallel.ForGrained(len(r.work), 512, r.connectBody)
		// Apply phase: install winning candidates and record the witness
		// edge of every root hooked away from itself. Serial — RunForest's
		// witness scan is serial for the same reason — and cheap relative
		// to the O(n) pack and shortcut sweeps already in the round.
		for i := 0; i < n; i++ {
			pri, ref := concurrent.Unpack(r.next[i])
			if r.ord.Less(pri, atomic.LoadUint32(&parent[i])) {
				atomic.StoreUint32(&parent[i], pri)
				if ref != noWitnessRef {
					forest = append(forest, edges[ref])
				}
			}
		}
		shortcutChanged := false
		for {
			r.shortcutChanged.Store(false)
			parallel.ForGrained(n, 1024, r.shortcutBody)
			changed := r.shortcutChanged.Load()
			shortcutChanged = shortcutChanged || changed
			if r.v.Shortcut == OneShortcut || !changed {
				break
			}
		}
		alterChanged := false
		if r.v.Alter == Alter {
			r.work, alterChanged = alterWork(r.work, parent)
		}
		if !r.connectChanged.Load() && !shortcutChanged && !alterChanged {
			r.parent, r.edges = nil, nil
			return rounds, forest
		}
	}
}
