// Package wire is the binary edge codec and framing behind the ingest fast
// path (DESIGN.md §13): edge blocks are zigzag-delta varint coded against
// the previous edge — the same §10 byte-coding that makes the compressed
// adjacency ~2x smaller — so sorted or locality-heavy batches cost a few
// bytes per edge on the wire and in the WAL instead of the fixed 8.
//
// A block is self-describing:
//
//	[1B tag][varint edge count][body]
//
// with tag TagDelta coding each edge as two zigzag varints — ΔU against
// the previous edge's U (first edge: against 0) and ΔV against the edge's
// own U, which is what exploits endpoint locality — and tag TagRaw holding
// plain little-endian uint32 pairs. Encoders emit whichever is smaller, so
// an adversarially random batch never pays more than one tag byte plus the
// count over the raw format; decoders accept both unconditionally.
//
// The same block bytes travel in three containers: the body of a
// POST /v1/update with Content-Type ContentTypeEdges, one frame of the
// persistent TCP ingest protocol ([4B LE block length][block], pipelined,
// acked in batches), and a WAL v2 record payload (CRC over the block
// bytes). Decoding is strict — a block must parse completely and consume
// exactly its input — so corruption surfaces as ErrMalformed everywhere.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"connectit/internal/graph"
	"connectit/internal/varint"
)

// ErrMalformed reports a block that does not parse: unknown tag, truncated
// or overlong varint, trailing bytes, or a count inconsistent with the
// body.
var ErrMalformed = errors.New("wire: malformed edge block")

const (
	// TagRaw marks a body of plain little-endian uint32 pairs.
	TagRaw = 0x00
	// TagDelta marks a zigzag-delta varint body.
	TagDelta = 0x01

	// Magic opens the TCP ingest exchange in both directions: the client
	// hello is Magic alone, the server hello Magic plus the vertex-universe
	// size as 8 little-endian bytes.
	Magic = "CEW1"

	// MaxFrameBytes bounds one TCP frame's block (and the HTTP binary
	// body): a corrupted length prefix must never drive a huge allocation.
	MaxFrameBytes = 1 << 26

	// AckOK, AckErr, and AckBusy lead a server→client ack. AckOK is followed
	// by the committed LSN (8B LE) and the number of just-acked frames (4B
	// LE) — acks are batched, covering every frame since the previous ack.
	// AckErr and AckBusy are both followed by a message length (4B LE) and
	// the message, and the server closes the connection after sending them;
	// they differ in contract: AckErr is terminal (the session's frames were
	// rejected — protocol or validation failure), while AckBusy is retryable
	// (the server is degraded or shutting down; nothing about the frames was
	// wrong, and a reconnecting client should retransmit its unacked window
	// after backoff — safe because unions are idempotent).
	AckOK   = 0x00
	AckErr  = 0x01
	AckBusy = 0x02

	// AckSize is the wire size of an AckOK message.
	AckSize = 1 + 8 + 4

	// ContentTypeEdges selects the binary fast path on POST /v1/update.
	ContentTypeEdges = "application/x-connectit-edges"
)

// AppendBlock appends edges as one block to dst, choosing the smaller of
// the delta and raw encodings, and returns the extended slice. Encoding
// into a reused scratch buffer is allocation-free once the buffer has
// grown to the workload's block size.
func AppendBlock(dst []byte, edges []graph.Edge) []byte {
	start := len(dst)
	dst = append(dst, TagDelta)
	dst = varint.Append(dst, uint64(len(edges)))
	prevU := int64(0)
	for _, e := range edges {
		u, v := int64(e.U), int64(e.V)
		dst = varint.Append(dst, varint.Zigzag(u-prevU))
		dst = varint.Append(dst, varint.Zigzag(v-u))
		prevU = u
	}
	if len(dst)-start <= rawBlockSize(len(edges)) {
		return dst
	}
	// The batch had no exploitable locality; rewrite as raw so the binary
	// path never regresses past 8 bytes/edge (+ header).
	dst = dst[:start]
	dst = append(dst, TagRaw)
	dst = varint.Append(dst, uint64(len(edges)))
	for _, e := range edges {
		dst = binary.LittleEndian.AppendUint32(dst, e.U)
		dst = binary.LittleEndian.AppendUint32(dst, e.V)
	}
	return dst
}

// rawBlockSize is the encoded size of a raw block holding count edges.
func rawBlockSize(count int) int {
	var buf [varint.MaxLen]byte
	return 1 + varint.Put(buf[:], uint64(count)) + 8*count
}

// DecodeBlock decodes exactly one block from src into buf (reused when its
// capacity suffices) and returns the edges and the number of bytes
// consumed. Anything that does not parse — including trailing garbage
// inside the stated body — is ErrMalformed; src beyond the block is left
// for the caller (frames carry one block each, so transports normally
// require n == len(src)).
func DecodeBlock(src []byte, buf []graph.Edge) (edges []graph.Edge, n int, err error) {
	if len(src) < 2 {
		return nil, 0, fmt.Errorf("%w: %d-byte block", ErrMalformed, len(src))
	}
	tag := src[0]
	count64, k := varint.Get(src[1:])
	if k == 0 {
		return nil, 0, fmt.Errorf("%w: bad count varint", ErrMalformed)
	}
	pos := 1 + k
	// Bound the allocation by what the remaining bytes could possibly
	// hold: a delta edge is at least 2 bytes, a raw edge exactly 8.
	minPer := 2
	if tag == TagRaw {
		minPer = 8
	}
	if count64 > uint64((len(src)-pos)/minPer) {
		return nil, 0, fmt.Errorf("%w: count %d exceeds body", ErrMalformed, count64)
	}
	count := int(count64)
	if cap(buf) < count {
		buf = make([]graph.Edge, count)
	} else {
		buf = buf[:count]
	}
	switch tag {
	case TagRaw:
		for i := 0; i < count; i++ {
			buf[i] = graph.Edge{
				U: binary.LittleEndian.Uint32(src[pos:]),
				V: binary.LittleEndian.Uint32(src[pos+4:]),
			}
			pos += 8
		}
	case TagDelta:
		prevU := int64(0)
		for i := 0; i < count; i++ {
			du, k := varint.Get(src[pos:])
			if k == 0 {
				return nil, 0, fmt.Errorf("%w: truncated ΔU at edge %d", ErrMalformed, i)
			}
			pos += k
			dv, k := varint.Get(src[pos:])
			if k == 0 {
				return nil, 0, fmt.Errorf("%w: truncated ΔV at edge %d", ErrMalformed, i)
			}
			pos += k
			u := prevU + varint.Unzigzag(du)
			v := u + varint.Unzigzag(dv)
			if uint64(u) > 0xffffffff || uint64(v) > 0xffffffff {
				return nil, 0, fmt.Errorf("%w: edge %d endpoint out of uint32 range", ErrMalformed, i)
			}
			buf[i] = graph.Edge{U: uint32(u), V: uint32(v)}
			prevU = u
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown tag 0x%02x", ErrMalformed, tag)
	}
	return buf, pos, nil
}

// CountBlock validates one block's structure — exactly the checks
// DecodeBlock applies, including endpoint range — without materializing
// edges, and returns the edge count and encoded length. The WAL scanner
// uses it at boot so validating a segment does not pay the decode
// allocation; a block CountBlock accepts always decodes.
func CountBlock(src []byte) (count int, n int, err error) {
	if len(src) < 2 {
		return 0, 0, fmt.Errorf("%w: %d-byte block", ErrMalformed, len(src))
	}
	tag := src[0]
	count64, k := varint.Get(src[1:])
	if k == 0 {
		return 0, 0, fmt.Errorf("%w: bad count varint", ErrMalformed)
	}
	pos := 1 + k
	switch tag {
	case TagRaw:
		if count64 > uint64((len(src)-pos)/8) {
			return 0, 0, fmt.Errorf("%w: count %d exceeds body", ErrMalformed, count64)
		}
		pos += int(count64) * 8
	case TagDelta:
		if count64 > uint64((len(src)-pos)/2) {
			return 0, 0, fmt.Errorf("%w: count %d exceeds body", ErrMalformed, count64)
		}
		prevU := int64(0)
		for i := 0; i < int(count64); i++ {
			du, k := varint.Get(src[pos:])
			if k == 0 {
				return 0, 0, fmt.Errorf("%w: truncated ΔU at edge %d", ErrMalformed, i)
			}
			pos += k
			dv, k := varint.Get(src[pos:])
			if k == 0 {
				return 0, 0, fmt.Errorf("%w: truncated ΔV at edge %d", ErrMalformed, i)
			}
			pos += k
			u := prevU + varint.Unzigzag(du)
			v := u + varint.Unzigzag(dv)
			if uint64(u) > 0xffffffff || uint64(v) > 0xffffffff {
				return 0, 0, fmt.Errorf("%w: edge %d endpoint out of uint32 range", ErrMalformed, i)
			}
			prevU = u
		}
	default:
		return 0, 0, fmt.Errorf("%w: unknown tag 0x%02x", ErrMalformed, tag)
	}
	return int(count64), pos, nil
}

// AppendFrame appends one TCP ingest frame — the 4-byte little-endian
// block length followed by the block — to dst.
func AppendFrame(dst []byte, edges []graph.Edge) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendBlock(dst, edges)
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// AppendAckOK appends a batched-commit ack: the last frames frames are
// durable (WAL enabled) and in the pipeline as of lsn.
func AppendAckOK(dst []byte, lsn uint64, frames uint32) []byte {
	dst = append(dst, AckOK)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return binary.LittleEndian.AppendUint32(dst, frames)
}

// AppendAckErr appends a terminal error ack carrying msg.
func AppendAckErr(dst []byte, msg string) []byte {
	dst = append(dst, AckErr)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...)
}

// AppendAckBusy appends a retryable busy ack carrying msg: the connection
// is about to close, but the client may reconnect, retransmit its unacked
// frames, and continue.
func AppendAckBusy(dst []byte, msg string) []byte {
	dst = append(dst, AckBusy)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(msg)))
	return append(dst, msg...)
}

// ParseAckOK splits an AckOK body (the AckSize-1 bytes after the status
// byte) into its LSN and frame count.
func ParseAckOK(body []byte) (lsn uint64, frames uint32) {
	return binary.LittleEndian.Uint64(body[0:8]), binary.LittleEndian.Uint32(body[8:12])
}
