package wire

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"connectit/internal/graph"
)

func roundTrip(t *testing.T, edges []graph.Edge) []byte {
	t.Helper()
	block := AppendBlock(nil, edges)
	got, n, err := DecodeBlock(block, nil)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	if n != len(block) {
		t.Fatalf("DecodeBlock consumed %d of %d bytes", n, len(block))
	}
	if len(got) != len(edges) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: got %v want %v", i, got[i], edges[i])
		}
	}
	return block
}

func TestBlockRoundTrip(t *testing.T) {
	cases := map[string][]graph.Edge{
		"empty":      {},
		"single":     {{U: 7, V: 9}},
		"self-loop":  {{U: 3, V: 3}},
		"sorted-run": {{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}},
		"extremes":   {{U: 0, V: 0xffffffff}, {U: 0xffffffff, V: 0}, {U: 0xffffffff, V: 0xffffffff}},
		"descending": {{U: 100, V: 90}, {U: 50, V: 40}, {U: 0, V: 10}},
	}
	rng := rand.New(rand.NewSource(11))
	rnd := make([]graph.Edge, 500)
	for i := range rnd {
		rnd[i] = graph.Edge{U: rng.Uint32(), V: rng.Uint32()}
	}
	cases["random"] = rnd
	local := make([]graph.Edge, 500)
	base := uint32(1 << 20)
	for i := range local {
		u := base + uint32(i)
		local[i] = graph.Edge{U: u, V: u + uint32(rng.Intn(64))}
	}
	cases["locality"] = local
	for name, edges := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, edges) })
	}
}

// TestDeltaCompresses pins the tentpole's size claim: sorted and locality-
// heavy batches must encode well below 8 bytes/edge, and the raw fallback
// caps adversarial batches at raw size + header.
func TestDeltaCompresses(t *testing.T) {
	edges := make([]graph.Edge, 4096)
	for i := range edges {
		u := uint32(i)
		edges[i] = graph.Edge{U: u, V: u + 1 + uint32(i%32)}
	}
	block := roundTrip(t, edges)
	if perEdge := float64(len(block)) / float64(len(edges)); perEdge >= 4 {
		t.Fatalf("sorted batch encodes at %.2f bytes/edge, want < 4", perEdge)
	}
	rng := rand.New(rand.NewSource(13))
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Uint32(), V: rng.Uint32()}
	}
	block = roundTrip(t, edges)
	if block[0] != TagRaw {
		t.Fatalf("random batch encoded with tag %d, want raw fallback", block[0])
	}
	if len(block) > 8*len(edges)+3 {
		t.Fatalf("raw fallback is %d bytes for %d edges", len(block), len(edges))
	}
}

func TestDecodeReusesBuffer(t *testing.T) {
	edges := []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}
	block := AppendBlock(nil, edges)
	buf := make([]graph.Edge, 0, 16)
	got, _, err := DecodeBlock(block, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("DecodeBlock allocated despite sufficient buffer capacity")
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := AppendBlock(nil, []graph.Edge{{U: 5, V: 6}, {U: 7, V: 8}})
	cases := map[string][]byte{
		"empty":          {},
		"tag-only":       {TagDelta},
		"unknown-tag":    {0x7f, 0x01, 0x00, 0x00},
		"count-overrun":  {TagDelta, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"truncated-body": good[:len(good)-1],
		"raw-short":      {TagRaw, 0x02, 1, 2, 3, 4, 5, 6, 7, 8},
		// ΔV pushes V past uint32: U=0, then zigzag(2^33).
		"overflow-v": append([]byte{TagDelta, 0x01, 0x00}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01),
	}
	for name, src := range cases {
		if _, _, err := DecodeBlock(src, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
	// Truncation inside a varint run, at every cut of a delta block.
	edges := []graph.Edge{{U: 1000, V: 2000}, {U: 1001, V: 500000}, {U: 9, V: 1 << 30}}
	block := AppendBlock(nil, edges)
	if block[0] != TagDelta {
		t.Fatal("test batch unexpectedly took the raw fallback")
	}
	for cut := 0; cut < len(block); cut++ {
		if _, _, err := DecodeBlock(block[:cut], nil); err == nil {
			t.Fatalf("cut=%d: truncated block decoded successfully", cut)
		}
	}
}

func TestFrameLayout(t *testing.T) {
	edges := []graph.Edge{{U: 1, V: 2}}
	frame := AppendFrame(nil, edges)
	n := binary.LittleEndian.Uint32(frame[0:4])
	if int(n) != len(frame)-4 {
		t.Fatalf("frame length prefix %d, body %d", n, len(frame)-4)
	}
	got, k, err := DecodeBlock(frame[4:], nil)
	if err != nil || k != int(n) || len(got) != 1 || got[0] != edges[0] {
		t.Fatalf("frame body decode: %v %d %v", got, k, err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	ack := AppendAckOK(nil, 0xdeadbeefcafe, 42)
	if len(ack) != AckSize || ack[0] != AckOK {
		t.Fatalf("AckOK encoded to %d bytes, status %d", len(ack), ack[0])
	}
	lsn, frames := ParseAckOK(ack[1:])
	if lsn != 0xdeadbeefcafe || frames != 42 {
		t.Fatalf("ParseAckOK = (%d, %d)", lsn, frames)
	}
	e := AppendAckErr(nil, "boom")
	if e[0] != AckErr || binary.LittleEndian.Uint32(e[1:5]) != 4 || string(e[5:]) != "boom" {
		t.Fatalf("AckErr layout: % x", e)
	}
}

// FuzzDecodeBlock feeds arbitrary bytes to the decoder: it must never
// panic or allocate past the input-proportional bound, and anything it
// accepts must re-encode to an equivalent block (decode∘encode∘decode
// fixpoint).
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{TagDelta, 0x02, 0x02, 0x02, 0x02, 0x02})
	f.Add([]byte{TagRaw, 0x01, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add(AppendBlock(nil, []graph.Edge{{U: 5, V: 1 << 30}, {U: 0xffffffff, V: 0}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, n, err := DecodeBlock(data, nil)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := AppendBlock(nil, append([]graph.Edge(nil), edges...))
		got, _, err := DecodeBlock(re, nil)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(got) != len(edges) {
			t.Fatalf("re-encode changed count: %d != %d", len(got), len(edges))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
			}
		}
	})
}

// FuzzBlockRoundTrip builds edges from fuzz bytes and checks the encoder/
// decoder pair is lossless for every input.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		edges := make([]graph.Edge, 0, len(data)/8)
		for len(data) >= 8 {
			edges = append(edges, graph.Edge{
				U: binary.LittleEndian.Uint32(data[0:4]),
				V: binary.LittleEndian.Uint32(data[4:8]),
			})
			data = data[8:]
		}
		block := AppendBlock(nil, edges)
		got, n, err := DecodeBlock(block, nil)
		if err != nil || n != len(block) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
			}
		}
	})
}
