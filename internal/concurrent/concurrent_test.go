package concurrent

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteMinSequential(t *testing.T) {
	x := uint32(10)
	if !WriteMin(&x, 5) {
		t.Fatal("WriteMin(10->5) should succeed")
	}
	if x != 5 {
		t.Fatalf("x = %d, want 5", x)
	}
	if WriteMin(&x, 7) {
		t.Fatal("WriteMin(5->7) should fail")
	}
	if WriteMin(&x, 5) {
		t.Fatal("WriteMin(5->5) should fail (strict)")
	}
	if x != 5 {
		t.Fatalf("x = %d, want 5", x)
	}
}

func TestWriteMinConcurrentKeepsMinimum(t *testing.T) {
	const writers = 64
	const perWriter = 1000
	x := ^uint32(0)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				WriteMin(&x, uint32(w*perWriter+i+1))
			}
		}(w)
	}
	wg.Wait()
	if x != 1 {
		t.Fatalf("concurrent WriteMin final = %d, want 1", x)
	}
}

func TestWriteMinKeyedFavored(t *testing.T) {
	const favored = 99
	less := func(a, b uint32) bool {
		if a == favored {
			return b != favored
		}
		if b == favored {
			return false
		}
		return a < b
	}
	x := uint32(3)
	if !WriteMinKeyed(&x, favored, less) {
		t.Fatal("favored label should beat 3")
	}
	if WriteMinKeyed(&x, 0, less) {
		t.Fatal("nothing should beat the favored label")
	}
	if x != favored {
		t.Fatalf("x = %d, want %d", x, favored)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(pri, pay uint32) bool {
		p, q := Unpack(Pack(pri, pay))
		return p == pri && q == pay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackOrdersByPriority(t *testing.T) {
	f := func(p1, p2, a, b uint32) bool {
		if p1 == p2 {
			return true
		}
		lo, hi := p1, p2
		if lo > hi {
			lo, hi = hi, lo
		}
		return Pack(lo, a) < Pack(hi, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMinPackedCarriesPayload(t *testing.T) {
	x := Pack(^uint32(0), 0)
	if !WriteMinPacked(&x, 10, 111) {
		t.Fatal("first writeMin should succeed")
	}
	if WriteMinPacked(&x, 10, 222) {
		t.Fatal("equal priority must not overwrite (strict min)")
	}
	if !WriteMinPacked(&x, 3, 333) {
		t.Fatal("smaller priority should win")
	}
	pri, pay := Unpack(x)
	if pri != 3 || pay != 333 {
		t.Fatalf("got (%d,%d), want (3,333)", pri, pay)
	}
}

func TestWriteMinPackedConcurrent(t *testing.T) {
	const writers = 32
	x := Pack(^uint32(0), 0)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := uint32(w*500 + i + 1)
				WriteMinPacked(&x, v, v*2)
			}
		}(w)
	}
	wg.Wait()
	pri, pay := Unpack(x)
	if pri != 1 || pay != 2 {
		t.Fatalf("got (%d,%d), want (1,2)", pri, pay)
	}
}

func TestSpinlockMutualExclusion(t *testing.T) {
	var lock Spinlock
	var counter int
	var wg sync.WaitGroup
	const workers = 16
	const iters = 2000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestSpinlockTryLock(t *testing.T) {
	var lock Spinlock
	if !lock.TryLock() {
		t.Fatal("TryLock on free lock should succeed")
	}
	if lock.TryLock() {
		t.Fatal("TryLock on held lock should fail")
	}
	lock.Unlock()
	if !lock.TryLock() {
		t.Fatal("TryLock after Unlock should succeed")
	}
}
