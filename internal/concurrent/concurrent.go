// Package concurrent provides the low-level atomic primitives used by all
// ConnectIt algorithms: compare-and-swap helpers, writeMin (priority update),
// a packed 64-bit writeMin that carries a witness value alongside the
// priority, and a small test-and-test-and-set spinlock.
//
// All label mutations in this repository are monotone decreasing and go
// through these primitives, so concurrent interleavings can never regress a
// label (see DESIGN.md §4).
package concurrent

import (
	"runtime"
	"sync/atomic"
)

// WriteMin atomically updates *addr to val if val is smaller than the value
// stored at *addr. It returns true if the update was performed by this call.
// WriteMin is the priority-update primitive of Shun et al. (SPAA'13) used by
// Shiloach-Vishkin, Liu-Tarjan, and Label-Propagation.
func WriteMin(addr *uint32, val uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// WriteMinKeyed is WriteMin under a custom total order given by less.
// It is used to implement the "favored label" order for sampled min-based
// algorithms, where the label of the largest sampled component compares
// smaller than every other label (DESIGN.md §4).
func WriteMinKeyed(addr *uint32, val uint32, less func(a, b uint32) bool) bool {
	for {
		old := atomic.LoadUint32(addr)
		if !less(val, old) {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// Pack combines a 32-bit priority and a 32-bit witness payload into a single
// uint64 such that numeric comparison of packed values orders first by
// priority and then by payload. The minimum packed value therefore carries
// the minimum priority.
func Pack(priority, payload uint32) uint64 {
	return uint64(priority)<<32 | uint64(payload)
}

// Unpack splits a packed value into its priority and payload halves.
func Unpack(packed uint64) (priority, payload uint32) {
	return uint32(packed >> 32), uint32(packed)
}

// WriteMinPacked atomically updates *addr to the packed (priority, payload)
// pair if priority is strictly smaller than the priority currently stored.
// The payload rides along with the winning priority, which lets writeMin
// based hooks (Shiloach-Vishkin, RootUp Liu-Tarjan) record the witness edge
// of the final successful hook without a second racey store.
func WriteMinPacked(addr *uint64, priority, payload uint32) bool {
	packed := Pack(priority, payload)
	for {
		old := atomic.LoadUint64(addr)
		if priority >= uint32(old>>32) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, packed) {
			return true
		}
	}
}

// Spinlock is a test-and-test-and-set spinlock. It is used for the
// lock-based variant of Rem's algorithm (Patwary et al.), where the critical
// sections are a handful of instructions and a full mutex would dominate.
// The zero value is an unlocked Spinlock.
type Spinlock struct {
	state atomic.Uint32
}

// Lock acquires the spinlock, yielding the processor between attempts.
func (s *Spinlock) Lock() {
	for {
		if s.state.Load() == 0 && s.state.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// TryLock attempts to acquire the lock without blocking and reports whether
// it succeeded.
func (s *Spinlock) TryLock() bool {
	return s.state.Load() == 0 && s.state.CompareAndSwap(0, 1)
}

// Unlock releases the spinlock. It must only be called by the holder.
func (s *Spinlock) Unlock() {
	s.state.Store(0)
}
