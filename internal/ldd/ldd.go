// Package ldd implements the Miller–Peng–Xu low-diameter decomposition used
// by ConnectIt's LDD sampling (§3.2) and the work-efficient connectivity
// baseline of Shun et al. [94].
//
// Each vertex draws an independent geometric start time with parameter beta
// (the discrete analog of the exponential shifts in MPX); at round t every
// still-uncovered vertex whose start time has arrived begins a cluster, and
// all clusters expand by one synchronous BFS step per round, claiming
// vertices with CAS. The result is a partition into clusters of strong
// diameter O(log n / beta), cutting O(beta*m) edges in expectation.
package ldd

import (
	"math"
	"sync"
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// Options configures a decomposition.
type Options struct {
	// Beta is the decomposition parameter in (0, 1]: larger beta gives
	// smaller clusters and more cut edges.
	Beta float64
	// Permute randomizes which vertices receive early start times. With
	// Permute false, start times follow the original vertex order, which
	// mirrors the paper's non-permuted variant (Figures 19-21).
	Permute bool
	// Seed drives the geometric samples.
	Seed uint64
	// MaxRounds, when positive, stops the decomposition after that many
	// synchronous rounds, leaving still-uncovered vertices as singleton
	// clusters. Sampling uses this to bound the cost of the decomposition
	// (a partial clustering still satisfies Definition 3.1); the full
	// decomposition (MaxRounds == 0) is what WorkEfficientCC consumes.
	MaxRounds int
}

// Result holds a decomposition.
type Result struct {
	// Cluster[v] is the cluster center that claimed v (Cluster[c] == c for
	// centers). Every vertex is assigned.
	Cluster []graph.Vertex
	// Parent[v] is the vertex that claimed v during cluster growth
	// (Parent[c] == c for centers); these edges form a BFS forest of the
	// clusters and supply spanning-forest witnesses (Definition B.2).
	Parent []graph.Vertex
	// Rounds is the number of synchronous expansion rounds.
	Rounds int
}

// Decompose partitions g into low-diameter clusters. It is generic over the
// graph representation (graph.Rep), so cluster growth runs directly on
// compressed encodings.
func Decompose[G graph.Rep](g G, opt Options) *Result {
	n := g.NumVertices()
	beta := opt.Beta
	if beta <= 0 || beta > 1 {
		beta = 0.2
	}
	cluster := make([]graph.Vertex, n)
	parent := make([]graph.Vertex, n)
	start := make([]uint32, n)
	parallel.For(n, func(i int) {
		cluster[i] = graph.None
		parent[i] = graph.None
		// MPX exponential shifts: the number of clusters started by round t
		// grows as e^(beta*t), so the vertex of rank r wakes at round
		// ln(r+1)/beta — one cluster at round zero, exponentially more
		// later. This is the "add vertices according to an exponential
		// distribution in order of the permutation" simulation of §3.2.
		rank := uint64(i)
		if opt.Permute {
			rank = graph.Hash64(uint64(i)^opt.Seed) % uint64(n)
		}
		start[i] = uint32(math.Log1p(float64(rank)) / beta)
	})

	// Bucket vertices by start round so each round wakes only its own
	// candidates instead of scanning all n vertices per round.
	maxStart := uint32(0)
	for _, s := range start {
		if s > maxStart {
			maxStart = s
		}
	}
	buckets := make([][]graph.Vertex, maxStart+1)
	for v, s := range start {
		buckets[s] = append(buckets[s], graph.Vertex(v))
	}

	covered := 0
	round := uint32(0)
	epoch := make([]uint32, n)
	var frontier []graph.Vertex
	for covered < n {
		// Wake uncovered vertices whose start time has arrived; they become
		// centers of their own clusters.
		var centers []graph.Vertex
		if round <= maxStart {
			for _, c := range buckets[round] {
				if cluster[c] == graph.None {
					centers = append(centers, c)
				}
			}
		} else if len(frontier) == 0 {
			// Past the last start time with an empty frontier: all
			// remaining uncovered vertices become centers (cannot happen
			// with geometric starts, but keeps the loop total).
			centers = parallel.FilterIndices(n, func(i int) bool {
				return cluster[i] == graph.None
			})
		}
		for _, c := range centers {
			// centers is computed from a quiescent snapshot; direct stores.
			cluster[c] = c
			parent[c] = c
		}
		frontier = append(frontier, centers...)
		covered += len(centers)

		// One synchronous expansion step for all active clusters, direction
		// optimized like BFS: when the frontier is edge-heavy, unclaimed
		// vertices scan for any frontier neighbor and adopt its cluster
		// (MPX permits arbitrary tie-breaking among simultaneous claims).
		frontierEdges := parallel.ReduceAdd(len(frontier), func(i int) uint64 {
			return uint64(g.Degree(frontier[i]))
		})
		var next []graph.Vertex
		if frontierEdges+uint64(len(frontier)) > uint64(g.NumDirectedEdges())/20 {
			cur := 2*uint32(round) + 1
			parallel.For(len(frontier), func(i int) {
				atomic.StoreUint32(&epoch[frontier[i]], cur)
			})
			parallel.ForGrained(n, 1024, func(lo, hi int) {
				var buf []graph.Vertex
				for v := lo; v < hi; v++ {
					if atomic.LoadUint32(&cluster[v]) != graph.None {
						continue
					}
					buf = g.NeighborsInto(graph.Vertex(v), buf)
					for _, u := range buf {
						if atomic.LoadUint32(&epoch[u]) == cur {
							atomic.StoreUint32(&cluster[v], atomic.LoadUint32(&cluster[u]))
							atomic.StoreUint32(&parent[v], u)
							atomic.StoreUint32(&epoch[v], cur+1)
							break
						}
					}
				}
			})
			next = parallel.FilterIndices(n, func(i int) bool { return epoch[i] == cur+1 })
		} else {
			var mu sync.Mutex
			parallel.ForGrained(len(frontier), 64, func(lo, hi int) {
				var local, buf []graph.Vertex
				for i := lo; i < hi; i++ {
					v := frontier[i]
					cv := cluster[v]
					buf = g.NeighborsInto(v, buf)
					for _, u := range buf {
						if atomic.LoadUint32(&cluster[u]) == graph.None &&
							atomic.CompareAndSwapUint32(&cluster[u], graph.None, cv) {
							atomic.StoreUint32(&parent[u], v)
							local = append(local, u)
						}
					}
				}
				if len(local) > 0 {
					mu.Lock()
					next = append(next, local...)
					mu.Unlock()
				}
			})
		}
		covered += len(next)
		frontier = next
		round++
		if opt.MaxRounds > 0 && int(round) >= opt.MaxRounds {
			break
		}
	}
	if covered < n {
		// Round budget exhausted: uncovered vertices become singletons.
		parallel.For(n, func(i int) {
			if cluster[i] == graph.None {
				cluster[i] = graph.Vertex(i)
				parent[i] = graph.Vertex(i)
			}
		})
	}
	return &Result{Cluster: cluster, Parent: parent, Rounds: int(round)}
}

// NumClusters counts the distinct clusters in a decomposition.
func (r *Result) NumClusters() int {
	return int(parallel.Count(len(r.Cluster), func(i int) bool {
		return r.Cluster[i] == graph.Vertex(i)
	}))
}

// CutEdges counts the directed edges of g whose endpoints lie in different
// clusters (the paper's inter-cluster edge statistic, Figures 19-20).
func (r *Result) CutEdges(g *graph.Graph) uint64 {
	n := g.NumVertices()
	return parallel.ReduceAdd(n, func(i int) uint64 {
		var c uint64
		ci := r.Cluster[i]
		for _, u := range g.Neighbors(graph.Vertex(i)) {
			if r.Cluster[u] != ci {
				c++
			}
		}
		return c
	})
}
