package ldd

import (
	"testing"

	"connectit/internal/graph"
)

func checkDecomposition(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		c := r.Cluster[v]
		if c == graph.None {
			t.Fatalf("vertex %d unassigned", v)
		}
		if r.Cluster[c] != c {
			t.Fatalf("cluster id %d of vertex %d is not a center", c, v)
		}
		p := r.Parent[v]
		if p == graph.None {
			t.Fatalf("vertex %d has no growth parent", v)
		}
		if graph.Vertex(v) == c {
			if p != c {
				t.Fatalf("center %d parent = %d", c, p)
			}
			continue
		}
		if r.Cluster[p] != c {
			t.Fatalf("vertex %d parent %d in different cluster", v, p)
		}
		// Parent edges must be graph edges.
		found := false
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("growth edge %d->%d not in graph", v, p)
		}
	}
	// Clusters must be connected: following parents reaches the center.
	for v := 0; v < n; v++ {
		x := graph.Vertex(v)
		for steps := 0; x != r.Cluster[v]; steps++ {
			x = r.Parent[x]
			if steps > n {
				t.Fatalf("parent chain from %d does not reach center", v)
			}
		}
	}
}

func TestDecomposeCoversFixtures(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":    graph.Path(200),
		"grid":    graph.Grid2D(25, 25),
		"star":    graph.Star(300),
		"rmat":    graph.RMAT(11, 16000, 0.57, 0.19, 0.19, 2),
		"cliques": graph.Cliques(5, 10),
		"empty":   graph.Build(10, nil),
	}
	for name, g := range graphs {
		for _, permute := range []bool{false, true} {
			r := Decompose(g, Options{Beta: 0.2, Permute: permute, Seed: 42})
			t.Run(name, func(t *testing.T) { checkDecomposition(t, g, r) })
		}
	}
}

func TestBetaControlsClusterCount(t *testing.T) {
	g := graph.Grid2D(60, 60)
	low := Decompose(g, Options{Beta: 0.05, Seed: 1})
	high := Decompose(g, Options{Beta: 0.8, Seed: 1})
	if low.NumClusters() >= high.NumClusters() {
		t.Fatalf("beta=0.05 gives %d clusters, beta=0.8 gives %d; want fewer at low beta",
			low.NumClusters(), high.NumClusters())
	}
	if low.CutEdges(g) >= high.CutEdges(g) {
		t.Fatalf("beta=0.05 cuts %d edges, beta=0.8 cuts %d; want fewer at low beta",
			low.CutEdges(g), high.CutEdges(g))
	}
}

func TestClustersNeverSpanComponents(t *testing.T) {
	g := graph.Cliques(6, 20)
	r := Decompose(g, Options{Beta: 0.1, Seed: 3})
	// Vertices in different cliques must be in different clusters.
	for v := 0; v < g.NumVertices(); v++ {
		if int(r.Cluster[v])/20 != v/20 {
			t.Fatalf("cluster of %d spans cliques (center %d)", v, r.Cluster[v])
		}
	}
}

func TestDefaultBetaOnBadInput(t *testing.T) {
	g := graph.Path(50)
	r := Decompose(g, Options{Beta: -1})
	checkDecomposition(t, g, r)
}
