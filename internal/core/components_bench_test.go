package core

// Benchmarks for the flattened-label component reductions, against the
// map-based implementations they replaced (kept here as baselines).

import (
	"testing"
)

// numComponentsMap is the previous sequential hash-map implementation.
func numComponentsMap(labels []uint32) int {
	count := 0
	seen := make(map[uint32]struct{}, 64)
	for _, l := range labels {
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			count++
		}
	}
	return count
}

// largestComponentMap is the previous sequential hash-map implementation.
func largestComponentMap(labels []uint32) (uint32, int) {
	counts := make(map[uint32]int)
	for _, l := range labels {
		counts[l]++
	}
	var best uint32
	bestC := 0
	for l, c := range counts {
		if c > bestC || (c == bestC && l < best) {
			best, bestC = l, c
		}
	}
	return best, bestC
}

// benchLabels builds a flattened labeling of n vertices in blocks of the
// given size (each block's root is its first vertex).
func benchLabels(n, block int) []uint32 {
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i - i%block)
	}
	return labels
}

func TestComponentReductionsMatchMapBaselines(t *testing.T) {
	cases := map[string][]uint32{
		"singletons": benchLabels(10_000, 1),
		"block7":     benchLabels(10_000, 7),
		"block1024":  benchLabels(10_000, 1024),
		"one-comp":   benchLabels(10_000, 10_000),
		// Not flattened / out of range: must hit the map fallbacks instead
		// of miscounting or panicking.
		"chain":        {1, 2, 3, 3},
		"out-of-range": {7, 7, 1_000_000, 2},
	}
	for name, labels := range cases {
		if got, want := NumComponents(labels), numComponentsMap(labels); got != want {
			t.Errorf("%s: NumComponents = %d, want %d", name, got, want)
		}
		gotL, gotC := LargestComponent(labels)
		wantL, wantC := largestComponentMap(labels)
		if gotL != wantL || gotC != wantC {
			t.Errorf("%s: LargestComponent = (%d,%d), want (%d,%d)", name, gotL, gotC, wantL, wantC)
		}
	}
	if n := NumComponents(nil); n != 0 {
		t.Errorf("NumComponents(nil) = %d", n)
	}
	if l, c := LargestComponent(nil); l != 0 || c != 0 {
		t.Errorf("LargestComponent(nil) = (%d,%d)", l, c)
	}
}

// benchShapes covers the two real labeling shapes: many medium components,
// and the dominant-component shape (one root covering nearly everything)
// that Connectivity outputs on connected graphs.
func benchShapes() map[string][]uint32 {
	return map[string][]uint32{
		"blocks1024": benchLabels(1<<22, 1024),
		"dominant":   benchLabels(1<<22, 1<<22),
	}
}

func BenchmarkNumComponents(b *testing.B) {
	for shape, labels := range benchShapes() {
		b.Run("parallel/"+shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NumComponents(labels)
			}
		})
		b.Run("map/"+shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				numComponentsMap(labels)
			}
		})
	}
}

func BenchmarkLargestComponent(b *testing.B) {
	for shape, labels := range benchShapes() {
		b.Run("parallel/"+shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				LargestComponent(labels)
			}
		})
		b.Run("map/"+shape, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				largestComponentMap(labels)
			}
		})
	}
}
