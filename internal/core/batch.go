package core

import (
	"slices"

	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// Batch preprocessing per Algorithm 3 (§3.5): before a large batch reaches
// the union loop, its edges are normalized, parallel-semisorted by a hash
// of the endpoint pair, and deduplicated. Streams repeat edges heavily
// (social streams resend hot pairs; coalesced epochs concatenate shards
// that saw the same edge), and every duplicate that survives to the union
// loop costs a contended find/CAS for Type i/iii or inflates the
// synchronous round for Type ii — removing them up front costs one sort of
// the batch, embarrassingly parallel across buckets.

// dedupMinBatch is the batch size below which preprocessing costs more
// than the duplicates it removes: small batches go straight to the union
// loop.
const dedupMinBatch = 1 << 12

// selfLoopKey is the normalized key given to self-loops so one compaction
// pass drops them alongside duplicates. It only collides with the edge
// (MaxUint32, MaxUint32), which is itself a self-loop.
const selfLoopKey = ^uint64(0)

// preprocessBatch returns updates with self-loops and duplicate edges
// removed (treating (u,v) and (v,u) as the same edge), in semisorted
// order. The input slice is not modified. The semisort is the two-pass
// parallel counting pattern of internal/parallel: hash-partition the
// normalized keys into buckets, sort and compact each bucket
// independently, and concatenate by prefix sums.
func preprocessBatch(updates []graph.Edge) []graph.Edge {
	m := len(updates)
	if m == 0 {
		return nil
	}

	// Normalize: undirected key min<<32|max; self-loops get the sentinel.
	keys := make([]uint64, m)
	parallel.ForGrained(m, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := updates[i].U, updates[i].V
			if u == v {
				keys[i] = selfLoopKey
				continue
			}
			if u > v {
				u, v = v, u
			}
			keys[i] = uint64(u)<<32 | uint64(v)
		}
	})

	// With one worker the hash partition is pure overhead (two extra passes
	// over the batch): sort and compact the keys directly.
	if parallel.Procs() == 1 {
		slices.Sort(keys)
		w := 0
		for i, k := range keys {
			if k == selfLoopKey {
				break // sentinels sort last
			}
			if i > 0 && k == keys[i-1] {
				continue
			}
			keys[w] = k
			w++
		}
		out := make([]graph.Edge, w)
		for i, k := range keys[:w] {
			out[i] = graph.Edge{U: uint32(k >> 32), V: uint32(k)}
		}
		return out
	}

	// Hash-partition into buckets sized for ~8K keys each, so per-bucket
	// sorts stay cache-resident and load-balance across workers.
	logB := 0
	for m>>(logB+13) > 0 && logB < 9 {
		logB++
	}
	nb := 1 << logB
	shift := 64 - logB

	const grain = 8192
	blocks := (m + grain - 1) / grain

	// Pass 1: per-(bucket, block) histogram, laid out bucket-major so one
	// exclusive scan yields every block's write cursor and every bucket's
	// start. Block c writes only column c: no contention.
	counts := make([]uint64, nb*blocks)
	parallel.ForGrained(blocks, 1, func(blo, bhi int) {
		for c := blo; c < bhi; c++ {
			lo, hi := c*grain, min((c+1)*grain, m)
			for i := lo; i < hi; i++ {
				counts[int(bucketOf(keys[i], shift))*blocks+c]++
			}
		}
	})
	parallel.ScanExclusive(counts)

	// Pass 2: scatter keys to their bucket slots.
	sorted := make([]uint64, m)
	parallel.ForGrained(blocks, 1, func(blo, bhi int) {
		cursors := make([]uint64, nb)
		for c := blo; c < bhi; c++ {
			for b := 0; b < nb; b++ {
				cursors[b] = counts[b*blocks+c]
			}
			lo, hi := c*grain, min((c+1)*grain, m)
			for i := lo; i < hi; i++ {
				b := bucketOf(keys[i], shift)
				sorted[cursors[b]] = keys[i]
				cursors[b]++
			}
		}
	})

	// Pass 3: sort each bucket and compact duplicates (and self-loop
	// sentinels) in place; uniq counts feed the final placement scan.
	uniq := make([]uint64, nb)
	bucketSpan := func(b int) (uint64, uint64) {
		start := counts[b*blocks]
		end := uint64(m)
		if b+1 < nb {
			end = counts[(b+1)*blocks]
		}
		return start, end
	}
	parallel.ForGrained(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			start, end := bucketSpan(b)
			bucket := sorted[start:end]
			slices.Sort(bucket)
			w := 0
			for i := range bucket {
				if bucket[i] == selfLoopKey {
					break // sentinels sort last within the bucket
				}
				if i > 0 && bucket[i] == bucket[i-1] {
					continue
				}
				bucket[w] = bucket[i]
				w++
			}
			uniq[b] = uint64(w)
		}
	})
	total := parallel.ScanExclusive(uniq)

	// Pass 4: decode the surviving keys back into one compact edge slice.
	out := make([]graph.Edge, total)
	parallel.ForGrained(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			start, _ := bucketSpan(b)
			pos := uniq[b]
			var next uint64
			if b+1 < nb {
				next = uniq[b+1]
			} else {
				next = total
			}
			for i := start; pos < next; i++ {
				k := sorted[i]
				out[pos] = graph.Edge{U: uint32(k >> 32), V: uint32(k)}
				pos++
			}
		}
	})
	return out
}

// bucketOf spreads a normalized edge key over 1<<(64-shift) buckets by a
// multiplicative hash (endpoint pairs are heavily skewed toward hub
// vertices; hashing keeps the partition balanced anyway).
func bucketOf(key uint64, shift int) uint64 {
	if shift >= 64 {
		return 0
	}
	return (key * 0x9e3779b97f4a7c15) >> shift
}
