package core

import (
	"slices"

	"connectit/internal/graph"
	"connectit/internal/parallel"
)

// Batch preprocessing per Algorithm 3 (§3.5): before a large batch reaches
// the union loop, its edges are normalized, parallel-semisorted by a hash
// of the endpoint pair, and deduplicated. Streams repeat edges heavily
// (social streams resend hot pairs; coalesced epochs concatenate shards
// that saw the same edge), and every duplicate that survives to the union
// loop costs a contended find/CAS for Type i/iii or inflates the
// synchronous round for Type ii — removing them up front costs one sort of
// the batch, embarrassingly parallel across buckets.
//
// On duplicate-free streams the sort is pure overhead (~15% at 64K-edge
// epochs), so whether to run it is decided per batch: a DedupHint from the
// stream options forces it on or off, and the default (DedupAuto) samples
// the batch to estimate the duplicate rate first — see shouldDedup.

// dedupMinBatch is the batch size below which preprocessing costs more
// than the duplicates it removes: small batches go straight to the union
// loop.
const dedupMinBatch = 1 << 12

// dedupSampleSize is the number of edges DedupAuto samples per batch.
const dedupSampleSize = 1024

// dedupRateThreshold is the estimated duplicate rate below which the
// semisort is skipped: under ~5% duplicates the sort's fixed multi-pass
// cost exceeds the contended unions (or synchronous-round inflation) the
// removed duplicates would have caused.
const dedupRateThreshold = 0.05

// DedupHint tells ApplyBatch whether the Algorithm 3 semisort-dedup is
// worth running on this stream's batches.
type DedupHint int

const (
	// DedupAuto estimates each batch's duplicate rate from a sample and
	// sorts only when it clears dedupRateThreshold (the default).
	DedupAuto DedupHint = iota
	// DedupAlways preprocesses every batch above dedupMinBatch — for
	// streams the producer knows to be duplicate-heavy.
	DedupAlways
	// DedupNever disables preprocessing — for streams the producer knows
	// to be (essentially) duplicate-free.
	DedupNever
)

func (h DedupHint) String() string {
	switch h {
	case DedupAuto:
		return "auto"
	case DedupAlways:
		return "always"
	case DedupNever:
		return "never"
	}
	return "unknown"
}

// selfLoopKey is the normalized key given to self-loops so one compaction
// pass drops them alongside duplicates. It only collides with the edge
// (MaxUint32, MaxUint32), which is itself a self-loop.
const selfLoopKey = ^uint64(0)

// edgeKey is the normalized undirected key min<<32|max; self-loops get the
// sentinel.
func edgeKey(e graph.Edge) uint64 {
	u, v := e.U, e.V
	if u == v {
		return selfLoopKey
	}
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// batchScratch holds the preprocessing buffers an Incremental reuses
// across ApplyBatch calls: the semisort's key/bucket arrays, the output
// edge buffer, and the duplicate-rate estimator's sample table. Steady
// state apply rounds therefore allocate nothing here.
type batchScratch struct {
	keys   []uint64
	sorted []uint64
	counts []uint64
	uniq   []uint64
	out    []graph.Edge
	sample []uint64
}

func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// estimateDupRate estimates the fraction of updates the semisort would
// remove (duplicate copies plus self-loops) from a ~dedupSampleSize
// sample. Sampling is stratified with a hashed jitter — one index drawn
// from each of `samples` equal strata — so indices are distinct by
// construction and a periodic duplicate layout cannot alias against a
// fixed stride. Within-sample key collisions are then a birthday-style
// statistic, not the duplicate rate itself (sampling s of m sees only
// ~s²/2m of the duplicate pairs), so the count is inverted through the
// pair-collision model: r̂ = 2mC/s² estimates the expected number of
// *other* copies of a random entry, and the removable fraction is
// r̂/(1+r̂) (exact when every key has the same copy count; a serviceable
// estimate otherwise). The open-addressing table lives in the scratch;
// zero is the empty marker (no valid edge key is 0).
func (s *batchScratch) estimateDupRate(updates []graph.Edge) float64 {
	m := len(updates)
	samples := dedupSampleSize
	if samples > m {
		samples = m
	}
	// Table at ≥2x load, power of two for cheap masking.
	tableSize := 1
	for tableSize < 2*samples {
		tableSize <<= 1
	}
	s.sample = growU64(s.sample, tableSize)
	clear(s.sample)
	mask := uint64(tableSize - 1)
	stride := m / samples
	collisions, selfLoops := 0, 0
	for i := 0; i < samples; i++ {
		idx := i * stride
		if stride > 1 {
			idx += int(graph.Hash64(uint64(i)^0xc2b2ae3d27d4eb4f) % uint64(stride))
		}
		k := edgeKey(updates[idx])
		if k == selfLoopKey {
			selfLoops++ // directly removable, independent of duplication
			continue
		}
		h := (k * 0x9e3779b97f4a7c15) & mask
		for {
			switch s.sample[h] {
			case 0:
				s.sample[h] = k
			case k:
				collisions++
			default:
				h = (h + 1) & mask
				continue
			}
			break
		}
	}
	slFrac := float64(selfLoops) / float64(samples)
	pairs := float64(samples-selfLoops) * float64(samples-selfLoops)
	if pairs == 0 {
		return slFrac
	}
	r := 2 * float64(m) * float64(collisions) / pairs
	return slFrac + (1-slFrac)*r/(1+r)
}

// preprocess returns updates with self-loops and duplicate edges removed
// (treating (u,v) and (v,u) as the same edge), in semisorted order. The
// input slice is not modified; the result aliases the scratch and is valid
// until the next preprocess call. The semisort is the two-pass parallel
// counting pattern of internal/parallel: hash-partition the normalized
// keys into buckets, sort and compact each bucket independently, and
// concatenate by prefix sums.
func (s *batchScratch) preprocess(updates []graph.Edge) []graph.Edge {
	m := len(updates)
	if m == 0 {
		return nil
	}

	s.keys = growU64(s.keys, m)
	keys := s.keys
	parallel.ForGrained(m, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = edgeKey(updates[i])
		}
	})

	// With one worker the hash partition is pure overhead (two extra passes
	// over the batch): sort and compact the keys directly.
	if parallel.Procs() == 1 {
		slices.Sort(keys)
		w := 0
		for i, k := range keys {
			if k == selfLoopKey {
				break // sentinels sort last
			}
			if i > 0 && k == keys[i-1] {
				continue
			}
			keys[w] = k
			w++
		}
		if cap(s.out) < w {
			s.out = make([]graph.Edge, w)
		}
		out := s.out[:w]
		for i, k := range keys[:w] {
			out[i] = graph.Edge{U: uint32(k >> 32), V: uint32(k)}
		}
		return out
	}

	// Hash-partition into buckets sized for ~8K keys each, so per-bucket
	// sorts stay cache-resident and load-balance across workers.
	logB := 0
	for m>>(logB+13) > 0 && logB < 9 {
		logB++
	}
	nb := 1 << logB
	shift := 64 - logB

	const grain = 8192
	blocks := (m + grain - 1) / grain

	// Pass 1: per-(bucket, block) histogram, laid out bucket-major so one
	// exclusive scan yields every block's write cursor and every bucket's
	// start. Block c writes only column c: no contention.
	s.counts = growU64(s.counts, nb*blocks)
	counts := s.counts
	clear(counts)
	parallel.ForGrained(blocks, 1, func(blo, bhi int) {
		for c := blo; c < bhi; c++ {
			lo, hi := c*grain, min((c+1)*grain, m)
			for i := lo; i < hi; i++ {
				counts[int(bucketOf(keys[i], shift))*blocks+c]++
			}
		}
	})
	parallel.ScanExclusive(counts)

	// Pass 2: scatter keys to their bucket slots.
	s.sorted = growU64(s.sorted, m)
	sorted := s.sorted
	parallel.ForWorker(blocks, 1, func(w *parallel.Worker, blo, bhi int) {
		cursors := w.Scratch.GrowU64(nb)
		for c := blo; c < bhi; c++ {
			for b := 0; b < nb; b++ {
				cursors[b] = counts[b*blocks+c]
			}
			lo, hi := c*grain, min((c+1)*grain, m)
			for i := lo; i < hi; i++ {
				b := bucketOf(keys[i], shift)
				sorted[cursors[b]] = keys[i]
				cursors[b]++
			}
		}
	})

	// Pass 3: sort each bucket and compact duplicates (and self-loop
	// sentinels) in place; uniq counts feed the final placement scan.
	s.uniq = growU64(s.uniq, nb)
	uniq := s.uniq
	bucketSpan := func(b int) (uint64, uint64) {
		start := counts[b*blocks]
		end := uint64(m)
		if b+1 < nb {
			end = counts[(b+1)*blocks]
		}
		return start, end
	}
	parallel.ForGrained(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			start, end := bucketSpan(b)
			bucket := sorted[start:end]
			slices.Sort(bucket)
			w := 0
			for i := range bucket {
				if bucket[i] == selfLoopKey {
					break // sentinels sort last within the bucket
				}
				if i > 0 && bucket[i] == bucket[i-1] {
					continue
				}
				bucket[w] = bucket[i]
				w++
			}
			uniq[b] = uint64(w)
		}
	})
	total := parallel.ScanExclusive(uniq)

	// Pass 4: decode the surviving keys back into one compact edge slice.
	if uint64(cap(s.out)) < total {
		s.out = make([]graph.Edge, total)
	}
	out := s.out[:total]
	parallel.ForGrained(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			start, _ := bucketSpan(b)
			pos := uniq[b]
			var next uint64
			if b+1 < nb {
				next = uniq[b+1]
			} else {
				next = total
			}
			for i := start; pos < next; i++ {
				k := sorted[i]
				out[pos] = graph.Edge{U: uint32(k >> 32), V: uint32(k)}
				pos++
			}
		}
	})
	return out
}

// bucketOf spreads a normalized edge key over 1<<(64-shift) buckets by a
// multiplicative hash (endpoint pairs are heavily skewed toward hub
// vertices; hashing keeps the partition balanced anyway).
func bucketOf(key uint64, shift int) uint64 {
	if shift >= 64 {
		return 0
	}
	return (key * 0x9e3779b97f4a7c15) >> shift
}
