package core

import (
	"runtime"
	"testing"

	"connectit/internal/graph"
	"connectit/internal/testutil"
	"connectit/internal/unionfind"
)

// preprocessBatch runs the semisort-dedup on a fresh scratch (the
// pre-scratch entry point these tests were written against).
func preprocessBatch(edges []graph.Edge) []graph.Edge {
	return new(batchScratch).preprocess(edges)
}

// refDedup is the map-based reference for preprocessBatch.
func refDedup(edges []graph.Edge) map[uint64]bool {
	seen := map[uint64]bool{}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		seen[uint64(u)<<32|uint64(v)] = true
	}
	return seen
}

// withProcs runs f under an adjusted GOMAXPROCS so both preprocessBatch
// paths (sequential and bucketed) are exercised whatever the host has.
func withProcs(t *testing.T, procs int, f func(t *testing.T)) {
	t.Run(map[bool]string{true: "seq", false: "bucketed"}[procs == 1], func(t *testing.T) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		f(t)
	})
}

func TestPreprocessBatch(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, testPreprocessBatch)
	}
}

func testPreprocessBatch(t *testing.T) {
	const n = 1 << 12
	// A duplicate-heavy stream: every edge appears ~4 times across both
	// orientations, plus a sprinkle of self-loops.
	rng := uint64(99)
	var edges []graph.Edge
	for i := 0; i < 40000; i++ {
		rng = graph.Hash64(rng)
		u := uint32(rng % n)
		rng = graph.Hash64(rng)
		v := uint32(rng % (n / 4)) // skew toward low vertices: many dupes
		switch i % 8 {
		case 3:
			edges = append(edges, graph.Edge{U: v, V: u}) // flipped
		case 5:
			edges = append(edges, graph.Edge{U: u, V: u}) // self-loop
		default:
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	input := append([]graph.Edge(nil), edges...)

	got := preprocessBatch(edges)

	want := refDedup(edges)
	if len(got) != len(want) {
		t.Fatalf("preprocessBatch kept %d edges, want %d unique", len(got), len(want))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.U == e.V {
			t.Fatalf("self-loop (%d,%d) survived", e.U, e.V)
		}
		if e.U > e.V {
			t.Fatalf("edge (%d,%d) not normalized", e.U, e.V)
		}
		k := uint64(e.U)<<32 | uint64(e.V)
		if !want[k] {
			t.Fatalf("edge (%d,%d) not in the input", e.U, e.V)
		}
		if seen[k] {
			t.Fatalf("edge (%d,%d) duplicated in the output", e.U, e.V)
		}
		seen[k] = true
	}
	for i := range edges {
		if edges[i] != input[i] {
			t.Fatal("preprocessBatch modified its input")
		}
	}
}

func TestPreprocessBatchCorners(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, testPreprocessBatchCorners)
	}
}

func testPreprocessBatchCorners(t *testing.T) {
	if got := preprocessBatch(nil); len(got) != 0 {
		t.Fatalf("nil batch: got %d edges", len(got))
	}
	// All self-loops: everything drops.
	loops := make([]graph.Edge, 5000)
	for i := range loops {
		loops[i] = graph.Edge{U: uint32(i), V: uint32(i)}
	}
	if got := preprocessBatch(loops); len(got) != 0 {
		t.Fatalf("all-self-loop batch: %d edges survived", len(got))
	}
	// One distinct edge repeated: exactly one survives, including the
	// sentinel-adjacent extreme (MaxUint32 endpoint).
	const hi = ^uint32(0)
	rep := make([]graph.Edge, 5000)
	for i := range rep {
		rep[i] = graph.Edge{U: hi, V: 0}
	}
	got := preprocessBatch(rep)
	if len(got) != 1 || got[0] != (graph.Edge{U: 0, V: hi}) {
		t.Fatalf("repeated edge: got %v", got)
	}
}

// TestPreprocessScratchReuse checks that one scratch produces correct
// results across repeated calls with different batches (the apply-round
// reuse path) and that outputs alias the scratch as documented.
func TestPreprocessScratchReuse(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withProcs(t, procs, func(t *testing.T) {
			var s batchScratch
			for round := 0; round < 4; round++ {
				var edges []graph.Edge
				rng := uint64(round + 1)
				for i := 0; i < 20000; i++ {
					rng = graph.Hash64(rng)
					u := uint32(rng % 5000)
					rng = graph.Hash64(rng)
					v := uint32(rng % 500)
					edges = append(edges, graph.Edge{U: u, V: v})
				}
				got := s.preprocess(edges)
				want := refDedup(edges)
				if len(got) != len(want) {
					t.Fatalf("round %d: kept %d, want %d", round, len(got), len(want))
				}
			}
		})
	}
}

// TestDedupDecision exercises the DedupAuto estimator and the explicit
// hints through ApplyBatch's decision counters.
func TestDedupDecision(t *testing.T) {
	const n = 1 << 13
	distinct := make([]graph.Edge, n)
	for i := range distinct {
		distinct[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	repeated := make([]graph.Edge, n)
	for i := range repeated {
		repeated[i] = graph.Edge{U: uint32(i % 7), V: uint32(i%7 + 1)}
	}
	alg := Algorithm{Kind: FinishUnionFind}
	mk := func(h DedupHint) *Incremental {
		inc, err := NewIncremental(n+1, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		inc.SetDedupHint(h)
		return inc
	}

	inc := mk(DedupAuto)
	inc.ApplyBatch(distinct)
	if sorted, skipped := inc.DedupStats(); sorted != 0 || skipped != 1 {
		t.Fatalf("auto/distinct: sorted=%d skipped=%d, want 0/1", sorted, skipped)
	}
	inc.ApplyBatch(repeated)
	if sorted, skipped := inc.DedupStats(); sorted != 1 || skipped != 1 {
		t.Fatalf("auto/repeated: sorted=%d skipped=%d, want 1/1", sorted, skipped)
	}

	inc = mk(DedupAlways)
	inc.ApplyBatch(distinct)
	if sorted, skipped := inc.DedupStats(); sorted != 1 || skipped != 0 {
		t.Fatalf("always: sorted=%d skipped=%d, want 1/0", sorted, skipped)
	}

	inc = mk(DedupNever)
	inc.ApplyBatch(repeated)
	if sorted, skipped := inc.DedupStats(); sorted != 0 || skipped != 1 {
		t.Fatalf("never: sorted=%d skipped=%d, want 0/1", sorted, skipped)
	}

	// Small batches never count: they are below the size floor entirely.
	inc = mk(DedupAlways)
	inc.ApplyBatch(repeated[:64])
	if sorted, skipped := inc.DedupStats(); sorted != 0 || skipped != 0 {
		t.Fatalf("small: sorted=%d skipped=%d, want 0/0", sorted, skipped)
	}
}

// TestEstimateDupRate pins the estimator to known mixtures.
func TestEstimateDupRate(t *testing.T) {
	var s batchScratch
	distinct := make([]graph.Edge, 1<<14)
	for i := range distinct {
		distinct[i] = graph.Edge{U: uint32(2 * i), V: uint32(2*i + 1)}
	}
	if r := s.estimateDupRate(distinct); r != 0 {
		t.Fatalf("distinct batch: rate %v, want 0", r)
	}
	same := make([]graph.Edge, 1<<14)
	for i := range same {
		same[i] = graph.Edge{U: 1, V: 2}
	}
	if r := s.estimateDupRate(same); r < 0.9 {
		t.Fatalf("all-duplicate batch: rate %v, want ~1", r)
	}
	loops := make([]graph.Edge, 1<<13)
	for i := range loops {
		loops[i] = graph.Edge{U: uint32(i), V: uint32(i)}
	}
	if r := s.estimateDupRate(loops); r != 1 {
		t.Fatalf("all-self-loop batch: rate %v, want 1 (sort removes them)", r)
	}
	// Every key twice (d = 1/2), shuffled so strata mix copies: the
	// pair-collision inversion should land near 0.5 despite the sample
	// seeing only ~s²/2m of the duplicate pairs.
	twice := make([]graph.Edge, 1<<15)
	for i := range twice {
		k := uint32(i / 2)
		twice[i] = graph.Edge{U: 3 * k, V: 3*k + 1}
	}
	rng := uint64(11)
	for i := len(twice) - 1; i > 0; i-- {
		rng = graph.Hash64(rng)
		j := int(rng % uint64(i+1))
		twice[i], twice[j] = twice[j], twice[i]
	}
	if r := s.estimateDupRate(twice); r < 0.25 || r > 0.75 {
		t.Fatalf("half-duplicate batch: rate %v, want ~0.5", r)
	}
}

// TestApplyBatchDedupEquivalence pushes a duplicate-heavy batch (above the
// preprocessing threshold) through one algorithm per stream type and
// checks the partition against ground truth built from the same edges.
func TestApplyBatchDedupEquivalence(t *testing.T) {
	const n = 1 << 11
	edges := graph.RMATEdges(11, 3*n, 0.5, 0.1, 0.1, 7)
	// Triple every edge, alternating orientation, well above dedupMinBatch.
	var batch []graph.Edge
	for rep := 0; rep < 3; rep++ {
		for _, e := range edges {
			if rep%2 == 1 {
				e.U, e.V = e.V, e.U
			}
			batch = append(batch, e)
		}
	}
	if len(batch) <= dedupMinBatch {
		t.Fatalf("batch of %d does not exercise preprocessing (threshold %d)", len(batch), dedupMinBatch)
	}
	g := graph.Build(n, edges)
	want := testutil.Components(g)
	for _, alg := range []Algorithm{
		{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SplitAtomicOne}}, // Type i
		{Kind: FinishShiloachVishkin}, // Type ii
		{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SpliceAtomic}}, // Type iii
	} {
		inc, err := NewIncremental(n, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		inc.ApplyBatch(batch)
		testutil.CheckPartition(t, alg.Name(), inc.Labels(), want)
	}
}
