package core

import (
	"errors"
	"fmt"
	"strings"

	"connectit/internal/unionfind"
)

// This file implements the canonical spec-string language for selecting
// algorithms:
//
//	config    = sampling ";" algorithm
//	sampling  = "none" | "kout" | "bfs" | "ldd"
//	algorithm = family [";" param ...]
//
// Family heads come from the registry ("uf", "sv", "lt", "stergiou", "lp",
// or their long aliases); union-find specs may also lead directly with the
// union rule, which is how Algorithm.Name renders them. Tokens are
// case-insensitive and surrounding whitespace is ignored, so
// "kout; uf; rem-cas; naive; split-one" and
// "kout;Union-Rem-CAS;SplitOne;FindNaive" select the same configuration.
// The canonical renderings round-trip: ParseAlgorithm(a.Name()) == a for
// every a in Algorithms(), and ParseConfig(c.Name()) selects c's sampling
// and algorithm.

// ErrBadSpec reports a malformed or unknown spec string.
var ErrBadSpec = errors.New("connectit: bad spec")

var samplingTokens = map[string]SamplingMode{
	"none":        NoSampling,
	"no-sampling": NoSampling,
	"kout":        KOutSampling,
	"k-out":       KOutSampling,
	"bfs":         BFSSampling,
	"ldd":         LDDSampling,
}

var unionTokens = map[string]unionfind.UnionOption{
	"union-async":    unionfind.UnionAsync,
	"async":          unionfind.UnionAsync,
	"union-hooks":    unionfind.UnionHooks,
	"hooks":          unionfind.UnionHooks,
	"union-early":    unionfind.UnionEarly,
	"early":          unionfind.UnionEarly,
	"union-rem-cas":  unionfind.UnionRemCAS,
	"rem-cas":        unionfind.UnionRemCAS,
	"union-rem-lock": unionfind.UnionRemLock,
	"rem-lock":       unionfind.UnionRemLock,
	"union-jtb":      unionfind.UnionJTB,
	"jtb":            unionfind.UnionJTB,
}

var findTokens = map[string]unionfind.FindOption{
	"findnaive":       unionfind.FindNaive,
	"naive":           unionfind.FindNaive,
	"findsplit":       unionfind.FindSplit,
	"split":           unionfind.FindSplit,
	"findhalve":       unionfind.FindHalve,
	"halve":           unionfind.FindHalve,
	"findcompress":    unionfind.FindCompress,
	"compress":        unionfind.FindCompress,
	"findtwotrysplit": unionfind.FindTwoTrySplit,
	"two-try":         unionfind.FindTwoTrySplit,
	"twotry":          unionfind.FindTwoTrySplit,
}

var spliceTokens = map[string]unionfind.SpliceOption{
	"splitone":       unionfind.SplitAtomicOne,
	"split-one":      unionfind.SplitAtomicOne,
	"splitatomicone": unionfind.SplitAtomicOne,
	"halveone":       unionfind.HalveAtomicOne,
	"halve-one":      unionfind.HalveAtomicOne,
	"halveatomicone": unionfind.HalveAtomicOne,
	"splice":         unionfind.SpliceAtomic,
	"spliceatomic":   unionfind.SpliceAtomic,
}

// splitSpec tokenizes a spec string: split on ";", trim, lower-case, drop
// empties.
func splitSpec(spec string) []string {
	var toks []string
	for _, p := range strings.Split(spec, ";") {
		p = strings.ToLower(strings.TrimSpace(p))
		if p != "" {
			toks = append(toks, p)
		}
	}
	return toks
}

// ParseAlgorithm parses an algorithm spec string (e.g.
// "uf;rem-cas;naive;split-one", "lt;CRFA", "sv", or any Algorithm.Name
// rendering) into an Algorithm. Malformed specs return ErrBadSpec;
// combinations the paper excludes return ErrUnsupported.
func ParseAlgorithm(spec string) (Algorithm, error) {
	tokens := splitSpec(spec)
	if len(tokens) == 0 {
		return Algorithm{}, fmt.Errorf("%w: empty algorithm spec", ErrBadSpec)
	}
	return parseAlgorithmTokens(tokens)
}

func parseAlgorithmTokens(tokens []string) (Algorithm, error) {
	if f, ok := familiesByName[tokens[0]]; ok {
		return f.ParseParams(tokens[1:])
	}
	if _, ok := unionTokens[tokens[0]]; ok {
		// Algorithm.Name renders union-find variants leading with the union
		// rule ("Union-Rem-CAS;SplitOne;FindNaive"); accept the implicit
		// family head.
		return parseUFParams(tokens)
	}
	return Algorithm{}, fmt.Errorf("%w: unknown algorithm family %q (families: %s)",
		ErrBadSpec, tokens[0], familyNames())
}

func familyNames() string {
	s := ""
	for i, f := range families {
		if i > 0 {
			s += "/"
		}
		s += f.Name
	}
	return s
}

// parseUFParams parses union-find spec parameters: a union rule followed by
// at most one find rule and one splice rule in either order (Algorithm.Name
// renders Rem variants as union;splice;find, the short form is
// union;find;splice — both parse).
func parseUFParams(tokens []string) (Algorithm, error) {
	if len(tokens) == 0 {
		return Algorithm{}, fmt.Errorf(`%w: union-find spec needs a union rule (e.g. "uf;rem-cas;naive;split-one")`, ErrBadSpec)
	}
	u, ok := unionTokens[tokens[0]]
	if !ok {
		return Algorithm{}, fmt.Errorf("%w: unknown union rule %q", ErrBadSpec, tokens[0])
	}
	v := unionfind.Variant{Union: u}
	haveFind, haveSplice := false, false
	for _, tok := range tokens[1:] {
		if f, ok := findTokens[tok]; ok && !haveFind {
			v.Find, haveFind = f, true
			continue
		}
		if s, ok := spliceTokens[tok]; ok && !haveSplice {
			v.Splice, haveSplice = s, true
			continue
		}
		return Algorithm{}, fmt.Errorf("%w: unexpected union-find token %q", ErrBadSpec, tok)
	}
	a := Algorithm{Kind: FinishUnionFind, UF: v}
	if err := familiesByKind[FinishUnionFind].Validate(a); err != nil {
		return Algorithm{}, err
	}
	return a, nil
}

// parseLTParams parses a Liu-Tarjan spec parameter: one four-letter variant
// code (Appendix D naming).
func parseLTParams(tokens []string) (Algorithm, error) {
	if len(tokens) != 1 {
		return Algorithm{}, fmt.Errorf(`%w: Liu-Tarjan spec needs exactly one variant code (e.g. "lt;CRFA")`, ErrBadSpec)
	}
	code := strings.ToUpper(tokens[0])
	v, ok := liutarjanByCode[code]
	if !ok {
		return Algorithm{}, fmt.Errorf("%w: unknown Liu-Tarjan variant %q (valid: %s)",
			ErrUnsupported, code, liutarjanCodes())
	}
	return Algorithm{Kind: FinishLiuTarjan, LT: v}, nil
}

// noParams builds the ParseParams hook for parameterless families.
func noParams(kind FinishKind) func([]string) (Algorithm, error) {
	return func(tokens []string) (Algorithm, error) {
		if len(tokens) != 0 {
			return Algorithm{}, fmt.Errorf("%w: %v takes no parameters (got %q)",
				ErrBadSpec, kind, strings.Join(tokens, ";"))
		}
		return Algorithm{Kind: kind}, nil
	}
}

// ParseConfig parses a full configuration spec "<sampling>;<algorithm>"
// (e.g. "kout;uf;rem-cas;naive;split-one") into a Config with default
// tuning parameters. ParseConfig(c.Name()) round-trips c's sampling mode
// and algorithm.
func ParseConfig(spec string) (Config, error) {
	tokens := splitSpec(spec)
	if len(tokens) < 2 {
		return Config{}, fmt.Errorf(`%w: config spec needs "<sampling>;<algorithm>" (e.g. "kout;uf;rem-cas;naive;split-one")`, ErrBadSpec)
	}
	mode, ok := samplingTokens[tokens[0]]
	if !ok {
		return Config{}, fmt.Errorf("%w: unknown sampling mode %q (want none/kout/bfs/ldd)", ErrBadSpec, tokens[0])
	}
	a, err := parseAlgorithmTokens(tokens[1:])
	if err != nil {
		return Config{}, err
	}
	return Config{Sampling: mode, Algorithm: a}, nil
}

// Name renders the canonical spec string of the configuration's sampling
// mode and algorithm; ParseConfig(c.Name()) selects the same combination.
// Tuning parameters (K, Beta, Seed, ...) are not part of the name.
func (c Config) Name() string {
	return c.Sampling.String() + ";" + c.Algorithm.Name()
}
