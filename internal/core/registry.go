package core

import (
	"fmt"
	"strings"

	"connectit/internal/graph"
)

// Family describes one finish-algorithm family (§3.3) in the registry. A
// family contributes a canonical spec-string head, capability probes, a
// parser for its spec parameters, and compiled execution hooks; Compile,
// ParseAlgorithm, Algorithms, and the capability surfaces are all derived
// from these descriptors instead of hand-maintained switches.
type Family struct {
	// Kind is the FinishKind this family implements.
	Kind FinishKind
	// Name is the canonical spec-string head ("uf", "sv", "lt", ...).
	Name string
	// Aliases are additional accepted heads, including the paper-style long
	// names that Algorithm.Name renders (matched case-insensitively).
	Aliases []string
	// Doc is a one-line description for introspection surfaces.
	Doc string

	// Enumerate lists every Algorithm instantiation of the family.
	Enumerate func() []Algorithm
	// ParseParams parses the family-specific spec tokens (lower-cased, the
	// family head already removed) into an Algorithm.
	ParseParams func(tokens []string) (Algorithm, error)
	// Validate reports whether a is a combination the framework defines,
	// returning an error wrapping ErrUnsupported otherwise.
	Validate func(a Algorithm) error
	// ForestSupport returns nil when a supports spanning forest (§3.4).
	ForestSupport func(a Algorithm) error
	// StreamSupport returns a's streaming classification (§3.5), or an
	// error wrapping ErrUnsupported when a cannot run batch-incrementally.
	StreamSupport func(a Algorithm) (StreamType, error)
	// Runners is the per-backend constructor table: the same generic
	// constructor instantiated once per registered graph representation,
	// so every backend's finish loop monomorphizes over its representation.
	// Each Compiled owns exactly one runner per backend; runners may retain
	// scratch state across runs.
	Runners Runners
	// NewForest compiles the spanning-forest hook (CSR only — witness
	// recording indexes the flat adjacency). nil when ForestSupport always
	// fails.
	NewForest func(cfg Config) ForestFunc
	// NewIncremental constructs the streaming structure for a validated
	// configuration whose StreamSupport succeeded with st.
	NewIncremental func(n int, cfg Config, st StreamType) *Incremental
}

// Runners is a family's backend-constructor table — the single mechanism
// through which finish hooks reach a concrete representation. Go cannot
// store an uninstantiated generic function, so each family fills the table
// with its one generic constructor instantiated per backend; adding a
// backend is one field here, one instantiation row per family, and one
// dispatch case in ComponentsOn — nothing else in the registry changes.
type Runners struct {
	// CSR builds the flat-CSR runner.
	CSR func(cfg Config) *Runner[*graph.Graph]
	// Compressed builds the single-segment byte-compressed runner.
	Compressed func(cfg Config) *Runner[*graph.CompressedGraph]
	// Segmented builds the multi-segment byte-compressed runner.
	Segmented func(cfg Config) *Runner[*graph.SegmentedGraph]
}

// Runner holds the compiled finish-phase hook of one algorithm
// instantiation over one concrete graph representation. Finish refines a
// star-form labeling (skip semantics per DESIGN.md §4) to full connectivity
// in place and returns the final labeling. The type parameter keeps the
// neighbor-iteration path free of interface dispatch: each backend gets its
// own instantiation of the kernel.
type Runner[G graph.Rep] struct {
	Finish func(g G, labels []uint32, skip []bool) []uint32
}

// ForestFunc is the compiled spanning-forest hook: it records one witness
// edge per hook and appends the finish-phase forest edges to acc. It is
// only invoked when ForestSupport returned nil.
type ForestFunc func(g *graph.Graph, labels []uint32, skip []bool, acc [][2]uint32) ([][2]uint32, error)

var (
	families       []*Family
	familiesByKind = map[FinishKind]*Family{}
	familiesByName = map[string]*Family{}
)

// RegisterFamily adds f to the registry, panicking on duplicate kinds or
// names. Registration order fixes the enumeration order of Algorithms;
// the five paper families register in this package's init.
func RegisterFamily(f *Family) {
	if _, dup := familiesByKind[f.Kind]; dup {
		panic(fmt.Sprintf("core: duplicate family for kind %v", f.Kind))
	}
	familiesByKind[f.Kind] = f
	for _, name := range append([]string{f.Name}, f.Aliases...) {
		key := strings.ToLower(name)
		if _, dup := familiesByName[key]; dup {
			panic(fmt.Sprintf("core: duplicate family name %q", name))
		}
		familiesByName[key] = f
	}
	families = append(families, f)
}

// Families returns the registered finish families in registration order.
func Families() []*Family {
	out := make([]*Family, len(families))
	copy(out, families)
	return out
}

// FamilyOf returns the registered family implementing kind.
func FamilyOf(kind FinishKind) (*Family, bool) {
	f, ok := familiesByKind[kind]
	return f, ok
}

// Algorithms enumerates every finish algorithm in the framework in registry
// order: the 36 union-find variants, Shiloach-Vishkin, the sixteen
// Liu-Tarjan variants, Stergiou, and Label-Propagation (55 in total).
// Crossed with the four sampling modes, these are the paper's several
// hundred connectivity implementations.
func Algorithms() []Algorithm {
	var out []Algorithm
	for _, f := range families {
		out = append(out, f.Enumerate()...)
	}
	return out
}

// StreamingAlgorithm pairs a finish algorithm with its batch-incremental
// classification (§3.5).
type StreamingAlgorithm struct {
	Algorithm Algorithm
	Type      StreamType
}

// StreamingAlgorithms enumerates, in registry order, every finish algorithm
// that supports batch-incremental execution, paired with its stream type.
// The ingest engine's tests and benchmarks iterate this to cover all three
// scheduling disciplines.
func StreamingAlgorithms() []StreamingAlgorithm {
	var out []StreamingAlgorithm
	for _, f := range families {
		for _, a := range f.Enumerate() {
			if st, err := f.StreamSupport(a); err == nil {
				out = append(out, StreamingAlgorithm{Algorithm: a, Type: st})
			}
		}
	}
	return out
}
