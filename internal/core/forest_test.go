package core

import (
	"testing"

	"connectit/internal/liutarjan"
	"connectit/internal/testutil"
	"connectit/internal/unionfind"
)

// forestAlgorithms enumerates every spanning-forest-capable finish
// algorithm: 32 union-find variants (excluding Rem+SpliceAtomic), SV, and
// the RootUp Liu-Tarjan variants.
func forestAlgorithms() []Algorithm {
	var out []Algorithm
	for _, v := range unionfind.ForestVariants() {
		out = append(out, Algorithm{Kind: FinishUnionFind, UF: v})
	}
	out = append(out, Algorithm{Kind: FinishShiloachVishkin})
	for _, v := range liutarjan.Variants() {
		if v.RootBased() {
			out = append(out, Algorithm{Kind: FinishLiuTarjan, LT: v})
		}
	}
	return out
}

// TestSpanningForestMatrix: every sampling mode × every forest-capable
// finish algorithm produces a valid spanning forest on every panel graph.
func TestSpanningForestMatrix(t *testing.T) {
	panel := testutil.Panel()
	for _, mode := range samplingModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			for _, alg := range forestAlgorithms() {
				cfg := Config{Sampling: mode, Algorithm: alg, Seed: 17}
				for name, g := range panel {
					forest, err := SpanningForest(g, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", mode, alg.Name(), name, err)
					}
					testutil.CheckSpanningForest(t, mode.String()+"/"+alg.Name()+"/"+name, g, forest)
				}
			}
		})
	}
}

func TestSpanningForestRejectsUnsupported(t *testing.T) {
	g := testutil.Panel()["grid"]
	unsupported := []Algorithm{
		{Kind: FinishStergiou},
		{Kind: FinishLabelProp},
		{Kind: FinishLiuTarjan, LT: liutarjan.Variant{Connect: liutarjan.ParentConnect}}, // PUS: not RootUp
		{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SpliceAtomic}},
	}
	for _, alg := range unsupported {
		if _, err := SpanningForest(g, Config{Algorithm: alg}); err == nil {
			t.Fatalf("%s: expected ErrUnsupported", alg.Name())
		}
	}
}

func TestForestVariantCount(t *testing.T) {
	// 36 - 2×2 Rem+Splice combos... Rem has Splice with 3 find options each
	// (FindCompress is already excluded), so 36 - 6 = 30 union-find forest
	// variants, plus SV, plus 4 RootUp LT variants.
	algos := forestAlgorithms()
	uf := 0
	lt := 0
	for _, a := range algos {
		switch a.Kind {
		case FinishUnionFind:
			uf++
		case FinishLiuTarjan:
			lt++
		}
	}
	if uf != 30 {
		t.Fatalf("union-find forest variants = %d, want 30", uf)
	}
	if lt != 6 {
		t.Fatalf("RootUp LT variants = %d, want 6 (CRSA, PRSA, PRS, CRFA, PRFA, PRF)", lt)
	}
}
