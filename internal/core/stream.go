package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"connectit/internal/concurrent"
	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/parallel"
	"connectit/internal/shiloachvishkin"
	"connectit/internal/unionfind"
)

// StreamType classifies how a streaming algorithm processes a batch (§3.5).
type StreamType int

// The streaming algorithm types of §3.5.
const (
	// TypeAsync (Type i): union-find variants other than Rem+SpliceAtomic.
	// Updates and queries in a batch run fully concurrently; all operations
	// are linearizable and finds are wait-free.
	TypeAsync StreamType = iota
	// TypeSynchronous (Type ii): Shiloach-Vishkin and RootUp Liu-Tarjan.
	// Updates are applied synchronously in rounds; queries are wait-free.
	TypeSynchronous
	// TypePhased (Type iii): Rem's algorithms with SpliceAtomic. Updates
	// and queries are phase-separated by a barrier (Theorem 3).
	TypePhased
)

func (t StreamType) String() string {
	switch t {
	case TypeAsync:
		return "type-i-async"
	case TypeSynchronous:
		return "type-ii-synchronous"
	case TypePhased:
		return "type-iii-phased"
	}
	return fmt.Sprintf("StreamType(%d)", int(t))
}

// Incremental maintains connectivity of a growing graph under batches of
// edge insertions mixed with connectivity queries (the parallel
// batch-incremental setting, §3.5 / Algorithm 3).
type Incremental struct {
	kind   FinishKind
	stype  StreamType
	dsu    *unionfind.DSU
	lt     liutarjan.Variant
	parent []uint32
	n      int

	// ltRunner is the reusable Liu-Tarjan edge runner for the Type ii
	// apply path: round closures and scratch survive across batches, so a
	// steady-state apply round allocates nothing in the kernel.
	ltRunner *liutarjan.EdgeRunner

	// Streaming spanning-forest capture (DESIGN.md §12). When capture is
	// on, every accepted union deposits its witness edge: Type (i) appends
	// to the union-find witness log under the existing atomic discipline;
	// Type (ii) runs the witness-capturing edge runners and merges each
	// round's edges into fbuf at the round barrier. forestErr carries the
	// construction-time verdict when capture is off (the compile-time
	// ForestSupport error, or the capture-disabled sentinel).
	capture   bool
	forestErr error
	fmu       sync.Mutex
	fbuf      []graph.Edge // merged Type (ii) forest, guarded by fmu
	fscratch  []graph.Edge // per-batch capture scratch (capacity retained)
	svForest  *shiloachvishkin.EdgeForestRunner
	ltForest  *liutarjan.ForestEdgeRunner

	// Algorithm 3 preprocessing state: the semisort scratch, the
	// per-stream hint, and the per-batch decision counters. Type i permits
	// concurrent ApplyBatch calls, so the shared scratch is guarded by
	// scratchMu (held through the union loop when a batch was preprocessed,
	// since the compacted batch aliases the scratch) and the counters are
	// atomic. Type ii/iii appliers are serialized by the caller and never
	// contend.
	scratchMu   sync.Mutex
	scratch     batchScratch
	dedupHint   DedupHint
	dedupSorted atomic.Uint64
	dedupSkip   atomic.Uint64
}

// NewIncremental creates a streaming connectivity structure over n vertices
// (initially edgeless) configured by cfg.Algorithm. Stergiou,
// Label-Propagation, and non-RootUp Liu-Tarjan variants do not support
// streaming (their updates relabel non-roots, breaking wait-free root
// queries) and return ErrUnsupported. It is a convenience wrapper that
// compiles cfg; repeated construction should Compile once and call
// Compiled.NewIncremental.
func NewIncremental(n int, cfg Config) (*Incremental, error) {
	c, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return c.NewIncremental(n)
}

// Type reports the streaming classification of the configured algorithm.
func (inc *Incremental) Type() StreamType { return inc.stype }

// Kind reports the finish family of the configured algorithm.
func (inc *Incremental) Kind() FinishKind { return inc.kind }

// Len returns the number of vertices.
func (inc *Incremental) Len() int { return inc.n }

// ProcessBatch ingests a batch of edge insertions and answers the batch's
// connectivity queries, returning one result per query. Per §3.5, Type (i)
// algorithms run updates and queries fully concurrently; Type (ii) and
// Type (iii) apply updates first and then answer queries.
func (inc *Incremental) ProcessBatch(updates []graph.Edge, queries [][2]uint32) []bool {
	results := make([]bool, len(queries))
	switch inc.stype {
	case TypeAsync:
		total := len(updates) + len(queries)
		capture := inc.capture
		parallel.ForGrained(total, 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i < len(updates) {
					if capture {
						e := updates[i]
						inc.dsu.UnionWitness(e.U, e.V, e.U, e.V)
					} else {
						inc.dsu.Union(updates[i].U, updates[i].V)
					}
				} else {
					q := queries[i-len(updates)]
					results[i-len(updates)] = inc.dsu.SameSet(q[0], q[1])
				}
			}
		})
	case TypePhased:
		inc.applyEdges(updates)
		parallel.ForGrained(len(queries), 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				results[i] = inc.dsu.SameSet(queries[i][0], queries[i][1])
			}
		})
	case TypeSynchronous:
		inc.applyEdges(updates)
		parallel.ForGrained(len(queries), 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				results[i] = inc.Connected(queries[i][0], queries[i][1])
			}
		})
	}
	return results
}

// ApplyBatch ingests a batch of edge insertions without answering queries.
// It is ProcessBatch's update half, exposed for the ingest engine
// (internal/ingest), which overlaps its own queries with the batch according
// to the stream type. Concurrent ApplyBatch calls are permitted only for
// TypeAsync; TypeSynchronous and TypePhased appliers must be serialized by
// the caller (and TypePhased additionally barriered against queries).
//
// Large batches may be preprocessed per Algorithm 3 first: a parallel
// semisort deduplicates the endpoint pairs (and drops self-loops) before
// the union loop, so a hot edge resubmitted across a coalesced epoch costs
// one sort slot instead of a contended union or a fatter synchronous
// round. The input slice is never modified. Whether the sort runs is
// decided per batch by the stream's DedupHint — DedupAuto samples the
// batch and sorts only when the estimated duplicate rate clears the
// cost-model threshold (see batch.go); DedupStats reports the decisions.
// ProcessBatch deliberately bypasses the preprocessing (applyEdges): its
// bulk one-shot batches are the paper's experiment inputs, already
// essentially duplicate-free, and re-sorting millions of unique edges
// costs more than the duplicates it would remove.
func (inc *Incremental) ApplyBatch(updates []graph.Edge) {
	if len(updates) > dedupMinBatch {
		inc.scratchMu.Lock()
		if inc.shouldDedup(updates) {
			inc.dedupSorted.Add(1)
			updates = inc.scratch.preprocess(updates)
			if inc.stype == TypeAsync {
				// Type i advertises concurrent appliers: copy the compacted
				// batch out of the scratch so the union loop runs outside
				// the lock and overlapping ApplyBatch calls only serialize
				// their (much shorter) preprocessing. Type ii/iii appliers
				// are caller-serialized anyway and keep the zero-copy alias.
				cp := make([]graph.Edge, len(updates))
				copy(cp, updates)
				inc.scratchMu.Unlock()
				inc.applyEdges(cp)
				return
			}
			// The compacted batch aliases the scratch: apply before
			// releasing it.
			inc.applyEdges(updates)
			inc.scratchMu.Unlock()
			return
		}
		inc.dedupSkip.Add(1)
		inc.scratchMu.Unlock()
	}
	inc.applyEdges(updates)
}

// shouldDedup applies the stream's hint, sampling the batch under
// DedupAuto.
func (inc *Incremental) shouldDedup(updates []graph.Edge) bool {
	switch inc.dedupHint {
	case DedupAlways:
		return true
	case DedupNever:
		return false
	}
	return inc.scratch.estimateDupRate(updates) >= dedupRateThreshold
}

// SetDedupHint sets the Algorithm 3 preprocessing policy (DedupAuto by
// default). It must be called quiescently — the ingest engine sets it at
// stream construction.
func (inc *Incremental) SetDedupHint(h DedupHint) { inc.dedupHint = h }

// DedupStats reports how many large batches were semisort-deduplicated vs
// applied unsorted (batches at or below the size floor are not counted —
// they never sort).
func (inc *Incremental) DedupStats() (sorted, skipped uint64) {
	return inc.dedupSorted.Load(), inc.dedupSkip.Load()
}

// applyEdges runs the union loop for one batch under the stream type's
// discipline, with no preprocessing.
func (inc *Incremental) applyEdges(updates []graph.Edge) {
	if len(updates) == 0 {
		return
	}
	switch inc.stype {
	case TypeAsync, TypePhased:
		// The capture branch is hoisted out of the loop; Type (iii) never
		// captures (ForestSupport excludes Rem+SpliceAtomic).
		capture := inc.capture
		parallel.ForGrained(len(updates), 256, func(lo, hi int) {
			if capture {
				for i := lo; i < hi; i++ {
					e := updates[i]
					inc.dsu.UnionWitness(e.U, e.V, e.U, e.V)
				}
				return
			}
			for i := lo; i < hi; i++ {
				inc.dsu.Union(updates[i].U, updates[i].V)
			}
		})
	case TypeSynchronous:
		if inc.capture {
			inc.applyCaptured(updates)
			return
		}
		if inc.kind == FinishShiloachVishkin {
			shiloachvishkin.RunEdges(updates, inc.parent)
		} else {
			// Atomic publication: Type ii queries chase parent wait-free
			// while the batch applies. The runner is retained so repeated
			// apply rounds reuse its round closures and buffers.
			if inc.ltRunner == nil {
				inc.ltRunner = liutarjan.NewEdgeRunner(inc.lt, true)
			}
			inc.ltRunner.Run(updates, inc.parent, nil)
		}
	}
}

// applyCaptured is the Type (ii) apply path with witness capture: the
// witness-capturing edge runner executes the synchronous rounds into the
// retained scratch, and the batch's forest edges merge into fbuf at the
// round barrier — the appliers are caller-serialized, so the only
// synchronization added is the buffer mutex taken once per batch, off the
// per-edge hot path.
func (inc *Incremental) applyCaptured(updates []graph.Edge) {
	var out []graph.Edge
	if inc.kind == FinishShiloachVishkin {
		if inc.svForest == nil {
			inc.svForest = shiloachvishkin.NewEdgeForestRunner(inc.n)
		}
		_, out = inc.svForest.Run(updates, inc.parent, inc.fscratch[:0])
	} else {
		if inc.ltForest == nil {
			r, err := liutarjan.NewForestEdgeRunner(inc.lt)
			if err != nil {
				// Unreachable: capture is only enabled when ForestSupport
				// accepted the variant, which implies RootUp.
				panic(err)
			}
			inc.ltForest = r
		}
		_, out = inc.ltForest.Run(updates, inc.parent, inc.fscratch[:0])
	}
	inc.fscratch = out
	if len(out) > 0 {
		inc.fmu.Lock()
		inc.fbuf = append(inc.fbuf, out...)
		inc.fmu.Unlock()
	}
}

// Update applies a single edge insertion. For TypeAsync and TypePhased it
// is one concurrent union (for TypePhased the caller owns the phase
// barrier); TypeSynchronous callers should batch instead — a single-edge
// synchronous round costs O(n) — so Update falls back to ApplyBatch of one.
func (inc *Incremental) Update(u, v uint32) {
	if inc.dsu != nil {
		if inc.capture {
			inc.dsu.UnionWitness(u, v, u, v)
			return
		}
		inc.dsu.Union(u, v)
		return
	}
	inc.ApplyBatch([]graph.Edge{{U: u, V: v}})
}

// Probe is a read-only bounded connectivity probe (unionfind.ProbeSame):
// true means u and v are definitely connected, false carries no guarantee.
// It is safe concurrently with updates of every stream type and is the
// sampling probe behind the ingest engine's intra-component pre-filter.
func (inc *Incremental) Probe(u, v uint32, budget int) bool {
	if inc.dsu != nil {
		return inc.dsu.ProbeSame(u, v, budget)
	}
	return unionfind.ProbeSame(inc.parent, u, v, budget)
}

// Connected answers a single connectivity query. It is wait-free for Type
// (i) and (ii) algorithms; for Type (iii) it must not run concurrently with
// updates (phase-concurrency, Theorem 3).
func (inc *Incremental) Connected(u, v uint32) bool {
	if inc.dsu != nil {
		return inc.dsu.SameSet(u, v)
	}
	ru, rv := chaseRoot(inc.parent, u), chaseRoot(inc.parent, v)
	for ru != rv {
		pru := atomic.LoadUint32(&inc.parent[ru])
		prv := atomic.LoadUint32(&inc.parent[rv])
		if pru == ru && prv == rv {
			return false
		}
		ru, rv = chaseRoot(inc.parent, pru), chaseRoot(inc.parent, prv)
	}
	return true
}

func chaseRoot(parent []uint32, x uint32) uint32 {
	for {
		p := atomic.LoadUint32(&parent[x])
		if p == x {
			return x
		}
		x = p
	}
}

// Labels returns the current connectivity labeling by read-only parallel
// root chasing: every vertex is labeled with its current root and the
// parent array is never written.
//
// Called quiescently (no concurrent updates) the snapshot is exact.
// Called concurrently with updates it is monotone-consistent: equal labels
// witness real connectivity (a label is reached by following live parent
// pointers, which never leave a component), while unequal labels carry no
// guarantee — an update racing the scan may or may not be reflected, and
// a racing union can re-hook a component's root between two of its
// members' chases, labeling them differently. The previous implementation
// flattened the DSU in place for the snapshot, and a flattening store
// racing a union CAS could overwrite the union's hook — silently losing an
// accepted update forever; chasing without writing removes that hazard
// (exercised by ingest's TestLabelsMonotoneUnderConcurrentUpdates).
func (inc *Incremental) Labels() []uint32 {
	parent := inc.parent
	if inc.dsu != nil {
		parent = inc.dsu.Parents()
	}
	out := make([]uint32, inc.n)
	parallel.For(inc.n, func(i int) { out[i] = chaseRoot(parent, uint32(i)) })
	return out
}

// NumComponents counts the current number of components, under Labels'
// snapshot semantics.
func (inc *Incremental) NumComponents() int {
	labels := inc.Labels()
	return int(parallel.Count(len(labels), func(i int) bool {
		return labels[i] == uint32(i)
	}))
}

// errForestOff is the ForestErr verdict for streams whose algorithm
// supports capture but had it switched off (Options.DisableForestCapture).
var errForestOff = fmt.Errorf("%w: spanning-forest capture disabled for this stream", ErrUnsupported)

// enableForestCapture switches on witness capture. Called by
// Compiled.NewIncremental, quiescently, only when the compile-time
// ForestSupport verdict was nil.
func (inc *Incremental) enableForestCapture() {
	inc.capture = true
	inc.forestErr = nil
	if inc.dsu != nil {
		inc.dsu.EnableWitnessLog()
	}
}

// DisableForestCapture switches witness capture off and releases the Type
// (i) witness log. It must be called quiescently (the ingest engine calls
// it at stream construction); subsequent ForestErr calls report the stream
// as forest-incapable.
func (inc *Incremental) DisableForestCapture() {
	if !inc.capture {
		return
	}
	inc.capture = false
	inc.forestErr = errForestOff
	if inc.dsu != nil {
		inc.dsu.DisableWitnessLog()
	}
}

// ForestErr reports whether this stream maintains a live spanning forest:
// nil when witness capture is on, and otherwise an error wrapping
// ErrUnsupported — the compile-time ForestSupport verdict, or the
// capture-disabled sentinel. Query construction gates on it (the
// fail-at-construction contract mirroring Compile).
func (inc *Incremental) ForestErr() error {
	if inc.capture {
		return nil
	}
	if inc.forestErr != nil {
		return inc.forestErr
	}
	return errForestOff
}

// ForestLen reports how many forest edges have been captured so far. The
// value is exact at quiescence and a momentary snapshot under concurrent
// updates (Type (i) counts reserved log slots, so it may briefly exceed
// what ForestPull can observe).
func (inc *Incremental) ForestLen() int {
	if !inc.capture {
		return 0
	}
	if inc.dsu != nil {
		return inc.dsu.WitnessLogLen()
	}
	inc.fmu.Lock()
	n := len(inc.fbuf)
	inc.fmu.Unlock()
	return n
}

// ForestPull appends the forest edges captured since cursor to dst and
// returns the advanced cursor with the grown slice. Cursors start at 0 and
// are advanced monotonically; published edges never move, so successive
// pulls observe a strictly growing forest prefix. Safe concurrently with
// updates of capture-capable stream types: Type (i) reads the union-find
// witness log wait-free (stopping at the first reserved-but-unpublished
// slot), Type (ii) copies the round-merged buffer under its mutex.
func (inc *Incremental) ForestPull(cursor int, dst []graph.Edge) (int, []graph.Edge) {
	if !inc.capture {
		return cursor, dst
	}
	if inc.dsu != nil {
		var buf [256]uint64
		for {
			next, k := inc.dsu.WitnessLogRead(cursor, buf[:])
			for i := 0; i < k; i++ {
				u, v := concurrent.Unpack(buf[i])
				dst = append(dst, graph.Edge{U: u, V: v})
			}
			cursor = next
			if k < len(buf) {
				return cursor, dst
			}
		}
	}
	inc.fmu.Lock()
	if cursor < len(inc.fbuf) {
		dst = append(dst, inc.fbuf[cursor:]...)
		cursor = len(inc.fbuf)
	}
	inc.fmu.Unlock()
	return cursor, dst
}
