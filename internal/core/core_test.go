package core

import (
	"testing"

	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/sample"
	"connectit/internal/testutil"
	"connectit/internal/unionfind"
)

// allAlgorithms enumerates every finish algorithm instantiation in the
// framework: 36 union-find variants, SV, 16 Liu-Tarjan variants, Stergiou,
// and Label-Propagation (55 total).
func allAlgorithms() []Algorithm {
	var out []Algorithm
	for _, v := range unionfind.Variants() {
		out = append(out, Algorithm{Kind: FinishUnionFind, UF: v})
	}
	out = append(out, Algorithm{Kind: FinishShiloachVishkin})
	for _, v := range liutarjan.Variants() {
		out = append(out, Algorithm{Kind: FinishLiuTarjan, LT: v})
	}
	out = append(out, Algorithm{Kind: FinishStergiou}, Algorithm{Kind: FinishLabelProp})
	return out
}

func samplingModes() []SamplingMode {
	return []SamplingMode{NoSampling, KOutSampling, BFSSampling, LDDSampling}
}

// TestFullMatrix is the paper's central claim in test form: every sampling
// mode composed with every finish algorithm computes correct connectivity
// on every panel graph — several hundred algorithm combinations.
func TestFullMatrix(t *testing.T) {
	panel := testutil.Panel()
	truths := make(map[string][]uint32, len(panel))
	for name, g := range panel {
		truths[name] = testutil.Components(g)
	}
	for _, mode := range samplingModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			for _, alg := range allAlgorithms() {
				cfg := Config{Sampling: mode, Algorithm: alg, Seed: 42}
				for name, g := range panel {
					labels, err := Connectivity(g, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", mode, alg.Name(), name, err)
					}
					testutil.CheckPartition(t, mode.String()+"/"+alg.Name()+"/"+name, labels, truths[name])
				}
			}
		})
	}
}

// TestAlgorithmCountMatchesPaper verifies the framework exposes the paper's
// combination counts: 36 union-find finish variants (×4 sampling modes =
// the paper's 144 union-find implementations) and over 220 total
// connectivity combinations.
func TestAlgorithmCountMatchesPaper(t *testing.T) {
	algos := allAlgorithms()
	uf := 0
	for _, a := range algos {
		if a.Kind == FinishUnionFind {
			uf++
		}
	}
	if uf != 36 {
		t.Fatalf("union-find variants = %d, want 36", uf)
	}
	total := len(algos) * len(samplingModes())
	if total < 220 {
		t.Fatalf("total combinations = %d, want > 220 (paper: over 232)", total)
	}
}

func TestKOutStrategiesComposeWithFinish(t *testing.T) {
	g := testutil.Panel()["rmat"]
	want := testutil.Components(g)
	for _, strat := range []sample.KOutVariant{sample.KOutHybrid, sample.KOutAfforest, sample.KOutPure, sample.KOutMaxDeg} {
		cfg := Config{
			Sampling:     KOutSampling,
			KOutStrategy: strat,
			K:            2,
			Algorithm:    Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SplitAtomicOne}},
			Seed:         7,
		}
		labels, err := Connectivity(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckPartition(t, strat.String(), labels, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.Build(0, nil)
	labels, err := Connectivity(g, Config{Algorithm: Algorithm{Kind: FinishShiloachVishkin}})
	if err != nil || labels != nil {
		t.Fatalf("empty graph: labels=%v err=%v", labels, err)
	}
}

func TestInvalidUnionFindComboSurfacesError(t *testing.T) {
	g := graph.Path(10)
	cfg := Config{Algorithm: Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{
		Union: unionfind.UnionRemCAS, Splice: unionfind.SpliceAtomic, Find: unionfind.FindCompress,
	}}}
	if _, err := Connectivity(g, cfg); err == nil {
		t.Fatal("expected error for Rem+SpliceAtomic+FindCompress")
	}
}

func TestConnectivityDeterministicForFixedSeed(t *testing.T) {
	g := graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 3)
	cfg := Config{Sampling: KOutSampling, Algorithm: Algorithm{Kind: FinishShiloachVishkin}, Seed: 5}
	a, err := Connectivity(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Connectivity(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions must agree (labels may differ across runs only if the
	// algorithm races, which sampling + SV does not for the final labels).
	testutil.CheckPartition(t, "deterministic", a, b)
}

func TestStatsPlumbing(t *testing.T) {
	g := graph.Grid2D(30, 30)
	var s unionfind.Stats
	cfg := Config{
		Algorithm: Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionAsync}},
		Stats:     &s,
	}
	if _, err := Connectivity(g, cfg); err != nil {
		t.Fatal(err)
	}
	if s.Unions() == 0 {
		t.Fatal("stats did not record unions")
	}
}

func TestMapAndGatherEdges(t *testing.T) {
	g := graph.Star(100)
	deg := MapEdges(g)
	if deg[0] != 99 || deg[1] != 1 {
		t.Fatalf("MapEdges degrees wrong: %d, %d", deg[0], deg[1])
	}
	data := make([]uint32, 100)
	for i := range data {
		data[i] = 1
	}
	sums := GatherEdges(g, data)
	if sums[0] != 99 || sums[5] != 1 {
		t.Fatalf("GatherEdges sums wrong: %d, %d", sums[0], sums[5])
	}
}

func TestNumComponentsAndLargest(t *testing.T) {
	labels := []uint32{0, 0, 2, 2, 2, 5}
	if NumComponents(labels) != 3 {
		t.Fatalf("NumComponents = %d", NumComponents(labels))
	}
	l, c := LargestComponent(labels)
	if l != 2 || c != 3 {
		t.Fatalf("LargestComponent = (%d,%d)", l, c)
	}
}
