package core

import (
	"testing"
	"testing/quick"

	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/testutil"
	"connectit/internal/unionfind"
)

// streamAlgorithms enumerates every streaming-capable algorithm: all 36
// union-find variants (Rem+SpliceAtomic becomes Type iii), SV, and the
// RootUp Liu-Tarjan variants.
func streamAlgorithms() []Algorithm {
	var out []Algorithm
	for _, v := range unionfind.Variants() {
		out = append(out, Algorithm{Kind: FinishUnionFind, UF: v})
	}
	out = append(out, Algorithm{Kind: FinishShiloachVishkin})
	for _, v := range liutarjan.Variants() {
		if v.RootBased() {
			out = append(out, Algorithm{Kind: FinishLiuTarjan, LT: v})
		}
	}
	return out
}

func splitBatches(edges []graph.Edge, batch int) [][]graph.Edge {
	var out [][]graph.Edge
	for i := 0; i < len(edges); i += batch {
		hi := i + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		out = append(out, edges[i:hi])
	}
	return out
}

// TestStreamingMatrix ingests a graph in batches through every streaming
// algorithm and checks the final components against ground truth, plus
// mid-stream query consistency.
func TestStreamingMatrix(t *testing.T) {
	g := graph.RMAT(10, 4000, 0.57, 0.19, 0.19, 13)
	edges := g.Edges()
	want := testutil.Components(g)
	for _, alg := range streamAlgorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			inc, err := NewIncremental(g.NumVertices(), Config{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range splitBatches(edges, 500) {
				// Queries re-ask the batch's own edges: must all be true.
				queries := make([][2]uint32, len(b))
				for i, e := range b {
					queries[i] = [2]uint32{e.U, e.V}
				}
				res := inc.ProcessBatch(b, queries)
				if inc.Type() != TypeAsync {
					// For phase-separated/synchronous types the queries run
					// after all updates, so every queried edge is connected.
					for i, r := range res {
						if !r {
							t.Fatalf("batch query %d: edge (%d,%d) not connected after insertion",
								i, b[i].U, b[i].V)
						}
					}
				}
			}
			testutil.CheckPartition(t, alg.Name(), inc.Labels(), want)
		})
	}
}

func TestStreamingTypesClassified(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		want StreamType
	}{
		{Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionAsync}}, TypeAsync},
		{Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SplitAtomicOne}}, TypeAsync},
		{Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.SpliceAtomic}}, TypePhased},
		{Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemLock, Splice: unionfind.SpliceAtomic}}, TypePhased},
		{Algorithm{Kind: FinishShiloachVishkin}, TypeSynchronous},
	}
	for _, c := range cases {
		inc, err := NewIncremental(10, Config{Algorithm: c.alg})
		if err != nil {
			t.Fatal(err)
		}
		if inc.Type() != c.want {
			t.Fatalf("%s: type = %v, want %v", c.alg.Name(), inc.Type(), c.want)
		}
	}
}

func TestStreamingRejectsUnsupported(t *testing.T) {
	unsupported := []Algorithm{
		{Kind: FinishStergiou},
		{Kind: FinishLabelProp},
		{Kind: FinishLiuTarjan, LT: liutarjan.Variant{Connect: liutarjan.ParentConnect}},
	}
	for _, alg := range unsupported {
		if _, err := NewIncremental(10, Config{Algorithm: alg}); err == nil {
			t.Fatalf("%s: expected ErrUnsupported", alg.Name())
		}
	}
}

func TestStreamingQueriesBeforeAnyEdges(t *testing.T) {
	inc, err := NewIncremental(5, Config{Algorithm: Algorithm{Kind: FinishShiloachVishkin}})
	if err != nil {
		t.Fatal(err)
	}
	res := inc.ProcessBatch(nil, [][2]uint32{{0, 1}, {2, 2}})
	if res[0] || !res[1] {
		t.Fatalf("empty-graph queries = %v, want [false true]", res)
	}
	if inc.NumComponents() != 5 {
		t.Fatalf("components = %d, want 5", inc.NumComponents())
	}
}

// TestStreamingBatchPartitionInvariance: the final partition must not
// depend on how the edge stream is cut into batches.
func TestStreamingBatchPartitionInvariance(t *testing.T) {
	f := func(raw []uint16, batchSeed uint8) bool {
		const n = 48
		edges := make([]graph.Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, graph.Edge{U: uint32(r) % n, V: uint32(r>>8) % n})
		}
		alg := Algorithm{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemCAS, Splice: unionfind.HalveAtomicOne, Find: unionfind.FindSplit}}
		batch := int(batchSeed)%7 + 1
		inc1, _ := NewIncremental(n, Config{Algorithm: alg})
		for _, b := range splitBatches(edges, batch) {
			inc1.ProcessBatch(b, nil)
		}
		inc2, _ := NewIncremental(n, Config{Algorithm: alg})
		inc2.ProcessBatch(edges, nil)
		l1, l2 := inc1.Labels(), inc2.Labels()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if (l1[a] == l1[b]) != (l2[a] == l2[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingMixedUpdatesQueries(t *testing.T) {
	// Path built left to right with concurrent queries; after all batches,
	// endpoints must be connected for every algorithm type.
	const n = 2000
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	for _, alg := range []Algorithm{
		{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionAsync, Find: unionfind.FindHalve}},
		{Kind: FinishUnionFind, UF: unionfind.Variant{Union: unionfind.UnionRemLock, Splice: unionfind.SpliceAtomic}},
		{Kind: FinishShiloachVishkin},
	} {
		inc, err := NewIncremental(n, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		queries := [][2]uint32{{0, n - 1}, {5, 6}}
		var last []bool
		for _, b := range splitBatches(edges, 97) {
			last = inc.ProcessBatch(b, queries)
		}
		if !last[0] || !last[1] {
			t.Fatalf("%s: final queries = %v, want all true", alg.Name(), last)
		}
	}
}
