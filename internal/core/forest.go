package core

import (
	"connectit/internal/graph"
)

// SpanningForest runs the ConnectIt spanning forest meta-algorithm
// (Algorithm 2): the sampling phase emits the forest edges inducing its
// partial labeling (Definition B.2), and a root-based finish phase records
// one witness edge per hook (Theorem 6). Supported finish algorithms are
// every union-find variant except Rem+SpliceAtomic, Shiloach-Vishkin, and
// the RootUp Liu-Tarjan variants; other combinations return ErrUnsupported.
// It is a convenience wrapper that compiles cfg and runs it once; repeated
// runs should Compile once and call Compiled.SpanningForest.
func SpanningForest(g *graph.Graph, cfg Config) ([][2]uint32, error) {
	c, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return c.SpanningForest(g)
}
