package core

import (
	"fmt"

	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/parallel"
	"connectit/internal/sample"
	"connectit/internal/shiloachvishkin"
	"connectit/internal/unionfind"
)

// SpanningForest runs the ConnectIt spanning forest meta-algorithm
// (Algorithm 2): the sampling phase emits the forest edges inducing its
// partial labeling (Definition B.2), and a root-based finish phase records
// one witness edge per hook (Theorem 6). Supported finish algorithms are
// every union-find variant except Rem+SpliceAtomic, Shiloach-Vishkin, and
// the RootUp Liu-Tarjan variants; other combinations return ErrUnsupported.
func SpanningForest(g *graph.Graph, cfg Config) ([][2]uint32, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	if err := forestSupported(cfg.Algorithm); err != nil {
		return nil, err
	}
	res := runSampling(g, cfg, true)
	labels := res.Labels
	forest := res.Forest

	var skip []bool
	if cfg.Sampling != NoSampling {
		frequent := sample.MostFrequent(labels, cfg.Seed)
		if !res.Canonical {
			frequent = sample.Canonicalize(labels, frequent)
		}
		skip = make([]bool, n)
		f := frequent
		parallel.For(n, func(i int) { skip[i] = labels[i] == f })
	}

	switch cfg.Algorithm.Kind {
	case FinishUnionFind:
		opt := cfg.Algorithm.UF.Options()
		opt.Stats = cfg.Stats
		opt.RecordWitness = true
		d, err := unionfind.NewFromLabels(labels, opt)
		if err != nil {
			return nil, err
		}
		parallel.ForGrained(n, 256, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if skip != nil && skip[v] {
					continue
				}
				for _, u := range g.Neighbors(graph.Vertex(v)) {
					d.UnionWitness(uint32(v), u, uint32(v), u)
				}
			}
		})
		return d.WitnessEdges(forest), nil
	case FinishShiloachVishkin:
		_, forest = shiloachvishkin.RunForest(g, labels, skip, forest)
		return forest, nil
	case FinishLiuTarjan:
		_, forest, err := liutarjan.RunForest(g, labels, skip, cfg.Algorithm.LT, forest)
		return forest, err
	}
	return nil, fmt.Errorf("%w: spanning forest with %v", ErrUnsupported, cfg.Algorithm.Kind)
}

// forestSupported validates the finish algorithm for spanning forest.
func forestSupported(a Algorithm) error {
	switch a.Kind {
	case FinishUnionFind:
		isRem := a.UF.Union == unionfind.UnionRemCAS || a.UF.Union == unionfind.UnionRemLock
		if isRem && a.UF.Splice == unionfind.SpliceAtomic {
			return fmt.Errorf("%w: spanning forest with Rem+SpliceAtomic", ErrUnsupported)
		}
		return nil
	case FinishShiloachVishkin:
		return nil
	case FinishLiuTarjan:
		if !a.LT.RootBased() {
			return fmt.Errorf("%w: spanning forest with non-RootUp Liu-Tarjan variant %s", ErrUnsupported, a.LT.Code())
		}
		return nil
	}
	return fmt.Errorf("%w: spanning forest with %v", ErrUnsupported, a.Kind)
}
