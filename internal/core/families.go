package core

import (
	"fmt"

	"connectit/internal/graph"
	"connectit/internal/labelprop"
	"connectit/internal/liutarjan"
	"connectit/internal/parallel"
	"connectit/internal/shiloachvishkin"
	"connectit/internal/unionfind"
)

// This file registers the five finish families of §3.3 with the registry.
// Registration order fixes the enumeration order of Algorithms: the 36
// union-find variants, Shiloach-Vishkin, the sixteen Liu-Tarjan variants,
// Stergiou, and Label-Propagation.
//
// Every family's execution hooks are built by one generic constructor
// instantiated across the Runners backend table (flat CSR, byte-compressed,
// segmented), so each backend's finish loop monomorphizes over its
// representation — the compressed paths decode neighbors straight off the
// encoding with no interface calls.

// liutarjanByCode indexes the paper's sixteen Liu-Tarjan variants by their
// four-letter code.
var liutarjanByCode = func() map[string]liutarjan.Variant {
	m := make(map[string]liutarjan.Variant, 16)
	for _, v := range liutarjan.Variants() {
		m[v.Code()] = v
	}
	return m
}()

func liutarjanCodes() string {
	s := ""
	for i, v := range liutarjan.Variants() {
		if i > 0 {
			s += "/"
		}
		s += v.Code()
	}
	return s
}

func init() {
	RegisterFamily(&Family{
		Kind:    FinishUnionFind,
		Name:    "uf",
		Aliases: []string{"union-find"},
		Doc:     "concurrent union-find variants (§3.3.1)",
		Enumerate: func() []Algorithm {
			var out []Algorithm
			for _, v := range unionfind.Variants() {
				out = append(out, Algorithm{Kind: FinishUnionFind, UF: v})
			}
			return out
		},
		ParseParams: parseUFParams,
		Validate: func(a Algorithm) error {
			if err := unionfind.Validate(a.UF.Options()); err != nil {
				return fmt.Errorf("%w: %w", ErrUnsupported, err)
			}
			return nil
		},
		ForestSupport: func(a Algorithm) error {
			if ufIsRem(a.UF) && a.UF.Splice == unionfind.SpliceAtomic {
				return fmt.Errorf("%w: spanning forest with Rem+SpliceAtomic", ErrUnsupported)
			}
			return nil
		},
		StreamSupport: func(a Algorithm) (StreamType, error) {
			// Rem + SpliceAtomic is only phase-concurrent (Theorem 3); every
			// other union-find variant runs updates and queries fully
			// concurrently.
			if ufIsRem(a.UF) && a.UF.Splice == unionfind.SpliceAtomic {
				return TypePhased, nil
			}
			return TypeAsync, nil
		},
		Runners: Runners{
			CSR:        newUFRunner[*graph.Graph],
			Compressed: newUFRunner[*graph.CompressedGraph],
			Segmented:  newUFRunner[*graph.SegmentedGraph],
		},
		NewForest: newUFForest,
		NewIncremental: func(n int, cfg Config, st StreamType) *Incremental {
			return &Incremental{
				kind:  FinishUnionFind,
				stype: st,
				dsu:   unionfind.MustNew(n, ufOptions(cfg)),
				n:     n,
			}
		},
	})

	RegisterFamily(&Family{
		Kind:    FinishShiloachVishkin,
		Name:    "sv",
		Aliases: []string{"shiloach-vishkin"},
		Doc:     "Shiloach-Vishkin hook-and-compress (Algorithm 15)",
		Enumerate: func() []Algorithm {
			return []Algorithm{{Kind: FinishShiloachVishkin}}
		},
		ParseParams:   noParams(FinishShiloachVishkin),
		Validate:      func(Algorithm) error { return nil },
		ForestSupport: func(Algorithm) error { return nil },
		StreamSupport: func(Algorithm) (StreamType, error) { return TypeSynchronous, nil },
		Runners: Runners{
			CSR:        newSVRunner[*graph.Graph],
			Compressed: newSVRunner[*graph.CompressedGraph],
			Segmented:  newSVRunner[*graph.SegmentedGraph],
		},
		NewForest: func(cfg Config) ForestFunc {
			return func(g *graph.Graph, labels []uint32, skip []bool, acc [][2]uint32) ([][2]uint32, error) {
				_, acc = shiloachvishkin.RunForest(g, labels, skip, acc)
				return acc, nil
			}
		},
		NewIncremental: func(n int, cfg Config, st StreamType) *Incremental {
			return &Incremental{kind: FinishShiloachVishkin, stype: st, parent: Identity(n), n: n}
		},
	})

	RegisterFamily(&Family{
		Kind:    FinishLiuTarjan,
		Name:    "lt",
		Aliases: []string{"liu-tarjan"},
		Doc:     "Liu-Tarjan framework variants (§3.3.2, Appendix D)",
		Enumerate: func() []Algorithm {
			var out []Algorithm
			for _, v := range liutarjan.Variants() {
				out = append(out, Algorithm{Kind: FinishLiuTarjan, LT: v})
			}
			return out
		},
		ParseParams: parseLTParams,
		Validate: func(a Algorithm) error {
			if _, ok := liutarjanByCode[a.LT.Code()]; !ok {
				return fmt.Errorf("%w: Liu-Tarjan variant %q is not one of the paper's sixteen (%s)",
					ErrUnsupported, a.LT.Code(), liutarjanCodes())
			}
			return nil
		},
		ForestSupport: func(a Algorithm) error {
			if !a.LT.RootBased() {
				return fmt.Errorf("%w: spanning forest with non-RootUp Liu-Tarjan variant %s", ErrUnsupported, a.LT.Code())
			}
			return nil
		},
		StreamSupport: func(a Algorithm) (StreamType, error) {
			if !a.LT.RootBased() {
				return 0, fmt.Errorf("%w: streaming with non-RootUp Liu-Tarjan variant %s", ErrUnsupported, a.LT.Code())
			}
			return TypeSynchronous, nil
		},
		Runners: Runners{
			CSR:        newLTRunner[*graph.Graph],
			Compressed: newLTRunner[*graph.CompressedGraph],
			Segmented:  newLTRunner[*graph.SegmentedGraph],
		},
		NewForest: func(cfg Config) ForestFunc {
			v := cfg.Algorithm.LT
			return func(g *graph.Graph, labels []uint32, skip []bool, acc [][2]uint32) ([][2]uint32, error) {
				_, acc, err := liutarjan.RunForest(g, labels, skip, v, acc)
				return acc, err
			}
		},
		NewIncremental: func(n int, cfg Config, st StreamType) *Incremental {
			return &Incremental{kind: FinishLiuTarjan, stype: st, lt: cfg.Algorithm.LT, parent: Identity(n), n: n}
		},
	})

	RegisterFamily(&Family{
		Kind:          FinishStergiou,
		Name:          "stergiou",
		Doc:           "Stergiou et al.'s two-array min-label algorithm (§B.2.5)",
		Enumerate:     func() []Algorithm { return []Algorithm{{Kind: FinishStergiou}} },
		ParseParams:   noParams(FinishStergiou),
		Validate:      func(Algorithm) error { return nil },
		ForestSupport: unsupportedForest(FinishStergiou),
		StreamSupport: unsupportedStream(FinishStergiou),
		Runners: Runners{
			CSR:        newStergiouRunner[*graph.Graph],
			Compressed: newStergiouRunner[*graph.CompressedGraph],
			Segmented:  newStergiouRunner[*graph.SegmentedGraph],
		},
	})

	RegisterFamily(&Family{
		Kind:          FinishLabelProp,
		Name:          "lp",
		Aliases:       []string{"label-propagation", "label-prop", "labelprop"},
		Doc:           "folklore frontier-based label propagation (§B.2.6)",
		Enumerate:     func() []Algorithm { return []Algorithm{{Kind: FinishLabelProp}} },
		ParseParams:   noParams(FinishLabelProp),
		Validate:      func(Algorithm) error { return nil },
		ForestSupport: unsupportedForest(FinishLabelProp),
		StreamSupport: unsupportedStream(FinishLabelProp),
		Runners: Runners{
			CSR:        newLPRunner[*graph.Graph],
			Compressed: newLPRunner[*graph.CompressedGraph],
			Segmented:  newLPRunner[*graph.SegmentedGraph],
		},
	})
}

func unsupportedForest(kind FinishKind) func(Algorithm) error {
	return func(Algorithm) error {
		return fmt.Errorf("%w: spanning forest with %v", ErrUnsupported, kind)
	}
}

func unsupportedStream(kind FinishKind) func(Algorithm) (StreamType, error) {
	return func(Algorithm) (StreamType, error) {
		// Updates relabel non-roots, breaking wait-free root queries (§3.5).
		return 0, fmt.Errorf("%w: streaming with %v", ErrUnsupported, kind)
	}
}

func ufIsRem(v unionfind.Variant) bool {
	return v.Union == unionfind.UnionRemCAS || v.Union == unionfind.UnionRemLock
}

// ufOptions derives the DSU options for a union-find configuration.
func ufOptions(cfg Config) unionfind.Options {
	opt := cfg.Algorithm.UF.Options()
	opt.Stats = cfg.Stats
	opt.Seed = cfg.Seed
	return opt
}

// newSVRunner compiles the Shiloach-Vishkin finish hook for one backend.
func newSVRunner[G graph.Rep](cfg Config) *Runner[G] {
	return &Runner[G]{
		Finish: func(g G, labels []uint32, skip []bool) []uint32 {
			shiloachvishkin.Run(g, labels, skip)
			return labels
		},
	}
}

// newLTRunner compiles a Liu-Tarjan finish hook for one backend. The
// compiled runner retains one EdgeRunner, so repeated solver runs reuse
// the round closures, the next-array, and the alter double-buffers instead
// of re-allocating them per run.
func newLTRunner[G graph.Rep](cfg Config) *Runner[G] {
	er := liutarjan.NewEdgeRunner(cfg.Algorithm.LT, false)
	return &Runner[G]{
		Finish: func(g G, labels []uint32, skip []bool) []uint32 {
			er.Run(liutarjan.CollectEdges(g, skip), labels, skip)
			return labels
		},
	}
}

// newStergiouRunner compiles the Stergiou finish hook for one backend.
func newStergiouRunner[G graph.Rep](cfg Config) *Runner[G] {
	return &Runner[G]{
		Finish: func(g G, labels []uint32, skip []bool) []uint32 {
			liutarjan.RunStergiou(g, labels, skip)
			return labels
		},
	}
}

// newLPRunner compiles the Label-Propagation finish hook for one backend.
func newLPRunner[G graph.Rep](cfg Config) *Runner[G] {
	return &Runner[G]{
		Finish: func(g G, labels []uint32, skip []bool) []uint32 {
			labelprop.Run(g, labels, skip)
			return labels
		},
	}
}

// newUFRunner compiles the union-find finish hook for one backend. The
// runner retains one DSU and Resets it each run, so repeated runs on
// same-sized graphs reuse the auxiliary allocations (hooks, locks,
// priorities) instead of paying New every time.
func newUFRunner[G graph.Rep](cfg Config) *Runner[G] {
	d := unionfind.MustNew(0, ufOptions(cfg))
	return &Runner[G]{
		Finish: func(g G, labels []uint32, skip []bool) []uint32 {
			d.Reset(labels)
			unionFindFinish(g, d, skip)
			return d.Labels()
		},
	}
}

// newUFForest compiles the union-find witness-recording forest hook. The
// DSU is created lazily on the first forest run and retained for reuse.
func newUFForest(cfg Config) ForestFunc {
	opt := ufOptions(cfg)
	opt.RecordWitness = true
	var df *unionfind.DSU
	return func(g *graph.Graph, labels []uint32, skip []bool, acc [][2]uint32) ([][2]uint32, error) {
		if df == nil {
			df = unionfind.MustNew(0, opt)
		}
		df.Reset(labels)
		n := g.NumVertices()
		parallel.ForGrained(n, 256, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if skip != nil && skip[v] {
					continue
				}
				for _, u := range g.Neighbors(graph.Vertex(v)) {
					df.UnionWitness(uint32(v), u, uint32(v), u)
				}
			}
		})
		return df.WitnessEdges(acc), nil
	}
}

// unionFindFinish applies every edge incident to an unskipped vertex.
//
// The sweep is direction-oriented (DESIGN.md §3.1): the symmetric CSR
// stores each undirected edge twice, and the old sweep paid a Union per
// direction — every edge cost two find/CAS walks, one of them guaranteed
// redundant. Each edge is now unioned exactly once, from its lower-degree
// endpoint (ties toward the lower id), which both halves the union count
// and starts each walk at the endpoint with the cheaper expected path.
// When the reverse endpoint is skipped (the sampled most-frequent
// component, whose out-edges are never scanned) the unskipped side
// processes the edge regardless, as the only side that sees it. Decode
// scratch is per pool worker, reused across the worker's chunks.
func unionFindFinish[G graph.Rep](g G, d *unionfind.DSU, skip []bool) {
	n := g.NumVertices()
	const grain = 256
	bufs := make([][]graph.Vertex, parallel.Width(n, grain))
	parallel.ForWorkerSized(n, grain, len(bufs), func(w *parallel.Worker, lo, hi int) {
		buf := bufs[w.ID()]
		for v := lo; v < hi; v++ {
			if skip != nil && skip[v] {
				continue
			}
			dv := g.Degree(graph.Vertex(v))
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for _, u := range buf {
				if skip != nil && skip[u] {
					d.Union(uint32(v), u)
					continue
				}
				du := g.Degree(u)
				if dv < du || (dv == du && graph.Vertex(v) < u) {
					d.Union(uint32(v), u)
				}
			}
		}
		bufs[w.ID()] = buf
	})
}
