// Package core implements the ConnectIt framework proper: the two-phase
// connectivity meta-algorithm (Algorithm 1) composing a sampling phase with
// a finish phase, the spanning forest extension (Algorithm 2), and the
// batch-incremental streaming extension (Algorithm 3).
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/labelprop"
	"connectit/internal/liutarjan"
	"connectit/internal/parallel"
	"connectit/internal/sample"
	"connectit/internal/shiloachvishkin"
	"connectit/internal/unionfind"
)

// SamplingMode selects the sampling phase.
type SamplingMode int

// The sampling modes of §3.2 (or none).
const (
	NoSampling SamplingMode = iota
	KOutSampling
	BFSSampling
	LDDSampling
)

func (s SamplingMode) String() string {
	switch s {
	case NoSampling:
		return "none"
	case KOutSampling:
		return "kout"
	case BFSSampling:
		return "bfs"
	case LDDSampling:
		return "ldd"
	}
	return fmt.Sprintf("SamplingMode(%d)", int(s))
}

// FinishKind selects the finish algorithm family.
type FinishKind int

// The finish families of §3.3.
const (
	FinishUnionFind FinishKind = iota
	FinishShiloachVishkin
	FinishLiuTarjan
	FinishStergiou
	FinishLabelProp
)

func (f FinishKind) String() string {
	switch f {
	case FinishUnionFind:
		return "union-find"
	case FinishShiloachVishkin:
		return "shiloach-vishkin"
	case FinishLiuTarjan:
		return "liu-tarjan"
	case FinishStergiou:
		return "stergiou"
	case FinishLabelProp:
		return "label-propagation"
	}
	return fmt.Sprintf("FinishKind(%d)", int(f))
}

// Algorithm identifies one finish algorithm instantiation.
type Algorithm struct {
	Kind FinishKind
	// UF configures the union-find variant when Kind == FinishUnionFind.
	UF unionfind.Variant
	// LT configures the framework variant when Kind == FinishLiuTarjan.
	LT liutarjan.Variant
}

// Name renders the paper's naming for the algorithm.
func (a Algorithm) Name() string {
	switch a.Kind {
	case FinishUnionFind:
		return a.UF.Name()
	case FinishLiuTarjan:
		return "Liu-Tarjan;" + a.LT.Code()
	default:
		return a.Kind.String()
	}
}

// Config selects a complete ConnectIt algorithm: a sampling phase plus a
// finish phase (Figure 1).
type Config struct {
	Sampling SamplingMode

	// K is the k-out parameter (default 2).
	K int
	// KOutStrategy selects the k-out edge-selection variant.
	KOutStrategy sample.KOutVariant
	// BFSTries is the number of BFS sampling attempts (default 3).
	BFSTries int
	// Beta is the LDD parameter (default 0.2).
	Beta float64
	// LDDPermute randomizes the LDD start-time order.
	LDDPermute bool

	Algorithm Algorithm

	// Seed drives all randomized choices; fixed seeds give reproducible
	// runs.
	Seed uint64
	// Stats receives union-find path-length instrumentation when non-nil.
	Stats *unionfind.Stats
}

// ErrUnsupported reports a framework combination the paper excludes.
var ErrUnsupported = errors.New("connectit: unsupported combination")

// Identity returns the identity labeling for n vertices.
func Identity(n int) []uint32 {
	labels := make([]uint32, n)
	parallel.For(n, func(i int) { labels[i] = uint32(i) })
	return labels
}

// runSampling executes the configured sampling phase and returns the star
// labeling plus (optionally) the partial spanning forest.
func runSampling(g *graph.Graph, cfg Config, forest bool) *sample.Result {
	switch cfg.Sampling {
	case KOutSampling:
		k := cfg.K
		if k == 0 {
			k = 2
		}
		return sample.KOut(g, k, cfg.KOutStrategy, cfg.Seed, forest)
	case BFSSampling:
		tries := cfg.BFSTries
		if tries == 0 {
			tries = 3
		}
		return sample.BFS(g, tries, cfg.Seed, forest)
	case LDDSampling:
		beta := cfg.Beta
		if beta == 0 {
			beta = 0.2
		}
		return sample.LDD(g, beta, cfg.LDDPermute, cfg.Seed, forest)
	default:
		return &sample.Result{Labels: Identity(g.NumVertices())}
	}
}

// Connectivity runs the ConnectIt connectivity meta-algorithm (Algorithm 1)
// and returns a connectivity labeling: labels[u] == labels[v] iff u and v
// are connected. It returns an error only for combinations the paper
// proves incorrect (via unionfind.New validation).
func Connectivity(g *graph.Graph, cfg Config) ([]uint32, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	res := runSampling(g, cfg, false)
	labels := res.Labels

	var skip []bool
	if cfg.Sampling != NoSampling {
		frequent := sample.MostFrequent(labels, cfg.Seed)
		// Canonicalize stars to minimum-rooted form so every finish
		// algorithm's invariants hold (DESIGN.md §4). k-out stars are
		// already canonical.
		if !res.Canonical {
			frequent = sample.Canonicalize(labels, frequent)
		}
		skip = make([]bool, n)
		f := frequent
		parallel.For(n, func(i int) { skip[i] = labels[i] == f })
	}

	switch cfg.Algorithm.Kind {
	case FinishUnionFind:
		opt := cfg.Algorithm.UF.Options()
		opt.Stats = cfg.Stats
		d, err := unionfind.NewFromLabels(labels, opt)
		if err != nil {
			return nil, err
		}
		unionFindFinish(g, d, skip)
		return d.Labels(), nil
	case FinishShiloachVishkin:
		shiloachvishkin.Run(g, labels, skip)
		return labels, nil
	case FinishLiuTarjan:
		liutarjan.Run(g, labels, skip, cfg.Algorithm.LT)
		return labels, nil
	case FinishStergiou:
		liutarjan.RunStergiou(g, labels, skip)
		return labels, nil
	case FinishLabelProp:
		labelprop.Run(g, labels, skip)
		return labels, nil
	}
	return nil, fmt.Errorf("%w: unknown finish kind %v", ErrUnsupported, cfg.Algorithm.Kind)
}

// unionFindFinish applies every edge incident to an unskipped vertex.
func unionFindFinish(g *graph.Graph, d *unionfind.DSU, skip []bool) {
	n := g.NumVertices()
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if skip != nil && skip[v] {
				continue
			}
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				d.Union(uint32(v), u)
			}
		}
	})
}

// NumComponents counts distinct labels in a flattened labeling.
func NumComponents(labels []uint32) int {
	count := 0
	seen := make(map[uint32]struct{}, 64)
	for _, l := range labels {
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			count++
		}
	}
	return count
}

// LargestComponent returns the most frequent label and its vertex count.
func LargestComponent(labels []uint32) (uint32, int) {
	counts := make(map[uint32]int)
	for _, l := range labels {
		counts[l]++
	}
	var best uint32
	bestC := 0
	for l, c := range counts {
		if c > bestC || (c == bestC && l < best) {
			best, bestC = l, c
		}
	}
	return best, bestC
}

// MapEdges performs one parallel pass over every directed edge, returning a
// per-vertex reduction of f — the paper's MAPEDGES baseline primitive
// (Table 8), the cost of reading the graph.
func MapEdges(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	out := make([]uint32, n)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var s uint32
			for range g.Neighbors(graph.Vertex(v)) {
				s++
			}
			out[v] = s
		}
	})
	return out
}

// GatherEdges performs one parallel pass over every directed edge with an
// indirect read through the neighbor into data — the paper's GATHEREDGES
// lower-bound primitive (Table 8): every correct connectivity algorithm
// performs at least this access pattern.
func GatherEdges(g *graph.Graph, data []uint32) []uint32 {
	n := g.NumVertices()
	out := make([]uint32, n)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var s uint32
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				s += atomic.LoadUint32(&data[u])
			}
			out[v] = s
		}
	})
	return out
}
