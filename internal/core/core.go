// Package core implements the ConnectIt framework proper: the two-phase
// connectivity meta-algorithm (Algorithm 1) composing a sampling phase with
// a finish phase, the spanning forest extension (Algorithm 2), and the
// batch-incremental streaming extension (Algorithm 3).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/parallel"
	"connectit/internal/sample"
	"connectit/internal/unionfind"
)

// SamplingMode selects the sampling phase.
type SamplingMode int

// The sampling modes of §3.2 (or none).
const (
	NoSampling SamplingMode = iota
	KOutSampling
	BFSSampling
	LDDSampling
)

func (s SamplingMode) String() string {
	switch s {
	case NoSampling:
		return "none"
	case KOutSampling:
		return "kout"
	case BFSSampling:
		return "bfs"
	case LDDSampling:
		return "ldd"
	}
	return fmt.Sprintf("SamplingMode(%d)", int(s))
}

// FinishKind selects the finish algorithm family.
type FinishKind int

// The finish families of §3.3.
const (
	FinishUnionFind FinishKind = iota
	FinishShiloachVishkin
	FinishLiuTarjan
	FinishStergiou
	FinishLabelProp
)

func (f FinishKind) String() string {
	switch f {
	case FinishUnionFind:
		return "union-find"
	case FinishShiloachVishkin:
		return "shiloach-vishkin"
	case FinishLiuTarjan:
		return "liu-tarjan"
	case FinishStergiou:
		return "stergiou"
	case FinishLabelProp:
		return "label-propagation"
	}
	return fmt.Sprintf("FinishKind(%d)", int(f))
}

// Algorithm identifies one finish algorithm instantiation.
type Algorithm struct {
	Kind FinishKind
	// UF configures the union-find variant when Kind == FinishUnionFind.
	UF unionfind.Variant
	// LT configures the framework variant when Kind == FinishLiuTarjan.
	LT liutarjan.Variant
}

// Name renders the paper's naming for the algorithm.
func (a Algorithm) Name() string {
	switch a.Kind {
	case FinishUnionFind:
		return a.UF.Name()
	case FinishLiuTarjan:
		return "Liu-Tarjan;" + a.LT.Code()
	default:
		return a.Kind.String()
	}
}

// Config selects a complete ConnectIt algorithm: a sampling phase plus a
// finish phase (Figure 1).
type Config struct {
	Sampling SamplingMode

	// K is the k-out parameter (default 2).
	K int
	// KOutStrategy selects the k-out edge-selection variant.
	KOutStrategy sample.KOutVariant
	// BFSTries is the number of BFS sampling attempts (default 3).
	BFSTries int
	// Beta is the LDD parameter (default 0.2).
	Beta float64
	// LDDPermute randomizes the LDD start-time order.
	LDDPermute bool

	Algorithm Algorithm

	// Seed drives all randomized choices; fixed seeds give reproducible
	// runs.
	Seed uint64
	// Stats receives union-find path-length instrumentation when non-nil.
	Stats *unionfind.Stats
}

// ErrUnsupported reports a framework combination the paper excludes.
var ErrUnsupported = errors.New("connectit: unsupported combination")

// Identity returns the identity labeling for n vertices.
func Identity(n int) []uint32 {
	labels := make([]uint32, n)
	parallel.For(n, func(i int) { labels[i] = uint32(i) })
	return labels
}

// runSampling executes the configured sampling phase over any graph
// representation and returns the star labeling plus (optionally) the
// partial spanning forest.
func runSampling[G graph.Rep](g G, cfg Config, forest bool) *sample.Result {
	switch cfg.Sampling {
	case KOutSampling:
		k := cfg.K
		if k == 0 {
			k = 2
		}
		return sample.KOut(g, k, cfg.KOutStrategy, cfg.Seed, forest)
	case BFSSampling:
		tries := cfg.BFSTries
		if tries == 0 {
			tries = 3
		}
		return sample.BFS(g, tries, cfg.Seed, forest)
	case LDDSampling:
		beta := cfg.Beta
		if beta == 0 {
			beta = 0.2
		}
		return sample.LDD(g, beta, cfg.LDDPermute, cfg.Seed, forest)
	default:
		return &sample.Result{Labels: Identity(g.NumVertices())}
	}
}

// Connectivity runs the ConnectIt connectivity meta-algorithm (Algorithm 1)
// and returns a connectivity labeling: labels[u] == labels[v] iff u and v
// are connected. It is a convenience wrapper that compiles cfg and runs it
// once; repeated runs should Compile once and call Components.
func Connectivity(g *graph.Graph, cfg Config) ([]uint32, error) {
	c, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return c.Components(g), nil
}

// flattened reports whether every label is an in-range root
// (labels[labels[v]] == labels[v]) — the form every labeling the framework
// returns is in, and the precondition for the parallel reductions below.
func flattened(labels []uint32) bool {
	n := len(labels)
	var bad atomic.Bool
	parallel.ForGrained(n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l := labels[i]
			if int(l) >= n || labels[l] != l {
				bad.Store(true)
				return
			}
		}
	})
	return !bad.Load()
}

// NumComponents counts distinct labels in a labeling. For flattened
// labelings (everything the framework returns) the count is a parallel
// reduction over the roots — no hash map; arbitrary labelings fall back to
// a sequential scan.
func NumComponents(labels []uint32) int {
	if !flattened(labels) {
		seen := make(map[uint32]struct{}, 64)
		for _, l := range labels {
			seen[l] = struct{}{}
		}
		return len(seen)
	}
	return int(parallel.Count(len(labels), func(i int) bool {
		return labels[i] == uint32(i)
	}))
}

// LargestComponent returns the most frequent label in a labeling and the
// number of vertices carrying it (ties break toward the smaller label).
// For flattened labelings counting is a parallel histogram over the label
// space; arbitrary labelings fall back to a sequential hash map.
func LargestComponent(labels []uint32) (uint32, int) {
	n := len(labels)
	if n == 0 {
		return 0, 0
	}
	if !flattened(labels) {
		counts := make(map[uint32]int)
		for _, l := range labels {
			counts[l]++
		}
		var best uint32
		bestC := 0
		for l, c := range counts {
			if c > bestC || (c == bestC && l < best) {
				best, bestC = l, c
			}
		}
		return best, bestC
	}
	counts := make([]uint32, n)
	parallel.ForGrained(n, 2048, func(lo, hi int) {
		// Batch runs of equal labels into one atomic add: real labelings are
		// dominated by one root, so per-element RMWs would serialize every
		// worker on that root's cache line.
		i := lo
		for i < hi {
			l := labels[i]
			j := i + 1
			for j < hi && labels[j] == l {
				j++
			}
			atomic.AddUint32(&counts[l], uint32(j-i))
			i = j
		}
	})
	var mu sync.Mutex
	var best uint32
	bestC := uint32(0)
	parallel.ForGrained(n, 2048, func(lo, hi int) {
		localBest, localC := uint32(0), uint32(0)
		for i := lo; i < hi; i++ {
			if c := counts[i]; c > localC || (c == localC && c > 0 && uint32(i) < localBest) {
				localBest, localC = uint32(i), c
			}
		}
		mu.Lock()
		if localC > bestC || (localC == bestC && localC > 0 && localBest < best) {
			best, bestC = localBest, localC
		}
		mu.Unlock()
	})
	return best, int(bestC)
}

// MapEdges performs one parallel pass over every directed edge, returning a
// per-vertex reduction of f — the paper's MAPEDGES baseline primitive
// (Table 8), the cost of reading the graph. Generic over the
// representation, it doubles as the decode-throughput probe for the
// compressed backend.
func MapEdges[G graph.Rep](g G) []uint32 {
	n := g.NumVertices()
	out := make([]uint32, n)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf []graph.Vertex
		for v := lo; v < hi; v++ {
			var s uint32
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for range buf {
				s++
			}
			out[v] = s
		}
	})
	return out
}

// GatherEdges performs one parallel pass over every directed edge with an
// indirect read through the neighbor into data — the paper's GATHEREDGES
// lower-bound primitive (Table 8): every correct connectivity algorithm
// performs at least this access pattern.
func GatherEdges[G graph.Rep](g G, data []uint32) []uint32 {
	n := g.NumVertices()
	out := make([]uint32, n)
	parallel.ForGrained(n, 256, func(lo, hi int) {
		var buf []graph.Vertex
		for v := lo; v < hi; v++ {
			var s uint32
			buf = g.NeighborsInto(graph.Vertex(v), buf)
			for _, u := range buf {
				s += atomic.LoadUint32(&data[u])
			}
			out[v] = s
		}
	})
	return out
}
