package core

import (
	"fmt"

	"connectit/internal/graph"
	"connectit/internal/parallel"
	"connectit/internal/sample"
)

// Capabilities reports what a compiled configuration supports beyond static
// connectivity. It is derived from the family registry, not hand-maintained.
type Capabilities struct {
	// SpanningForest reports support for Algorithm 2 (§3.4).
	SpanningForest bool
	// Streaming reports support for batch-incremental execution (§3.5).
	Streaming bool
	// StreamType is the batch classification when Streaming is true.
	StreamType StreamType
	// WaitFreeQueries reports that connectivity queries never block on
	// concurrent updates: true for Type (i) and (ii) streams, false for
	// Type (iii), whose queries are phase-separated from updates by a
	// barrier (Theorem 3).
	WaitFreeQueries bool
}

// Compiled is a compiled ConnectIt algorithm instance: Compile validates
// the sampling × finish combination once, precomputes the dispatch closures
// that the free functions previously re-derived on every call, and retains
// scratch buffers (labels, skip flags, union-find auxiliary arrays) so
// repeated runs over same-sized graphs avoid re-allocation on the finish
// hot path. It is the engine behind the public connectit.Solver.
//
// A Compiled carries one monomorphized runner per registered graph
// representation (flat CSR, byte-compressed CSR, and segmented), so the
// same instance runs directly on whichever representation was built or
// loaded — Components for CSR, ComponentsCompressed for compressed,
// ComponentsSegmented for segmented, ComponentsOn to dispatch on a
// representation chosen at load time.
//
// A Compiled is not safe for concurrent use — it owns scratch state.
// Compile one instance per goroutine; compilation is cheap.
type Compiled struct {
	cfg    Config
	family *Family
	run    *Runner[*graph.Graph]
	runC   *Runner[*graph.CompressedGraph]
	runS   *Runner[*graph.SegmentedGraph]
	forest ForestFunc

	forestErr  error
	streamType StreamType
	streamErr  error

	labels []uint32 // identity-labeling scratch for the NoSampling path
	skip   []bool   // most-frequent-component skip-flag scratch
}

// Compile validates cfg against the registry and returns an executable
// instance. Every ErrUnsupported case surfaces at compile time: invalid
// combinations fail here, and the forest/streaming restrictions are
// captured once and returned unchanged by SpanningForest/NewIncremental
// instead of being re-derived mid-run.
func Compile(cfg Config) (*Compiled, error) {
	f, ok := familiesByKind[cfg.Algorithm.Kind]
	if !ok {
		return nil, fmt.Errorf("%w: unknown finish kind %v", ErrUnsupported, cfg.Algorithm.Kind)
	}
	if err := f.Validate(cfg.Algorithm); err != nil {
		return nil, err
	}
	c := &Compiled{cfg: cfg, family: f}
	c.forestErr = f.ForestSupport(cfg.Algorithm)
	c.streamType, c.streamErr = f.StreamSupport(cfg.Algorithm)
	c.run = f.Runners.CSR(cfg)
	c.runC = f.Runners.Compressed(cfg)
	c.runS = f.Runners.Segmented(cfg)
	if c.forestErr == nil && f.NewForest != nil {
		c.forest = f.NewForest(cfg)
	}
	return c, nil
}

// Config returns the configuration the instance was compiled from.
func (c *Compiled) Config() Config { return c.cfg }

// Name returns the canonical spec string of the compiled combination;
// ParseConfig round-trips it.
func (c *Compiled) Name() string { return c.cfg.Name() }

// ForestErr returns nil when the combination supports spanning forest, or
// the ErrUnsupported verdict captured at compile time. It is the error
// SpanningForest would return, exposed so capability-gated surfaces (the
// query layer) can fail at construction.
func (c *Compiled) ForestErr() error { return c.forestErr }

// Capabilities reports what the compiled combination supports.
func (c *Compiled) Capabilities() Capabilities {
	return Capabilities{
		SpanningForest:  c.forestErr == nil,
		Streaming:       c.streamErr == nil,
		StreamType:      c.streamType,
		WaitFreeQueries: c.streamErr == nil && c.streamType != TypePhased,
	}
}

// prepare runs the sampling phase (phase one of Algorithm 1) over any
// representation and returns the star-form labeling, the skip flags for the
// most frequent sampled component, and — when forest is set — the sampled
// partial forest. The labels (NoSampling) and skip buffers are instance
// scratch. It is a free generic function because Go methods cannot take
// type parameters.
func prepare[G graph.Rep](c *Compiled, g G, forest bool) ([]uint32, []bool, [][2]uint32) {
	n := g.NumVertices()
	if c.cfg.Sampling == NoSampling {
		if cap(c.labels) < n {
			c.labels = make([]uint32, n)
		}
		labels := c.labels[:n]
		parallel.For(n, func(i int) { labels[i] = uint32(i) })
		return labels, nil, nil
	}
	res := runSampling(g, c.cfg, forest)
	labels := res.Labels
	frequent := sample.MostFrequent(labels, c.cfg.Seed)
	// Canonicalize stars to minimum-rooted form so every finish algorithm's
	// invariants hold (DESIGN.md §4). k-out stars are already canonical.
	if !res.Canonical {
		frequent = sample.Canonicalize(labels, frequent)
	}
	if cap(c.skip) < n {
		c.skip = make([]bool, n)
	}
	skip := c.skip[:n]
	f := frequent
	parallel.For(n, func(i int) { skip[i] = labels[i] == f })
	return labels, skip, res.Forest
}

// components runs Algorithm 1 over one monomorphized backend runner.
func components[G graph.Rep](c *Compiled, g G, run *Runner[G]) []uint32 {
	if g.NumVertices() == 0 {
		return nil
	}
	labels, skip, _ := prepare(c, g, false)
	return run.Finish(g, labels, skip)
}

// Components runs the compiled combination over g (Algorithm 1) and
// returns a connectivity labeling: labels[u] == labels[v] iff u and v are
// connected. It cannot fail — all validation happened in Compile.
//
// In the NoSampling configuration the returned slice is scratch owned by
// the instance and is overwritten by the next run; copy it if it must
// outlive the next call. Sampled configurations return a fresh slice.
func (c *Compiled) Components(g *graph.Graph) []uint32 {
	return components(c, g, c.run)
}

// ComponentsCompressed is Components directly over the byte-compressed
// representation: sampling and finish decode neighbors off the encoding,
// never materializing a flat CSR.
func (c *Compiled) ComponentsCompressed(g *graph.CompressedGraph) []uint32 {
	return components(c, g, c.runC)
}

// ComponentsSegmented is Components directly over the multi-segment
// byte-compressed representation — the out-of-core backend: sampling and
// finish decode neighbors segment by segment off the (possibly memory-
// mapped) encoding, never materializing a flat CSR.
func (c *Compiled) ComponentsSegmented(g *graph.SegmentedGraph) []uint32 {
	return components(c, g, c.runS)
}

// ComponentsOn dispatches Components on the concrete representation behind
// r — the load-time-chosen backend path used by the CLI and the public
// Solver. The dispatch happens once per run; the selected kernel is the
// same monomorphized code Components/ComponentsCompressed run.
func (c *Compiled) ComponentsOn(r graph.Rep) ([]uint32, error) {
	switch g := r.(type) {
	case *graph.Graph:
		return c.Components(g), nil
	case *graph.CompressedGraph:
		return c.ComponentsCompressed(g), nil
	case *graph.SegmentedGraph:
		return c.ComponentsSegmented(g), nil
	}
	return nil, fmt.Errorf("%w: graph representation %T", ErrUnsupported, r)
}

// SpanningForest computes a spanning forest of g (Algorithm 2): the
// sampling phase emits the forest edges inducing its partial labeling
// (Definition B.2) and the root-based finish phase records one witness
// edge per hook (Theorem 6). Combinations the paper excludes return the
// ErrUnsupported error captured at compile time.
func (c *Compiled) SpanningForest(g *graph.Graph) ([][2]uint32, error) {
	if c.forestErr != nil {
		return nil, c.forestErr
	}
	if g.NumVertices() == 0 {
		return nil, nil
	}
	labels, skip, acc := prepare(c, g, true)
	return c.forest(g, labels, skip, acc)
}

// NewIncremental creates a batch-incremental streaming structure over n
// initially isolated vertices (§3.5) running the compiled finish
// algorithm. Combinations that cannot stream return the ErrUnsupported
// error captured at compile time.
//
// When the combination also supports spanning forest, witness capture is
// enabled by default: every accepted union deposits its witness edge
// (DESIGN.md §12), feeding the live forest behind the query layer.
// Incremental.DisableForestCapture opts out; combinations without forest
// support carry the compile-time verdict, surfaced by Incremental.ForestErr.
func (c *Compiled) NewIncremental(n int) (*Incremental, error) {
	if c.streamErr != nil {
		return nil, c.streamErr
	}
	inc := c.family.NewIncremental(n, c.cfg, c.streamType)
	if c.forestErr == nil {
		inc.enableForestCapture()
	} else {
		inc.forestErr = c.forestErr
	}
	return inc, nil
}
