module connectit

go 1.24
