// Package connectit is a Go implementation of the ConnectIt framework for
// static and incremental parallel graph connectivity (Dhulipala, Hong, Shun;
// VLDB 2020).
//
// ConnectIt composes a sampling phase (k-out, BFS, or LDD sampling) with a
// finish phase drawn from a large family of min-based concurrent
// connectivity algorithms — 36 union-find variants, Shiloach-Vishkin, the
// sixteen Liu-Tarjan framework algorithms, Stergiou's algorithm, and
// Label-Propagation — yielding several hundred distinct parallel
// connectivity algorithms, most of which extend to spanning forest and to
// batch-incremental (streaming) connectivity.
//
// # Quick start
//
//	g := connectit.BuildGraph(5, []connectit.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
//	labels, err := connectit.Connectivity(g, connectit.DefaultConfig())
//	// labels[0] == labels[2], labels[3] == labels[4], labels[0] != labels[3]
//
// Pick specific algorithm combinations with Config:
//
//	cfg := connectit.Config{
//	    Sampling:  connectit.KOutSampling,
//	    Algorithm: connectit.UnionFindAlgorithm(connectit.UnionRemCAS, connectit.FindNaive, connectit.SplitAtomicOne),
//	}
//	labels, err := connectit.Connectivity(g, cfg)
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package connectit

import (
	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/liutarjan"
	"connectit/internal/unionfind"
)

// Graph is an undirected graph in compressed sparse row form. Build one
// with BuildGraph or the generators (NewRMAT, NewGrid2D, ...).
type Graph = graph.Graph

// Edge is an undirected edge (COO form).
type Edge = graph.Edge

// Vertex identifies a vertex (0-based).
type Vertex = graph.Vertex

// Config selects a complete ConnectIt algorithm: a sampling strategy plus a
// finish algorithm (Figure 1 of the paper).
type Config = core.Config

// Algorithm identifies a finish algorithm instantiation.
type Algorithm = core.Algorithm

// Stats collects union-find path-length instrumentation (TPL/MPL).
type Stats = unionfind.Stats

// Incremental maintains connectivity under batches of edge insertions mixed
// with connectivity queries.
type Incremental = core.Incremental

// Sampling modes (§3.2 of the paper).
const (
	NoSampling   = core.NoSampling
	KOutSampling = core.KOutSampling
	BFSSampling  = core.BFSSampling
	LDDSampling  = core.LDDSampling
)

// Union-find union rules (§3.3.1).
const (
	UnionAsync   = unionfind.UnionAsync
	UnionHooks   = unionfind.UnionHooks
	UnionEarly   = unionfind.UnionEarly
	UnionRemCAS  = unionfind.UnionRemCAS
	UnionRemLock = unionfind.UnionRemLock
	UnionJTB     = unionfind.UnionJTB
)

// Union-find find rules (Algorithm 8).
const (
	FindNaive       = unionfind.FindNaive
	FindSplit       = unionfind.FindSplit
	FindHalve       = unionfind.FindHalve
	FindCompress    = unionfind.FindCompress
	FindTwoTrySplit = unionfind.FindTwoTrySplit
)

// Rem's algorithm splice rules (Algorithm 9).
const (
	SplitAtomicOne = unionfind.SplitAtomicOne
	HalveAtomicOne = unionfind.HalveAtomicOne
	SpliceAtomic   = unionfind.SpliceAtomic
)

// ErrUnsupported reports a framework combination the paper excludes (e.g.
// Rem + SpliceAtomic + FindCompress, or spanning forest with a
// non-root-based algorithm).
var ErrUnsupported = core.ErrUnsupported

// DefaultConfig returns the paper's recommended robust configuration:
// k-out sampling (hybrid, k = 2) finished by Union-Rem-CAS with
// SplitAtomicOne and no extra find compression (§4.2 takeaways).
func DefaultConfig() Config {
	return Config{
		Sampling:  core.KOutSampling,
		Algorithm: UnionFindAlgorithm(UnionRemCAS, FindNaive, SplitAtomicOne),
	}
}

// UnionFindAlgorithm selects a union-find finish algorithm.
func UnionFindAlgorithm(u unionfind.UnionOption, f unionfind.FindOption, s unionfind.SpliceOption) Algorithm {
	return Algorithm{
		Kind: core.FinishUnionFind,
		UF:   unionfind.Variant{Union: u, Find: f, Splice: s},
	}
}

// ShiloachVishkinAlgorithm selects the Shiloach-Vishkin finish algorithm.
func ShiloachVishkinAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishShiloachVishkin}
}

// LiuTarjanAlgorithm selects a Liu-Tarjan framework variant by its
// four-letter code (e.g. "CRFA", "PUS"); see liutarjan variant naming in
// the paper's Appendix D.
func LiuTarjanAlgorithm(code string) (Algorithm, bool) {
	for _, v := range liutarjan.Variants() {
		if v.Code() == code {
			return Algorithm{Kind: core.FinishLiuTarjan, LT: v}, true
		}
	}
	return Algorithm{}, false
}

// StergiouAlgorithm selects Stergiou et al.'s algorithm.
func StergiouAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishStergiou}
}

// LabelPropagationAlgorithm selects the folklore Label-Propagation
// algorithm.
func LabelPropagationAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishLabelProp}
}

// Algorithms enumerates every finish algorithm in the framework: the 36
// union-find variants, Shiloach-Vishkin, the 16 Liu-Tarjan variants,
// Stergiou, and Label-Propagation. Crossed with the four sampling modes,
// these are the paper's several hundred connectivity implementations.
func Algorithms() []Algorithm {
	var out []Algorithm
	for _, v := range unionfind.Variants() {
		out = append(out, Algorithm{Kind: core.FinishUnionFind, UF: v})
	}
	out = append(out, ShiloachVishkinAlgorithm())
	for _, v := range liutarjan.Variants() {
		out = append(out, Algorithm{Kind: core.FinishLiuTarjan, LT: v})
	}
	out = append(out, StergiouAlgorithm(), LabelPropagationAlgorithm())
	return out
}

// Connectivity computes the connected components of g: the returned
// labeling satisfies labels[u] == labels[v] iff u and v are connected.
func Connectivity(g *Graph, cfg Config) ([]uint32, error) {
	return core.Connectivity(g, cfg)
}

// SpanningForest computes a spanning forest of g using a root-based finish
// algorithm (any union-find variant except Rem+SpliceAtomic,
// Shiloach-Vishkin, or a RootUp Liu-Tarjan variant).
func SpanningForest(g *Graph, cfg Config) ([]Edge, error) {
	raw, err := core.SpanningForest(g, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Edge, len(raw))
	for i, e := range raw {
		out[i] = Edge{U: e[0], V: e[1]}
	}
	return out, nil
}

// NewIncremental creates a streaming connectivity structure over n
// initially isolated vertices (§3.5).
func NewIncremental(n int, cfg Config) (*Incremental, error) {
	return core.NewIncremental(n, cfg)
}

// NumComponents counts the distinct components in a labeling returned by
// Connectivity.
func NumComponents(labels []uint32) int { return core.NumComponents(labels) }

// LargestComponent returns the most frequent label in a labeling and the
// number of vertices carrying it.
func LargestComponent(labels []uint32) (uint32, int) { return core.LargestComponent(labels) }
