// Package connectit is a Go implementation of the ConnectIt framework for
// static and incremental parallel graph connectivity (Dhulipala, Hong, Shun;
// VLDB 2020).
//
// ConnectIt composes a sampling phase (k-out, BFS, or LDD sampling) with a
// finish phase drawn from a large family of min-based concurrent
// connectivity algorithms — 36 union-find variants, Shiloach-Vishkin, the
// sixteen Liu-Tarjan framework algorithms, Stergiou's algorithm, and
// Label-Propagation — yielding several hundred distinct parallel
// connectivity algorithms, most of which extend to spanning forest and to
// batch-incremental (streaming) connectivity.
//
// # Quick start
//
// Compile a configuration once, then run it as many times as needed; the
// compiled Solver validates the combination up front and reuses its
// internal scratch across runs:
//
//	g := connectit.BuildGraph(5, []connectit.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
//	solver, err := connectit.Compile(connectit.DefaultConfig())
//	if err != nil { ... }
//	labels := solver.Components(g)
//	// labels[0] == labels[2], labels[3] == labels[4], labels[0] != labels[3]
//
// Richer questions — component counts, sizes, histograms, and actual paths
// through a spanning forest — go through one composable Query handle, from
// a Solver (static) or a Stream (live, over the forest the stream grows as
// updates arrive):
//
//	q, err := solver.Query(g)                  // static: forest-backed
//	n, _ := q.NumComponents()
//	path, ok, _ := q.PathBetween(0, 2)         // forest edges 0 → 2
//
//	st, _ := solver.Stream(n)                  // live: Stream.Query
//	q, err = st.Query()
//
// Any of the framework's several hundred combinations is one canonical
// spec string away:
//
//	cfg, err := connectit.ParseConfig("kout;uf;rem-cas;naive;split-one")
//	alg, err := connectit.ParseAlgorithm("lt;CRFA")
//
// and every algorithm reports its spec with Algorithm.Name (Config.Name for
// the full combination), which parses back to the same algorithm. The
// one-shot helpers Connectivity, SpanningForest, and NewIncremental remain
// as thin wrappers over Compile for single runs.
//
// # Graph representations
//
// Graphs are pluggable behind the GraphRep interface, with two first-class
// backends: the flat CSR Graph and the byte-compressed CompressedGraph
// (Ligra+-style difference coding, §3.6 of the paper — roughly half the
// resident bytes on power-law inputs). Every algorithm runs directly on
// either backend; nothing is re-materialized:
//
//	c := connectit.Compress(g)                  // or connectit.LoadCBIN("huge.cbin")
//	labels, err := solver.ComponentsOn(c)       // decode-while-traverse kernels
//
// SaveCBIN/LoadCBIN persist compressed graphs in a versioned binary format
// that loads by memory-mapping: a 200-GB-class graph opens in O(1) and
// pages in on demand.
//
// See DESIGN.md for the registry/Solver architecture and the full system
// inventory, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package connectit

import (
	"fmt"
	"strings"

	"connectit/internal/core"
	"connectit/internal/graph"
	"connectit/internal/unionfind"
)

// Graph is an undirected graph in compressed sparse row form. Build one
// with BuildGraph or the generators (NewRMAT, NewGrid2D, ...).
type Graph = graph.Graph

// Edge is an undirected edge (COO form).
type Edge = graph.Edge

// Vertex identifies a vertex (0-based).
type Vertex = graph.Vertex

// Config selects a complete ConnectIt algorithm: a sampling strategy plus a
// finish algorithm (Figure 1 of the paper). Compile it into a Solver, or
// pass it to the one-shot helpers.
type Config = core.Config

// Algorithm identifies a finish algorithm instantiation. Its Name method
// renders the canonical spec string, which ParseAlgorithm round-trips.
type Algorithm = core.Algorithm

// Capabilities reports what a compiled combination supports beyond static
// connectivity; it is derived from the algorithm registry.
type Capabilities = core.Capabilities

// StreamType classifies how a streaming algorithm processes a batch (§3.5).
type StreamType = core.StreamType

// The streaming algorithm types of §3.5.
const (
	TypeAsync       = core.TypeAsync
	TypeSynchronous = core.TypeSynchronous
	TypePhased      = core.TypePhased
)

// Stats collects union-find path-length instrumentation (TPL/MPL).
type Stats = unionfind.Stats

// Incremental maintains connectivity under batches of edge insertions mixed
// with connectivity queries.
type Incremental = core.Incremental

// Sampling modes (§3.2 of the paper).
const (
	NoSampling   = core.NoSampling
	KOutSampling = core.KOutSampling
	BFSSampling  = core.BFSSampling
	LDDSampling  = core.LDDSampling
)

// Union-find union rules (§3.3.1).
const (
	UnionAsync   = unionfind.UnionAsync
	UnionHooks   = unionfind.UnionHooks
	UnionEarly   = unionfind.UnionEarly
	UnionRemCAS  = unionfind.UnionRemCAS
	UnionRemLock = unionfind.UnionRemLock
	UnionJTB     = unionfind.UnionJTB
)

// Union-find find rules (Algorithm 8).
const (
	FindNaive       = unionfind.FindNaive
	FindSplit       = unionfind.FindSplit
	FindHalve       = unionfind.FindHalve
	FindCompress    = unionfind.FindCompress
	FindTwoTrySplit = unionfind.FindTwoTrySplit
)

// Rem's algorithm splice rules (Algorithm 9).
const (
	SplitAtomicOne = unionfind.SplitAtomicOne
	HalveAtomicOne = unionfind.HalveAtomicOne
	SpliceAtomic   = unionfind.SpliceAtomic
)

// ErrUnsupported reports a framework combination the paper excludes (e.g.
// Rem + SpliceAtomic + FindCompress, or spanning forest with a
// non-root-based algorithm). Compile surfaces every such case up front.
var ErrUnsupported = core.ErrUnsupported

// ErrBadSpec reports a malformed or unknown spec string passed to
// ParseAlgorithm or ParseConfig.
var ErrBadSpec = core.ErrBadSpec

// DefaultConfig returns the paper's recommended robust configuration:
// k-out sampling (hybrid, k = 2) finished by Union-Rem-CAS with
// SplitAtomicOne and no extra find compression (§4.2 takeaways).
func DefaultConfig() Config {
	return Config{
		Sampling:  core.KOutSampling,
		Algorithm: UnionFindAlgorithm(UnionRemCAS, FindNaive, SplitAtomicOne),
	}
}

// ParseAlgorithm parses a canonical algorithm spec string — e.g.
// "uf;rem-cas;naive;split-one", "lt;CRFA", "sv", "stergiou", "lp" — into
// an Algorithm. The output of Algorithm.Name parses back to the same
// algorithm. Malformed specs return ErrBadSpec; combinations the paper
// excludes return ErrUnsupported.
func ParseAlgorithm(spec string) (Algorithm, error) { return core.ParseAlgorithm(spec) }

// MustParseAlgorithm is ParseAlgorithm for known-valid specs; it panics on
// error.
func MustParseAlgorithm(spec string) Algorithm {
	a, err := core.ParseAlgorithm(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseConfig parses a full configuration spec "<sampling>;<algorithm>" —
// e.g. "kout;uf;rem-cas;naive;split-one" — into a Config with default
// tuning parameters. The output of Config.Name parses back to the same
// sampling and algorithm.
func ParseConfig(spec string) (Config, error) { return core.ParseConfig(spec) }

// UnionFindAlgorithm selects a union-find finish algorithm.
func UnionFindAlgorithm(u unionfind.UnionOption, f unionfind.FindOption, s unionfind.SpliceOption) Algorithm {
	return Algorithm{
		Kind: core.FinishUnionFind,
		UF:   unionfind.Variant{Union: u, Find: f, Splice: s},
	}
}

// ShiloachVishkinAlgorithm selects the Shiloach-Vishkin finish algorithm.
func ShiloachVishkinAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishShiloachVishkin}
}

// LiuTarjanAlgorithm selects a Liu-Tarjan framework variant by its
// four-letter code (e.g. "CRFA", "PUS"); see liutarjan variant naming in
// the paper's Appendix D. Unknown codes return an error wrapping
// ErrUnsupported that lists the valid codes.
func LiuTarjanAlgorithm(code string) (Algorithm, error) {
	if strings.TrimSpace(code) == "" || strings.ContainsRune(code, ';') {
		return Algorithm{}, fmt.Errorf("%w: unknown Liu-Tarjan variant %q", ErrUnsupported, code)
	}
	return core.ParseAlgorithm("lt;" + code)
}

// StergiouAlgorithm selects Stergiou et al.'s algorithm.
func StergiouAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishStergiou}
}

// LabelPropagationAlgorithm selects the folklore Label-Propagation
// algorithm.
func LabelPropagationAlgorithm() Algorithm {
	return Algorithm{Kind: core.FinishLabelProp}
}

// Algorithms enumerates every finish algorithm in the framework, derived
// from the registry: the 36 union-find variants, Shiloach-Vishkin, the 16
// Liu-Tarjan variants, Stergiou, and Label-Propagation. Crossed with the
// four sampling modes, these are the paper's several hundred connectivity
// implementations. Every returned Algorithm's Name parses back via
// ParseAlgorithm.
func Algorithms() []Algorithm { return core.Algorithms() }

// Connectivity computes the connected components of g: the returned
// labeling satisfies labels[u] == labels[v] iff u and v are connected. It
// is a thin wrapper that compiles cfg and runs it once; repeated runs
// should Compile once and call Solver.Components.
func Connectivity(g *Graph, cfg Config) ([]uint32, error) {
	s, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return s.Components(g), nil
}

// SpanningForest computes a spanning forest of g using a root-based finish
// algorithm (any union-find variant except Rem+SpliceAtomic,
// Shiloach-Vishkin, or a RootUp Liu-Tarjan variant). It is a thin wrapper
// over Compile + Solver.SpanningForest.
func SpanningForest(g *Graph, cfg Config) ([]Edge, error) {
	s, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return s.SpanningForest(g)
}

// NewIncremental creates a streaming connectivity structure over n
// initially isolated vertices (§3.5). It is a thin wrapper over Compile +
// Solver.NewIncremental.
func NewIncremental(n int, cfg Config) (*Incremental, error) {
	s, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return s.NewIncremental(n)
}

// NumComponents counts the distinct components in a labeling returned by
// ComponentsOn or Connectivity.
//
// Deprecated: use the Query surface — Solver.Query(g) (or QueryLabels for a
// labeling you already hold) and Query.NumComponents — which answers
// counting, histogram, and path queries from one handle (DESIGN.md §12).
func NumComponents(labels []uint32) int { return core.NumComponents(labels) }

// LargestComponent returns the most frequent label in a labeling and the
// number of vertices carrying it.
//
// Deprecated: use the Query surface — Solver.Query(g) (or QueryLabels for a
// labeling you already hold) and Query.LargestComponent (DESIGN.md §12).
func LargestComponent(labels []uint32) (uint32, int) { return core.LargestComponent(labels) }
