package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	e, ok := parseBenchLine("BenchmarkStreamMixedRatio/90-10/type-ii/sv 3 14040301 ns/op 1856266 updates/s 1.03 epochs/round")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkStreamMixedRatio/90-10/type-ii/sv/gomaxprocs=1" || e.Iterations != 3 {
		t.Fatalf("parsed %+v", e)
	}
	if e.GoMaxProcs != 1 {
		t.Fatalf("GoMaxProcs = %d, want 1", e.GoMaxProcs)
	}
	want := map[string]float64{"ns/op": 14040301, "updates/s": 1856266, "epochs/round": 1.03}
	for u, v := range want {
		if e.Metrics[u] != v {
			t.Fatalf("metric %s = %v, want %v", u, e.Metrics[u], v)
		}
	}
	// The "-N" GOMAXPROCS suffix becomes an explicit /gomaxprocs=N
	// component so per-cpu rows pair up across baselines (and stay
	// distinct from each other) in benchstat.
	e4, ok := parseBenchLine("BenchmarkStreamCoalesce/epoch=64/coalesce-on-4 1 1000 ns/op")
	if !ok || e4.Name != "BenchmarkStreamCoalesce/epoch=64/coalesce-on/gomaxprocs=4" || e4.GoMaxProcs != 4 {
		t.Fatalf("procs suffix not normalized: %+v", e4)
	}
	for _, tc := range []struct{ in, out string }{
		{"BenchmarkFoo/bar", "BenchmarkFoo/bar/gomaxprocs=1"},
		{"BenchmarkFoo-", "BenchmarkFoo-/gomaxprocs=1"},
		{"BenchmarkFoo/a-b", "BenchmarkFoo/a-b/gomaxprocs=1"},
		{"BenchmarkFoo-16", "BenchmarkFoo/gomaxprocs=16"},
		// Idempotence: the tool's own -text output re-parses unchanged.
		{"BenchmarkFoo/gomaxprocs=4", "BenchmarkFoo/gomaxprocs=4"},
		{"BenchmarkFoo/bar/gomaxprocs=1", "BenchmarkFoo/bar/gomaxprocs=1"},
	} {
		if got, _ := normalizeProcs(tc.in); got != tc.out {
			t.Fatalf("normalizeProcs(%q) = %q, want %q", tc.in, got, tc.out)
		}
	}
	for _, bad := range []string{
		"ok  	connectit	1.025s",
		"goos: linux",
		"BenchmarkBroken 3",
		"BenchmarkBroken three 1 ns/op",
		"PASS",
		"",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q wrongly accepted as a benchmark result", bad)
		}
	}
}
