package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	e, ok := parseBenchLine("BenchmarkStreamMixedRatio/90-10/type-ii/sv 3 14040301 ns/op 1856266 updates/s 1.03 epochs/round")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Name != "BenchmarkStreamMixedRatio/90-10/type-ii/sv" || e.Iterations != 3 {
		t.Fatalf("parsed %+v", e)
	}
	want := map[string]float64{"ns/op": 14040301, "updates/s": 1856266, "epochs/round": 1.03}
	for u, v := range want {
		if e.Metrics[u] != v {
			t.Fatalf("metric %s = %v, want %v", u, e.Metrics[u], v)
		}
	}
	// The GOMAXPROCS suffix must be stripped so baselines recorded on
	// different hardware pair up in benchstat.
	e4, ok := parseBenchLine("BenchmarkStreamCoalesce/epoch=64/coalesce-on-4 1 1000 ns/op")
	if !ok || e4.Name != "BenchmarkStreamCoalesce/epoch=64/coalesce-on" {
		t.Fatalf("procs suffix not stripped: %+v", e4)
	}
	for _, name := range []string{"BenchmarkFoo/bar", "BenchmarkFoo-", "BenchmarkFoo/a-b"} {
		if got := stripProcs(name); got != name {
			t.Fatalf("stripProcs(%q) = %q, want unchanged", name, got)
		}
	}
	for _, bad := range []string{
		"ok  	connectit	1.025s",
		"goos: linux",
		"BenchmarkBroken 3",
		"BenchmarkBroken three 1 ns/op",
		"PASS",
		"",
	} {
		if _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q wrongly accepted as a benchmark result", bad)
		}
	}
}
