// Command benchjson converts between `go test -bench` output and the
// committed BENCH_*.json baseline format, so the bench-smoke CI job can
// diff a PR's stream-benchmark run against the baseline with benchstat.
//
// Modes:
//
//	go test -bench Stream ... | benchjson -o BENCH_stream.json
//	    Parse benchmark lines from stdin (non-benchmark lines are
//	    ignored) into a normalized, sorted JSON document.
//
//	benchjson -text BENCH_stream.json
//	    Re-emit a JSON document as benchmark-format text on stdout —
//	    benchstat's input format — so old-vs-new comparison is
//	    `benchjson -text old.json > old.txt; benchstat old.txt new.txt`.
//
// The JSON keeps every reported metric (ns/op, updates/s, epochs/round,
// ...) per benchmark, plus the recording context (commit, Go version,
// GOMAXPROCS) so a baseline is interpretable months later.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result: its name, iteration count, the
// GOMAXPROCS the row ran under, and every value/unit metric pair from its
// output line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	GoMaxProcs int                `json:"gomaxprocs,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the committed baseline document.
type Doc struct {
	Commit     string  `json:"commit,omitempty"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Benchmarks []Entry `json:"benchmarks"`
}

var (
	out    = flag.String("o", "", "write JSON to this file instead of stdout")
	text   = flag.String("text", "", "convert this JSON baseline back to benchmark text on stdout")
	commit = flag.String("commit", "", "commit hash to record in the JSON document")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	if *text != "" {
		return emitText(*text)
	}
	return parseStdin()
}

// parseBenchLine parses one "BenchmarkName iters v1 u1 v2 u2 ..." line;
// ok is false for anything that is not a benchmark result.
func parseBenchLine(line string) (e Entry, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return e, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return e, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return e, false
	}
	name, procs := normalizeProcs(fields[0])
	e = Entry{Name: name, Iterations: iters, GoMaxProcs: procs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return e, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// normalizeProcs rewrites the trailing "-N" GOMAXPROCS suffix the testing
// package appends on multi-proc runs ("BenchmarkFoo/bar-4") into an
// explicit "/gomaxprocs=N" sub-benchmark component, returning the procs
// count alongside. Same-procs rows then pair up in benchstat whatever
// hardware recorded them, while rows from different -cpu settings stay
// distinct — which is what lets the BENCH_stream.json trajectory carry the
// per-cpu coalescing claims (epochs/round > 1 needs real producer/round
// overlap, so it only shows at -cpu ≥ 2). A row with no suffix ran at
// GOMAXPROCS=1 and is normalized to "/gomaxprocs=1" for the same reason.
func normalizeProcs(name string) (string, int) {
	// Already-normalized names (this tool's own -text output fed back in,
	// e.g. when regenerating a baseline from an emitted artifact) pass
	// through unchanged — appending a second component would silently
	// repair a 4-proc row into the 1-proc series.
	const marker = "/gomaxprocs="
	if i := strings.LastIndex(name, marker); i >= 0 {
		if n, err := strconv.Atoi(name[i+len(marker):]); err == nil {
			return name, n
		}
	}
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i > 0 && i < len(name)-1 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = n
			name = name[:i]
		}
	}
	return name + marker + strconv.Itoa(procs), procs
}

func parseStdin() error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var entries []Entry
	for sc.Scan() {
		if e, ok := parseBenchLine(strings.TrimSpace(sc.Text())); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	doc := Doc{
		Commit:     *commit,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: entries,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

func emitText(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	w := bufio.NewWriter(os.Stdout)
	// Plain decimal formatting: benchstat's line parser wants "value unit"
	// with no exponent notation.
	dec := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, e := range doc.Benchmarks {
		fmt.Fprintf(w, "%s %d", e.Name, e.Iterations)
		// ns/op first (benchstat's primary), then the rest sorted for
		// stable output.
		if v, ok := e.Metrics["ns/op"]; ok {
			fmt.Fprintf(w, " %s ns/op", dec(v))
		}
		units := make([]string, 0, len(e.Metrics))
		for u := range e.Metrics {
			if u != "ns/op" {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(w, " %s %s", dec(e.Metrics[u]), u)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
