package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"connectit"
)

// runLoad is the ingest load generator: it pushes -load-edges randomly
// generated edges in -load-batch batches at a running server — over the
// binary TCP protocol (-load, via DialIngest) or as JSON POSTs
// (-load-http, the comparison path) — and reports edges/sec plus the last
// committed LSN, so the two transports can be raced head to head against
// the same server. Batches are sorted by endpoint before sending, the
// shape the delta codec (and the WAL's group compression) exploits.
func runLoad() error {
	if *loadAddr != "" {
		return runLoadTCP()
	}
	return runLoadJSON()
}

// loadBatches invokes send once per generated batch. The universe comes
// from the server (TCP hello) or -n (JSON).
func loadBatches(universe int, send func(batch []connectit.Edge) error) (time.Duration, error) {
	rng := rand.New(rand.NewSource(int64(*seed)))
	batch := make([]connectit.Edge, 0, *loadBatch)
	start := time.Now()
	for sent := 0; sent < *loadEdges; {
		want := *loadBatch
		if rem := *loadEdges - sent; rem < want {
			want = rem
		}
		batch = batch[:0]
		for i := 0; i < want; i++ {
			u := uint32(rng.Intn(universe))
			v := uint32(rng.Intn(universe))
			batch = append(batch, connectit.Edge{U: u, V: v})
		}
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].U != batch[j].U {
				return batch[i].U < batch[j].U
			}
			return batch[i].V < batch[j].V
		})
		if err := send(batch); err != nil {
			return 0, err
		}
		sent += len(batch)
	}
	return time.Since(start), nil
}

func runLoadTCP() error {
	c, err := connectit.DialIngest(*loadAddr)
	if err != nil {
		return err
	}
	universe := c.NumVertices()
	fmt.Printf("loading %d edges over binary tcp %s (universe %d, batch %d)\n", *loadEdges, *loadAddr, universe, *loadBatch)
	elapsed, err := loadBatches(universe, c.Send)
	if err != nil {
		c.Close()
		return err
	}
	lsn, err := c.Flush()
	if err != nil {
		c.Close()
		return err
	}
	elapsed = maxDuration(elapsed, time.Nanosecond)
	fmt.Printf("loaded %d edges in %v (%.2fM edges/s), last LSN %d\n",
		*loadEdges, elapsed.Round(time.Millisecond), float64(*loadEdges)/elapsed.Seconds()/1e6, lsn)
	return c.Close()
}

func runLoadJSON() error {
	universe := *n
	url := *loadURL + "/v1/update"
	fmt.Printf("loading %d edges over json %s (universe %d, batch %d)\n", *loadEdges, url, universe, *loadBatch)
	var body bytes.Buffer
	elapsed, err := loadBatches(universe, func(batch []connectit.Edge) error {
		body.Reset()
		pairs := make([][2]uint32, len(batch))
		for i, e := range batch {
			pairs[i] = [2]uint32{e.U, e.V}
		}
		if err := json.NewEncoder(&body).Encode(map[string]any{"edges": pairs}); err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", &body)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("POST /v1/update: %s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	})
	if err != nil {
		return err
	}
	elapsed = maxDuration(elapsed, time.Nanosecond)
	fmt.Printf("loaded %d edges in %v (%.2fM edges/s)\n",
		*loadEdges, elapsed.Round(time.Millisecond), float64(*loadEdges)/elapsed.Seconds()/1e6)
	return nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
