package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"connectit"
)

// runLoad is the ingest load generator: it pushes -load-edges randomly
// generated edges in -load-batch batches at a running server — over the
// binary TCP protocol (-load, via DialIngest) or as JSON POSTs
// (-load-http, the comparison path) — and reports edges/sec plus the last
// committed LSN, so the two transports can be raced head to head against
// the same server. Batches are sorted by endpoint before sending, the
// shape the delta codec (and the WAL's group compression) exploits.
func runLoad() error {
	if *loadAddr != "" {
		return runLoadTCP()
	}
	return runLoadJSON()
}

// loadBatches invokes send once per generated batch. The universe comes
// from the server (TCP hello) or -n (JSON).
func loadBatches(universe int, send func(batch []connectit.Edge) error) (time.Duration, error) {
	rng := rand.New(rand.NewSource(int64(*seed)))
	batch := make([]connectit.Edge, 0, *loadBatch)
	start := time.Now()
	for sent := 0; sent < *loadEdges; {
		want := *loadBatch
		if rem := *loadEdges - sent; rem < want {
			want = rem
		}
		batch = batch[:0]
		for i := 0; i < want; i++ {
			u := uint32(rng.Intn(universe))
			v := uint32(rng.Intn(universe))
			batch = append(batch, connectit.Edge{U: u, V: v})
		}
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].U != batch[j].U {
				return batch[i].U < batch[j].U
			}
			return batch[i].V < batch[j].V
		})
		if err := send(batch); err != nil {
			return 0, err
		}
		sent += len(batch)
	}
	return time.Since(start), nil
}

func runLoadTCP() error {
	c, err := connectit.DialIngest(*loadAddr)
	if err != nil {
		return err
	}
	universe := c.NumVertices()
	fmt.Printf("loading %d edges over binary tcp %s (universe %d, batch %d)\n", *loadEdges, *loadAddr, universe, *loadBatch)
	elapsed, err := loadBatches(universe, c.Send)
	if err != nil {
		c.Close()
		return err
	}
	lsn, err := c.Flush()
	if err != nil {
		c.Close()
		return err
	}
	st := c.Stats()
	elapsed = maxDuration(elapsed, time.Nanosecond)
	fmt.Printf("loaded %d edges in %v (%.2fM edges/s), last LSN %d\n",
		*loadEdges, elapsed.Round(time.Millisecond), float64(*loadEdges)/elapsed.Seconds()/1e6, lsn)
	fmt.Printf("client: %d frames acked, %d reconnects, %d retransmits, %d dial failures\n",
		st.AckedFrames, st.Reconnects, st.Retransmits, st.DialFailures)
	return c.Close()
}

// jsonRetryBudget bounds how long runLoadJSON keeps retrying one batch
// against a backpressuring (429) or degraded (503) server before giving
// up: transient stalls heal, a permanently stuck server still yields a
// one-line error.
const jsonRetryBudget = 2 * time.Minute

// retryDelay turns a 429/503 response into a backoff: the server's
// Retry-After header when it sends one (it knows its flush deadline and
// probe period), otherwise an exponential fallback from the attempt count.
func retryDelay(resp *http.Response, attempt int) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 && secs <= 3600 {
			return time.Duration(secs) * time.Second
		}
	}
	d := 50 * time.Millisecond << uint(attempt)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

func runLoadJSON() error {
	universe := *n
	url := *loadURL + "/v1/update"
	fmt.Printf("loading %d edges over json %s (universe %d, batch %d)\n", *loadEdges, url, universe, *loadBatch)
	var body bytes.Buffer
	retries := 0
	elapsed, err := loadBatches(universe, func(batch []connectit.Edge) error {
		body.Reset()
		pairs := make([][2]uint32, len(batch))
		for i, e := range batch {
			pairs[i] = [2]uint32{e.U, e.V}
		}
		if err := json.NewEncoder(&body).Encode(map[string]any{"edges": pairs}); err != nil {
			return err
		}
		deadline := time.Now().Add(jsonRetryBudget)
		for attempt := 0; ; attempt++ {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body.Bytes()))
			if err != nil {
				return err
			}
			switch resp.StatusCode {
			case http.StatusOK:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return nil
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				// Backpressure or degraded mode: both are the server asking
				// for patience, not rejecting the batch. Honor its hint and
				// resend the identical batch (unions are idempotent).
				delay := retryDelay(resp, attempt)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if time.Now().Add(delay).After(deadline) {
					return fmt.Errorf("POST /v1/update: server still refusing after %v of retries (%s)", jsonRetryBudget, resp.Status)
				}
				retries++
				time.Sleep(delay)
			default:
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				resp.Body.Close()
				return fmt.Errorf("POST /v1/update: %s: %s", resp.Status, bytes.TrimSpace(msg))
			}
		}
	})
	if err != nil {
		return err
	}
	elapsed = maxDuration(elapsed, time.Nanosecond)
	fmt.Printf("loaded %d edges in %v (%.2fM edges/s, %d retried batches)\n",
		*loadEdges, elapsed.Round(time.Millisecond), float64(*loadEdges)/elapsed.Seconds()/1e6, retries)
	return nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
