// Command connectit runs a ConnectIt algorithm combination on a generated
// or loaded graph and reports components and timing.
//
// Algorithms are selected with canonical spec strings (see ParseConfig):
//
//	connectit -graph rmat -scale 18 -sampling kout -algo "uf;rem-cas;naive;split-one"
//	connectit -graph grid -n 1000 -sampling ldd -algo sv
//	connectit -graph file -path web.el -algo "lt;CRFA"
//	connectit -graph ba -n 100000 -forest
//	connectit -stream -workers 8 -qmix 0.5 -algo "uf;rem-cas;naive;split-one"
//	connectit -list
//
// The graph representation is selected with -format: "csr" (flat CSR,
// default), "compressed" (byte-compressed CSR; every algorithm runs
// directly on the encoding), "segmented" (multi-segment byte-compressed,
// split at -segment-bytes; the out-of-core backend), or "bin" (memory-map a
// .cbin file named by -path, opening in O(index); multi-segment v2 files
// map each segment independently). -convert writes the graph to a .cbin v2
// file and exits — combined with -format bin it re-encodes an existing
// file, and -segment-bytes re-segments at a new granularity, so old v1
// files convert to segmented v2 in one step. -v prints the per-backend
// memory footprint (SizeBytes and bytes/edge) so the space/throughput
// tradeoff is visible:
//
//	connectit -graph rmat -scale 20 -convert rmat20.cbin
//	connectit -format bin -path rmat20.cbin -v -algo "uf;rem-cas;naive;split-one"
//	connectit -graph rmat -scale 18 -format compressed -v
//	connectit -graph rmat -scale 20 -convert big.cbin -segment-bytes 268435456
//	connectit -format bin -path old-v1.cbin -convert new-v2.cbin
//
// -serve runs the HTTP connectivity service over -n initially isolated
// vertices: POST /v1/update ingests edges (group-committed through the
// write-ahead log named by -wal-dir when set), GET /v1/connected answers
// wait-free queries, and GET /metrics exposes Prometheus counters; the
// process shuts down gracefully on SIGINT/SIGTERM (DESIGN.md §11):
//
//	connectit -serve -n 1000000 -addr :8080 -wal-dir /var/lib/connectit
//
// -list enumerates every finish algorithm in the registry with its
// capabilities; each printed name is a valid -algo value. -stream drives
// the concurrent ingest engine with -workers goroutines issuing a -qmix
// query/update mix and reports edges/sec, queries/sec, and the coalescing
// pipeline's epochs-per-round; -epoch and -coalesce tune the pipeline
// (DESIGN.md §9).
//
// Invalid flags, spec strings, or malformed input files produce a one-line
// error and exit status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"connectit"
	"connectit/internal/ingest"
	"connectit/internal/parallel"
)

var (
	graphKind = flag.String("graph", "rmat", "graph source: rmat|ba|er|grid|web|file")
	scale     = flag.Int("scale", 16, "log2 vertex count for rmat/web")
	n         = flag.Int("n", 1<<16, "vertex count for ba/er, side length for grid")
	mPerN     = flag.Int("degree", 10, "average degree (edges = degree*n)")
	path      = flag.String("path", "", "edge list file for -graph file")
	seed      = flag.Uint64("seed", 1, "random seed")

	samplingName = flag.String("sampling", "kout", "sampling: none|kout|bfs|ldd")
	k            = flag.Int("k", 2, "k-out parameter")
	beta         = flag.Float64("beta", 0.2, "LDD beta parameter")

	algo = flag.String("algo", "uf;rem-cas;naive;split-one",
		`finish algorithm spec, e.g. "uf;rem-cas;naive;split-one", "lt;CRFA", "sv", "stergiou", "lp"`)

	forest    = flag.Bool("forest", false, "compute spanning forest instead of components")
	withStats = flag.Bool("stats", false, "report union-find path-length statistics")
	list      = flag.Bool("list", false, "list every registered finish algorithm and exit")

	format   = flag.String("format", "csr", "graph representation: csr|compressed|segmented|bin (bin memory-maps the .cbin file named by -path)")
	convert  = flag.String("convert", "", "write the graph to this .cbin (v2) file and exit")
	segBytes = flag.Uint64("segment-bytes", 0, "per-segment encoded-adjacency byte target for -format segmented and -convert re-segmentation (0 = the 4 GiB cap)")
	verbose  = flag.Bool("v", false, "print per-backend memory footprint (SizeBytes, bytes/edge)")

	serve         = flag.Bool("serve", false, "run the HTTP connectivity service over -n vertices (see -addr, -wal-dir)")
	addr          = flag.String("addr", ":8080", "listen address for -serve")
	ingestAddr    = flag.String("ingest-addr", "", "binary TCP ingest listen address for -serve (empty disables; see -load)")
	walDir        = flag.String("wal-dir", "", "write-ahead log directory for -serve (empty = no durability)")
	snapInterval  = flag.Duration("snapshot-interval", 5*time.Minute, "WAL compaction period for -serve, in [1s, 24h] (negative disables)")
	flushInterval = flag.Duration("flush-interval", 2*time.Millisecond, "group-commit flush deadline for -serve, in [100µs, 10s]")
	maxPending    = flag.Int("max-pending", 64, "backpressure bound for -serve: updates get 429 while more sealed epochs than this await apply")
	walNoSync     = flag.Bool("wal-nosync", false, "skip the per-group fsync for -serve (risks the last flush interval on crash)")
	authToken     = flag.String("auth-token", "", "bearer token required on mutating endpoints for -serve (default $CONNECTIT_AUTH_TOKEN; empty leaves writes open)")
	faultSpec     = flag.String("faults", "", "fault-injection schedule for -serve chaos runs, e.g. \"wal.sync:at=3:err=EIO;conn.write:at=10:reset\" (default $CONNECTIT_FAULTS; empty injects nothing)")
	probeInterval = flag.Duration("probe-interval", time.Second, "degraded-mode recovery probe period for -serve, in [10ms, 10m]")
	degradedMode  = flag.String("degraded-policy", "fail-writes", "what a wedged WAL does to -serve: fail-writes (reads keep serving, writes 503, probe retries recovery) or crash (exit for supervisor restart)")

	loadAddr  = flag.String("load", "", "drive a server's binary TCP ingest listener at this address with generated edges and report edges/sec")
	loadURL   = flag.String("load-http", "", "drive POST /v1/update at this base URL with JSON batches instead (the comparison path)")
	loadEdges = flag.Int("load-edges", 1<<20, "edges to send in -load / -load-http mode")
	loadBatch = flag.Int("load-batch", 4096, "edges per frame/request in -load / -load-http mode")

	stream   = flag.Bool("stream", false, "drive the concurrent ingest engine instead of a static run")
	workers  = flag.Int("workers", 8, "concurrent producer goroutines for -stream")
	qmix     = flag.Float64("qmix", 0.1, "fraction of stream operations that are queries, in [0, 1)")
	epoch    = flag.Int("epoch", 0, "ingest epoch size for -stream (0 = default)")
	coalesce = flag.Int("coalesce", 0, "max buffered updates per coalesced apply round for -stream (0 = default, 1 = no coalescing)")
	noFilter = flag.Bool("no-prefilter", false, "disable the ingest intra-component pre-filter")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: connectit [flags]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(); err != nil {
		// Library errors already carry the "connectit:" prefix.
		msg := err.Error()
		if !strings.HasPrefix(msg, "connectit:") {
			msg = "connectit: " + msg
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(1)
	}
}

// validateFlags bounds every numeric flag before any allocation or shift
// depends on it: bad values must yield a one-line error, never a panic or
// an absurd allocation.
func validateFlags() error {
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *scale < 1 || *scale > 28 {
		return fmt.Errorf("-scale %d out of range [1, 28]", *scale)
	}
	if *n < 1 || *n > 1<<28 {
		return fmt.Errorf("-n %d out of range [1, %d]", *n, 1<<28)
	}
	if *mPerN < 0 || *mPerN > 4096 {
		return fmt.Errorf("-degree %d out of range [0, 4096]", *mPerN)
	}
	if int64(*mPerN)<<uint(*scale) > 1<<31 || int64(*mPerN)*int64(*n) > 1<<31 {
		return fmt.Errorf("-degree %d with -scale %d / -n %d requests more than 2^31 edges", *mPerN, *scale, *n)
	}
	if *k < 1 || *k > 64 {
		return fmt.Errorf("-k %d out of range [1, 64]", *k)
	}
	if *beta <= 0 || *beta > 4 {
		return fmt.Errorf("-beta %g out of range (0, 4]", *beta)
	}
	if *workers < 1 || *workers > 1<<12 {
		return fmt.Errorf("-workers %d out of range [1, 4096]", *workers)
	}
	if *qmix < 0 || *qmix >= 1 {
		return fmt.Errorf("-qmix %g out of range [0, 1)", *qmix)
	}
	if *epoch < 0 || *epoch > 1<<24 {
		return fmt.Errorf("-epoch %d out of range [0, %d]", *epoch, 1<<24)
	}
	if *coalesce < 0 || *coalesce > 1<<28 {
		return fmt.Errorf("-coalesce %d out of range [0, %d]", *coalesce, 1<<28)
	}
	if *stream && *forest {
		return errors.New("-stream and -forest are mutually exclusive")
	}
	if *loadAddr != "" && *loadURL != "" {
		return errors.New("-load and -load-http are mutually exclusive")
	}
	if *loadAddr != "" || *loadURL != "" {
		if *serve || *stream || *forest || *convert != "" {
			return errors.New("-load/-load-http is mutually exclusive with -serve, -stream, -forest, and -convert")
		}
		if *loadEdges < 1 || *loadEdges > 1<<30 {
			return fmt.Errorf("-load-edges %d out of range [1, %d]", *loadEdges, 1<<30)
		}
		if *loadBatch < 1 || *loadBatch > 1<<20 {
			return fmt.Errorf("-load-batch %d out of range [1, %d]", *loadBatch, 1<<20)
		}
	}
	if *serve {
		if *stream || *forest || *convert != "" {
			return errors.New("-serve is mutually exclusive with -stream, -forest, and -convert")
		}
		if _, err := net.ResolveTCPAddr("tcp", *addr); err != nil {
			return fmt.Errorf("-addr %q is not a valid listen address: %v", *addr, err)
		}
		if *ingestAddr != "" {
			if _, err := net.ResolveTCPAddr("tcp", *ingestAddr); err != nil {
				return fmt.Errorf("-ingest-addr %q is not a valid listen address: %v", *ingestAddr, err)
			}
		}
		if *snapInterval >= 0 && (*snapInterval < time.Second || *snapInterval > 24*time.Hour) {
			return fmt.Errorf("-snapshot-interval %v out of range [1s, 24h]", *snapInterval)
		}
		if *flushInterval < 100*time.Microsecond || *flushInterval > 10*time.Second {
			return fmt.Errorf("-flush-interval %v out of range [100µs, 10s]", *flushInterval)
		}
		if *maxPending < 1 || *maxPending > 1<<20 {
			return fmt.Errorf("-max-pending %d out of range [1, %d]", *maxPending, 1<<20)
		}
		if *walDir != "" {
			if err := probeWritableDir(*walDir); err != nil {
				return fmt.Errorf("-wal-dir %q is not writable: %v", *walDir, err)
			}
		}
		if *probeInterval < 10*time.Millisecond || *probeInterval > 10*time.Minute {
			return fmt.Errorf("-probe-interval %v out of range [10ms, 10m]", *probeInterval)
		}
		switch *degradedMode {
		case "fail-writes", "crash":
		default:
			return fmt.Errorf("unknown -degraded-policy %q (want fail-writes|crash)", *degradedMode)
		}
	}
	switch *format {
	case "csr", "compressed", "segmented", "bin":
	default:
		return fmt.Errorf("unknown -format %q (want csr|compressed|segmented|bin)", *format)
	}
	if *format == "bin" && *path == "" {
		return errors.New("-format bin requires -path naming a .cbin file")
	}
	if *stream && *format != "csr" {
		return errors.New("-stream replays COO batches and requires -format csr")
	}
	if *forest && *format != "csr" {
		return errors.New("-forest records witnesses into the flat adjacency and requires -format csr")
	}
	return nil
}

func run() error {
	if *list {
		return listAlgorithms()
	}
	if err := validateFlags(); err != nil {
		return err
	}
	if *serve {
		return runServe()
	}
	if *loadAddr != "" || *loadURL != "" {
		return runLoad()
	}

	cfg, err := connectit.ParseConfig(*samplingName + ";" + *algo)
	if err != nil {
		return err
	}
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Beta = *beta
	var stats connectit.Stats
	if *withStats {
		cfg.Stats = &stats
	}

	solver, err := connectit.Compile(cfg)
	if err != nil {
		return err
	}

	rep, csr, err := makeRep()
	if err != nil {
		return err
	}

	if *convert != "" {
		out := rep
		_, isCSR := rep.(*connectit.Graph)
		if isCSR || (*segBytes > 0 && *format == "bin") {
			// CSR input needs encoding; a loaded .cbin re-encodes only when
			// -segment-bytes asks for a different granularity.
			src := csr
			if src == nil {
				if src, err = connectit.Materialize(rep); err != nil {
					return err
				}
			}
			if *segBytes > 0 {
				out, err = connectit.TrySegment(src, *segBytes)
			} else {
				out, err = connectit.TryCompress(src)
			}
			if err != nil {
				return err
			}
		}
		if err := connectit.SaveCBIN(*convert, out); err != nil {
			return err
		}
		segInfo := ""
		if s, ok := out.(*connectit.SegmentedGraph); ok {
			segInfo = fmt.Sprintf(" (%d segments)", s.NumSegments())
		}
		fmt.Printf("wrote %s: n=%d m=%d%s, %s\n", *convert, out.NumVertices(), out.NumEdges(), segInfo, footprint(out))
		return nil
	}

	fmt.Printf("graph: n=%d m=%d (format %s)\n", rep.NumVertices(), rep.NumEdges(), *format)
	fmt.Printf("algorithm: %s\n", solver.Name())
	if *verbose {
		if csr != nil {
			fmt.Printf("footprint[csr]: %s\n", footprint(csr))
		}
		if c, ok := rep.(*connectit.CompressedGraph); ok {
			fmt.Printf("footprint[compressed]: %s\n", footprint(c))
			if csr != nil {
				fmt.Printf("footprint ratio: %.2fx smaller\n", float64(csr.SizeBytes())/float64(c.SizeBytes()))
			}
		}
		if s, ok := rep.(*connectit.SegmentedGraph); ok {
			fmt.Printf("footprint[segmented]: %s, %d segments\n", footprint(s), s.NumSegments())
			if csr != nil {
				fmt.Printf("footprint ratio: %.2fx smaller\n", float64(csr.SizeBytes())/float64(s.SizeBytes()))
			}
		}
	}

	if *stream {
		return runStream(solver, csr)
	}

	if *forest {
		start := time.Now()
		edges, err := solver.SpanningForest(csr)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		fmt.Printf("spanning forest: %d edges in %v\n", len(edges), elapsed)
		printPoolStats()
		return nil
	}

	start := time.Now()
	labels, err := solver.ComponentsOn(rep)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	q := connectit.QueryLabels(labels)
	comps, err := q.NumComponents()
	if err != nil {
		return err
	}
	_, largest, err := q.LargestComponent()
	if err != nil {
		return err
	}
	fmt.Printf("components: %d (largest %d vertices, %.1f%%) in %v\n",
		comps, largest, 100*float64(largest)/float64(len(labels)), elapsed)
	fmt.Printf("throughput: %.1fM edges/s\n", float64(rep.NumEdges())/elapsed.Seconds()/1e6)
	if *withStats {
		fmt.Printf("stats: unions=%d TPL=%d MPL=%d\n", stats.Unions(), stats.TotalPathLength(), stats.MaxPathLength())
	}
	printPoolStats()
	return nil
}

// printPoolStats surfaces the persistent fork-join pool's counters under
// -v: calls that rode the pool vs ran inline, chunk and steal volume (load
// balance), and wake/park traffic (how often the epoch barrier's spin
// phase caught the next call).
func printPoolStats() {
	if !*verbose {
		return
	}
	ps := parallel.PoolStats()
	fmt.Printf("pool: procs=%d calls=%d sequential=%d chunks=%d steals=%d wakes=%d parks=%d\n",
		parallel.Procs(), ps.Calls, ps.Sequential, ps.Chunks, ps.Steals, ps.Wakes, ps.Parks)
}

// footprint renders a backend's resident size and bytes per directed edge.
func footprint(rep connectit.GraphRep) string {
	bytesPerEdge := 0.0
	if de := rep.NumDirectedEdges(); de > 0 {
		bytesPerEdge = float64(rep.SizeBytes()) / float64(de)
	}
	return fmt.Sprintf("%d bytes (%.2f bytes/directed-edge)", rep.SizeBytes(), bytesPerEdge)
}

// makeRep builds or loads the graph in the representation selected by
// -format. csr is non-nil whenever the flat graph was materialized along
// the way (every format except bin); the stream/forest paths require it.
func makeRep() (rep connectit.GraphRep, csr *connectit.Graph, err error) {
	if *format == "bin" {
		c, err := connectit.LoadCBIN(*path)
		if err != nil {
			return nil, nil, err
		}
		return c, nil, nil
	}
	g, err := makeGraph(*graphKind, *scale, *n, *mPerN, *path, *seed)
	if err != nil {
		return nil, nil, err
	}
	if *format == "compressed" {
		c, err := connectit.TryCompress(g)
		if err != nil {
			return nil, nil, err
		}
		return c, g, nil
	}
	if *format == "segmented" {
		s, err := connectit.TrySegment(g, *segBytes)
		if err != nil {
			return nil, nil, err
		}
		return s, g, nil
	}
	return g, g, nil
}

// runStream replays g's edges as a live stream: -workers producers push
// interleaved updates and (a -qmix fraction of) connectivity queries into
// the concurrent ingest engine.
// probeWritableDir verifies the WAL directory can be created and written
// before the service boots, so a bad -wal-dir is a one-line error rather
// than a late open failure mid-recovery.
func probeWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// runServe boots the HTTP connectivity service and blocks until SIGINT or
// SIGTERM, then shuts down gracefully (drain, final snapshot, seal log).
func runServe() error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	durable := "in-memory (no -wal-dir)"
	if *walDir != "" {
		durable = "wal " + *walDir
	}
	// Secrets and chaos schedules also travel via the environment, so a
	// supervisor can set them without putting a token on the command line.
	token := *authToken
	if token == "" {
		token = os.Getenv("CONNECTIT_AUTH_TOKEN")
	}
	faults := *faultSpec
	if faults == "" {
		faults = os.Getenv("CONNECTIT_FAULTS")
	}
	fmt.Printf("serving on %s: n=%d, algo %s;%s, %s\n", *addr, *n, *samplingName, *algo, durable)
	if *ingestAddr != "" {
		fmt.Printf("binary ingest on %s\n", *ingestAddr)
	}
	if token != "" {
		fmt.Printf("mutating endpoints require a bearer token\n")
	}
	if faults != "" {
		fmt.Printf("fault injection armed: %s\n", faults)
	}
	return connectit.Serve(ctx, connectit.ServerOptions{
		Addr:        *addr,
		IngestAddr:  *ingestAddr,
		NumVertices: *n,
		Spec:        *samplingName + ";" + *algo,
		Stream: connectit.StreamOptions{
			EpochSize:        *epoch,
			CoalesceBound:    *coalesce,
			DisablePrefilter: *noFilter,
		},
		WALDir:           *walDir,
		SnapshotInterval: *snapInterval,
		FlushInterval:    *flushInterval,
		MaxPendingEpochs: *maxPending,
		NoSync:           *walNoSync,
		AuthToken:        token,
		FaultSpec:        faults,
		ProbeInterval:    *probeInterval,
		DegradedPolicy:   connectit.DegradedPolicy(*degradedMode),
	})
}

func runStream(solver *connectit.Solver, g *connectit.Graph) error {
	if caps := solver.Capabilities(); !caps.Streaming {
		return fmt.Errorf("algorithm %s does not stream", solver.Name())
	}
	st, err := solver.Stream(g.NumVertices(), connectit.StreamOptions{
		EpochSize:        *epoch,
		CoalesceBound:    *coalesce,
		DisablePrefilter: *noFilter,
	})
	if err != nil {
		return err
	}
	edges := g.Edges()
	fmt.Printf("stream: %v, %d workers, %.0f%% queries\n", st.Type(), *workers, *qmix*100)
	start := time.Now()
	ingest.DriveStream(st, edges, g.NumVertices(), *workers, *qmix)
	st.Sync()
	elapsed := time.Since(start)

	s := st.Stats()
	fmt.Printf("ingested %d updates, answered %d queries in %v\n", s.Updates, s.Queries, elapsed)
	fmt.Printf("throughput: %.2fM updates/s, %.2fM queries/s\n",
		float64(s.Updates)/elapsed.Seconds()/1e6, float64(s.Queries)/elapsed.Seconds()/1e6)
	droppedPct := 0.0
	if s.Updates > 0 {
		droppedPct = 100 * float64(s.Filtered) / float64(s.Updates)
	}
	fmt.Printf("pre-filter: dropped %d of %d (%.1f%%)\n", s.Filtered, s.Updates, droppedPct)
	if s.Rounds > 0 {
		fmt.Printf("apply pipeline: %d epochs in %d rounds (%d coalesced, %.2f epochs/round)\n",
			s.Epochs, s.Rounds, s.Coalesced, float64(s.Epochs)/float64(s.Rounds))
	}
	if s.DedupSorted+s.DedupSkipped > 0 {
		fmt.Printf("dedup: %d batches sorted, %d skipped\n", s.DedupSorted, s.DedupSkipped)
	}
	fmt.Printf("components: %d\n", st.NumComponents())
	printPoolStats()
	return nil
}

// listAlgorithms prints the registry-derived inventory: every finish
// algorithm's canonical name plus its forest/streaming capabilities.
func listAlgorithms() error {
	fmt.Printf("%-44s %-8s %-22s %s\n", "Algorithm", "Forest", "Streaming", "WaitFreeQ")
	for _, a := range connectit.Algorithms() {
		s, err := connectit.Compile(connectit.Config{Algorithm: a})
		if err != nil {
			return err
		}
		caps := s.Capabilities()
		forest, streaming, waitfree := "yes", "no", "-"
		if !caps.SpanningForest {
			forest = "no"
		}
		if caps.Streaming {
			streaming = caps.StreamType.String()
			if caps.WaitFreeQueries {
				waitfree = "yes"
			} else {
				waitfree = "no"
			}
		}
		fmt.Printf("%-44s %-8s %-22s %s\n", a.Name(), forest, streaming, waitfree)
	}
	return nil
}

func makeGraph(kind string, scale, n, deg int, path string, seed uint64) (*connectit.Graph, error) {
	switch kind {
	case "rmat":
		return connectit.NewRMAT(scale, deg*(1<<scale), seed), nil
	case "ba":
		return connectit.NewBarabasiAlbert(n, deg, seed), nil
	case "er":
		return connectit.NewErdosRenyi(n, deg*n/2, seed), nil
	case "grid":
		if n > 1<<14 {
			return nil, fmt.Errorf("-graph grid: side length %d too large (max %d)", n, 1<<14)
		}
		return connectit.NewGrid2D(n, n), nil
	case "web":
		return connectit.NewWebLike(scale, deg*(1<<scale), 0.05, seed), nil
	case "file":
		if path == "" {
			return nil, errors.New("-graph file requires -path")
		}
		return connectit.LoadEdgeListFile(path)
	}
	return nil, fmt.Errorf("unknown graph kind %q (want rmat|ba|er|grid|web|file)", kind)
}
