// Command connectit runs a ConnectIt algorithm combination on a generated
// or loaded graph and reports components and timing.
//
// Algorithms are selected with canonical spec strings (see ParseConfig):
//
//	connectit -graph rmat -scale 18 -sampling kout -algo "uf;rem-cas;naive;split-one"
//	connectit -graph grid -n 1000 -sampling ldd -algo sv
//	connectit -graph file -path web.el -algo "lt;CRFA"
//	connectit -graph ba -n 100000 -forest
//	connectit -list
//
// -list enumerates every finish algorithm in the registry with its
// capabilities; each printed name is a valid -algo value.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"connectit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("connectit: ")

	var (
		graphKind = flag.String("graph", "rmat", "graph source: rmat|ba|er|grid|web|file")
		scale     = flag.Int("scale", 16, "log2 vertex count for rmat/web")
		n         = flag.Int("n", 1<<16, "vertex count for ba/er, side length for grid")
		mPerN     = flag.Int("degree", 10, "average degree (edges = degree*n)")
		path      = flag.String("path", "", "edge list file for -graph file")
		seed      = flag.Uint64("seed", 1, "random seed")

		samplingName = flag.String("sampling", "kout", "sampling: none|kout|bfs|ldd")
		k            = flag.Int("k", 2, "k-out parameter")
		beta         = flag.Float64("beta", 0.2, "LDD beta parameter")

		algo = flag.String("algo", "uf;rem-cas;naive;split-one",
			`finish algorithm spec, e.g. "uf;rem-cas;naive;split-one", "lt;CRFA", "sv", "stergiou", "lp"`)

		forest    = flag.Bool("forest", false, "compute spanning forest instead of components")
		withStats = flag.Bool("stats", false, "report union-find path-length statistics")
		list      = flag.Bool("list", false, "list every registered finish algorithm and exit")
	)
	flag.Parse()

	if *list {
		listAlgorithms()
		return
	}

	g, err := makeGraph(*graphKind, *scale, *n, *mPerN, *path, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	cfg, err := connectit.ParseConfig(*samplingName + ";" + *algo)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Beta = *beta
	var stats connectit.Stats
	if *withStats {
		cfg.Stats = &stats
	}

	solver, err := connectit.Compile(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algorithm: %s\n", solver.Name())

	if *forest {
		start := time.Now()
		edges, err := solver.SpanningForest(g)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spanning forest: %d edges in %v\n", len(edges), elapsed)
		return
	}

	start := time.Now()
	labels := solver.Components(g)
	elapsed := time.Since(start)
	comps := connectit.NumComponents(labels)
	_, largest := connectit.LargestComponent(labels)
	fmt.Printf("components: %d (largest %d vertices, %.1f%%) in %v\n",
		comps, largest, 100*float64(largest)/float64(len(labels)), elapsed)
	fmt.Printf("throughput: %.1fM edges/s\n", float64(g.NumEdges())/elapsed.Seconds()/1e6)
	if *withStats {
		fmt.Printf("stats: unions=%d TPL=%d MPL=%d\n", stats.Unions(), stats.TotalPathLength(), stats.MaxPathLength())
	}
}

// listAlgorithms prints the registry-derived inventory: every finish
// algorithm's canonical name plus its forest/streaming capabilities.
func listAlgorithms() {
	fmt.Printf("%-44s %-8s %s\n", "Algorithm", "Forest", "Streaming")
	for _, a := range connectit.Algorithms() {
		s, err := connectit.Compile(connectit.Config{Algorithm: a})
		if err != nil {
			log.Fatal(err)
		}
		caps := s.Capabilities()
		forest, streaming := "yes", "no"
		if !caps.SpanningForest {
			forest = "no"
		}
		if caps.Streaming {
			streaming = caps.StreamType.String()
		}
		fmt.Printf("%-44s %-8s %s\n", a.Name(), forest, streaming)
	}
}

func makeGraph(kind string, scale, n, deg int, path string, seed uint64) (*connectit.Graph, error) {
	switch kind {
	case "rmat":
		return connectit.NewRMAT(scale, deg*(1<<scale), seed), nil
	case "ba":
		return connectit.NewBarabasiAlbert(n, deg, seed), nil
	case "er":
		return connectit.NewErdosRenyi(n, deg*n/2, seed), nil
	case "grid":
		return connectit.NewGrid2D(n, n), nil
	case "web":
		return connectit.NewWebLike(scale, deg*(1<<scale), 0.05, seed), nil
	case "file":
		if path == "" {
			return nil, fmt.Errorf("-graph file requires -path")
		}
		return connectit.LoadEdgeListFile(path)
	}
	return nil, fmt.Errorf("unknown graph kind %q", kind)
}

// usage is wired for -h output clarity.
func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: connectit [flags]\n\nFlags:\n")
		flag.PrintDefaults()
	}
}
