// Command connectit runs a ConnectIt algorithm combination on a generated
// or loaded graph and reports components and timing.
//
// Examples:
//
//	connectit -graph rmat -scale 18 -sampling kout -union rem-cas
//	connectit -graph grid -n 1000 -sampling ldd -algo sv
//	connectit -graph file -path web.el -algo lt -lt-variant CRFA
//	connectit -graph ba -n 100000 -forest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"connectit"
	"connectit/internal/unionfind"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("connectit: ")

	var (
		graphKind = flag.String("graph", "rmat", "graph source: rmat|ba|er|grid|web|file")
		scale     = flag.Int("scale", 16, "log2 vertex count for rmat/web")
		n         = flag.Int("n", 1<<16, "vertex count for ba/er, side length for grid")
		mPerN     = flag.Int("degree", 10, "average degree (edges = degree*n)")
		path      = flag.String("path", "", "edge list file for -graph file")
		seed      = flag.Uint64("seed", 1, "random seed")

		samplingName = flag.String("sampling", "kout", "sampling: none|kout|bfs|ldd")
		k            = flag.Int("k", 2, "k-out parameter")
		beta         = flag.Float64("beta", 0.2, "LDD beta parameter")

		algo      = flag.String("algo", "uf", "finish algorithm: uf|sv|lt|stergiou|lp")
		union     = flag.String("union", "rem-cas", "union rule: async|hooks|early|rem-cas|rem-lock|jtb")
		find      = flag.String("find", "naive", "find rule: naive|split|halve|compress|two-try")
		splice    = flag.String("splice", "split-one", "Rem splice rule: split-one|halve-one|splice")
		ltVariant = flag.String("lt-variant", "CRFA", "Liu-Tarjan variant code")

		forest    = flag.Bool("forest", false, "compute spanning forest instead of components")
		withStats = flag.Bool("stats", false, "report union-find path-length statistics")
	)
	flag.Parse()

	g, err := makeGraph(*graphKind, *scale, *n, *mPerN, *path, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	cfg, err := makeConfig(*samplingName, *k, *beta, *algo, *union, *find, *splice, *ltVariant, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var stats connectit.Stats
	if *withStats {
		cfg.Stats = &stats
	}

	if *forest {
		start := time.Now()
		edges, err := connectit.SpanningForest(g, cfg)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spanning forest: %d edges in %v\n", len(edges), elapsed)
		return
	}

	start := time.Now()
	labels, err := connectit.Connectivity(g, cfg)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	comps := connectit.NumComponents(labels)
	_, largest := connectit.LargestComponent(labels)
	fmt.Printf("components: %d (largest %d vertices, %.1f%%) in %v\n",
		comps, largest, 100*float64(largest)/float64(len(labels)), elapsed)
	fmt.Printf("throughput: %.1fM edges/s\n", float64(g.NumEdges())/elapsed.Seconds()/1e6)
	if *withStats {
		fmt.Printf("stats: unions=%d TPL=%d MPL=%d\n", stats.Unions(), stats.TotalPathLength(), stats.MaxPathLength())
	}
}

func makeGraph(kind string, scale, n, deg int, path string, seed uint64) (*connectit.Graph, error) {
	switch kind {
	case "rmat":
		return connectit.NewRMAT(scale, deg*(1<<scale), seed), nil
	case "ba":
		return connectit.NewBarabasiAlbert(n, deg, seed), nil
	case "er":
		return connectit.NewErdosRenyi(n, deg*n/2, seed), nil
	case "grid":
		return connectit.NewGrid2D(n, n), nil
	case "web":
		return connectit.NewWebLike(scale, deg*(1<<scale), 0.05, seed), nil
	case "file":
		if path == "" {
			return nil, fmt.Errorf("-graph file requires -path")
		}
		return connectit.LoadEdgeListFile(path)
	}
	return nil, fmt.Errorf("unknown graph kind %q", kind)
}

func makeConfig(sampling string, k int, beta float64, algo, union, find, splice, ltVariant string, seed uint64) (connectit.Config, error) {
	var cfg connectit.Config
	cfg.Seed = seed
	cfg.K = k
	cfg.Beta = beta

	switch sampling {
	case "none":
		cfg.Sampling = connectit.NoSampling
	case "kout":
		cfg.Sampling = connectit.KOutSampling
	case "bfs":
		cfg.Sampling = connectit.BFSSampling
	case "ldd":
		cfg.Sampling = connectit.LDDSampling
	default:
		return cfg, fmt.Errorf("unknown sampling %q", sampling)
	}

	switch algo {
	case "uf":
		u, ok := unionOptions[union]
		if !ok {
			return cfg, fmt.Errorf("unknown union rule %q", union)
		}
		f, ok := findOptions[find]
		if !ok {
			return cfg, fmt.Errorf("unknown find rule %q", find)
		}
		s, ok := spliceOptions[splice]
		if !ok {
			return cfg, fmt.Errorf("unknown splice rule %q", splice)
		}
		cfg.Algorithm = connectit.UnionFindAlgorithm(u, f, s)
	case "sv":
		cfg.Algorithm = connectit.ShiloachVishkinAlgorithm()
	case "lt":
		a, ok := connectit.LiuTarjanAlgorithm(strings.ToUpper(ltVariant))
		if !ok {
			return cfg, fmt.Errorf("unknown Liu-Tarjan variant %q", ltVariant)
		}
		cfg.Algorithm = a
	case "stergiou":
		cfg.Algorithm = connectit.StergiouAlgorithm()
	case "lp":
		cfg.Algorithm = connectit.LabelPropagationAlgorithm()
	default:
		return cfg, fmt.Errorf("unknown algorithm %q", algo)
	}
	return cfg, nil
}

var unionOptions = map[string]unionfind.UnionOption{
	"async":    connectit.UnionAsync,
	"hooks":    connectit.UnionHooks,
	"early":    connectit.UnionEarly,
	"rem-cas":  connectit.UnionRemCAS,
	"rem-lock": connectit.UnionRemLock,
	"jtb":      connectit.UnionJTB,
}

var findOptions = map[string]unionfind.FindOption{
	"naive":    connectit.FindNaive,
	"split":    connectit.FindSplit,
	"halve":    connectit.FindHalve,
	"compress": connectit.FindCompress,
	"two-try":  connectit.FindTwoTrySplit,
}

var spliceOptions = map[string]unionfind.SpliceOption{
	"split-one": connectit.SplitAtomicOne,
	"halve-one": connectit.HalveAtomicOne,
	"splice":    connectit.SpliceAtomic,
}

// usage is wired for -h output clarity.
func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: connectit [flags]\n\nFlags:\n")
		flag.PrintDefaults()
	}
}
