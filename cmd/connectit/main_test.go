package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// withServeFlags runs fn with -serve set and the given overrides applied,
// restoring every touched flag afterwards so tests stay independent.
func withServeFlags(t *testing.T, overrides func(), fn func() error) error {
	t.Helper()
	old := struct {
		serve    bool
		addr     string
		wal      string
		snap     time.Duration
		flush    time.Duration
		pending  int
		stream   bool
		forest   bool
		convert  string
		probe    time.Duration
		degraded string
	}{*serve, *addr, *walDir, *snapInterval, *flushInterval, *maxPending, *stream, *forest, *convert, *probeInterval, *degradedMode}
	t.Cleanup(func() {
		*serve, *addr, *walDir, *snapInterval, *flushInterval, *maxPending, *stream, *forest, *convert =
			old.serve, old.addr, old.wal, old.snap, old.flush, old.pending, old.stream, old.forest, old.convert
		*probeInterval, *degradedMode = old.probe, old.degraded
	})
	*serve = true
	if overrides != nil {
		overrides()
	}
	return fn()
}

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name      string
		overrides func()
		wantErr   string
	}{
		{"defaults ok", nil, ""},
		{"valid wal dir", func() { *walDir = filepath.Join(t.TempDir(), "wal") }, ""},
		{"snapshot disabled", func() { *snapInterval = -1 }, ""},
		{"bad addr", func() { *addr = "not an address::::" }, "-addr"},
		{"snapshot too small", func() { *snapInterval = 10 * time.Millisecond }, "-snapshot-interval"},
		{"snapshot too large", func() { *snapInterval = 48 * time.Hour }, "-snapshot-interval"},
		{"flush too small", func() { *flushInterval = time.Microsecond }, "-flush-interval"},
		{"flush too large", func() { *flushInterval = time.Minute }, "-flush-interval"},
		{"pending zero", func() { *maxPending = 0 }, "-max-pending"},
		{"pending huge", func() { *maxPending = 1 << 24 }, "-max-pending"},
		{"serve and stream", func() { *stream = true }, "mutually exclusive"},
		{"serve and forest", func() { *forest = true }, "mutually exclusive"},
		{"serve and convert", func() { *convert = "x.cbin" }, "mutually exclusive"},
		{"unwritable wal dir", func() { *walDir = "/proc/definitely/not/writable" }, "-wal-dir"},
		{"degraded policy crash ok", func() { *degradedMode = "crash" }, ""},
		{"probe too small", func() { *probeInterval = time.Millisecond }, "-probe-interval"},
		{"probe too large", func() { *probeInterval = time.Hour }, "-probe-interval"},
		{"bad degraded policy", func() { *degradedMode = "shrug" }, "-degraded-policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := withServeFlags(t, tc.overrides, validateFlags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags: err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateFlagsBaseline(t *testing.T) {
	// The pre-existing bounds still hold with the serve flags present.
	oldScale := *scale
	t.Cleanup(func() { *scale = oldScale })
	*scale = 99
	if err := validateFlags(); err == nil || !strings.Contains(err.Error(), "-scale") {
		t.Fatalf("validateFlags with -scale 99: %v", err)
	}
}
